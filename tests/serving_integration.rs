//! Integration tests across the serving stack: KV cache + system
//! configs + throughput search must compose into Table-1-shaped
//! behaviour.

use liquidgemm::models::configs::{ALL_MODELS, LLAMA2_70B, LLAMA2_7B};
use liquidgemm::serving::kvcache::PagedKvCache;
use liquidgemm::serving::system::{ServingSystem, SystemId};
use liquidgemm::serving::throughput::{
    max_feasible_batch, peak_throughput, throughput_at_batch, INPUT_LEN, OUTPUT_LEN,
};
use liquidgemm::sim::specs::H800;

#[test]
fn feasible_batch_agrees_with_paged_allocator() {
    // The closed-form memory bound and the real page allocator must
    // agree (up to page-granularity slack) on how many full requests fit.
    let sys = ServingSystem::of(SystemId::LiquidServe);
    let cfg = &LLAMA2_7B;
    let closed_form =
        max_feasible_batch(&sys, cfg, H800.mem_capacity as f64, INPUT_LEN, OUTPUT_LEN);

    let kv_budget = H800.mem_capacity as f64
        - sys.weight_bytes(cfg)
        - liquidgemm::serving::throughput::RESERVE_BYTES;
    let bytes_per_token = cfg.kv_bytes_per_token(sys.attention.kv.bytes()) as usize;
    let mut cache = PagedKvCache::new(kv_budget as u64, 16, bytes_per_token);
    let mut fits = 0usize;
    loop {
        let id = fits as u64;
        if cache.add_sequence(id, INPUT_LEN + OUTPUT_LEN).is_err() {
            break;
        }
        fits += 1;
        if fits > 400 {
            break;
        }
    }
    let diff = (fits as i64 - closed_form as i64).abs();
    assert!(
        diff <= 2,
        "allocator fits {fits}, closed form {closed_form}"
    );
}

#[test]
fn every_supported_cell_produces_a_positive_peak() {
    for cfg in &ALL_MODELS {
        for id in SystemId::ALL {
            let sys = ServingSystem::of(id);
            if let Some(p) = peak_throughput(&sys, &H800, cfg) {
                assert!(p.tokens_per_s > 0.0, "{} on {}", sys.name, cfg.name);
                assert!((1..=256).contains(&p.batch));
            }
        }
    }
}

#[test]
fn liquidserve_wins_or_ties_most_table1_cells() {
    // The paper's Table 1: LiquidServe leads on 6 of 8 models and is
    // within a few percent on the other two. The reproduction must show
    // the same dominance pattern: never worse than 0.9x the best
    // baseline, and strictly best on the large dense models.
    let liquid = ServingSystem::of(SystemId::LiquidServe);
    let mut wins = 0usize;
    let mut cells = 0usize;
    for cfg in &ALL_MODELS {
        let Some(l) = peak_throughput(&liquid, &H800, cfg) else {
            continue;
        };
        let best_baseline = SystemId::ALL
            .iter()
            .filter(|&&id| id != SystemId::LiquidServe && id != SystemId::LiquidServeWo)
            .filter_map(|&id| peak_throughput(&ServingSystem::of(id), &H800, cfg))
            .map(|p| p.tokens_per_s)
            .fold(0.0f64, f64::max);
        cells += 1;
        if l.tokens_per_s >= best_baseline {
            wins += 1;
        }
        assert!(
            l.tokens_per_s >= best_baseline * 0.90,
            "{}: liquid {} vs best {}",
            cfg.name,
            l.tokens_per_s,
            best_baseline
        );
    }
    assert!(
        wins * 4 >= cells * 3,
        "LiquidServe won only {wins}/{cells} cells"
    );
}

#[test]
fn throughput_is_monotone_then_saturating_for_liquidserve() {
    // LiquidServe keeps scaling with batch (the paper's contrast with
    // QServe): throughput at 256 must beat throughput at 64.
    let sys = ServingSystem::of(SystemId::LiquidServe);
    let t64 = throughput_at_batch(&sys, &H800, &LLAMA2_7B, 64, INPUT_LEN, OUTPUT_LEN);
    let t256 = throughput_at_batch(&sys, &H800, &LLAMA2_7B, 256, INPUT_LEN, OUTPUT_LEN);
    assert!(t256 > t64, "{t256} vs {t64}");
}

#[test]
fn qserve_stops_scaling_where_liquidserve_continues() {
    let q = ServingSystem::of(SystemId::QServe);
    let l = ServingSystem::of(SystemId::LiquidServe);
    let q_gain = throughput_at_batch(&q, &H800, &LLAMA2_7B, 256, INPUT_LEN, OUTPUT_LEN)
        / throughput_at_batch(&q, &H800, &LLAMA2_7B, 64, INPUT_LEN, OUTPUT_LEN);
    let l_gain = throughput_at_batch(&l, &H800, &LLAMA2_7B, 256, INPUT_LEN, OUTPUT_LEN)
        / throughput_at_batch(&l, &H800, &LLAMA2_7B, 64, INPUT_LEN, OUTPUT_LEN);
    assert!(
        l_gain > q_gain,
        "liquid gain {l_gain} vs qserve gain {q_gain}"
    );
}

#[test]
fn seventy_b_speedup_band_matches_paper() {
    // The flagship cell: 1.63x over the best baseline (TRT-W4A16).
    let l = peak_throughput(
        &ServingSystem::of(SystemId::LiquidServe),
        &H800,
        &LLAMA2_70B,
    )
    .expect("fits");
    let best = SystemId::ALL
        .iter()
        .filter(|&&id| id != SystemId::LiquidServe && id != SystemId::LiquidServeWo)
        .filter_map(|&id| peak_throughput(&ServingSystem::of(id), &H800, &LLAMA2_70B))
        .map(|p| p.tokens_per_s)
        .fold(0.0f64, f64::max);
    let speedup = l.tokens_per_s / best;
    assert!((1.3..2.4).contains(&speedup), "70B speedup {speedup}");
}
