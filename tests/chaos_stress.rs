//! Chaos stress suite: seeded random [`FaultPlan`]s against the
//! serving runtime and the persistent GEMM pool.
//!
//! Every sub-test derives its whole fault schedule from one seed and
//! prints that seed on failure, so any red run replays exactly with
//! `FaultPlan::from_seed(seed)`.
//!
//! Invariants:
//! * 100+ random schedules: every request completes exactly once with
//!   a valid status split, and zero KV pages leak after the drain;
//! * differential: completions that *succeed* under faults are
//!   bit-exact with the fault-free baseline (identical token chains);
//! * pool differential: a GEMM surviving injected worker panics is
//!   bit-exact (`max_abs_diff == 0.0`) with the serial kernel, and the
//!   pool's restart/retry ledger matches the faults actually fired;
//! * full stack: a real `TinyLlm` on a fault-injected pool drains a
//!   mixed workload without leaking engine-layer KV pages.

use liquidgemm::core::reference::max_abs_diff;
use liquidgemm::core::ParallelConfig;
use liquidgemm::prelude::*;
use liquidgemm::quant::act::QuantizedActivations;
use liquidgemm::quant::mat::Mat;
use lq_rng::Rng;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Deterministic, compute-free serving engine for chaos sweeps.
///
/// Token emission is a pure function of `(sequence id, previous
/// token)`, so a sequence's token chain never depends on batch
/// composition, scheduling order, or which other sequences failed —
/// the property the differential test leans on. Each prefill/decode
/// entry consults the injector's engine-call site and panics when
/// scheduled; `release` is tolerant because the runtime's failure path
/// may release a sequence the engine never fully registered.
struct ChaosEngine {
    inj: Option<Arc<FaultInjector>>,
    vocab: usize,
    live: HashMap<SeqId, ()>,
    /// Every token emitted per sequence, kept across the whole run
    /// (survives release) for post-hoc differential comparison.
    history: HashMap<SeqId, Vec<usize>>,
}

impl ChaosEngine {
    fn new(inj: Option<Arc<FaultInjector>>) -> Self {
        Self {
            inj,
            vocab: 97,
            live: HashMap::new(),
            history: HashMap::new(),
        }
    }

    fn maybe_panic(&self, site: &str) {
        if self.inj.as_ref().is_some_and(|i| i.on_engine_call()) {
            panic!("injected fault: engine panic at {site}");
        }
    }

    fn chain(&self, id: SeqId, prev: usize) -> usize {
        (id as usize * 131 + prev * 31 + 7) % self.vocab
    }
}

impl ServingEngine for ChaosEngine {
    fn prefill(&mut self, id: SeqId, prompt: &[usize]) -> usize {
        self.maybe_panic("prefill");
        self.live.insert(id, ());
        let tok = self.chain(id, prompt.iter().sum::<usize>() % self.vocab);
        self.history.entry(id).or_default().push(tok);
        tok
    }

    fn decode_batch(&mut self, slots: &[(SeqId, usize)]) -> Vec<usize> {
        self.maybe_panic("decode");
        slots
            .iter()
            .map(|&(id, last)| {
                assert!(self.live.contains_key(&id), "decode of dead sequence {id}");
                let tok = self.chain(id, last);
                self.history.entry(id).or_default().push(tok);
                tok
            })
            .collect()
    }

    fn release(&mut self, id: SeqId) {
        self.live.remove(&id);
    }
}

const MAX_QUEUE: usize = 8;

fn sched_cfg() -> SchedulerConfig {
    SchedulerConfig::builder()
        .max_batch(4)
        .page_tokens(16)
        .max_queue(MAX_QUEUE)
        .build()
        .unwrap()
}

/// Seeded workload: staggered arrivals, mixed lengths, optional
/// deadlines, and (with `burst`) a simultaneous tail that guarantees
/// queue-full rejections.
fn workload(seed: u64, n: u64, vocab: usize, deadlines: bool, burst: bool) -> Vec<PromptRequest> {
    let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let mut reqs = Vec::new();
    let prompt = |rng: &mut Rng, len: usize| -> Vec<usize> {
        (0..len)
            .map(|_| (rng.next_u64() as usize) % vocab)
            .collect()
    };
    let mut t = 0.0f64;
    for id in 0..n {
        t += rng.f64() * 0.002;
        let prompt_len = 3 + (rng.next_u64() % 10) as usize;
        let output_len = 1 + (rng.next_u64() % 12) as usize;
        let mut meta = Request::new(id, prompt_len, output_len, t);
        if deadlines && rng.next_u64().is_multiple_of(4) {
            meta = meta.with_deadline(rng.f64() * 0.02);
        }
        reqs.push(PromptRequest::new(meta, prompt(&mut rng, prompt_len)));
    }
    if burst {
        let burst_at = t + 0.003;
        for i in 0..(MAX_QUEUE as u64 + 12) {
            let prompt_len = 3 + (rng.next_u64() % 6) as usize;
            reqs.push(PromptRequest::new(
                Request::new(n + i, prompt_len, 6, burst_at),
                prompt(&mut rng, prompt_len),
            ));
        }
    }
    reqs
}

/// One seeded chaos run against the serving runtime; panics (with
/// context) on any invariant violation. Returns the engine (token
/// histories) and the run stats for differential checks.
fn chaos_run(seed: u64, plan: FaultPlan) -> (ChaosEngine, RunStats) {
    let inj = Arc::new(FaultInjector::new(plan));
    let mut rt = ServingRuntime::with_fault_injector(sched_cfg(), 1024, Arc::clone(&inj));
    let mut engine = ChaosEngine::new(Some(Arc::clone(&inj)));
    let requests = workload(seed, 24, 97, true, true);
    let n = requests.len();

    let stats = rt.run(&mut engine, requests);

    assert_eq!(stats.completions.len(), n, "requests lost or duplicated");
    let mut ids: Vec<u64> = stats.completions.iter().map(|c| c.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "a request completed twice");
    assert_eq!(
        stats.finished() + stats.timed_out() + stats.rejected() + stats.failed(),
        n,
        "statuses must partition the workload"
    );
    for c in &stats.completions {
        assert!(
            c.latency().is_finite(),
            "non-finite latency for id {}",
            c.id
        );
    }

    // Zero leaked KV pages, faults or not.
    assert_eq!(
        rt.kv().free_pages(),
        rt.kv().total_pages(),
        "KV pages leaked"
    );
    assert!(rt.kv().check_invariants(), "page conservation violated");
    (engine, stats)
}

#[test]
fn hundred_seeded_schedules_drain_without_leaks() {
    let mut fired_any = 0u64;
    for seed in 0..100u64 {
        let plan = FaultPlan::from_seed(seed);
        let inj_probe = FaultInjector::new(plan.clone());
        let result = catch_unwind(AssertUnwindSafe(|| chaos_run(seed, plan)));
        match result {
            Ok((_, stats)) => {
                assert!(
                    stats.finished() > 0,
                    "seed {seed}: chaos run finished nothing"
                );
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "non-string panic".to_string());
                panic!(
                    "chaos seed {seed} failed (replay with FaultPlan::from_seed({seed})): {msg}"
                );
            }
        }
        drop(inj_probe);
        fired_any += u64::from(!FaultPlan::from_seed(seed).is_empty());
    }
    // The sweep must actually inject faults, or it proves nothing.
    assert!(
        fired_any > 50,
        "only {fired_any}/100 seeds scheduled any fault"
    );
}

#[test]
fn survivors_are_bit_exact_with_fault_free_baseline() {
    // No deadlines and no burst: the only statuses are Finished and
    // Failed, so every id Finished under chaos also finishes in the
    // quiet baseline and their token chains must match exactly.
    for seed in 0..40u64 {
        let run = |plan: FaultPlan| -> (ChaosEngine, RunStats) {
            let inj = Arc::new(FaultInjector::new(plan));
            let mut rt = ServingRuntime::with_fault_injector(sched_cfg(), 1024, Arc::clone(&inj));
            let mut engine = ChaosEngine::new(Some(inj));
            let stats = rt.run(&mut engine, workload(seed, 20, 97, false, false));
            assert_eq!(
                rt.kv().free_pages(),
                rt.kv().total_pages(),
                "seed {seed}: KV pages leaked"
            );
            (engine, stats)
        };
        let (base_engine, base_stats) = run(FaultPlan::quiet());
        assert_eq!(
            base_stats.finished(),
            20,
            "seed {seed}: quiet run lost work"
        );

        let (chaos_engine, chaos_stats) = run(FaultPlan::from_seed(seed));
        assert_eq!(
            chaos_stats.finished() + chaos_stats.failed(),
            20,
            "seed {seed}: unexpected status in deadline-free run"
        );
        for c in &chaos_stats.completions {
            if c.status != CompletionStatus::Finished {
                continue;
            }
            let chaos_tokens = &chaos_engine.history[&c.id];
            let base_tokens = &base_engine.history[&c.id];
            assert_eq!(
                chaos_tokens, base_tokens,
                "seed {seed}: surviving id {} diverged from baseline",
                c.id
            );
            assert_eq!(
                c.generated,
                base_tokens.len() as u64,
                "seed {seed}: id {} token count diverged",
                c.id
            );
        }
    }
}

#[test]
fn pool_gemm_under_injected_panics_is_bit_exact_with_serial() {
    let x = Mat::from_fn(24, 384, |r, c| ((r * 384 + c) as f32 * 0.011).sin());
    let w = Mat::from_fn(96, 384, |r, c| ((r * 384 + c) as f32 * 0.007).cos() * 0.5);
    let weights = W4A8Weights::lqq(liquidgemm::core::packed::PackedLqqLinear::quantize(&w, 64));
    let qa = QuantizedActivations::quantize(&x, None);
    let cfg = ParallelConfig::builder()
        .task_rows(4)
        .stages(4)
        .build()
        .unwrap();

    for seed in 0..12u64 {
        let inj = Arc::new(FaultInjector::new(FaultPlan::from_seed(seed)));
        let lg = LiquidGemm::builder()
            .workers(3)
            .fault_injector(Arc::clone(&inj))
            .build()
            .unwrap();
        let serial = lg
            .gemm_with(&qa.q, &qa.scales, &weights, KernelKind::Serial, cfg)
            .y;
        for kind in [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp] {
            let y = lg.gemm_with(&qa.q, &qa.scales, &weights, kind, cfg).y;
            assert_eq!(
                max_abs_diff(&y, &serial),
                0.0,
                "seed {seed}: {kind:?} diverged under faults"
            );
        }
        // The healing ledger reconciles with what actually fired: each
        // injected panic produced exactly one restart and one retry.
        let fired = inj.stats().worker_panics;
        let stats = lg.pool().worker_stats();
        let restarts: u64 = stats.iter().map(|s| s.restarts).sum();
        let retries: u64 = stats.iter().map(|s| s.retries).sum();
        assert_eq!(restarts, fired, "seed {seed}: restart ledger mismatch");
        assert_eq!(retries, fired, "seed {seed}: retry ledger mismatch");
    }
}

#[test]
fn full_stack_tinyllm_on_faulted_pool_drains_clean() {
    // Real model, real GEMMs: worker panics inside the shared pool must
    // stay invisible to the serving layer (healed + retried), and the
    // run must drain with no engine-layer KV leaks.
    for seed in [3u64, 17] {
        let inj = Arc::new(FaultInjector::new(FaultPlan::from_seed(seed)));
        let spec = ModelSpec::tiny();
        let pool = Arc::new(
            LiquidGemm::builder()
                .workers(2)
                .fault_injector(Arc::clone(&inj))
                .build()
                .unwrap(),
        );
        let mut model = TinyLlm::synthetic_with_engine(spec, 1024, KernelKind::ImFp, pool);
        let free0: Vec<usize> = model.kv.iter().map(|s| s.table.free_pages()).collect();

        let mut rt = ServingRuntime::with_fault_injector(sched_cfg(), 1024, Arc::clone(&inj));
        let requests = workload(seed, 16, spec.vocab, false, false);
        let n = requests.len();
        let stats = rt.run(&mut model, requests);

        assert_eq!(stats.completions.len(), n, "seed {seed}");
        // Real measured compute: arrivals can outpace the bounded
        // queue, so Rejected joins the split (never TimedOut — the
        // workload sets no deadlines).
        assert_eq!(
            stats.finished() + stats.failed() + stats.rejected(),
            n,
            "seed {seed}: unexpected status split"
        );
        assert!(stats.finished() > 0, "seed {seed}: nothing finished");
        assert_eq!(
            rt.kv().free_pages(),
            rt.kv().total_pages(),
            "seed {seed}: admission table leaked"
        );
        for (layer, (store, &f0)) in model.kv.iter().zip(free0.iter()).enumerate() {
            assert_eq!(
                store.table.free_pages(),
                f0,
                "seed {seed}: layer {layer} leaked KV pages"
            );
        }
        // Worker panics that fired were healed, not surfaced: TinyLlm
        // never consults the engine site, so any Failed completions
        // here could only come from KV denials.
        let failed = stats.failed() as u64;
        assert!(
            failed <= inj.stats().kv_denials,
            "seed {seed}: more failures ({failed}) than injected denials"
        );
    }
}
