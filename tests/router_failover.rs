//! Router failover under chaos: a seeded sweep of whole-replica kills
//! (`FaultPlan::from_seed_with_replicas`) against a 3-replica
//! [`ServingRouter`], with a per-sequence-deterministic recording
//! engine so the surviving replicas can be checked *bit-exactly*
//! against a clean run.
//!
//! Invariants per seed:
//! * exactly one failover fires and every request still completes
//!   exactly once (`Finished`) — nothing is lost or duplicated;
//! * every engine-side sequence registration is balanced by a release
//!   (no KV held anywhere after the drain);
//! * requests routed to the survivors in wave 0 produce *identical*
//!   token histories with and without the concurrent replica kill —
//!   routing is metadata-only, so a dying neighbour cannot perturb a
//!   survivor's work;
//! * requests evacuated from the victim restart from prefill on a
//!   survivor and their final session is complete.

use liquidgemm::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Shared audit state, outliving the per-replica engines.
#[derive(Default)]
struct Audit {
    /// Per request id: one token-history session per prefill (a
    /// preempted/evacuated request restarts a new session).
    histories: Mutex<HashMap<u64, Vec<Vec<usize>>>>,
    /// Per request id: live registrations minus releases.
    live: Mutex<HashMap<u64, i64>>,
}

/// Per-sequence deterministic engine: the next token depends only on
/// `(id, previous token)`, never on batch composition or replica — so
/// two runs that schedule a request differently still produce the same
/// tokens, and any divergence in the histories is a real scheduling
/// bug, not noise.
struct ChaosEngine {
    last: HashMap<SeqId, usize>,
    audit: Arc<Audit>,
}

impl ChaosEngine {
    fn step(id: SeqId, prev: usize) -> usize {
        (id as usize * 131 + prev * 31 + 7) % 97
    }
}

impl ServingEngine for ChaosEngine {
    fn prefill(&mut self, id: SeqId, prompt: &[usize]) -> usize {
        let tok = Self::step(id, prompt.iter().sum::<usize>() % 97);
        assert!(self.last.insert(id, tok).is_none(), "{id} already live");
        self.audit
            .histories
            .lock()
            .unwrap()
            .entry(id)
            .or_default()
            .push(vec![tok]);
        *self.audit.live.lock().unwrap().entry(id).or_insert(0) += 1;
        tok
    }

    fn decode_batch(&mut self, slots: &[(SeqId, usize)]) -> Vec<usize> {
        slots
            .iter()
            .map(|&(id, prev)| {
                assert!(self.last.contains_key(&id), "decode of dead {id}");
                let tok = Self::step(id, prev);
                self.last.insert(id, tok);
                self.audit
                    .histories
                    .lock()
                    .unwrap()
                    .get_mut(&id)
                    .expect("prefilled")
                    .last_mut()
                    .expect("session open")
                    .push(tok);
                tok
            })
            .collect()
    }

    fn release(&mut self, id: SeqId) {
        assert!(self.last.remove(&id).is_some(), "double release of {id}");
        *self.audit.live.lock().unwrap().get_mut(&id).expect("seen") -= 1;
    }
}

const REPLICAS: usize = 3;
const N_REQS: u64 = 9;
const OUTPUT_LEN: usize = 24;

fn requests() -> Vec<PromptRequest> {
    (0..N_REQS)
        .map(|id| {
            PromptRequest::new(
                Request::new(id, 8, OUTPUT_LEN, 0.0),
                (0..8).map(|i| (id as usize * 13 + i) % 97).collect(),
            )
        })
        .collect()
}

fn router(inj: Option<Arc<FaultInjector>>) -> ServingRouter {
    let mut b = ServingRouter::builder()
        .replicas(REPLICAS)
        .policy(RoutingPolicy::RoundRobin);
    if let Some(inj) = inj {
        b = b.fault_injector(inj);
    }
    b.build().unwrap()
}

fn run_once(inj: Option<Arc<FaultInjector>>) -> (RouterStats, Arc<Audit>) {
    let audit = Arc::new(Audit::default());
    let r = router(inj);
    let a = Arc::clone(&audit);
    let out = r.run(
        move |_replica| ChaosEngine {
            last: HashMap::new(),
            audit: Arc::clone(&a),
        },
        requests(),
    );
    (out, audit)
}

#[test]
fn seeded_replica_kills_fail_over_bit_exactly() {
    // Clean reference: no injector, every request finishes in one
    // session.
    let (clean, clean_audit) = run_once(None);
    assert_eq!(clean.failovers, 0);
    assert_eq!(clean.merged().finished(), N_REQS as usize);
    let clean_hist = clean_audit.histories.lock().unwrap().clone();
    for sessions in clean_hist.values() {
        assert_eq!(sessions.len(), 1, "clean run never restarts a request");
        assert_eq!(sessions[0].len(), OUTPUT_LEN);
    }

    // Wave-0 shard map (routing is metadata-only, so this is also the
    // chaos runs' wave-0 assignment).
    let wave0: HashMap<u64, usize> = router(None)
        .route_preview(&requests())
        .into_iter()
        .collect();

    for seed in 0..20u64 {
        let plan = FaultPlan::from_seed_with_replicas(seed, REPLICAS as u64);
        let (victim, step) = plan.replica_kills[0];
        assert!((1..12).contains(&step), "seeded kill step out of band");
        let inj = Arc::new(FaultInjector::new(plan));
        let (out, audit) = run_once(Some(Arc::clone(&inj)));

        // The kill fired, was absorbed, and nothing was lost: every
        // request completes exactly once as Finished.
        assert_eq!(out.failovers, 1, "seed {seed}");
        assert_eq!(inj.stats().replica_kills, 1, "seed {seed}");
        assert!(out.replicas[victim as usize].killed, "seed {seed}");
        assert!(out.rerouted > 0, "seed {seed}: victims must re-route");
        assert!(out.unserved.is_empty(), "seed {seed}");
        let merged = out.merged();
        assert_eq!(merged.finished(), N_REQS as usize, "seed {seed}");
        let mut ids: Vec<u64> = merged.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..N_REQS).collect::<Vec<_>>(), "seed {seed}");
        assert_eq!(
            merged.generated_tokens,
            merged.completions.iter().map(|c| c.generated).sum::<u64>(),
            "seed {seed}: token ledger"
        );

        // Engine-side KV audit: every registration released.
        for (&id, &n) in audit.live.lock().unwrap().iter() {
            assert_eq!(n, 0, "seed {seed}: request {id} holds engine KV");
        }

        // Bit-exactness: survivors' wave-0 requests are untouched by
        // the neighbouring kill; the victim's requests restarted and
        // completed their final session in full.
        let hist = audit.histories.lock().unwrap();
        for id in 0..N_REQS {
            let sessions = &hist[&id];
            if wave0[&id] != victim as usize {
                assert_eq!(
                    sessions, &clean_hist[&id],
                    "seed {seed}: survivor request {id} diverged"
                );
            } else {
                assert_eq!(
                    sessions.last().unwrap().len(),
                    OUTPUT_LEN,
                    "seed {seed}: evacuated request {id} final session incomplete"
                );
            }
        }
    }
}

#[test]
fn failover_exports_router_telemetry() {
    liquidgemm::telemetry::enable();
    let reg = liquidgemm::telemetry::registry();
    let failovers0 = reg.counter("lq_router_failovers_total").get();
    let rerouted0 = reg.counter("lq_router_rerouted_total").get();

    let inj = Arc::new(FaultInjector::new(FaultPlan::quiet().replica_kill_at(1, 2)));
    let (out, _) = run_once(Some(inj));
    assert_eq!(out.failovers, 1);

    assert_eq!(
        reg.counter("lq_router_failovers_total").get() - failovers0,
        1
    );
    assert!(reg.counter("lq_router_rerouted_total").get() - rerouted0 >= out.rerouted);
    // Per-replica routed counters carry the replica label.
    let routed: u64 = (0..REPLICAS)
        .map(|i| {
            reg.counter_with("lq_router_routed_total", &[("replica", &i.to_string())])
                .get()
        })
        .sum();
    assert!(
        routed >= N_REQS,
        "labelled routed counters must cover the run"
    );
}
