//! Cross-crate integration tests: the full offline-quantize → pack →
//! kernel → epilogue path against FP32 references, and serving-layer
//! consistency.

use liquidgemm::core::api::W4A8Weights;
use liquidgemm::core::packed::{PackedLqqLinear, PackedQoqLinear, W8A8Linear};
use liquidgemm::core::reference::{gemm_f32_ref, max_abs_diff};
use liquidgemm::core::serial::w8a8_serial;
use liquidgemm::core::{KernelKind, LiquidGemm, ParallelConfig};
use liquidgemm::quant::act::QuantizedActivations;
use liquidgemm::quant::mat::Mat;
use liquidgemm::quant::metrics::error_stats;
use liquidgemm::quant::smooth::calibrate;

fn fixture(m: usize, n: usize, k: usize, outliers: bool) -> (Mat<f32>, Mat<f32>) {
    let x = Mat::from_fn(m, k, |r, c| {
        let v = ((r * k + c) as f32 * 0.013).sin() * 1.5;
        if outliers && c % 61 == 7 {
            v * 30.0
        } else {
            v
        }
    });
    let w = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.007).cos() * 0.6);
    (x, w)
}

fn handle() -> LiquidGemm {
    LiquidGemm::builder().build().expect("valid default config")
}

#[test]
fn w4a8_end_to_end_accuracy_vs_fp32() {
    let (x, w) = fixture(16, 96, 512, false);
    let oracle = gemm_f32_ref(&x, &w);
    let qa = QuantizedActivations::quantize(&x, None);
    let lg = handle();
    for (name, weights) in [
        ("lqq", W4A8Weights::lqq(PackedLqqLinear::quantize(&w, 64))),
        ("qoq", W4A8Weights::qoq(PackedQoqLinear::quantize(&w, 64))),
    ] {
        let y = lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::Serial).y;
        let e = error_stats(&oracle, &y);
        assert!(e.sqnr_db > 25.0, "{name}: sqnr {}", e.sqnr_db);
        assert!(e.cosine > 0.998, "{name}: cosine {}", e.cosine);
    }
}

#[test]
fn all_pipeline_variants_bit_identical_on_large_shape() {
    let (x, w) = fixture(24, 256, 768, false);
    let qa = QuantizedActivations::quantize(&x, None);
    let weights = W4A8Weights::lqq(PackedLqqLinear::quantize(&w, 64));
    let lg = LiquidGemm::builder().workers(4).build().unwrap();
    let cfg = ParallelConfig::builder()
        .task_rows(7)
        .stages(3)
        .build()
        .unwrap();
    let base = lg
        .gemm_with(&qa.q, &qa.scales, &weights, KernelKind::Serial, cfg)
        .y;
    for kind in [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp] {
        let y = lg.gemm_with(&qa.q, &qa.scales, &weights, kind, cfg).y;
        assert_eq!(max_abs_diff(&y, &base), 0.0, "{kind:?} diverged");
    }
}

#[test]
fn smoothquant_calibration_helps_the_full_w4a8_path() {
    let (x, w) = fixture(16, 64, 488 / 8 * 8, true);
    let oracle = gemm_f32_ref(&x, &w);

    // Without smoothing.
    let lg = handle();
    let qa = QuantizedActivations::quantize(&x, None);
    let weights = W4A8Weights::lqq(PackedLqqLinear::quantize(&w, 8));
    let y_plain = lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::Serial).y;
    let e_plain = error_stats(&oracle, &y_plain);

    // With calibrated smoothing applied to both operands.
    let cal = calibrate(&x, &w, 9);
    let w_s = liquidgemm::quant::smooth::smooth_weights(&w, &cal.scales);
    let qa_s = QuantizedActivations::quantize(&x, Some(&cal.scales));
    let weights_s = W4A8Weights::lqq(PackedLqqLinear::quantize(&w_s, 8));
    let y_s = lg
        .gemm(&qa_s.q, &qa_s.scales, &weights_s, KernelKind::Serial)
        .y;
    let e_s = error_stats(&oracle, &y_s);

    assert!(
        e_s.mse < e_plain.mse,
        "smoothing must reduce error with outliers: {} vs {}",
        e_s.mse,
        e_plain.mse
    );
}

#[test]
fn w4a8_tracks_w8a8_within_second_level_error() {
    // The W4A8 result must stay close to the W8A8 result on the same
    // level-1 grid: the only extra error is the 4-bit second level.
    let (x, w) = fixture(8, 48, 256, false);
    let qa = QuantizedActivations::quantize(&x, None);
    let w8 = W8A8Linear::quantize(&w);
    let y8 = w8a8_serial(&qa.q, &qa.scales, &w8);
    let weights = W4A8Weights::lqq(PackedLqqLinear::quantize(&w, 64));
    let y4 = handle()
        .gemm(&qa.q, &qa.scales, &weights, KernelKind::Serial)
        .y;
    let e = error_stats(&y8, &y4);
    assert!(e.cosine > 0.999, "cosine {}", e.cosine);
}

#[test]
fn group_size_sweep_is_monotone_in_fidelity() {
    // Smaller groups → finer scales → at least as good accuracy.
    let (x, w) = fixture(8, 32, 512, false);
    let oracle = gemm_f32_ref(&x, &w);
    let qa = QuantizedActivations::quantize(&x, None);
    let lg = handle();
    let mut last_sqnr = f64::NEG_INFINITY;
    for group in [256, 128, 32, 8] {
        let weights = W4A8Weights::lqq(PackedLqqLinear::quantize(&w, group));
        let y = lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::Serial).y;
        let e = error_stats(&oracle, &y);
        assert!(
            e.sqnr_db >= last_sqnr - 1.0,
            "group {group}: sqnr {} after {}",
            e.sqnr_db,
            last_sqnr
        );
        last_sqnr = e.sqnr_db.max(last_sqnr);
    }
}
