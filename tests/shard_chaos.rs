//! Shard-kill chaos for tensor-parallel GEMM (DESIGN.md §14): a
//! 20-seed sweep of mid-workload shard kills
//! ([`FaultPlan::from_seed_with_shards`]) against a 3-shard
//! [`ShardedGemm`], plus the serving-side containment path through
//! [`TensorParallelEngine`].
//!
//! Invariants per seed (mirrors `router_failover.rs`):
//! * every call *before* the scheduled kill is bit-exact against the
//!   unsharded kernel — chaos arming alone perturbs nothing;
//! * the killed call and every later call return the typed
//!   [`ShardError::ShardFailed`] naming the planned victim — never a
//!   partial or silently wrong output;
//! * the kill fires exactly once and the shard stays dead
//!   (`live_shards` drops by one and stays there);
//! * under the serving runtime, the failure is contained as an
//!   `EngineError` and the engine-side sequence audit drains to zero —
//!   no KV/state leaks.

use liquidgemm::core::reference::max_abs_diff;
use liquidgemm::prelude::*;
use liquidgemm::quant::act::QuantizedActivations;
use liquidgemm::quant::mat::Mat;
use std::sync::Arc;

const SHARDS: usize = 3;
const CALLS: usize = 10;

fn fixture(m: usize, n: usize, k: usize) -> (Mat<i8>, Vec<f32>, Mat<f32>) {
    let xf = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.013).sin() * 1.3);
    let wf = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.009).cos());
    let qa = QuantizedActivations::quantize(&xf, None);
    (qa.q, qa.scales, wf)
}

#[test]
fn seeded_shard_kills_surface_typed_errors_never_wrong_output() {
    let (x, scales, wf) = fixture(3, 29, 128);
    let reference = LiquidGemm::builder().workers(1).build().unwrap();
    let want = reference
        .gemm(
            &x,
            &scales,
            &reference.pack_weights(&wf, 64),
            KernelKind::Serial,
        )
        .y;

    for seed in 0..20u64 {
        let plan = FaultPlan::from_seed_with_shards(seed, SHARDS as u64);
        let (victim, kill_call) = plan.shard_kills[0];
        assert!((1..8).contains(&kill_call), "seed {seed}: call out of band");
        let inj = Arc::new(FaultInjector::new(plan));
        let tp = ShardedGemm::builder()
            .shards(SHARDS)
            .workers_per_shard(1)
            .fault_injector(Arc::clone(&inj))
            .build()
            .unwrap();
        let sw = tp.pack_weights(&wf, 64);

        let mut failures = 0u64;
        for call in 0..CALLS as u64 {
            // Alternate collectives so both error paths see the kill.
            let got = if call % 2 == 0 {
                tp.gemm(&x, &scales, &sw, KernelKind::ImFp)
            } else {
                tp.gemm_row(&x, &scales, &sw)
            };
            if call < kill_call {
                // Before the kill: armed chaos must perturb nothing.
                let y =
                    got.unwrap_or_else(|e| panic!("seed {seed}: call {call} failed early: {e}"));
                assert_eq!(
                    max_abs_diff(&y.y, &want),
                    0.0,
                    "seed {seed}: pre-kill call {call} not bit-exact"
                );
            } else {
                // At and after the kill: typed error naming the planned
                // victim, never a (possibly wrong) output.
                failures += 1;
                assert_eq!(
                    got.err(),
                    Some(ShardError::ShardFailed {
                        shard: victim as usize
                    }),
                    "seed {seed}: call {call}"
                );
            }
        }
        assert_eq!(failures, CALLS as u64 - kill_call, "seed {seed}");
        assert_eq!(inj.stats().shard_kills, 1, "seed {seed}: fires once");
        assert_eq!(tp.live_shards(), SHARDS - 1, "seed {seed}: stays dead");
    }
}

#[test]
fn router_composes_request_sharding_with_intra_gemm_sharding() {
    // Two independent parallelism axes at once: the router shards
    // requests across 2 replicas, and each replica's engine shards
    // every GEMM across 2 pools. All requests must finish, and the
    // composed run must generate the same tokens as a single
    // unsharded-engine replica (the engine is deterministic and
    // sharding is bit-exact, so composition is invisible).
    let requests = |n: u64| -> Vec<PromptRequest> {
        (0..n)
            .map(|id| {
                PromptRequest::new(
                    Request::new(id, 4, 6, id as f64 * 0.0003),
                    (0..4).map(|t| (id as usize * 7 + t) % 32).collect(),
                )
            })
            .collect()
    };
    let run = |replicas: usize, shards: usize| {
        let router = ServingRouter::builder()
            .replicas(replicas)
            .policy(RoutingPolicy::RoundRobin)
            .build()
            .unwrap();
        let out = router.run(
            move |_replica| TensorParallelEngine::new(shards, 1, BackendId::Lqq).unwrap(),
            requests(6),
        );
        let merged = out.merged();
        assert_eq!(merged.finished(), 6);
        let mut tokens: Vec<(u64, u64)> = merged
            .completions
            .iter()
            .map(|c| (c.id, c.generated))
            .collect();
        tokens.sort_unstable();
        tokens
    };
    let composed = run(2, 2);
    let flat = run(1, 1);
    assert_eq!(composed, flat, "composition must not change the workload");
}

#[test]
fn shard_kill_under_serving_runtime_is_contained_and_leak_free() {
    for seed in 0..20u64 {
        let plan = FaultPlan::from_seed_with_shards(seed, 2);
        let (victim, _) = plan.shard_kills[0];
        let inj = Arc::new(FaultInjector::new(plan));
        let tp = ShardedGemm::builder()
            .shards(2)
            .workers_per_shard(1)
            .backend(BackendId::Lqq)
            .fault_injector(Arc::clone(&inj))
            .build()
            .unwrap();
        let mut engine = TensorParallelEngine::new(2, 1, BackendId::Lqq).unwrap();
        engine.replace_sharded(tp);

        // Drive prefill/decode until the kill lands; every failure must
        // arrive as a contained EngineError carrying the typed shard
        // message, and the failed call must not register state.
        let mut errors = 0u64;
        let mut live: Vec<SeqId> = Vec::new();
        for id in 0..12u64 {
            match engine.try_prefill(id, &[1, 2, 3]) {
                Ok(tok) => {
                    match engine.try_decode_batch(&[(id, tok)]) {
                        Ok(next) => assert_eq!(next.len(), 1, "seed {seed}"),
                        Err(e) => {
                            errors += 1;
                            assert!(
                                e.to_string().contains(&format!("shard {victim}")),
                                "seed {seed}: untyped decode error: {e}"
                            );
                        }
                    }
                    live.push(id);
                }
                Err(e) => {
                    errors += 1;
                    assert!(
                        e.to_string().contains(&format!("shard {victim}")),
                        "seed {seed}: untyped prefill error: {e}"
                    );
                }
            }
        }
        assert!(errors > 0, "seed {seed}: the kill must land within 12 reqs");
        assert_eq!(inj.stats().shard_kills, 1, "seed {seed}");
        assert_eq!(engine.sharded().live_shards(), 1, "seed {seed}");

        // Leak audit: every successful registration releases cleanly;
        // failed prefills never registered anything.
        assert_eq!(engine.live_sequences(), live.len(), "seed {seed}");
        for id in live {
            ServingEngine::release(&mut engine, id);
        }
        assert_eq!(engine.live_sequences(), 0, "seed {seed}: leaked KV");
    }
}
