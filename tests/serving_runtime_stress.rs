//! Stress test for the executable serving runtime: a seeded random
//! workload of staggered arrivals, tight deadlines, and a bounded
//! queue, served by a real `TinyLlm` on a shared persistent pool.
//!
//! Invariants checked after the drain:
//! * every request completes exactly once, with a valid status split;
//! * no KV pages leak — the runtime's admission table AND every
//!   engine-layer paged store are back to fully free;
//! * finished requests produced exactly `output_len` tokens, timed-out
//!   ones strictly fewer, rejected ones none;
//! * the run is deterministic enough to re-check (same seed → same
//!   completion-status multiset on the virtual-clock-independent
//!   outcomes: rejections are decided by arrival order alone).

use liquidgemm::prelude::*;
use lq_rng::Rng;
use std::sync::Arc;

/// Queue capacity used by every stress run (referenced by the
/// guaranteed-overflow tail burst below).
const MAX_QUEUE: usize = 10;

/// Seeded workload with all three exit paths *guaranteed*, independent
/// of how fast the host decodes:
/// * request 0 arrives first with `deadline = 0.0` — it is queued into
///   an empty system, admitted, and expires as soon as measured prefill
///   time advances the clock: a certain timeout;
/// * a random middle section (arrivals, lengths, loose deadlines);
/// * a tail burst of `MAX_QUEUE + 30` simultaneous arrivals — the
///   ingest pass queues at most `MAX_QUEUE` of them before any
///   admission can run, so at least 30 are certain rejections.
fn workload(rng: &mut Rng, spec: &ModelSpec, n: u64) -> Vec<PromptRequest> {
    let mut reqs = Vec::new();
    let prompt = |rng: &mut Rng, len: usize| -> Vec<usize> {
        (0..len)
            .map(|_| (rng.next_u64() as usize) % spec.vocab)
            .collect()
    };

    reqs.push(PromptRequest::new(
        Request::new(0, 6, 8, 0.0).with_deadline(0.0),
        prompt(rng, 6),
    ));

    let mut t = 0.001f64;
    for id in 1..n {
        t += rng.f64() * 0.004; // staggered arrivals, ~2 ms apart
        let prompt_len = 4 + (rng.next_u64() % 13) as usize;
        let output_len = 1 + (rng.next_u64() % 24) as usize;
        let mut meta = Request::new(id, prompt_len, output_len, t);
        if rng.next_u64().is_multiple_of(3) {
            meta = meta.with_deadline(rng.f64() * 0.05);
        }
        reqs.push(PromptRequest::new(meta, prompt(rng, prompt_len)));
    }

    let burst_at = t + 0.005;
    for i in 0..(MAX_QUEUE as u64 + 30) {
        let prompt_len = 4 + (rng.next_u64() % 9) as usize;
        reqs.push(PromptRequest::new(
            Request::new(n + i, prompt_len, 8, burst_at),
            prompt(rng, prompt_len),
        ));
    }
    reqs
}

#[test]
fn stress_no_kv_leaks_after_drain() {
    let spec = ModelSpec::tiny();
    let pool = Arc::new(LiquidGemm::builder().workers(2).build().unwrap());
    let mut model = TinyLlm::synthetic_with_engine(spec, 1024, KernelKind::ImFp, pool);
    let engine_free_start: Vec<usize> = model.kv.iter().map(|s| s.table.free_pages()).collect();

    let mut rng = Rng::new(0xC0FFEE);
    let requests = workload(&mut rng, &spec, 120);
    let n = requests.len();

    let cfg = SchedulerConfig::builder()
        .max_batch(6)
        .page_tokens(16)
        .max_queue(MAX_QUEUE)
        .build()
        .unwrap();
    let mut runtime = ServingRuntime::new(cfg, 1024);
    let stats = runtime.run(&mut model, requests);

    // Every request completes exactly once.
    assert_eq!(stats.completions.len(), n);
    let mut ids: Vec<u64> = stats.completions.iter().map(|c| c.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "a request completed twice or not at all");
    assert_eq!(
        stats.finished() + stats.timed_out() + stats.rejected(),
        n,
        "statuses must partition the workload"
    );
    assert!(stats.finished() > 0, "nothing finished");

    // Token accounting per status.
    for c in &stats.completions {
        match c.status {
            CompletionStatus::Rejected => {
                assert_eq!(c.generated, 0);
                assert_eq!(c.latency(), 0.0);
            }
            CompletionStatus::TimedOut => {
                assert!(c.latency() >= 0.0);
            }
            CompletionStatus::Finished => {
                assert!(c.generated >= 1);
                assert!(c.latency() > 0.0);
                assert!(c.queue_delay() >= 0.0);
            }
            CompletionStatus::Failed => unreachable!("no faults injected"),
        }
    }
    let counted: u64 = stats.completions.iter().map(|c| c.generated).sum();
    assert_eq!(counted, stats.generated_tokens, "token ledger must balance");

    // No KV pages leaked: runtime admission table fully free ...
    assert_eq!(runtime.kv().free_pages(), runtime.kv().total_pages());
    assert!(runtime.kv().check_invariants());
    // ... and every engine layer's paged store back to its start state.
    for (layer, (store, &free0)) in model.kv.iter().zip(engine_free_start.iter()).enumerate() {
        assert_eq!(
            store.table.free_pages(),
            free0,
            "layer {layer} leaked KV pages"
        );
        assert!(store.table.check_invariants(), "layer {layer} invariants");
    }
}

#[test]
fn priority_preemption_fires_and_leaks_nothing() {
    // `lq_serving_preemptions_total` used to be a standing always-0
    // invariant; under `PreemptionPolicy::PriorityKv` it is a real
    // event count. Drive a guaranteed preemption against the real
    // engine with telemetry ON: a Low request sized to fill the whole
    // admission table is running when a High request arrives, so High
    // can only admit by evicting Low — then audit that the counter
    // moved and that eviction + re-queue released every KV page at
    // both the runtime and engine layers.
    liquidgemm::telemetry::enable();
    let spec = ModelSpec::tiny();
    let pool = Arc::new(LiquidGemm::builder().workers(2).build().unwrap());
    let mut model = TinyLlm::synthetic_with_engine(spec, 1024, KernelKind::ImFp, pool);
    let engine_free_start: Vec<usize> = model.kv.iter().map(|s| s.table.free_pages()).collect();
    let before = liquidgemm::telemetry::registry()
        .counter("lq_serving_preemptions_total")
        .get();

    let mut rng = Rng::new(0xBEEF);
    let prompt = |rng: &mut Rng, len: usize| -> Vec<usize> {
        (0..len)
            .map(|_| (rng.next_u64() as usize) % spec.vocab)
            .collect()
    };
    let requests = vec![
        // Fills the 32-token admission table (8 + 24 = 2 pages of 16).
        PromptRequest::new(
            Request::new(0, 8, 24, 0.0).with_priority(Priority::Low),
            prompt(&mut rng, 8),
        ),
        // Arrives mid-prefill of Low (any measured prefill outlasts
        // 1e-12 s of virtual time): must preempt to fit.
        PromptRequest::new(
            Request::new(1, 8, 8, 1e-12).with_priority(Priority::High),
            prompt(&mut rng, 8),
        ),
    ];
    let mut runtime = ServingRuntime::builder()
        .page_tokens(16)
        .kv_budget_tokens(32)
        .preemption(PreemptionPolicy::PriorityKv)
        .build()
        .unwrap();
    let stats = runtime.run(&mut model, requests);

    assert!(stats.preemptions >= 1, "High must preempt Low");
    assert!(stats.preempted_tokens >= 1, "victim had produced tokens");
    assert_eq!(stats.finished(), 2, "victim re-queues and still finishes");
    let counted: u64 = stats.completions.iter().map(|c| c.generated).sum();
    assert_eq!(counted, stats.generated_tokens, "token ledger must balance");
    let after = liquidgemm::telemetry::registry()
        .counter("lq_serving_preemptions_total")
        .get();
    assert!(
        after - before >= stats.preemptions,
        "preemption counter must move with RunStats"
    );

    // Zero-KV-leak audit across both allocation layers.
    assert_eq!(runtime.kv().free_pages(), runtime.kv().total_pages());
    assert!(runtime.kv().check_invariants());
    for (layer, (store, &free0)) in model.kv.iter().zip(engine_free_start.iter()).enumerate() {
        assert_eq!(
            store.table.free_pages(),
            free0,
            "layer {layer} leaked KV pages across preemption"
        );
        assert!(store.table.check_invariants(), "layer {layer} invariants");
    }
}

#[test]
fn stress_timeouts_and_rejections_actually_occur() {
    // The workload must genuinely exercise all three exit paths, or
    // the leak assertions above prove nothing about eviction/rejection.
    let spec = ModelSpec::tiny();
    let pool = Arc::new(LiquidGemm::builder().workers(2).build().unwrap());
    let mut model = TinyLlm::synthetic_with_engine(spec, 1024, KernelKind::ImFp, pool);
    let mut rng = Rng::new(0xC0FFEE);
    let requests = workload(&mut rng, &spec, 120);
    let cfg = SchedulerConfig::builder()
        .max_batch(6)
        .page_tokens(16)
        .max_queue(MAX_QUEUE)
        .build()
        .unwrap();
    let stats = ServingRuntime::new(cfg, 1024).run(&mut model, requests);
    assert!(stats.timed_out() > 0, "workload produced no timeouts");
    assert!(stats.rejected() > 0, "workload produced no rejections");
}

#[test]
fn simulation_and_runtime_share_one_request_api() {
    // The same Request workload (metadata only) must drive the
    // simulation backend unchanged — the unified-API guarantee.
    let mut rng = Rng::new(7);
    let spec = ModelSpec::tiny();
    let metas: Vec<Request> = workload(&mut rng, &spec, 60)
        .into_iter()
        .map(|p| p.meta)
        .collect();
    let n = metas.len();
    let sys = ServingSystem::of(SystemId::LiquidServe);
    let stats = run_schedule(
        &sys,
        &liquidgemm::sim::specs::H800,
        &liquidgemm::models::configs::LLAMA2_7B,
        SchedulerConfig::default(),
        &metas,
    );
    assert_eq!(stats.completions.len(), n);
    assert_eq!(stats.finished() + stats.timed_out() + stats.rejected(), n);
}
