//! Trace correctness: the invariants the lq-trace event streams must
//! uphold so the Perfetto export and the analyzer can be trusted.
//!
//! * every pool `job_start` has a matching `job_finish` (same job ID);
//! * every serving request's events are totally ordered by the virtual
//!   clock and bracketed by exactly one ingest and one completion;
//! * ring overflow drops the *oldest* events, never blocks, and counts
//!   drops in `lq_trace_dropped_total`.
//!
//! The recording tests share the process-global tracer, so they
//! serialize on one mutex and drain the buffers at entry — parallel
//! test threads must not interleave their event streams.

use liquidgemm::core::packed::PackedLqqLinear;
use liquidgemm::prelude::*;
use liquidgemm::quant::act::QuantizedActivations;
use liquidgemm::quant::mat::Mat;
use liquidgemm::trace as tr;
use lq_rng::Rng;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Serialize tests that record into (and drain) the global tracer.
fn trace_lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn fixture(m: usize, n: usize, k: usize) -> (Mat<i8>, Vec<f32>, W4A8Weights) {
    let xf = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.13).sin() * 1.5);
    let wf = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.04).cos());
    let qa = QuantizedActivations::quantize(&xf, None);
    (
        qa.q,
        qa.scales,
        W4A8Weights::lqq(PackedLqqLinear::quantize(&wf, 64)),
    )
}

#[test]
fn pool_trace_every_start_has_a_matching_finish() {
    let _g = trace_lock();
    tr::enable();
    let _ = tr::take_events(); // drop another test's leftovers

    let lg = LiquidGemm::builder().workers(3).build().unwrap();
    let (x, s, w) = fixture(5, 64, 128);
    let want = lg.gemm(&x, &s, &w, KernelKind::Serial).y;
    for kind in [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp] {
        let got = lg.gemm(&x, &s, &w, kind).y;
        assert_eq!(got.as_slice(), want.as_slice(), "{kind:?} result changed");
    }
    // `job_finish` is recorded by the worker *after* the reply that
    // unblocks the caller; joining the pool flushes every in-flight
    // record before the drain.
    drop(lg);

    let evs = tr::take_events();
    let mut started: HashMap<u64, u64> = HashMap::new();
    let mut finished: HashSet<u64> = HashSet::new();
    let mut submitted: HashSet<u64> = HashSet::new();
    for ev in &evs {
        match ev.kind {
            tr::EventKind::JobSubmit => {
                submitted.insert(ev.a);
            }
            tr::EventKind::JobStart => {
                *started.entry(ev.a).or_insert(0) += 1;
            }
            tr::EventKind::JobFinish => {
                assert!(ev.dur_ns > 0, "finish span without duration");
                finished.insert(ev.a);
            }
            _ => {}
        }
    }
    assert!(!started.is_empty(), "no jobs traced");
    for (id, n) in &started {
        assert_eq!(*n, 1, "job {id} started {n} times without a fault");
        assert!(finished.contains(id), "job {id} started but never finished");
        assert!(
            submitted.contains(id),
            "job {id} started but never submitted"
        );
    }
    // ExCP forwards one MMA job per Dequant job, so more jobs finish
    // than were placed externally — and each still matched above.
    assert_eq!(started.len(), finished.len());

    // Stage spans exist for all three roles (flat/imfp → compute,
    // excp → dequant + mma) plus the caller's load stage.
    for kind in [
        tr::EventKind::StageLoad,
        tr::EventKind::StageCompute,
        tr::EventKind::StageDequant,
        tr::EventKind::StageMma,
    ] {
        assert!(
            evs.iter().any(|e| e.kind == kind),
            "no {} span traced",
            kind.name()
        );
    }
}

#[test]
fn serving_trace_is_virtually_ordered_per_request() {
    let _g = trace_lock();
    tr::enable();
    let _ = tr::take_events();

    let spec = ModelSpec::tiny();
    let pool = Arc::new(LiquidGemm::builder().workers(2).build().unwrap());
    let mut model = TinyLlm::synthetic_with_engine(spec, 1024, KernelKind::ImFp, pool);
    let mut rng = Rng::new(0x7ACE);
    let requests: Vec<PromptRequest> = (0..8u64)
        .map(|id| {
            let prompt_len = 4 + (rng.next_u64() % 8) as usize;
            let prompt = (0..prompt_len)
                .map(|_| (rng.next_u64() as usize) % spec.vocab)
                .collect();
            PromptRequest::new(Request::new(id, prompt_len, 4, id as f64 * 0.0005), prompt)
        })
        .collect();
    let cfg = SchedulerConfig::builder().max_batch(4).build().unwrap();
    let stats = ServingRuntime::new(cfg, 1024).run(&mut model, requests);
    assert_eq!(stats.completions.len(), 8);
    drop(model);

    let evs = tr::take_events();
    let mut per_req: HashMap<u64, Vec<&tr::Event>> = HashMap::new();
    for ev in &evs {
        if let tr::Track::Request(id) = ev.track {
            per_req.entry(id).or_default().push(ev);
        }
    }
    assert_eq!(per_req.len(), 8, "every request must leave a track");
    for (id, evs) in &per_req {
        // Exactly one ingest, one admission, one completion.
        let count = |k: tr::EventKind| evs.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(tr::EventKind::ReqIngest), 1, "request {id}");
        assert_eq!(count(tr::EventKind::ReqAdmit), 1, "request {id}");
        assert_eq!(count(tr::EventKind::ReqComplete), 1, "request {id}");
        assert_eq!(count(tr::EventKind::KvReserve), 1, "request {id}");
        assert_eq!(count(tr::EventKind::KvRelease), 1, "request {id}");
        // Total order on the virtual clock, in recorded (wall) order.
        for pair in evs.windows(2) {
            assert!(
                pair[0].vts_ns <= pair[1].vts_ns,
                "request {id}: {} (vts {}) recorded before {} (vts {})",
                pair[0].kind.name(),
                pair[0].vts_ns,
                pair[1].kind.name(),
                pair[1].vts_ns
            );
        }
        let first = evs.first().expect("nonempty");
        let last = evs.last().expect("nonempty");
        assert_eq!(first.kind, tr::EventKind::ReqIngest, "request {id}");
        assert_eq!(last.kind, tr::EventKind::ReqComplete, "request {id}");
    }

    // The analyzer reconstructs all 8 paths, each decomposition summing
    // exactly to its total.
    let paths = tr::analyze::request_paths(&evs);
    assert_eq!(paths.len(), 8);
    for p in &paths {
        assert_eq!(
            p.queue_ns + p.prefill_ns + p.decode_ns + p.other_ns,
            p.total_ns,
            "request {} decomposition does not sum",
            p.id
        );
        assert_eq!(p.status, 0, "all requests finished");
    }

    // Correlation: some pool job must carry a request or batch-step ID.
    assert!(
        evs.iter()
            .any(|e| e.kind == tr::EventKind::JobStart && e.corr != 0),
        "no pool job inherited a serving correlation ID"
    );
}

#[test]
fn sharded_collective_spans_pair_per_call() {
    let _g = trace_lock();
    tr::enable();
    let _ = tr::take_events();

    const SHARDS: usize = 3;
    let tp = ShardedGemm::builder()
        .shards(SHARDS)
        .workers_per_shard(1)
        .build()
        .unwrap();
    let (x, s, _) = fixture(4, 31, 128);
    let wf = Mat::from_fn(31, 128, |r, c| ((r * 128 + c) as f32 * 0.04).cos());
    let sw = tp.pack_weights(&wf, 64);
    for _ in 0..2 {
        tp.gemm(&x, &s, &sw, KernelKind::ImFp).unwrap();
        tp.gemm_row(&x, &s, &sw).unwrap();
    }
    drop(tp);

    let evs = tr::take_events();
    for kind in [tr::EventKind::AllGather, tr::EventKind::AllReduce] {
        let mut spans: Vec<&tr::Event> = evs.iter().filter(|e| e.kind == kind).collect();
        assert_eq!(
            spans.len(),
            2 * SHARDS,
            "{}: one span per shard per call",
            kind.name()
        );
        // Chunked in start order, every call's group carries the full
        // shard set exactly once and the correct shard count.
        spans.sort_by_key(|e| e.ts_ns);
        for (call, chunk) in spans.chunks(SHARDS).enumerate() {
            let mut shards: Vec<u64> = chunk.iter().map(|e| e.a).collect();
            shards.sort_unstable();
            assert_eq!(
                shards,
                (0..SHARDS as u64).collect::<Vec<_>>(),
                "{} call {call}: shard set",
                kind.name()
            );
            assert!(
                chunk.iter().all(|e| e.b == SHARDS as u64),
                "{} call {call}: shard count on every span",
                kind.name()
            );
        }
    }

    // The analyzer groups them into 2 + 2 collectives with sane skew.
    let colls = tr::analyze::shard_collectives(&evs);
    assert_eq!(colls.len(), 4);
    for c in &colls {
        assert_eq!(c.shards, SHARDS as u64);
        assert_eq!(c.skew_ns, c.slowest_ns - c.fastest_ns);
        assert!(c.slowest_ns >= c.fastest_ns);
    }
}

#[test]
fn critical_paths_still_sum_exactly_when_gemms_span_pools() {
    let _g = trace_lock();
    tr::enable();
    let _ = tr::take_events();

    // A serving run whose every GEMM is tensor-parallel across 2 pools.
    let mut engine = TensorParallelEngine::new(2, 1, BackendId::Lqq).unwrap();
    let vocab = engine.vocab();
    let mut rng = Rng::new(0x7ACE_5A4D);
    let requests: Vec<PromptRequest> = (0..6u64)
        .map(|id| {
            let prompt_len = 3 + (rng.next_u64() % 5) as usize;
            let prompt = (0..prompt_len)
                .map(|_| (rng.next_u64() as usize) % vocab)
                .collect();
            PromptRequest::new(Request::new(id, prompt_len, 4, id as f64 * 0.0004), prompt)
        })
        .collect();
    let cfg = SchedulerConfig::builder().max_batch(3).build().unwrap();
    let stats = ServingRuntime::new(cfg, 1024).run(&mut engine, requests);
    assert_eq!(stats.completions.len(), 6);
    drop(engine);

    let evs = tr::take_events();
    // Intra-GEMM collectives happened inside the serving run and
    // inherited its correlation IDs.
    let gathers: Vec<&tr::Event> = evs
        .iter()
        .filter(|e| e.kind == tr::EventKind::AllGather)
        .collect();
    let reduces: Vec<&tr::Event> = evs
        .iter()
        .filter(|e| e.kind == tr::EventKind::AllReduce)
        .collect();
    assert!(!gathers.is_empty() && !reduces.is_empty());
    assert!(
        gathers.iter().chain(&reduces).any(|e| e.corr != 0),
        "collective spans must inherit the serving correlation"
    );

    // The per-request decomposition invariant survives intra-GEMM
    // sharding: segments still sum exactly to the measured latency.
    let paths = tr::analyze::request_paths(&evs);
    assert_eq!(paths.len(), 6);
    for p in &paths {
        assert_eq!(
            p.queue_ns + p.prefill_ns + p.decode_ns + p.other_ns,
            p.total_ns,
            "request {} decomposition does not sum under sharding",
            p.id
        );
    }
}

#[test]
fn ring_overflow_drops_oldest_and_counts_in_telemetry() {
    liquidgemm::telemetry::enable();
    tr::enable();
    let before = liquidgemm::telemetry::registry()
        .counter("lq_trace_dropped_total")
        .get();
    let t = tr::Tracer::new(8);
    for i in 0..20u64 {
        t.push(
            3,
            tr::Event {
                ts_ns: i,
                dur_ns: 0,
                vts_ns: 0,
                kind: tr::EventKind::JobStart,
                track: tr::Track::Worker(0),
                corr: 0,
                a: i,
                b: 0,
            },
        );
    }
    assert_eq!(t.dropped(), 12, "oldest 12 of 20 dropped at capacity 8");
    let kept: Vec<u64> = t.drain().iter().map(|e| e.ts_ns).collect();
    assert_eq!(
        kept,
        (12..20).collect::<Vec<u64>>(),
        "newest survive in order"
    );
    let after = liquidgemm::telemetry::registry()
        .counter("lq_trace_dropped_total")
        .get();
    assert!(
        after >= before + 12,
        "lq_trace_dropped_total must count ring drops ({before} -> {after})"
    );
}
