//! Facade-level integration: serve several sequences concurrently
//! through the executable engine (batched decode over shared weights,
//! per-sequence paged INT8 KV), mirroring the serving system's
//! continuous-batching data path at CPU scale.

use liquidgemm::core::KernelKind;
use liquidgemm::engine::attention::AttnConfig;
use liquidgemm::engine::model::{argmax, ModelSpec, TinyLlm};
use liquidgemm::engine::sampling::{sample, SampleRng, Sampling};

fn spec() -> ModelSpec {
    ModelSpec {
        vocab: 64,
        hidden: 64,
        inter: 96,
        layers: 2,
        attn: AttnConfig {
            heads: 4,
            kv_heads: 2,
            head_dim: 16,
        },
        group: 32,
    }
}

#[test]
fn mixed_length_batch_serving_round() {
    // Three sequences with different prompt lengths join the batch at
    // different steps; each must see only its own cache.
    let mut m = TinyLlm::synthetic(spec(), 128, KernelKind::Serial);
    let prompts: [&[usize]; 3] = [&[1, 2], &[10, 11, 12, 13], &[30]];
    for (i, p) in prompts.iter().enumerate() {
        m.add_sequence(i as u64);
        let _ = m.prefill(i as u64, p);
    }
    // Joint decode: all three advance together from their own positions.
    let mut positions: Vec<usize> = prompts.iter().map(|p| p.len()).collect();
    let seqs: Vec<u64> = vec![0, 1, 2];
    let mut tokens = vec![5usize, 6, 7];
    for _ in 0..4 {
        let logits = m.decode_step(&tokens, &seqs, &positions);
        assert_eq!(logits.rows(), 3);
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
        tokens = (0..3).map(|i| argmax(logits.row(i))).collect();
        for p in &mut positions {
            *p += 1;
        }
    }
    // Cache lengths: prompt + 4 decode appends each.
    for (i, p) in prompts.iter().enumerate() {
        assert_eq!(m.kv[0].len_of(i as u64).unwrap(), p.len() + 4);
    }
}

#[test]
fn sequence_retirement_frees_capacity_for_new_ones() {
    // Small page pool: serving works only if finished sequences free
    // their pages.
    let mut m = TinyLlm::synthetic(spec(), 6, KernelKind::Serial); // 6 pages × 16 tokens
    for round in 0..5u64 {
        m.add_sequence(round);
        let _ = m.prefill(round, &[1, 2, 3, 4]);
        for pos in 4..40 {
            let _ = m.decode_step(&[pos % 60], &[round], &[pos]);
        }
        for store in &mut m.kv {
            store.free_sequence(round).expect("live sequence");
        }
    }
    // If pages leaked, a later round would have hit OutOfMemory inside
    // decode_step's append (which panics via expect); reaching here with
    // full free lists proves conservation.
    for store in &m.kv {
        assert_eq!(store.table.free_pages(), store.table.total_pages());
        assert!(store.table.check_invariants());
    }
}

#[test]
fn sampled_serving_is_reproducible_across_identical_runs() {
    let run = || {
        let mut m = TinyLlm::synthetic(spec(), 128, KernelKind::Serial);
        m.add_sequence(0);
        let mut rng = SampleRng::new(1234);
        let mut logits = m.prefill(0, &[3, 9, 27]);
        let mut out = Vec::new();
        for pos in 3..11 {
            let t = sample(
                logits.row(0),
                Sampling::TopK {
                    k: 4,
                    temperature: 0.7,
                },
                &mut rng,
            );
            out.push(t);
            logits = m.decode_step(&[t], &[0], &[pos]);
        }
        out
    };
    assert_eq!(run(), run());
}

#[test]
fn parallel_kernel_engine_matches_serial_engine() {
    // The whole engine run must be bit-identical whether its GEMMs use
    // the serial kernel or the ImFP pipeline.
    let mut a = TinyLlm::synthetic(spec(), 64, KernelKind::Serial);
    let mut b = TinyLlm::synthetic(spec(), 64, KernelKind::ImFp);
    let out_a = a.generate_greedy(0, &[2, 4, 8], 6);
    let out_b = b.generate_greedy(0, &[2, 4, 8], 6);
    assert_eq!(out_a, out_b);
}
