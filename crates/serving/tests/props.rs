//! Property-based tests for the serving substrate.

use lq_models::configs::{LLAMA2_70B, LLAMA2_7B, MIXTRAL_8X7B};
use lq_serving::decode::decode_step;
use lq_serving::kvcache::PagedKvCache;
use lq_serving::system::{ServingSystem, SystemId};
use lq_serving::throughput::{max_feasible_batch, throughput_at_batch};
use lq_sim::specs::H800;
use proptest::prelude::*;

/// A random operation on the paged allocator.
#[derive(Debug, Clone)]
enum Op {
    Add { id: u64, tokens: usize },
    Append { id: u64 },
    Free { id: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..12, 1usize..80).prop_map(|(id, tokens)| Op::Add { id, tokens }),
        (0u64..12).prop_map(|id| Op::Append { id }),
        (0u64..12).prop_map(|id| Op::Free { id }),
    ]
}

proptest! {
    /// The paged allocator's conservation invariant survives arbitrary
    /// operation sequences (including errors).
    #[test]
    fn kvcache_invariants_under_random_ops(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut cache = PagedKvCache::new(64 * 64, 16, 4); // 64 pages
        for op in ops {
            match op {
                Op::Add { id, tokens } => { let _ = cache.add_sequence(id, tokens); }
                Op::Append { id } => { let _ = cache.append_token(id); }
                Op::Free { id } => { let _ = cache.free_sequence(id); }
            }
            prop_assert!(cache.check_invariants());
            prop_assert!(cache.free_pages() <= cache.total_pages());
        }
    }

    /// Decode-step latency is monotone in batch size and context length
    /// for every system (no pathological non-monotonicity in the model).
    #[test]
    fn decode_step_monotone(b1 in 1usize..128, db in 1usize..128, ctx in 64usize..2048) {
        let b2 = b1 + db;
        for id in [SystemId::LiquidServe, SystemId::QServe, SystemId::TrtFp8] {
            let sys = ServingSystem::of(id);
            let t1 = decode_step(&sys, &H800, &LLAMA2_7B, b1, ctx).total();
            let t2 = decode_step(&sys, &H800, &LLAMA2_7B, b2, ctx).total();
            prop_assert!(t2 >= t1, "{:?}: {t2} < {t1}", id);
            let t3 = decode_step(&sys, &H800, &LLAMA2_7B, b1, ctx + 256).total();
            prop_assert!(t3 >= t1, "{:?}: ctx", id);
        }
    }

    /// Feasible batch shrinks (weakly) as sequences get longer, and the
    /// 4-bit system always fits at least as many as the 16-bit one.
    #[test]
    fn feasible_batch_monotonicity(in_len in 128usize..2048, extra in 0usize..1024) {
        let cap = H800.mem_capacity as f64;
        for cfg in [&LLAMA2_7B, &LLAMA2_70B, &MIXTRAL_8X7B] {
            let liquid = ServingSystem::of(SystemId::LiquidServe);
            let fp16 = ServingSystem::of(SystemId::TrtFp16);
            let short = max_feasible_batch(&liquid, cfg, cap, in_len, 128);
            let long = max_feasible_batch(&liquid, cfg, cap, in_len + extra, 128);
            prop_assert!(long <= short);
            let f16 = max_feasible_batch(&fp16, cfg, cap, in_len, 128);
            prop_assert!(short >= f16, "{}: {short} < {f16}", cfg.name);
        }
    }

    /// Throughput is always positive and bounded by batch / fastest
    /// conceivable step (sanity envelope).
    #[test]
    fn throughput_envelope(batch in 1usize..200) {
        let sys = ServingSystem::of(SystemId::LiquidServe);
        let t = throughput_at_batch(&sys, &H800, &LLAMA2_7B, batch, 1024, 512);
        prop_assert!(t > 0.0);
        // Even a 1 µs step (absurd) would cap throughput at batch/1e-6.
        prop_assert!(t < batch as f64 / 1e-6);
    }
}
