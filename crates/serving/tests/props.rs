//! Randomized property tests for the serving substrate (seeded in-tree
//! PRNG; offline sandbox has no proptest).

use lq_models::configs::{LLAMA2_70B, LLAMA2_7B, MIXTRAL_8X7B};
use lq_rng::Rng;
use lq_serving::decode::decode_step;
use lq_serving::kvcache::PagedKvCache;
use lq_serving::system::{ServingSystem, SystemId};
use lq_serving::throughput::{max_feasible_batch, throughput_at_batch};
use lq_sim::specs::H800;

/// A random operation on the paged allocator.
#[derive(Debug, Clone)]
enum Op {
    Add { id: u64, tokens: usize },
    Append { id: u64 },
    Free { id: u64 },
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.below(3) {
        0 => Op::Add {
            id: rng.below(12),
            tokens: rng.range_usize(1, 80),
        },
        1 => Op::Append { id: rng.below(12) },
        _ => Op::Free { id: rng.below(12) },
    }
}

/// The paged allocator's conservation invariant survives arbitrary
/// operation sequences (including errors).
#[test]
fn kvcache_invariants_under_random_ops() {
    let mut rng = Rng::new(0x5E4B_0001);
    for case in 0..64 {
        let mut cache = PagedKvCache::new(64 * 64, 16, 4); // 64 pages
        for step in 0..rng.range_usize(1, 200) {
            match random_op(&mut rng) {
                Op::Add { id, tokens } => {
                    let _ = cache.add_sequence(id, tokens);
                }
                Op::Append { id } => {
                    let _ = cache.append_token(id);
                }
                Op::Free { id } => {
                    let _ = cache.free_sequence(id);
                }
            }
            assert!(cache.check_invariants(), "case {case} step {step}");
            assert!(cache.free_pages() <= cache.total_pages());
        }
    }
}

/// Decode-step latency is monotone in batch size and context length
/// for every system (no pathological non-monotonicity in the model).
#[test]
fn decode_step_monotone() {
    let mut rng = Rng::new(0x5E4B_0002);
    for _ in 0..48 {
        let b1 = rng.range_usize(1, 128);
        let b2 = b1 + rng.range_usize(1, 128);
        let ctx = rng.range_usize(64, 2048);
        for id in [SystemId::LiquidServe, SystemId::QServe, SystemId::TrtFp8] {
            let sys = ServingSystem::of(id);
            let t1 = decode_step(&sys, &H800, &LLAMA2_7B, b1, ctx).total();
            let t2 = decode_step(&sys, &H800, &LLAMA2_7B, b2, ctx).total();
            assert!(t2 >= t1, "{id:?}: {t2} < {t1}");
            let t3 = decode_step(&sys, &H800, &LLAMA2_7B, b1, ctx + 256).total();
            assert!(t3 >= t1, "{id:?}: ctx");
        }
    }
}

/// Feasible batch shrinks (weakly) as sequences get longer, and the
/// 4-bit system always fits at least as many as the 16-bit one.
#[test]
fn feasible_batch_monotonicity() {
    let mut rng = Rng::new(0x5E4B_0003);
    for _ in 0..48 {
        let in_len = rng.range_usize(128, 2048);
        let extra = rng.range_usize(0, 1024);
        let cap = H800.mem_capacity as f64;
        for cfg in [&LLAMA2_7B, &LLAMA2_70B, &MIXTRAL_8X7B] {
            let liquid = ServingSystem::of(SystemId::LiquidServe);
            let fp16 = ServingSystem::of(SystemId::TrtFp16);
            let short = max_feasible_batch(&liquid, cfg, cap, in_len, 128);
            let long = max_feasible_batch(&liquid, cfg, cap, in_len + extra, 128);
            assert!(long <= short);
            let f16 = max_feasible_batch(&fp16, cfg, cap, in_len, 128);
            assert!(short >= f16, "{}: {short} < {f16}", cfg.name);
        }
    }
}

/// Throughput is always positive and bounded by batch / fastest
/// conceivable step (sanity envelope).
#[test]
fn throughput_envelope() {
    let mut rng = Rng::new(0x5E4B_0004);
    for _ in 0..64 {
        let batch = rng.range_usize(1, 200);
        let sys = ServingSystem::of(SystemId::LiquidServe);
        let t = throughput_at_batch(&sys, &H800, &LLAMA2_7B, batch, 1024, 512);
        assert!(t > 0.0);
        // Even a 1 µs step (absurd) would cap throughput at batch/1e-6.
        assert!(t < batch as f64 / 1e-6);
    }
}
