//! Executable continuous-batching serving runtime — the *measured*
//! backend of the shared serving API in [`crate::request`].
//!
//! Where [`crate::scheduler::run_schedule`] advances modelled time from
//! the cost model, [`ServingRuntime`] drives a real engine: admission
//! control against the same [`PagedKvCache`] reservation rule, batched
//! prefill on admission, and iteration-level decode in which every
//! running sequence contributes one row to a single M=batch forward
//! pass per iteration — on `lq_engine::TinyLlm` that stacks all live
//! sequences into one activation matrix per layer and submits it as one
//! GEMM to the shared `Arc<LiquidGemm>` pool (the CPU analogue of the
//! paper's batched decode GEMMs, Figure 10 / Table 1).
//!
//! The runtime is generic over [`ServingEngine`] so `lq-serving` does
//! not depend on `lq-engine` (which depends back on this crate for the
//! KV page tables); `TinyLlm` implements the trait in `lq-engine`.
//!
//! Time is a virtual clock in seconds: it advances by the *measured*
//! wall-clock duration of each prefill/decode call and jumps forward
//! over idle gaps to the next arrival. Request latencies therefore
//! reflect real compute while arrival schedules stay reproducible —
//! makespan is (compute time) + (idle gaps), never inflated by host
//! scheduling between runs.
//!
//! Robustness mirrors the simulation backend exactly: per-request
//! deadlines evict with clean KV-page release
//! ([`CompletionStatus::TimedOut`]), a bounded queue rejects arrivals
//! when full ([`CompletionStatus::Rejected`]), and per-request
//! latency / queue-delay histograms are recorded in telemetry.
//!
//! ## Failure containment
//!
//! The serving loop is the unit that must stay up, so engine calls go
//! through the [`ServingEngine`] `try_*` wrappers, which catch unwinds
//! at the call boundary and surface them as [`EngineError`]s. A failed
//! prefill kills only that request; a failed decode step kills the
//! running batch (the engine's state for those sequences is unknown) —
//! in both cases every KV page is released and the request completes
//! as [`CompletionStatus::Failed`] instead of unwinding through the
//! loop. Denied KV allocations (e.g. an injected fault from
//! [`ServingRuntime::with_fault_injector`]) take the same path.
//! Malformed requests with non-finite arrival or deadline are rejected
//! at ingest — a NaN arrival used to panic the arrival sort.

use crate::kvcache::{PagedKvCache, SeqId};
use crate::request::{
    Completion, CompletionStatus, PreemptionPolicy, Priority, Request, RunStats, SchedulerConfig,
    SchedulerConfigError,
};
use crate::telemetry::SchedMetrics;
use lq_chaos::FaultInjector;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// An engine call that panicked; caught at the runtime boundary by the
/// [`ServingEngine`] `try_*` wrappers and mapped to
/// [`CompletionStatus::Failed`].
#[derive(Debug, Clone)]
pub struct EngineError {
    message: String,
}

impl EngineError {
    fn from_panic(payload: &(dyn std::any::Any + Send)) -> Self {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "engine panicked".to_string());
        Self { message }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine call panicked: {}", self.message)
    }
}

impl std::error::Error for EngineError {}

/// The model-side contract the runtime schedules over.
///
/// Implementations own their KV state per sequence; the runtime owns
/// admission (so an engine sized for at least the runtime's KV token
/// budget never sees OOM).
pub trait ServingEngine {
    /// Register `id`, run prefill over `prompt` (one M=prompt-length
    /// pass), and return the first generated token.
    fn prefill(&mut self, id: SeqId, prompt: &[usize]) -> usize;

    /// One batched decode iteration: for each `(id, last_token)` slot,
    /// feed `last_token` to sequence `id` and return its next token.
    /// All slots advance in a single M=batch forward pass.
    fn decode_batch(&mut self, slots: &[(SeqId, usize)]) -> Vec<usize>;

    /// Drop sequence `id` and release its engine-side KV pages. Called
    /// on finish and on deadline eviction.
    fn release(&mut self, id: SeqId);

    /// [`Self::prefill`] with unwind containment: a panicking engine
    /// becomes an [`EngineError`] instead of tearing down the loop.
    fn try_prefill(&mut self, id: SeqId, prompt: &[usize]) -> Result<usize, EngineError> {
        catch_unwind(AssertUnwindSafe(|| self.prefill(id, prompt)))
            .map_err(|p| EngineError::from_panic(p.as_ref()))
    }

    /// [`Self::decode_batch`] with unwind containment.
    fn try_decode_batch(&mut self, slots: &[(SeqId, usize)]) -> Result<Vec<usize>, EngineError> {
        catch_unwind(AssertUnwindSafe(|| self.decode_batch(slots)))
            .map_err(|p| EngineError::from_panic(p.as_ref()))
    }

    /// [`Self::release`] with unwind containment. Used on the failure
    /// path, where the engine may hold no state for `id` (a prefill
    /// that panicked half-registered) and its own release assertions
    /// must not escalate the cleanup into another unwind.
    fn try_release(&mut self, id: SeqId) {
        let _ = catch_unwind(AssertUnwindSafe(|| self.release(id)));
    }
}

/// A [`Request`] paired with its actual prompt tokens.
#[derive(Debug, Clone)]
pub struct PromptRequest {
    /// Scheduling metadata (shared with the simulation backend).
    pub meta: Request,
    /// Prompt token ids (length must equal `meta.prompt_len`).
    pub prompt: Vec<usize>,
}

impl PromptRequest {
    /// Pair a request with its prompt tokens.
    #[must_use]
    pub fn new(meta: Request, prompt: Vec<usize>) -> Self {
        assert_eq!(
            meta.prompt_len,
            prompt.len(),
            "prompt_len must match the prompt"
        );
        Self { meta, prompt }
    }
}

/// The serving runtime's virtual clock (seconds) as trace-event
/// virtual-timestamp nanoseconds.
fn vns(t: f64) -> u64 {
    (t * 1e9) as u64
}

/// A sequence currently decoding. The full [`PromptRequest`] rides
/// along so a preempted or evacuated sequence can re-queue and restart
/// from prefill with its original metadata.
struct Running {
    req: PromptRequest,
    admitted_at: f64,
    produced: usize,
    last_token: usize,
}

impl Running {
    fn id(&self) -> u64 {
        self.req.meta.id
    }
}

/// Result of [`ServingRuntime::run_with_halt`]: the completions of the
/// run plus whatever was still in flight when the halt tripped.
#[derive(Debug)]
pub struct DrainedRun {
    /// Completions of everything that left the system before the halt.
    pub stats: RunStats,
    /// Requests evacuated mid-flight (running sequences — KV fully
    /// released — plus queued and not-yet-arrived ones), ready to
    /// resubmit to another runtime. Empty when `halted` is false.
    pub evacuated: Vec<PromptRequest>,
    /// Whether the halt predicate stopped the loop (false: normal
    /// drain).
    pub halted: bool,
}

/// Executable continuous-batching runtime over a [`ServingEngine`].
///
/// Owns the admission-control page table: a request is admitted only
/// when its full `prompt + output` reservation fits — conservatively
/// under [`PreemptionPolicy::Never`], or by evicting strictly
/// lower-priority running sequences under
/// [`PreemptionPolicy::PriorityKv`]. Construct via
/// [`ServingRuntime::builder`] (validated) or [`ServingRuntime::new`].
pub struct ServingRuntime {
    cfg: SchedulerConfig,
    kv: PagedKvCache,
    replica: Option<u32>,
}

impl ServingRuntime {
    /// Build a runtime whose admission table holds `kv_budget_tokens`
    /// tokens in pages of `cfg.page_tokens`. The engine's own KV stores
    /// must hold at least as many tokens per layer.
    #[must_use]
    pub fn new(cfg: SchedulerConfig, kv_budget_tokens: usize) -> Self {
        let kv = PagedKvCache::new(kv_budget_tokens as u64, cfg.page_tokens, 1);
        Self {
            cfg,
            kv,
            replica: None,
        }
    }

    /// Like [`Self::new`], but with a [`FaultInjector`] wired into the
    /// admission page table: scheduled `kv_denials` make `add_sequence`
    /// / `append_token` fail artificially, exercising the
    /// [`CompletionStatus::Failed`] path. With a quiet plan (or via
    /// [`Self::new`]) the hook is a `None` branch.
    #[must_use]
    pub fn with_fault_injector(
        cfg: SchedulerConfig,
        kv_budget_tokens: usize,
        inj: Arc<FaultInjector>,
    ) -> Self {
        let mut rt = Self::new(cfg, kv_budget_tokens);
        rt.kv.set_fault_injector(inj);
        rt
    }

    /// Start building a validated runtime (mirrors
    /// `LiquidGemm::builder()`): scheduler knobs, KV budget, replica
    /// label, and fault injector in one fluent chain.
    #[must_use]
    pub fn builder() -> ServingRuntimeBuilder {
        ServingRuntimeBuilder::default()
    }

    /// The admission page table (tests assert leak-freedom on it).
    #[must_use]
    pub fn kv(&self) -> &PagedKvCache {
        &self.kv
    }

    /// The replica label this runtime reports telemetry under (set by
    /// [`ServingRuntimeBuilder::replica`]; `None` = unlabelled).
    #[must_use]
    pub fn replica(&self) -> Option<u32> {
        self.replica
    }

    /// Record one completion, mirroring it into telemetry and onto the
    /// request's trace track.
    fn complete(stats: &mut RunStats, metrics: &Option<SchedMetrics>, c: Completion) {
        lq_trace::record_virtual(
            lq_trace::EventKind::ReqComplete,
            lq_trace::Track::Request(c.id),
            vns(c.finished_at),
            match c.status {
                CompletionStatus::Finished => 0,
                CompletionStatus::TimedOut => 1,
                CompletionStatus::Rejected => 2,
                CompletionStatus::Failed => 3,
            },
            c.generated,
        );
        if let Some(m) = metrics {
            match c.status {
                CompletionStatus::Finished => {
                    m.completed.inc();
                    m.request_latency_ns.record_secs(c.latency());
                    m.queue_delay_ns.record_secs(c.queue_delay());
                }
                CompletionStatus::TimedOut => m.timed_out.inc(),
                CompletionStatus::Rejected => m.rejected.inc(),
                CompletionStatus::Failed => m.failed.inc(),
            }
        }
        stats.completions.push(c);
    }

    /// Run the serving loop to completion over `requests` (any arrival
    /// order), driving `engine` with real batched forward passes.
    ///
    /// Every request completes exactly once — as `Finished`, `TimedOut`
    /// (deadline expired; pages released on eviction), `Rejected`
    /// (queue occupancy over the request's tier cap at arrival, a
    /// reservation that could never fit the KV budget, or malformed
    /// non-finite timing), or `Failed` (engine panic or denied KV
    /// allocation mid-flight; pages fully released). After the run all
    /// pages are back on the free list.
    ///
    /// Admission scans tiers strictly High→Low (FCFS within a tier);
    /// under [`PreemptionPolicy::PriorityKv`] a blocked reservation may
    /// evict strictly lower-priority running sequences (full KV
    /// release, victim re-queued to the front of its tier to restart
    /// from prefill), counted in `lq_serving_preemptions_total` and
    /// [`RunStats::preemptions`].
    pub fn run<E: ServingEngine>(
        &mut self,
        engine: &mut E,
        requests: Vec<PromptRequest>,
    ) -> RunStats {
        self.run_with_halt(engine, requests, &mut |_| false).stats
    }

    /// [`Self::run`] with a halt predicate, consulted once per
    /// scheduler pass with the decode-step count so far. When it
    /// returns `true` the replica stops dead: every running sequence is
    /// released (KV fully freed; its produced tokens are discarded into
    /// [`RunStats::preempted_tokens`]) and handed back in
    /// [`DrainedRun::evacuated`] together with everything still queued
    /// or yet to arrive — the router's whole-replica-failure evacuation
    /// path. With a never-true predicate this is exactly [`Self::run`].
    pub fn run_with_halt<E: ServingEngine>(
        &mut self,
        engine: &mut E,
        requests: Vec<PromptRequest>,
        halt: &mut dyn FnMut(u64) -> bool,
    ) -> DrainedRun {
        let metrics = SchedMetrics::resolve_for(self.replica);
        let mut stats = RunStats::empty();

        // Validate timing at ingest: a NaN arrival must not reach the
        // sort below (`partial_cmp(...).expect` here used to panic the
        // whole run), and a NaN deadline would silently never expire.
        let mut arrivals: Vec<PromptRequest> = Vec::with_capacity(requests.len());
        for req in requests {
            let bad_arrival = !req.meta.arrival.is_finite();
            let bad_deadline = req.meta.deadline.is_some_and(|d| !d.is_finite());
            if bad_arrival || bad_deadline {
                // Timestamps are zeroed so NaN cannot leak into
                // latency statistics either.
                lq_trace::record_virtual(
                    lq_trace::EventKind::ReqIngest,
                    lq_trace::Track::Request(req.meta.id),
                    0,
                    req.meta.prompt_len as u64,
                    req.meta.output_len as u64,
                );
                Self::complete(
                    &mut stats,
                    &metrics,
                    Completion {
                        id: req.meta.id,
                        admitted_at: 0.0,
                        finished_at: 0.0,
                        arrival: 0.0,
                        status: CompletionStatus::Rejected,
                        generated: 0,
                        priority: req.meta.priority,
                    },
                );
            } else {
                arrivals.push(req);
            }
        }
        arrivals.sort_by(|a, b| a.meta.arrival.total_cmp(&b.meta.arrival));
        arrivals.reverse(); // pop() takes the earliest

        let mut now = 0.0f64;
        // One FCFS queue per tier (indexed by `Priority::index`);
        // admission scans them High→Low.
        let mut pending: [VecDeque<PromptRequest>; 3] = Default::default();
        let pending_total =
            |p: &[VecDeque<PromptRequest>; 3]| p.iter().map(VecDeque::len).sum::<usize>();
        let mut running: Vec<Running> = Vec::new();
        let mut halted = false;

        loop {
            // Halt gate (whole-replica failure under the router): the
            // predicate sees the decode-step count so chaos plans can
            // kill a replica at an exact step.
            if halt(stats.decode_steps) {
                halted = true;
                break;
            }

            // 0. Ingest arrivals up to the current clock; reject on an
            //    impossible reservation or when queue occupancy is at
            //    the arriving tier's cap (SLO-tiered admission sheds
            //    low-priority work first; FCFS uses one shared cap).
            while arrivals.last().is_some_and(|r| r.meta.arrival <= now) {
                let req = arrivals.pop().expect("checked non-empty");
                lq_trace::record_virtual(
                    lq_trace::EventKind::ReqIngest,
                    lq_trace::Track::Request(req.meta.id),
                    vns(req.meta.arrival),
                    req.meta.prompt_len as u64,
                    req.meta.output_len as u64,
                );
                let need = req.meta.prompt_len + req.meta.output_len;
                let impossible = self.kv.pages_for(need) > self.kv.total_pages();
                let tier = req.meta.priority;
                if impossible || pending_total(&pending) >= self.cfg.queue_cap(tier) {
                    Self::complete(
                        &mut stats,
                        &metrics,
                        Completion {
                            id: req.meta.id,
                            admitted_at: req.meta.arrival,
                            finished_at: req.meta.arrival,
                            arrival: req.meta.arrival,
                            status: CompletionStatus::Rejected,
                            generated: 0,
                            priority: tier,
                        },
                    );
                } else {
                    pending[tier.index()].push_back(req);
                }
            }

            // 0b. Expire queued requests whose deadline already passed.
            for q in pending.iter_mut() {
                q.retain(|req| {
                    let expired = req.meta.expiry().is_some_and(|e| now > e);
                    if expired {
                        Self::complete(
                            &mut stats,
                            &metrics,
                            Completion {
                                id: req.meta.id,
                                admitted_at: now,
                                finished_at: now,
                                arrival: req.meta.arrival,
                                status: CompletionStatus::TimedOut,
                                generated: 0,
                                priority: req.meta.priority,
                            },
                        );
                    }
                    !expired
                });
            }

            // 1. Admit while the reservation fits — strict priority
            //    (High→Low, FCFS within a tier, no bypass below a
            //    blocked tier), bounded by the per-pass prefill-token
            //    budget — then prefill the admitted cohort back-to-back
            //    (each prefill is one M=prompt-length batch through the
            //    engine).
            let mut admitted: Vec<PromptRequest> = Vec::new();
            let mut prefill_budget = self.cfg.max_prefill_tokens;
            'admission: for tier in Priority::DESCENDING {
                loop {
                    if running.len() + admitted.len() >= self.cfg.max_batch {
                        break 'admission;
                    }
                    let (head_id, prompt_len, need) = match pending[tier.index()].front() {
                        Some(h) => (
                            h.meta.id,
                            h.meta.prompt_len,
                            h.meta.prompt_len + h.meta.output_len,
                        ),
                        None => break, // tier drained: scan the next
                    };
                    if !admitted.is_empty() && prompt_len > prefill_budget {
                        // Prefill/decode disaggregation: the pass's
                        // prompt budget is spent — let the running
                        // batch decode before taking more prefill work.
                        // (The first admission always proceeds, so a
                        // long prompt cannot livelock.)
                        break 'admission;
                    }
                    if !self.kv.can_reserve(need) {
                        // Under PriorityKv, evict strictly lower-
                        // priority running sequences — lowest tier
                        // first, newest admission first — but only when
                        // eviction can actually free enough pages.
                        let mut preempted = false;
                        if self.cfg.preemption == PreemptionPolicy::PriorityKv {
                            let mut victims: Vec<u64> = Vec::new();
                            {
                                let mut cand: Vec<&Running> = running
                                    .iter()
                                    .filter(|r| r.req.meta.priority < tier)
                                    .collect();
                                cand.sort_by(|a, b| {
                                    a.req
                                        .meta
                                        .priority
                                        .cmp(&b.req.meta.priority)
                                        .then(b.admitted_at.total_cmp(&a.admitted_at))
                                });
                                let need_pages = self.kv.pages_for(need);
                                let mut reclaim = self.kv.free_pages();
                                for r in cand {
                                    if reclaim >= need_pages {
                                        break;
                                    }
                                    reclaim +=
                                        self.kv.page_table(r.id()).expect("victim is live").len();
                                    victims.push(r.id());
                                }
                                if reclaim < need_pages {
                                    // Even evicting every lower-priority
                                    // sequence would not fit: thrashing
                                    // them buys nothing.
                                    victims.clear();
                                }
                            }
                            for vid in victims {
                                let pos = running
                                    .iter()
                                    .position(|r| r.id() == vid)
                                    .expect("victim is running");
                                let v = running.swap_remove(pos);
                                engine.release(vid);
                                self.kv.free_sequence(vid).expect("was admitted");
                                if lq_trace::enabled() {
                                    let t = lq_trace::Track::Request(vid);
                                    lq_trace::record_virtual(
                                        lq_trace::EventKind::ReqPreempt,
                                        t,
                                        vns(now),
                                        v.produced as u64,
                                        head_id,
                                    );
                                    lq_trace::record_virtual(
                                        lq_trace::EventKind::KvRelease,
                                        t,
                                        vns(now),
                                        0,
                                        0,
                                    );
                                }
                                if let Some(m) = &metrics {
                                    m.preemptions.inc();
                                }
                                stats.preemptions += 1;
                                // The victim's generated-so-far tokens
                                // are discarded work: it restarts from
                                // prefill, so move them out of the
                                // goodput ledger.
                                stats.preempted_tokens += v.produced as u64;
                                stats.generated_tokens -= v.produced as u64;
                                // Front of its own tier's queue: the
                                // victim re-admits ahead of its peers,
                                // original arrival preserved.
                                pending[v.req.meta.priority.index()].push_front(v.req);
                                preempted = true;
                            }
                        }
                        if !(preempted && self.kv.can_reserve(need)) {
                            if let Some(m) = &metrics {
                                m.blocked.inc();
                            }
                            break 'admission; // strict priority: no bypass
                        }
                    }
                    if self.kv.add_sequence(head_id, need).is_err() {
                        // `can_reserve` just passed, so this is a denied
                        // allocation (fault injection): fail the request
                        // cleanly and keep admitting the rest.
                        let req = pending[tier.index()].pop_front().expect("front exists");
                        Self::complete(
                            &mut stats,
                            &metrics,
                            Completion {
                                id: req.meta.id,
                                admitted_at: now,
                                finished_at: now,
                                arrival: req.meta.arrival,
                                status: CompletionStatus::Failed,
                                generated: 0,
                                priority: req.meta.priority,
                            },
                        );
                        continue;
                    }
                    let req = pending[tier.index()].pop_front().expect("front exists");
                    if lq_trace::enabled() {
                        let t = lq_trace::Track::Request(req.meta.id);
                        lq_trace::record_virtual(
                            lq_trace::EventKind::ReqAdmit,
                            t,
                            vns(now),
                            need as u64,
                            0,
                        );
                        lq_trace::record_virtual(
                            lq_trace::EventKind::KvReserve,
                            t,
                            vns(now),
                            self.kv.pages_for(need) as u64,
                            0,
                        );
                    }
                    prefill_budget = prefill_budget.saturating_sub(prompt_len);
                    admitted.push(req);
                }
            }
            if !admitted.is_empty() {
                let admit_time = now;
                let n_admitted = admitted.len();
                let t0 = Instant::now();
                // Prefill the cohort one request at a time so a panic
                // inside the engine fails only the request that caused
                // it: its reservation and any half-registered engine
                // state are released, the rest of the cohort proceeds.
                let mut prefilled: Vec<(PromptRequest, usize)> = Vec::with_capacity(n_admitted);
                let mut failed: Vec<PromptRequest> = Vec::new();
                for req in admitted {
                    // Scope the request ID over the engine call so every
                    // pool job its GEMMs submit carries it; the prefill
                    // span itself is timed per request (telemetry keeps
                    // the cohort-level histogram below).
                    let _corr = lq_trace::enabled().then(|| lq_trace::corr_scope(req.meta.id));
                    let pt0 = lq_trace::enabled().then(Instant::now);
                    let res = engine.try_prefill(req.meta.id, &req.prompt);
                    if let Some(pt0) = pt0 {
                        lq_trace::span_full(
                            lq_trace::EventKind::ReqPrefill,
                            lq_trace::Track::Request(req.meta.id),
                            req.meta.id,
                            0,
                            0,
                            pt0,
                            vns(admit_time),
                        );
                    }
                    match res {
                        Ok(tok) => prefilled.push((req, tok)),
                        Err(_) => {
                            engine.try_release(req.meta.id);
                            self.kv.free_sequence(req.meta.id).expect("was admitted");
                            lq_trace::record_virtual(
                                lq_trace::EventKind::KvRelease,
                                lq_trace::Track::Request(req.meta.id),
                                vns(now),
                                0,
                                0,
                            );
                            failed.push(req);
                        }
                    }
                }
                let dt = t0.elapsed().as_secs_f64();
                now += dt;
                if let Some(m) = &metrics {
                    m.admitted.add(n_admitted as u64);
                    m.prefill_ns.record_secs(dt);
                    m.queue_len.set(pending_total(&pending) as f64);
                }
                for req in failed {
                    Self::complete(
                        &mut stats,
                        &metrics,
                        Completion {
                            id: req.meta.id,
                            admitted_at: admit_time,
                            finished_at: now,
                            arrival: req.meta.arrival,
                            status: CompletionStatus::Failed,
                            generated: 0,
                            priority: req.meta.priority,
                        },
                    );
                }
                stats.generated_tokens += prefilled.len() as u64;
                for (req, tok) in prefilled {
                    running.push(Running {
                        req,
                        admitted_at: admit_time,
                        produced: 1, // prefill emitted the first token
                        last_token: tok,
                    });
                }
            }
            stats.peak_batch = stats.peak_batch.max(running.len());

            // 2. Evict running sequences past their deadline, releasing
            //    engine and admission pages before the next iteration.
            let mut i = 0;
            while i < running.len() {
                if running[i].req.meta.expiry().is_some_and(|e| now > e) {
                    let r = running.swap_remove(i);
                    engine.release(r.id());
                    self.kv.free_sequence(r.id()).expect("was admitted");
                    lq_trace::record_virtual(
                        lq_trace::EventKind::KvRelease,
                        lq_trace::Track::Request(r.id()),
                        vns(now),
                        0,
                        0,
                    );
                    Self::complete(
                        &mut stats,
                        &metrics,
                        Completion {
                            id: r.id(),
                            admitted_at: r.admitted_at,
                            finished_at: now,
                            arrival: r.req.meta.arrival,
                            status: CompletionStatus::TimedOut,
                            generated: r.produced as u64,
                            priority: r.req.meta.priority,
                        },
                    );
                } else {
                    i += 1;
                }
            }

            // 2b. Retire sequences that finished at prefill
            //     (output_len == 1) or in the previous iteration.
            let mut i = 0;
            while i < running.len() {
                if running[i].produced >= running[i].req.meta.output_len {
                    let r = running.swap_remove(i);
                    engine.release(r.id());
                    self.kv.free_sequence(r.id()).expect("was admitted");
                    lq_trace::record_virtual(
                        lq_trace::EventKind::KvRelease,
                        lq_trace::Track::Request(r.id()),
                        vns(now),
                        0,
                        0,
                    );
                    Self::complete(
                        &mut stats,
                        &metrics,
                        Completion {
                            id: r.id(),
                            admitted_at: r.admitted_at,
                            finished_at: now,
                            arrival: r.req.meta.arrival,
                            status: CompletionStatus::Finished,
                            generated: r.req.meta.output_len as u64,
                            priority: r.req.meta.priority,
                        },
                    );
                } else {
                    i += 1;
                }
            }

            if running.is_empty() {
                if pending_total(&pending) > 0 {
                    // Impossible-fit requests were rejected at ingest,
                    // so a waiting request with an empty device always
                    // admits on the next pass.
                    continue;
                }
                match arrivals.last() {
                    Some(req) => {
                        now = now.max(req.meta.arrival);
                        continue;
                    }
                    None => break,
                }
            }

            // 3. One real decode iteration: all running sequences in a
            //    single M=batch forward pass.
            let slots: Vec<(SeqId, usize)> =
                running.iter().map(|r| (r.id(), r.last_token)).collect();
            // One synthetic correlation ID per batched step: the GEMM
            // jobs of this forward pass belong to every request in the
            // batch, so they carry the step ID and each request's
            // `ReqDecodeIter` span repeats it as the join key.
            let step_corr = if lq_trace::enabled() {
                lq_trace::fresh_batch_corr()
            } else {
                0
            };
            let _corr = (step_corr != 0).then(|| lq_trace::corr_scope(step_corr));
            let t0 = Instant::now();
            let res = engine.try_decode_batch(&slots);
            let dt = t0.elapsed().as_secs_f64();
            // The span duration must be the *virtual-clock* advance of
            // this step, not a fresh `Instant` measurement: the
            // per-request critical-path decomposition
            // (`lq_trace::analyze::request_paths`) sums these spans
            // against virtual completion times, and an `Instant` read
            // taken after `now += dt` would overshoot the advance by
            // the recording overhead, breaking the exact-sum invariant.
            let step_v0 = vns(now);
            now += dt;
            if step_corr != 0 {
                let step_dur = vns(now).saturating_sub(step_v0);
                for &(id, _) in &slots {
                    lq_trace::span_exact(
                        lq_trace::EventKind::ReqDecodeIter,
                        lq_trace::Track::Request(id),
                        step_corr,
                        step_corr,
                        slots.len() as u64,
                        t0,
                        step_dur,
                        vns(now),
                    );
                }
            }
            match res {
                Ok(next) => {
                    assert_eq!(next.len(), slots.len(), "engine returned wrong batch");
                    if let Some(m) = &metrics {
                        m.batch_size.record(running.len() as u64);
                        m.decode_step_ns.record_secs(dt);
                    }
                    stats.decode_steps += 1;
                    stats.generated_tokens += running.len() as u64;
                    for (r, tok) in running.iter_mut().zip(next) {
                        r.last_token = tok;
                        r.produced += 1;
                    }
                }
                Err(_) => {
                    // A panic mid-batch leaves the engine's state for
                    // every running sequence unknown: fail the whole
                    // batch with full release and keep serving what is
                    // still queued.
                    for r in running.drain(..) {
                        engine.try_release(r.id());
                        self.kv.free_sequence(r.id()).expect("was admitted");
                        lq_trace::record_virtual(
                            lq_trace::EventKind::KvRelease,
                            lq_trace::Track::Request(r.id()),
                            vns(now),
                            0,
                            0,
                        );
                        Self::complete(
                            &mut stats,
                            &metrics,
                            Completion {
                                id: r.id(),
                                admitted_at: r.admitted_at,
                                finished_at: now,
                                arrival: r.req.meta.arrival,
                                status: CompletionStatus::Failed,
                                generated: r.produced as u64,
                                priority: r.req.meta.priority,
                            },
                        );
                    }
                }
            }
        }

        let mut evacuated: Vec<PromptRequest> = Vec::new();
        if halted {
            // Whole-replica failure: release every running sequence
            // (tokens produced so far are discarded — the router
            // restarts the request elsewhere from prefill) and hand
            // back everything queued or yet to arrive.
            for r in running.drain(..) {
                // The replica is "dead": its engine state is suspect,
                // so release through the unwind-contained wrapper.
                engine.try_release(r.id());
                self.kv.free_sequence(r.id()).expect("was admitted");
                lq_trace::record_virtual(
                    lq_trace::EventKind::KvRelease,
                    lq_trace::Track::Request(r.id()),
                    vns(now),
                    0,
                    0,
                );
                stats.preempted_tokens += r.produced as u64;
                stats.generated_tokens -= r.produced as u64;
                evacuated.push(r.req);
            }
            for q in pending.iter_mut() {
                evacuated.extend(q.drain(..));
            }
            arrivals.reverse(); // back to earliest-first
            evacuated.extend(arrivals);
        }

        stats.makespan = now;
        if let Some(m) = &metrics {
            m.tokens_per_s.set(stats.throughput());
            m.queue_len.set(0.0);
        }
        assert!(self.kv.check_invariants(), "page conservation violated");
        assert_eq!(
            self.kv.free_pages(),
            self.kv.total_pages(),
            "KV pages leaked after drain"
        );
        DrainedRun {
            stats,
            evacuated,
            halted,
        }
    }
}

/// Invalid [`ServingRuntime::builder`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingConfigError {
    /// A scheduler knob failed validation.
    Scheduler(SchedulerConfigError),
    /// `kv_budget_tokens == 0`: nothing could ever be admitted.
    ZeroKvBudget,
}

impl fmt::Display for ServingConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingConfigError::Scheduler(e) => write!(f, "scheduler config: {e}"),
            ServingConfigError::ZeroKvBudget => write!(f, "kv_budget_tokens must be >= 1"),
        }
    }
}

impl std::error::Error for ServingConfigError {}

impl From<SchedulerConfigError> for ServingConfigError {
    fn from(e: SchedulerConfigError) -> Self {
        ServingConfigError::Scheduler(e)
    }
}

/// Validating builder for [`ServingRuntime`] — the serving-side mirror
/// of `LiquidGemm::builder()`. Scheduler knobs pass through to
/// [`SchedulerConfig::builder`] (same validation), plus the runtime's
/// own KV budget, replica telemetry label, and fault injector.
#[derive(Clone)]
pub struct ServingRuntimeBuilder {
    cfg: SchedulerConfig,
    kv_budget_tokens: usize,
    fault_injector: Option<Arc<FaultInjector>>,
    replica: Option<u32>,
}

impl Default for ServingRuntimeBuilder {
    fn default() -> Self {
        Self {
            cfg: SchedulerConfig::default(),
            kv_budget_tokens: 4096,
            fault_injector: None,
            replica: None,
        }
    }
}

impl ServingRuntimeBuilder {
    /// Replace all scheduler knobs with an already-built configuration.
    #[must_use]
    pub fn scheduler(mut self, cfg: SchedulerConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Concurrent-sequence cap (validated ≥ 1).
    #[must_use]
    pub fn max_batch(mut self, n: usize) -> Self {
        self.cfg.max_batch = n;
        self
    }

    /// Tokens per KV page (validated ≥ 1).
    #[must_use]
    pub fn page_tokens(mut self, n: usize) -> Self {
        self.cfg.page_tokens = n;
        self
    }

    /// Waiting-queue capacity (validated ≥ 1).
    #[must_use]
    pub fn max_queue(mut self, n: usize) -> Self {
        self.cfg.max_queue = n;
        self
    }

    /// Queue-admission policy (validated, e.g. `SloTiered` requires a
    /// bounded queue).
    #[must_use]
    pub fn admission(mut self, p: crate::request::AdmissionPolicy) -> Self {
        self.cfg.admission = p;
        self
    }

    /// KV-pressure preemption policy.
    #[must_use]
    pub fn preemption(mut self, p: PreemptionPolicy) -> Self {
        self.cfg.preemption = p;
        self
    }

    /// Prompt-token budget per admission pass (validated ≥ 1).
    #[must_use]
    pub fn max_prefill_tokens(mut self, n: usize) -> Self {
        self.cfg.max_prefill_tokens = n;
        self
    }

    /// Admission-table size in tokens (validated ≥ 1; default 4096).
    #[must_use]
    pub fn kv_budget_tokens(mut self, n: usize) -> Self {
        self.kv_budget_tokens = n;
        self
    }

    /// Wire a [`FaultInjector`] into the admission page table.
    #[must_use]
    pub fn fault_injector(mut self, inj: Arc<FaultInjector>) -> Self {
        self.fault_injector = Some(inj);
        self
    }

    /// Label this runtime's telemetry `{replica="<n>"}` (router
    /// shards).
    #[must_use]
    pub fn replica(mut self, n: u32) -> Self {
        self.replica = Some(n);
        self
    }

    /// Validate every knob and build the runtime.
    pub fn build(self) -> Result<ServingRuntime, ServingConfigError> {
        // Round-trip through the scheduler builder so its validation
        // stays the single source of truth.
        let cfg = SchedulerConfig::builder()
            .max_batch(self.cfg.max_batch)
            .page_tokens(self.cfg.page_tokens)
            .max_queue(self.cfg.max_queue)
            .admission(self.cfg.admission)
            .preemption(self.cfg.preemption)
            .max_prefill_tokens(self.cfg.max_prefill_tokens)
            .build()?;
        if self.kv_budget_tokens == 0 {
            return Err(ServingConfigError::ZeroKvBudget);
        }
        let mut rt = ServingRuntime::new(cfg, self.kv_budget_tokens);
        if let Some(inj) = self.fault_injector {
            rt.kv.set_fault_injector(inj);
        }
        rt.replica = self.replica;
        Ok(rt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Deterministic engine stub: tracks live sequences and batch
    /// shapes so tests can assert the runtime's scheduling behaviour
    /// without pulling in `lq-engine` (which depends on this crate).
    struct MockEngine {
        vocab: usize,
        live: HashSet<SeqId>,
        peak_batch: usize,
        prefills: usize,
        decode_calls: usize,
    }

    impl MockEngine {
        fn new() -> Self {
            Self {
                vocab: 64,
                live: HashSet::new(),
                peak_batch: 0,
                prefills: 0,
                decode_calls: 0,
            }
        }
    }

    impl ServingEngine for MockEngine {
        fn prefill(&mut self, id: SeqId, prompt: &[usize]) -> usize {
            assert!(self.live.insert(id), "sequence {id} already live");
            self.prefills += 1;
            prompt.iter().sum::<usize>() % self.vocab
        }

        fn decode_batch(&mut self, slots: &[(SeqId, usize)]) -> Vec<usize> {
            self.decode_calls += 1;
            self.peak_batch = self.peak_batch.max(slots.len());
            slots
                .iter()
                .map(|&(id, t)| {
                    assert!(self.live.contains(&id), "decode of dead sequence {id}");
                    (t + 1) % self.vocab
                })
                .collect()
        }

        fn release(&mut self, id: SeqId) {
            assert!(self.live.remove(&id), "double release of {id}");
        }
    }

    fn reqs(n: usize, prompt_len: usize, output_len: usize) -> Vec<PromptRequest> {
        (0..n as u64)
            .map(|id| {
                PromptRequest::new(
                    Request::new(id, prompt_len, output_len, 0.0),
                    (0..prompt_len).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn drains_all_requests_and_releases_everything() {
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let stats = rt.run(&mut engine, reqs(10, 8, 4));
        assert_eq!(stats.finished(), 10);
        assert_eq!(stats.generated_tokens, 10 * 4);
        assert!(engine.live.is_empty(), "engine leaked sequences");
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages());
        // All 10 fit at once: 1 prefill cohort, then 3 decode rounds
        // (prefill produced token 1 of 4).
        assert_eq!(engine.prefills, 10);
        assert_eq!(stats.peak_batch, 10);
        assert_eq!(stats.decode_steps, 3);
    }

    #[test]
    fn batch_cap_limits_concurrency() {
        let mut engine = MockEngine::new();
        let cfg = SchedulerConfig::builder().max_batch(3).build().unwrap();
        let mut rt = ServingRuntime::new(cfg, 4096);
        let stats = rt.run(&mut engine, reqs(10, 8, 4));
        assert_eq!(stats.finished(), 10);
        assert!(stats.peak_batch <= 3);
        assert!(engine.peak_batch <= 3);
    }

    #[test]
    fn kv_pressure_serialises_admission() {
        // Budget fits exactly one request's reservation (8+4=12 tokens
        // → 2 pages of 8): requests run one at a time.
        let cfg = SchedulerConfig::builder().page_tokens(8).build().unwrap();
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(cfg, 16);
        let stats = rt.run(&mut engine, reqs(5, 8, 4));
        assert_eq!(stats.finished(), 5);
        assert_eq!(stats.peak_batch, 1);
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages());
    }

    #[test]
    fn bounded_queue_rejects_deterministically() {
        // max_batch 1 and max_queue 1 with 4 simultaneous arrivals:
        // the ingest pass queues the first and rejects the other three
        // before anything is admitted.
        let cfg = SchedulerConfig::builder()
            .max_batch(1)
            .max_queue(1)
            .build()
            .unwrap();
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(cfg, 4096);
        let stats = rt.run(&mut engine, reqs(4, 8, 2));
        assert_eq!(stats.finished(), 1);
        assert_eq!(stats.rejected(), 3);
        for c in &stats.completions {
            if c.status == CompletionStatus::Rejected {
                assert_eq!(c.generated, 0);
                assert_eq!(c.latency(), 0.0);
            }
        }
        assert!(engine.live.is_empty());
    }

    #[test]
    fn zero_deadline_times_out_after_prefill() {
        // deadline 0.0: still admitted at t=0, but measured prefill
        // time pushes the clock past expiry before the first decode —
        // the request is evicted having produced exactly one token.
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let reqs = vec![PromptRequest::new(
            Request::new(0, 4, 8, 0.0).with_deadline(0.0),
            vec![1, 2, 3, 4],
        )];
        let stats = rt.run(&mut engine, reqs);
        assert_eq!(stats.timed_out(), 1);
        assert_eq!(stats.completions[0].generated, 1);
        assert_eq!(stats.decode_steps, 0);
        assert!(engine.live.is_empty(), "timed-out sequence not released");
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages());
    }

    #[test]
    fn impossible_reservation_is_rejected() {
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 64);
        let mut rs = reqs(1, 8, 4);
        rs.push(PromptRequest::new(
            Request::new(9, 100, 100, 0.0),
            (0..100).collect(),
        ));
        let stats = rt.run(&mut engine, rs);
        assert_eq!(stats.finished(), 1);
        assert_eq!(stats.rejected(), 1);
        assert_eq!(engine.prefills, 1, "rejected request must never prefill");
    }

    #[test]
    fn single_token_outputs_finish_at_prefill() {
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let stats = rt.run(&mut engine, reqs(3, 8, 1));
        assert_eq!(stats.finished(), 3);
        assert_eq!(stats.decode_steps, 0);
        assert_eq!(stats.generated_tokens, 3);
    }

    #[test]
    fn staggered_arrivals_join_the_running_batch() {
        // Second wave arrives while the first is still decoding (clock
        // jumps to their arrival once the device idles or passes it):
        // everything finishes, ids complete exactly once.
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let mut rs = reqs(4, 8, 64);
        for (i, extra) in reqs(4, 8, 64).into_iter().enumerate() {
            let id = 100 + i as u64;
            rs.push(PromptRequest::new(
                Request::new(id, 8, 64, 1e-7),
                extra.prompt,
            ));
        }
        let stats = rt.run(&mut engine, rs);
        assert_eq!(stats.finished(), 8);
        let mut ids: Vec<u64> = stats.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "each request completes exactly once");
    }

    /// [`MockEngine`] wrapper that panics on schedule: at prefill of
    /// chosen ids, or at the n-th decode call — before touching the
    /// inner engine, so prefill panics leave no half-registered state
    /// while decode panics leave the batch live (the runtime must
    /// release it through `try_release`).
    struct FaultyEngine {
        inner: MockEngine,
        panic_prefill_ids: HashSet<SeqId>,
        panic_decode_call: Option<usize>,
        decode_calls: usize,
    }

    impl FaultyEngine {
        fn new(panic_prefill_ids: &[SeqId], panic_decode_call: Option<usize>) -> Self {
            Self {
                inner: MockEngine::new(),
                panic_prefill_ids: panic_prefill_ids.iter().copied().collect(),
                panic_decode_call,
                decode_calls: 0,
            }
        }
    }

    impl ServingEngine for FaultyEngine {
        fn prefill(&mut self, id: SeqId, prompt: &[usize]) -> usize {
            assert!(
                !self.panic_prefill_ids.contains(&id),
                "injected fault: prefill panic for sequence {id}"
            );
            self.inner.prefill(id, prompt)
        }

        fn decode_batch(&mut self, slots: &[(SeqId, usize)]) -> Vec<usize> {
            let call = self.decode_calls;
            self.decode_calls += 1; // counts panicked calls too
            if self.panic_decode_call == Some(call) {
                panic!("injected fault: decode panic at call {call}");
            }
            self.inner.decode_batch(slots)
        }

        fn release(&mut self, id: SeqId) {
            self.inner.release(id);
        }
    }

    #[test]
    fn nan_arrival_or_deadline_is_rejected_not_panicking() {
        // Regression: a NaN arrival used to blow up the ingest sort via
        // `partial_cmp(...).expect("finite")`.
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let mut rs = reqs(2, 8, 4);
        rs[0].meta.arrival = f64::NAN;
        // `with_deadline` validates, so poke the field directly —
        // modelling a caller that bypasses the constructors.
        let mut bad_deadline = PromptRequest::new(Request::new(7, 8, 4, 0.0), (0..8).collect());
        bad_deadline.meta.deadline = Some(f64::NAN);
        rs.push(bad_deadline);
        let mut inf_arrival = PromptRequest::new(Request::new(8, 8, 4, 0.0), (0..8).collect());
        inf_arrival.meta.arrival = f64::INFINITY;
        rs.push(inf_arrival);
        let stats = rt.run(&mut engine, rs);
        assert_eq!(
            stats.rejected(),
            3,
            "NaN arrival, NaN deadline, inf arrival"
        );
        assert_eq!(stats.finished(), 1);
        for c in &stats.completions {
            assert!(c.latency().is_finite(), "NaN leaked into latency");
        }
        assert!(engine.live.is_empty());
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages());
    }

    #[test]
    fn prefill_panic_fails_only_that_request() {
        let mut engine = FaultyEngine::new(&[2], None);
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let stats = rt.run(&mut engine, reqs(5, 8, 4));
        assert_eq!(stats.failed(), 1);
        assert_eq!(stats.finished(), 4);
        let failed: Vec<u64> = stats
            .completions
            .iter()
            .filter(|c| c.status == CompletionStatus::Failed)
            .map(|c| c.id)
            .collect();
        assert_eq!(failed, [2]);
        assert!(engine.inner.live.is_empty(), "engine leaked sequences");
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages(), "pages leaked");
    }

    #[test]
    fn decode_panic_fails_batch_but_later_arrivals_still_serve() {
        // First wave of 3 dies on its first decode call; a later wave
        // must still be admitted and finish — the loop survives.
        let mut engine = FaultyEngine::new(&[], Some(0));
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let mut rs = reqs(3, 8, 4);
        for i in 0..3u64 {
            rs.push(PromptRequest::new(
                Request::new(100 + i, 8, 4, 1e9),
                (0..8).collect(),
            ));
        }
        let stats = rt.run(&mut engine, rs);
        assert_eq!(stats.failed(), 3, "whole first batch failed");
        assert_eq!(stats.finished(), 3, "second wave unaffected");
        for c in &stats.completions {
            if c.status == CompletionStatus::Failed {
                assert_eq!(c.generated, 1, "prefill token counted before the fault");
            }
        }
        assert!(engine.inner.live.is_empty(), "engine leaked sequences");
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages(), "pages leaked");
    }

    #[test]
    fn injected_kv_denial_fails_request_and_releases_everything() {
        use lq_chaos::{FaultInjector, FaultPlan};
        use std::sync::Arc;

        let inj = Arc::new(FaultInjector::new(FaultPlan::quiet().kv_denials_at(&[0])));
        let mut engine = MockEngine::new();
        let mut rt =
            ServingRuntime::with_fault_injector(SchedulerConfig::default(), 4096, Arc::clone(&inj));
        let stats = rt.run(&mut engine, reqs(4, 8, 4));
        assert_eq!(stats.failed(), 1, "first admission denied");
        assert_eq!(stats.finished(), 3);
        assert_eq!(inj.stats().kv_denials, 1);
        assert!(engine.live.is_empty());
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages());
    }

    #[test]
    fn builder_validates_and_labels() {
        assert_eq!(
            ServingRuntime::builder().max_batch(0).build().err(),
            Some(ServingConfigError::Scheduler(
                SchedulerConfigError::ZeroMaxBatch
            ))
        );
        assert_eq!(
            ServingRuntime::builder().kv_budget_tokens(0).build().err(),
            Some(ServingConfigError::ZeroKvBudget)
        );
        // SloTiered validation flows through from the scheduler builder.
        assert_eq!(
            ServingRuntime::builder()
                .admission(crate::request::AdmissionPolicy::SloTiered {
                    low_share_pct: 30,
                    normal_share_pct: 70,
                })
                .build()
                .err(),
            Some(ServingConfigError::Scheduler(
                SchedulerConfigError::TieredNeedsBoundedQueue
            ))
        );
        let rt = ServingRuntime::builder()
            .max_batch(4)
            .page_tokens(8)
            .kv_budget_tokens(64)
            .replica(3)
            .build()
            .unwrap();
        assert_eq!(rt.replica(), Some(3));
        assert_eq!(rt.kv().total_pages(), 8);
        // Builder-made runtimes behave identically to `new`.
        let mut rt = rt;
        let mut engine = MockEngine::new();
        let stats = rt.run(&mut engine, reqs(2, 4, 2));
        assert_eq!(stats.finished(), 2);
    }

    /// A Low request sized to fill the whole KV budget is admitted
    /// first; a High request arriving just after must preempt it under
    /// `PriorityKv`: the victim's pages are released, it re-queues, and
    /// both eventually finish with a leak-free table.
    fn preemption_workload() -> Vec<PromptRequest> {
        vec![
            PromptRequest::new(
                Request::new(0, 8, 24, 0.0).with_priority(Priority::Low),
                (0..8).collect(),
            ),
            // Arrives after the Low prefill (any measured prefill takes
            // longer than 1e-12 s of virtual time).
            PromptRequest::new(
                Request::new(1, 8, 8, 1e-12).with_priority(Priority::High),
                (0..8).collect(),
            ),
        ]
    }

    #[test]
    fn priority_kv_preempts_low_for_high() {
        let cfg = SchedulerConfig::builder()
            .page_tokens(8)
            .preemption(crate::request::PreemptionPolicy::PriorityKv)
            .build()
            .unwrap();
        let mut engine = MockEngine::new();
        // 32-token budget: Low's 8+24 reservation takes every page.
        let mut rt = ServingRuntime::new(cfg, 32);
        let stats = rt.run(&mut engine, preemption_workload());
        assert!(stats.preemptions >= 1, "High must preempt Low");
        assert!(stats.preempted_tokens >= 1, "victim had produced tokens");
        assert_eq!(stats.finished(), 2, "victim re-queues and still finishes");
        // The ledger stays exact: every completion's tokens are counted
        // once, preempted work is excluded.
        let sum: u64 = stats.completions.iter().map(|c| c.generated).sum();
        assert_eq!(sum, stats.generated_tokens);
        assert_eq!(sum, 24 + 8);
        // High finished before Low (Low restarted from prefill).
        let pos = |id: u64| stats.completions.iter().position(|c| c.id == id).unwrap();
        assert!(pos(1) < pos(0), "preemptor finishes first");
        assert!(engine.live.is_empty(), "engine leaked sequences");
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages(), "KV leaked");
    }

    #[test]
    fn never_policy_blocks_instead_of_preempting() {
        let cfg = SchedulerConfig::builder().page_tokens(8).build().unwrap();
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(cfg, 32);
        let stats = rt.run(&mut engine, preemption_workload());
        assert_eq!(stats.preemptions, 0, "Never must not preempt");
        assert_eq!(stats.preempted_tokens, 0);
        assert_eq!(stats.finished(), 2);
        // High waited for Low instead of evicting it.
        let pos = |id: u64| stats.completions.iter().position(|c| c.id == id).unwrap();
        assert!(pos(0) < pos(1), "Low finishes first under Never");
    }

    #[test]
    fn infeasible_preemption_does_not_thrash_victims() {
        // 5-page table. Running: high0 (2 pages) + low (2 pages), one
        // page free. high1 needs 4 pages; the only evictable victim is
        // low (high0 is not lower-priority), and 1 free + 2 reclaimed
        // = 3 < 4 — so evicting low buys nothing and must not happen.
        // high1 waits for natural drain instead.
        let cfg = SchedulerConfig::builder()
            .page_tokens(8)
            .preemption(crate::request::PreemptionPolicy::PriorityKv)
            .build()
            .unwrap();
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(cfg, 40);
        let reqs = vec![
            PromptRequest::new(
                Request::new(0, 8, 8, 0.0).with_priority(Priority::Low),
                (0..8).collect(),
            ),
            PromptRequest::new(
                Request::new(1, 8, 8, 0.0).with_priority(Priority::High),
                (0..8).collect(),
            ),
            PromptRequest::new(
                Request::new(2, 8, 24, 1e-12).with_priority(Priority::High),
                (0..8).collect(),
            ),
        ];
        let stats = rt.run(&mut engine, reqs);
        assert_eq!(stats.preemptions, 0, "pointless eviction must not fire");
        assert_eq!(stats.finished(), 3, "high1 admits after natural drain");
        assert!(engine.live.is_empty());
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages());
    }

    #[test]
    fn prefill_token_budget_staggers_admission() {
        // Four 8-token prompts with an 8-token per-pass budget: each
        // admission pass prefills exactly one request, so the batch
        // never reaches the unconstrained peak of 4.
        let cfg = SchedulerConfig::builder()
            .max_prefill_tokens(8)
            .build()
            .unwrap();
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(cfg, 4096);
        let stats = rt.run(&mut engine, reqs(4, 8, 2));
        assert_eq!(stats.finished(), 4);
        assert!(
            stats.peak_batch <= 2,
            "prefill budget must stagger admission (peak {})",
            stats.peak_batch
        );
        // Control: without the cap all four prefill in one pass.
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let stats = rt.run(&mut engine, reqs(4, 8, 2));
        assert_eq!(stats.peak_batch, 4);
    }

    #[test]
    fn tiered_admission_sheds_low_first() {
        let cfg = SchedulerConfig::builder()
            .max_queue(4)
            .admission(crate::request::AdmissionPolicy::SloTiered {
                low_share_pct: 25,
                normal_share_pct: 50,
            })
            .build()
            .unwrap();
        // Caps: Low 1, Normal 2, High 4. Ingest order (stable sort on
        // equal arrivals) is vector order.
        let mk = |id, p| {
            PromptRequest::new(
                Request::new(id, 4, 2, 0.0).with_priority(p),
                (0..4).collect(),
            )
        };
        let reqs = vec![
            mk(0, Priority::Low),    // occ 0 < 1: queued
            mk(1, Priority::Low),    // occ 1 >= 1: rejected
            mk(2, Priority::Normal), // occ 1 < 2: queued
            mk(3, Priority::Normal), // occ 2 >= 2: rejected
            mk(4, Priority::High),   // occ 2 < 4: queued
            mk(5, Priority::High),   // occ 3 < 4: queued
            mk(6, Priority::High),   // occ 4 >= 4: rejected
        ];
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(cfg, 4096);
        let stats = rt.run(&mut engine, reqs);
        assert_eq!(stats.finished(), 4);
        assert_eq!(
            stats.tier_count(Priority::Low, CompletionStatus::Rejected),
            1
        );
        assert_eq!(
            stats.tier_count(Priority::Normal, CompletionStatus::Rejected),
            1
        );
        assert_eq!(
            stats.tier_count(Priority::High, CompletionStatus::Rejected),
            1
        );
        assert!(engine.live.is_empty());
    }

    #[test]
    fn halt_evacuates_running_and_queued_cleanly() {
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        // 4 immediate requests plus one far-future arrival that the
        // halted replica never reaches.
        let mut rs = reqs(4, 8, 16);
        rs.push(PromptRequest::new(
            Request::new(99, 8, 16, 1e9),
            (0..8).collect(),
        ));
        let out = rt.run_with_halt(&mut engine, rs, &mut |steps| steps >= 2);
        assert!(out.halted);
        // Running batch (4) + future arrival all evacuate; nothing
        // completed and nothing was lost.
        assert_eq!(out.evacuated.len(), 5);
        assert_eq!(out.stats.completions.len(), 0);
        assert_eq!(out.stats.decode_steps, 2);
        // Discarded work is accounted, the ledger stays consistent.
        assert_eq!(out.stats.generated_tokens, 0);
        assert_eq!(out.stats.preempted_tokens, 4 * 3);
        assert!(engine.live.is_empty(), "evacuation must release engine KV");
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages(), "KV leaked");
        // The evacuated requests run to completion on a fresh runtime.
        let mut engine2 = MockEngine::new();
        let mut rt2 = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let stats = rt2.run(&mut engine2, out.evacuated);
        assert_eq!(stats.finished(), 5);
    }

    #[test]
    fn never_true_halt_is_exactly_run() {
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let out = rt.run_with_halt(&mut engine, reqs(3, 8, 4), &mut |_| false);
        assert!(!out.halted);
        assert!(out.evacuated.is_empty());
        assert_eq!(out.stats.finished(), 3);
    }
}
