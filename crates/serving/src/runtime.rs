//! Executable continuous-batching serving runtime — the *measured*
//! backend of the shared serving API in [`crate::request`].
//!
//! Where [`crate::scheduler::run_schedule`] advances modelled time from
//! the cost model, [`ServingRuntime`] drives a real engine: admission
//! control against the same [`PagedKvCache`] reservation rule, batched
//! prefill on admission, and iteration-level decode in which every
//! running sequence contributes one row to a single M=batch forward
//! pass per iteration — on `lq_engine::TinyLlm` that stacks all live
//! sequences into one activation matrix per layer and submits it as one
//! GEMM to the shared `Arc<LiquidGemm>` pool (the CPU analogue of the
//! paper's batched decode GEMMs, Figure 10 / Table 1).
//!
//! The runtime is generic over [`ServingEngine`] so `lq-serving` does
//! not depend on `lq-engine` (which depends back on this crate for the
//! KV page tables); `TinyLlm` implements the trait in `lq-engine`.
//!
//! Time is a virtual clock in seconds: it advances by the *measured*
//! wall-clock duration of each prefill/decode call and jumps forward
//! over idle gaps to the next arrival. Request latencies therefore
//! reflect real compute while arrival schedules stay reproducible —
//! makespan is (compute time) + (idle gaps), never inflated by host
//! scheduling between runs.
//!
//! Robustness mirrors the simulation backend exactly: per-request
//! deadlines evict with clean KV-page release
//! ([`CompletionStatus::TimedOut`]), a bounded queue rejects arrivals
//! when full ([`CompletionStatus::Rejected`]), and per-request
//! latency / queue-delay histograms are recorded in telemetry.
//!
//! ## Failure containment
//!
//! The serving loop is the unit that must stay up, so engine calls go
//! through the [`ServingEngine`] `try_*` wrappers, which catch unwinds
//! at the call boundary and surface them as [`EngineError`]s. A failed
//! prefill kills only that request; a failed decode step kills the
//! running batch (the engine's state for those sequences is unknown) —
//! in both cases every KV page is released and the request completes
//! as [`CompletionStatus::Failed`] instead of unwinding through the
//! loop. Denied KV allocations (e.g. an injected fault from
//! [`ServingRuntime::with_fault_injector`]) take the same path.
//! Malformed requests with non-finite arrival or deadline are rejected
//! at ingest — a NaN arrival used to panic the arrival sort.

use crate::kvcache::{PagedKvCache, SeqId};
use crate::request::{Completion, CompletionStatus, Request, RunStats, SchedulerConfig};
use crate::telemetry::SchedMetrics;
use lq_chaos::FaultInjector;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// An engine call that panicked; caught at the runtime boundary by the
/// [`ServingEngine`] `try_*` wrappers and mapped to
/// [`CompletionStatus::Failed`].
#[derive(Debug, Clone)]
pub struct EngineError {
    message: String,
}

impl EngineError {
    fn from_panic(payload: &(dyn std::any::Any + Send)) -> Self {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "engine panicked".to_string());
        Self { message }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine call panicked: {}", self.message)
    }
}

impl std::error::Error for EngineError {}

/// The model-side contract the runtime schedules over.
///
/// Implementations own their KV state per sequence; the runtime owns
/// admission (so an engine sized for at least the runtime's KV token
/// budget never sees OOM).
pub trait ServingEngine {
    /// Register `id`, run prefill over `prompt` (one M=prompt-length
    /// pass), and return the first generated token.
    fn prefill(&mut self, id: SeqId, prompt: &[usize]) -> usize;

    /// One batched decode iteration: for each `(id, last_token)` slot,
    /// feed `last_token` to sequence `id` and return its next token.
    /// All slots advance in a single M=batch forward pass.
    fn decode_batch(&mut self, slots: &[(SeqId, usize)]) -> Vec<usize>;

    /// Drop sequence `id` and release its engine-side KV pages. Called
    /// on finish and on deadline eviction.
    fn release(&mut self, id: SeqId);

    /// [`Self::prefill`] with unwind containment: a panicking engine
    /// becomes an [`EngineError`] instead of tearing down the loop.
    fn try_prefill(&mut self, id: SeqId, prompt: &[usize]) -> Result<usize, EngineError> {
        catch_unwind(AssertUnwindSafe(|| self.prefill(id, prompt)))
            .map_err(|p| EngineError::from_panic(p.as_ref()))
    }

    /// [`Self::decode_batch`] with unwind containment.
    fn try_decode_batch(&mut self, slots: &[(SeqId, usize)]) -> Result<Vec<usize>, EngineError> {
        catch_unwind(AssertUnwindSafe(|| self.decode_batch(slots)))
            .map_err(|p| EngineError::from_panic(p.as_ref()))
    }

    /// [`Self::release`] with unwind containment. Used on the failure
    /// path, where the engine may hold no state for `id` (a prefill
    /// that panicked half-registered) and its own release assertions
    /// must not escalate the cleanup into another unwind.
    fn try_release(&mut self, id: SeqId) {
        let _ = catch_unwind(AssertUnwindSafe(|| self.release(id)));
    }
}

/// A [`Request`] paired with its actual prompt tokens.
#[derive(Debug, Clone)]
pub struct PromptRequest {
    /// Scheduling metadata (shared with the simulation backend).
    pub meta: Request,
    /// Prompt token ids (length must equal `meta.prompt_len`).
    pub prompt: Vec<usize>,
}

impl PromptRequest {
    /// Pair a request with its prompt tokens.
    #[must_use]
    pub fn new(meta: Request, prompt: Vec<usize>) -> Self {
        assert_eq!(
            meta.prompt_len,
            prompt.len(),
            "prompt_len must match the prompt"
        );
        Self { meta, prompt }
    }
}

/// The serving runtime's virtual clock (seconds) as trace-event
/// virtual-timestamp nanoseconds.
fn vns(t: f64) -> u64 {
    (t * 1e9) as u64
}

struct Running {
    id: u64,
    admitted_at: f64,
    arrival: f64,
    output_len: usize,
    produced: usize,
    last_token: usize,
    expiry: Option<f64>,
}

/// Executable continuous-batching runtime over a [`ServingEngine`].
///
/// Owns the admission-control page table: a request is admitted only
/// when its full `prompt + output` reservation fits (conservative, no
/// preemption), exactly the rule the simulation backend applies.
pub struct ServingRuntime {
    cfg: SchedulerConfig,
    kv: PagedKvCache,
}

impl ServingRuntime {
    /// Build a runtime whose admission table holds `kv_budget_tokens`
    /// tokens in pages of `cfg.page_tokens`. The engine's own KV stores
    /// must hold at least as many tokens per layer.
    #[must_use]
    pub fn new(cfg: SchedulerConfig, kv_budget_tokens: usize) -> Self {
        let kv = PagedKvCache::new(kv_budget_tokens as u64, cfg.page_tokens, 1);
        Self { cfg, kv }
    }

    /// Like [`Self::new`], but with a [`FaultInjector`] wired into the
    /// admission page table: scheduled `kv_denials` make `add_sequence`
    /// / `append_token` fail artificially, exercising the
    /// [`CompletionStatus::Failed`] path. With a quiet plan (or via
    /// [`Self::new`]) the hook is a `None` branch.
    #[must_use]
    pub fn with_fault_injector(
        cfg: SchedulerConfig,
        kv_budget_tokens: usize,
        inj: Arc<FaultInjector>,
    ) -> Self {
        let mut rt = Self::new(cfg, kv_budget_tokens);
        rt.kv.set_fault_injector(inj);
        rt
    }

    /// The admission page table (tests assert leak-freedom on it).
    #[must_use]
    pub fn kv(&self) -> &PagedKvCache {
        &self.kv
    }

    /// Record one completion, mirroring it into telemetry and onto the
    /// request's trace track.
    fn complete(stats: &mut RunStats, metrics: &Option<SchedMetrics>, c: Completion) {
        lq_trace::record_virtual(
            lq_trace::EventKind::ReqComplete,
            lq_trace::Track::Request(c.id),
            vns(c.finished_at),
            match c.status {
                CompletionStatus::Finished => 0,
                CompletionStatus::TimedOut => 1,
                CompletionStatus::Rejected => 2,
                CompletionStatus::Failed => 3,
            },
            c.generated,
        );
        if let Some(m) = metrics {
            match c.status {
                CompletionStatus::Finished => {
                    m.completed.inc();
                    m.request_latency_ns.record_secs(c.latency());
                    m.queue_delay_ns.record_secs(c.queue_delay());
                }
                CompletionStatus::TimedOut => m.timed_out.inc(),
                CompletionStatus::Rejected => m.rejected.inc(),
                CompletionStatus::Failed => m.failed.inc(),
            }
        }
        stats.completions.push(c);
    }

    /// Run the serving loop to completion over `requests` (any arrival
    /// order), driving `engine` with real batched forward passes.
    ///
    /// Every request completes exactly once — as `Finished`, `TimedOut`
    /// (deadline expired; pages released on eviction), `Rejected`
    /// (bounded queue full at arrival, a reservation that could never
    /// fit the KV budget, or malformed non-finite timing), or `Failed`
    /// (engine panic or denied KV allocation mid-flight; pages fully
    /// released). After the run all pages are back on the free list.
    pub fn run<E: ServingEngine>(
        &mut self,
        engine: &mut E,
        requests: Vec<PromptRequest>,
    ) -> RunStats {
        let metrics = SchedMetrics::resolve();
        let mut stats = RunStats::empty();

        // Validate timing at ingest: a NaN arrival must not reach the
        // sort below (`partial_cmp(...).expect` here used to panic the
        // whole run), and a NaN deadline would silently never expire.
        let mut arrivals: Vec<PromptRequest> = Vec::with_capacity(requests.len());
        for req in requests {
            let bad_arrival = !req.meta.arrival.is_finite();
            let bad_deadline = req.meta.deadline.is_some_and(|d| !d.is_finite());
            if bad_arrival || bad_deadline {
                // Timestamps are zeroed so NaN cannot leak into
                // latency statistics either.
                lq_trace::record_virtual(
                    lq_trace::EventKind::ReqIngest,
                    lq_trace::Track::Request(req.meta.id),
                    0,
                    req.meta.prompt_len as u64,
                    req.meta.output_len as u64,
                );
                Self::complete(
                    &mut stats,
                    &metrics,
                    Completion {
                        id: req.meta.id,
                        admitted_at: 0.0,
                        finished_at: 0.0,
                        arrival: 0.0,
                        status: CompletionStatus::Rejected,
                        generated: 0,
                    },
                );
            } else {
                arrivals.push(req);
            }
        }
        arrivals.sort_by(|a, b| a.meta.arrival.total_cmp(&b.meta.arrival));
        arrivals.reverse(); // pop() takes the earliest

        let mut now = 0.0f64;
        let mut pending: VecDeque<PromptRequest> = VecDeque::new();
        let mut running: Vec<Running> = Vec::new();

        loop {
            // 0. Ingest arrivals up to the current clock; reject on a
            //    full queue or an impossible reservation.
            while arrivals.last().is_some_and(|r| r.meta.arrival <= now) {
                let req = arrivals.pop().expect("checked non-empty");
                lq_trace::record_virtual(
                    lq_trace::EventKind::ReqIngest,
                    lq_trace::Track::Request(req.meta.id),
                    vns(req.meta.arrival),
                    req.meta.prompt_len as u64,
                    req.meta.output_len as u64,
                );
                let need = req.meta.prompt_len + req.meta.output_len;
                let impossible = self.kv.pages_for(need) > self.kv.total_pages();
                if impossible || pending.len() >= self.cfg.max_queue {
                    Self::complete(
                        &mut stats,
                        &metrics,
                        Completion {
                            id: req.meta.id,
                            admitted_at: req.meta.arrival,
                            finished_at: req.meta.arrival,
                            arrival: req.meta.arrival,
                            status: CompletionStatus::Rejected,
                            generated: 0,
                        },
                    );
                } else {
                    pending.push_back(req);
                }
            }

            // 0b. Expire queued requests whose deadline already passed.
            pending.retain(|req| {
                let expired = req.meta.expiry().is_some_and(|e| now > e);
                if expired {
                    Self::complete(
                        &mut stats,
                        &metrics,
                        Completion {
                            id: req.meta.id,
                            admitted_at: now,
                            finished_at: now,
                            arrival: req.meta.arrival,
                            status: CompletionStatus::TimedOut,
                            generated: 0,
                        },
                    );
                }
                !expired
            });

            // 1. Admit while the conservative reservation fits, then
            //    prefill the admitted cohort back-to-back (each prefill
            //    is one M=prompt-length batch through the engine).
            let mut admitted: Vec<PromptRequest> = Vec::new();
            while running.len() + admitted.len() < self.cfg.max_batch {
                let Some(req) = pending.front() else { break };
                let need = req.meta.prompt_len + req.meta.output_len;
                if !self.kv.can_reserve(need) {
                    if let Some(m) = &metrics {
                        m.blocked.inc();
                    }
                    break; // FCFS head-of-line blocking
                }
                if self.kv.add_sequence(req.meta.id, need).is_err() {
                    // `can_reserve` just passed, so this is a denied
                    // allocation (fault injection): fail the request
                    // cleanly and keep admitting the rest.
                    let req = pending.pop_front().expect("front exists");
                    Self::complete(
                        &mut stats,
                        &metrics,
                        Completion {
                            id: req.meta.id,
                            admitted_at: now,
                            finished_at: now,
                            arrival: req.meta.arrival,
                            status: CompletionStatus::Failed,
                            generated: 0,
                        },
                    );
                    continue;
                }
                let req = pending.pop_front().expect("front exists");
                if lq_trace::enabled() {
                    let t = lq_trace::Track::Request(req.meta.id);
                    lq_trace::record_virtual(
                        lq_trace::EventKind::ReqAdmit,
                        t,
                        vns(now),
                        need as u64,
                        0,
                    );
                    lq_trace::record_virtual(
                        lq_trace::EventKind::KvReserve,
                        t,
                        vns(now),
                        self.kv.pages_for(need) as u64,
                        0,
                    );
                }
                admitted.push(req);
            }
            if !admitted.is_empty() {
                let admit_time = now;
                let n_admitted = admitted.len();
                let t0 = Instant::now();
                // Prefill the cohort one request at a time so a panic
                // inside the engine fails only the request that caused
                // it: its reservation and any half-registered engine
                // state are released, the rest of the cohort proceeds.
                let mut prefilled: Vec<(PromptRequest, usize)> = Vec::with_capacity(n_admitted);
                let mut failed: Vec<PromptRequest> = Vec::new();
                for req in admitted {
                    // Scope the request ID over the engine call so every
                    // pool job its GEMMs submit carries it; the prefill
                    // span itself is timed per request (telemetry keeps
                    // the cohort-level histogram below).
                    let _corr = lq_trace::enabled().then(|| lq_trace::corr_scope(req.meta.id));
                    let pt0 = lq_trace::enabled().then(Instant::now);
                    let res = engine.try_prefill(req.meta.id, &req.prompt);
                    if let Some(pt0) = pt0 {
                        lq_trace::span_full(
                            lq_trace::EventKind::ReqPrefill,
                            lq_trace::Track::Request(req.meta.id),
                            req.meta.id,
                            0,
                            0,
                            pt0,
                            vns(admit_time),
                        );
                    }
                    match res {
                        Ok(tok) => prefilled.push((req, tok)),
                        Err(_) => {
                            engine.try_release(req.meta.id);
                            self.kv.free_sequence(req.meta.id).expect("was admitted");
                            lq_trace::record_virtual(
                                lq_trace::EventKind::KvRelease,
                                lq_trace::Track::Request(req.meta.id),
                                vns(now),
                                0,
                                0,
                            );
                            failed.push(req);
                        }
                    }
                }
                let dt = t0.elapsed().as_secs_f64();
                now += dt;
                if let Some(m) = &metrics {
                    m.admitted.add(n_admitted as u64);
                    m.prefill_ns.record_secs(dt);
                    m.queue_len.set(pending.len() as f64);
                }
                for req in failed {
                    Self::complete(
                        &mut stats,
                        &metrics,
                        Completion {
                            id: req.meta.id,
                            admitted_at: admit_time,
                            finished_at: now,
                            arrival: req.meta.arrival,
                            status: CompletionStatus::Failed,
                            generated: 0,
                        },
                    );
                }
                stats.generated_tokens += prefilled.len() as u64;
                for (req, tok) in prefilled {
                    running.push(Running {
                        id: req.meta.id,
                        admitted_at: admit_time,
                        arrival: req.meta.arrival,
                        output_len: req.meta.output_len,
                        produced: 1, // prefill emitted the first token
                        last_token: tok,
                        expiry: req.meta.expiry(),
                    });
                }
            }
            stats.peak_batch = stats.peak_batch.max(running.len());

            // 2. Evict running sequences past their deadline, releasing
            //    engine and admission pages before the next iteration.
            let mut i = 0;
            while i < running.len() {
                if running[i].expiry.is_some_and(|e| now > e) {
                    let r = running.swap_remove(i);
                    engine.release(r.id);
                    self.kv.free_sequence(r.id).expect("was admitted");
                    lq_trace::record_virtual(
                        lq_trace::EventKind::KvRelease,
                        lq_trace::Track::Request(r.id),
                        vns(now),
                        0,
                        0,
                    );
                    Self::complete(
                        &mut stats,
                        &metrics,
                        Completion {
                            id: r.id,
                            admitted_at: r.admitted_at,
                            finished_at: now,
                            arrival: r.arrival,
                            status: CompletionStatus::TimedOut,
                            generated: r.produced as u64,
                        },
                    );
                } else {
                    i += 1;
                }
            }

            // 2b. Retire sequences that finished at prefill
            //     (output_len == 1) or in the previous iteration.
            let mut i = 0;
            while i < running.len() {
                if running[i].produced >= running[i].output_len {
                    let r = running.swap_remove(i);
                    engine.release(r.id);
                    self.kv.free_sequence(r.id).expect("was admitted");
                    lq_trace::record_virtual(
                        lq_trace::EventKind::KvRelease,
                        lq_trace::Track::Request(r.id),
                        vns(now),
                        0,
                        0,
                    );
                    Self::complete(
                        &mut stats,
                        &metrics,
                        Completion {
                            id: r.id,
                            admitted_at: r.admitted_at,
                            finished_at: now,
                            arrival: r.arrival,
                            status: CompletionStatus::Finished,
                            generated: r.output_len as u64,
                        },
                    );
                } else {
                    i += 1;
                }
            }

            if running.is_empty() {
                if !pending.is_empty() {
                    // Impossible-fit requests were rejected at ingest,
                    // so a waiting request with an empty device always
                    // admits on the next pass.
                    continue;
                }
                match arrivals.last() {
                    Some(req) => {
                        now = now.max(req.meta.arrival);
                        continue;
                    }
                    None => break,
                }
            }

            // 3. One real decode iteration: all running sequences in a
            //    single M=batch forward pass.
            let slots: Vec<(SeqId, usize)> = running.iter().map(|r| (r.id, r.last_token)).collect();
            // One synthetic correlation ID per batched step: the GEMM
            // jobs of this forward pass belong to every request in the
            // batch, so they carry the step ID and each request's
            // `ReqDecodeIter` span repeats it as the join key.
            let step_corr = if lq_trace::enabled() {
                lq_trace::fresh_batch_corr()
            } else {
                0
            };
            let _corr = (step_corr != 0).then(|| lq_trace::corr_scope(step_corr));
            let t0 = Instant::now();
            let res = engine.try_decode_batch(&slots);
            let dt = t0.elapsed().as_secs_f64();
            now += dt;
            if step_corr != 0 {
                for &(id, _) in &slots {
                    lq_trace::span_full(
                        lq_trace::EventKind::ReqDecodeIter,
                        lq_trace::Track::Request(id),
                        step_corr,
                        step_corr,
                        slots.len() as u64,
                        t0,
                        vns(now),
                    );
                }
            }
            match res {
                Ok(next) => {
                    assert_eq!(next.len(), slots.len(), "engine returned wrong batch");
                    if let Some(m) = &metrics {
                        m.batch_size.record(running.len() as u64);
                        m.decode_step_ns.record_secs(dt);
                    }
                    stats.decode_steps += 1;
                    stats.generated_tokens += running.len() as u64;
                    for (r, tok) in running.iter_mut().zip(next) {
                        r.last_token = tok;
                        r.produced += 1;
                    }
                }
                Err(_) => {
                    // A panic mid-batch leaves the engine's state for
                    // every running sequence unknown: fail the whole
                    // batch with full release and keep serving what is
                    // still queued.
                    for r in running.drain(..) {
                        engine.try_release(r.id);
                        self.kv.free_sequence(r.id).expect("was admitted");
                        lq_trace::record_virtual(
                            lq_trace::EventKind::KvRelease,
                            lq_trace::Track::Request(r.id),
                            vns(now),
                            0,
                            0,
                        );
                        Self::complete(
                            &mut stats,
                            &metrics,
                            Completion {
                                id: r.id,
                                admitted_at: r.admitted_at,
                                finished_at: now,
                                arrival: r.arrival,
                                status: CompletionStatus::Failed,
                                generated: r.produced as u64,
                            },
                        );
                    }
                }
            }
        }
        stats.makespan = now;
        if let Some(m) = &metrics {
            m.tokens_per_s.set(stats.throughput());
            m.queue_len.set(0.0);
            // Conservative admission reserves prompt+output up front,
            // so nothing in this loop can preempt; the exported
            // `lq_serving_preemptions_total` counter must still read 0.
            assert_eq!(
                m.preemptions.get(),
                0,
                "conservative admission must never preempt"
            );
        }
        assert!(self.kv.check_invariants(), "page conservation violated");
        assert_eq!(
            self.kv.free_pages(),
            self.kv.total_pages(),
            "KV pages leaked after drain"
        );
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Deterministic engine stub: tracks live sequences and batch
    /// shapes so tests can assert the runtime's scheduling behaviour
    /// without pulling in `lq-engine` (which depends on this crate).
    struct MockEngine {
        vocab: usize,
        live: HashSet<SeqId>,
        peak_batch: usize,
        prefills: usize,
        decode_calls: usize,
    }

    impl MockEngine {
        fn new() -> Self {
            Self {
                vocab: 64,
                live: HashSet::new(),
                peak_batch: 0,
                prefills: 0,
                decode_calls: 0,
            }
        }
    }

    impl ServingEngine for MockEngine {
        fn prefill(&mut self, id: SeqId, prompt: &[usize]) -> usize {
            assert!(self.live.insert(id), "sequence {id} already live");
            self.prefills += 1;
            prompt.iter().sum::<usize>() % self.vocab
        }

        fn decode_batch(&mut self, slots: &[(SeqId, usize)]) -> Vec<usize> {
            self.decode_calls += 1;
            self.peak_batch = self.peak_batch.max(slots.len());
            slots
                .iter()
                .map(|&(id, t)| {
                    assert!(self.live.contains(&id), "decode of dead sequence {id}");
                    (t + 1) % self.vocab
                })
                .collect()
        }

        fn release(&mut self, id: SeqId) {
            assert!(self.live.remove(&id), "double release of {id}");
        }
    }

    fn reqs(n: usize, prompt_len: usize, output_len: usize) -> Vec<PromptRequest> {
        (0..n as u64)
            .map(|id| {
                PromptRequest::new(
                    Request::new(id, prompt_len, output_len, 0.0),
                    (0..prompt_len).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn drains_all_requests_and_releases_everything() {
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let stats = rt.run(&mut engine, reqs(10, 8, 4));
        assert_eq!(stats.finished(), 10);
        assert_eq!(stats.generated_tokens, 10 * 4);
        assert!(engine.live.is_empty(), "engine leaked sequences");
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages());
        // All 10 fit at once: 1 prefill cohort, then 3 decode rounds
        // (prefill produced token 1 of 4).
        assert_eq!(engine.prefills, 10);
        assert_eq!(stats.peak_batch, 10);
        assert_eq!(stats.decode_steps, 3);
    }

    #[test]
    fn batch_cap_limits_concurrency() {
        let mut engine = MockEngine::new();
        let cfg = SchedulerConfig::builder().max_batch(3).build().unwrap();
        let mut rt = ServingRuntime::new(cfg, 4096);
        let stats = rt.run(&mut engine, reqs(10, 8, 4));
        assert_eq!(stats.finished(), 10);
        assert!(stats.peak_batch <= 3);
        assert!(engine.peak_batch <= 3);
    }

    #[test]
    fn kv_pressure_serialises_admission() {
        // Budget fits exactly one request's reservation (8+4=12 tokens
        // → 2 pages of 8): requests run one at a time.
        let cfg = SchedulerConfig::builder().page_tokens(8).build().unwrap();
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(cfg, 16);
        let stats = rt.run(&mut engine, reqs(5, 8, 4));
        assert_eq!(stats.finished(), 5);
        assert_eq!(stats.peak_batch, 1);
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages());
    }

    #[test]
    fn bounded_queue_rejects_deterministically() {
        // max_batch 1 and max_queue 1 with 4 simultaneous arrivals:
        // the ingest pass queues the first and rejects the other three
        // before anything is admitted.
        let cfg = SchedulerConfig::builder()
            .max_batch(1)
            .max_queue(1)
            .build()
            .unwrap();
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(cfg, 4096);
        let stats = rt.run(&mut engine, reqs(4, 8, 2));
        assert_eq!(stats.finished(), 1);
        assert_eq!(stats.rejected(), 3);
        for c in &stats.completions {
            if c.status == CompletionStatus::Rejected {
                assert_eq!(c.generated, 0);
                assert_eq!(c.latency(), 0.0);
            }
        }
        assert!(engine.live.is_empty());
    }

    #[test]
    fn zero_deadline_times_out_after_prefill() {
        // deadline 0.0: still admitted at t=0, but measured prefill
        // time pushes the clock past expiry before the first decode —
        // the request is evicted having produced exactly one token.
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let reqs = vec![PromptRequest::new(
            Request::new(0, 4, 8, 0.0).with_deadline(0.0),
            vec![1, 2, 3, 4],
        )];
        let stats = rt.run(&mut engine, reqs);
        assert_eq!(stats.timed_out(), 1);
        assert_eq!(stats.completions[0].generated, 1);
        assert_eq!(stats.decode_steps, 0);
        assert!(engine.live.is_empty(), "timed-out sequence not released");
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages());
    }

    #[test]
    fn impossible_reservation_is_rejected() {
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 64);
        let mut rs = reqs(1, 8, 4);
        rs.push(PromptRequest::new(
            Request::new(9, 100, 100, 0.0),
            (0..100).collect(),
        ));
        let stats = rt.run(&mut engine, rs);
        assert_eq!(stats.finished(), 1);
        assert_eq!(stats.rejected(), 1);
        assert_eq!(engine.prefills, 1, "rejected request must never prefill");
    }

    #[test]
    fn single_token_outputs_finish_at_prefill() {
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let stats = rt.run(&mut engine, reqs(3, 8, 1));
        assert_eq!(stats.finished(), 3);
        assert_eq!(stats.decode_steps, 0);
        assert_eq!(stats.generated_tokens, 3);
    }

    #[test]
    fn staggered_arrivals_join_the_running_batch() {
        // Second wave arrives while the first is still decoding (clock
        // jumps to their arrival once the device idles or passes it):
        // everything finishes, ids complete exactly once.
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let mut rs = reqs(4, 8, 64);
        for (i, extra) in reqs(4, 8, 64).into_iter().enumerate() {
            let id = 100 + i as u64;
            rs.push(PromptRequest::new(
                Request::new(id, 8, 64, 1e-7),
                extra.prompt,
            ));
        }
        let stats = rt.run(&mut engine, rs);
        assert_eq!(stats.finished(), 8);
        let mut ids: Vec<u64> = stats.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "each request completes exactly once");
    }

    /// [`MockEngine`] wrapper that panics on schedule: at prefill of
    /// chosen ids, or at the n-th decode call — before touching the
    /// inner engine, so prefill panics leave no half-registered state
    /// while decode panics leave the batch live (the runtime must
    /// release it through `try_release`).
    struct FaultyEngine {
        inner: MockEngine,
        panic_prefill_ids: HashSet<SeqId>,
        panic_decode_call: Option<usize>,
        decode_calls: usize,
    }

    impl FaultyEngine {
        fn new(panic_prefill_ids: &[SeqId], panic_decode_call: Option<usize>) -> Self {
            Self {
                inner: MockEngine::new(),
                panic_prefill_ids: panic_prefill_ids.iter().copied().collect(),
                panic_decode_call,
                decode_calls: 0,
            }
        }
    }

    impl ServingEngine for FaultyEngine {
        fn prefill(&mut self, id: SeqId, prompt: &[usize]) -> usize {
            assert!(
                !self.panic_prefill_ids.contains(&id),
                "injected fault: prefill panic for sequence {id}"
            );
            self.inner.prefill(id, prompt)
        }

        fn decode_batch(&mut self, slots: &[(SeqId, usize)]) -> Vec<usize> {
            let call = self.decode_calls;
            self.decode_calls += 1; // counts panicked calls too
            if self.panic_decode_call == Some(call) {
                panic!("injected fault: decode panic at call {call}");
            }
            self.inner.decode_batch(slots)
        }

        fn release(&mut self, id: SeqId) {
            self.inner.release(id);
        }
    }

    #[test]
    fn nan_arrival_or_deadline_is_rejected_not_panicking() {
        // Regression: a NaN arrival used to blow up the ingest sort via
        // `partial_cmp(...).expect("finite")`.
        let mut engine = MockEngine::new();
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let mut rs = reqs(2, 8, 4);
        rs[0].meta.arrival = f64::NAN;
        // `with_deadline` validates, so poke the field directly —
        // modelling a caller that bypasses the constructors.
        let mut bad_deadline = PromptRequest::new(Request::new(7, 8, 4, 0.0), (0..8).collect());
        bad_deadline.meta.deadline = Some(f64::NAN);
        rs.push(bad_deadline);
        let mut inf_arrival = PromptRequest::new(Request::new(8, 8, 4, 0.0), (0..8).collect());
        inf_arrival.meta.arrival = f64::INFINITY;
        rs.push(inf_arrival);
        let stats = rt.run(&mut engine, rs);
        assert_eq!(
            stats.rejected(),
            3,
            "NaN arrival, NaN deadline, inf arrival"
        );
        assert_eq!(stats.finished(), 1);
        for c in &stats.completions {
            assert!(c.latency().is_finite(), "NaN leaked into latency");
        }
        assert!(engine.live.is_empty());
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages());
    }

    #[test]
    fn prefill_panic_fails_only_that_request() {
        let mut engine = FaultyEngine::new(&[2], None);
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let stats = rt.run(&mut engine, reqs(5, 8, 4));
        assert_eq!(stats.failed(), 1);
        assert_eq!(stats.finished(), 4);
        let failed: Vec<u64> = stats
            .completions
            .iter()
            .filter(|c| c.status == CompletionStatus::Failed)
            .map(|c| c.id)
            .collect();
        assert_eq!(failed, [2]);
        assert!(engine.inner.live.is_empty(), "engine leaked sequences");
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages(), "pages leaked");
    }

    #[test]
    fn decode_panic_fails_batch_but_later_arrivals_still_serve() {
        // First wave of 3 dies on its first decode call; a later wave
        // must still be admitted and finish — the loop survives.
        let mut engine = FaultyEngine::new(&[], Some(0));
        let mut rt = ServingRuntime::new(SchedulerConfig::default(), 4096);
        let mut rs = reqs(3, 8, 4);
        for i in 0..3u64 {
            rs.push(PromptRequest::new(
                Request::new(100 + i, 8, 4, 1e9),
                (0..8).collect(),
            ));
        }
        let stats = rt.run(&mut engine, rs);
        assert_eq!(stats.failed(), 3, "whole first batch failed");
        assert_eq!(stats.finished(), 3, "second wave unaffected");
        for c in &stats.completions {
            if c.status == CompletionStatus::Failed {
                assert_eq!(c.generated, 1, "prefill token counted before the fault");
            }
        }
        assert!(engine.inner.live.is_empty(), "engine leaked sequences");
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages(), "pages leaked");
    }

    #[test]
    fn injected_kv_denial_fails_request_and_releases_everything() {
        use lq_chaos::{FaultInjector, FaultPlan};
        use std::sync::Arc;

        let inj = Arc::new(FaultInjector::new(FaultPlan::quiet().kv_denials_at(&[0])));
        let mut engine = MockEngine::new();
        let mut rt =
            ServingRuntime::with_fault_injector(SchedulerConfig::default(), 4096, Arc::clone(&inj));
        let stats = rt.run(&mut engine, reqs(4, 8, 4));
        assert_eq!(stats.failed(), 1, "first admission denied");
        assert_eq!(stats.finished(), 3);
        assert_eq!(inj.stats().kv_denials, 1);
        assert!(engine.live.is_empty());
        assert_eq!(rt.kv().free_pages(), rt.kv().total_pages());
    }
}
