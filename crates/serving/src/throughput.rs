//! Memory-budget batch search and peak-throughput scan (Table 1,
//! Figure 11).
//!
//! Following the paper's protocol: input length 1024, output length
//! 512, batch swept from 1 to 256 (or until OOM) under the 80 GB H800
//! budget; the reported number is the best generation throughput and
//! the batch at which it occurs.

use crate::decode::{decode_step, prefill_time};
use crate::system::ServingSystem;
use lq_models::ModelConfig;
use lq_sim::specs::GpuSpec;

/// The paper's workload lengths.
pub const INPUT_LEN: usize = 1024;
/// Output tokens per request.
pub const OUTPUT_LEN: usize = 512;
/// Batch sweep upper limit.
pub const MAX_BATCH: usize = 256;
/// Activation / workspace reservation (bytes).
pub const RESERVE_BYTES: f64 = 2.0 * 1024.0 * 1024.0 * 1024.0;

/// Result of the peak-throughput scan for one (system, model) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakResult {
    /// Tokens/second at the best batch size.
    pub tokens_per_s: f64,
    /// The batch size achieving it (the Table-1 parenthetical).
    pub batch: usize,
}

/// Largest batch whose weights + full-length KV + workspace fit in
/// `capacity` bytes. Returns 0 when even batch 1 does not fit (the
/// Table-1 "OOM" cells).
#[must_use]
pub fn max_feasible_batch(
    sys: &ServingSystem,
    cfg: &ModelConfig,
    capacity: f64,
    in_len: usize,
    out_len: usize,
) -> usize {
    let weights = sys.weight_bytes(cfg);
    let kv_per_seq = (in_len + out_len) as f64 * cfg.kv_bytes_per_token(sys.attention.kv.bytes());
    let available = capacity - weights - RESERVE_BYTES;
    if available < kv_per_seq {
        return 0;
    }
    ((available / kv_per_seq) as usize).min(MAX_BATCH)
}

/// Generation throughput (tokens/s) at a fixed batch size: decode with
/// mean context `in + out/2`, amortising one prefill per request batch.
#[must_use]
pub fn throughput_at_batch(
    sys: &ServingSystem,
    spec: &GpuSpec,
    cfg: &ModelConfig,
    batch: usize,
    in_len: usize,
    out_len: usize,
) -> f64 {
    assert!(batch > 0);
    let prefill = prefill_time(sys, spec, cfg, batch, in_len);
    let mean_ctx = in_len + out_len / 2;
    let step = decode_step(sys, spec, cfg, batch, mean_ctx).total();
    let total = prefill + step * out_len as f64;
    (batch * out_len) as f64 / total
}

/// Scan batch sizes under the memory budget and return the peak
/// (`None` = the OOM/NA cell).
#[must_use]
pub fn peak_throughput(
    sys: &ServingSystem,
    spec: &GpuSpec,
    cfg: &ModelConfig,
) -> Option<PeakResult> {
    if !sys.supports(cfg) {
        return None;
    }
    let max_b = max_feasible_batch(sys, cfg, spec.mem_capacity as f64, INPUT_LEN, OUTPUT_LEN);
    if max_b == 0 {
        return None;
    }
    let mut best: Option<PeakResult> = None;
    for b in 1..=max_b {
        let t = throughput_at_batch(sys, spec, cfg, b, INPUT_LEN, OUTPUT_LEN);
        if best.is_none_or(|p| t > p.tokens_per_s) {
            best = Some(PeakResult {
                tokens_per_s: t,
                batch: b,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemId;
    use lq_models::configs::{LLAMA1_30B, LLAMA2_70B, LLAMA2_7B, MIXTRAL_8X7B};
    use lq_sim::specs::H800;

    fn sys(id: SystemId) -> ServingSystem {
        ServingSystem::of(id)
    }

    #[test]
    fn table1_oom_cells() {
        // TRT-FP16 on LLaMA2-70B and Mixtral: OOM.
        assert!(peak_throughput(&sys(SystemId::TrtFp16), &H800, &LLAMA2_70B).is_none());
        assert!(peak_throughput(&sys(SystemId::TrtFp16), &H800, &MIXTRAL_8X7B).is_none());
        // And the NA cells.
        assert!(peak_throughput(&sys(SystemId::TrtW8A8), &H800, &MIXTRAL_8X7B).is_none());
        assert!(peak_throughput(&sys(SystemId::QServe), &H800, &MIXTRAL_8X7B).is_none());
    }

    #[test]
    fn table1_llama2_7b_liquidserve_magnitude() {
        // Paper: 6,721 tokens/s at batch 194.
        let p = peak_throughput(&sys(SystemId::LiquidServe), &H800, &LLAMA2_7B).unwrap();
        assert!(
            (4000.0..11000.0).contains(&p.tokens_per_s),
            "tokens/s {}",
            p.tokens_per_s
        );
        assert!((150..=256).contains(&p.batch), "batch {}", p.batch);
    }

    #[test]
    fn table1_fp16_30b_small_batch() {
        // Paper: 410 tokens/s at batch 13 (weights eat the card).
        let p = peak_throughput(&sys(SystemId::TrtFp16), &H800, &LLAMA1_30B).unwrap();
        assert!(p.batch <= 20, "batch {}", p.batch);
        assert!(
            (200.0..900.0).contains(&p.tokens_per_s),
            "{}",
            p.tokens_per_s
        );
    }

    #[test]
    fn table1_70b_liquidserve_beats_w8a8_by_memory() {
        // Paper: 3.16x over TRT-W8A8 on LLaMA2-70B via larger batches.
        let l = peak_throughput(&sys(SystemId::LiquidServe), &H800, &LLAMA2_70B).unwrap();
        let w8 = peak_throughput(&sys(SystemId::TrtW8A8), &H800, &LLAMA2_70B).unwrap();
        let speedup = l.tokens_per_s / w8.tokens_per_s;
        assert!(speedup > 1.8, "speedup {speedup}");
        assert!(l.batch > w8.batch);
    }

    #[test]
    fn liquidserve_beats_its_wo_ablation() {
        // Paper: 1.13–1.98x end-to-end from the kernel alone.
        for cfg in [&LLAMA2_7B, &LLAMA2_70B] {
            let full = peak_throughput(&sys(SystemId::LiquidServe), &H800, cfg).unwrap();
            let wo = peak_throughput(&sys(SystemId::LiquidServeWo), &H800, cfg).unwrap();
            let gain = full.tokens_per_s / wo.tokens_per_s;
            assert!((1.02..2.5).contains(&gain), "{}: gain {gain}", cfg.name);
        }
    }

    #[test]
    fn qserve_peaks_at_interior_batch() {
        // Paper: QServe peaks around 64–128 and stops scaling.
        let p = peak_throughput(&sys(SystemId::QServe), &H800, &LLAMA2_7B).unwrap();
        let feasible = max_feasible_batch(
            &sys(SystemId::QServe),
            &LLAMA2_7B,
            H800.mem_capacity as f64,
            1024,
            512,
        );
        assert!(
            p.batch < feasible,
            "peak {} should be interior to {feasible}",
            p.batch
        );
    }

    #[test]
    fn liquidserve_outperforms_qserve_overall() {
        for cfg in [&LLAMA2_7B, &LLAMA2_70B] {
            let l = peak_throughput(&sys(SystemId::LiquidServe), &H800, cfg).unwrap();
            let q = peak_throughput(&sys(SystemId::QServe), &H800, cfg).unwrap();
            assert!(l.tokens_per_s > q.tokens_per_s, "{}", cfg.name);
        }
    }

    #[test]
    fn fixed_batch_throughput_ordering_fig11() {
        // Figure 11: at the same batch size LiquidServe leads.
        for batch in [16, 128] {
            let l = throughput_at_batch(
                &sys(SystemId::LiquidServe),
                &H800,
                &LLAMA2_7B,
                batch,
                1024,
                512,
            );
            for id in [SystemId::QServe, SystemId::TrtW8A8, SystemId::TrtFp16] {
                let o = throughput_at_batch(&sys(id), &H800, &LLAMA2_7B, batch, 1024, 512);
                assert!(l >= o * 0.98, "batch {batch}: {:?} {o} vs liquid {l}", id);
            }
        }
    }

    #[test]
    fn feasible_batch_monotone_in_weight_bits() {
        let l = max_feasible_batch(
            &sys(SystemId::LiquidServe),
            &LLAMA2_70B,
            H800.mem_capacity as f64,
            1024,
            512,
        );
        let w8 = max_feasible_batch(
            &sys(SystemId::TrtW8A8),
            &LLAMA2_70B,
            H800.mem_capacity as f64,
            1024,
            512,
        );
        let f16 = max_feasible_batch(
            &sys(SystemId::TrtFp16),
            &LLAMA2_70B,
            H800.mem_capacity as f64,
            1024,
            512,
        );
        assert!(l > w8, "4-bit fits more than 8-bit: {l} vs {w8}");
        assert_eq!(f16, 0, "FP16 70B OOMs");
    }

    #[test]
    fn mixtral_runs_on_liquidserve_and_fp8_only_plus_w4a16() {
        let ok: Vec<&str> = SystemId::ALL
            .iter()
            .filter(|&&id| peak_throughput(&sys(id), &H800, &MIXTRAL_8X7B).is_some())
            .map(|&id| sys(id).name)
            .collect();
        assert!(ok.contains(&"LiquidServe"));
        assert!(ok.contains(&"TRT-FP8"));
        assert!(ok.contains(&"TRT-W4A16"));
        assert!(!ok.contains(&"QServe"));
        assert!(!ok.contains(&"TRT-W8A8"));
        assert!(!ok.contains(&"TRT-FP16"));
    }
}
