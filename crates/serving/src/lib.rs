//! # lq-serving — LLM serving-system substrate
//!
//! Everything around the GEMM kernel that the paper's system-level
//! evaluation (Table 1, Figures 4, 10, 11) depends on:
//!
//! * [`kvcache`] — a PagedAttention-style paged KV cache allocator
//!   (page tables, free-list, OOM handling) with conservation
//!   invariants.
//! * [`attention`] — decode/prefill attention cost model
//!   (FlashAttention-2-shaped: decode is a KV-bandwidth problem), with
//!   per-system KV precision and the FP8-attention advantage TRT-FP8
//!   enjoys on Hopper.
//! * [`system`] — the seven serving configurations of Table 1
//!   (LiquidServe, LiquidServe/wo, QServe, TRT-FP16/W4A16/W8A8/FP8):
//!   kernel model + KV precision + runtime overheads.
//! * [`decode`] — per-decode-step latency with the paper's three-way
//!   breakdown (GEMM / Attention / Others).
//! * [`request`] — the shared serving API surface: [`Request`]
//!   workloads with [`Priority`] tiers, [`Completion`] records with a
//!   status enum (`Finished` / `TimedOut` / `Rejected`), [`RunStats`],
//!   the validating [`SchedulerConfig::builder`] with
//!   [`AdmissionPolicy`] (SLO-tiered queue shedding) and
//!   [`PreemptionPolicy`] (priority-KV preemption) knobs.
//! * [`scheduler`] — a continuous-batching request scheduler
//!   (Orca-style iteration-level scheduling, conservative admission
//!   against the paged allocator) that *runs* the serving loop against
//!   modelled costs and produces request latencies and sustained
//!   throughput — the *simulation* backend.
//! * [`runtime`] — the *executable* backend of the same API:
//!   [`runtime::ServingRuntime`] drives a real [`runtime::ServingEngine`]
//!   (e.g. `lq_engine::TinyLlm` over the persistent `LiquidGemm` pool)
//!   with batched prefill and iteration-level batched decode, measuring
//!   wall-clock time instead of modelling it.
//! * [`throughput`] — the 80 GB memory budget, feasible-batch search,
//!   and peak-throughput scan that regenerates Table 1.
//!
//! With [`lq_telemetry::enable`] on, the scheduler and allocator export
//! decode-step latency/batch-size histograms, admission/OOM counters,
//! and page-occupancy gauges (see the `telemetry` module).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attention;
pub mod decode;
pub mod kvcache;
pub mod request;
pub mod runtime;
pub mod scheduler;
pub mod system;
mod telemetry;
pub mod throughput;

pub use decode::{decode_step, StepBreakdown};
pub use kvcache::{KvCacheError, PagedKvCache};
pub use request::{
    AdmissionPolicy, Completion, CompletionStatus, PreemptionPolicy, Priority, Request, RunStats,
    SchedulerConfig, SchedulerConfigError,
};
pub use runtime::{
    DrainedRun, PromptRequest, ServingConfigError, ServingEngine, ServingRuntime,
    ServingRuntimeBuilder,
};
pub use scheduler::run_schedule;
pub use system::{ServingSystem, SystemId};
pub use throughput::{max_feasible_batch, peak_throughput, PeakResult};
