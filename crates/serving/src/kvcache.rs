//! PagedAttention-style KV cache allocator (paper, Section 6; vLLM's
//! memory manager).
//!
//! KV memory is carved into fixed-size pages of `page_tokens` tokens
//! each; a sequence owns a page table of physical page ids and grows it
//! one page at a time as tokens append. Pages return to the free list
//! when a sequence finishes. The allocator is the mechanism that lets
//! 4-bit-weight systems trade weight memory for batch size in Table 1.

use std::collections::HashMap;
use std::sync::Arc;

use lq_chaos::FaultInjector;

use crate::telemetry::kv as kv_metrics;

/// Errors from the paged allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvCacheError {
    /// No free pages remain.
    OutOfMemory,
    /// The sequence id is not registered.
    UnknownSequence,
    /// The sequence id is already registered.
    DuplicateSequence,
}

/// Sequence identifier.
pub type SeqId = u64;

/// A paged KV cache over a fixed physical page pool.
#[derive(Debug)]
pub struct PagedKvCache {
    page_tokens: usize,
    bytes_per_token: usize,
    free: Vec<u32>,
    total_pages: usize,
    tables: HashMap<SeqId, SeqState>,
    /// Chaos hook: scheduled allocation denials (`None` in production
    /// — one branch per allocation).
    fault: Option<Arc<FaultInjector>>,
}

#[derive(Debug)]
struct SeqState {
    pages: Vec<u32>,
    tokens: usize,
}

impl PagedKvCache {
    /// Build a cache over `budget_bytes` of KV memory with pages of
    /// `page_tokens` tokens, each token costing `bytes_per_token`.
    #[must_use]
    pub fn new(budget_bytes: u64, page_tokens: usize, bytes_per_token: usize) -> Self {
        assert!(page_tokens > 0 && bytes_per_token > 0);
        let page_bytes = (page_tokens * bytes_per_token) as u64;
        let total_pages = usize::try_from(budget_bytes / page_bytes).expect("page count fits");
        Self {
            page_tokens,
            bytes_per_token,
            free: (0..total_pages as u32).rev().collect(),
            total_pages,
            tables: HashMap::new(),
            fault: None,
        }
    }

    /// Install a [`FaultInjector`] whose KV-alloc site can deny page
    /// allocations (reported as [`KvCacheError::OutOfMemory`], exactly
    /// like real exhaustion — callers must already handle it).
    pub fn set_fault_injector(&mut self, inj: Arc<FaultInjector>) {
        self.fault = Some(inj);
    }

    /// Consult the chaos hook for one allocation attempt.
    fn alloc_denied(&self) -> bool {
        self.fault.as_ref().is_some_and(|f| f.on_kv_alloc())
    }

    /// Total physical pages.
    #[must_use]
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Currently free pages.
    #[must_use]
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Live sequences.
    #[must_use]
    pub fn live_sequences(&self) -> usize {
        self.tables.len()
    }

    /// Pages needed for `tokens` tokens.
    #[must_use]
    pub fn pages_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.page_tokens)
    }

    /// Would a reservation of `tokens` tokens succeed right now? The
    /// admission-control predicate used by both serving backends.
    #[must_use]
    pub fn can_reserve(&self, tokens: usize) -> bool {
        self.pages_for(tokens.max(1)) <= self.free.len()
    }

    /// Register a new sequence with `prompt_tokens` already present
    /// (prefill). Allocates all pages up front; on OOM nothing is
    /// allocated.
    pub fn add_sequence(&mut self, id: SeqId, prompt_tokens: usize) -> Result<(), KvCacheError> {
        if self.tables.contains_key(&id) {
            return Err(KvCacheError::DuplicateSequence);
        }
        let need = self.pages_for(prompt_tokens.max(1));
        if need > self.free.len() || self.alloc_denied() {
            if let Some(m) = kv_metrics() {
                m.oom.inc();
            }
            return Err(KvCacheError::OutOfMemory);
        }
        let pages = self.free.split_off(self.free.len() - need);
        self.tables.insert(
            id,
            SeqState {
                pages,
                tokens: prompt_tokens,
            },
        );
        if let Some(m) = kv_metrics() {
            m.alloc.add(need as u64);
        }
        self.publish_gauges();
        Ok(())
    }

    /// Append one generated token to a sequence, allocating a page at
    /// boundaries. On OOM the sequence is left unchanged.
    pub fn append_token(&mut self, id: SeqId) -> Result<(), KvCacheError> {
        let needs_page = {
            let st = self.tables.get(&id).ok_or(KvCacheError::UnknownSequence)?;
            st.tokens + 1 > st.pages.len() * self.page_tokens
        };
        if needs_page {
            if self.alloc_denied() {
                if let Some(m) = kv_metrics() {
                    m.oom.inc();
                }
                return Err(KvCacheError::OutOfMemory);
            }
            let Some(page) = self.free.pop() else {
                if let Some(m) = kv_metrics() {
                    m.oom.inc();
                }
                return Err(KvCacheError::OutOfMemory);
            };
            self.tables
                .get_mut(&id)
                .expect("checked above")
                .pages
                .push(page);
            if let Some(m) = kv_metrics() {
                m.alloc.inc();
            }
            self.publish_gauges();
        }
        self.tables.get_mut(&id).expect("checked above").tokens += 1;
        Ok(())
    }

    /// Finish a sequence and reclaim its pages.
    pub fn free_sequence(&mut self, id: SeqId) -> Result<(), KvCacheError> {
        let st = self
            .tables
            .remove(&id)
            .ok_or(KvCacheError::UnknownSequence)?;
        if let Some(m) = kv_metrics() {
            m.freed.add(st.pages.len() as u64);
        }
        self.free.extend(st.pages);
        self.publish_gauges();
        Ok(())
    }

    /// Token count of a sequence.
    pub fn tokens_of(&self, id: SeqId) -> Result<usize, KvCacheError> {
        Ok(self
            .tables
            .get(&id)
            .ok_or(KvCacheError::UnknownSequence)?
            .tokens)
    }

    /// Physical page table of a sequence (for attention gather).
    pub fn page_table(&self, id: SeqId) -> Result<&[u32], KvCacheError> {
        Ok(&self
            .tables
            .get(&id)
            .ok_or(KvCacheError::UnknownSequence)?
            .pages)
    }

    /// Bytes currently pinned by live sequences (page-granular).
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        let used_pages = self.total_pages - self.free.len();
        (used_pages * self.page_tokens * self.bytes_per_token) as u64
    }

    /// Internal-fragmentation ratio: allocated-but-unused token slots
    /// over allocated slots.
    #[must_use]
    pub fn fragmentation(&self) -> f64 {
        let allocated: usize = self
            .tables
            .values()
            .map(|s| s.pages.len() * self.page_tokens)
            .sum();
        if allocated == 0 {
            return 0.0;
        }
        let used: usize = self.tables.values().map(|s| s.tokens).sum();
        1.0 - used as f64 / allocated as f64
    }

    /// Push occupancy gauges after any allocation-state change (no-op
    /// when telemetry is disabled).
    fn publish_gauges(&self) {
        if let Some(m) = kv_metrics() {
            m.used_pages
                .set((self.total_pages - self.free.len()) as f64);
            m.live_sequences.set(self.tables.len() as f64);
        }
    }

    /// Check the conservation invariant (free + owned == total, no page
    /// owned twice). Used by tests and debug assertions.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        let mut seen = vec![false; self.total_pages];
        for &p in &self.free {
            if seen[p as usize] {
                return false;
            }
            seen[p as usize] = true;
        }
        for st in self.tables.values() {
            for &p in &st.pages {
                if seen[p as usize] {
                    return false;
                }
                seen[p as usize] = true;
            }
            if st.tokens > st.pages.len() * self.page_tokens {
                return false;
            }
        }
        seen.iter().all(|&b| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(pages: usize) -> PagedKvCache {
        // 16 tokens/page, 4 bytes/token → 64-byte pages.
        PagedKvCache::new((pages * 64) as u64, 16, 4)
    }

    #[test]
    fn construction_sizes_pool() {
        let c = cache(10);
        assert_eq!(c.total_pages(), 10);
        assert_eq!(c.free_pages(), 10);
        assert!(c.check_invariants());
    }

    #[test]
    fn prefill_allocates_ceiling_pages() {
        let mut c = cache(10);
        c.add_sequence(1, 17).unwrap();
        assert_eq!(c.page_table(1).unwrap().len(), 2);
        assert_eq!(c.free_pages(), 8);
        assert!(c.check_invariants());
    }

    #[test]
    fn append_allocates_only_at_boundaries() {
        let mut c = cache(10);
        c.add_sequence(1, 16).unwrap();
        assert_eq!(c.page_table(1).unwrap().len(), 1);
        c.append_token(1).unwrap(); // token 17 → new page
        assert_eq!(c.page_table(1).unwrap().len(), 2);
        for _ in 0..15 {
            c.append_token(1).unwrap(); // fills page 2, no allocation
        }
        assert_eq!(c.page_table(1).unwrap().len(), 2);
        c.append_token(1).unwrap(); // token 33 → page 3
        assert_eq!(c.page_table(1).unwrap().len(), 3);
        assert!(c.check_invariants());
    }

    #[test]
    fn oom_is_clean() {
        let mut c = cache(2);
        c.add_sequence(1, 32).unwrap(); // both pages
        assert_eq!(c.add_sequence(2, 1), Err(KvCacheError::OutOfMemory));
        assert_eq!(c.append_token(1), Err(KvCacheError::OutOfMemory));
        // Sequence 1 unchanged after the failed append.
        assert_eq!(c.tokens_of(1).unwrap(), 32);
        assert!(c.check_invariants());
    }

    #[test]
    fn free_recycles_pages() {
        let mut c = cache(4);
        c.add_sequence(1, 32).unwrap();
        c.add_sequence(2, 32).unwrap();
        assert_eq!(c.free_pages(), 0);
        c.free_sequence(1).unwrap();
        assert_eq!(c.free_pages(), 2);
        // Needs 3 pages with only 2 free → clean OOM ...
        assert_eq!(c.add_sequence(3, 48), Err(KvCacheError::OutOfMemory));
        // ... while a 2-page request succeeds with the recycled pages.
        c.add_sequence(4, 32).unwrap();
        assert_eq!(c.free_pages(), 0);
        assert!(c.check_invariants());
    }

    #[test]
    fn duplicate_and_unknown_ids_error() {
        let mut c = cache(4);
        c.add_sequence(1, 1).unwrap();
        assert_eq!(c.add_sequence(1, 1), Err(KvCacheError::DuplicateSequence));
        assert_eq!(c.append_token(9), Err(KvCacheError::UnknownSequence));
        assert_eq!(c.free_sequence(9), Err(KvCacheError::UnknownSequence));
    }

    #[test]
    fn fragmentation_reflects_partial_pages() {
        let mut c = cache(10);
        c.add_sequence(1, 8).unwrap(); // half a page used
        assert!((c.fragmentation() - 0.5).abs() < 1e-12);
        for _ in 0..8 {
            c.append_token(1).unwrap();
        }
        assert_eq!(c.fragmentation(), 0.0);
    }

    #[test]
    fn used_bytes_tracks_pages() {
        let mut c = cache(10);
        assert_eq!(c.used_bytes(), 0);
        c.add_sequence(1, 20).unwrap(); // 2 pages
        assert_eq!(c.used_bytes(), 128);
    }

    #[test]
    fn churn_preserves_invariants() {
        let mut c = cache(32);
        for round in 0..50u64 {
            let id = round;
            if c.add_sequence(id, (round as usize * 7) % 60 + 1).is_ok() {
                for _ in 0..(round % 20) {
                    let _ = c.append_token(id);
                }
            }
            if round >= 3 {
                let _ = c.free_sequence(round - 3);
            }
            assert!(c.check_invariants(), "round {round}");
        }
    }
}
