//! Attention cost model (FlashAttention-2-shaped).
//!
//! Decode attention is a KV-bandwidth problem: each step reads every
//! cached K/V value once (`batch · ctx · 2 · kv_dim · bytes`), does a
//! small amount of math per byte, and writes one token's worth back.
//! Prefill attention is compute-bound and quadratic in prompt length.
//! Systems differ in KV precision (INT8 / FP8 / 4-bit) and in how well
//! their attention kernels use the hardware — TRT-FP8's Hopper-tuned
//! FP8 attention is the reason it edges out LiquidServe on LLaMA3-8B
//! and Mistral-7B in Table 1.

use lq_models::ModelConfig;
use lq_sim::specs::GpuSpec;

/// KV-cache numeric format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KvPrecision {
    /// 4-bit (QServe).
    Int4,
    /// INT8 per-channel static (LiquidServe, TRT-W8A8).
    Int8,
    /// FP8 (TRT FP16/W4A16/FP8 configs).
    Fp8,
    /// FP16 (unquantized).
    Fp16,
}

impl KvPrecision {
    /// Bytes per stored value.
    #[must_use]
    pub fn bytes(self) -> f64 {
        match self {
            KvPrecision::Int4 => 0.5,
            KvPrecision::Int8 | KvPrecision::Fp8 => 1.0,
            KvPrecision::Fp16 => 2.0,
        }
    }

    /// Extra CUDA-core work per KV element during attention (dequant);
    /// 4-bit caches pay an unpack+dequant akin to the weight path, plus
    /// the per-element addressing of the packed layout inside the
    /// attention inner loop.
    #[must_use]
    pub fn dequant_alpha(self) -> f64 {
        match self {
            KvPrecision::Int4 => 8.0,
            KvPrecision::Int8 | KvPrecision::Fp8 => 0.25,
            KvPrecision::Fp16 => 0.0,
        }
    }
}

/// Attention kernel efficiency parameters for one serving system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionModel {
    /// KV storage format.
    pub kv: KvPrecision,
    /// Fraction of peak HBM bandwidth the decode kernel achieves.
    pub bw_efficiency: f64,
    /// Fraction of peak tensor throughput the prefill kernel achieves.
    pub compute_efficiency: f64,
}

impl AttentionModel {
    /// Decode attention time for one model step: `batch` sequences with
    /// mean context `ctx`, all layers (s).
    #[must_use]
    pub fn decode_time(&self, spec: &GpuSpec, cfg: &ModelConfig, batch: usize, ctx: usize) -> f64 {
        let kv_bytes = cfg.kv_bytes_per_token(self.kv.bytes()); // all layers
        let bytes = batch as f64 * ctx as f64 * kv_bytes;
        let t_mem = bytes / (spec.mem_bw * self.bw_efficiency);
        // Dequant (for low-bit KV) on CUDA cores, overlapping the reads.
        let elems = batch as f64 * ctx as f64 * cfg.kv_bytes_per_token(1.0);
        let t_dq = self.kv.dequant_alpha() * elems / spec.cuda_int;
        // Attention math on tensor cores (small for decode).
        let flops = batch as f64 * cfg.attention_flops_per_token(ctx) * cfg.layers as f64;
        let t_comp = flops / (spec.tc_fp16 * self.compute_efficiency);
        t_mem.max(t_dq).max(t_comp)
    }

    /// Prefill attention time for `batch` prompts of length `len`, all
    /// layers (s) — causal, so half the full quadratic.
    #[must_use]
    pub fn prefill_time(&self, spec: &GpuSpec, cfg: &ModelConfig, batch: usize, len: usize) -> f64 {
        let flops = batch as f64
            * cfg.layers as f64
            * 4.0
            * cfg.heads as f64
            * cfg.head_dim() as f64
            * (len as f64 * len as f64 / 2.0);
        flops / (spec.tc_fp16 * self.compute_efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lq_models::configs::LLAMA2_7B;
    use lq_sim::specs::H800;

    const FA2_INT8: AttentionModel = AttentionModel {
        kv: KvPrecision::Int8,
        bw_efficiency: 0.8,
        compute_efficiency: 0.5,
    };

    #[test]
    fn decode_scales_linearly_with_batch_and_ctx() {
        let a = FA2_INT8.decode_time(&H800, &LLAMA2_7B, 32, 1024);
        let b = FA2_INT8.decode_time(&H800, &LLAMA2_7B, 64, 1024);
        let c = FA2_INT8.decode_time(&H800, &LLAMA2_7B, 32, 2048);
        assert!((b / a - 2.0).abs() < 1e-6);
        assert!((c / a - 2.0).abs() < 1e-6);
    }

    #[test]
    fn decode_magnitude_is_sane() {
        // 194 seqs × 1280 ctx × 256 KB/token ≈ 63.5 GB → ~24 ms at
        // 0.8 × 3.35 TB/s.
        let t = FA2_INT8.decode_time(&H800, &LLAMA2_7B, 194, 1280);
        assert!((0.015..0.035).contains(&t), "t = {t}");
    }

    #[test]
    fn low_bit_kv_halves_bandwidth_but_pays_dequant() {
        let kv4 = AttentionModel {
            kv: KvPrecision::Int4,
            ..FA2_INT8
        };
        let t8 = FA2_INT8.decode_time(&H800, &LLAMA2_7B, 64, 1024);
        let t4 = kv4.decode_time(&H800, &LLAMA2_7B, 64, 1024);
        // 4-bit moves half the bytes...
        assert!(t4 < t8);
        // ...but not a full 2x because of the dequant term.
        assert!(t8 / t4 < 2.0);
    }

    #[test]
    fn fp16_kv_doubles_traffic() {
        let f16 = AttentionModel {
            kv: KvPrecision::Fp16,
            ..FA2_INT8
        };
        let t16 = f16.decode_time(&H800, &LLAMA2_7B, 64, 1024);
        let t8 = FA2_INT8.decode_time(&H800, &LLAMA2_7B, 64, 1024);
        assert!((t16 / t8 - 2.0).abs() < 0.05);
    }

    #[test]
    fn prefill_is_quadratic_in_length() {
        let a = FA2_INT8.prefill_time(&H800, &LLAMA2_7B, 8, 512);
        let b = FA2_INT8.prefill_time(&H800, &LLAMA2_7B, 8, 1024);
        assert!((b / a - 4.0).abs() < 1e-6);
    }

    #[test]
    fn better_bw_efficiency_is_faster() {
        let fast = AttentionModel {
            bw_efficiency: 0.9,
            ..FA2_INT8
        };
        assert!(
            fast.decode_time(&H800, &LLAMA2_7B, 64, 1024)
                < FA2_INT8.decode_time(&H800, &LLAMA2_7B, 64, 1024)
        );
    }
}
