//! Shared request/completion types and the scheduler configuration —
//! one API surface for both scheduler backends.
//!
//! The *simulated* backend ([`crate::scheduler::run_schedule`]) advances
//! modelled time from the cost model; the *executable* backend
//! ([`crate::runtime::ServingRuntime`]) runs real batched GEMMs on the
//! persistent pool and advances measured time. Both consume [`Request`]
//! workloads under a [`SchedulerConfig`] and produce [`RunStats`] of
//! [`Completion`] records, so an experiment written against one backend
//! runs unchanged against the other.

use std::fmt;

/// Priority tier of a request. Tiers order `Low < Normal < High`;
/// the executable scheduler admits strictly by tier (High first) and,
/// under [`PreemptionPolicy::PriorityKv`], a higher-tier request may
/// preempt lower-tier running sequences when its KV reservation does
/// not fit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Best-effort background work: first shed under load.
    Low,
    /// The default tier.
    #[default]
    Normal,
    /// Latency-sensitive (SLO-bearing) traffic: admitted first, never
    /// preempted by the other tiers.
    High,
}

impl Priority {
    /// All tiers, highest first (admission scan order).
    pub const DESCENDING: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Dense index (`Low = 0, Normal = 1, High = 2`) for per-tier
    /// tables.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    /// Stable label (telemetry / bench tables).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Caller-chosen id (unique).
    pub id: u64,
    /// Prompt length (tokens).
    pub prompt_len: usize,
    /// Tokens to generate (≥ 1).
    pub output_len: usize,
    /// Arrival time (seconds).
    pub arrival: f64,
    /// Optional deadline, in seconds *after arrival*. A request that
    /// has not produced its last token within the deadline is evicted
    /// (its KV pages released) and completes as
    /// [`CompletionStatus::TimedOut`]. `None` means no deadline.
    pub deadline: Option<f64>,
    /// Priority tier ([`Priority::Normal`] by default).
    pub priority: Priority,
}

impl Request {
    /// A request with no deadline, at [`Priority::Normal`].
    #[must_use]
    pub fn new(id: u64, prompt_len: usize, output_len: usize, arrival: f64) -> Self {
        assert!(prompt_len >= 1, "empty prompt");
        assert!(output_len >= 1, "must generate at least one token");
        assert!(arrival.is_finite() && arrival >= 0.0, "bad arrival");
        Self {
            id,
            prompt_len,
            output_len,
            arrival,
            deadline: None,
            priority: Priority::Normal,
        }
    }

    /// Attach a deadline (seconds after arrival, finite and positive).
    #[must_use]
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        assert!(deadline.is_finite() && deadline >= 0.0, "bad deadline");
        self.deadline = Some(deadline);
        self
    }

    /// Set the priority tier.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Absolute expiry instant, if a deadline is set.
    #[must_use]
    pub fn expiry(&self) -> Option<f64> {
        self.deadline.map(|d| self.arrival + d)
    }
}

/// How a request left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionStatus {
    /// All `output_len` tokens were produced.
    Finished,
    /// The deadline expired first; any KV pages were released.
    TimedOut,
    /// The bounded queue was full at arrival (or the reservation can
    /// never fit); the request was never admitted. Also the ingest
    /// verdict for malformed requests (non-finite arrival/deadline).
    Rejected,
    /// An unrecoverable engine or allocation error mid-flight: the
    /// request's KV pages were fully released and the rest of the
    /// batch kept running. Only the executable backend produces this.
    Failed,
}

/// Completion record for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Request id.
    pub id: u64,
    /// When the request was admitted (prefill started). For requests
    /// that never ran (`Rejected`, or `TimedOut` while still queued)
    /// this equals `finished_at`.
    pub admitted_at: f64,
    /// When the request left the system (last token, eviction, or
    /// rejection).
    pub finished_at: f64,
    /// Arrival time (copied from the request).
    pub arrival: f64,
    /// Outcome.
    pub status: CompletionStatus,
    /// Tokens actually generated (equals `output_len` iff `Finished`).
    pub generated: u64,
    /// Priority tier (copied from the request).
    pub priority: Priority,
}

impl Completion {
    /// Queueing + service latency (time in system).
    #[must_use]
    pub fn latency(&self) -> f64 {
        self.finished_at - self.arrival
    }

    /// Time spent waiting for admission.
    #[must_use]
    pub fn queue_delay(&self) -> f64 {
        self.admitted_at - self.arrival
    }
}

/// Aggregate results of a scheduling run (either backend).
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Per-request completions, in the order they left the system.
    pub completions: Vec<Completion>,
    /// Total generated tokens.
    pub generated_tokens: u64,
    /// Wall-clock makespan (seconds — modelled or measured, per
    /// backend).
    pub makespan: f64,
    /// Largest concurrent batch observed.
    pub peak_batch: usize,
    /// Decode iterations executed.
    pub decode_steps: u64,
    /// Running sequences preempted (KV released, re-queued). Only the
    /// executable backend under [`PreemptionPolicy::PriorityKv`]
    /// produces a non-zero count.
    pub preemptions: u64,
    /// Tokens discarded by preemption or replica evacuation (work that
    /// was generated, then thrown away; excluded from
    /// `generated_tokens`).
    pub preempted_tokens: u64,
}

impl RunStats {
    /// Empty stats (the accumulator both backends start from).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            completions: Vec::new(),
            generated_tokens: 0,
            makespan: 0.0,
            peak_batch: 0,
            decode_steps: 0,
            preemptions: 0,
            preempted_tokens: 0,
        }
    }

    /// Sustained generation throughput (tokens/s).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.generated_tokens as f64 / self.makespan
        }
    }

    /// Completions with a given status.
    #[must_use]
    pub fn count(&self, status: CompletionStatus) -> usize {
        self.completions
            .iter()
            .filter(|c| c.status == status)
            .count()
    }

    /// Requests that produced all their tokens.
    #[must_use]
    pub fn finished(&self) -> usize {
        self.count(CompletionStatus::Finished)
    }

    /// Requests evicted on deadline expiry.
    #[must_use]
    pub fn timed_out(&self) -> usize {
        self.count(CompletionStatus::TimedOut)
    }

    /// Requests refused at the queue.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.count(CompletionStatus::Rejected)
    }

    /// Requests that died on an engine/allocation error (pages
    /// released, batch kept running).
    #[must_use]
    pub fn failed(&self) -> usize {
        self.count(CompletionStatus::Failed)
    }

    /// Tokens that reached their caller per second of makespan —
    /// `generated_tokens` already excludes preempted/evacuated work,
    /// so this is the overload-bench goodput metric.
    #[must_use]
    pub fn goodput(&self) -> f64 {
        self.throughput()
    }

    fn finished_latencies(&self) -> Vec<f64> {
        self.completions
            .iter()
            .filter(|c| c.status == CompletionStatus::Finished)
            .map(Completion::latency)
            .collect()
    }

    /// p-th percentile latency over *finished* requests of one tier
    /// (0.0 when the tier finished nothing).
    #[must_use]
    pub fn tier_latency_percentile(&self, tier: Priority, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p));
        let mut ls: Vec<f64> = self
            .completions
            .iter()
            .filter(|c| c.status == CompletionStatus::Finished && c.priority == tier)
            .map(Completion::latency)
            .collect();
        if ls.is_empty() {
            return 0.0;
        }
        ls.sort_by(f64::total_cmp);
        let idx = ((p / 100.0) * (ls.len() - 1) as f64).round() as usize;
        ls[idx]
    }

    /// Completions of one tier with a given status.
    #[must_use]
    pub fn tier_count(&self, tier: Priority, status: CompletionStatus) -> usize {
        self.completions
            .iter()
            .filter(|c| c.priority == tier && c.status == status)
            .count()
    }

    /// Mean end-to-end latency over *finished* requests.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        let ls = self.finished_latencies();
        if ls.is_empty() {
            return 0.0;
        }
        ls.iter().sum::<f64>() / ls.len() as f64
    }

    /// p-th percentile latency (p in [0,100]) over *finished* requests.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p));
        let mut ls = self.finished_latencies();
        if ls.is_empty() {
            return 0.0;
        }
        // total_cmp: latencies derive from user-supplied arrival times,
        // and a NaN here must not panic the stats path.
        ls.sort_by(f64::total_cmp);
        let idx = ((p / 100.0) * (ls.len() - 1) as f64).round() as usize;
        ls[idx]
    }
}

/// How arriving requests are admitted to the bounded queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// One queue-occupancy cap (`max_queue`) shared by every tier —
    /// the pre-router behaviour.
    #[default]
    Fcfs,
    /// SLO-aware tiered admission: each tier may occupy at most a
    /// share of `max_queue` (percent, cumulative from the bottom).
    /// Low-priority arrivals are refused once total queue occupancy
    /// reaches `low_share_pct`% of `max_queue`, normal at
    /// `normal_share_pct`%, high only at 100% — so under overload the
    /// queue sheds background work first and always keeps headroom for
    /// SLO-bearing traffic. Requires a bounded `max_queue`.
    SloTiered {
        /// Occupancy ceiling (percent of `max_queue`, 1..=100) above
        /// which `Low` arrivals are rejected.
        low_share_pct: u8,
        /// Occupancy ceiling for `Normal` arrivals; must be
        /// ≥ `low_share_pct`.
        normal_share_pct: u8,
    },
}

/// Whether a higher-priority request may evict running lower-priority
/// sequences when its KV reservation does not fit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PreemptionPolicy {
    /// Conservative admission only (the pre-router behaviour): a
    /// request waits until its full reservation fits.
    #[default]
    Never,
    /// A pending request may preempt strictly-lower-priority running
    /// sequences: victims' KV pages are fully released and the victims
    /// re-queue (front of their tier's queue, original arrival kept)
    /// to restart from prefill later. Executable backend only.
    PriorityKv,
}

/// Scheduler configuration, shared by both backends. Construct via
/// [`SchedulerConfig::builder`] (validated) or [`Default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Hard cap on concurrent sequences.
    pub max_batch: usize,
    /// Tokens per KV page.
    pub page_tokens: usize,
    /// Bounded-queue capacity: a request arriving while this many are
    /// already waiting completes immediately as
    /// [`CompletionStatus::Rejected`]. `usize::MAX` (the default)
    /// disables backpressure.
    pub max_queue: usize,
    /// Queue-admission policy (see [`AdmissionPolicy`]).
    pub admission: AdmissionPolicy,
    /// KV-pressure preemption policy (see [`PreemptionPolicy`]).
    pub preemption: PreemptionPolicy,
    /// Prefill/decode disaggregation knob: cap on prompt tokens
    /// prefilled per admission pass, so one wave of long prefills
    /// cannot stall running decodes for many steps. At least one
    /// admission always proceeds per pass (no livelock). The default
    /// `usize::MAX` disables the cap.
    pub max_prefill_tokens: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            max_batch: 256,
            page_tokens: 16,
            max_queue: usize::MAX,
            admission: AdmissionPolicy::Fcfs,
            preemption: PreemptionPolicy::Never,
            max_prefill_tokens: usize::MAX,
        }
    }
}

impl SchedulerConfig {
    /// Start building a validated configuration.
    #[must_use]
    pub fn builder() -> SchedulerConfigBuilder {
        SchedulerConfigBuilder::default()
    }

    /// Queue-occupancy cap for arrivals of `tier` under the configured
    /// admission policy (floored at 1 so some traffic always fits).
    #[must_use]
    pub fn queue_cap(&self, tier: Priority) -> usize {
        match self.admission {
            AdmissionPolicy::Fcfs => self.max_queue,
            AdmissionPolicy::SloTiered {
                low_share_pct,
                normal_share_pct,
            } => {
                let pct = match tier {
                    Priority::Low => low_share_pct as usize,
                    Priority::Normal => normal_share_pct as usize,
                    Priority::High => 100,
                };
                (self.max_queue * pct / 100).max(1)
            }
        }
    }
}

/// Invalid [`SchedulerConfig`] parameters (mirrors the
/// `ParallelConfig::builder()` / `ConfigError` pattern in `lq-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerConfigError {
    /// `max_batch == 0`: no sequence could ever run.
    ZeroMaxBatch,
    /// `page_tokens == 0`: KV pages would hold no tokens.
    ZeroPageTokens,
    /// `max_queue == 0`: every request would be rejected on arrival.
    ZeroQueueCap,
    /// A `SloTiered` share is outside 1..=100, or
    /// `low_share_pct > normal_share_pct`.
    BadTierShares,
    /// `SloTiered` admission with an unbounded queue: percentage caps
    /// of `usize::MAX` are meaningless; set `max_queue` first.
    TieredNeedsBoundedQueue,
    /// `max_prefill_tokens == 0`: no prompt could ever prefill.
    ZeroPrefillBudget,
}

impl fmt::Display for SchedulerConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerConfigError::ZeroMaxBatch => write!(f, "max_batch must be >= 1"),
            SchedulerConfigError::ZeroPageTokens => write!(f, "page_tokens must be >= 1"),
            SchedulerConfigError::ZeroQueueCap => write!(f, "max_queue must be >= 1"),
            SchedulerConfigError::BadTierShares => write!(
                f,
                "SloTiered shares must satisfy 1 <= low_share_pct <= normal_share_pct <= 100"
            ),
            SchedulerConfigError::TieredNeedsBoundedQueue => write!(
                f,
                "SloTiered admission requires a bounded max_queue (set max_queue first)"
            ),
            SchedulerConfigError::ZeroPrefillBudget => {
                write!(f, "max_prefill_tokens must be >= 1")
            }
        }
    }
}

impl std::error::Error for SchedulerConfigError {}

/// Builder for [`SchedulerConfig`].
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfigBuilder {
    max_batch: usize,
    page_tokens: usize,
    max_queue: usize,
    admission: AdmissionPolicy,
    preemption: PreemptionPolicy,
    max_prefill_tokens: usize,
}

impl Default for SchedulerConfigBuilder {
    fn default() -> Self {
        let d = SchedulerConfig::default();
        Self {
            max_batch: d.max_batch,
            page_tokens: d.page_tokens,
            max_queue: d.max_queue,
            admission: d.admission,
            preemption: d.preemption,
            max_prefill_tokens: d.max_prefill_tokens,
        }
    }
}

impl SchedulerConfigBuilder {
    /// Concurrent-sequence cap (validated ≥ 1).
    #[must_use]
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    /// Tokens per KV page (validated ≥ 1).
    #[must_use]
    pub fn page_tokens(mut self, n: usize) -> Self {
        self.page_tokens = n;
        self
    }

    /// Waiting-queue capacity (validated ≥ 1).
    #[must_use]
    pub fn max_queue(mut self, n: usize) -> Self {
        self.max_queue = n;
        self
    }

    /// Queue-admission policy.
    #[must_use]
    pub fn admission(mut self, p: AdmissionPolicy) -> Self {
        self.admission = p;
        self
    }

    /// KV-pressure preemption policy.
    #[must_use]
    pub fn preemption(mut self, p: PreemptionPolicy) -> Self {
        self.preemption = p;
        self
    }

    /// Prompt-token budget per admission pass (validated ≥ 1).
    #[must_use]
    pub fn max_prefill_tokens(mut self, n: usize) -> Self {
        self.max_prefill_tokens = n;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<SchedulerConfig, SchedulerConfigError> {
        if self.max_batch == 0 {
            return Err(SchedulerConfigError::ZeroMaxBatch);
        }
        if self.page_tokens == 0 {
            return Err(SchedulerConfigError::ZeroPageTokens);
        }
        if self.max_queue == 0 {
            return Err(SchedulerConfigError::ZeroQueueCap);
        }
        if self.max_prefill_tokens == 0 {
            return Err(SchedulerConfigError::ZeroPrefillBudget);
        }
        if let AdmissionPolicy::SloTiered {
            low_share_pct,
            normal_share_pct,
        } = self.admission
        {
            if low_share_pct == 0 || normal_share_pct > 100 || low_share_pct > normal_share_pct {
                return Err(SchedulerConfigError::BadTierShares);
            }
            if self.max_queue == usize::MAX {
                return Err(SchedulerConfigError::TieredNeedsBoundedQueue);
            }
        }
        Ok(SchedulerConfig {
            max_batch: self.max_batch,
            page_tokens: self.page_tokens,
            max_queue: self.max_queue,
            admission: self.admission,
            preemption: self.preemption,
            max_prefill_tokens: self.max_prefill_tokens,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_each_field() {
        assert_eq!(
            SchedulerConfig::builder().max_batch(0).build(),
            Err(SchedulerConfigError::ZeroMaxBatch)
        );
        assert_eq!(
            SchedulerConfig::builder().page_tokens(0).build(),
            Err(SchedulerConfigError::ZeroPageTokens)
        );
        assert_eq!(
            SchedulerConfig::builder().max_queue(0).build(),
            Err(SchedulerConfigError::ZeroQueueCap)
        );
        let ok = SchedulerConfig::builder()
            .max_batch(8)
            .page_tokens(32)
            .max_queue(4)
            .build()
            .unwrap();
        assert_eq!((ok.max_batch, ok.page_tokens, ok.max_queue), (8, 32, 4));
    }

    #[test]
    fn builder_errors_display() {
        assert!(SchedulerConfigError::ZeroMaxBatch
            .to_string()
            .contains("max_batch"));
        assert!(SchedulerConfigError::ZeroQueueCap
            .to_string()
            .contains("max_queue"));
    }

    #[test]
    fn request_deadline_and_expiry() {
        let r = Request::new(1, 16, 8, 2.0);
        assert_eq!(r.expiry(), None);
        let r = r.with_deadline(3.0);
        assert_eq!(r.expiry(), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_output_rejected() {
        let _ = Request::new(1, 16, 0, 0.0);
    }

    #[test]
    fn stats_count_by_status() {
        let mk = |status, latency: f64, priority| Completion {
            id: 0,
            admitted_at: 0.0,
            finished_at: latency,
            arrival: 0.0,
            status,
            generated: 0,
            priority,
        };
        let stats = RunStats {
            completions: vec![
                mk(CompletionStatus::Finished, 1.0, Priority::High),
                mk(CompletionStatus::Finished, 3.0, Priority::Low),
                mk(CompletionStatus::TimedOut, 9.0, Priority::Normal),
                mk(CompletionStatus::Rejected, 0.0, Priority::Low),
            ],
            generated_tokens: 10,
            makespan: 5.0,
            peak_batch: 2,
            decode_steps: 4,
            preemptions: 0,
            preempted_tokens: 0,
        };
        assert_eq!(stats.finished(), 2);
        assert_eq!(stats.timed_out(), 1);
        assert_eq!(stats.rejected(), 1);
        // Latency stats consider finished requests only.
        assert!((stats.mean_latency() - 2.0).abs() < 1e-12);
        assert_eq!(stats.latency_percentile(100.0), 3.0);
        assert_eq!(stats.throughput(), 2.0);
        assert_eq!(stats.goodput(), 2.0);
        // Per-tier views.
        assert_eq!(stats.tier_latency_percentile(Priority::High, 99.0), 1.0);
        assert_eq!(stats.tier_latency_percentile(Priority::Low, 99.0), 3.0);
        assert_eq!(stats.tier_latency_percentile(Priority::Normal, 99.0), 0.0);
        assert_eq!(
            stats.tier_count(Priority::Low, CompletionStatus::Rejected),
            1
        );
    }

    #[test]
    fn priority_ordering_and_labels() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::DESCENDING[0], Priority::High);
        assert_eq!(Priority::High.label(), "high");
        assert_eq!(Priority::Low.index(), 0);
        assert_eq!(Priority::High.to_string(), "high");
        let r = Request::new(7, 4, 4, 0.0).with_priority(Priority::High);
        assert_eq!(r.priority, Priority::High);
        assert_eq!(Request::new(8, 4, 4, 0.0).priority, Priority::Normal);
    }

    #[test]
    fn tiered_admission_validation() {
        // Shares must be ordered and in range.
        let bad = SchedulerConfig::builder()
            .max_queue(10)
            .admission(AdmissionPolicy::SloTiered {
                low_share_pct: 80,
                normal_share_pct: 40,
            })
            .build();
        assert_eq!(bad, Err(SchedulerConfigError::BadTierShares));
        let bad = SchedulerConfig::builder()
            .max_queue(10)
            .admission(AdmissionPolicy::SloTiered {
                low_share_pct: 0,
                normal_share_pct: 40,
            })
            .build();
        assert_eq!(bad, Err(SchedulerConfigError::BadTierShares));
        // Unbounded queue is rejected under tiered admission.
        let bad = SchedulerConfig::builder()
            .admission(AdmissionPolicy::SloTiered {
                low_share_pct: 30,
                normal_share_pct: 70,
            })
            .build();
        assert_eq!(bad, Err(SchedulerConfigError::TieredNeedsBoundedQueue));
        assert_eq!(
            SchedulerConfig::builder().max_prefill_tokens(0).build(),
            Err(SchedulerConfigError::ZeroPrefillBudget)
        );
        // Valid tiered config: per-tier caps are monotone in priority.
        let cfg = SchedulerConfig::builder()
            .max_queue(10)
            .admission(AdmissionPolicy::SloTiered {
                low_share_pct: 30,
                normal_share_pct: 70,
            })
            .preemption(PreemptionPolicy::PriorityKv)
            .build()
            .unwrap();
        assert_eq!(cfg.queue_cap(Priority::Low), 3);
        assert_eq!(cfg.queue_cap(Priority::Normal), 7);
        assert_eq!(cfg.queue_cap(Priority::High), 10);
        // Tiny queues floor the cap at 1 (some low traffic always fits).
        let tiny = SchedulerConfig::builder()
            .max_queue(2)
            .admission(AdmissionPolicy::SloTiered {
                low_share_pct: 10,
                normal_share_pct: 50,
            })
            .build()
            .unwrap();
        assert_eq!(tiny.queue_cap(Priority::Low), 1);
        // FCFS keeps the single shared cap.
        let fcfs = SchedulerConfig::default();
        assert_eq!(fcfs.queue_cap(Priority::Low), usize::MAX);
    }
}
