//! Shared request/completion types and the scheduler configuration —
//! one API surface for both scheduler backends.
//!
//! The *simulated* backend ([`crate::scheduler::run_schedule`]) advances
//! modelled time from the cost model; the *executable* backend
//! ([`crate::runtime::ServingRuntime`]) runs real batched GEMMs on the
//! persistent pool and advances measured time. Both consume [`Request`]
//! workloads under a [`SchedulerConfig`] and produce [`RunStats`] of
//! [`Completion`] records, so an experiment written against one backend
//! runs unchanged against the other.

use std::fmt;

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Caller-chosen id (unique).
    pub id: u64,
    /// Prompt length (tokens).
    pub prompt_len: usize,
    /// Tokens to generate (≥ 1).
    pub output_len: usize,
    /// Arrival time (seconds).
    pub arrival: f64,
    /// Optional deadline, in seconds *after arrival*. A request that
    /// has not produced its last token within the deadline is evicted
    /// (its KV pages released) and completes as
    /// [`CompletionStatus::TimedOut`]. `None` means no deadline.
    pub deadline: Option<f64>,
}

impl Request {
    /// A request with no deadline.
    #[must_use]
    pub fn new(id: u64, prompt_len: usize, output_len: usize, arrival: f64) -> Self {
        assert!(prompt_len >= 1, "empty prompt");
        assert!(output_len >= 1, "must generate at least one token");
        assert!(arrival.is_finite() && arrival >= 0.0, "bad arrival");
        Self {
            id,
            prompt_len,
            output_len,
            arrival,
            deadline: None,
        }
    }

    /// Attach a deadline (seconds after arrival, finite and positive).
    #[must_use]
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        assert!(deadline.is_finite() && deadline >= 0.0, "bad deadline");
        self.deadline = Some(deadline);
        self
    }

    /// Absolute expiry instant, if a deadline is set.
    #[must_use]
    pub fn expiry(&self) -> Option<f64> {
        self.deadline.map(|d| self.arrival + d)
    }
}

/// How a request left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionStatus {
    /// All `output_len` tokens were produced.
    Finished,
    /// The deadline expired first; any KV pages were released.
    TimedOut,
    /// The bounded queue was full at arrival (or the reservation can
    /// never fit); the request was never admitted. Also the ingest
    /// verdict for malformed requests (non-finite arrival/deadline).
    Rejected,
    /// An unrecoverable engine or allocation error mid-flight: the
    /// request's KV pages were fully released and the rest of the
    /// batch kept running. Only the executable backend produces this.
    Failed,
}

/// Completion record for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Request id.
    pub id: u64,
    /// When the request was admitted (prefill started). For requests
    /// that never ran (`Rejected`, or `TimedOut` while still queued)
    /// this equals `finished_at`.
    pub admitted_at: f64,
    /// When the request left the system (last token, eviction, or
    /// rejection).
    pub finished_at: f64,
    /// Arrival time (copied from the request).
    pub arrival: f64,
    /// Outcome.
    pub status: CompletionStatus,
    /// Tokens actually generated (equals `output_len` iff `Finished`).
    pub generated: u64,
}

impl Completion {
    /// Queueing + service latency (time in system).
    #[must_use]
    pub fn latency(&self) -> f64 {
        self.finished_at - self.arrival
    }

    /// Time spent waiting for admission.
    #[must_use]
    pub fn queue_delay(&self) -> f64 {
        self.admitted_at - self.arrival
    }
}

/// Aggregate results of a scheduling run (either backend).
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Per-request completions, in the order they left the system.
    pub completions: Vec<Completion>,
    /// Total generated tokens.
    pub generated_tokens: u64,
    /// Wall-clock makespan (seconds — modelled or measured, per
    /// backend).
    pub makespan: f64,
    /// Largest concurrent batch observed.
    pub peak_batch: usize,
    /// Decode iterations executed.
    pub decode_steps: u64,
}

impl RunStats {
    /// Empty stats (the accumulator both backends start from).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            completions: Vec::new(),
            generated_tokens: 0,
            makespan: 0.0,
            peak_batch: 0,
            decode_steps: 0,
        }
    }

    /// Sustained generation throughput (tokens/s).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.generated_tokens as f64 / self.makespan
        }
    }

    /// Completions with a given status.
    #[must_use]
    pub fn count(&self, status: CompletionStatus) -> usize {
        self.completions
            .iter()
            .filter(|c| c.status == status)
            .count()
    }

    /// Requests that produced all their tokens.
    #[must_use]
    pub fn finished(&self) -> usize {
        self.count(CompletionStatus::Finished)
    }

    /// Requests evicted on deadline expiry.
    #[must_use]
    pub fn timed_out(&self) -> usize {
        self.count(CompletionStatus::TimedOut)
    }

    /// Requests refused at the queue.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.count(CompletionStatus::Rejected)
    }

    /// Requests that died on an engine/allocation error (pages
    /// released, batch kept running).
    #[must_use]
    pub fn failed(&self) -> usize {
        self.count(CompletionStatus::Failed)
    }

    fn finished_latencies(&self) -> Vec<f64> {
        self.completions
            .iter()
            .filter(|c| c.status == CompletionStatus::Finished)
            .map(Completion::latency)
            .collect()
    }

    /// Mean end-to-end latency over *finished* requests.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        let ls = self.finished_latencies();
        if ls.is_empty() {
            return 0.0;
        }
        ls.iter().sum::<f64>() / ls.len() as f64
    }

    /// p-th percentile latency (p in [0,100]) over *finished* requests.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p));
        let mut ls = self.finished_latencies();
        if ls.is_empty() {
            return 0.0;
        }
        // total_cmp: latencies derive from user-supplied arrival times,
        // and a NaN here must not panic the stats path.
        ls.sort_by(f64::total_cmp);
        let idx = ((p / 100.0) * (ls.len() - 1) as f64).round() as usize;
        ls[idx]
    }
}

/// Scheduler configuration, shared by both backends. Construct via
/// [`SchedulerConfig::builder`] (validated) or [`Default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Hard cap on concurrent sequences.
    pub max_batch: usize,
    /// Tokens per KV page.
    pub page_tokens: usize,
    /// Bounded-queue capacity: a request arriving while this many are
    /// already waiting completes immediately as
    /// [`CompletionStatus::Rejected`]. `usize::MAX` (the default)
    /// disables backpressure.
    pub max_queue: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            max_batch: 256,
            page_tokens: 16,
            max_queue: usize::MAX,
        }
    }
}

impl SchedulerConfig {
    /// Start building a validated configuration.
    #[must_use]
    pub fn builder() -> SchedulerConfigBuilder {
        SchedulerConfigBuilder::default()
    }
}

/// Invalid [`SchedulerConfig`] parameters (mirrors the
/// `ParallelConfig::builder()` / `ConfigError` pattern in `lq-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerConfigError {
    /// `max_batch == 0`: no sequence could ever run.
    ZeroMaxBatch,
    /// `page_tokens == 0`: KV pages would hold no tokens.
    ZeroPageTokens,
    /// `max_queue == 0`: every request would be rejected on arrival.
    ZeroQueueCap,
}

impl fmt::Display for SchedulerConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerConfigError::ZeroMaxBatch => write!(f, "max_batch must be >= 1"),
            SchedulerConfigError::ZeroPageTokens => write!(f, "page_tokens must be >= 1"),
            SchedulerConfigError::ZeroQueueCap => write!(f, "max_queue must be >= 1"),
        }
    }
}

impl std::error::Error for SchedulerConfigError {}

/// Builder for [`SchedulerConfig`].
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfigBuilder {
    max_batch: usize,
    page_tokens: usize,
    max_queue: usize,
}

impl Default for SchedulerConfigBuilder {
    fn default() -> Self {
        let d = SchedulerConfig::default();
        Self {
            max_batch: d.max_batch,
            page_tokens: d.page_tokens,
            max_queue: d.max_queue,
        }
    }
}

impl SchedulerConfigBuilder {
    /// Concurrent-sequence cap (validated ≥ 1).
    #[must_use]
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    /// Tokens per KV page (validated ≥ 1).
    #[must_use]
    pub fn page_tokens(mut self, n: usize) -> Self {
        self.page_tokens = n;
        self
    }

    /// Waiting-queue capacity (validated ≥ 1).
    #[must_use]
    pub fn max_queue(mut self, n: usize) -> Self {
        self.max_queue = n;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<SchedulerConfig, SchedulerConfigError> {
        if self.max_batch == 0 {
            return Err(SchedulerConfigError::ZeroMaxBatch);
        }
        if self.page_tokens == 0 {
            return Err(SchedulerConfigError::ZeroPageTokens);
        }
        if self.max_queue == 0 {
            return Err(SchedulerConfigError::ZeroQueueCap);
        }
        Ok(SchedulerConfig {
            max_batch: self.max_batch,
            page_tokens: self.page_tokens,
            max_queue: self.max_queue,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_each_field() {
        assert_eq!(
            SchedulerConfig::builder().max_batch(0).build(),
            Err(SchedulerConfigError::ZeroMaxBatch)
        );
        assert_eq!(
            SchedulerConfig::builder().page_tokens(0).build(),
            Err(SchedulerConfigError::ZeroPageTokens)
        );
        assert_eq!(
            SchedulerConfig::builder().max_queue(0).build(),
            Err(SchedulerConfigError::ZeroQueueCap)
        );
        let ok = SchedulerConfig::builder()
            .max_batch(8)
            .page_tokens(32)
            .max_queue(4)
            .build()
            .unwrap();
        assert_eq!((ok.max_batch, ok.page_tokens, ok.max_queue), (8, 32, 4));
    }

    #[test]
    fn builder_errors_display() {
        assert!(SchedulerConfigError::ZeroMaxBatch
            .to_string()
            .contains("max_batch"));
        assert!(SchedulerConfigError::ZeroQueueCap
            .to_string()
            .contains("max_queue"));
    }

    #[test]
    fn request_deadline_and_expiry() {
        let r = Request::new(1, 16, 8, 2.0);
        assert_eq!(r.expiry(), None);
        let r = r.with_deadline(3.0);
        assert_eq!(r.expiry(), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_output_rejected() {
        let _ = Request::new(1, 16, 0, 0.0);
    }

    #[test]
    fn stats_count_by_status() {
        let mk = |status, latency: f64| Completion {
            id: 0,
            admitted_at: 0.0,
            finished_at: latency,
            arrival: 0.0,
            status,
            generated: 0,
        };
        let stats = RunStats {
            completions: vec![
                mk(CompletionStatus::Finished, 1.0),
                mk(CompletionStatus::Finished, 3.0),
                mk(CompletionStatus::TimedOut, 9.0),
                mk(CompletionStatus::Rejected, 0.0),
            ],
            generated_tokens: 10,
            makespan: 5.0,
            peak_batch: 2,
            decode_steps: 4,
        };
        assert_eq!(stats.finished(), 2);
        assert_eq!(stats.timed_out(), 1);
        assert_eq!(stats.rejected(), 1);
        // Latency stats consider finished requests only.
        assert!((stats.mean_latency() - 2.0).abs() < 1e-12);
        assert_eq!(stats.latency_percentile(100.0), 3.0);
        assert_eq!(stats.throughput(), 2.0);
    }
}
