//! Per-step decode latency with the paper's GEMM / Attention / Others
//! breakdown (Figures 4 and 10).

use crate::system::ServingSystem;
use lq_models::{decode_layer_shapes, ModelConfig};
use lq_sim::cost_model::GemmShape;
use lq_sim::specs::GpuSpec;

/// One decode step's time, split the way Figure 10 plots it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepBreakdown {
    /// FFN + projection GEMMs (all layers), seconds.
    pub gemm: f64,
    /// Attention (all layers), seconds.
    pub attention: f64,
    /// Everything else: norms, sampling, LM head, runtime, seconds.
    pub others: f64,
}

impl StepBreakdown {
    /// Total step latency.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.gemm + self.attention + self.others
    }

    /// GEMM's share of the step.
    #[must_use]
    pub fn gemm_share(&self) -> f64 {
        self.gemm / self.total()
    }
}

/// GEMM time of one decode step (all layers).
#[must_use]
pub fn step_gemm_time(sys: &ServingSystem, spec: &GpuSpec, cfg: &ModelConfig, batch: usize) -> f64 {
    let shapes = decode_layer_shapes(cfg, batch);
    let mut per_layer = sys.kernel.layer_latency(spec, &shapes.dense);
    if let Some((grouped, experts)) = &shapes.grouped {
        for &g in grouped {
            per_layer += sys.kernel.grouped_latency(spec, g, *experts);
        }
    }
    per_layer * cfg.layers as f64
}

/// Full decode-step breakdown at batch `batch`, mean context `ctx`.
#[must_use]
pub fn decode_step(
    sys: &ServingSystem,
    spec: &GpuSpec,
    cfg: &ModelConfig,
    batch: usize,
    ctx: usize,
) -> StepBreakdown {
    let gemm = step_gemm_time(sys, spec, cfg, batch);
    let attention = sys.attention.decode_time(spec, cfg, batch, ctx);
    // LM head: one `batch × vocab × hidden` GEMM, charged to "others"
    // (the paper's GEMM category covers FFN and projection layers).
    let lm_head = sys.kernel.latency(
        spec,
        GemmShape {
            m: batch,
            n: cfg.vocab,
            k: cfg.hidden,
        },
    );
    let others = cfg.layers as f64 * sys.other_per_layer
        + batch as f64 * sys.other_per_seq
        + sys.runtime_quadratic * (batch * batch) as f64
        + lm_head;
    StepBreakdown {
        gemm,
        attention,
        others,
    }
}

/// Prefill latency for `batch` prompts of `prompt_len` tokens.
#[must_use]
pub fn prefill_time(
    sys: &ServingSystem,
    spec: &GpuSpec,
    cfg: &ModelConfig,
    batch: usize,
    prompt_len: usize,
) -> f64 {
    // All prompt tokens flow through the same GEMMs as one big batch.
    let gemm = step_gemm_time(sys, spec, cfg, batch * prompt_len);
    let attn = sys.attention.prefill_time(spec, cfg, batch, prompt_len);
    gemm + attn + cfg.layers as f64 * sys.other_per_layer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemId;
    use lq_models::configs::{LLAMA2_70B, LLAMA2_7B, MIXTRAL_8X7B};
    use lq_sim::specs::H800;

    fn sys(id: SystemId) -> ServingSystem {
        ServingSystem::of(id)
    }

    #[test]
    fn step_total_matches_parts() {
        let b = decode_step(&sys(SystemId::LiquidServe), &H800, &LLAMA2_7B, 64, 1024);
        assert!((b.total() - (b.gemm + b.attention + b.others)).abs() < 1e-15);
        assert!(b.gemm_share() > 0.0 && b.gemm_share() < 1.0);
    }

    #[test]
    fn liquidserve_7b_step_time_magnitude() {
        // Batch 194, ctx ~1280 (the Table-1 peak point): ≈ 25–35 ms,
        // dominated by KV reads.
        let b = decode_step(&sys(SystemId::LiquidServe), &H800, &LLAMA2_7B, 194, 1280);
        assert!((0.015..0.045).contains(&b.total()), "{:?}", b);
        assert!(b.attention > b.gemm);
    }

    #[test]
    fn gemm_dominates_at_small_batch() {
        // Figure 4: GEMM dominates at small batch sizes (short context).
        let b = decode_step(&sys(SystemId::LiquidServe), &H800, &LLAMA2_7B, 4, 128);
        assert!(b.gemm_share() > 0.4, "share {}", b.gemm_share());
    }

    #[test]
    fn liquid_gemm_beats_qserve_gemm_in_system() {
        let lg = step_gemm_time(&sys(SystemId::LiquidServe), &H800, &LLAMA2_7B, 256);
        let qs = step_gemm_time(&sys(SystemId::LiquidServeWo), &H800, &LLAMA2_7B, 256);
        assert!(qs / lg > 1.8, "ratio {}", qs / lg);
    }

    #[test]
    fn moe_gemm_is_heavier_than_dense() {
        // Mixtral runs each expert's FFN — more GEMM work per token.
        let dense = step_gemm_time(&sys(SystemId::LiquidServe), &H800, &LLAMA2_7B, 64);
        let moe = step_gemm_time(&sys(SystemId::LiquidServe), &H800, &MIXTRAL_8X7B, 64);
        assert!(moe > 2.0 * dense, "moe {moe} dense {dense}");
    }

    #[test]
    fn gqa_makes_70b_attention_cheaper_per_param() {
        let a7 = decode_step(&sys(SystemId::LiquidServe), &H800, &LLAMA2_7B, 64, 1024);
        let a70 = decode_step(&sys(SystemId::LiquidServe), &H800, &LLAMA2_70B, 64, 1024);
        // 70B has 10x params but GQA keeps attention within ~2x of 7B.
        assert!(a70.attention / a7.attention < 2.0);
    }

    #[test]
    fn prefill_scales_with_prompt_length() {
        let s = sys(SystemId::LiquidServe);
        let a = prefill_time(&s, &H800, &LLAMA2_7B, 8, 256);
        let b = prefill_time(&s, &H800, &LLAMA2_7B, 8, 1024);
        assert!(b > 3.0 * a);
    }

    #[test]
    fn qserve_quadratic_term_grows_others() {
        let q64 = decode_step(&sys(SystemId::QServe), &H800, &LLAMA2_7B, 64, 1024);
        let q256 = decode_step(&sys(SystemId::QServe), &H800, &LLAMA2_7B, 256, 1024);
        let l64 = decode_step(&sys(SystemId::LiquidServe), &H800, &LLAMA2_7B, 64, 1024);
        let l256 = decode_step(&sys(SystemId::LiquidServe), &H800, &LLAMA2_7B, 256, 1024);
        // QServe's "others" grows superlinearly; LiquidServe's roughly
        // linearly.
        let q_growth = q256.others / q64.others;
        let l_growth = l256.others / l64.others;
        assert!(q_growth > l_growth, "{q_growth} vs {l_growth}");
    }
}
