//! The serving-system configurations of Table 1.
//!
//! A serving system = a GEMM kernel model + an attention model (KV
//! precision, kernel efficiency) + runtime overheads + model-support
//! limits. `LiquidServe/wo` is LiquidServe with QServe's W4A8 kernel
//! swapped in — the paper's control for isolating the GEMM contribution.

use crate::attention::{AttentionModel, KvPrecision};
use lq_models::ModelConfig;
use lq_sim::kernel_model::{KernelModel, SystemKind};

/// Identifier for one Table-1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemId {
    /// TensorRT-LLM, FP16 weights.
    TrtFp16,
    /// TensorRT-LLM, W4A16.
    TrtW4A16,
    /// TensorRT-LLM, W8A8.
    TrtW8A8,
    /// TensorRT-LLM, FP8.
    TrtFp8,
    /// QServe (their full stack: W4A8 GEMM + KV4).
    QServe,
    /// LiquidServe with QServe's GEMM kernel (ablation control).
    LiquidServeWo,
    /// The paper's full system.
    LiquidServe,
}

impl SystemId {
    /// All systems in Table 1's row order.
    pub const ALL: [SystemId; 7] = [
        SystemId::TrtFp16,
        SystemId::TrtW4A16,
        SystemId::TrtW8A8,
        SystemId::TrtFp8,
        SystemId::QServe,
        SystemId::LiquidServeWo,
        SystemId::LiquidServe,
    ];
}

/// A fully parameterised serving system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingSystem {
    /// Which row this is.
    pub id: SystemId,
    /// Display name.
    pub name: &'static str,
    /// GEMM kernel latency model.
    pub kernel: KernelModel,
    /// Attention kernel model.
    pub attention: AttentionModel,
    /// Weight storage bits per parameter (including scale overheads).
    pub weight_bits: f64,
    /// Fixed per-layer per-step overhead: layernorms, residuals,
    /// activation quantization, router (s).
    pub other_per_layer: f64,
    /// Per-sequence per-step runtime overhead: sampling, detokenise,
    /// batch bookkeeping (s).
    pub other_per_seq: f64,
    /// Quadratic runtime term `c · batch²` per step (s) — models the
    /// scheduler/dequant bookkeeping that stops QServe from scaling
    /// past batch ≈ 64–128.
    pub runtime_quadratic: f64,
}

impl ServingSystem {
    /// Build the calibrated configuration for a system.
    #[must_use]
    pub fn of(id: SystemId) -> Self {
        let fa2_int8 = AttentionModel {
            kv: KvPrecision::Int8,
            bw_efficiency: 0.80,
            compute_efficiency: 0.5,
        };
        let fa2_fp8 = AttentionModel {
            kv: KvPrecision::Fp8,
            bw_efficiency: 0.80,
            compute_efficiency: 0.5,
        };
        match id {
            SystemId::TrtFp16 => Self {
                id,
                name: "TRT-FP16",
                kernel: KernelModel::of(SystemKind::TrtFp16),
                attention: fa2_fp8,
                weight_bits: 16.0,
                other_per_layer: 12.0e-6,
                other_per_seq: 6.0e-6,
                runtime_quadratic: 0.0,
            },
            SystemId::TrtW4A16 => Self {
                id,
                name: "TRT-W4A16",
                kernel: KernelModel::of(SystemKind::TrtW4A16),
                attention: fa2_fp8,
                weight_bits: 4.5,
                other_per_layer: 12.0e-6,
                other_per_seq: 6.0e-6,
                runtime_quadratic: 0.0,
            },
            SystemId::TrtW8A8 => Self {
                id,
                name: "TRT-W8A8",
                kernel: KernelModel::of(SystemKind::TrtW8A8),
                attention: fa2_int8,
                weight_bits: 8.25,
                other_per_layer: 13.0e-6, // + activation quant
                other_per_seq: 6.0e-6,
                runtime_quadratic: 0.0,
            },
            SystemId::TrtFp8 => Self {
                id,
                name: "TRT-FP8",
                kernel: KernelModel::of(SystemKind::TrtFp8),
                // Hopper-native FP8 attention kernels: the edge the
                // paper concedes on LLaMA3-8B / Mistral-7B.
                attention: AttentionModel {
                    bw_efficiency: 0.92,
                    ..fa2_fp8
                },
                weight_bits: 8.25,
                other_per_layer: 11.0e-6,
                other_per_seq: 6.0e-6,
                runtime_quadratic: 0.0,
            },
            SystemId::QServe => Self {
                id,
                name: "QServe",
                kernel: KernelModel::of(SystemKind::QServe),
                // QServe's attention kernels are tuned for Ampere and
                // must dequantize KV4 in the inner loop: on H800 the
                // achieved bandwidth is far below FA2's (the reason the
                // KV4 byte saving does not translate into speed there).
                attention: AttentionModel {
                    kv: KvPrecision::Int4,
                    bw_efficiency: 0.40,
                    compute_efficiency: 0.4,
                },
                weight_bits: 4.5,
                other_per_layer: 18.0e-6,
                other_per_seq: 10.0e-6,
                runtime_quadratic: 1.8e-7,
            },
            SystemId::LiquidServeWo => Self {
                // LiquidServe stack, QServe GEMM kernel.
                kernel: KernelModel::of(SystemKind::QServe),
                id,
                name: "LiquidServe/wo",
                ..Self::of(SystemId::LiquidServe)
            },
            SystemId::LiquidServe => Self {
                id,
                name: "LiquidServe",
                kernel: KernelModel::of(SystemKind::LiquidGemm),
                attention: fa2_int8,
                weight_bits: 4.5,
                other_per_layer: 13.0e-6, // activation quant fused
                other_per_seq: 6.0e-6,
                runtime_quadratic: 0.0,
            },
        }
    }

    /// Whether this system can run the model at all (the Table 1 "NA"
    /// cells): TRT-W8A8 and QServe lack Mixtral support.
    #[must_use]
    pub fn supports(&self, cfg: &ModelConfig) -> bool {
        match self.id {
            SystemId::TrtW8A8 | SystemId::QServe => cfg.moe.is_none(),
            _ => true,
        }
    }

    /// Weight memory for a model (bytes), including embedding/LM-head
    /// kept at 16-bit (none of the systems quantize embeddings).
    #[must_use]
    pub fn weight_bytes(&self, cfg: &ModelConfig) -> f64 {
        let linear = cfg.layer_linear_params() as f64 * cfg.layers as f64;
        let emb = 2.0 * (cfg.vocab * cfg.hidden) as f64;
        linear * self.weight_bits / 8.0 + emb * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lq_models::configs::{LLAMA1_30B, LLAMA2_70B, MIXTRAL_8X7B};

    #[test]
    fn all_rows_construct() {
        for id in SystemId::ALL {
            let s = ServingSystem::of(id);
            assert!(!s.name.is_empty());
            assert!(s.weight_bits >= 4.0 && s.weight_bits <= 16.0);
        }
    }

    #[test]
    fn liquidserve_wo_swaps_only_the_kernel() {
        let full = ServingSystem::of(SystemId::LiquidServe);
        let wo = ServingSystem::of(SystemId::LiquidServeWo);
        assert_eq!(wo.attention, full.attention);
        assert_eq!(wo.weight_bits, full.weight_bits);
        assert_ne!(wo.kernel.kind, full.kernel.kind);
        assert_eq!(wo.kernel.kind, lq_sim::kernel_model::SystemKind::QServe);
    }

    #[test]
    fn na_cells_match_table1() {
        let mixtral = &MIXTRAL_8X7B;
        assert!(!ServingSystem::of(SystemId::TrtW8A8).supports(mixtral));
        assert!(!ServingSystem::of(SystemId::QServe).supports(mixtral));
        assert!(ServingSystem::of(SystemId::LiquidServe).supports(mixtral));
        assert!(ServingSystem::of(SystemId::TrtFp8).supports(mixtral));
    }

    #[test]
    fn weight_bytes_reflect_precision() {
        let fp16 = ServingSystem::of(SystemId::TrtFp16).weight_bytes(&LLAMA2_70B);
        let w4 = ServingSystem::of(SystemId::LiquidServe).weight_bytes(&LLAMA2_70B);
        // 70B at FP16 ≈ 138 GB — over the 80 GB card (the OOM cell).
        assert!(fp16 > 80.0 * 1024.0 * 1024.0 * 1024.0);
        // At 4.5 bits ≈ 39 GB — fits.
        assert!(w4 < 45.0 * 1024.0 * 1024.0 * 1024.0);
        assert!((fp16 / w4) > 3.0);
    }

    #[test]
    fn fp16_30b_fits_with_little_headroom() {
        // The Table-1 (batch 13) cell: weights ~65 GB of the 80 GB.
        let b = ServingSystem::of(SystemId::TrtFp16).weight_bytes(&LLAMA1_30B);
        let gib = b / (1024.0 * 1024.0 * 1024.0);
        assert!((58.0..70.0).contains(&gib), "{gib} GiB");
    }
}
