//! Serving-loop telemetry: the metric families recorded by the
//! continuous-batching scheduler and the paged KV allocator.
//!
//! Handles resolve from the global [`lq_telemetry`] registry only when
//! recording is enabled; disabled, every instrumentation site is a
//! relaxed load (scheduler) or a `None` branch (allocator).
//!
//! Exported families:
//!
//! | metric | kind | meaning |
//! |--------|------|---------|
//! | `lq_serving_batch_size` | histogram | running batch at each decode iteration |
//! | `lq_serving_decode_step_ns` | histogram | modelled decode-iteration latency |
//! | `lq_serving_prefill_ns` | histogram | modelled batched-prefill latency |
//! | `lq_serving_admitted_total` | counter | requests admitted |
//! | `lq_serving_admission_blocked_total` | counter | admission attempts rejected (KV reservation did not fit) |
//! | `lq_serving_preemptions_total` | counter | running sequences preempted under [`crate::PreemptionPolicy::PriorityKv`] (KV fully released, victim re-queued); stays 0 under `Never` — conservative admission reserves prompt+output up front |
//! | `lq_serving_completed_total` | counter | requests finished normally |
//! | `lq_serving_timed_out_total` | counter | requests evicted past their deadline (pages released) |
//! | `lq_serving_rejected_total` | counter | requests rejected at arrival (queue full, reservation can never fit, or malformed non-finite timing) |
//! | `lq_serving_failed_total` | counter | requests killed by an unrecoverable engine/allocation error (KV pages fully released) |
//! | `lq_serving_request_latency_ns` | histogram | per-request arrival→finish latency (finished requests) |
//! | `lq_serving_queue_delay_ns` | histogram | per-request arrival→admission delay (finished requests) |
//! | `lq_serving_tokens_per_s` | gauge | sustained throughput of the last run |
//! | `lq_serving_queue_len` | gauge | waiting requests after each admission pass |
//! | `lq_kv_page_alloc_total` | counter | KV pages allocated |
//! | `lq_kv_page_free_total` | counter | KV pages returned |
//! | `lq_kv_oom_total` | counter | allocation attempts failed on OOM |
//! | `lq_kv_used_pages` | gauge | pages currently pinned |
//! | `lq_kv_live_sequences` | gauge | sequences currently registered |
//!
//! Under the router (`lq-router`), each replica's runtime resolves the
//! `lq_serving_*` families with a `{replica="<n>"}` label instead of
//! the unlabelled process-wide series, so per-shard dashboards come for
//! free from the same family names.

use std::sync::{Arc, OnceLock};

use lq_telemetry::{registry, Counter, Gauge, Histogram};

/// Handles for one scheduling run (resolved at `run_schedule` entry).
pub(crate) struct SchedMetrics {
    pub batch_size: Arc<Histogram>,
    pub decode_step_ns: Arc<Histogram>,
    pub prefill_ns: Arc<Histogram>,
    pub admitted: Arc<Counter>,
    pub blocked: Arc<Counter>,
    /// Running sequences preempted for a higher-priority reservation
    /// ([`crate::PreemptionPolicy::PriorityKv`]): the victim's KV pages
    /// are fully released and it re-queues to restart from prefill.
    /// Under [`crate::PreemptionPolicy::Never`] this stays 0 —
    /// conservative admission reserves prompt+output up front — and
    /// dashboards can still alert on it.
    pub preemptions: Arc<Counter>,
    pub completed: Arc<Counter>,
    pub timed_out: Arc<Counter>,
    pub rejected: Arc<Counter>,
    pub failed: Arc<Counter>,
    pub request_latency_ns: Arc<Histogram>,
    pub queue_delay_ns: Arc<Histogram>,
    pub tokens_per_s: Arc<Gauge>,
    pub queue_len: Arc<Gauge>,
}

impl SchedMetrics {
    /// Resolve unlabelled handles, or `None` when telemetry is off.
    pub(crate) fn resolve() -> Option<Self> {
        Self::resolve_for(None)
    }

    /// Resolve handles labelled `{replica="<n>"}` (router shards), or
    /// the unlabelled process-wide families when `replica` is `None`.
    pub(crate) fn resolve_for(replica: Option<u32>) -> Option<Self> {
        if !lq_telemetry::enabled() {
            return None;
        }
        let reg = registry();
        let id = replica.map(|r| r.to_string());
        let labels: Vec<(&str, &str)> = match &id {
            Some(v) => vec![("replica", v.as_str())],
            None => vec![],
        };
        let c = |name| reg.counter_with(name, &labels);
        let g = |name| reg.gauge_with(name, &labels);
        let h = |name| reg.histogram_with(name, &labels);
        Some(Self {
            batch_size: h("lq_serving_batch_size"),
            decode_step_ns: h("lq_serving_decode_step_ns"),
            prefill_ns: h("lq_serving_prefill_ns"),
            admitted: c("lq_serving_admitted_total"),
            blocked: c("lq_serving_admission_blocked_total"),
            preemptions: c("lq_serving_preemptions_total"),
            completed: c("lq_serving_completed_total"),
            timed_out: c("lq_serving_timed_out_total"),
            rejected: c("lq_serving_rejected_total"),
            failed: c("lq_serving_failed_total"),
            request_latency_ns: h("lq_serving_request_latency_ns"),
            queue_delay_ns: h("lq_serving_queue_delay_ns"),
            tokens_per_s: g("lq_serving_tokens_per_s"),
            queue_len: g("lq_serving_queue_len"),
        })
    }
}

/// Handles for the paged allocator (process-wide; the allocator has no
/// per-instance identity worth labelling).
pub(crate) struct KvMetrics {
    pub alloc: Arc<Counter>,
    pub freed: Arc<Counter>,
    pub oom: Arc<Counter>,
    pub used_pages: Arc<Gauge>,
    pub live_sequences: Arc<Gauge>,
}

static KV: OnceLock<KvMetrics> = OnceLock::new();

/// The allocator's handles, or `None` when telemetry is off. Cached in
/// a `OnceLock` so the per-operation cost is one relaxed load plus a
/// pointer read.
pub(crate) fn kv() -> Option<&'static KvMetrics> {
    if !lq_telemetry::enabled() {
        return None;
    }
    Some(KV.get_or_init(|| {
        let reg = registry();
        KvMetrics {
            alloc: reg.counter("lq_kv_page_alloc_total"),
            freed: reg.counter("lq_kv_page_free_total"),
            oom: reg.counter("lq_kv_oom_total"),
            used_pages: reg.gauge("lq_kv_used_pages"),
            live_sequences: reg.gauge("lq_kv_live_sequences"),
        }
    }))
}
