//! Serving-loop telemetry: the metric families recorded by the
//! continuous-batching scheduler and the paged KV allocator.
//!
//! Handles resolve from the global [`lq_telemetry`] registry only when
//! recording is enabled; disabled, every instrumentation site is a
//! relaxed load (scheduler) or a `None` branch (allocator).
//!
//! Exported families:
//!
//! | metric | kind | meaning |
//! |--------|------|---------|
//! | `lq_serving_batch_size` | histogram | running batch at each decode iteration |
//! | `lq_serving_decode_step_ns` | histogram | modelled decode-iteration latency |
//! | `lq_serving_prefill_ns` | histogram | modelled batched-prefill latency |
//! | `lq_serving_admitted_total` | counter | requests admitted |
//! | `lq_serving_admission_blocked_total` | counter | admission attempts rejected (KV reservation did not fit) |
//! | `lq_serving_preemptions_total` | counter | always 0 — conservative admission reserves prompt+output up front, so the scheduler never preempts; exported so dashboards can assert it |
//! | `lq_serving_completed_total` | counter | requests finished normally |
//! | `lq_serving_timed_out_total` | counter | requests evicted past their deadline (pages released) |
//! | `lq_serving_rejected_total` | counter | requests rejected at arrival (queue full, reservation can never fit, or malformed non-finite timing) |
//! | `lq_serving_failed_total` | counter | requests killed by an unrecoverable engine/allocation error (KV pages fully released) |
//! | `lq_serving_request_latency_ns` | histogram | per-request arrival→finish latency (finished requests) |
//! | `lq_serving_queue_delay_ns` | histogram | per-request arrival→admission delay (finished requests) |
//! | `lq_serving_tokens_per_s` | gauge | sustained throughput of the last run |
//! | `lq_serving_queue_len` | gauge | waiting requests after each admission pass |
//! | `lq_kv_page_alloc_total` | counter | KV pages allocated |
//! | `lq_kv_page_free_total` | counter | KV pages returned |
//! | `lq_kv_oom_total` | counter | allocation attempts failed on OOM |
//! | `lq_kv_used_pages` | gauge | pages currently pinned |
//! | `lq_kv_live_sequences` | gauge | sequences currently registered |

use std::sync::{Arc, OnceLock};

use lq_telemetry::{registry, Counter, Gauge, Histogram};

/// Handles for one scheduling run (resolved at `run_schedule` entry).
pub(crate) struct SchedMetrics {
    pub batch_size: Arc<Histogram>,
    pub decode_step_ns: Arc<Histogram>,
    pub prefill_ns: Arc<Histogram>,
    pub admitted: Arc<Counter>,
    pub blocked: Arc<Counter>,
    /// Always 0 by design: conservative admission reserves the full
    /// `prompt + output` KV budget up front, so no admitted request is
    /// ever preempted. The counter stays exported (dashboards alert on
    /// any nonzero value) and the runtime *reads* it at end of run to
    /// assert the invariant — see `ServingRuntime::run` and the
    /// `preemptions_stay_zero_through_stress_run` stress test.
    pub preemptions: Arc<Counter>,
    pub completed: Arc<Counter>,
    pub timed_out: Arc<Counter>,
    pub rejected: Arc<Counter>,
    pub failed: Arc<Counter>,
    pub request_latency_ns: Arc<Histogram>,
    pub queue_delay_ns: Arc<Histogram>,
    pub tokens_per_s: Arc<Gauge>,
    pub queue_len: Arc<Gauge>,
}

impl SchedMetrics {
    /// Resolve handles, or `None` when telemetry is off.
    pub(crate) fn resolve() -> Option<Self> {
        if !lq_telemetry::enabled() {
            return None;
        }
        let reg = registry();
        Some(Self {
            batch_size: reg.histogram("lq_serving_batch_size"),
            decode_step_ns: reg.histogram("lq_serving_decode_step_ns"),
            prefill_ns: reg.histogram("lq_serving_prefill_ns"),
            admitted: reg.counter("lq_serving_admitted_total"),
            blocked: reg.counter("lq_serving_admission_blocked_total"),
            preemptions: reg.counter("lq_serving_preemptions_total"),
            completed: reg.counter("lq_serving_completed_total"),
            timed_out: reg.counter("lq_serving_timed_out_total"),
            rejected: reg.counter("lq_serving_rejected_total"),
            failed: reg.counter("lq_serving_failed_total"),
            request_latency_ns: reg.histogram("lq_serving_request_latency_ns"),
            queue_delay_ns: reg.histogram("lq_serving_queue_delay_ns"),
            tokens_per_s: reg.gauge("lq_serving_tokens_per_s"),
            queue_len: reg.gauge("lq_serving_queue_len"),
        })
    }
}

/// Handles for the paged allocator (process-wide; the allocator has no
/// per-instance identity worth labelling).
pub(crate) struct KvMetrics {
    pub alloc: Arc<Counter>,
    pub freed: Arc<Counter>,
    pub oom: Arc<Counter>,
    pub used_pages: Arc<Gauge>,
    pub live_sequences: Arc<Gauge>,
}

static KV: OnceLock<KvMetrics> = OnceLock::new();

/// The allocator's handles, or `None` when telemetry is off. Cached in
/// a `OnceLock` so the per-operation cost is one relaxed load plus a
/// pointer read.
pub(crate) fn kv() -> Option<&'static KvMetrics> {
    if !lq_telemetry::enabled() {
        return None;
    }
    Some(KV.get_or_init(|| {
        let reg = registry();
        KvMetrics {
            alloc: reg.counter("lq_kv_page_alloc_total"),
            freed: reg.counter("lq_kv_page_free_total"),
            oom: reg.counter("lq_kv_oom_total"),
            used_pages: reg.gauge("lq_kv_used_pages"),
            live_sequences: reg.gauge("lq_kv_live_sequences"),
        }
    }))
}
