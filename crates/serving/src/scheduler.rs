//! Continuous-batching request scheduler (Orca-style iteration-level
//! scheduling over the paged KV cache).
//!
//! The closed-form search in [`crate::throughput`] answers "what is the
//! best steady-state batch"; this module *runs* the serving loop: a
//! request queue with arrival times, conservative admission against the
//! paged allocator (a request is admitted only when its full
//! prompt+output KV reservation fits, so no preemption is ever needed),
//! batched prefill on admission, and per-iteration decode in which every
//! running sequence advances one token and finished sequences release
//! their pages immediately — the mechanism that lets a new request slip
//! into the very next iteration.
//!
//! Time advances by the modelled cost of each phase (prefill /
//! decode step) from [`crate::decode`], so the simulation produces
//! request latencies and sustained throughput for any arrival pattern,
//! not just the saturated regime of Table 1.

use crate::decode::{decode_step, prefill_time};
use crate::kvcache::PagedKvCache;
use crate::system::ServingSystem;
use crate::telemetry::SchedMetrics;
use lq_models::ModelConfig;
use lq_sim::specs::GpuSpec;

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Caller-chosen id (unique).
    pub id: u64,
    /// Prompt length (tokens).
    pub prompt_len: usize,
    /// Tokens to generate.
    pub output_len: usize,
    /// Arrival time (seconds).
    pub arrival: f64,
}

/// Completion record for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Request id.
    pub id: u64,
    /// When the request was admitted (prefill started).
    pub admitted_at: f64,
    /// When the last token was produced.
    pub finished_at: f64,
    /// Arrival time (copied from the request).
    pub arrival: f64,
}

impl Completion {
    /// Queueing + service latency.
    #[must_use]
    pub fn latency(&self) -> f64 {
        self.finished_at - self.arrival
    }

    /// Time spent waiting for admission.
    #[must_use]
    pub fn queue_delay(&self) -> f64 {
        self.admitted_at - self.arrival
    }
}

/// Aggregate results of a scheduling run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Per-request completions, in finish order.
    pub completions: Vec<Completion>,
    /// Total generated tokens.
    pub generated_tokens: u64,
    /// Wall-clock makespan (seconds).
    pub makespan: f64,
    /// Largest concurrent batch observed.
    pub peak_batch: usize,
    /// Decode iterations executed.
    pub decode_steps: u64,
}

impl RunStats {
    /// Sustained generation throughput (tokens/s).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.generated_tokens as f64 / self.makespan
        }
    }

    /// Mean end-to-end request latency.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        self.completions
            .iter()
            .map(Completion::latency)
            .sum::<f64>()
            / self.completions.len() as f64
    }

    /// p-th percentile latency (p in [0,100]).
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p));
        if self.completions.is_empty() {
            return 0.0;
        }
        let mut ls: Vec<f64> = self.completions.iter().map(Completion::latency).collect();
        ls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let idx = ((p / 100.0) * (ls.len() - 1) as f64).round() as usize;
        ls[idx]
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Hard cap on concurrent sequences.
    pub max_batch: usize,
    /// Tokens per KV page.
    pub page_tokens: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            max_batch: 256,
            page_tokens: 16,
        }
    }
}

struct Running {
    id: u64,
    admitted_at: f64,
    arrival: f64,
    remaining: usize,
    ctx: usize,
}

/// Run the continuous-batching loop to completion over `requests`
/// (any arrival order; they are processed FCFS by arrival time).
#[must_use]
pub fn run_schedule(
    sys: &ServingSystem,
    spec: &GpuSpec,
    cfg: &ModelConfig,
    sched: SchedulerConfig,
    requests: &[Request],
) -> RunStats {
    let mut queue: Vec<Request> = requests.to_vec();
    queue.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite"));
    queue.reverse(); // pop() takes the earliest

    // KV budget = capacity − weights − reserve, managed by the real
    // paged allocator.
    let kv_budget =
        (spec.mem_capacity as f64 - sys.weight_bytes(cfg) - crate::throughput::RESERVE_BYTES)
            .max(0.0);
    let bytes_per_token = cfg.kv_bytes_per_token(sys.attention.kv.bytes()).max(1.0) as usize;
    let mut kv = PagedKvCache::new(kv_budget as u64, sched.page_tokens, bytes_per_token);

    let metrics = SchedMetrics::resolve();
    let mut now = 0.0f64;
    let mut running: Vec<Running> = Vec::new();
    let mut stats = RunStats {
        completions: Vec::new(),
        generated_tokens: 0,
        makespan: 0.0,
        peak_batch: 0,
        decode_steps: 0,
    };

    loop {
        // 1. Admit every queued request that has arrived and whose full
        //    reservation fits (conservative: prompt + output, so no
        //    preemption path is needed).
        let mut admitted: Vec<Request> = Vec::new();
        while running.len() + admitted.len() < sched.max_batch {
            let Some(req) = queue.last().copied() else {
                break;
            };
            if req.arrival > now {
                break;
            }
            let need = kv.pages_for(req.prompt_len + req.output_len);
            if need > kv.free_pages() {
                if let Some(m) = &metrics {
                    m.blocked.inc();
                }
                break; // FCFS head-of-line blocking, like vLLM's default
            }
            kv.add_sequence(req.id, req.prompt_len + req.output_len)
                .expect("reservation checked");
            queue.pop();
            admitted.push(req);
        }
        if !admitted.is_empty() {
            // Batched prefill for the newly admitted requests. Admission
            // time is when prefill *starts* (queueing ends there).
            let admit_time = now;
            let max_prompt = admitted
                .iter()
                .map(|r| r.prompt_len)
                .max()
                .expect("non-empty");
            let dt = prefill_time(sys, spec, cfg, admitted.len(), max_prompt);
            now += dt;
            if let Some(m) = &metrics {
                m.admitted.add(admitted.len() as u64);
                m.prefill_ns.record_secs(dt);
                m.queue_len.set(queue.len() as f64);
            }
            for req in admitted {
                running.push(Running {
                    id: req.id,
                    admitted_at: admit_time,
                    arrival: req.arrival,
                    remaining: req.output_len,
                    ctx: req.prompt_len,
                });
            }
        }
        stats.peak_batch = stats.peak_batch.max(running.len());

        if running.is_empty() {
            // Idle: jump to the next arrival, or finish.
            match queue.last() {
                Some(req) => {
                    now = now.max(req.arrival);
                    continue;
                }
                None => break,
            }
        }

        // 2. One decode iteration for the whole running batch.
        let mean_ctx = (running.iter().map(|r| r.ctx).sum::<usize>() / running.len()).max(1);
        let dt = decode_step(sys, spec, cfg, running.len(), mean_ctx).total();
        now += dt;
        if let Some(m) = &metrics {
            m.batch_size.record(running.len() as u64);
            m.decode_step_ns.record_secs(dt);
        }
        stats.decode_steps += 1;
        stats.generated_tokens += running.len() as u64;
        for r in &mut running {
            r.ctx += 1;
            r.remaining -= 1;
        }

        // 3. Retire finished sequences, freeing their pages immediately.
        let mut i = 0;
        while i < running.len() {
            if running[i].remaining == 0 {
                let r = running.swap_remove(i);
                kv.free_sequence(r.id).expect("was admitted");
                if let Some(m) = &metrics {
                    m.completed.inc();
                }
                stats.completions.push(Completion {
                    id: r.id,
                    admitted_at: r.admitted_at,
                    finished_at: now,
                    arrival: r.arrival,
                });
            } else {
                i += 1;
            }
        }
    }
    stats.makespan = now;
    if let Some(m) = &metrics {
        m.tokens_per_s.set(stats.throughput());
        m.queue_len.set(0.0);
    }
    assert!(kv.check_invariants(), "page conservation violated");
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{ServingSystem, SystemId};
    use crate::throughput::{peak_throughput, INPUT_LEN, OUTPUT_LEN};
    use lq_models::configs::LLAMA2_7B;
    use lq_sim::specs::H800;

    fn sys() -> ServingSystem {
        ServingSystem::of(SystemId::LiquidServe)
    }

    fn batch_arrivals(n: usize) -> Vec<Request> {
        (0..n as u64)
            .map(|id| Request {
                id,
                prompt_len: INPUT_LEN,
                output_len: OUTPUT_LEN,
                arrival: 0.0,
            })
            .collect()
    }

    #[test]
    fn all_requests_complete_exactly_once() {
        let reqs = batch_arrivals(40);
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
        assert_eq!(stats.completions.len(), 40);
        let mut ids: Vec<u64> = stats.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
        assert_eq!(stats.generated_tokens, 40 * OUTPUT_LEN as u64);
    }

    #[test]
    fn saturated_run_approaches_closed_form_peak() {
        // Enough simultaneous requests to keep the device at its best
        // batch: sustained throughput should be within ~35% of the
        // closed-form peak (the loop pays prefill serialisation and
        // end-of-run drain the closed form ignores).
        let peak = peak_throughput(&sys(), &H800, &LLAMA2_7B).expect("fits");
        let reqs = batch_arrivals(3 * peak.batch);
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
        let ratio = stats.throughput() / peak.tokens_per_s;
        assert!((0.6..=1.25).contains(&ratio), "ratio {ratio}");
        assert!(stats.peak_batch >= peak.batch / 2);
    }

    #[test]
    fn light_load_has_low_queueing() {
        // Widely spaced arrivals: requests should never queue.
        let reqs: Vec<Request> = (0..5u64)
            .map(|id| Request {
                id,
                prompt_len: 128,
                output_len: 64,
                arrival: id as f64 * 100.0,
            })
            .collect();
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
        assert_eq!(stats.completions.len(), 5);
        for c in &stats.completions {
            assert!(c.queue_delay() < 1e-6, "queue delay {}", c.queue_delay());
        }
        assert_eq!(stats.peak_batch, 1);
    }

    #[test]
    fn overload_queues_but_conserves() {
        // More simultaneous work than KV capacity: requests must wait,
        // none may be lost.
        let reqs = batch_arrivals(500);
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
        assert_eq!(stats.completions.len(), 500);
        // Later completions must show real queueing.
        let max_delay = stats
            .completions
            .iter()
            .map(Completion::queue_delay)
            .fold(0.0f64, f64::max);
        assert!(max_delay > 1.0, "max queue delay {max_delay}");
    }

    #[test]
    fn tighter_batch_cap_reduces_peak_batch() {
        let reqs = batch_arrivals(100);
        let cfg = SchedulerConfig {
            max_batch: 8,
            page_tokens: 16,
        };
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, cfg, &reqs);
        assert!(stats.peak_batch <= 8);
        assert_eq!(stats.completions.len(), 100);
    }

    #[test]
    fn higher_load_increases_tail_latency() {
        let light = run_schedule(
            &sys(),
            &H800,
            &LLAMA2_7B,
            SchedulerConfig::default(),
            &batch_arrivals(8),
        );
        let heavy = run_schedule(
            &sys(),
            &H800,
            &LLAMA2_7B,
            SchedulerConfig::default(),
            &batch_arrivals(400),
        );
        assert!(heavy.latency_percentile(95.0) > light.latency_percentile(95.0));
        assert!(heavy.mean_latency() > light.mean_latency());
    }

    #[test]
    fn finish_times_are_monotone_nondecreasing() {
        let reqs = batch_arrivals(60);
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
        for w in stats.completions.windows(2) {
            assert!(w[1].finished_at >= w[0].finished_at);
        }
    }

    #[test]
    fn liquidserve_sustains_more_than_qserve() {
        // System-level: the scheduler run reproduces the Table-1
        // ordering, not just the closed form.
        let reqs = batch_arrivals(300);
        let l = run_schedule(&sys(), &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
        let q = run_schedule(
            &ServingSystem::of(SystemId::QServe),
            &H800,
            &LLAMA2_7B,
            SchedulerConfig::default(),
            &reqs,
        );
        assert!(
            l.throughput() > q.throughput(),
            "liquid {} vs qserve {}",
            l.throughput(),
            q.throughput()
        );
    }
}
