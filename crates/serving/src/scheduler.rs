//! Continuous-batching request scheduler (Orca-style iteration-level
//! scheduling over the paged KV cache) — the *simulation* backend of
//! the shared serving API in [`crate::request`].
//!
//! The closed-form search in [`crate::throughput`] answers "what is the
//! best steady-state batch"; this module *runs* the serving loop: a
//! request queue with arrival times, admission control against the
//! paged allocator (a request is admitted only when its full
//! prompt+output KV reservation fits, so no preemption is ever needed),
//! batched prefill on admission, and per-iteration decode in which every
//! running sequence advances one token and finished sequences release
//! their pages immediately — the mechanism that lets a new request slip
//! into the very next iteration.
//!
//! Time advances by the modelled cost of each phase (prefill /
//! decode step) from [`crate::decode`], so the simulation produces
//! request latencies and sustained throughput for any arrival pattern,
//! not just the saturated regime of Table 1. The executable twin of
//! this loop — real batched GEMMs on the persistent pool, measured time
//! — is [`crate::runtime::ServingRuntime`]; both consume the same
//! [`Request`] workloads and produce the same [`RunStats`].

use crate::decode::{decode_step, prefill_time};
use crate::kvcache::PagedKvCache;
use crate::system::ServingSystem;
use crate::telemetry::SchedMetrics;
use lq_models::ModelConfig;
use lq_sim::specs::GpuSpec;
use std::collections::VecDeque;

pub use crate::request::{
    Completion, CompletionStatus, Request, RunStats, SchedulerConfig, SchedulerConfigBuilder,
    SchedulerConfigError,
};

struct Running {
    id: u64,
    admitted_at: f64,
    arrival: f64,
    remaining: usize,
    output_len: usize,
    ctx: usize,
    expiry: Option<f64>,
    priority: crate::request::Priority,
}

/// Record one completion, mirroring it into telemetry.
fn complete(stats: &mut RunStats, metrics: &Option<SchedMetrics>, c: Completion) {
    if let Some(m) = metrics {
        match c.status {
            CompletionStatus::Finished => {
                m.completed.inc();
                m.request_latency_ns.record_secs(c.latency());
                m.queue_delay_ns.record_secs(c.queue_delay());
            }
            CompletionStatus::TimedOut => m.timed_out.inc(),
            CompletionStatus::Rejected => m.rejected.inc(),
            // The simulation backend has no real engine to fail, but
            // the shared completion path still mirrors the status.
            CompletionStatus::Failed => m.failed.inc(),
        }
    }
    stats.completions.push(c);
}

/// Run the continuous-batching loop to completion over `requests`
/// (any arrival order; they are processed FCFS by arrival time).
///
/// Requests with deadlines are evicted (pages released) once modelled
/// time passes their expiry; with `sched.max_queue` bounded, requests
/// arriving into a full queue complete as
/// [`CompletionStatus::Rejected`], as do requests whose reservation can
/// never fit the KV budget or whose arrival/deadline is non-finite.
#[must_use]
pub fn run_schedule(
    sys: &ServingSystem,
    spec: &GpuSpec,
    cfg: &ModelConfig,
    sched: SchedulerConfig,
    requests: &[Request],
) -> RunStats {
    let metrics = SchedMetrics::resolve();
    let mut stats = RunStats::empty();

    // Validate timing at ingest: a NaN arrival must not reach the sort
    // below (`partial_cmp(...).expect` here used to panic the whole
    // run), and a NaN deadline would silently never expire. Timestamps
    // are zeroed so NaN cannot leak into latency statistics either.
    let mut arrivals: Vec<Request> = Vec::with_capacity(requests.len());
    for req in requests {
        if !req.arrival.is_finite() || req.deadline.is_some_and(|d| !d.is_finite()) {
            complete(
                &mut stats,
                &metrics,
                Completion {
                    id: req.id,
                    admitted_at: 0.0,
                    finished_at: 0.0,
                    arrival: 0.0,
                    status: CompletionStatus::Rejected,
                    generated: 0,
                    priority: req.priority,
                },
            );
        } else {
            arrivals.push(*req);
        }
    }
    arrivals.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
    arrivals.reverse(); // pop() takes the earliest

    // KV budget = capacity − weights − reserve, managed by the real
    // paged allocator.
    let kv_budget =
        (spec.mem_capacity as f64 - sys.weight_bytes(cfg) - crate::throughput::RESERVE_BYTES)
            .max(0.0);
    let bytes_per_token = cfg.kv_bytes_per_token(sys.attention.kv.bytes()).max(1.0) as usize;
    let mut kv = PagedKvCache::new(kv_budget as u64, sched.page_tokens, bytes_per_token);

    let mut now = 0.0f64;
    let mut pending: VecDeque<Request> = VecDeque::new();
    let mut running: Vec<Running> = Vec::new();

    loop {
        // 0. Move requests that have arrived into the waiting queue,
        //    rejecting when the bounded queue is full or the request
        //    could never fit the KV budget even alone.
        while arrivals.last().is_some_and(|r| r.arrival <= now) {
            let req = arrivals.pop().expect("checked non-empty");
            let impossible = kv.pages_for(req.prompt_len + req.output_len) > kv.total_pages();
            // The same per-tier occupancy caps as the executable
            // backend (`SchedulerConfig::queue_cap`); under plain FCFS
            // this is the single shared `max_queue`.
            if impossible || pending.len() >= sched.queue_cap(req.priority) {
                complete(
                    &mut stats,
                    &metrics,
                    Completion {
                        id: req.id,
                        admitted_at: req.arrival,
                        finished_at: req.arrival,
                        arrival: req.arrival,
                        status: CompletionStatus::Rejected,
                        generated: 0,
                        priority: req.priority,
                    },
                );
            } else {
                pending.push_back(req);
            }
        }

        // 0b. Expire queued requests whose deadline already passed.
        pending.retain(|req| {
            let expired = req.expiry().is_some_and(|e| now > e);
            if expired {
                complete(
                    &mut stats,
                    &metrics,
                    Completion {
                        id: req.id,
                        admitted_at: now,
                        finished_at: now,
                        arrival: req.arrival,
                        status: CompletionStatus::TimedOut,
                        generated: 0,
                        priority: req.priority,
                    },
                );
            }
            !expired
        });

        // 1. Admit every waiting request whose full reservation fits
        //    (conservative: prompt + output, so no preemption path is
        //    needed).
        let mut admitted: Vec<Request> = Vec::new();
        while running.len() + admitted.len() < sched.max_batch {
            let Some(req) = pending.front().copied() else {
                break;
            };
            if !kv.can_reserve(req.prompt_len + req.output_len) {
                if let Some(m) = &metrics {
                    m.blocked.inc();
                }
                break; // FCFS head-of-line blocking, like vLLM's default
            }
            kv.add_sequence(req.id, req.prompt_len + req.output_len)
                .expect("reservation checked");
            pending.pop_front();
            admitted.push(req);
        }
        if !admitted.is_empty() {
            // Batched prefill for the newly admitted requests. Admission
            // time is when prefill *starts* (queueing ends there).
            let admit_time = now;
            let max_prompt = admitted
                .iter()
                .map(|r| r.prompt_len)
                .max()
                .expect("non-empty");
            let dt = prefill_time(sys, spec, cfg, admitted.len(), max_prompt);
            now += dt;
            if let Some(m) = &metrics {
                m.admitted.add(admitted.len() as u64);
                m.prefill_ns.record_secs(dt);
                m.queue_len.set(pending.len() as f64);
            }
            for req in admitted {
                running.push(Running {
                    id: req.id,
                    admitted_at: admit_time,
                    arrival: req.arrival,
                    remaining: req.output_len,
                    output_len: req.output_len,
                    ctx: req.prompt_len,
                    expiry: req.expiry(),
                    priority: req.priority,
                });
            }
        }
        stats.peak_batch = stats.peak_batch.max(running.len());

        // 2. Evict running sequences whose deadline expired, releasing
        //    their pages before the next iteration is scheduled.
        let mut i = 0;
        while i < running.len() {
            if running[i].expiry.is_some_and(|e| now > e) {
                let r = running.swap_remove(i);
                kv.free_sequence(r.id).expect("was admitted");
                complete(
                    &mut stats,
                    &metrics,
                    Completion {
                        id: r.id,
                        admitted_at: r.admitted_at,
                        finished_at: now,
                        arrival: r.arrival,
                        status: CompletionStatus::TimedOut,
                        generated: (r.output_len - r.remaining) as u64,
                        priority: r.priority,
                    },
                );
            } else {
                i += 1;
            }
        }

        if running.is_empty() {
            if !pending.is_empty() {
                // Waiting requests with nothing running can only mean
                // head-of-line blocking against sequences that no longer
                // exist — impossible-fit requests were rejected above.
                unreachable!("pending requests with an empty device");
            }
            // Idle: jump to the next arrival, or finish.
            match arrivals.last() {
                Some(req) => {
                    now = now.max(req.arrival);
                    continue;
                }
                None => break,
            }
        }

        // 3. One decode iteration for the whole running batch.
        let mean_ctx = (running.iter().map(|r| r.ctx).sum::<usize>() / running.len()).max(1);
        let dt = decode_step(sys, spec, cfg, running.len(), mean_ctx).total();
        now += dt;
        if let Some(m) = &metrics {
            m.batch_size.record(running.len() as u64);
            m.decode_step_ns.record_secs(dt);
        }
        stats.decode_steps += 1;
        stats.generated_tokens += running.len() as u64;
        for r in &mut running {
            r.ctx += 1;
            r.remaining -= 1;
        }

        // 4. Retire finished sequences, freeing their pages immediately.
        let mut i = 0;
        while i < running.len() {
            if running[i].remaining == 0 {
                let r = running.swap_remove(i);
                kv.free_sequence(r.id).expect("was admitted");
                complete(
                    &mut stats,
                    &metrics,
                    Completion {
                        id: r.id,
                        admitted_at: r.admitted_at,
                        finished_at: now,
                        arrival: r.arrival,
                        status: CompletionStatus::Finished,
                        generated: r.output_len as u64,
                        priority: r.priority,
                    },
                );
            } else {
                i += 1;
            }
        }
    }
    stats.makespan = now;
    if let Some(m) = &metrics {
        m.tokens_per_s.set(stats.throughput());
        m.queue_len.set(0.0);
    }
    assert!(kv.check_invariants(), "page conservation violated");
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{ServingSystem, SystemId};
    use crate::throughput::{peak_throughput, INPUT_LEN, OUTPUT_LEN};
    use lq_models::configs::LLAMA2_7B;
    use lq_sim::specs::H800;

    fn sys() -> ServingSystem {
        ServingSystem::of(SystemId::LiquidServe)
    }

    fn batch_arrivals(n: usize) -> Vec<Request> {
        (0..n as u64)
            .map(|id| Request::new(id, INPUT_LEN, OUTPUT_LEN, 0.0))
            .collect()
    }

    #[test]
    fn all_requests_complete_exactly_once() {
        let reqs = batch_arrivals(40);
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
        assert_eq!(stats.completions.len(), 40);
        assert_eq!(stats.finished(), 40);
        let mut ids: Vec<u64> = stats.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
        assert_eq!(stats.generated_tokens, 40 * OUTPUT_LEN as u64);
    }

    #[test]
    fn saturated_run_approaches_closed_form_peak() {
        // Enough simultaneous requests to keep the device at its best
        // batch: sustained throughput should be within ~35% of the
        // closed-form peak (the loop pays prefill serialisation and
        // end-of-run drain the closed form ignores).
        let peak = peak_throughput(&sys(), &H800, &LLAMA2_7B).expect("fits");
        let reqs = batch_arrivals(3 * peak.batch);
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
        let ratio = stats.throughput() / peak.tokens_per_s;
        assert!((0.6..=1.25).contains(&ratio), "ratio {ratio}");
        assert!(stats.peak_batch >= peak.batch / 2);
    }

    #[test]
    fn light_load_has_low_queueing() {
        // Widely spaced arrivals: requests should never queue.
        let reqs: Vec<Request> = (0..5u64)
            .map(|id| Request::new(id, 128, 64, id as f64 * 100.0))
            .collect();
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
        assert_eq!(stats.finished(), 5);
        for c in &stats.completions {
            assert!(c.queue_delay() < 1e-6, "queue delay {}", c.queue_delay());
        }
        assert_eq!(stats.peak_batch, 1);
    }

    #[test]
    fn overload_queues_but_conserves() {
        // More simultaneous work than KV capacity: requests must wait,
        // none may be lost.
        let reqs = batch_arrivals(500);
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
        assert_eq!(stats.finished(), 500);
        // Later completions must show real queueing.
        let max_delay = stats
            .completions
            .iter()
            .map(Completion::queue_delay)
            .fold(0.0f64, f64::max);
        assert!(max_delay > 1.0, "max queue delay {max_delay}");
    }

    #[test]
    fn tighter_batch_cap_reduces_peak_batch() {
        let reqs = batch_arrivals(100);
        let cfg = SchedulerConfig::builder()
            .max_batch(8)
            .page_tokens(16)
            .build()
            .unwrap();
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, cfg, &reqs);
        assert!(stats.peak_batch <= 8);
        assert_eq!(stats.finished(), 100);
    }

    #[test]
    fn higher_load_increases_tail_latency() {
        let light = run_schedule(
            &sys(),
            &H800,
            &LLAMA2_7B,
            SchedulerConfig::default(),
            &batch_arrivals(8),
        );
        let heavy = run_schedule(
            &sys(),
            &H800,
            &LLAMA2_7B,
            SchedulerConfig::default(),
            &batch_arrivals(400),
        );
        assert!(heavy.latency_percentile(95.0) > light.latency_percentile(95.0));
        assert!(heavy.mean_latency() > light.mean_latency());
    }

    #[test]
    fn finish_times_are_monotone_nondecreasing() {
        let reqs = batch_arrivals(60);
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
        for w in stats.completions.windows(2) {
            assert!(w[1].finished_at >= w[0].finished_at);
        }
    }

    #[test]
    fn liquidserve_sustains_more_than_qserve() {
        // System-level: the scheduler run reproduces the Table-1
        // ordering, not just the closed form.
        let reqs = batch_arrivals(300);
        let l = run_schedule(&sys(), &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
        let q = run_schedule(
            &ServingSystem::of(SystemId::QServe),
            &H800,
            &LLAMA2_7B,
            SchedulerConfig::default(),
            &reqs,
        );
        assert!(
            l.throughput() > q.throughput(),
            "liquid {} vs qserve {}",
            l.throughput(),
            q.throughput()
        );
    }

    #[test]
    fn bounded_queue_rejects_overflow_and_conserves() {
        // 300 simultaneous arrivals into a queue of 16: whatever cannot
        // be admitted immediately or queued is rejected, everything else
        // runs to completion, and the totals reconcile.
        let reqs = batch_arrivals(300);
        let cfg = SchedulerConfig::builder().max_queue(16).build().unwrap();
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, cfg, &reqs);
        assert_eq!(stats.completions.len(), 300);
        assert!(stats.rejected() > 0, "expected rejections");
        assert_eq!(stats.finished() + stats.rejected(), 300);
        for c in &stats.completions {
            if c.status == CompletionStatus::Rejected {
                assert_eq!(c.generated, 0);
                assert_eq!(c.latency(), 0.0);
            }
        }
    }

    #[test]
    fn deadlines_evict_and_release_pages() {
        // Saturate the device, then give late arrivals a deadline much
        // shorter than the queueing delay they will see: they must time
        // out, and the early no-deadline cohort must still finish.
        let mut reqs = batch_arrivals(200);
        for r in reqs.iter_mut().skip(100) {
            *r = Request::new(r.id, INPUT_LEN, OUTPUT_LEN, 0.0).with_deadline(1.0);
        }
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
        assert_eq!(stats.completions.len(), 200);
        assert!(stats.timed_out() > 0, "expected timeouts");
        assert_eq!(stats.finished() + stats.timed_out(), 200);
        // Page conservation is asserted inside run_schedule; here check
        // timed-out requests produced at most partial output.
        for c in &stats.completions {
            if c.status == CompletionStatus::TimedOut {
                assert!(c.generated < OUTPUT_LEN as u64);
            }
        }
    }

    #[test]
    fn nan_arrival_or_deadline_is_rejected_not_panicking() {
        // Regression: a NaN arrival used to blow up the ingest sort via
        // `partial_cmp(...).expect("finite")`.
        let mut reqs = batch_arrivals(3);
        reqs[0].arrival = f64::NAN;
        reqs[1].deadline = Some(f64::NAN);
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
        assert_eq!(stats.rejected(), 2);
        assert_eq!(stats.finished(), 1);
        for c in &stats.completions {
            assert!(c.latency().is_finite(), "NaN leaked into latency");
        }
    }

    #[test]
    fn impossible_reservation_is_rejected_not_wedged() {
        // A request larger than the whole KV budget can never be
        // admitted; it must come back Rejected instead of blocking the
        // queue forever.
        let reqs = vec![
            Request::new(0, 4_000_000, 1_000_000, 0.0),
            Request::new(1, INPUT_LEN, OUTPUT_LEN, 0.0),
        ];
        let stats = run_schedule(&sys(), &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
        assert_eq!(stats.rejected(), 1);
        assert_eq!(stats.finished(), 1);
    }
}
