//! # lq-swar — SWAR register-op emulation for LiquidGEMM
//!
//! LiquidGEMM's central numerical claim is that its dequantization runs as
//! **two native 32-bit instructions per four weights** (`IMAD` + `XOR`),
//! while the QServe/QoQ baseline needs an emulated `vadd` that the PTX
//! compiler lowers to a dozen low-level operations. Those claims are
//! *integer arithmetic identities* over packed byte lanes of a 32-bit
//! register, so they can be verified bit-exactly on any machine.
//!
//! This crate provides:
//!
//! * [`lanes`] — packing/unpacking of four `u8`/`i8` lanes in a `u32`,
//!   lane broadcast, and the two's-complement reinterpretation helpers the
//!   paper's "sweet dequantization" relies on.
//! * [`ops`] — emulation of the native GPU integer instructions used by
//!   both dequantization paths (`IMAD`, `XOR`, `AND`, shifts, `PRMT`,
//!   `LOP3`, `BFE`), each documented with its hardware cost.
//! * [`vadd`] — the *non-native* SIMD-video byte-wise add/sub, implemented
//!   both as a semantic reference and as the multi-instruction lowering a
//!   compiler must emit on Hopper (where `vadd4` has no hardware unit),
//!   which is the root cause of QServe's dequantization overhead.
//! * [`unpack`] — 4-bit → 8-bit lane expansion used by both QServe and
//!   LiquidGEMM before the arithmetic step.
//! * [`audit`] — an instruction-counting ALU wrapper plus the static
//!   per-path instruction budgets that reproduce the paper's α analysis
//!   (Section 3.3: α ≤ 5.07 is required for overlap; LiquidQuant achieves
//!   7 instructions per 8 elements including unpacking).
//!
//! Everything here is plain wrapping integer arithmetic; no unsafe code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod lanes;
pub mod ops;
pub mod unpack;
pub mod vadd;

pub use audit::{CountingAlu, InstrClass, InstrCount};
pub use lanes::{broadcast_u8, i8x4_to_u32, u32_to_i8x4, u32_to_u8x4, u8x4_to_u32};
pub use ops::{bfe_u32, imad_u32, lop3, prmt};
pub use unpack::{unpack8_u4_to_2xu8x4, unpack_u4_lo, Unpacked8};
pub use vadd::{vadd4_lowered, vadd4_ref, vsub4_lowered, vsub4_ref};
