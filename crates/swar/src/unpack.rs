//! 4-bit → 8-bit lane expansion ("unpacking").
//!
//! Both QServe and LiquidGEMM store eight UINT4 weights per 32-bit
//! register and must expand them into two registers of four UINT8 lanes
//! each before the arithmetic dequantization step. The paper (Section 5.3)
//! adopts QServe's unpack, which costs **3 instructions for 8 elements**
//! (one shift + two masking ops, the masks folding into `LOP3`s on SASS),
//! so a full 8-element dequant is `3 (unpack) + 2×(IMAD+XOR) = 7`
//! instructions.
//!
//! Nibble order: nibble `i` of the packed register (bit `4i..4i+4`) is
//! element `i`. The low nibbles of each byte go to the `lo` register and
//! the high nibbles to the `hi` register, preserving the *interleaved*
//! element order `(0,2,4,6)` / `(1,3,5,7)`. The weight packer in
//! `lq-layout` pre-permutes elements offline so that this interleaving
//! lands each weight in its MMA-required lane — the "register layout is
//! decided offline, arithmetic stays trivial online" trade the paper
//! makes.

use crate::audit::CountingAlu;

/// Result of unpacking eight 4-bit elements: two packed UINT8x4 registers.
///
/// `lo` holds original nibble indices (0,2,4,6); `hi` holds (1,3,5,7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unpacked8 {
    /// Lanes = elements 0,2,4,6 of the packed register.
    pub lo: u32,
    /// Lanes = elements 1,3,5,7 of the packed register.
    pub hi: u32,
}

/// Extract the even nibbles of `w` into byte lanes (1 instruction: AND).
#[inline(always)]
#[must_use]
pub const fn unpack_u4_lo(w: u32) -> u32 {
    w & 0x0F0F_0F0F
}

/// Extract the odd nibbles of `w` into byte lanes (2 instructions:
/// SHR + AND, the AND typically fused into a `LOP3`).
#[inline(always)]
#[must_use]
pub const fn unpack_u4_hi(w: u32) -> u32 {
    (w >> 4) & 0x0F0F_0F0F
}

/// Unpack eight UINT4 elements into two UINT8x4 registers,
/// counting the 3 CUDA-core instructions on `alu`.
#[inline]
#[must_use]
pub fn unpack8_u4_to_2xu8x4(alu: &mut CountingAlu, w: u32) -> Unpacked8 {
    const MASK: u32 = 0x0F0F_0F0F;
    let lo = alu.and(w, MASK);
    let s = alu.shr(w, 4);
    let hi = alu.and(s, MASK);
    Unpacked8 { lo, hi }
}

/// Instruction cost of one 8-element unpack.
pub const UNPACK8_COST: u32 = 3;

/// Scalar reference: the `i`-th 4-bit element of packed register `w`.
#[inline]
#[must_use]
pub const fn nibble(w: u32, i: u32) -> u8 {
    ((w >> (4 * i)) & 0xF) as u8
}

/// Pack eight 4-bit values (each < 16) into a `u32`, nibble `i` = `vals[i]`.
///
/// Offline helper (the GPU never packs at run time).
#[inline]
#[must_use]
pub fn pack8_u4(vals: [u8; 8]) -> u32 {
    let mut w = 0u32;
    for (i, &v) in vals.iter().enumerate() {
        debug_assert!(v < 16, "u4 value out of range: {v}");
        w |= ((v & 0xF) as u32) << (4 * i);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::u32_to_u8x4;

    #[test]
    fn pack_then_nibble_roundtrip() {
        let vals = [0u8, 1, 2, 3, 15, 14, 13, 12];
        let w = pack8_u4(vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(nibble(w, i as u32), v);
        }
    }

    #[test]
    fn unpack_splits_even_odd_nibbles() {
        let vals = [1u8, 9, 2, 10, 3, 11, 4, 12];
        let w = pack8_u4(vals);
        let mut alu = CountingAlu::default();
        let u = unpack8_u4_to_2xu8x4(&mut alu, w);
        assert_eq!(u32_to_u8x4(u.lo), [1, 2, 3, 4]); // elements 0,2,4,6
        assert_eq!(u32_to_u8x4(u.hi), [9, 10, 11, 12]); // elements 1,3,5,7
    }

    #[test]
    fn unpack_cost_is_three_instructions() {
        let mut alu = CountingAlu::default();
        let _ = unpack8_u4_to_2xu8x4(&mut alu, 0x1234_5678);
        assert_eq!(alu.count().total(), UNPACK8_COST as u64);
    }

    #[test]
    fn unpack_exhaustive_one_byte() {
        // Exhaust all byte patterns in the lowest byte; lanes are
        // independent, so this plus the interleave test covers the space.
        for b in 0..=255u8 {
            let w = b as u32;
            let mut alu = CountingAlu::default();
            let u = unpack8_u4_to_2xu8x4(&mut alu, w);
            assert_eq!(u32_to_u8x4(u.lo)[0], b & 0xF);
            assert_eq!(u32_to_u8x4(u.hi)[0], b >> 4);
        }
    }

    #[test]
    fn unpack_consts_match_fns() {
        let w = 0xFEDC_BA98u32;
        assert_eq!(unpack_u4_lo(w), 0x0E0C_0A08);
        assert_eq!(unpack_u4_hi(w), 0x0F0D_0B09);
    }
}
