//! Byte-wise SIMD-video add/sub (`vadd4` / `vsub4`) — semantic reference
//! and the multi-instruction lowering that makes QServe's dequantization
//! expensive.
//!
//! Pre-Hopper GPUs had hardware `vadd4`; on Hopper (sm_90, the H800 the
//! paper targets) the video instructions are **emulated by the compiler**.
//! QServe's "subtraction after multiplication" needs a byte-wise subtract
//! of the packed zero-point product, and the paper measures the resulting
//! instruction storm at 21 % of warp stalls (Section 3.2).
//!
//! [`vadd4_lowered`] reproduces the carryless-add emulation sequence and
//! reports its exact instruction count via [`crate::audit::CountingAlu`];
//! [`vadd4_ref`] is the per-lane semantic oracle used to verify it.

use crate::audit::CountingAlu;
use crate::lanes::lanewise2;

/// Per-lane wrapping byte add — semantic reference (not an instruction).
#[inline]
#[must_use]
pub fn vadd4_ref(a: u32, b: u32) -> u32 {
    lanewise2(a, b, u8::wrapping_add)
}

/// Per-lane wrapping byte subtract — semantic reference.
#[inline]
#[must_use]
pub fn vsub4_ref(a: u32, b: u32) -> u32 {
    lanewise2(a, b, u8::wrapping_sub)
}

/// Carryless byte-wise add, as lowered on hardware without `vadd4`.
///
/// Standard SWAR identity: add the low 7 bits of each lane separately,
/// then recombine the per-lane MSBs with XOR so carries never cross a
/// lane boundary:
///
/// ```text
/// t  = (a & 0x7f7f7f7f) + (b & 0x7f7f7f7f)   ; 3 instructions
/// r  = t ^ (a & 0x80808080) ^ (b & 0x80808080); 4 instructions
/// ```
///
/// With constant materialisation and the scheduler's inability to fuse
/// these into the MMA-adjacent pipeline, the practical cost on sm_90 is
/// 7 ALU instructions per register (versus 1 for a native add), and a
/// dozen when the operands must first be masked out of packed storage —
/// matching the paper's "lowered to a dozen low-level operations".
#[inline]
#[must_use]
pub fn vadd4_lowered(alu: &mut CountingAlu, a: u32, b: u32) -> u32 {
    const LO7: u32 = 0x7F7F_7F7F;
    const HI1: u32 = 0x8080_8080;
    let al = alu.and(a, LO7);
    let bl = alu.and(b, LO7);
    let t = alu.add(al, bl);
    let ah = alu.and(a, HI1);
    let bh = alu.and(b, HI1);
    let x = alu.xor(t, ah);
    alu.xor(x, bh)
}

/// Carryless byte-wise subtract, as lowered without hardware support.
///
/// Uses the borrow-isolating SWAR identity:
///
/// ```text
/// t = (a | 0x80808080) - (b & 0x7f7f7f7f)    ; 3 instructions
/// r = t ^ ((a ^ !b) & 0x80808080)            ; 4 instructions (XOR, NOT folded into LOP3 on GPU)
/// ```
#[inline]
#[must_use]
pub fn vsub4_lowered(alu: &mut CountingAlu, a: u32, b: u32) -> u32 {
    const LO7: u32 = 0x7F7F_7F7F;
    const HI1: u32 = 0x8080_8080;
    let ah = alu.or(a, HI1);
    let bl = alu.and(b, LO7);
    let t = alu.sub(ah, bl);
    let nb = alu.not(b);
    let sx = alu.xor(a, nb);
    let sm = alu.and(sx, HI1);
    alu.xor(t, sm)
}

/// Instruction count of one lowered `vadd4` (excluding constant loads).
pub const VADD4_LOWERED_COST: u32 = 7;
/// Instruction count of one lowered `vsub4` (excluding constant loads).
pub const VSUB4_LOWERED_COST: u32 = 7;

/// Saturating unsigned byte add (used by KV-cache quantization clamps).
#[inline]
#[must_use]
pub fn vadd4_sat_ref(a: u32, b: u32) -> u32 {
    lanewise2(a, b, u8::saturating_add)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{InstrClass, InstrCount};
    use crate::lanes::u8x4_to_u32;

    #[test]
    fn lowered_add_matches_reference_on_samples() {
        let cases = [
            (0u32, 0u32),
            (0xFFFF_FFFF, 0x0101_0101),
            (0x7F7F_7F7F, 0x7F7F_7F7F),
            (0x8080_8080, 0x8080_8080),
            (0x1234_5678, 0xFEDC_BA98),
        ];
        for (a, b) in cases {
            let mut alu = CountingAlu::default();
            assert_eq!(
                vadd4_lowered(&mut alu, a, b),
                vadd4_ref(a, b),
                "a={a:08x} b={b:08x}"
            );
        }
    }

    #[test]
    fn lowered_sub_matches_reference_on_samples() {
        let cases = [
            (0u32, 0u32),
            (0x0000_0000, 0x0101_0101),
            (0xFF00_FF00, 0x0102_0304),
            (0x8080_8080, 0x7F7F_7F7F),
            (0x1234_5678, 0xFEDC_BA98),
        ];
        for (a, b) in cases {
            let mut alu = CountingAlu::default();
            assert_eq!(
                vsub4_lowered(&mut alu, a, b),
                vsub4_ref(a, b),
                "a={a:08x} b={b:08x}"
            );
        }
    }

    #[test]
    fn lowered_add_exhaustive_single_lane_pairs() {
        // Exhaustive over one lane (others held at stress values) proves
        // lane independence of the carryless construction.
        for x in 0..=255u8 {
            for y in [0u8, 1, 127, 128, 200, 255] {
                let a = u8x4_to_u32([x, 255, 0, 128]);
                let b = u8x4_to_u32([y, 255, 255, 128]);
                let mut alu = CountingAlu::default();
                assert_eq!(vadd4_lowered(&mut alu, a, b), vadd4_ref(a, b));
                let mut alu = CountingAlu::default();
                assert_eq!(vsub4_lowered(&mut alu, a, b), vsub4_ref(a, b));
            }
        }
    }

    #[test]
    fn lowered_costs_match_constants() {
        let mut alu = CountingAlu::default();
        let _ = vadd4_lowered(&mut alu, 0xDEAD_BEEF, 0x0BAD_F00D);
        assert_eq!(alu.count().total(), VADD4_LOWERED_COST as u64);
        let mut alu = CountingAlu::default();
        let _ = vsub4_lowered(&mut alu, 0xDEAD_BEEF, 0x0BAD_F00D);
        assert_eq!(alu.count().total(), VSUB4_LOWERED_COST as u64);
    }

    #[test]
    fn lowered_cost_classes_are_all_cuda_core_ops() {
        let mut alu = CountingAlu::default();
        let _ = vadd4_lowered(&mut alu, 1, 2);
        let c: &InstrCount = alu.count();
        assert_eq!(
            c.of(InstrClass::Logic) + c.of(InstrClass::ArithAdd),
            c.total()
        );
    }

    #[test]
    fn saturating_add_clamps() {
        let a = u8x4_to_u32([250, 10, 0, 128]);
        let b = u8x4_to_u32([10, 10, 0, 128]);
        assert_eq!(vadd4_sat_ref(a, b), u8x4_to_u32([255, 20, 0, 255]));
    }
}
