//! Emulation of the native GPU integer instructions used by both
//! dequantization paths.
//!
//! Each function models one PTX/SASS instruction with **unit cost** on the
//! CUDA-core integer pipe. The LiquidQuant fast path uses only [`imad_u32`]
//! and plain XOR; the QServe path additionally needs [`prmt`]/[`lop3`] for
//! unpacking and an *emulated* byte-wise add (see [`crate::vadd`]).
//!
//! All arithmetic is wrapping, matching GPU register semantics.

/// 32-bit integer multiply-add: `a * b + c` with wrap-around, one `IMAD`.
///
/// This single instruction performs LiquidQuant's per-register
/// `Q_u4x4 * s_u8 + a_packed` step for four lanes at once. It is safe to
/// use a full 32-bit multiply for four independent byte lanes **only
/// when no lane product or sum can carry into the next lane** — exactly
/// the invariant LiquidQuant's shifted quantization guarantees
/// (`Q_u4·s_u8 ≤ 240` and `Q̂_u8 + a ≤ 255`; see `lq-quant::lqq`).
#[inline(always)]
#[must_use]
pub const fn imad_u32(a: u32, b: u32, c: u32) -> u32 {
    a.wrapping_mul(b).wrapping_add(c)
}

/// Convenience struct bundling the two constants of the LQQ fast path.
///
/// `scale` is the per-group `s_u8` (an integer ≤ 16) and `offset` is the
/// lane-replicated `a = 2^7 + min(Q_i8)` from Equation 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Imad {
    /// Multiplier applied to every lane (no lane replication needed: the
    /// lanes never carry, so a scalar 32-bit multiplier works).
    pub scale: u32,
    /// Per-lane additive offset, already replicated into all four lanes.
    pub offset: u32,
}

impl Imad {
    /// Execute the fused multiply-add on one packed register (one `IMAD`).
    #[inline(always)]
    #[must_use]
    pub const fn apply(self, w: u32) -> u32 {
        imad_u32(w, self.scale, self.offset)
    }
}

/// PTX `PRMT`: byte permute of the 8-byte value `{b,a}` selected by the
/// low 4 bits of each selector nibble in `sel`.
///
/// Byte `i` of the result is chosen by nibble `i` of `sel`:
/// values 0–3 select bytes of `a` (LSB first), 4–7 select bytes of `b`.
/// The "sign/replicate" mode (selector bit 3 with MSB replication) is not
/// modelled because neither dequantization path uses it.
#[inline]
#[must_use]
pub const fn prmt(a: u32, b: u32, sel: u32) -> u32 {
    let src = ((b as u64) << 32) | a as u64;
    let mut out = 0u32;
    let mut i = 0;
    while i < 4 {
        let nib = (sel >> (4 * i)) & 0x7;
        let byte = ((src >> (8 * nib)) & 0xFF) as u32;
        out |= byte << (8 * i);
        i += 1;
    }
    out
}

/// PTX `LOP3.LUT`: arbitrary three-input bitwise logic, one instruction.
///
/// `lut` is the 8-bit truth table: output bit = bit
/// `(a_bit << 2) | (b_bit << 1) | c_bit` of `lut`.
#[inline]
#[must_use]
pub const fn lop3(a: u32, b: u32, c: u32, lut: u8) -> u32 {
    // Expand the truth table by Shannon decomposition: for each of the 8
    // minterms, OR in the mask of positions matching that minterm.
    let mut out = 0u32;
    let mut m = 0;
    while m < 8 {
        if (lut >> m) & 1 == 1 {
            let am = if m & 4 != 0 { a } else { !a };
            let bm = if m & 2 != 0 { b } else { !b };
            let cm = if m & 1 != 0 { c } else { !c };
            out |= am & bm & cm;
        }
        m += 1;
    }
    out
}

/// Truth-table constant for `(a & b) | c` — the `LOP3` used in the
/// classic interleaved 4-bit unpack (`(w >> s & 0x0F0F0F0F) | magic`).
pub const LOP3_AND_OR: u8 = 0xEA;

/// PTX `BFE.U32`: extract `len` bits of `v` starting at bit `pos`,
/// zero-extended. One instruction on the integer pipe.
#[inline]
#[must_use]
pub const fn bfe_u32(v: u32, pos: u32, len: u32) -> u32 {
    if len == 0 {
        return 0;
    }
    if len >= 32 {
        return v >> (pos & 31);
    }
    (v >> pos) & ((1u32 << len) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::{u32_to_u8x4, u8x4_to_u32};

    #[test]
    fn imad_is_mul_add() {
        assert_eq!(imad_u32(3, 5, 7), 22);
        assert_eq!(
            imad_u32(u32::MAX, 2, 3),
            u32::MAX.wrapping_mul(2).wrapping_add(3)
        );
    }

    #[test]
    fn imad_acts_lanewise_when_no_carry() {
        // Lanes 0..=14, scale 16 (the LQQ maximum), offsets ≤ 15:
        // every lane result ≤ 240 + 15 = 255, so the 32-bit IMAD result
        // must equal the per-lane computation.
        let w = u8x4_to_u32([0, 5, 9, 14]);
        let offs = u8x4_to_u32([1, 2, 3, 15]);
        let got = Imad {
            scale: 16,
            offset: offs,
        }
        .apply(w);
        assert_eq!(u32_to_u8x4(got), [1, 82, 147, 239]);
    }

    #[test]
    fn prmt_identity_and_swap() {
        let a = 0x4433_2211;
        let b = 0x8877_6655;
        // Identity: select bytes 0,1,2,3 of a.
        assert_eq!(prmt(a, b, 0x3210), a);
        // All from b: bytes 4..7.
        assert_eq!(prmt(a, b, 0x7654), b);
        // Reverse a.
        assert_eq!(prmt(a, b, 0x0123), 0x1122_3344);
        // Interleave: a0,b0,a1,b1.
        assert_eq!(prmt(a, b, 0x5140), 0x6622_5511);
    }

    #[test]
    fn lop3_reproduces_basic_gates() {
        let (a, b, c) = (0xF0F0_F0F0u32, 0xCCCC_CCCCu32, 0xAAAA_AAAAu32);
        // and3 = lut 0b1000_0000
        assert_eq!(lop3(a, b, c, 0x80), a & b & c);
        // or3 = lut with every minterm except 000
        assert_eq!(lop3(a, b, c, 0xFE), a | b | c);
        // xor3 = parity minterms
        assert_eq!(lop3(a, b, c, 0b1001_0110), a ^ b ^ c);
        // (a & b) | c
        assert_eq!(lop3(a, b, c, 0xEA), (a & b) | c);
    }

    #[test]
    fn lop3_exhaustive_truth_tables_on_single_bits() {
        // For single-bit inputs, lop3 must reproduce its own truth table.
        for lut in 0..=255u8 {
            for m in 0..8u32 {
                let a = if m & 4 != 0 { 1u32 } else { 0 };
                let b = if m & 2 != 0 { 1 } else { 0 };
                let c = if m & 1 != 0 { 1 } else { 0 };
                let want = ((lut >> m) & 1) as u32;
                assert_eq!(lop3(a, b, c, lut) & 1, want, "lut={lut:02x} m={m}");
            }
        }
    }

    #[test]
    fn bfe_extracts_fields() {
        let v = 0xABCD_1234u32;
        assert_eq!(bfe_u32(v, 0, 4), 0x4);
        assert_eq!(bfe_u32(v, 4, 4), 0x3);
        assert_eq!(bfe_u32(v, 16, 8), 0xCD);
        assert_eq!(bfe_u32(v, 28, 4), 0xA);
        assert_eq!(bfe_u32(v, 0, 32), v);
        assert_eq!(bfe_u32(v, 0, 0), 0);
    }
}
