//! Instruction accounting for dequantization paths.
//!
//! The paper's Section 3.3 derives a hard budget: to hide dequantization
//! behind weight loading on H100, the per-element instruction cost must
//! satisfy **α ≤ 5.07** (memory-bound) or **α ≤ 5.05** (compute-bound at
//! M = 150). [`CountingAlu`] executes the emulated register ops while
//! tallying them, letting tests and the `tab_dequant_cost` harness verify
//! each path's α directly instead of trusting hand counts.

use std::fmt;

/// Classes of CUDA-core instructions we track.
///
/// All classes issue on the same integer pipe at (approximately) the same
/// rate, so the cost model only needs the total; classes exist so the
/// audit table can show *why* a path is expensive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// 32-bit add/sub.
    ArithAdd,
    /// 32-bit integer multiply-add (`IMAD`). One instruction, fused.
    Imad,
    /// Bitwise logic (`AND`/`OR`/`XOR`/`NOT`, `LOP3`).
    Logic,
    /// Shifts (`SHR`/`SHL`).
    Shift,
    /// Byte permute (`PRMT`).
    Prmt,
    /// Bit-field extract (`BFE`).
    Bfe,
}

impl InstrClass {
    /// All tracked classes, in display order.
    pub const ALL: [InstrClass; 6] = [
        InstrClass::ArithAdd,
        InstrClass::Imad,
        InstrClass::Logic,
        InstrClass::Shift,
        InstrClass::Prmt,
        InstrClass::Bfe,
    ];

    fn index(self) -> usize {
        match self {
            InstrClass::ArithAdd => 0,
            InstrClass::Imad => 1,
            InstrClass::Logic => 2,
            InstrClass::Shift => 3,
            InstrClass::Prmt => 4,
            InstrClass::Bfe => 5,
        }
    }

    /// Short mnemonic for tables.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            InstrClass::ArithAdd => "IADD",
            InstrClass::Imad => "IMAD",
            InstrClass::Logic => "LOP",
            InstrClass::Shift => "SHF",
            InstrClass::Prmt => "PRMT",
            InstrClass::Bfe => "BFE",
        }
    }
}

/// Tally of instructions by class.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct InstrCount {
    counts: [u64; 6],
}

impl InstrCount {
    /// Count for one class.
    #[must_use]
    pub fn of(&self, c: InstrClass) -> u64 {
        self.counts[c.index()]
    }

    /// Total instructions across all classes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Record one instruction of class `c`.
    pub fn bump(&mut self, c: InstrClass) {
        self.counts[c.index()] += 1;
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &InstrCount) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Instructions per element given `n` elements processed.
    #[must_use]
    pub fn alpha(&self, n: u64) -> f64 {
        assert!(n > 0, "alpha over zero elements");
        self.total() as f64 / n as f64
    }
}

impl fmt::Display for InstrCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in InstrClass::ALL {
            let n = self.of(c);
            if n > 0 {
                if !first {
                    write!(f, " + ")?;
                }
                write!(f, "{}×{}", n, c.mnemonic())?;
                first = false;
            }
        }
        if first {
            write!(f, "0 instructions")?;
        }
        Ok(())
    }
}

/// An ALU that executes the emulated register ops while counting them.
///
/// Only operations routed through this struct are charged; pure-Rust
/// glue (loop counters, packing for tests) is free, mirroring how the
/// paper counts only the SASS instructions in the dequant sequence.
#[derive(Debug, Default, Clone)]
pub struct CountingAlu {
    count: InstrCount,
}

impl CountingAlu {
    /// Fresh ALU with a zero tally.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated tally.
    #[must_use]
    pub fn count(&self) -> &InstrCount {
        &self.count
    }

    /// Reset the tally to zero.
    pub fn reset(&mut self) {
        self.count = InstrCount::default();
    }

    /// Wrapping 32-bit add (1 × IADD).
    #[inline]
    pub fn add(&mut self, a: u32, b: u32) -> u32 {
        self.count.bump(InstrClass::ArithAdd);
        a.wrapping_add(b)
    }

    /// Wrapping 32-bit sub (1 × IADD — subtract issues on the add pipe).
    #[inline]
    pub fn sub(&mut self, a: u32, b: u32) -> u32 {
        self.count.bump(InstrClass::ArithAdd);
        a.wrapping_sub(b)
    }

    /// Fused multiply-add (1 × IMAD).
    #[inline]
    pub fn imad(&mut self, a: u32, b: u32, c: u32) -> u32 {
        self.count.bump(InstrClass::Imad);
        crate::ops::imad_u32(a, b, c)
    }

    /// Bitwise AND (1 × LOP).
    #[inline]
    pub fn and(&mut self, a: u32, b: u32) -> u32 {
        self.count.bump(InstrClass::Logic);
        a & b
    }

    /// Bitwise OR (1 × LOP).
    #[inline]
    pub fn or(&mut self, a: u32, b: u32) -> u32 {
        self.count.bump(InstrClass::Logic);
        a | b
    }

    /// Bitwise XOR (1 × LOP).
    #[inline]
    pub fn xor(&mut self, a: u32, b: u32) -> u32 {
        self.count.bump(InstrClass::Logic);
        a ^ b
    }

    /// Bitwise NOT (1 × LOP).
    #[inline]
    pub fn not(&mut self, a: u32) -> u32 {
        self.count.bump(InstrClass::Logic);
        !a
    }

    /// Three-input logic (1 × LOP — `LOP3.LUT` is a single instruction).
    #[inline]
    pub fn lop3(&mut self, a: u32, b: u32, c: u32, lut: u8) -> u32 {
        self.count.bump(InstrClass::Logic);
        crate::ops::lop3(a, b, c, lut)
    }

    /// Logical shift right (1 × SHF).
    #[inline]
    pub fn shr(&mut self, a: u32, n: u32) -> u32 {
        self.count.bump(InstrClass::Shift);
        a >> n
    }

    /// Logical shift left (1 × SHF).
    #[inline]
    pub fn shl(&mut self, a: u32, n: u32) -> u32 {
        self.count.bump(InstrClass::Shift);
        a << n
    }

    /// Byte permute (1 × PRMT).
    #[inline]
    pub fn prmt(&mut self, a: u32, b: u32, sel: u32) -> u32 {
        self.count.bump(InstrClass::Prmt);
        crate::ops::prmt(a, b, sel)
    }

    /// Bit-field extract (1 × BFE).
    #[inline]
    pub fn bfe(&mut self, v: u32, pos: u32, len: u32) -> u32 {
        self.count.bump(InstrClass::Bfe);
        crate::ops::bfe_u32(v, pos, len)
    }
}

/// Static instruction budgets per dequantization path, for the audit
/// table (`tab_dequant_cost`). Values are asserted against live
/// [`CountingAlu`] runs in `lq-quant`'s tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathBudget {
    /// Human-readable path name.
    pub name: &'static str,
    /// Instructions per 8 dequantized elements (one packed register).
    pub instrs_per_8: u32,
    /// α = instructions per element.
    pub alpha: f64,
}

/// LiquidQuant fast path: 3 (unpack) + 2 × (IMAD + XOR) = 7 per 8 elements.
pub const LQQ_BUDGET: PathBudget = PathBudget {
    name: "LiquidQuant (IMAD+XOR)",
    instrs_per_8: 7,
    alpha: 7.0 / 8.0,
};

/// QServe QoQ path: 3 (unpack) + 2 × (IMAD + lowered vsub4[7]) = 19 per 8.
pub const QOQ_BUDGET: PathBudget = PathBudget {
    name: "QServe QoQ (vadd-emulated)",
    instrs_per_8: 19,
    alpha: 19.0 / 8.0,
};

/// The paper's overlap threshold on H100 in the memory-bound regime.
pub const ALPHA_MEMORY_BOUND_H100: f64 = 5.07;
/// The paper's overlap threshold on H100 in the compute-bound regime (M = 150).
pub const ALPHA_COMPUTE_BOUND_H100: f64 = 5.05;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_alu_tallies_every_class() {
        let mut alu = CountingAlu::new();
        let _ = alu.add(1, 2);
        let _ = alu.sub(5, 3);
        let _ = alu.imad(2, 3, 4);
        let _ = alu.and(1, 1);
        let _ = alu.or(1, 2);
        let _ = alu.xor(3, 1);
        let _ = alu.not(0);
        let _ = alu.lop3(1, 2, 3, 0x80);
        let _ = alu.shr(8, 1);
        let _ = alu.shl(1, 3);
        let _ = alu.prmt(1, 2, 0x3210);
        let _ = alu.bfe(0xFF, 0, 4);
        let c = alu.count();
        assert_eq!(c.of(InstrClass::ArithAdd), 2);
        assert_eq!(c.of(InstrClass::Imad), 1);
        assert_eq!(c.of(InstrClass::Logic), 5);
        assert_eq!(c.of(InstrClass::Shift), 2);
        assert_eq!(c.of(InstrClass::Prmt), 1);
        assert_eq!(c.of(InstrClass::Bfe), 1);
        assert_eq!(c.total(), 12);
    }

    #[test]
    fn alu_ops_compute_correctly() {
        let mut alu = CountingAlu::new();
        assert_eq!(alu.add(u32::MAX, 1), 0);
        assert_eq!(alu.sub(0, 1), u32::MAX);
        assert_eq!(alu.imad(3, 4, 5), 17);
        assert_eq!(alu.and(0xFF00, 0x0FF0), 0x0F00);
        assert_eq!(alu.or(0xF0, 0x0F), 0xFF);
        assert_eq!(alu.xor(0xFF, 0x0F), 0xF0);
        assert_eq!(alu.not(0), u32::MAX);
        assert_eq!(alu.shr(0x100, 4), 0x10);
        assert_eq!(alu.shl(0x1, 4), 0x10);
    }

    #[test]
    fn merge_and_alpha() {
        let mut a = InstrCount::default();
        a.bump(InstrClass::Imad);
        a.bump(InstrClass::Logic);
        let mut b = InstrCount::default();
        b.bump(InstrClass::Imad);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert!((a.alpha(8) - 0.375).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the claim under test
    fn budgets_respect_paper_thresholds() {
        // LiquidQuant's α must be below both overlap thresholds;
        // QoQ's α alone does not exceed them, but with address arithmetic
        // and the activation path it does — the audit table quantifies
        // headroom, which is ~5.8x larger for LQQ.
        assert!(LQQ_BUDGET.alpha < ALPHA_COMPUTE_BOUND_H100);
        assert!(LQQ_BUDGET.alpha < ALPHA_MEMORY_BOUND_H100);
        assert!(QOQ_BUDGET.alpha > 2.0 * LQQ_BUDGET.alpha);
        assert_eq!(LQQ_BUDGET.instrs_per_8, 7);
        assert_eq!(QOQ_BUDGET.instrs_per_8, 19);
    }

    #[test]
    fn display_formats_nonzero_classes() {
        let mut c = InstrCount::default();
        c.bump(InstrClass::Imad);
        c.bump(InstrClass::Logic);
        c.bump(InstrClass::Logic);
        let s = c.to_string();
        assert!(s.contains("1×IMAD"), "{s}");
        assert!(s.contains("2×LOP"), "{s}");
        assert_eq!(InstrCount::default().to_string(), "0 instructions");
    }

    #[test]
    #[should_panic(expected = "alpha over zero elements")]
    fn alpha_zero_elements_panics() {
        let _ = InstrCount::default().alpha(0);
    }
}
