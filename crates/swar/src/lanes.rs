//! Byte-lane views of a 32-bit register.
//!
//! GPU register-level parallelism packs four 8-bit elements into one
//! 32-bit register. Lane 0 is the least-significant byte, matching both
//! little-endian CUDA register semantics and the layout produced by
//! `LDS.128` loads of consecutive bytes.
//!
//! The paper's "sweet dequantization" (Section 4) leans on one fact about
//! two's complement: an `i8` value `i` and a `u8` value `j` have the same
//! bit pattern iff `i ≡ j (mod 2^8)`. [`u8_as_i8`] / [`i8_as_u8`] make
//! that reinterpretation explicit so kernels never cast implicitly.

/// Pack four unsigned byte lanes into a `u32` (lane 0 = LSB).
#[inline(always)]
#[must_use]
pub const fn u8x4_to_u32(lanes: [u8; 4]) -> u32 {
    u32::from_le_bytes(lanes)
}

/// Unpack a `u32` into four unsigned byte lanes (lane 0 = LSB).
#[inline(always)]
#[must_use]
pub const fn u32_to_u8x4(r: u32) -> [u8; 4] {
    r.to_le_bytes()
}

/// Pack four signed byte lanes into a `u32` via two's-complement bits.
#[inline(always)]
#[must_use]
pub const fn i8x4_to_u32(lanes: [i8; 4]) -> u32 {
    u32::from_le_bytes([
        lanes[0] as u8,
        lanes[1] as u8,
        lanes[2] as u8,
        lanes[3] as u8,
    ])
}

/// Unpack a `u32` into four signed byte lanes via two's-complement bits.
#[inline(always)]
#[must_use]
pub const fn u32_to_i8x4(r: u32) -> [i8; 4] {
    let b = r.to_le_bytes();
    [b[0] as i8, b[1] as i8, b[2] as i8, b[3] as i8]
}

/// Replicate one byte into all four lanes (e.g. `0x80` → `0x8080_8080`).
///
/// On the GPU this is free: the constant is materialised at compile time
/// or via a single `MOV`.
#[inline(always)]
#[must_use]
pub const fn broadcast_u8(b: u8) -> u32 {
    (b as u32) * 0x0101_0101
}

/// Reinterpret a `u8` bit pattern as `i8` (mod-2^8 equivalence).
#[inline(always)]
#[must_use]
pub const fn u8_as_i8(v: u8) -> i8 {
    v as i8
}

/// Reinterpret an `i8` bit pattern as `u8` (mod-2^8 equivalence).
#[inline(always)]
#[must_use]
pub const fn i8_as_u8(v: i8) -> u8 {
    v as u8
}

/// True iff the signed value `i` and the unsigned value `j` share one
/// byte-level bit pattern, i.e. `i ≡ j (mod 2^8)`.
///
/// This is the congruence the paper's Equation 9 manipulates.
#[inline]
#[must_use]
pub const fn same_bits_mod256(i: i16, j: u16) -> bool {
    (i as u16) & 0xFF == j & 0xFF
}

/// Apply a per-lane function to two packed registers (semantic reference
/// used by tests; not a modelled hardware instruction).
#[inline]
#[must_use]
pub fn lanewise2(a: u32, b: u32, f: impl Fn(u8, u8) -> u8) -> u32 {
    let (a, b) = (u32_to_u8x4(a), u32_to_u8x4(b));
    u8x4_to_u32([f(a[0], b[0]), f(a[1], b[1]), f(a[2], b[2]), f(a[3], b[3])])
}

/// Apply a per-lane function to one packed register (semantic reference).
#[inline]
#[must_use]
pub fn lanewise1(a: u32, f: impl Fn(u8) -> u8) -> u32 {
    let a = u32_to_u8x4(a);
    u8x4_to_u32([f(a[0]), f(a[1]), f(a[2]), f(a[3])])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip_u8() {
        let lanes = [0x12u8, 0x34, 0x56, 0x78];
        assert_eq!(u32_to_u8x4(u8x4_to_u32(lanes)), lanes);
        assert_eq!(u8x4_to_u32(lanes), 0x7856_3412);
    }

    #[test]
    fn pack_unpack_roundtrip_i8() {
        let lanes = [-1i8, 127, -128, 0];
        assert_eq!(u32_to_i8x4(i8x4_to_u32(lanes)), lanes);
    }

    #[test]
    fn signed_unsigned_views_share_bits() {
        // -3 and 253 share the pattern 1111_1101 (paper's example).
        assert_eq!(i8_as_u8(-3), 253);
        assert_eq!(u8_as_i8(253), -3);
        assert!(same_bits_mod256(-3, 253));
        assert!(!same_bits_mod256(-3, 252));
    }

    #[test]
    fn signed_unsigned_exhaustive_mod256() {
        for j in 0..=255u8 {
            let i = u8_as_i8(j);
            assert!(same_bits_mod256(i as i16, j as u16));
            assert_eq!(i8_as_u8(i), j);
        }
    }

    #[test]
    fn broadcast_replicates() {
        assert_eq!(broadcast_u8(0x80), 0x8080_8080);
        assert_eq!(broadcast_u8(0x00), 0);
        assert_eq!(broadcast_u8(0xFF), 0xFFFF_FFFF);
        assert_eq!(u32_to_u8x4(broadcast_u8(0x2A)), [0x2A; 4]);
    }

    #[test]
    fn lanewise_matches_manual() {
        let a = u8x4_to_u32([1, 2, 3, 4]);
        let b = u8x4_to_u32([10, 20, 30, 40]);
        let sum = lanewise2(a, b, |x, y| x.wrapping_add(y));
        assert_eq!(u32_to_u8x4(sum), [11, 22, 33, 44]);
        let neg = lanewise1(a, |x| x.wrapping_neg());
        assert_eq!(u32_to_u8x4(neg), [255, 254, 253, 252]);
    }

    #[test]
    fn paper_example_binary_patterns() {
        // Q_u8 = 225 = 1110_0001, min(Q_i8) = -104 = 1001_1000.
        assert_eq!(225u8, 0b1110_0001);
        assert_eq!(i8_as_u8(-104), 0b1001_1000);
        // Their 9-bit sum overflows u8: 225 + 152 = 377 > 255.
        assert!(225u16 + i8_as_u8(-104) as u16 > 255);
        // But mod 2^8 the wrapped result equals the expected 121.
        assert_eq!(225u8.wrapping_add(i8_as_u8(-104)), 121);
    }
}
