//! Randomized property tests for the SWAR register emulation (seeded
//! in-tree PRNG; offline sandbox has no proptest).

use lq_rng::Rng;
use lq_swar::audit::CountingAlu;
use lq_swar::lanes::{i8x4_to_u32, u32_to_i8x4, u32_to_u8x4, u8x4_to_u32};
use lq_swar::ops::{bfe_u32, imad_u32, lop3, prmt};
use lq_swar::unpack::{nibble, pack8_u4, unpack8_u4_to_2xu8x4};
use lq_swar::vadd::{vadd4_lowered, vadd4_ref, vsub4_lowered, vsub4_ref};

const CASES: usize = 256;

/// Packed-lane round trips are lossless for all bit patterns.
#[test]
fn lanes_roundtrip() {
    let mut rng = Rng::new(0x54A6_0001);
    for _ in 0..CASES {
        let r = rng.next_u32();
        assert_eq!(u8x4_to_u32(u32_to_u8x4(r)), r);
        assert_eq!(i8x4_to_u32(u32_to_i8x4(r)), r);
    }
}

/// The lowered (carryless) vadd4 equals the per-lane reference for
/// every pair of registers.
#[test]
fn vadd4_lowering_correct() {
    let mut rng = Rng::new(0x54A6_0002);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u32(), rng.next_u32());
        let mut alu = CountingAlu::new();
        assert_eq!(vadd4_lowered(&mut alu, a, b), vadd4_ref(a, b));
        assert_eq!(alu.count().total(), 7);
    }
}

/// The lowered vsub4 equals the per-lane reference for every pair.
#[test]
fn vsub4_lowering_correct() {
    let mut rng = Rng::new(0x54A6_0003);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u32(), rng.next_u32());
        let mut alu = CountingAlu::new();
        assert_eq!(vsub4_lowered(&mut alu, a, b), vsub4_ref(a, b));
        assert_eq!(alu.count().total(), 7);
    }
}

/// vadd4 then vsub4 of the same operand is the identity.
#[test]
fn vadd_vsub_inverse() {
    let mut rng = Rng::new(0x54A6_0004);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u32(), rng.next_u32());
        assert_eq!(vsub4_ref(vadd4_ref(a, b), b), a);
    }
}

/// Unpack agrees with the scalar nibble oracle for all registers.
#[test]
fn unpack_matches_nibbles() {
    let mut rng = Rng::new(0x54A6_0005);
    for _ in 0..CASES {
        let w = rng.next_u32();
        let mut alu = CountingAlu::new();
        let u = unpack8_u4_to_2xu8x4(&mut alu, w);
        let lo = u32_to_u8x4(u.lo);
        let hi = u32_to_u8x4(u.hi);
        for k in 0..4u32 {
            assert_eq!(lo[k as usize], nibble(w, 2 * k));
            assert_eq!(hi[k as usize], nibble(w, 2 * k + 1));
        }
    }
}

/// pack8_u4 is the left inverse of nibble extraction.
#[test]
fn pack8_nibble_roundtrip() {
    let mut rng = Rng::new(0x54A6_0006);
    for _ in 0..CASES {
        let vals: [u8; 8] = std::array::from_fn(|_| rng.below(16) as u8);
        let w = pack8_u4(vals);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(nibble(w, i as u32), *v);
        }
    }
}

/// IMAD acts lane-wise whenever the per-lane no-carry precondition
/// holds (lanes < 16, scale ≤ 16, per-lane offset such that
/// lane*scale + offset ≤ 255) — the LiquidQuant invariant.
#[test]
fn imad_lanewise_under_lqq_invariant() {
    let mut rng = Rng::new(0x54A6_0007);
    for _ in 0..CASES {
        let lanes: [u8; 4] = std::array::from_fn(|_| rng.below(16) as u8);
        let scale = rng.range_u64(1, 17) as u32;
        let offs: [u8; 4] = std::array::from_fn(|_| rng.below(16) as u8);
        let w = u8x4_to_u32(lanes);
        let o = u8x4_to_u32(offs);
        let r = u32_to_u8x4(imad_u32(w, scale, o));
        for i in 0..4 {
            let want = lanes[i] as u32 * scale + offs[i] as u32;
            assert!(want <= 255);
            assert_eq!(r[i] as u32, want);
        }
    }
}

/// PRMT with the identity selector is the identity; with 0x7654 it
/// selects the second operand.
#[test]
fn prmt_selectors() {
    let mut rng = Rng::new(0x54A6_0008);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u32(), rng.next_u32());
        assert_eq!(prmt(a, b, 0x3210), a);
        assert_eq!(prmt(a, b, 0x7654), b);
    }
}

/// BFE composes with shift+mask.
#[test]
fn bfe_matches_shift_mask() {
    let mut rng = Rng::new(0x54A6_0009);
    for _ in 0..CASES {
        let v = rng.next_u32();
        let pos = rng.below(32) as u32;
        let len = rng.range_u64(1, 17) as u32;
        let want = (v >> pos) & ((1u32 << len) - 1);
        assert_eq!(bfe_u32(v, pos, len), want);
    }
}

/// LOP3 with the (a&b)|c table matches the expression.
#[test]
fn lop3_and_or() {
    let mut rng = Rng::new(0x54A6_000A);
    for _ in 0..CASES {
        let (a, b, c) = (rng.next_u32(), rng.next_u32(), rng.next_u32());
        assert_eq!(lop3(a, b, c, lq_swar::ops::LOP3_AND_OR), (a & b) | c);
    }
}
