//! INT8 per-channel static KV quantization and the paged KV store.
//!
//! Following the paper (Section 6, after TensorRT-LLM): K and V are
//! quantized to INT8 with **static per-channel scales** computed offline
//! from calibration, and stored in PagedAttention-style fixed-size
//! pages. The page *table* bookkeeping comes from
//! [`lq_serving::kvcache::PagedKvCache`]; this module owns the physical
//! frames holding the quantized values.

use lq_serving::kvcache::{KvCacheError, PagedKvCache, SeqId};

/// Static per-channel KV quantizer for one layer.
///
/// One scale per (kv_head, channel) pair, for K and V separately,
/// calibrated offline (here: from a provided absmax profile).
#[derive(Debug, Clone)]
pub struct KvQuantizer {
    /// Channels per token (kv_heads × head_dim).
    pub kv_dim: usize,
    /// K scales, length `kv_dim`.
    pub k_scales: Vec<f32>,
    /// V scales, length `kv_dim`.
    pub v_scales: Vec<f32>,
}

impl KvQuantizer {
    /// Build from calibration absmax profiles (`|K|max`, `|V|max` per
    /// channel). Zero absmax channels get scale 1 (values are zero).
    #[must_use]
    pub fn from_absmax(k_absmax: &[f32], v_absmax: &[f32]) -> Self {
        assert_eq!(k_absmax.len(), v_absmax.len());
        let to_scale = |m: &f32| if *m > 0.0 { *m / 127.0 } else { 1.0 };
        Self {
            kv_dim: k_absmax.len(),
            k_scales: k_absmax.iter().map(to_scale).collect(),
            v_scales: v_absmax.iter().map(to_scale).collect(),
        }
    }

    /// Uniform calibration (every channel expects `absmax`).
    #[must_use]
    pub fn uniform(kv_dim: usize, absmax: f32) -> Self {
        Self::from_absmax(&vec![absmax; kv_dim], &vec![absmax; kv_dim])
    }

    /// Quantize one K vector into `out` (saturating).
    pub fn quantize_k(&self, k: &[f32], out: &mut [i8]) {
        quantize_static(k, &self.k_scales, out);
    }

    /// Quantize one V vector into `out` (saturating).
    pub fn quantize_v(&self, v: &[f32], out: &mut [i8]) {
        quantize_static(v, &self.v_scales, out);
    }
}

fn quantize_static(x: &[f32], scales: &[f32], out: &mut [i8]) {
    assert_eq!(x.len(), scales.len());
    assert_eq!(x.len(), out.len());
    for ((o, &v), &s) in out.iter_mut().zip(x.iter()).zip(scales.iter()) {
        *o = (v / s).round().clamp(-127.0, 127.0) as i8;
    }
}

/// Physical paged storage of INT8 K/V for one layer.
///
/// Page frames are indexed by the page ids handed out by the
/// [`PagedKvCache`] page-table allocator, so the two stay consistent by
/// construction.
#[derive(Debug)]
pub struct PagedKvStore {
    /// Page-table allocator (token counts, page ids, OOM policy).
    pub table: PagedKvCache,
    page_tokens: usize,
    kv_dim: usize,
    /// K frames: `total_pages × page_tokens × kv_dim` INT8.
    k_frames: Vec<i8>,
    /// V frames, same shape.
    v_frames: Vec<i8>,
    /// The layer's quantizer.
    pub quant: KvQuantizer,
}

impl PagedKvStore {
    /// Build a store with capacity for `total_pages` pages of
    /// `page_tokens` tokens each.
    #[must_use]
    pub fn new(total_pages: usize, page_tokens: usize, quant: KvQuantizer) -> Self {
        let kv_dim = quant.kv_dim;
        // 2 bytes per value-pair (K and V, INT8 each).
        let budget = (total_pages * page_tokens * kv_dim * 2) as u64;
        let table = PagedKvCache::new(budget, page_tokens, kv_dim * 2);
        let frames = total_pages * page_tokens * kv_dim;
        Self {
            table,
            page_tokens,
            kv_dim,
            k_frames: vec![0i8; frames],
            v_frames: vec![0i8; frames],
            quant,
        }
    }

    /// Register a sequence with no tokens yet.
    pub fn add_sequence(&mut self, id: SeqId) -> Result<(), KvCacheError> {
        self.table.add_sequence(id, 0)
    }

    /// Append one token's K/V (f32, length `kv_dim` each), quantizing
    /// into the page frame. Returns the token's position.
    pub fn append(&mut self, id: SeqId, k: &[f32], v: &[f32]) -> Result<usize, KvCacheError> {
        assert_eq!(k.len(), self.kv_dim);
        assert_eq!(v.len(), self.kv_dim);
        let pos = self.table.tokens_of(id)?;
        self.table.append_token(id)?;
        let pages = self.table.page_table(id).expect("sequence exists");
        let page = pages[pos / self.page_tokens] as usize;
        let slot = pos % self.page_tokens;
        let off = (page * self.page_tokens + slot) * self.kv_dim;
        self.quant
            .quantize_k(k, &mut self.k_frames[off..off + self.kv_dim]);
        self.quant
            .quantize_v(v, &mut self.v_frames[off..off + self.kv_dim]);
        Ok(pos)
    }

    /// Number of cached tokens for a sequence.
    pub fn len_of(&self, id: SeqId) -> Result<usize, KvCacheError> {
        self.table.tokens_of(id)
    }

    /// Quantized K of token `pos` of sequence `id`.
    pub fn k_at(&self, id: SeqId, pos: usize) -> Result<&[i8], KvCacheError> {
        let off = self.offset_of(id, pos)?;
        Ok(&self.k_frames[off..off + self.kv_dim])
    }

    /// Quantized V of token `pos` of sequence `id`.
    pub fn v_at(&self, id: SeqId, pos: usize) -> Result<&[i8], KvCacheError> {
        let off = self.offset_of(id, pos)?;
        Ok(&self.v_frames[off..off + self.kv_dim])
    }

    /// Drop a sequence and recycle its pages (frames are reused as-is —
    /// stale data is unreachable through the page table).
    pub fn free_sequence(&mut self, id: SeqId) -> Result<(), KvCacheError> {
        self.table.free_sequence(id)
    }

    /// Channels per token.
    #[must_use]
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    fn offset_of(&self, id: SeqId, pos: usize) -> Result<usize, KvCacheError> {
        let tokens = self.table.tokens_of(id)?;
        assert!(pos < tokens, "token {pos} beyond cached length {tokens}");
        let pages = self.table.page_table(id)?;
        let page = pages[pos / self.page_tokens] as usize;
        Ok((page * self.page_tokens + pos % self.page_tokens) * self.kv_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_quantization_roundtrip() {
        let q = KvQuantizer::uniform(8, 4.0);
        let k: Vec<f32> = vec![-4.0, -2.0, -0.5, 0.0, 0.5, 1.0, 2.0, 4.0];
        let mut out = vec![0i8; 8];
        q.quantize_k(&k, &mut out);
        assert_eq!(out[0], -127);
        assert_eq!(out[7], 127);
        for (i, &code) in out.iter().enumerate() {
            let back = f32::from(code) * q.k_scales[i];
            assert!((back - k[i]).abs() <= q.k_scales[i] / 2.0 + 1e-6);
        }
    }

    #[test]
    fn per_channel_scales_adapt() {
        let q = KvQuantizer::from_absmax(&[1.0, 100.0], &[1.0, 1.0]);
        let mut out = vec![0i8; 2];
        q.quantize_k(&[1.0, 100.0], &mut out);
        assert_eq!(out, vec![127, 127]); // each channel at its own full scale
    }

    #[test]
    fn saturation_on_out_of_calibration_values() {
        let q = KvQuantizer::uniform(1, 1.0);
        let mut out = vec![0i8; 1];
        q.quantize_k(&[50.0], &mut out);
        assert_eq!(out[0], 127);
        q.quantize_k(&[-50.0], &mut out);
        assert_eq!(out[0], -127);
    }

    #[test]
    fn paged_store_append_and_readback() {
        let quant = KvQuantizer::uniform(4, 2.0);
        let mut store = PagedKvStore::new(8, 4, quant);
        store.add_sequence(1).unwrap();
        for t in 0..10 {
            let k: Vec<f32> = (0..4).map(|c| (t * 4 + c) as f32 * 0.1 - 1.0).collect();
            let v: Vec<f32> = k.iter().map(|x| -x).collect();
            let pos = store.append(1, &k, &v).unwrap();
            assert_eq!(pos, t);
        }
        assert_eq!(store.len_of(1).unwrap(), 10);
        // Read back token 6 (page 1, slot 2) and check dequantized values.
        let k6 = store.k_at(1, 6).unwrap();
        for (c, &code) in k6.iter().enumerate() {
            let want = (6 * 4 + c) as f32 * 0.1 - 1.0;
            let got = f32::from(code) * store.quant.k_scales[c];
            assert!((got - want).abs() < 0.02, "{got} vs {want}");
        }
        let v6 = store.v_at(1, 6).unwrap();
        assert!(v6
            .iter()
            .zip(k6.iter())
            .all(|(a, b)| *a == -*b || (*a + *b).abs() <= 1));
    }

    #[test]
    fn sequences_are_isolated_across_pages() {
        let quant = KvQuantizer::uniform(2, 1.0);
        let mut store = PagedKvStore::new(4, 2, quant);
        store.add_sequence(1).unwrap();
        store.add_sequence(2).unwrap();
        for t in 0..3 {
            store.append(1, &[0.5, 0.5], &[0.5, 0.5]).unwrap();
            store.append(2, &[-0.5, -0.5], &[-0.5, -0.5]).unwrap();
            let _ = t;
        }
        for pos in 0..3 {
            assert!(store.k_at(1, pos).unwrap().iter().all(|&c| c > 0));
            assert!(store.k_at(2, pos).unwrap().iter().all(|&c| c < 0));
        }
    }

    #[test]
    fn oom_propagates_from_page_table() {
        let quant = KvQuantizer::uniform(2, 1.0);
        let mut store = PagedKvStore::new(1, 2, quant);
        store.add_sequence(1).unwrap();
        store.append(1, &[0.0, 0.0], &[0.0, 0.0]).unwrap();
        store.append(1, &[0.0, 0.0], &[0.0, 0.0]).unwrap();
        assert_eq!(
            store.append(1, &[0.0, 0.0], &[0.0, 0.0]),
            Err(KvCacheError::OutOfMemory)
        );
    }

    #[test]
    fn freed_pages_are_reusable() {
        let quant = KvQuantizer::uniform(2, 1.0);
        let mut store = PagedKvStore::new(2, 2, quant);
        store.add_sequence(1).unwrap();
        for _ in 0..4 {
            store.append(1, &[1.0, 1.0], &[1.0, 1.0]).unwrap();
        }
        store.free_sequence(1).unwrap();
        store.add_sequence(2).unwrap();
        for _ in 0..4 {
            store.append(2, &[-1.0, -1.0], &[-1.0, -1.0]).unwrap();
        }
        assert!(store.k_at(2, 3).unwrap().iter().all(|&c| c < 0));
    }
}
