//! SwiGLU feed-forward network on W4A8 GEMMs.
//!
//! `FFN(x) = W_down · (silu(W_gate·x) ⊙ (W_up·x))`, with the gate and up
//! projections fused into one GEMM (as every serving stack does, and as
//! the paper's layer shapes assume). All three projections run through
//! the LiquidGEMM W4A8 kernel with per-token activation quantization in
//! front of each.

use lq_core::api::W4A8Weights;
use lq_core::{KernelKind, LiquidGemm};
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;

/// SiLU (swish) activation.
#[inline]
#[must_use]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// FFN weights: fused gate+up (`2·inter × hidden`) and down
/// (`hidden × inter`).
#[derive(Debug, Clone)]
pub struct FfnWeights {
    /// Fused gate (rows `0..inter`) and up (rows `inter..2·inter`).
    pub gate_up: W4A8Weights,
    /// Down projection.
    pub down: W4A8Weights,
    /// Intermediate width.
    pub inter: usize,
}

/// Run the FFN for a batch of hidden states (`M × hidden` → same shape).
/// All three projections go through `lg`'s persistent worker pool.
#[must_use]
pub fn ffn_forward(w: &FfnWeights, h: &Mat<f32>, lg: &LiquidGemm, kind: KernelKind) -> Mat<f32> {
    assert_eq!(w.gate_up.k(), h.cols(), "hidden size mismatch");
    assert_eq!(
        w.gate_up.n(),
        2 * w.inter,
        "fused gate_up must be 2*inter rows"
    );
    let qa = QuantizedActivations::quantize(h, None);
    let gu = lg.gemm(&qa.q, &qa.scales, &w.gate_up, kind).y;
    // act = silu(gate) ⊙ up
    let m = h.rows();
    let mut act = Mat::zeros(m, w.inter);
    for i in 0..m {
        let row = gu.row(i);
        let dst = act.row_mut(i);
        for j in 0..w.inter {
            dst[j] = silu(row[j]) * row[w.inter + j];
        }
    }
    let qa2 = QuantizedActivations::quantize(&act, None);
    lg.gemm(&qa2.q, &qa2.scales, &w.down, kind).y
}

/// FP32 reference FFN (oracle for tests).
#[must_use]
pub fn ffn_reference(gate_up: &Mat<f32>, down: &Mat<f32>, inter: usize, h: &Mat<f32>) -> Mat<f32> {
    let gu = lq_core::reference::gemm_f32_ref(h, gate_up);
    let m = h.rows();
    let mut act = Mat::zeros(m, inter);
    for i in 0..m {
        let row = gu.row(i);
        let dst = act.row_mut(i);
        for j in 0..inter {
            dst[j] = silu(row[j]) * row[inter + j];
        }
    }
    lq_core::reference::gemm_f32_ref(&act, down)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lq_core::BackendId;
    use lq_quant::metrics::error_stats;

    #[test]
    fn silu_known_values() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(1.0) - 0.731_058_6).abs() < 1e-5);
        assert!(silu(-10.0).abs() < 1e-3);
        assert!((silu(10.0) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn quantized_ffn_tracks_reference() {
        let (hidden, inter, m) = (64, 160, 6);
        let gate_up = Mat::from_fn(2 * inter, hidden, |r, c| {
            ((r * hidden + c) as f32 * 0.017).sin() * 0.3
        });
        let down = Mat::from_fn(hidden, inter, |r, c| {
            ((r * inter + c) as f32 * 0.013).cos() * 0.3
        });
        let h = Mat::from_fn(m, hidden, |r, c| ((r * hidden + c) as f32 * 0.029).sin());
        let w = FfnWeights {
            gate_up: W4A8Weights::quantize(&gate_up, 32, BackendId::Lqq),
            down: W4A8Weights::quantize(&down, 32, BackendId::Lqq),
            inter,
        };
        let lg = LiquidGemm::builder().build().unwrap();
        let got = ffn_forward(&w, &h, &lg, KernelKind::Serial);
        let want = ffn_reference(&gate_up, &down, inter, &h);
        let e = error_stats(&want, &got);
        assert!(e.cosine > 0.99, "cosine {}", e.cosine);
        assert!(e.sqnr_db > 18.0, "sqnr {}", e.sqnr_db);
    }

    #[test]
    fn pipeline_variants_match_serial_through_ffn() {
        let (hidden, inter, m) = (64, 96, 4);
        let gate_up = Mat::from_fn(2 * inter, hidden, |r, c| {
            ((r + c) as f32 * 0.05).sin() * 0.4
        });
        let down = Mat::from_fn(hidden, inter, |r, c| ((r + c) as f32 * 0.03).cos() * 0.4);
        let h = Mat::from_fn(m, hidden, |r, c| ((r * c) as f32 * 0.01).sin());
        let w = FfnWeights {
            gate_up: W4A8Weights::quantize(&gate_up, 32, BackendId::Lqq),
            down: W4A8Weights::quantize(&down, 32, BackendId::Lqq),
            inter,
        };
        let lg = LiquidGemm::builder()
            .workers(2)
            .task_rows(8)
            .stages(2)
            .build()
            .unwrap();
        let a = ffn_forward(&w, &h, &lg, KernelKind::Serial);
        let b = ffn_forward(&w, &h, &lg, KernelKind::ImFp);
        assert_eq!(lq_core::reference::max_abs_diff(&a, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "hidden size mismatch")]
    fn shape_mismatch_panics() {
        let gate_up = Mat::from_fn(64, 32, |_, _| 0.1);
        let down = Mat::from_fn(32, 32, |_, _| 0.1);
        let w = FfnWeights {
            gate_up: W4A8Weights::quantize(&gate_up, 32, BackendId::Lqq),
            down: W4A8Weights::quantize(&down, 32, BackendId::Lqq),
            inter: 32,
        };
        let h = Mat::zeros(2, 64);
        let lg = LiquidGemm::builder().build().unwrap();
        let _ = ffn_forward(&w, &h, &lg, KernelKind::Serial);
    }
}
