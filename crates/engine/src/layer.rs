//! One decoder layer: pre-norm attention with paged INT8 KV, pre-norm
//! SwiGLU FFN, residual connections — every projection a W4A8 GEMM.

use crate::attention::{decode_attention, reference_attention, AttnConfig};
use crate::ffn::{ffn_forward, ffn_reference, FfnWeights};
use crate::kv::PagedKvStore;
use crate::norm::rmsnorm;
use crate::rope::{rope_heads_inplace, ROPE_BASE};
use lq_core::api::W4A8Weights;
use lq_core::{KernelKind, LiquidGemm};
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;
use lq_serving::kvcache::SeqId;

/// Quantized weights of one decoder layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Fused QKV projection (`q_dim + 2·kv_dim` rows × hidden).
    pub qkv: W4A8Weights,
    /// Attention output projection (`hidden × q_dim`).
    pub o: W4A8Weights,
    /// Feed-forward weights.
    pub ffn: FfnWeights,
    /// RMSNorm gain before attention.
    pub attn_norm: Vec<f32>,
    /// RMSNorm gain before the FFN.
    pub ffn_norm: Vec<f32>,
}

/// One decoder layer bound to its attention geometry.
#[derive(Debug, Clone)]
pub struct DecoderLayer {
    /// Attention geometry.
    pub cfg: AttnConfig,
    /// Quantized weights.
    pub weights: LayerWeights,
}

impl DecoderLayer {
    /// Decode-step forward for a batch of sequences (one new token
    /// each). `h` is `M × hidden`; `seqs[i]`/`positions[i]` identify
    /// each row's sequence and the position of its new token. K/V are
    /// appended to `store` (this layer's paged cache). All projections
    /// run on `lg`'s persistent worker pool.
    #[must_use]
    pub fn forward_decode(
        &self,
        h: &Mat<f32>,
        seqs: &[SeqId],
        positions: &[usize],
        store: &mut PagedKvStore,
        lg: &LiquidGemm,
        kind: KernelKind,
    ) -> Mat<f32> {
        let m = h.rows();
        assert_eq!(seqs.len(), m);
        assert_eq!(positions.len(), m);
        let hidden = h.cols();
        let (q_dim, kv_dim) = (self.cfg.q_dim(), self.cfg.kv_dim());

        // 1. Pre-norm + fused QKV projection (W4A8).
        let mut normed = Mat::zeros(m, hidden);
        for i in 0..m {
            let n = rmsnorm(h.row(i), &self.weights.attn_norm);
            normed.row_mut(i).copy_from_slice(&n);
        }
        let qa = QuantizedActivations::quantize(&normed, None);
        let qkv = lg.gemm(&qa.q, &qa.scales, &self.weights.qkv, kind).y;

        // 2. Per sequence: RoPE, KV append, streaming attention.
        let mut attn_out = Mat::zeros(m, q_dim);
        for i in 0..m {
            let row = qkv.row(i);
            let mut q = row[..q_dim].to_vec();
            let mut k = row[q_dim..q_dim + kv_dim].to_vec();
            let v = &row[q_dim + kv_dim..q_dim + 2 * kv_dim];
            rope_heads_inplace(&mut q, self.cfg.heads, positions[i], ROPE_BASE);
            rope_heads_inplace(&mut k, self.cfg.kv_heads, positions[i], ROPE_BASE);
            let pos = store.append(seqs[i], &k, v).expect("KV capacity");
            debug_assert_eq!(pos, positions[i], "cache position drift");
            let o = decode_attention(self.cfg, &q, store, seqs[i]);
            attn_out.row_mut(i).copy_from_slice(&o);
        }

        // 3. Output projection (W4A8) + residual.
        let qa_o = QuantizedActivations::quantize(&attn_out, None);
        let proj = lg.gemm(&qa_o.q, &qa_o.scales, &self.weights.o, kind).y;
        let mut h1 = Mat::zeros(m, hidden);
        for i in 0..m {
            for c in 0..hidden {
                h1.set(i, c, h.get(i, c) + proj.get(i, c));
            }
        }

        // 4. Pre-norm FFN (W4A8) + residual.
        let mut normed2 = Mat::zeros(m, hidden);
        for i in 0..m {
            let n = rmsnorm(h1.row(i), &self.weights.ffn_norm);
            normed2.row_mut(i).copy_from_slice(&n);
        }
        let f = ffn_forward(&self.weights.ffn, &normed2, lg, kind);
        let mut out = Mat::zeros(m, hidden);
        for i in 0..m {
            for c in 0..hidden {
                out.set(i, c, h1.get(i, c) + f.get(i, c));
            }
        }
        out
    }
}

impl DecoderLayer {
    /// Prefill forward: process a whole prompt (`T × hidden`, one
    /// sequence) in batched GEMMs — the compute-efficient path where the
    /// per-group dequantization amortises over all prompt tokens — with
    /// causal attention per position over the just-filled cache.
    #[must_use]
    pub fn forward_prefill(
        &self,
        h: &Mat<f32>,
        seq: SeqId,
        start_pos: usize,
        store: &mut PagedKvStore,
        lg: &LiquidGemm,
        kind: KernelKind,
    ) -> Mat<f32> {
        let t_len = h.rows();
        assert!(t_len > 0, "empty prefill");
        let hidden = h.cols();
        let (q_dim, kv_dim) = (self.cfg.q_dim(), self.cfg.kv_dim());

        // 1. Pre-norm + one batched QKV GEMM over all prompt tokens.
        let mut normed = Mat::zeros(t_len, hidden);
        for i in 0..t_len {
            normed
                .row_mut(i)
                .copy_from_slice(&rmsnorm(h.row(i), &self.weights.attn_norm));
        }
        let qa = QuantizedActivations::quantize(&normed, None);
        let qkv = lg.gemm(&qa.q, &qa.scales, &self.weights.qkv, kind).y;

        // 2. Append every position's K/V first is NOT causal-safe for
        //    attention; instead append position t then attend, so each
        //    query sees exactly its prefix.
        let mut attn_out = Mat::zeros(t_len, q_dim);
        for i in 0..t_len {
            let pos = start_pos + i;
            let row = qkv.row(i);
            let mut q = row[..q_dim].to_vec();
            let mut k = row[q_dim..q_dim + kv_dim].to_vec();
            let v = &row[q_dim + kv_dim..q_dim + 2 * kv_dim];
            rope_heads_inplace(&mut q, self.cfg.heads, pos, ROPE_BASE);
            rope_heads_inplace(&mut k, self.cfg.kv_heads, pos, ROPE_BASE);
            store.append(seq, &k, v).expect("KV capacity");
            let o = decode_attention(self.cfg, &q, store, seq);
            attn_out.row_mut(i).copy_from_slice(&o);
        }

        // 3. Batched output projection + residual.
        let qa_o = QuantizedActivations::quantize(&attn_out, None);
        let proj = lg.gemm(&qa_o.q, &qa_o.scales, &self.weights.o, kind).y;
        let mut h1 = Mat::zeros(t_len, hidden);
        for i in 0..t_len {
            for c in 0..hidden {
                h1.set(i, c, h.get(i, c) + proj.get(i, c));
            }
        }

        // 4. Batched FFN + residual.
        let mut normed2 = Mat::zeros(t_len, hidden);
        for i in 0..t_len {
            normed2
                .row_mut(i)
                .copy_from_slice(&rmsnorm(h1.row(i), &self.weights.ffn_norm));
        }
        let f = ffn_forward(&self.weights.ffn, &normed2, lg, kind);
        let mut out = Mat::zeros(t_len, hidden);
        for i in 0..t_len {
            for c in 0..hidden {
                out.set(i, c, h1.get(i, c) + f.get(i, c));
            }
        }
        out
    }
}

/// FP32 twin of a decoder layer (oracle): unquantized weights, exact
/// f32 KV history.
#[derive(Debug, Clone)]
pub struct ReferenceLayer {
    /// Attention geometry.
    pub cfg: AttnConfig,
    /// Fused QKV weights.
    pub qkv: Mat<f32>,
    /// Output projection.
    pub o: Mat<f32>,
    /// Fused gate+up.
    pub gate_up: Mat<f32>,
    /// Down projection.
    pub down: Mat<f32>,
    /// Intermediate width.
    pub inter: usize,
    /// Norm gains.
    pub attn_norm: Vec<f32>,
    /// Norm gains.
    pub ffn_norm: Vec<f32>,
    /// Per-sequence K history (f32).
    pub k_hist: Vec<Vec<Vec<f32>>>,
    /// Per-sequence V history (f32).
    pub v_hist: Vec<Vec<Vec<f32>>>,
}

impl ReferenceLayer {
    /// Decode-step forward mirroring [`DecoderLayer::forward_decode`].
    /// `seq_idx[i]` indexes the f32 histories.
    #[must_use]
    pub fn forward_decode(
        &mut self,
        h: &Mat<f32>,
        seq_idx: &[usize],
        positions: &[usize],
    ) -> Mat<f32> {
        let m = h.rows();
        let hidden = h.cols();
        let (q_dim, kv_dim) = (self.cfg.q_dim(), self.cfg.kv_dim());
        let mut normed = Mat::zeros(m, hidden);
        for i in 0..m {
            normed
                .row_mut(i)
                .copy_from_slice(&rmsnorm(h.row(i), &self.attn_norm));
        }
        let qkv = lq_core::reference::gemm_f32_ref(&normed, &self.qkv);
        let mut attn_out = Mat::zeros(m, q_dim);
        for i in 0..m {
            let row = qkv.row(i);
            let mut q = row[..q_dim].to_vec();
            let mut k = row[q_dim..q_dim + kv_dim].to_vec();
            let v = row[q_dim + kv_dim..q_dim + 2 * kv_dim].to_vec();
            rope_heads_inplace(&mut q, self.cfg.heads, positions[i], ROPE_BASE);
            rope_heads_inplace(&mut k, self.cfg.kv_heads, positions[i], ROPE_BASE);
            let s = seq_idx[i];
            self.k_hist[s].push(k);
            self.v_hist[s].push(v);
            let o = reference_attention(self.cfg, &q, &self.k_hist[s], &self.v_hist[s]);
            attn_out.row_mut(i).copy_from_slice(&o);
        }
        let proj = lq_core::reference::gemm_f32_ref(&attn_out, &self.o);
        let mut h1 = Mat::zeros(m, hidden);
        for i in 0..m {
            for c in 0..hidden {
                h1.set(i, c, h.get(i, c) + proj.get(i, c));
            }
        }
        let mut normed2 = Mat::zeros(m, hidden);
        for i in 0..m {
            normed2
                .row_mut(i)
                .copy_from_slice(&rmsnorm(h1.row(i), &self.ffn_norm));
        }
        let f = ffn_reference(&self.gate_up, &self.down, self.inter, &normed2);
        let mut out = Mat::zeros(m, hidden);
        for i in 0..m {
            for c in 0..hidden {
                out.set(i, c, h1.get(i, c) + f.get(i, c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvQuantizer;
    use crate::model::synth_mat;
    use lq_core::BackendId;
    use lq_quant::metrics::error_stats;

    fn build_pair(hidden: usize, inter: usize, cfg: AttnConfig) -> (DecoderLayer, ReferenceLayer) {
        let qkv = synth_mat(cfg.q_dim() + 2 * cfg.kv_dim(), hidden, 1, 0.25);
        let o = synth_mat(hidden, cfg.q_dim(), 2, 0.25);
        let gate_up = synth_mat(2 * inter, hidden, 3, 0.25);
        let down = synth_mat(hidden, inter, 4, 0.25);
        let attn_norm = vec![1.0f32; hidden];
        let ffn_norm = vec![1.0f32; hidden];
        let layer = DecoderLayer {
            cfg,
            weights: LayerWeights {
                qkv: W4A8Weights::quantize(&qkv, 32, BackendId::Lqq),
                o: W4A8Weights::quantize(&o, 32, BackendId::Lqq),
                ffn: FfnWeights {
                    gate_up: W4A8Weights::quantize(&gate_up, 32, BackendId::Lqq),
                    down: W4A8Weights::quantize(&down, 32, BackendId::Lqq),
                    inter,
                },
                attn_norm: attn_norm.clone(),
                ffn_norm: ffn_norm.clone(),
            },
        };
        let reference = ReferenceLayer {
            cfg,
            qkv,
            o,
            gate_up,
            down,
            inter,
            attn_norm,
            ffn_norm,
            k_hist: vec![Vec::new(); 4],
            v_hist: vec![Vec::new(); 4],
        };
        (layer, reference)
    }

    #[test]
    fn quantized_layer_tracks_fp32_over_multiple_steps() {
        let cfg = AttnConfig {
            heads: 4,
            kv_heads: 2,
            head_dim: 16,
        };
        let hidden = 64;
        let (layer, mut reference) = build_pair(hidden, 128, cfg);
        let quant = KvQuantizer::uniform(cfg.kv_dim(), 6.0);
        let mut store = PagedKvStore::new(64, 4, quant);
        let seqs: Vec<u64> = vec![0, 1];
        for &s in &seqs {
            store.add_sequence(s).unwrap();
        }
        let mut h = synth_mat(2, hidden, 9, 1.0);
        let mut h_ref = h.clone();
        let lg = LiquidGemm::builder().build().unwrap();
        for step in 0..4 {
            let positions = vec![step; 2];
            let seq_idx = vec![0usize, 1];
            h = layer.forward_decode(&h, &seqs, &positions, &mut store, &lg, KernelKind::Serial);
            h_ref = reference.forward_decode(&h_ref, &seq_idx, &positions);
            let e = error_stats(&h_ref, &h);
            // Three quantizers stack (weights, activations, KV), and the
            // error compounds across steps; 0.95 cosine is the
            // realistic band for this depth.
            assert!(e.cosine > 0.95, "step {step}: cosine {}", e.cosine);
            assert!(h.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn residual_stream_grows_with_layers_not_explodes() {
        let cfg = AttnConfig {
            heads: 2,
            kv_heads: 2,
            head_dim: 16,
        };
        let hidden = 32;
        let (layer, _) = build_pair(hidden, 64, cfg);
        let quant = KvQuantizer::uniform(cfg.kv_dim(), 6.0);
        let mut store = PagedKvStore::new(32, 4, quant);
        store.add_sequence(0).unwrap();
        let mut h = synth_mat(1, hidden, 11, 1.0);
        let lg = LiquidGemm::builder().build().unwrap();
        for step in 0..8 {
            h = layer.forward_decode(&h, &[0], &[step], &mut store, &lg, KernelKind::Serial);
        }
        let norm: f32 = h.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(norm.is_finite() && norm < 1e4, "norm {norm}");
    }
}
