//! [`TinyLlm`] as a [`ServingEngine`]: the glue that lets the
//! executable continuous-batching runtime
//! ([`lq_serving::runtime::ServingRuntime`]) drive the real W4A8 model.
//!
//! The runtime hands the engine `(sequence, last_token)` slots once per
//! iteration; [`TinyLlm::decode_step_batch`] stacks them into one
//! M=batch activation matrix per layer, so each decode iteration of the
//! whole running batch is a single GEMM submission per projection to
//! the shared `Arc<LiquidGemm>` pool — the CPU analogue of the paper's
//! batched decode GEMMs (Figure 10 / Table 1). Greedy sampling keeps
//! the loop deterministic; integer accumulation makes the batched pass
//! bit-exact against per-sequence decode (asserted by
//! `tests/batched_decode.rs`).

use crate::model::{argmax, TinyLlm};
use lq_quant::mat::Mat;
use lq_serving::kvcache::SeqId;
use lq_serving::runtime::ServingEngine;

impl TinyLlm {
    /// One batched decode iteration driven by KV state: for each
    /// `(seq, token)` slot, feed `token` at the sequence's next cached
    /// position (derived from the paged KV store, so callers never
    /// track positions). Returns `M × vocab` logits, one row per slot.
    ///
    /// Bit-exact versus calling [`TinyLlm::decode_step`] once per
    /// sequence in any interleaving: every row quantizes, accumulates,
    /// and dequantizes independently.
    #[must_use]
    pub fn decode_step_batch(&mut self, slots: &[(SeqId, usize)]) -> Mat<f32> {
        assert!(!slots.is_empty(), "empty decode batch");
        let tokens: Vec<usize> = slots.iter().map(|&(_, t)| t).collect();
        let seqs: Vec<SeqId> = slots.iter().map(|&(s, _)| s).collect();
        let positions: Vec<usize> = seqs
            .iter()
            .map(|&s| self.kv[0].len_of(s).expect("live sequence"))
            .collect();
        self.decode_step(&tokens, &seqs, &positions)
    }
}

impl ServingEngine for TinyLlm {
    fn prefill(&mut self, id: SeqId, prompt: &[usize]) -> usize {
        self.add_sequence(id);
        let logits = TinyLlm::prefill(self, id, prompt);
        argmax(logits.row(0))
    }

    fn decode_batch(&mut self, slots: &[(SeqId, usize)]) -> Vec<usize> {
        let logits = self.decode_step_batch(slots);
        (0..logits.rows()).map(|i| argmax(logits.row(i))).collect()
    }

    fn release(&mut self, id: SeqId) {
        for store in &mut self.kv {
            store.free_sequence(id).expect("live sequence");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;
    use lq_core::KernelKind;

    #[test]
    fn decode_step_batch_tracks_positions_from_kv() {
        let mut m = TinyLlm::synthetic(ModelSpec::tiny(), 64, KernelKind::Serial);
        m.add_sequence(0);
        m.add_sequence(1);
        // Advance sequence 0 by two tokens first so the two sequences
        // sit at different positions when batched together.
        let _ = m.decode_step(&[3], &[0], &[0]);
        let _ = m.decode_step(&[4], &[0], &[1]);
        let logits = m.decode_step_batch(&[(0, 5), (1, 9)]);
        assert_eq!((logits.rows(), logits.cols()), (2, m.spec.vocab));
        assert_eq!(m.kv[0].len_of(0).unwrap(), 3);
        assert_eq!(m.kv[0].len_of(1).unwrap(), 1);
    }

    #[test]
    fn serving_engine_round_trip_releases_kv() {
        let mut m = TinyLlm::synthetic(ModelSpec::tiny(), 64, KernelKind::Serial);
        let t0 = ServingEngine::prefill(&mut m, 7, &[1, 2, 3]);
        assert!(t0 < m.spec.vocab);
        let next = ServingEngine::decode_batch(&mut m, &[(7, t0)]);
        assert_eq!(next.len(), 1);
        let free_before = m.kv[0].table.free_pages();
        ServingEngine::release(&mut m, 7);
        assert!(m.kv[0].table.free_pages() > free_before);
        assert!(m.kv.iter().all(|s| s.table.check_invariants()));
    }
}
