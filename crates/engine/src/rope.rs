//! Rotary position embeddings (RoPE), as used by all evaluated models.
//!
//! Pairs of channels `(2i, 2i+1)` are rotated by `pos · θ_i`,
//! `θ_i = base^(-2i/d)`. Applied to Q and K after the projections and
//! before attention / KV caching.

/// Default frequency base (LLaMA convention).
pub const ROPE_BASE: f32 = 10000.0;

/// Rotate one head vector (length `d`, even) in place for position `pos`.
pub fn rope_inplace(x: &mut [f32], pos: usize, base: f32) {
    assert!(x.len().is_multiple_of(2), "head dim must be even for RoPE");
    let d = x.len();
    for i in 0..d / 2 {
        let theta = base.powf(-2.0 * i as f32 / d as f32);
        let angle = pos as f32 * theta;
        let (s, c) = angle.sin_cos();
        let (a, b) = (x[2 * i], x[2 * i + 1]);
        x[2 * i] = a * c - b * s;
        x[2 * i + 1] = a * s + b * c;
    }
}

/// Apply RoPE to every head of a flat `[heads × head_dim]` vector.
pub fn rope_heads_inplace(x: &mut [f32], heads: usize, pos: usize, base: f32) {
    assert_eq!(x.len() % heads, 0);
    let d = x.len() / heads;
    for h in 0..heads {
        rope_inplace(&mut x[h * d..(h + 1) * d], pos, base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn position_zero_is_identity() {
        let mut x = vec![1.0f32, 2.0, -3.0, 0.5];
        let orig = x.clone();
        rope_inplace(&mut x, 0, ROPE_BASE);
        assert_eq!(x, orig);
    }

    #[test]
    fn rotation_preserves_norm() {
        let mut x = vec![0.7f32, -1.3, 2.2, 0.9, -0.4, 1.1, 0.0, -2.0];
        let n0: f32 = dot(&x, &x);
        rope_inplace(&mut x, 1234, ROPE_BASE);
        let n1: f32 = dot(&x, &x);
        assert!((n0 - n1).abs() < 1e-3, "{n0} vs {n1}");
    }

    #[test]
    fn relative_position_property() {
        // <RoPE(q, m), RoPE(k, n)> depends only on m - n.
        let q = vec![0.3f32, -0.8, 1.2, 0.4];
        let k = vec![-0.5f32, 0.9, 0.2, -1.1];
        let score = |m: usize, n: usize| {
            let mut qm = q.clone();
            let mut kn = k.clone();
            rope_inplace(&mut qm, m, ROPE_BASE);
            rope_inplace(&mut kn, n, ROPE_BASE);
            dot(&qm, &kn)
        };
        assert!((score(10, 3) - score(107, 100)).abs() < 1e-3);
        assert!((score(5, 5) - score(900, 900)).abs() < 1e-3);
    }

    #[test]
    fn per_head_application_is_independent() {
        let mut x = vec![1.0f32, 0.0, 1.0, 0.0]; // 2 heads × dim 2
        rope_heads_inplace(&mut x, 2, 7, ROPE_BASE);
        // Both heads start identical → must end identical.
        assert!((x[0] - x[2]).abs() < 1e-7);
        assert!((x[1] - x[3]).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_dim_panics() {
        let mut x = vec![1.0f32; 3];
        rope_inplace(&mut x, 1, ROPE_BASE);
    }
}
