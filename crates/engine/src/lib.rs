//! # lq-engine — an executable mini LLM inference engine on LiquidGEMM
//!
//! The paper's Section 6 builds a serving system around the kernel:
//! W4A8 GEMMs for every projection, FlashAttention-2 for attention,
//! PagedAttention for KV management, INT8 per-channel static KV
//! quantization, SmoothQuant activation handling. This crate makes that
//! system *executable* at CPU scale: a real decoder-only transformer
//! whose every linear layer runs through the W4A8 kernels of `lq-core`,
//! whose KV cache is INT8 and paged, and whose attention is a
//! streaming-softmax (FA2-style) pass over the paged cache.
//!
//! It is the substrate behind `examples/decode_demo.rs` and the
//! end-to-end numerical tests: quantized decode must track an FP32
//! reference decode token-for-token on synthetic models.
//!
//! * [`norm`] — RMSNorm.
//! * [`rope`] — rotary position embeddings.
//! * [`kv`] — INT8 per-channel static KV quantization + the paged KV
//!   store that pairs quantized frames with
//!   [`lq_serving::kvcache::PagedKvCache`] page tables.
//! * [`attention`] — single-pass streaming-softmax decode attention
//!   over the paged INT8 cache, with grouped-query attention.
//! * [`ffn`] — SwiGLU feed-forward on W4A8 GEMMs.
//! * [`layer`] — one decoder layer (attention + FFN + norms).
//! * [`model`] — a toy multi-layer model with deterministic synthetic
//!   weights, greedy decoding, and an FP32 twin for validation.
//! * [`serving`] — `TinyLlm` as an `lq_serving::runtime::ServingEngine`
//!   (KV-driven `decode_step_batch`), so the executable
//!   continuous-batching runtime can drive the real model.
//! * [`sampling`] — greedy / temperature / top-k sampling with a
//!   deterministic RNG.
//! * [`tp`] — [`tp::TensorParallelEngine`]: every projection sharded
//!   across pools (`lq_core::ShardedGemm`), so the router composes
//!   request-sharding with intra-GEMM tensor parallelism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attention;
pub mod ffn;
pub mod kv;
pub mod layer;
pub mod model;
pub mod norm;
pub mod rope;
pub mod sampling;
pub mod serving;
pub mod tp;

pub use kv::{KvQuantizer, PagedKvStore};
pub use layer::{DecoderLayer, LayerWeights};
pub use model::{ModelSpec, TinyLlm};
pub use tp::TensorParallelEngine;
