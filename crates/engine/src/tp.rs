//! [`TensorParallelEngine`]: intra-GEMM tensor parallelism under the
//! [`ServingEngine`] trait.
//!
//! The PR 8 router shards *requests* across engine replicas; this
//! engine shards each *GEMM* across pools ([`lq_core::ShardedGemm`],
//! DESIGN.md §14), so plugging it into `lq-router` composes the two
//! axes — exactly the Megatron-style layout the paper's multi-GPU
//! serving stack assumes (replica parallelism outside, tensor
//! parallelism inside).
//!
//! The forward pass is the canonical Megatron FFN split on real sharded
//! kernels: a **column-parallel** up-projection (output channels split,
//! all-gather concat) feeding a **row-parallel** down-projection to
//! vocabulary logits (reduction dim split, exact i64 all-reduce), with
//! deterministic synthetic embeddings and greedy sampling. Both
//! collectives record `AllGather`/`AllReduce` spans carrying the
//! ambient request correlation, so a drained trace attributes
//! shard-skew per request even when one GEMM spans pools.
//!
//! Failure semantics: a chaos-killed shard surfaces as a panic carrying
//! the typed [`lq_core::ShardError`] message, which the serving
//! runtime's `try_prefill`/`try_decode_batch` unwind containment turns
//! into an `EngineError` — degraded mode, never a partial or silently
//! wrong output.

use std::collections::HashMap;

use lq_core::shard::{ShardConfigError, ShardedGemm, ShardedWeights};
use lq_core::KernelKind;
use lq_quant::act::QuantizedActivations;
use lq_quant::backend::BackendId;
use lq_quant::mat::Mat;
use lq_serving::kvcache::SeqId;
use lq_serving::runtime::ServingEngine;

use crate::model::argmax;

/// A small deterministic decoder whose every projection runs
/// tensor-parallel across shard pools. See the module docs.
pub struct TensorParallelEngine {
    tp: ShardedGemm,
    /// Column-parallel up-projection (`d → d_ff`).
    up: ShardedWeights,
    /// Row-parallel down-projection (`d_ff → vocab`).
    down: ShardedWeights,
    /// Live sequences and their decode positions.
    seqs: HashMap<SeqId, usize>,
    vocab: usize,
    d: usize,
}

/// Model geometry: `d = 64`, `d_ff = 128`, `vocab = 32`, group 64 —
/// big enough to exercise ragged column splits and multi-group row
/// splits at shard counts 1–4, small enough for tests.
const D: usize = 64;
const D_FF: usize = 128;
const VOCAB: usize = 32;
const GROUP: usize = 64;

impl TensorParallelEngine {
    /// Build an engine with `shards` pools of `workers_per_shard`
    /// workers each, weights packed by `backend`.
    ///
    /// # Errors
    /// [`ShardConfigError`] on invalid pool parameters.
    pub fn new(
        shards: usize,
        workers_per_shard: usize,
        backend: BackendId,
    ) -> Result<Self, ShardConfigError> {
        let tp = ShardedGemm::builder()
            .shards(shards)
            .workers_per_shard(workers_per_shard)
            .backend(backend)
            .build()?;
        let w_up = Mat::from_fn(D_FF, D, |r, c| ((r * D + c) as f32 * 0.037).sin());
        let w_down = Mat::from_fn(VOCAB, D_FF, |r, c| ((r * D_FF + c) as f32 * 0.021).cos());
        let up = tp.pack_weights(&w_up, GROUP);
        let down = tp.pack_weights(&w_down, GROUP);
        Ok(Self {
            tp,
            up,
            down,
            seqs: HashMap::new(),
            vocab: VOCAB,
            d: D,
        })
    }

    /// The sharded layer (shard liveness, per-shard pool stats).
    #[must_use]
    pub fn sharded(&self) -> &ShardedGemm {
        &self.tp
    }

    /// Swap in a differently-configured sharded layer (e.g. one armed
    /// with a chaos [`lq_core::FaultInjector`]) and re-plan the weight
    /// splits for its shard count. The weights themselves are
    /// deterministic, so decode output is unchanged.
    pub fn replace_sharded(&mut self, tp: ShardedGemm) {
        let w_up = Mat::from_fn(D_FF, D, |r, c| ((r * D + c) as f32 * 0.037).sin());
        let w_down = Mat::from_fn(VOCAB, D_FF, |r, c| ((r * D_FF + c) as f32 * 0.021).cos());
        self.up = tp.pack_weights(&w_up, GROUP);
        self.down = tp.pack_weights(&w_down, GROUP);
        self.tp = tp;
    }

    /// Vocabulary size (argmax domain of the logits).
    #[must_use]
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Live (non-released) sequences — the engine-side leak audit.
    #[must_use]
    pub fn live_sequences(&self) -> usize {
        self.seqs.len()
    }

    /// Deterministic synthetic embedding of `token` at `pos`.
    fn embed_into(&self, token: usize, pos: usize, row: &mut [f32]) {
        for (c, v) in row.iter_mut().enumerate() {
            *v = ((token * 31 + pos * 7 + c) as f32 * 0.11).sin();
        }
    }

    /// One tensor-parallel forward pass: `M` (token, pos) rows →
    /// `M` next tokens. Column-parallel up-projection, row-parallel
    /// down-projection, greedy argmax. Panics (with the typed
    /// [`lq_core::ShardError`] message) when a shard pool is dead; the
    /// serving runtime's unwind containment converts that into an
    /// `EngineError`.
    fn forward(&self, toks: &[(usize, usize)]) -> Vec<usize> {
        let m = toks.len();
        let mut x = Mat::zeros(m, self.d);
        for (i, &(t, p)) in toks.iter().enumerate() {
            self.embed_into(t, p, x.row_mut(i));
        }
        let qa = QuantizedActivations::quantize(&x, None);
        let h = self
            .tp
            .gemm(&qa.q, &qa.scales, &self.up, KernelKind::ImFp)
            .unwrap_or_else(|e| panic!("{e}"))
            .y;
        let qh = QuantizedActivations::quantize(&h, None);
        let logits = self
            .tp
            .gemm_row(&qh.q, &qh.scales, &self.down)
            .unwrap_or_else(|e| panic!("{e}"))
            .y;
        (0..m).map(|i| argmax(logits.row(i))).collect()
    }
}

impl ServingEngine for TensorParallelEngine {
    fn prefill(&mut self, id: SeqId, prompt: &[usize]) -> usize {
        // One M = prompt-length pass; the last row's argmax is the
        // first generated token (the earlier rows exercise the batched
        // ragged-M path, mirroring a real prefill).
        let toks: Vec<(usize, usize)> = prompt.iter().copied().zip(0..).collect();
        let next = *self.forward(&toks).last().expect("non-empty prompt");
        self.seqs.insert(id, prompt.len());
        next
    }

    fn decode_batch(&mut self, slots: &[(SeqId, usize)]) -> Vec<usize> {
        let toks: Vec<(usize, usize)> = slots
            .iter()
            .map(|&(id, t)| (t, *self.seqs.get(&id).expect("live sequence")))
            .collect();
        let next = self.forward(&toks);
        for &(id, _) in slots {
            *self.seqs.get_mut(&id).expect("live sequence") += 1;
        }
        next
    }

    fn release(&mut self, id: SeqId) {
        self.seqs.remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_engine_decodes_identically_at_every_shard_count() {
        // The same prompt must generate the same tokens whether the
        // GEMMs run unsharded or split 2/3/4 ways — intra-GEMM
        // parallelism is invisible to the serving layer.
        let run = |shards: usize| {
            let mut e = TensorParallelEngine::new(shards, 1, BackendId::Lqq).unwrap();
            let mut out = vec![e.prefill(0, &[3, 1, 4, 1, 5])];
            for _ in 0..6 {
                let last = *out.last().unwrap();
                out.push(e.decode_batch(&[(0, last)])[0]);
            }
            e.release(0);
            assert_eq!(e.live_sequences(), 0);
            out
        };
        let want = run(1);
        for shards in [2usize, 3, 4] {
            assert_eq!(run(shards), want, "shards={shards}");
        }
    }

    #[test]
    fn batched_decode_matches_sequential() {
        let mut e = TensorParallelEngine::new(2, 1, BackendId::Lqq).unwrap();
        let a = e.prefill(1, &[2, 7]);
        let b = e.prefill(2, &[9]);
        let batched = e.decode_batch(&[(1, a), (2, b)]);
        // Replay the same steps one sequence at a time.
        let mut e2 = TensorParallelEngine::new(2, 1, BackendId::Lqq).unwrap();
        let a2 = e2.prefill(1, &[2, 7]);
        let b2 = e2.prefill(2, &[9]);
        assert_eq!((a2, b2), (a, b));
        let sa = e2.decode_batch(&[(1, a2)]);
        let sb = e2.decode_batch(&[(2, b2)]);
        assert_eq!(batched, vec![sa[0], sb[0]]);
    }

    #[test]
    fn killed_shard_becomes_a_contained_engine_error() {
        use lq_core::{FaultInjector, FaultPlan};
        use std::sync::Arc;

        let inj = Arc::new(FaultInjector::new(FaultPlan::quiet().shard_kill_at(0, 0)));
        let tp = lq_core::ShardedGemm::builder()
            .shards(2)
            .workers_per_shard(1)
            .fault_injector(inj)
            .build()
            .unwrap();
        // Rebuild the engine around the chaos-armed layer.
        let mut e = TensorParallelEngine::new(2, 1, BackendId::Lqq).unwrap();
        e.replace_sharded(tp);
        let err = e.try_prefill(5, &[1, 2]).unwrap_err();
        assert!(
            err.to_string().contains("shard 0"),
            "typed shard failure must surface: {err}"
        );
        assert_eq!(e.sharded().live_shards(), 1);
        // The failed prefill never registered the sequence.
        assert_eq!(e.live_sequences(), 0);
    }
}
