//! A toy multi-layer decoder-only model with deterministic synthetic
//! weights — the end-to-end vehicle for validating the full W4A8 stack
//! (embed → L × decoder layer → norm → LM head → greedy sample).

use crate::attention::AttnConfig;
use crate::ffn::FfnWeights;
use crate::kv::{KvQuantizer, PagedKvStore};
use crate::layer::{DecoderLayer, LayerWeights, ReferenceLayer};
use crate::norm::rmsnorm;
use lq_core::api::W4A8Weights;
use lq_core::{KernelKind, LiquidGemm};
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;
use lq_serving::kvcache::SeqId;
use std::sync::Arc;

/// Architecture of the toy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSpec {
    /// Vocabulary size.
    pub vocab: usize,
    /// Hidden width.
    pub hidden: usize,
    /// FFN intermediate width.
    pub inter: usize,
    /// Decoder layers.
    pub layers: usize,
    /// Attention geometry.
    pub attn: AttnConfig,
    /// Quantization group size along K.
    pub group: usize,
}

impl ModelSpec {
    /// A small config suited to tests (runs in milliseconds).
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            vocab: 96,
            hidden: 64,
            inter: 128,
            layers: 2,
            attn: AttnConfig {
                heads: 4,
                kv_heads: 2,
                head_dim: 16,
            },
            group: 32,
        }
    }
}

/// Deterministic synthetic weight matrix (splitmix-style hash → ~N(0,σ)).
#[must_use]
pub fn synth_mat(rows: usize, cols: usize, seed: u64, sigma: f32) -> Mat<f32> {
    Mat::from_fn(rows, cols, |r, c| {
        let mut z = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((r * cols + c) as u64 + 1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Sum of 4 uniforms ≈ gaussian (Irwin–Hall), centred.
        let u = |k: u64| ((z >> (k * 16)) & 0xFFFF) as f32 / 65536.0;
        (u(0) + u(1) + u(2) + u(3) - 2.0) * sigma * 1.7
    })
}

/// The quantized model plus per-layer paged KV stores.
pub struct TinyLlm {
    /// Architecture.
    pub spec: ModelSpec,
    /// Token embedding table (`vocab × hidden`, FP16-equivalent kept f32).
    pub embed: Mat<f32>,
    /// Decoder layers.
    pub layers: Vec<DecoderLayer>,
    /// Final norm gain.
    pub final_norm: Vec<f32>,
    /// LM head (`vocab × hidden`), W4A8.
    pub lm_head: W4A8Weights,
    /// Per-layer KV stores.
    pub kv: Vec<PagedKvStore>,
    kind: KernelKind,
    engine: Arc<LiquidGemm>,
}

impl TinyLlm {
    /// Build with deterministic synthetic weights, running all GEMMs on
    /// a private default-sized [`LiquidGemm`] pool. To share one pool
    /// across models (the serving pattern), use
    /// [`TinyLlm::synthetic_with_engine`].
    #[must_use]
    pub fn synthetic(spec: ModelSpec, pages: usize, kind: KernelKind) -> Self {
        let engine = Arc::new(
            LiquidGemm::builder()
                .build()
                .expect("default LiquidGemm config is valid"),
        );
        Self::synthetic_with_engine(spec, pages, kind, engine)
    }

    /// Build with deterministic synthetic weights on an existing GEMM
    /// engine. Every projection of every layer submits its tile jobs to
    /// `engine`'s persistent worker pool, so many models (or many caller
    /// threads) can share one pool.
    #[must_use]
    pub fn synthetic_with_engine(
        spec: ModelSpec,
        pages: usize,
        kind: KernelKind,
        engine: Arc<LiquidGemm>,
    ) -> Self {
        let a = spec.attn;
        let mut layers = Vec::with_capacity(spec.layers);
        for l in 0..spec.layers as u64 {
            let qkv = synth_mat(a.q_dim() + 2 * a.kv_dim(), spec.hidden, 10 + l, 0.2);
            let o = synth_mat(spec.hidden, a.q_dim(), 20 + l, 0.2);
            let gate_up = synth_mat(2 * spec.inter, spec.hidden, 30 + l, 0.2);
            let down = synth_mat(spec.hidden, spec.inter, 40 + l, 0.2);
            layers.push(DecoderLayer {
                cfg: a,
                weights: LayerWeights {
                    qkv: engine.pack_weights(&qkv, spec.group),
                    o: engine.pack_weights(&o, spec.group),
                    ffn: FfnWeights {
                        gate_up: engine.pack_weights(&gate_up, spec.group),
                        down: engine.pack_weights(&down, spec.group),
                        inter: spec.inter,
                    },
                    attn_norm: vec![1.0; spec.hidden],
                    ffn_norm: vec![1.0; spec.hidden],
                },
            });
        }
        let lm_head_f = synth_mat(spec.vocab, spec.hidden, 99, 0.2);
        let kv = (0..spec.layers)
            .map(|_| PagedKvStore::new(pages, 16, KvQuantizer::uniform(a.kv_dim(), 4.0)))
            .collect();
        Self {
            spec,
            embed: synth_mat(spec.vocab, spec.hidden, 7, 0.7),
            layers,
            final_norm: vec![1.0; spec.hidden],
            lm_head: engine.pack_weights(&lm_head_f, spec.group),
            kv,
            kind,
            engine,
        }
    }

    /// The GEMM engine this model submits to.
    #[must_use]
    pub fn engine(&self) -> &Arc<LiquidGemm> {
        &self.engine
    }

    /// FP32 twin with the same synthetic weights (for validation).
    #[must_use]
    pub fn reference_twin(&self, max_seqs: usize) -> ReferenceLlm {
        let spec = self.spec;
        let a = spec.attn;
        let layers = (0..spec.layers as u64)
            .map(|l| ReferenceLayer {
                cfg: a,
                qkv: synth_mat(a.q_dim() + 2 * a.kv_dim(), spec.hidden, 10 + l, 0.2),
                o: synth_mat(spec.hidden, a.q_dim(), 20 + l, 0.2),
                gate_up: synth_mat(2 * spec.inter, spec.hidden, 30 + l, 0.2),
                down: synth_mat(spec.hidden, spec.inter, 40 + l, 0.2),
                inter: spec.inter,
                attn_norm: vec![1.0; spec.hidden],
                ffn_norm: vec![1.0; spec.hidden],
                k_hist: vec![Vec::new(); max_seqs],
                v_hist: vec![Vec::new(); max_seqs],
            })
            .collect();
        ReferenceLlm {
            spec,
            embed: synth_mat(spec.vocab, spec.hidden, 7, 0.7),
            layers,
            final_norm: vec![1.0; spec.hidden],
            lm_head: synth_mat(spec.vocab, spec.hidden, 99, 0.2),
        }
    }

    /// Offline KV-scale calibration (paper, Section 6: "per-channel
    /// static quantization, with scale factors computed offline").
    ///
    /// Runs the FP32 twin over `sample` calibration tokens, collects the
    /// per-channel |K|/|V| maxima each layer produced, and rebuilds each
    /// layer's KV store with the measured scales. Call before serving;
    /// resets all KV state.
    pub fn calibrate_kv(&mut self, sample: &[usize], pages: usize) {
        assert!(!sample.is_empty(), "need calibration tokens");
        let mut twin = self.reference_twin(1);
        for (pos, &t) in sample.iter().enumerate() {
            let _ = twin.decode_step(&[t], &[0], &[pos]);
        }
        let kv_dim = self.spec.attn.kv_dim();
        for (l, layer) in twin.layers.iter().enumerate() {
            let mut k_absmax = vec![0.0f32; kv_dim];
            let mut v_absmax = vec![0.0f32; kv_dim];
            for k in &layer.k_hist[0] {
                for (m, &v) in k_absmax.iter_mut().zip(k.iter()) {
                    *m = m.max(v.abs());
                }
            }
            for v in &layer.v_hist[0] {
                for (m, &x) in v_absmax.iter_mut().zip(v.iter()) {
                    *m = m.max(x.abs());
                }
            }
            // 10% headroom over the calibration maxima.
            for m in k_absmax.iter_mut().chain(v_absmax.iter_mut()) {
                *m *= 1.1;
            }
            self.kv[l] =
                PagedKvStore::new(pages, 16, KvQuantizer::from_absmax(&k_absmax, &v_absmax));
        }
    }

    /// Register a new sequence in every layer's KV store.
    pub fn add_sequence(&mut self, id: SeqId) {
        for store in &mut self.kv {
            store
                .add_sequence(id)
                .expect("KV capacity for new sequence");
        }
    }

    /// One decode step: token ids (one per sequence) → logits
    /// (`M × vocab`). `positions[i]` is each token's position.
    #[must_use]
    pub fn decode_step(
        &mut self,
        tokens: &[usize],
        seqs: &[SeqId],
        positions: &[usize],
    ) -> Mat<f32> {
        let m = tokens.len();
        assert_eq!(seqs.len(), m);
        assert_eq!(positions.len(), m);
        let mut h = Mat::zeros(m, self.spec.hidden);
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < self.spec.vocab, "token id out of vocab");
            h.row_mut(i).copy_from_slice(self.embed.row(t));
        }
        for (layer, store) in self.layers.iter().zip(self.kv.iter_mut()) {
            h = layer.forward_decode(&h, seqs, positions, store, &self.engine, self.kind);
        }
        let mut normed = Mat::zeros(m, self.spec.hidden);
        for i in 0..m {
            normed
                .row_mut(i)
                .copy_from_slice(&rmsnorm(h.row(i), &self.final_norm));
        }
        let qa = QuantizedActivations::quantize(&normed, None);
        self.engine
            .gemm(&qa.q, &qa.scales, &self.lm_head, self.kind)
            .y
    }

    /// Batched prefill of a whole prompt for one sequence: one pass of
    /// M = prompt-length GEMMs per layer (the compute-efficient path),
    /// returning the logits after the last prompt token.
    #[must_use]
    pub fn prefill(&mut self, seq: SeqId, prompt: &[usize]) -> Mat<f32> {
        assert!(!prompt.is_empty(), "empty prompt");
        let t_len = prompt.len();
        let mut h = Mat::zeros(t_len, self.spec.hidden);
        for (i, &t) in prompt.iter().enumerate() {
            assert!(t < self.spec.vocab, "token id out of vocab");
            h.row_mut(i).copy_from_slice(self.embed.row(t));
        }
        for (layer, store) in self.layers.iter().zip(self.kv.iter_mut()) {
            h = layer.forward_prefill(&h, seq, 0, store, &self.engine, self.kind);
        }
        // Only the last position's logits matter for generation.
        let last = rmsnorm(h.row(t_len - 1), &self.final_norm);
        let last_m = Mat::from_vec(1, self.spec.hidden, last);
        let qa = QuantizedActivations::quantize(&last_m, None);
        self.engine
            .gemm(&qa.q, &qa.scales, &self.lm_head, self.kind)
            .y
    }

    /// Chunked prefill: process the prompt in chunks of `chunk` tokens
    /// (bounding peak activation memory, as production serving does).
    /// Numerically identical to [`TinyLlm::prefill`] — causality is
    /// per-token either way.
    #[must_use]
    pub fn prefill_chunked(&mut self, seq: SeqId, prompt: &[usize], chunk: usize) -> Mat<f32> {
        assert!(!prompt.is_empty(), "empty prompt");
        assert!(chunk > 0, "chunk must be positive");
        let mut logits = Mat::zeros(1, self.spec.vocab);
        let mut start = 0usize;
        while start < prompt.len() {
            let end = (start + chunk).min(prompt.len());
            let piece = &prompt[start..end];
            let mut h = Mat::zeros(piece.len(), self.spec.hidden);
            for (i, &t) in piece.iter().enumerate() {
                assert!(t < self.spec.vocab, "token id out of vocab");
                h.row_mut(i).copy_from_slice(self.embed.row(t));
            }
            for (layer, store) in self.layers.iter().zip(self.kv.iter_mut()) {
                h = layer.forward_prefill(&h, seq, start, store, &self.engine, self.kind);
            }
            if end == prompt.len() {
                let last = rmsnorm(h.row(piece.len() - 1), &self.final_norm);
                let last_m = Mat::from_vec(1, self.spec.hidden, last);
                let qa = QuantizedActivations::quantize(&last_m, None);
                logits = self
                    .engine
                    .gemm(&qa.q, &qa.scales, &self.lm_head, self.kind)
                    .y;
            }
            start = end;
        }
        logits
    }

    /// Greedy generation for one sequence starting from `prompt`.
    #[must_use]
    pub fn generate_greedy(
        &mut self,
        seq: SeqId,
        prompt: &[usize],
        new_tokens: usize,
    ) -> Vec<usize> {
        assert!(!prompt.is_empty());
        self.add_sequence(seq);
        let mut logits = self.prefill(seq, prompt);
        let mut out = Vec::with_capacity(new_tokens);
        for pos in prompt.len()..prompt.len() + new_tokens {
            let next = argmax(logits.row(0));
            out.push(next);
            logits = self.decode_step(&[next], &[seq], &[pos]);
        }
        out
    }
}

/// FP32 reference model.
pub struct ReferenceLlm {
    /// Architecture.
    pub spec: ModelSpec,
    /// Embedding table.
    pub embed: Mat<f32>,
    /// Reference layers (own their f32 KV histories).
    pub layers: Vec<ReferenceLayer>,
    /// Final norm gain.
    pub final_norm: Vec<f32>,
    /// LM head.
    pub lm_head: Mat<f32>,
}

impl ReferenceLlm {
    /// One decode step (mirrors [`TinyLlm::decode_step`]); `seq_idx`
    /// indexes the preallocated histories.
    #[must_use]
    pub fn decode_step(
        &mut self,
        tokens: &[usize],
        seq_idx: &[usize],
        positions: &[usize],
    ) -> Mat<f32> {
        let m = tokens.len();
        let mut h = Mat::zeros(m, self.spec.hidden);
        for (i, &t) in tokens.iter().enumerate() {
            h.row_mut(i).copy_from_slice(self.embed.row(t));
        }
        for layer in &mut self.layers {
            h = layer.forward_decode(&h, seq_idx, positions);
        }
        let mut normed = Mat::zeros(m, self.spec.hidden);
        for i in 0..m {
            normed
                .row_mut(i)
                .copy_from_slice(&rmsnorm(h.row(i), &self.final_norm));
        }
        lq_core::reference::gemm_f32_ref(&normed, &self.lm_head)
    }
}

/// Index of the maximum logit.
#[must_use]
pub fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_mat_is_deterministic_and_centred() {
        let a = synth_mat(32, 32, 5, 0.5);
        let b = synth_mat(32, 32, 5, 0.5);
        assert_eq!(a.as_slice(), b.as_slice());
        let mean: f32 = a.as_slice().iter().sum::<f32>() / 1024.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        let c = synth_mat(32, 32, 6, 0.5);
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn decode_step_produces_finite_logits() {
        let mut m = TinyLlm::synthetic(ModelSpec::tiny(), 64, KernelKind::Serial);
        m.add_sequence(0);
        let logits = m.decode_step(&[3], &[0], &[0]);
        assert_eq!((logits.rows(), logits.cols()), (1, 96));
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let spec = ModelSpec::tiny();
        let mut m1 = TinyLlm::synthetic(spec, 64, KernelKind::Serial);
        let mut m2 = TinyLlm::synthetic(spec, 64, KernelKind::Serial);
        let a = m1.generate_greedy(0, &[1, 2, 3], 6);
        let b = m2.generate_greedy(0, &[1, 2, 3], 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|&t| t < spec.vocab));
    }

    #[test]
    fn quantized_model_matches_fp32_argmax_mostly() {
        // Token-level agreement between the W4A8 model and its FP32
        // twin over a short greedy rollout — the engine-level analogue
        // of "LQQ preserves accuracy".
        let spec = ModelSpec::tiny();
        let mut q = TinyLlm::synthetic(spec, 64, KernelKind::Serial);
        let mut r = q.reference_twin(1);
        q.add_sequence(0);
        let prompt = [5usize, 17, 40];
        let mut agree = 0usize;
        let steps = 8;
        let mut pos = 0usize;
        let mut lq = Mat::zeros(1, spec.vocab);
        let mut lr = Mat::zeros(1, spec.vocab);
        for &t in &prompt {
            lq = q.decode_step(&[t], &[0], &[pos]);
            lr = r.decode_step(&[t], &[0], &[pos]);
            pos += 1;
        }
        // Teacher-forced continuation: both models follow the FP32
        // argmax so disagreement does not compound. Synthetic random
        // weights give near-uniform logits, so exact-argmax agreement
        // is a weak signal — require logit-vector cosine similarity
        // every step plus majority argmax agreement.
        use lq_quant::metrics::error_stats;
        for _ in 0..steps {
            let e = error_stats(&lr, &lq);
            // Logits of a random synthetic model are near-uniform, so
            // this cosine is a stress metric (quantized K/V histories
            // also drift apart over steps even when teacher-forced);
            // the trained-model regime (peaked logits) is far more
            // forgiving.
            assert!(e.cosine > 0.80, "logit cosine {}", e.cosine);
            if argmax(lq.row(0)) == argmax(lr.row(0)) {
                agree += 1;
            }
            let next = argmax(lr.row(0));
            lq = q.decode_step(&[next], &[0], &[pos]);
            lr = r.decode_step(&[next], &[0], &[pos]);
            pos += 1;
        }
        assert!(agree * 2 >= steps, "agreement {agree}/{steps}");
    }

    #[test]
    fn batched_decode_keeps_sequences_independent() {
        // Decoding (a) two sequences in one batch and (b) the same two
        // sequences in separate models must give identical logits.
        let spec = ModelSpec::tiny();
        let mut both = TinyLlm::synthetic(spec, 64, KernelKind::Serial);
        both.add_sequence(0);
        both.add_sequence(1);
        let mut solo = TinyLlm::synthetic(spec, 64, KernelKind::Serial);
        solo.add_sequence(7);
        let tok_a = [2usize, 9];
        let tok_b = [50usize, 61];
        let mut batch_logits = Mat::zeros(2, spec.vocab);
        let mut solo_logits = Mat::zeros(1, spec.vocab);
        for step in 0..2 {
            batch_logits = both.decode_step(&[tok_a[step], tok_b[step]], &[0, 1], &[step, step]);
            solo_logits = solo.decode_step(&[tok_a[step]], &[7], &[step]);
        }
        for c in 0..spec.vocab {
            let d = (batch_logits.get(0, c) - solo_logits.get(0, c)).abs();
            assert!(d < 1e-4, "col {c}: {d}");
        }
    }

    #[test]
    fn models_sharing_one_engine_match_private_engines() {
        // Two models submitting to ONE shared pool must generate exactly
        // what two models with private pools generate — integer
        // accumulation makes results independent of pool topology.
        let spec = ModelSpec::tiny();
        let shared = std::sync::Arc::new(LiquidGemm::builder().workers(2).build().unwrap());
        let mut a = TinyLlm::synthetic_with_engine(spec, 64, KernelKind::ImFp, Arc::clone(&shared));
        let mut b = TinyLlm::synthetic_with_engine(spec, 64, KernelKind::ImFp, shared);
        let mut solo = TinyLlm::synthetic(spec, 64, KernelKind::ImFp);
        let ta = a.generate_greedy(0, &[1, 2, 3], 5);
        let tb = b.generate_greedy(0, &[1, 2, 3], 5);
        let ts = solo.generate_greedy(0, &[1, 2, 3], 5);
        assert_eq!(ta, tb);
        assert_eq!(ta, ts);
    }

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[0.1, 3.0, -2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "token id out of vocab")]
    fn out_of_vocab_panics() {
        let mut m = TinyLlm::synthetic(ModelSpec::tiny(), 16, KernelKind::Serial);
        m.add_sequence(0);
        let _ = m.decode_step(&[9999], &[0], &[0]);
    }
}
