//! RMSNorm — the normalisation used by every model in the paper's
//! evaluation (LLaMA-family, Mistral, Yi, Mixtral).
//!
//! `y_i = x_i / rms(x) · g_i`, `rms(x) = sqrt(mean(x²) + ε)`. Runs in
//! f32; in the serving system its output feeds the per-token INT8
//! activation quantization in front of each W4A8 GEMM.

/// Numerical floor inside the root.
pub const RMS_EPS: f32 = 1e-5;

/// RMS-normalise one vector in place with elementwise gain `g`.
pub fn rmsnorm_inplace(x: &mut [f32], g: &[f32]) {
    assert_eq!(x.len(), g.len(), "gain length mismatch");
    let n = x.len().max(1) as f32;
    let ms: f32 = x.iter().map(|v| v * v).sum::<f32>() / n;
    let inv = 1.0 / (ms + RMS_EPS).sqrt();
    for (v, &gi) in x.iter_mut().zip(g.iter()) {
        *v *= inv * gi;
    }
}

/// RMS-normalise into a fresh buffer.
#[must_use]
pub fn rmsnorm(x: &[f32], g: &[f32]) -> Vec<f32> {
    let mut out = x.to_vec();
    rmsnorm_inplace(&mut out, g);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_gain_produces_unit_rms() {
        let x = vec![3.0f32, -4.0, 12.0, -5.0];
        let g = vec![1.0f32; 4];
        let y = rmsnorm(&x, &g);
        let rms: f32 = (y.iter().map(|v| v * v).sum::<f32>() / 4.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-3, "rms {rms}");
    }

    #[test]
    fn gain_scales_elementwise() {
        let x = vec![1.0f32, 1.0];
        let y1 = rmsnorm(&x, &[1.0, 1.0]);
        let y2 = rmsnorm(&x, &[2.0, 0.5]);
        assert!((y2[0] / y1[0] - 2.0).abs() < 1e-6);
        assert!((y2[1] / y1[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn scale_invariance() {
        // RMSNorm is invariant to positive rescaling of the input.
        let x = vec![0.3f32, -1.2, 2.7, 0.01];
        let xs: Vec<f32> = x.iter().map(|v| v * 37.0).collect();
        let g = vec![1.3f32; 4];
        let a = rmsnorm(&x, &g);
        let b = rmsnorm(&xs, &g);
        for (u, v) in a.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-4, "{u} vs {v}");
        }
    }

    #[test]
    fn zero_vector_is_stable() {
        let y = rmsnorm(&[0.0f32; 8], &[1.0; 8]);
        assert!(y.iter().all(|v| v.is_finite() && *v == 0.0));
    }
}
