//! Decode attention over the paged INT8 KV cache — a single-pass
//! streaming-softmax (FlashAttention-2-style) implementation with
//! grouped-query attention.
//!
//! For one query token per sequence, each head streams its sequence's
//! cached K/V in order, maintaining the running maximum `m`, the
//! running denominator `d`, and the rescaled accumulator — one pass,
//! O(head_dim) state, never materialising the score vector. KV values
//! dequantize on the fly with the static per-channel scales, mirroring
//! how the fused kernel consumes the INT8 cache.

use crate::kv::PagedKvStore;
use lq_serving::kvcache::SeqId;

/// Attention configuration for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttnConfig {
    /// Query heads.
    pub heads: usize,
    /// KV heads (divides `heads`; < heads ⇒ GQA).
    pub kv_heads: usize,
    /// Channels per head.
    pub head_dim: usize,
}

impl AttnConfig {
    /// Query channels (`heads × head_dim`).
    #[must_use]
    pub fn q_dim(&self) -> usize {
        self.heads * self.head_dim
    }

    /// KV channels (`kv_heads × head_dim`).
    #[must_use]
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim
    }

    /// The KV head serving query head `h`.
    #[must_use]
    pub fn kv_head_of(&self, h: usize) -> usize {
        h / (self.heads / self.kv_heads)
    }
}

/// Streaming-softmax decode attention for one sequence.
///
/// `q` is the post-RoPE query (`heads × head_dim`); output has the same
/// layout. Attends over all cached tokens of `seq` (the current token's
/// K/V must already be appended).
#[must_use]
pub fn decode_attention(cfg: AttnConfig, q: &[f32], store: &PagedKvStore, seq: SeqId) -> Vec<f32> {
    assert_eq!(q.len(), cfg.q_dim(), "query length mismatch");
    assert_eq!(store.kv_dim(), cfg.kv_dim(), "store kv_dim mismatch");
    let ctx = store.len_of(seq).expect("sequence exists");
    assert!(ctx > 0, "attention over empty cache");
    let scale = 1.0 / (cfg.head_dim as f32).sqrt();
    let d = cfg.head_dim;

    let mut out = vec![0.0f32; cfg.q_dim()];
    // Per-head streaming state.
    let mut m = vec![f32::NEG_INFINITY; cfg.heads];
    let mut den = vec![0.0f32; cfg.heads];

    let mut k_deq = vec![0.0f32; d];
    let mut v_deq = vec![0.0f32; d];
    for t in 0..ctx {
        let k_row = store.k_at(seq, t).expect("in range");
        let v_row = store.v_at(seq, t).expect("in range");
        for h in 0..cfg.heads {
            let kh = cfg.kv_head_of(h);
            let base = kh * d;
            for c in 0..d {
                k_deq[c] = f32::from(k_row[base + c]) * store.quant.k_scales[base + c];
                v_deq[c] = f32::from(v_row[base + c]) * store.quant.v_scales[base + c];
            }
            let qh = &q[h * d..(h + 1) * d];
            let score = scale * qh.iter().zip(k_deq.iter()).map(|(a, b)| a * b).sum::<f32>();
            // Online softmax update.
            let m_new = m[h].max(score);
            let corr = if m[h].is_finite() {
                (m[h] - m_new).exp()
            } else {
                0.0
            };
            let p = (score - m_new).exp();
            den[h] = den[h] * corr + p;
            let acc = &mut out[h * d..(h + 1) * d];
            for c in 0..d {
                acc[c] = acc[c] * corr + p * v_deq[c];
            }
            m[h] = m_new;
        }
    }
    for h in 0..cfg.heads {
        let inv = 1.0 / den[h];
        for v in &mut out[h * cfg.head_dim..(h + 1) * cfg.head_dim] {
            *v *= inv;
        }
    }
    out
}

/// Naive reference attention over explicit f32 K/V history (oracle for
/// tests): full score vector, two-pass softmax.
#[must_use]
pub fn reference_attention(
    cfg: AttnConfig,
    q: &[f32],
    k_hist: &[Vec<f32>],
    v_hist: &[Vec<f32>],
) -> Vec<f32> {
    assert_eq!(k_hist.len(), v_hist.len());
    let scale = 1.0 / (cfg.head_dim as f32).sqrt();
    let d = cfg.head_dim;
    let mut out = vec![0.0f32; cfg.q_dim()];
    for h in 0..cfg.heads {
        let kh = cfg.kv_head_of(h);
        let qh = &q[h * d..(h + 1) * d];
        let scores: Vec<f32> = k_hist
            .iter()
            .map(|k| {
                scale
                    * qh.iter()
                        .zip(k[kh * d..(kh + 1) * d].iter())
                        .map(|(a, b)| a * b)
                        .sum::<f32>()
            })
            .collect();
        let m = scores.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let exps: Vec<f32> = scores.iter().map(|&s| (s - m).exp()).collect();
        let den: f32 = exps.iter().sum();
        for (p, v) in exps.iter().zip(v_hist.iter()) {
            for c in 0..d {
                out[h * d + c] += p / den * v[kh * d + c];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvQuantizer;

    const CFG: AttnConfig = AttnConfig {
        heads: 4,
        kv_heads: 2,
        head_dim: 8,
    };

    fn synth(i: usize, amp: f32) -> Vec<f32> {
        (0..CFG.kv_dim())
            .map(|c| ((i * CFG.kv_dim() + c) as f32 * 0.37).sin() * amp)
            .collect()
    }

    fn build_store(ctx: usize, amp: f32) -> (PagedKvStore, Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let quant = KvQuantizer::uniform(CFG.kv_dim(), amp);
        let mut store = PagedKvStore::new(64, 4, quant);
        store.add_sequence(0).unwrap();
        let mut ks = Vec::new();
        let mut vs = Vec::new();
        for t in 0..ctx {
            let k = synth(t, amp);
            let v = synth(t + 1000, amp);
            store.append(0, &k, &v).unwrap();
            ks.push(k);
            vs.push(v);
        }
        (store, ks, vs)
    }

    #[test]
    fn matches_reference_within_kv_quant_error() {
        let (store, ks, vs) = build_store(37, 1.5);
        let q: Vec<f32> = (0..CFG.q_dim()).map(|c| (c as f32 * 0.21).cos()).collect();
        let got = decode_attention(CFG, &q, &store, 0);
        let want = reference_attention(CFG, &q, &ks, &vs);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 0.05, "{g} vs {w}");
        }
    }

    #[test]
    fn gqa_maps_heads_correctly() {
        assert_eq!(CFG.kv_head_of(0), 0);
        assert_eq!(CFG.kv_head_of(1), 0);
        assert_eq!(CFG.kv_head_of(2), 1);
        assert_eq!(CFG.kv_head_of(3), 1);
    }

    #[test]
    fn single_token_context_returns_its_value() {
        // With one cached token, attention output = V (softmax of one).
        let (store, _, vs) = build_store(1, 1.0);
        let q = vec![0.3f32; CFG.q_dim()];
        let out = decode_attention(CFG, &q, &store, 0);
        for h in 0..CFG.heads {
            let kh = CFG.kv_head_of(h);
            for c in 0..CFG.head_dim {
                let want = vs[0][kh * CFG.head_dim + c];
                let got = out[h * CFG.head_dim + c];
                assert!((got - want).abs() < 0.02, "{got} vs {want}");
            }
        }
    }

    #[test]
    fn attends_to_matching_key() {
        // Plant one key aligned with the query: its value dominates.
        let quant = KvQuantizer::uniform(CFG.kv_dim(), 4.0);
        let mut store = PagedKvStore::new(64, 4, quant);
        store.add_sequence(0).unwrap();
        let aligned: Vec<f32> = (0..CFG.kv_dim()).map(|_| 3.5f32).collect();
        let noise: Vec<f32> = (0..CFG.kv_dim())
            .map(|c| if c % 2 == 0 { -3.5 } else { 3.5 })
            .collect();
        let v_hot = vec![1.0f32; CFG.kv_dim()];
        let v_cold = vec![-1.0f32; CFG.kv_dim()];
        for _ in 0..5 {
            store.append(0, &noise, &v_cold).unwrap();
        }
        store.append(0, &aligned, &v_hot).unwrap();
        let q = vec![1.0f32; CFG.q_dim()];
        let out = decode_attention(CFG, &q, &store, 0);
        // The aligned key's value should dominate the mixture.
        assert!(out.iter().all(|&v| v > 0.5), "{out:?}");
    }

    #[test]
    fn streaming_is_order_invariant_in_distribution() {
        // Same set of (K, V) pairs in two different orders → same output
        // (softmax is permutation invariant).
        let quant = KvQuantizer::uniform(CFG.kv_dim(), 2.0);
        let mut a = PagedKvStore::new(64, 4, quant.clone());
        let mut b = PagedKvStore::new(64, 4, quant);
        a.add_sequence(0).unwrap();
        b.add_sequence(0).unwrap();
        let toks: Vec<(Vec<f32>, Vec<f32>)> = (0..9)
            .map(|t| (synth(t, 1.0), synth(t + 50, 1.0)))
            .collect();
        for (k, v) in &toks {
            a.append(0, k, v).unwrap();
        }
        for (k, v) in toks.iter().rev() {
            b.append(0, k, v).unwrap();
        }
        let q: Vec<f32> = (0..CFG.q_dim()).map(|c| (c as f32).sin()).collect();
        let ya = decode_attention(CFG, &q, &a, 0);
        let yb = decode_attention(CFG, &q, &b, 0);
        for (u, v) in ya.iter().zip(yb.iter()) {
            assert!((u - v).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "attention over empty cache")]
    fn empty_cache_panics() {
        let quant = KvQuantizer::uniform(CFG.kv_dim(), 1.0);
        let mut store = PagedKvStore::new(4, 4, quant);
        store.add_sequence(0).unwrap();
        let q = vec![0.0f32; CFG.q_dim()];
        let _ = decode_attention(CFG, &q, &store, 0);
    }
}
