//! Token sampling: greedy, temperature, and top-k, with a deterministic
//! splitmix RNG so serving runs are reproducible.

/// Deterministic 64-bit RNG (splitmix64) for reproducible sampling.
#[derive(Debug, Clone)]
pub struct SampleRng {
    state: u64,
}

impl SampleRng {
    /// Seeded RNG.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Sampling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampling {
    /// Argmax.
    Greedy,
    /// Softmax at the given temperature (> 0).
    Temperature(f32),
    /// Top-k truncation then temperature softmax.
    TopK {
        /// Candidates kept.
        k: usize,
        /// Softmax temperature.
        temperature: f32,
    },
}

/// Sample one token id from logits under a policy.
#[must_use]
pub fn sample(logits: &[f32], policy: Sampling, rng: &mut SampleRng) -> usize {
    assert!(!logits.is_empty(), "empty logits");
    match policy {
        Sampling::Greedy => argmax(logits),
        Sampling::Temperature(t) => {
            assert!(t > 0.0, "temperature must be positive");
            softmax_sample(logits, t, rng, None)
        }
        Sampling::TopK { k, temperature } => {
            assert!(k >= 1, "top-k needs k >= 1");
            assert!(temperature > 0.0, "temperature must be positive");
            softmax_sample(logits, temperature, rng, Some(k))
        }
    }
}

fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

fn softmax_sample(logits: &[f32], t: f32, rng: &mut SampleRng, top_k: Option<usize>) -> usize {
    // Candidate set: all, or the k largest.
    let mut idx: Vec<usize> = (0..logits.len()).collect();
    if let Some(k) = top_k {
        idx.sort_by(|&a, &b| logits[b].partial_cmp(&logits[a]).expect("finite"));
        idx.truncate(k.min(logits.len()));
    }
    let m = idx
        .iter()
        .map(|&i| logits[i])
        .fold(f32::NEG_INFINITY, f32::max);
    let weights: Vec<f64> = idx
        .iter()
        .map(|&i| f64::from(((logits[i] - m) / t).exp()))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.uniform() * total;
    for (&i, &w) in idx.iter().zip(weights.iter()) {
        if u < w {
            return i;
        }
        u -= w;
    }
    *idx.last().expect("non-empty candidates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_in_range() {
        let mut a = SampleRng::new(7);
        let mut b = SampleRng::new(7);
        for _ in 0..100 {
            let x = a.uniform();
            assert_eq!(x, b.uniform());
            assert!((0.0..1.0).contains(&x));
        }
        let mut c = SampleRng::new(8);
        assert_ne!(a.uniform(), c.uniform());
    }

    #[test]
    fn greedy_is_argmax() {
        let mut rng = SampleRng::new(1);
        let logits = [0.1f32, 5.0, -2.0, 4.9];
        for _ in 0..10 {
            assert_eq!(sample(&logits, Sampling::Greedy, &mut rng), 1);
        }
    }

    #[test]
    fn low_temperature_approaches_greedy() {
        let mut rng = SampleRng::new(2);
        let logits = [0.0f32, 3.0, 1.0];
        let picks: Vec<usize> = (0..200)
            .map(|_| sample(&logits, Sampling::Temperature(0.05), &mut rng))
            .collect();
        let ones = picks.iter().filter(|&&p| p == 1).count();
        assert!(ones > 195, "{ones}/200");
    }

    #[test]
    fn high_temperature_spreads_mass() {
        let mut rng = SampleRng::new(3);
        let logits = [0.0f32, 1.0, 0.5];
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[sample(&logits, Sampling::Temperature(10.0), &mut rng)] += 1;
        }
        // At T=10 the distribution is near-uniform: every arm > 25%.
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 750, "arm {i}: {c}");
        }
    }

    #[test]
    fn top_k_excludes_the_tail() {
        let mut rng = SampleRng::new(4);
        let logits = [10.0f32, 9.5, -50.0, -60.0];
        for _ in 0..500 {
            let p = sample(
                &logits,
                Sampling::TopK {
                    k: 2,
                    temperature: 1.0,
                },
                &mut rng,
            );
            assert!(p < 2, "sampled tail token {p}");
        }
    }

    #[test]
    fn top_1_equals_greedy() {
        let mut rng = SampleRng::new(5);
        let logits = [0.3f32, 0.9, 0.7];
        for _ in 0..50 {
            assert_eq!(
                sample(
                    &logits,
                    Sampling::TopK {
                        k: 1,
                        temperature: 1.0
                    },
                    &mut rng
                ),
                1
            );
        }
    }

    #[test]
    fn sampling_frequencies_match_softmax() {
        // Chi-square-lite: empirical frequencies within 3 sigma of the
        // softmax probabilities.
        let logits = [1.0f32, 0.0, 2.0];
        let t = 1.0f32;
        let m = 2.0f32;
        let ws: Vec<f64> = logits
            .iter()
            .map(|&l| f64::from(((l - m) / t).exp()))
            .collect();
        let z: f64 = ws.iter().sum();
        let n = 20_000;
        let mut counts = [0usize; 3];
        let mut rng = SampleRng::new(6);
        for _ in 0..n {
            counts[sample(&logits, Sampling::Temperature(t), &mut rng)] += 1;
        }
        for i in 0..3 {
            let p = ws[i] / z;
            let expected = p * n as f64;
            let sigma = (n as f64 * p * (1.0 - p)).sqrt();
            let diff = (counts[i] as f64 - expected).abs();
            assert!(
                diff < 4.0 * sigma,
                "arm {i}: {} vs {expected} (sigma {sigma})",
                counts[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_panics() {
        let mut rng = SampleRng::new(9);
        let _ = sample(&[1.0], Sampling::Temperature(0.0), &mut rng);
    }
}
