//! Golden test: batched decode is *bit-exact* against per-sequence
//! decode.
//!
//! The serving runtime's whole premise is that stacking all running
//! sequences into one M=batch GEMM per layer changes throughput, not
//! results. Integer accumulation makes that exact: each row quantizes,
//! accumulates in i32, and dequantizes independently, so the logits of
//! a sequence cannot depend on who shares its batch. Here four
//! sequences with different prompt lengths (so they sit at different
//! KV positions — genuinely interleaved) are decoded (a) all at once
//! via `decode_step_batch` and (b) one at a time via `decode_step`,
//! and every logit must match with `max_abs_diff == 0.0`.

use lq_core::KernelKind;
use lq_engine::model::{ModelSpec, TinyLlm};
use lq_quant::mat::Mat;

/// Deterministic teacher-forced token stream for sequence `s`.
fn forced_token(spec: &ModelSpec, s: usize, step: usize) -> usize {
    (s * 31 + step * 7 + 5) % spec.vocab
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

fn run_pair(kind: KernelKind) {
    let spec = ModelSpec::tiny();
    let mut batched = TinyLlm::synthetic(spec, 64, kind);
    let mut sequential = TinyLlm::synthetic(spec, 64, kind);

    // Four interleaved sequences at different positions: prompts of
    // different lengths, prefilled identically in both models.
    let prompts: Vec<Vec<usize>> = (0..4)
        .map(|s| {
            (0..3 + s)
                .map(|i| (s * 13 + i * 3 + 1) % spec.vocab)
                .collect()
        })
        .collect();
    for (s, prompt) in prompts.iter().enumerate() {
        let id = s as u64;
        batched.add_sequence(id);
        sequential.add_sequence(id);
        let _ = batched.prefill(id, prompt);
        let _ = sequential.prefill(id, prompt);
    }

    for step in 0..6 {
        let slots: Vec<(u64, usize)> = (0..4)
            .map(|s| (s as u64, forced_token(&spec, s, step)))
            .collect();
        let batch_logits = batched.decode_step_batch(&slots);
        assert_eq!(batch_logits.rows(), 4);

        let mut solo_logits: Vec<Mat<f32>> = Vec::new();
        for &(id, tok) in &slots {
            let pos = sequential.kv[0].len_of(id).unwrap();
            solo_logits.push(sequential.decode_step(&[tok], &[id], &[pos]));
        }

        for (s, solo) in solo_logits.iter().enumerate() {
            let d = max_abs_diff(batch_logits.row(s), solo.row(0));
            assert_eq!(
                d, 0.0,
                "kind {kind:?}, step {step}, seq {s}: batched decode diverged by {d}"
            );
        }
    }

    // The two models must also hold identical KV lengths afterwards.
    for s in 0..4u64 {
        assert_eq!(
            batched.kv[0].len_of(s).unwrap(),
            sequential.kv[0].len_of(s).unwrap()
        );
    }
}

#[test]
fn batched_decode_bit_exact_serial() {
    run_pair(KernelKind::Serial);
}

#[test]
fn batched_decode_bit_exact_imfp() {
    // ImFp is the paper's full implicit-FP pipeline and the kernel the
    // serving runtime defaults to — the case that matters most.
    run_pair(KernelKind::ImFp);
}

#[test]
fn batched_decode_bit_exact_excp() {
    run_pair(KernelKind::ExCp);
}
