//! Integration: batched prefill must be numerically identical to
//! token-by-token decode of the same prompt (same GEMMs, same cache
//! contents), and the full generate path must be deterministic.

use lq_core::KernelKind;
use lq_engine::attention::AttnConfig;
use lq_engine::model::{ModelSpec, TinyLlm};
use lq_quant::metrics::error_stats;

fn spec() -> ModelSpec {
    ModelSpec {
        vocab: 64,
        hidden: 64,
        inter: 96,
        layers: 2,
        attn: AttnConfig {
            heads: 4,
            kv_heads: 2,
            head_dim: 16,
        },
        group: 32,
    }
}

#[test]
fn prefill_equals_token_by_token_decode() {
    let prompt = [3usize, 17, 42, 9, 55];
    // Path A: batched prefill.
    let mut a = TinyLlm::synthetic(spec(), 64, KernelKind::Serial);
    a.add_sequence(0);
    let la = a.prefill(0, &prompt);
    // Path B: decode one token at a time.
    let mut b = TinyLlm::synthetic(spec(), 64, KernelKind::Serial);
    b.add_sequence(0);
    let mut lb = None;
    for (pos, &t) in prompt.iter().enumerate() {
        lb = Some(b.decode_step(&[t], &[0], &[pos]));
    }
    let lb = lb.expect("non-empty prompt");
    // Same cache state...
    for l in 0..2 {
        assert_eq!(a.kv[l].len_of(0).unwrap(), b.kv[l].len_of(0).unwrap());
    }
    // ...and (near-)identical logits. Prefill quantizes activations per
    // token *within a batch* whose rows are individually scaled, so the
    // only difference is per-token quantization of identical rows —
    // which is identical. Expect bitwise-close output.
    let e = error_stats(&lb, &la);
    assert!(e.max_abs < 1e-4, "max diff {}", e.max_abs);
}

#[test]
fn generation_after_prefill_continues_correctly() {
    let mut m = TinyLlm::synthetic(spec(), 64, KernelKind::Serial);
    let toks = m.generate_greedy(0, &[1, 2, 3], 5);
    assert_eq!(toks.len(), 5);
    // KV holds prompt + generated - last-not-yet-appended... every
    // decode_step appends one token: 3 prompt (prefill) + 5 decode.
    assert_eq!(m.kv[0].len_of(0).unwrap(), 8);
}

#[test]
fn prefill_then_decode_matches_pure_decode_generation() {
    // End-to-end: greedy outputs from (prefill + decode) equal the
    // fully token-by-token path.
    let prompt = [7usize, 21, 33];
    let mut via_prefill = TinyLlm::synthetic(spec(), 64, KernelKind::Serial);
    let out_a = via_prefill.generate_greedy(0, &prompt, 6);

    let mut manual = TinyLlm::synthetic(spec(), 64, KernelKind::Serial);
    manual.add_sequence(0);
    let mut logits = None;
    for (pos, &t) in prompt.iter().enumerate() {
        logits = Some(manual.decode_step(&[t], &[0], &[pos]));
    }
    let mut logits = logits.unwrap();
    let mut out_b = Vec::new();
    for pos in prompt.len()..prompt.len() + 6 {
        let next = lq_engine::model::argmax(logits.row(0));
        out_b.push(next);
        logits = manual.decode_step(&[next], &[0], &[pos]);
    }
    assert_eq!(out_a, out_b);
}

#[test]
fn chunked_prefill_equals_full_prefill() {
    let prompt: Vec<usize> = (0..13).map(|i| (i * 11 + 3) % 64).collect();
    let mut full = TinyLlm::synthetic(spec(), 64, KernelKind::Serial);
    full.add_sequence(0);
    let lf = full.prefill(0, &prompt);
    for chunk in [1usize, 4, 5, 13, 64] {
        let mut chunked = TinyLlm::synthetic(spec(), 64, KernelKind::Serial);
        chunked.add_sequence(0);
        let lc = chunked.prefill_chunked(0, &prompt, chunk);
        let e = error_stats(&lf, &lc);
        assert!(e.max_abs < 1e-4, "chunk {chunk}: max diff {}", e.max_abs);
        assert_eq!(
            chunked.kv[0].len_of(0).unwrap(),
            full.kv[0].len_of(0).unwrap(),
            "chunk {chunk}: cache length"
        );
    }
}

#[test]
fn sampled_generation_is_reproducible() {
    use lq_engine::sampling::{sample, SampleRng, Sampling};
    let mut m1 = TinyLlm::synthetic(spec(), 64, KernelKind::Serial);
    let mut m2 = TinyLlm::synthetic(spec(), 64, KernelKind::Serial);
    let policy = Sampling::TopK {
        k: 8,
        temperature: 0.8,
    };
    let gen = |m: &mut TinyLlm| {
        m.add_sequence(0);
        let mut rng = SampleRng::new(42);
        let mut logits = m.prefill(0, &[1, 2, 3]);
        let mut out = Vec::new();
        for pos in 3usize..9 {
            let t = sample(logits.row(0), policy, &mut rng);
            out.push(t);
            logits = m.decode_step(&[t], &[0], &[pos]);
        }
        out
    };
    assert_eq!(gen(&mut m1), gen(&mut m2));
}
