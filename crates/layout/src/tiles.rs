//! Tile-shape configuration and output-tile iteration.
//!
//! GEMM on GPUs partitions the `M×N` output into `Mt×Nt` tiles, each
//! computed by one thread block iterating the K dimension in `Kt` steps
//! (paper, Section 2 / Figure 2). The same decomposition drives the CPU
//! kernels (tiles → worker tasks), the cost model (tile counts feed
//! Equations 5–6), and the pipeline simulator (tiles → scheduled work).

/// Tile sizes for one GEMM. All dimensions in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Output tile height (per thread block).
    pub mt: usize,
    /// Output tile width.
    pub nt: usize,
    /// K step per main-loop iteration.
    pub kt: usize,
}

impl TileConfig {
    /// The paper's default H800 configuration: WGMMA `m64`, `n` up to
    /// 256, `k32`-per-instruction with a 64-wide SMEM stage.
    pub const HOPPER_DEFAULT: TileConfig = TileConfig {
        mt: 64,
        nt: 128,
        kt: 64,
    };

    /// Tile counts `(m, n, k)` for a problem of shape `M×N×K`
    /// (ceiling division; Eq. 5–6 use these).
    #[must_use]
    pub fn tile_counts(&self, m: usize, n: usize, k: usize) -> (usize, usize, usize) {
        (
            m.div_ceil(self.mt),
            n.div_ceil(self.nt),
            k.div_ceil(self.kt),
        )
    }

    /// Total output tiles for a problem.
    #[must_use]
    pub fn output_tiles(&self, m: usize, n: usize) -> usize {
        m.div_ceil(self.mt) * n.div_ceil(self.nt)
    }

    /// Effective output height `min(Mt, M)` — the cost model's correction
    /// for batches smaller than the tile (Eq. 6).
    #[must_use]
    pub fn effective_m(&self, m: usize) -> usize {
        self.mt.min(m)
    }
}

/// One output tile: half-open ranges into the output matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Row range start.
    pub m0: usize,
    /// Row range end (exclusive).
    pub m1: usize,
    /// Column range start.
    pub n0: usize,
    /// Column range end (exclusive).
    pub n1: usize,
}

impl Tile {
    /// Tile height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.m1 - self.m0
    }

    /// Tile width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.n1 - self.n0
    }
}

/// Iterator over the output tiles of an `M×N` problem, row-major
/// (the persistent-kernel scheduling order).
#[derive(Debug, Clone)]
pub struct TileIter {
    cfg: TileConfig,
    m: usize,
    n: usize,
    next: usize,
    total: usize,
}

impl TileIter {
    /// Tiles of an `M×N` output under `cfg`.
    #[must_use]
    pub fn new(cfg: TileConfig, m: usize, n: usize) -> Self {
        let total = cfg.output_tiles(m, n);
        Self {
            cfg,
            m,
            n,
            next: 0,
            total,
        }
    }

    /// Number of tiles remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.total - self.next
    }

    /// The tile with linear index `i` (row-major over the tile grid).
    #[must_use]
    pub fn tile_at(&self, i: usize) -> Tile {
        let tiles_n = self.n.div_ceil(self.cfg.nt);
        let (ti, tj) = (i / tiles_n, i % tiles_n);
        Tile {
            m0: ti * self.cfg.mt,
            m1: ((ti + 1) * self.cfg.mt).min(self.m),
            n0: tj * self.cfg.nt,
            n1: ((tj + 1) * self.cfg.nt).min(self.n),
        }
    }
}

impl Iterator for TileIter {
    type Item = Tile;

    fn next(&mut self) -> Option<Tile> {
        if self.next >= self.total {
            return None;
        }
        let t = self.tile_at(self.next);
        self.next += 1;
        Some(t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining();
        (r, Some(r))
    }
}

impl ExactSizeIterator for TileIter {}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: TileConfig = TileConfig {
        mt: 64,
        nt: 128,
        kt: 64,
    };

    #[test]
    fn tile_counts_use_ceiling_division() {
        assert_eq!(CFG.tile_counts(65, 128, 100), (2, 1, 2));
        assert_eq!(CFG.tile_counts(64, 129, 64), (1, 2, 1));
        assert_eq!(CFG.output_tiles(130, 257), 3 * 3);
    }

    #[test]
    fn effective_m_clamps_to_batch() {
        assert_eq!(CFG.effective_m(4), 4);
        assert_eq!(CFG.effective_m(256), 64);
    }

    #[test]
    fn iterator_covers_output_exactly_once() {
        let (m, n) = (100, 300);
        let mut covered = vec![0u8; m * n];
        for t in TileIter::new(CFG, m, n) {
            for r in t.m0..t.m1 {
                for c in t.n0..t.n1 {
                    covered[r * n + c] += 1;
                }
            }
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "every output cell exactly once"
        );
    }

    #[test]
    fn edge_tiles_are_clipped() {
        let tiles: Vec<Tile> = TileIter::new(CFG, 65, 129).collect();
        assert_eq!(tiles.len(), 4);
        let last = tiles[3];
        assert_eq!((last.height(), last.width()), (1, 1));
    }

    #[test]
    fn exact_size_iterator_contract() {
        let mut it = TileIter::new(CFG, 128, 256);
        assert_eq!(it.len(), 2 * 2);
        it.next();
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn tile_at_matches_iteration_order() {
        let it = TileIter::new(CFG, 200, 200);
        let collected: Vec<Tile> = it.clone().collect();
        for (i, t) in collected.iter().enumerate() {
            assert_eq!(*t, it.tile_at(i));
        }
    }
}
