//! The dual-MMA packed layout (paper, Section 5.2 / Figure 7b).
//!
//! One `WGMMA` needs 16 UINT4 elements per thread, but the widest
//! shared-memory load (`LDS.128`) moves 32 UINT4 elements. The dual-MMA
//! packed layout closes that gap by packing the elements a thread needs
//! for **two consecutive MMAs** contiguously, so a single `LDS.128`
//! fills the thread's registers for both. The weights are reordered
//! *offline* into a 1-D stream: no swizzling, no bank conflicts, no
//! online address arithmetic beyond one pointer increment.
//!
//! On the CPU reproduction the same principle applies with cache lines
//! in place of SMEM transactions: the packed stream is consumed strictly
//! sequentially by the dequant microkernel, which is what makes the
//! measured kernels bandwidth-friendly.

use crate::pack::{pack_row_words, unpack_row_words};

/// Elements per `LDS.128` transaction (32 × UINT4 = 16 bytes).
pub const ELEMS_PER_LDS128: usize = 32;
/// Elements a thread consumes per MMA (16 × UINT4 = 8 bytes).
pub const ELEMS_PER_MMA_THREAD: usize = 16;

/// UINT4 weights arranged in the dual-MMA packed layout.
///
/// Logical shape `N×K`; physically each row is a stream of `u32` words
/// in interleaved nibble order (see [`crate::pack::INTERLEAVE`]), so the
/// kernel's register-level unpack emits elements in consumption order.
/// ```
/// use lq_layout::dual_mma::DualMmaWeights;
/// let vals: Vec<u8> = (0..2 * 16).map(|i| (i % 16) as u8).collect();
/// let packed = DualMmaWeights::pack(&vals, 2, 16);
/// assert_eq!(packed.packed_bytes(), 16); // 4 bits per element
/// assert_eq!(packed.unpack_all(), vals); // lossless
/// ```
#[derive(Debug, Clone)]
pub struct DualMmaWeights {
    n: usize,
    k: usize,
    words_per_row: usize,
    words: Vec<u32>,
}

impl DualMmaWeights {
    /// Pack row-major UINT4 values (one per byte, `< 16`) of an `N×K`
    /// matrix. `K` must be a multiple of 8 (one packed word).
    #[must_use]
    pub fn pack(values: &[u8], n: usize, k: usize) -> Self {
        assert_eq!(values.len(), n * k, "values length != N*K");
        assert_eq!(k % 8, 0, "K must be a multiple of 8");
        let words_per_row = k / 8;
        let mut words = Vec::with_capacity(n * words_per_row);
        for row in values.chunks_exact(k) {
            words.extend_from_slice(&pack_row_words(row));
        }
        Self {
            n,
            k,
            words_per_row,
            words,
        }
    }

    /// Output channels (N).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reduction dim (K).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Packed words of one row (the kernel's streaming view).
    #[must_use]
    pub fn row_words(&self, row: usize) -> &[u32] {
        assert!(row < self.n, "row {row} out of bounds");
        &self.words[row * self.words_per_row..(row + 1) * self.words_per_row]
    }

    /// Packed words of rows `[r0, r1)` as one contiguous slice — a weight
    /// tile as transferred GMEM → SMEM by the Load WG.
    #[must_use]
    pub fn rows_words(&self, r0: usize, r1: usize) -> &[u32] {
        assert!(r0 <= r1 && r1 <= self.n);
        &self.words[r0 * self.words_per_row..r1 * self.words_per_row]
    }

    /// Words covering `[k0, k1)` of one row (`k0`, `k1` multiples of 8).
    #[must_use]
    pub fn row_kslice(&self, row: usize, k0: usize, k1: usize) -> &[u32] {
        assert!(k0.is_multiple_of(8) && k1.is_multiple_of(8) && k0 <= k1 && k1 <= self.k);
        let base = row * self.words_per_row;
        &self.words[base + k0 / 8..base + k1 / 8]
    }

    /// Unpack everything back to row-major UINT4 values (verification).
    #[must_use]
    pub fn unpack_all(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.n * self.k);
        for r in 0..self.n {
            out.extend(unpack_row_words(self.row_words(r)));
        }
        out
    }

    /// Total packed bytes (the GMEM traffic the Load WG generates).
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 4
    }
}

/// Shared-memory load cost of one weight fragment under each access
/// discipline (per warp of 32 threads, counts per main-loop iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadCost {
    /// 128-bit load transactions.
    pub lds128: usize,
    /// 32-bit load transactions.
    pub lds32: usize,
    /// Address computations on CUDA cores.
    pub addr_calcs: usize,
    /// Bytes actually moved from SMEM.
    pub bytes_moved: usize,
    /// Bytes of that traffic the MMA consumes.
    pub bytes_useful: usize,
}

impl LoadCost {
    /// Fraction of moved bytes that are useful.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        if self.bytes_moved == 0 {
            1.0
        } else {
            self.bytes_useful as f64 / self.bytes_moved as f64
        }
    }
}

/// Cost of loading `elems` UINT4 weights per thread with the dual-MMA
/// packed layout: one `LDS.128` per 32 elements, one address increment
/// per load, zero waste.
#[must_use]
pub fn dual_mma_load_cost(elems: usize) -> LoadCost {
    assert_eq!(
        elems % ELEMS_PER_LDS128,
        0,
        "elems must be a multiple of 32"
    );
    let loads = elems / ELEMS_PER_LDS128;
    LoadCost {
        lds128: loads,
        lds32: 0,
        addr_calcs: loads,
        bytes_moved: loads * 16,
        bytes_useful: elems / 2,
    }
}

/// Cost of the `LDS.32` fallback the paper rejects: each 32-bit load
/// carries 8 UINT4 elements but the thread needs only 4 of them
/// (the other 4 belong to a different thread's fragment lanes), so half
/// the bandwidth is wasted and every load needs its own strided address
/// computation.
#[must_use]
pub fn lds32_load_cost(elems: usize) -> LoadCost {
    assert_eq!(elems % 4, 0, "elems must be a multiple of 4");
    let loads = elems / 4; // 4 useful elements per 32-bit load
    LoadCost {
        lds128: 0,
        lds32: loads,
        addr_calcs: loads,
        bytes_moved: loads * 4,
        bytes_useful: elems / 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_values(n: usize, k: usize) -> Vec<u8> {
        (0..n * k).map(|i| (i % 16) as u8).collect()
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let (n, k) = (4, 64);
        let vals = ramp_values(n, k);
        let w = DualMmaWeights::pack(&vals, n, k);
        assert_eq!(w.unpack_all(), vals);
        assert_eq!(w.packed_bytes(), n * k / 2);
    }

    #[test]
    fn row_and_kslice_views_are_consistent() {
        let (n, k) = (3, 32);
        let vals = ramp_values(n, k);
        let w = DualMmaWeights::pack(&vals, n, k);
        assert_eq!(w.row_words(1).len(), 4);
        assert_eq!(w.row_kslice(1, 8, 24).len(), 2);
        assert_eq!(w.row_kslice(1, 0, 32), w.row_words(1));
        assert_eq!(w.rows_words(0, 3).len(), 12);
        // kslice aligns with full-row packing.
        assert_eq!(&w.row_words(2)[1..3], w.row_kslice(2, 8, 24));
    }

    #[test]
    fn dual_mma_loads_are_halved_vs_lds32() {
        // Two MMAs worth of weights per thread: 32 elements.
        let elems = 2 * ELEMS_PER_MMA_THREAD;
        let packed = dual_mma_load_cost(elems);
        let fallback = lds32_load_cost(elems);
        assert_eq!(packed.lds128, 1);
        assert_eq!(fallback.lds32, 8);
        // Full efficiency vs half.
        assert_eq!(packed.efficiency(), 1.0);
        assert_eq!(fallback.efficiency(), 0.5);
        // 8x fewer address computations.
        assert_eq!(fallback.addr_calcs / packed.addr_calcs, 8);
    }

    #[test]
    fn load_cost_scales_linearly() {
        let a = dual_mma_load_cost(32);
        let b = dual_mma_load_cost(320);
        assert_eq!(b.lds128, 10 * a.lds128);
        assert_eq!(b.bytes_moved, 10 * a.bytes_moved);
    }

    #[test]
    #[should_panic(expected = "values length != N*K")]
    fn pack_shape_mismatch_panics() {
        let _ = DualMmaWeights::pack(&[0u8; 10], 2, 8);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn pack_bad_k_panics() {
        let _ = DualMmaWeights::pack(&[0u8; 12], 2, 6);
    }
}
