//! Bit-packing UINT4 weights into 32-bit words.
//!
//! A `u32` word holds eight 4-bit elements. The register-level unpack
//! ([`lq_swar::unpack::unpack8_u4_to_2xu8x4`]) splits even nibbles into
//! one register and odd nibbles into another, so a *naively* packed word
//! would come out of the ALU in the order `(0,2,4,6),(1,3,5,7)`. The
//! paper's layouts fix this **offline**: weights are pre-permuted at pack
//! time so the post-unpack order is exactly the order the MMA consumes.
//! [`INTERLEAVE`] is that permutation.

use lq_swar::unpack::pack8_u4;

/// Offline interleave: element `i` of the logical order is stored in
/// nibble `INTERLEAVE[i]`, so that after the even/odd unpack the two
/// result registers hold logical elements `0..4` and `4..8` in order.
pub const INTERLEAVE: [usize; 8] = [0, 2, 4, 6, 1, 3, 5, 7];

/// Pack 8 logical elements into one word with the interleave applied.
///
/// After `unpack8_u4_to_2xu8x4`, `lo` holds `vals[0..4]` and `hi` holds
/// `vals[4..8]` — consumption order, no online shuffling.
#[must_use]
pub fn pack_interleaved8(vals: &[u8]) -> u32 {
    assert_eq!(vals.len(), 8, "pack_interleaved8 needs exactly 8 values");
    let mut nibbles = [0u8; 8];
    for (i, &v) in vals.iter().enumerate() {
        debug_assert!(v < 16, "u4 value out of range: {v}");
        nibbles[INTERLEAVE[i]] = v;
    }
    pack8_u4(nibbles)
}

/// Pack a row of UINT4 values (length divisible by 8) into words,
/// interleaved for the register path.
#[must_use]
pub fn pack_row_words(vals: &[u8]) -> Vec<u32> {
    assert_eq!(vals.len() % 8, 0, "row length must be a multiple of 8");
    vals.chunks_exact(8).map(pack_interleaved8).collect()
}

/// Inverse of [`pack_row_words`] (offline verification only).
#[must_use]
pub fn unpack_row_words(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for &w in words {
        for &lane in &INTERLEAVE {
            let nib = lane as u32;
            out.push(((w >> (4 * nib)) & 0xF) as u8);
        }
    }
    out
}

/// Plain (non-interleaved) packing: nibble `i` = element `i`.
/// Used by the conventional-layout baselines.
#[must_use]
pub fn pack_row_words_plain(vals: &[u8]) -> Vec<u32> {
    assert_eq!(vals.len() % 8, 0, "row length must be a multiple of 8");
    vals.chunks_exact(8)
        .map(|c| pack8_u4([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect()
}

/// Inverse of [`pack_row_words_plain`].
#[must_use]
pub fn unpack_row_words_plain(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for &w in words {
        for i in 0..8u32 {
            out.push(((w >> (4 * i)) & 0xF) as u8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lq_swar::audit::CountingAlu;
    use lq_swar::unpack::unpack8_u4_to_2xu8x4;

    #[test]
    fn interleave_is_a_permutation() {
        let mut seen = [false; 8];
        for &i in &INTERLEAVE {
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn interleaved_pack_unpacks_in_consumption_order() {
        let vals = [3u8, 1, 4, 1, 5, 9, 2, 6];
        let w = pack_interleaved8(&vals);
        let mut alu = CountingAlu::new();
        let u = unpack8_u4_to_2xu8x4(&mut alu, w);
        assert_eq!(u.lo.to_le_bytes(), [3, 1, 4, 1]);
        assert_eq!(u.hi.to_le_bytes(), [5, 9, 2, 6]);
    }

    #[test]
    fn row_words_roundtrip() {
        let vals: Vec<u8> = (0..64).map(|i| (i * 7 % 16) as u8).collect();
        let words = pack_row_words(&vals);
        assert_eq!(words.len(), 8);
        assert_eq!(unpack_row_words(&words), vals);
    }

    #[test]
    fn plain_roundtrip() {
        let vals: Vec<u8> = (0..32).map(|i| (i % 16) as u8).collect();
        assert_eq!(unpack_row_words_plain(&pack_row_words_plain(&vals)), vals);
    }

    #[test]
    fn interleaved_and_plain_differ() {
        let vals: Vec<u8> = (0..8).collect();
        assert_ne!(pack_row_words(&vals), pack_row_words_plain(&vals));
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn odd_length_panics() {
        let _ = pack_row_words(&[1, 2, 3]);
    }
}
