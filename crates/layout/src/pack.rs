//! Bit-packing UINT4 weights into 32-bit words.
//!
//! A `u32` word holds eight 4-bit elements. The register-level unpack
//! ([`lq_swar::unpack::unpack8_u4_to_2xu8x4`]) splits even nibbles into
//! one register and odd nibbles into another, so a *naively* packed word
//! would come out of the ALU in the order `(0,2,4,6),(1,3,5,7)`. The
//! paper's layouts fix this **offline**: weights are pre-permuted at pack
//! time so the post-unpack order is exactly the order the MMA consumes.
//! [`INTERLEAVE`] is that permutation.

use lq_swar::unpack::pack8_u4;

/// Offline interleave: element `i` of the logical order is stored in
/// nibble `INTERLEAVE[i]`, so that after the even/odd unpack the two
/// result registers hold logical elements `0..4` and `4..8` in order.
pub const INTERLEAVE: [usize; 8] = [0, 2, 4, 6, 1, 3, 5, 7];

/// Pack 8 logical elements into one word with the interleave applied.
///
/// After `unpack8_u4_to_2xu8x4`, `lo` holds `vals[0..4]` and `hi` holds
/// `vals[4..8]` — consumption order, no online shuffling.
#[must_use]
pub fn pack_interleaved8(vals: &[u8]) -> u32 {
    assert_eq!(vals.len(), 8, "pack_interleaved8 needs exactly 8 values");
    let mut nibbles = [0u8; 8];
    for (i, &v) in vals.iter().enumerate() {
        debug_assert!(v < 16, "u4 value out of range: {v}");
        nibbles[INTERLEAVE[i]] = v;
    }
    pack8_u4(nibbles)
}

/// Pack a row of UINT4 values (length divisible by 8) into words,
/// interleaved for the register path.
#[must_use]
pub fn pack_row_words(vals: &[u8]) -> Vec<u32> {
    assert_eq!(vals.len() % 8, 0, "row length must be a multiple of 8");
    vals.chunks_exact(8).map(pack_interleaved8).collect()
}

/// Inverse of [`pack_row_words`] (offline verification only).
#[must_use]
pub fn unpack_row_words(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for &w in words {
        for &lane in &INTERLEAVE {
            let nib = lane as u32;
            out.push(((w >> (4 * nib)) & 0xF) as u8);
        }
    }
    out
}

/// K-major packing of an activation block into `mr`-row panels — the
/// BLIS-style "A panel" layout, kept as a *measured counterexample* for
/// the CPU microkernel (see `lq_core::microkernel`'s module doc).
///
/// `src` is a row-major `m×k` INT8 block. The output holds
/// `m / mr` complete panels (tail rows `m - m % mr` onward are *not*
/// packed — an edge path would read them straight from the source
/// rows). Panel `p` stores element `(p*mr + i, t)` at
/// `p*k*mr + t*mr + i`: walking K, the `mr` token lanes of one K step
/// are adjacent — the layout hand-written SIMD microkernels broadcast
/// from. Under LLVM *autovectorization* (this workspace forbids
/// intrinsics) the stride-`mr` lane access defeats the reduction-loop
/// vectorizer, and the register-tiled microkernel measured 2–5× slower
/// on this layout than on plain contiguous rows, so `lq-core` stages
/// activations row-major instead and this pack is not on the hot path.
#[must_use]
pub fn pack_a_panels_kmajor(src: &[i8], m: usize, k: usize, mr: usize) -> Vec<i8> {
    assert!(mr >= 1, "panel height must be >= 1");
    assert_eq!(src.len(), m * k, "source must be a dense m*k block");
    let panels = m / mr;
    let mut out = vec![0i8; panels * k * mr];
    for p in 0..panels {
        let base = p * k * mr;
        for i in 0..mr {
            let row = &src[(p * mr + i) * k..(p * mr + i + 1) * k];
            for (t, &v) in row.iter().enumerate() {
                out[base + t * mr + i] = v;
            }
        }
    }
    out
}

/// Inverse of [`pack_a_panels_kmajor`] over the packed rows (offline
/// verification only): returns the `(m / mr) * mr` packed rows in
/// row-major order.
#[must_use]
pub fn unpack_a_panels_kmajor(packed: &[i8], k: usize, mr: usize) -> Vec<i8> {
    assert!(mr >= 1 && k >= 1);
    assert_eq!(packed.len() % (k * mr), 0, "not a whole number of panels");
    let panels = packed.len() / (k * mr);
    let mut out = vec![0i8; panels * mr * k];
    for p in 0..panels {
        let base = p * k * mr;
        for i in 0..mr {
            for t in 0..k {
                out[(p * mr + i) * k + t] = packed[base + t * mr + i];
            }
        }
    }
    out
}

/// Plain (non-interleaved) packing: nibble `i` = element `i`.
/// Used by the conventional-layout baselines.
#[must_use]
pub fn pack_row_words_plain(vals: &[u8]) -> Vec<u32> {
    assert_eq!(vals.len() % 8, 0, "row length must be a multiple of 8");
    vals.chunks_exact(8)
        .map(|c| pack8_u4([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect()
}

/// Inverse of [`pack_row_words_plain`].
#[must_use]
pub fn unpack_row_words_plain(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for &w in words {
        for i in 0..8u32 {
            out.push(((w >> (4 * i)) & 0xF) as u8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lq_swar::audit::CountingAlu;
    use lq_swar::unpack::unpack8_u4_to_2xu8x4;

    #[test]
    fn interleave_is_a_permutation() {
        let mut seen = [false; 8];
        for &i in &INTERLEAVE {
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn interleaved_pack_unpacks_in_consumption_order() {
        let vals = [3u8, 1, 4, 1, 5, 9, 2, 6];
        let w = pack_interleaved8(&vals);
        let mut alu = CountingAlu::new();
        let u = unpack8_u4_to_2xu8x4(&mut alu, w);
        assert_eq!(u.lo.to_le_bytes(), [3, 1, 4, 1]);
        assert_eq!(u.hi.to_le_bytes(), [5, 9, 2, 6]);
    }

    #[test]
    fn row_words_roundtrip() {
        let vals: Vec<u8> = (0..64).map(|i| (i * 7 % 16) as u8).collect();
        let words = pack_row_words(&vals);
        assert_eq!(words.len(), 8);
        assert_eq!(unpack_row_words(&words), vals);
    }

    #[test]
    fn plain_roundtrip() {
        let vals: Vec<u8> = (0..32).map(|i| (i % 16) as u8).collect();
        assert_eq!(unpack_row_words_plain(&pack_row_words_plain(&vals)), vals);
    }

    #[test]
    fn interleaved_and_plain_differ() {
        let vals: Vec<u8> = (0..8).collect();
        assert_ne!(pack_row_words(&vals), pack_row_words_plain(&vals));
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn odd_length_panics() {
        let _ = pack_row_words(&[1, 2, 3]);
    }

    #[test]
    fn a_panels_roundtrip_exact_multiple() {
        let (m, k, mr) = (8, 10, 4);
        let src: Vec<i8> = (0..m * k).map(|v| (v % 251) as i8).collect();
        let packed = pack_a_panels_kmajor(&src, m, k, mr);
        assert_eq!(packed.len(), (m / mr) * k * mr);
        assert_eq!(unpack_a_panels_kmajor(&packed, k, mr), src);
    }

    #[test]
    fn a_panels_kmajor_layout_is_token_adjacent() {
        // 2 rows, k=3, mr=2: element (row, t) lands at t*2 + row.
        let src: Vec<i8> = vec![1, 2, 3, 4, 5, 6];
        let packed = pack_a_panels_kmajor(&src, 2, 3, 2);
        assert_eq!(packed, vec![1, 4, 2, 5, 3, 6]);
    }

    #[test]
    fn a_panels_tail_rows_are_dropped() {
        // m=7, mr=4: one full panel (rows 0..4); rows 4..7 unpacked.
        let (m, k, mr) = (7, 5, 4);
        let src: Vec<i8> = (0..(m * k) as i32).map(|v| (v - 17) as i8).collect();
        let packed = pack_a_panels_kmajor(&src, m, k, mr);
        assert_eq!(packed.len(), k * mr);
        assert_eq!(unpack_a_panels_kmajor(&packed, k, mr), src[..4 * k]);
    }

    #[test]
    fn a_panels_m_smaller_than_mr_packs_nothing() {
        let src = vec![1i8, 2, 3, 4];
        assert!(pack_a_panels_kmajor(&src, 1, 4, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "dense m*k block")]
    fn a_panels_shape_mismatch_panics() {
        let _ = pack_a_panels_kmajor(&[1, 2, 3], 2, 2, 2);
    }
}
