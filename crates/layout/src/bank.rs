//! Shared-memory bank-conflict accounting.
//!
//! Hopper SMEM has 32 banks of 4 bytes; a warp access that maps two or
//! more threads to different 4-byte words in the same bank serialises
//! into that many transactions. The dual-MMA packed layout stores each
//! thread's data in a distinct, consecutive 16-byte segment, so a warp's
//! 32 `LDS.128` lanes sweep all banks exactly once per phase — zero
//! conflicts — whereas 2-D strided layouts need swizzling to avoid
//! multi-way conflicts (paper, Section 5.2). This module computes the
//! conflict degree of arbitrary access patterns so tests can assert both
//! halves of that claim.

/// Number of SMEM banks.
pub const NUM_BANKS: usize = 32;
/// Bytes per bank word.
pub const BANK_WIDTH: usize = 4;

/// Conflict report for one warp-wide access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictReport {
    /// Maximum number of distinct words mapped to one bank — the
    /// serialisation factor (1 = conflict-free).
    pub degree: usize,
    /// Total SMEM transactions the access costs.
    pub transactions: usize,
}

/// Analyse one warp access given each thread's byte address and access
/// width in bytes. Threads reading the *same* word in the same bank
/// broadcast (no conflict); distinct words in the same bank serialise.
///
/// Wide accesses (8/16 bytes) are split into 4-byte phases the way the
/// hardware issues them: phase `p` accesses byte `addr + 4p`, and phases
/// are independent transactions.
#[must_use]
pub fn analyze_access(addrs: &[usize], width: usize) -> ConflictReport {
    assert!(
        width == 4 || width == 8 || width == 16,
        "width must be 4, 8, or 16"
    );
    let phases = width / 4;
    let mut degree = 1;
    let mut transactions = 0;
    for p in 0..phases {
        let mut words_per_bank: Vec<Vec<usize>> = vec![Vec::new(); NUM_BANKS];
        for &a in addrs {
            let addr = a + 4 * p;
            let word = addr / BANK_WIDTH;
            let bank = word % NUM_BANKS;
            if !words_per_bank[bank].contains(&word) {
                words_per_bank[bank].push(word);
            }
        }
        let phase_degree = words_per_bank
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .max(1);
        degree = degree.max(phase_degree);
        transactions += phase_degree;
    }
    ConflictReport {
        degree,
        transactions,
    }
}

/// Addresses of a warp performing `LDS.128` over the dual-MMA 1-D packed
/// layout: thread `t` reads bytes `[16t, 16t+16)`.
#[must_use]
pub fn dual_mma_addresses(threads: usize) -> Vec<usize> {
    (0..threads).map(|t| t * 16).collect()
}

/// Addresses of a warp reading a column of a 2-D row-major tile without
/// swizzling: thread `t` reads the 4-byte word at row `t`, fixed column
/// `col`, with `row_stride_bytes` between rows. When the stride is a
/// multiple of 128 bytes, all threads hit the same bank.
#[must_use]
pub fn strided_2d_addresses(threads: usize, row_stride_bytes: usize, col: usize) -> Vec<usize> {
    (0..threads)
        .map(|t| t * row_stride_bytes + col * 4)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_mma_layout_is_conflict_free() {
        // 32 threads × LDS.128 over consecutive 16-byte segments: in each
        // 4-byte phase, thread t hits bank (4t + p) % 32 — all distinct
        // per phase group... verify via the model.
        let r = analyze_access(&dual_mma_addresses(32), 16);
        assert_eq!(
            r.degree, 4,
            "16B apart → 4-way phase sharing is inherent; hardware splits into quarter-warps"
        );
    }

    #[test]
    fn dual_mma_quarter_warp_phases_are_conflict_free() {
        // LDS.128 is issued as 4 quarter-warp phases of 8 threads each;
        // within a phase the 8 threads' 16-byte segments cover 32 banks
        // exactly once.
        for quarter in 0..4 {
            let addrs: Vec<usize> = (0..8).map(|t| (quarter * 8 + t) * 16).collect();
            let r = analyze_access(&addrs, 16);
            assert_eq!(r.degree, 1, "quarter {quarter} must be conflict-free");
            assert_eq!(r.transactions, 4);
        }
    }

    #[test]
    fn unswizzled_2d_column_access_conflicts_badly() {
        // Row stride 128 bytes (a 128-byte tile row): every thread maps
        // to the same bank → 32-way conflict.
        let addrs = strided_2d_addresses(32, 128, 0);
        let r = analyze_access(&addrs, 4);
        assert_eq!(r.degree, 32);
        assert_eq!(r.transactions, 32);
    }

    #[test]
    fn smaller_strides_conflict_proportionally() {
        // 64-byte stride → threads alternate between just 2 banks
        // (bank = 16t mod 32), 16 distinct words each → 16-way.
        let addrs = strided_2d_addresses(32, 64, 0);
        assert_eq!(analyze_access(&addrs, 4).degree, 16);
        // 4-byte stride (fully coalesced row read) → conflict-free.
        let addrs = strided_2d_addresses(32, 4, 0);
        assert_eq!(analyze_access(&addrs, 4).degree, 1);
    }

    #[test]
    fn broadcast_reads_do_not_conflict() {
        let addrs = vec![64usize; 32];
        let r = analyze_access(&addrs, 4);
        assert_eq!(r.degree, 1);
        assert_eq!(r.transactions, 1);
    }

    #[test]
    #[should_panic(expected = "width must be 4, 8, or 16")]
    fn bad_width_panics() {
        let _ = analyze_access(&[0], 2);
    }
}
