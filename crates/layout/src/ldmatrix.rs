//! Model of the `ldmatrix` byte-granularity scatter and why it breaks
//! for 4-bit elements (paper, Section 5.2 / Figure 7a).
//!
//! `ldmatrix` loads 16 contiguous bytes per transaction and scatters each
//! 4-byte group to the thread whose MMA lanes it *assumes* the group
//! belongs to — an assumption valid only when elements are 1 byte. With
//! UINT4 weights every byte carries two elements, so each 4-byte group
//! spans the fragments of **two** threads: data meant for `T2`/`T3`
//! lands in `T1`'s registers, exactly the mis-delivery the paper
//! illustrates. This module models the ownership mapping and lets tests
//! state the failure precisely rather than hand-waving it.

/// Model of one fragment row: 32 logical elements owned 4-apiece by 8
/// threads (`owner(e) = e / 4`), scattered by byte-granular 4-byte
/// groups (`group g → thread g`).
///
/// Returns, for each receiving thread, the list of owning threads of the
/// elements it actually receives.
#[must_use]
pub fn scatter_ownership(elem_bits: usize) -> Vec<Vec<usize>> {
    assert!(
        elem_bits == 4 || elem_bits == 8,
        "model covers 4- and 8-bit"
    );
    let elems_per_byte = 8 / elem_bits;
    let threads = 8;
    (0..threads)
        .map(|t| {
            // Thread t receives bytes [4t, 4t+4) of the row.
            let first_elem = 4 * t * elems_per_byte;
            let n_elems = 4 * elems_per_byte;
            let mut owners: Vec<usize> =
                (first_elem..first_elem + n_elems).map(|e| e / 4).collect();
            owners.dedup();
            owners
        })
        .collect()
}

/// True when every thread receives exactly (and only) its own elements.
#[must_use]
pub fn delivery_is_correct(ownership: &[Vec<usize>]) -> bool {
    ownership
        .iter()
        .enumerate()
        .all(|(t, owners)| owners.len() == 1 && owners[0] == t)
}

/// Number of threads that received at least one element they do not own.
#[must_use]
pub fn misdelivered_threads(ownership: &[Vec<usize>]) -> usize {
    ownership
        .iter()
        .enumerate()
        .filter(|(t, owners)| owners.iter().any(|o| o != t))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_bit_elements_deliver_correctly() {
        let own = scatter_ownership(8);
        assert!(delivery_is_correct(&own));
        assert_eq!(misdelivered_threads(&own), 0);
    }

    #[test]
    fn four_bit_elements_misscatter() {
        let own = scatter_ownership(4);
        assert!(!delivery_is_correct(&own));
        // Every group now spans two owners; all but T0's first half are
        // misdelivered somewhere.
        assert!(misdelivered_threads(&own) >= 7);
        // The paper's concrete example: T1 receives data of T2 and T3.
        assert_eq!(own[1], vec![2, 3]);
    }

    #[test]
    fn four_bit_groups_span_two_owners_each() {
        for owners in scatter_ownership(4) {
            assert_eq!(owners.len(), 2, "each 4-byte group covers 8 u4 = 2 owners");
        }
    }
}
