//! # lq-layout — weight memory layouts for LiquidGEMM
//!
//! The paper's Section 5.2 argues that for 4-bit weights the *memory
//! layout* decides whether the hardware's wide loads are usable at all:
//!
//! * `ldmatrix` assumes 1-byte elements and **mis-scatters** 4-bit data
//!   across threads;
//! * per-thread `LDS.32` loads waste half their bandwidth and burn CUDA
//!   cores on address arithmetic;
//! * the **dual-MMA packed layout** stores the 32 UINT4 elements a thread
//!   needs for two consecutive MMAs contiguously, so one `LDS.128` per
//!   thread moves everything, with zero bank conflicts and no swizzle.
//!
//! This crate implements all three access disciplines (the broken ones as
//! analysable models, the good one as the real packing used by the CPU
//! kernels), plus the tile machinery and a shared-memory bank-conflict
//! model that quantifies the 1-D-vs-2-D layout claim.
//!
//! * [`pack`] — bit-packing UINT4 values into `u32` words, including the
//!   offline interleave permutation that makes the register-level unpack
//!   produce elements in consumption order.
//! * [`dual_mma`] — the dual-MMA packed layout: per-thread 32-element
//!   segments, fragment ordering, and load-cost accounting versus the
//!   conventional alternatives.
//! * [`ldmatrix`] — a model of `ldmatrix`'s byte-granularity scatter,
//!   demonstrating the mis-delivery the paper describes (Figure 7a).
//! * [`tiles`] — tile-shape configuration and output-tile iteration used
//!   by kernels, cost model, and simulator.
//! * [`bank`] — shared-memory bank-conflict accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod dual_mma;
pub mod ldmatrix;
pub mod pack;
pub mod tiles;

pub use dual_mma::{DualMmaWeights, LoadCost};
pub use pack::{pack_interleaved8, pack_row_words, unpack_row_words, INTERLEAVE};
pub use tiles::{TileConfig, TileIter};
