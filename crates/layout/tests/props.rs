//! Randomized property tests for the layout machinery (seeded in-tree
//! PRNG; offline sandbox has no proptest).

use lq_layout::bank::{analyze_access, NUM_BANKS};
use lq_layout::dual_mma::{dual_mma_load_cost, lds32_load_cost, DualMmaWeights};
use lq_layout::pack::{
    pack_row_words, pack_row_words_plain, unpack_row_words, unpack_row_words_plain,
};
use lq_layout::tiles::{TileConfig, TileIter};
use lq_rng::Rng;

const CASES: usize = 64;

/// Interleaved and plain packings are both lossless for arbitrary
/// nibble streams.
#[test]
fn packings_roundtrip() {
    let mut rng = Rng::new(0x1A70_0001);
    for _ in 0..CASES {
        let len = rng.range_usize(1, 32) * 8;
        let vals: Vec<u8> = (0..len).map(|_| rng.below(16) as u8).collect();
        assert_eq!(&unpack_row_words(&pack_row_words(&vals)), &vals);
        assert_eq!(&unpack_row_words_plain(&pack_row_words_plain(&vals)), &vals);
    }
}

/// Dual-MMA packing of an N×K matrix is lossless and the packed size is
/// exactly N·K/2 bytes.
#[test]
fn dual_mma_roundtrip() {
    let mut rng = Rng::new(0x1A70_0002);
    for _ in 0..CASES {
        let n = rng.range_usize(1, 8);
        let k = rng.range_usize(1, 8) * 8;
        let vals: Vec<u8> = (0..n * k).map(|_| rng.below(16) as u8).collect();
        let w = DualMmaWeights::pack(&vals, n, k);
        assert_eq!(w.unpack_all(), vals);
        assert_eq!(w.packed_bytes(), n * k / 2);
    }
}

/// Row slices compose: concatenating row_kslice over group windows
/// equals row_words.
#[test]
fn kslices_tile_the_row() {
    let mut rng = Rng::new(0x1A70_0003);
    for _ in 0..CASES {
        let n = rng.range_usize(1, 5);
        let groups = rng.range_usize(1, 6);
        let group = 16; // two words
        let k = groups * group;
        let vals: Vec<u8> = (0..n * k).map(|_| rng.below(16) as u8).collect();
        let w = DualMmaWeights::pack(&vals, n, k);
        for r in 0..n {
            let mut joined = Vec::new();
            for g in 0..groups {
                joined.extend_from_slice(w.row_kslice(r, g * group, (g + 1) * group));
            }
            assert_eq!(joined.as_slice(), w.row_words(r));
        }
    }
}

/// Tile iteration covers every output cell exactly once for any
/// problem/tile shape.
#[test]
fn tiles_partition_output() {
    let mut rng = Rng::new(0x1A70_0004);
    for _ in 0..CASES {
        let m = rng.range_usize(1, 40);
        let n = rng.range_usize(1, 40);
        let cfg = TileConfig {
            mt: rng.range_usize(1, 16),
            nt: rng.range_usize(1, 16),
            kt: 32,
        };
        let mut covered = vec![0u8; m * n];
        for t in TileIter::new(cfg, m, n) {
            for r in t.m0..t.m1 {
                for c in t.n0..t.n1 {
                    covered[r * n + c] += 1;
                }
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }
}

/// Load-cost accounting: the packed layout never moves more bytes than
/// the LDS.32 fallback and always needs fewer address calcs.
#[test]
fn packed_load_dominates_fallback() {
    let mut rng = Rng::new(0x1A70_0005);
    for _ in 0..CASES {
        let elems = rng.range_usize(1, 32) * 32;
        let a = dual_mma_load_cost(elems);
        let b = lds32_load_cost(elems);
        assert!(a.bytes_moved <= b.bytes_moved);
        assert!(a.addr_calcs < b.addr_calcs);
        assert_eq!(a.bytes_useful, b.bytes_useful);
        assert!(a.efficiency() >= b.efficiency());
    }
}

/// Bank-conflict analysis: degree is always within [1, threads] and
/// broadcast patterns are always conflict-free.
#[test]
fn conflict_degree_bounds() {
    let mut rng = Rng::new(0x1A70_0006);
    for _ in 0..CASES {
        let len = rng.range_usize(1, 32);
        let aligned: Vec<usize> = (0..len).map(|_| rng.range_usize(0, 4096) & !3).collect();
        let r = analyze_access(&aligned, 4);
        assert!(r.degree >= 1);
        assert!(r.degree <= aligned.len().min(NUM_BANKS * 4));
        // Same address for everyone → broadcast.
        let bcast = vec![aligned[0]; aligned.len()];
        assert_eq!(analyze_access(&bcast, 4).degree, 1);
    }
}
