//! Property-based tests for the layout machinery.

use lq_layout::bank::{analyze_access, NUM_BANKS};
use lq_layout::dual_mma::{dual_mma_load_cost, lds32_load_cost, DualMmaWeights};
use lq_layout::pack::{pack_row_words, pack_row_words_plain, unpack_row_words, unpack_row_words_plain};
use lq_layout::tiles::{TileConfig, TileIter};
use proptest::prelude::*;

proptest! {
    /// Interleaved and plain packings are both lossless for arbitrary
    /// nibble streams.
    #[test]
    fn packings_roundtrip(vals in prop::collection::vec(0u8..16, 8..256)) {
        let len = vals.len() / 8 * 8;
        let vals = &vals[..len];
        prop_assume!(!vals.is_empty());
        prop_assert_eq!(&unpack_row_words(&pack_row_words(vals)), &vals);
        prop_assert_eq!(&unpack_row_words_plain(&pack_row_words_plain(vals)), &vals);
    }

    /// Dual-MMA packing of an N×K matrix is lossless and the packed
    /// size is exactly N·K/2 bytes.
    #[test]
    fn dual_mma_roundtrip(n in 1usize..8, kw in 1usize..8, seed in any::<u64>()) {
        let k = kw * 8;
        let vals: Vec<u8> = (0..n * k)
            .map(|i| ((seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 33) % 16) as u8)
            .collect();
        let w = DualMmaWeights::pack(&vals, n, k);
        prop_assert_eq!(w.unpack_all(), vals);
        prop_assert_eq!(w.packed_bytes(), n * k / 2);
    }

    /// Row slices compose: concatenating row_kslice over group windows
    /// equals row_words.
    #[test]
    fn kslices_tile_the_row(n in 1usize..5, groups in 1usize..6, seed in any::<u64>()) {
        let group = 16; // two words
        let k = groups * group;
        let vals: Vec<u8> = (0..n * k)
            .map(|i| ((seed ^ (i as u64).wrapping_mul(0x2545F4914F6CDD1D)) % 16) as u8)
            .collect();
        let w = DualMmaWeights::pack(&vals, n, k);
        for r in 0..n {
            let mut joined = Vec::new();
            for g in 0..groups {
                joined.extend_from_slice(w.row_kslice(r, g * group, (g + 1) * group));
            }
            prop_assert_eq!(joined.as_slice(), w.row_words(r));
        }
    }

    /// Tile iteration covers every output cell exactly once for any
    /// problem/tile shape.
    #[test]
    fn tiles_partition_output(
        m in 1usize..40, n in 1usize..40,
        mt in 1usize..16, nt in 1usize..16,
    ) {
        let cfg = TileConfig { mt, nt, kt: 32 };
        let mut covered = vec![0u8; m * n];
        for t in TileIter::new(cfg, m, n) {
            for r in t.m0..t.m1 {
                for c in t.n0..t.n1 {
                    covered[r * n + c] += 1;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    /// Load-cost accounting: the packed layout never moves more bytes
    /// than the LDS.32 fallback and always needs fewer address calcs.
    #[test]
    fn packed_load_dominates_fallback(chunks in 1usize..32) {
        let elems = chunks * 32;
        let a = dual_mma_load_cost(elems);
        let b = lds32_load_cost(elems);
        prop_assert!(a.bytes_moved <= b.bytes_moved);
        prop_assert!(a.addr_calcs < b.addr_calcs);
        prop_assert_eq!(a.bytes_useful, b.bytes_useful);
        prop_assert!(a.efficiency() >= b.efficiency());
    }

    /// Bank-conflict analysis: degree is always within [1, threads] and
    /// broadcast patterns are always conflict-free.
    #[test]
    fn conflict_degree_bounds(addrs in prop::collection::vec(0usize..4096, 1..32)) {
        let aligned: Vec<usize> = addrs.iter().map(|a| a & !3).collect();
        let r = analyze_access(&aligned, 4);
        prop_assert!(r.degree >= 1);
        prop_assert!(r.degree <= aligned.len().min(NUM_BANKS * 4));
        // Same address for everyone → broadcast.
        let bcast = vec![aligned[0]; aligned.len()];
        prop_assert_eq!(analyze_access(&bcast, 4).degree, 1);
    }
}
