//! Roofline analysis for quantized GEMM (paper, Figure 1b).
//!
//! For a decode-time GEMM of shape `M×N×K`, the dominant memory traffic
//! is the weight matrix (`N·K·bytes_w`); compute is `2·M·N·K` ops. The
//! arithmetic intensity therefore grows linearly with the batch size M:
//! `AI = 2·M / bytes_w` ops/byte, and each precision configuration has
//! its own roof (`Φ_TC`) and its own slope — which is why W4A8 reaches
//! the compute roof at half the batch size of W8A8.

use crate::specs::{GpuSpec, TcKind};

/// A precision configuration's memory/compute characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionPoint {
    /// Display name ("W4A8", "W8A8", ...).
    pub name: &'static str,
    /// Weight bytes per element.
    pub weight_bytes: f64,
    /// Tensor-core type used for the MMA.
    pub tc: TcKind,
}

/// The precision configurations the paper compares.
pub const PRECISIONS: [PrecisionPoint; 5] = [
    PrecisionPoint {
        name: "W4A8",
        weight_bytes: 0.5,
        tc: TcKind::Int8,
    },
    PrecisionPoint {
        name: "W8A8",
        weight_bytes: 1.0,
        tc: TcKind::Int8,
    },
    PrecisionPoint {
        name: "W4A16",
        weight_bytes: 0.5,
        tc: TcKind::Fp16,
    },
    PrecisionPoint {
        name: "FP8",
        weight_bytes: 1.0,
        tc: TcKind::Fp8,
    },
    PrecisionPoint {
        name: "FP16",
        weight_bytes: 2.0,
        tc: TcKind::Fp16,
    },
];

/// Arithmetic intensity (ops per weight byte) of a decode GEMM at batch
/// `m`.
#[must_use]
pub fn arithmetic_intensity(p: PrecisionPoint, m: usize) -> f64 {
    2.0 * m as f64 / p.weight_bytes
}

/// Attainable throughput (ops/s) at batch `m`: the roofline
/// `min(Φ_TC, AI · Φ_BD)`.
#[must_use]
pub fn attainable(spec: &GpuSpec, p: PrecisionPoint, m: usize) -> f64 {
    let roof = spec.tc_throughput(p.tc);
    let slope = arithmetic_intensity(p, m) * spec.mem_bw;
    roof.min(slope)
}

/// The batch size where a precision leaves the memory-bound region.
#[must_use]
pub fn ridge_batch(spec: &GpuSpec, p: PrecisionPoint) -> f64 {
    spec.transition_batch(p.tc, p.weight_bytes)
}

/// One row of the Figure-1-style roofline table.
#[derive(Debug, Clone, Copy)]
pub struct RooflineRow {
    /// Precision name.
    pub name: &'static str,
    /// Batch size.
    pub m: usize,
    /// Arithmetic intensity, ops/byte.
    pub ai: f64,
    /// Attainable throughput, TOPS.
    pub tops: f64,
    /// Whether this point is memory-bound.
    pub memory_bound: bool,
}

/// Sweep batch sizes for all precisions on one GPU.
#[must_use]
pub fn sweep(spec: &GpuSpec, batches: &[usize]) -> Vec<RooflineRow> {
    let mut rows = Vec::new();
    for p in PRECISIONS {
        if spec.tc_throughput(p.tc) == 0.0 {
            continue; // e.g. FP8 on A100
        }
        for &m in batches {
            let a = attainable(spec, p, m);
            rows.push(RooflineRow {
                name: p.name,
                m,
                ai: arithmetic_intensity(p, m),
                tops: a / 1e12,
                memory_bound: (m as f64) < ridge_batch(spec, p),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{A100, H100};

    fn by_name(name: &str) -> PrecisionPoint {
        PRECISIONS.into_iter().find(|p| p.name == name).unwrap()
    }

    #[test]
    fn w4a8_doubles_w8a8_intensity() {
        let m = 32;
        assert_eq!(
            arithmetic_intensity(by_name("W4A8"), m),
            2.0 * arithmetic_intensity(by_name("W8A8"), m)
        );
    }

    #[test]
    fn memory_bound_region_ranks_by_weight_bytes() {
        // Small batch: fewer weight bytes → higher attainable throughput.
        let m = 8;
        let w4a8 = attainable(&H100, by_name("W4A8"), m);
        let w8a8 = attainable(&H100, by_name("W8A8"), m);
        let fp16 = attainable(&H100, by_name("FP16"), m);
        assert!(w4a8 > w8a8);
        assert!(w8a8 > fp16);
        assert_eq!(w4a8, 2.0 * w8a8);
    }

    #[test]
    fn compute_bound_region_ranks_by_tc() {
        // Huge batch: throughput saturates at the tensor-core roof.
        let m = 4096;
        assert_eq!(attainable(&H100, by_name("W4A8"), m), H100.tc_int8);
        assert_eq!(attainable(&H100, by_name("W8A8"), m), H100.tc_int8);
        assert_eq!(attainable(&H100, by_name("FP16"), m), H100.tc_fp16);
    }

    #[test]
    fn w4a16_is_capped_by_fp16_roof() {
        // The roofline reason W4A8 beats W4A16 in compute-bound cases.
        let m = 4096;
        let w4a8 = attainable(&H100, by_name("W4A8"), m);
        let w4a16 = attainable(&H100, by_name("W4A16"), m);
        assert_eq!(w4a8 / w4a16, H100.tc_int8 / H100.tc_fp16);
    }

    #[test]
    fn ridge_points_match_transition_batches() {
        assert!((ridge_batch(&H100, by_name("W8A8")) - 295.4).abs() < 1.0);
        assert!((ridge_batch(&A100, by_name("W8A8")) - 156.0).abs() < 1.0);
    }

    #[test]
    fn sweep_skips_unsupported_precisions() {
        let rows = sweep(&A100, &[16, 256]);
        assert!(rows.iter().all(|r| r.name != "FP8"));
        let rows = sweep(&H100, &[16, 256]);
        assert!(rows.iter().any(|r| r.name == "FP8"));
    }

    #[test]
    fn sweep_marks_memory_bound_correctly() {
        let rows = sweep(&H100, &[16, 1024]);
        for r in rows {
            if r.m == 16 {
                assert!(r.memory_bound, "{} at m=16", r.name);
            }
            if r.m == 1024 {
                assert!(!r.memory_bound, "{} at m=1024", r.name);
            }
        }
    }
}
