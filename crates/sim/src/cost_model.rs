//! The paper's cost model (Section 3.2, Equations 3–6).
//!
//! Per main-loop iteration a thread block loads a weight tile
//! (Eq. 3), dequantizes it on CUDA cores and multiplies on tensor cores
//! (Eq. 4); the pipelined single-tile time is dominated by
//! `max(T_LD, T_COMP)` (Eq. 5); summing over the tile grid and dividing
//! by the device's concurrency gives Eq. 6:
//!
//! ```text
//! T = ⌈M/Mt⌉ · max( N·K·b/Φ_BD ,  α·N·K/Φ_CUDA  +  min(Mt,M)·2·N·K/Φ_TC )
//!            └────── T_LD ─────┘ └──── T_DQ ───┘  └────── T_MMA ──────┘
//! ```
//!
//! The dequant term either *adds to* the MMA term (serial execution, the
//! QServe situation) or *maxes with* it (overlapped execution, the
//! LiquidGEMM pipeline) — that single switch is the paper's entire
//! performance story, and [`CostBreakdown`] exposes it.

use crate::specs::{GpuSpec, TcKind};

/// One GEMM problem: `Y(M×N) = X(M×K) · Wᵀ(K×N)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmShape {
    /// Batch / token dimension.
    pub m: usize,
    /// Output features.
    pub n: usize,
    /// Reduction dimension.
    pub k: usize,
}

impl GemmShape {
    /// Total MAC count × 2 (ops).
    #[must_use]
    pub fn ops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Weight elements.
    #[must_use]
    pub fn weight_elems(&self) -> f64 {
        self.n as f64 * self.k as f64
    }
}

/// Precision/algorithm parameters entering the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionCfg {
    /// Weight bytes per element (0.5 for W4).
    pub weight_bytes: f64,
    /// Tensor-core type executing the MMA.
    pub tc: TcKind,
    /// Dequantization instructions per weight element on CUDA cores
    /// (including unpacking and address arithmetic).
    pub alpha: f64,
    /// Whether dequantization overlaps MMA (pipelined kernels) or
    /// serialises with it.
    pub overlap_dq: bool,
    /// Maximum effective output-tile height the kernel can use
    /// (bounded by SMEM; the `(W·Xᵀ)ᵀ` trick raises it).
    pub mt_max: usize,
}

impl PrecisionCfg {
    /// W4A8 with LiquidQuant under the ImFP pipeline.
    pub const LIQUID_W4A8: PrecisionCfg = PrecisionCfg {
        weight_bytes: 0.5,
        tc: TcKind::Int8,
        alpha: 7.0 / 8.0 + 0.25, // LQQ + dual-MMA-layout address cost
        overlap_dq: true,
        mt_max: 256,
    };

    /// W4A8 with the QoQ dequantization, serial with MMA (QServe).
    pub const QSERVE_W4A8: PrecisionCfg = PrecisionCfg {
        weight_bytes: 0.5,
        tc: TcKind::Int8,
        alpha: 19.0 / 8.0 + 1.5, // emulated vsub4 + strided-address cost
        overlap_dq: false,
        mt_max: 64, // Ampere-style tile, no WGMMA
    };

    /// Symmetric W8A8 (no in-loop dequantization).
    pub const W8A8: PrecisionCfg = PrecisionCfg {
        weight_bytes: 1.0,
        tc: TcKind::Int8,
        alpha: 0.0,
        overlap_dq: true,
        mt_max: 256,
    };

    /// FP8 symmetric GEMM.
    pub const FP8: PrecisionCfg = PrecisionCfg {
        weight_bytes: 1.0,
        tc: TcKind::Fp8,
        alpha: 0.0,
        overlap_dq: true,
        mt_max: 256,
    };

    /// FP16 (no quantization).
    pub const FP16: PrecisionCfg = PrecisionCfg {
        weight_bytes: 2.0,
        tc: TcKind::Fp16,
        alpha: 0.0,
        overlap_dq: true,
        mt_max: 256,
    };

    /// W4A16: 4-bit weights converted to FP16 in-loop (TRT/AWQ-style
    /// LOP3 conversion, reasonably cheap and overlapped).
    pub const W4A16: PrecisionCfg = PrecisionCfg {
        weight_bytes: 0.5,
        tc: TcKind::Fp16,
        alpha: 1.5,
        overlap_dq: true,
        mt_max: 256,
    };

    /// Build a cost-model configuration from a registered kernel
    /// backend's [`lq_quant::BackendCost`] descriptor, so one sweep
    /// prices every backend in `lq_quant::backend::registry()` on the
    /// same shapes.
    ///
    /// All registered backends target INT8 tensor cores; overlapped
    /// backends get the large `(W·Xᵀ)ᵀ` tile (mt 256), serial ones the
    /// Ampere-style 64-row tile (matching [`Self::QSERVE_W4A8`]).
    #[must_use]
    pub fn from_backend(cost: &lq_quant::BackendCost) -> PrecisionCfg {
        PrecisionCfg {
            weight_bytes: cost.weight_bytes_per_elem,
            tc: TcKind::Int8,
            alpha: cost.alpha,
            overlap_dq: cost.overlap_dq,
            mt_max: if cost.overlap_dq { 256 } else { 64 },
        }
    }
}

/// The three terms of Eq. 6 plus the composed total, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Weight-loading time per m-tile row.
    pub t_ld: f64,
    /// Dequantization time per m-tile row.
    pub t_dq: f64,
    /// Tensor-core time per m-tile row.
    pub t_mma: f64,
    /// Number of m-tile rows (`⌈M/Mt⌉`).
    pub m_tiles: usize,
    /// Total GEMM time.
    pub total: f64,
}

impl CostBreakdown {
    /// Whether the kernel is memory-bound at this point.
    #[must_use]
    pub fn memory_bound(&self) -> bool {
        self.t_ld >= self.t_comp()
    }

    /// The compute term (dequant composed with MMA per the overlap flag
    /// used at construction — stored pre-composed in `total`; this
    /// recomputes the serial interpretation for reporting).
    #[must_use]
    pub fn t_comp(&self) -> f64 {
        self.total / self.m_tiles as f64
    }
}

/// Evaluate Eq. 6 for one GEMM.
///
/// ```
/// use lq_sim::cost_model::{gemm_cost, GemmShape, PrecisionCfg};
/// use lq_sim::specs::H800;
/// let shape = GemmShape { m: 8, n: 4096, k: 4096 };
/// let c = gemm_cost(&H800, shape, PrecisionCfg::LIQUID_W4A8);
/// assert!(c.memory_bound()); // decode at batch 8 is bandwidth-limited
/// let w8 = gemm_cost(&H800, shape, PrecisionCfg::W8A8);
/// assert!(c.total < w8.total); // half the weight bytes
/// ```
#[must_use]
pub fn gemm_cost(spec: &GpuSpec, shape: GemmShape, cfg: PrecisionCfg) -> CostBreakdown {
    assert!(
        shape.m > 0 && shape.n > 0 && shape.k > 0,
        "degenerate shape"
    );
    let tc = spec.tc_throughput(cfg.tc);
    assert!(tc > 0.0, "{} lacks {:?} tensor cores", spec.name, cfg.tc);
    let nk = shape.weight_elems();
    let mt = cfg.mt_max.min(shape.m.max(1));
    let m_tiles = shape.m.div_ceil(cfg.mt_max.max(1)).max(1);
    let t_ld = nk * cfg.weight_bytes / spec.mem_bw;
    let t_dq = cfg.alpha * nk / spec.cuda_int;
    let t_mma = mt as f64 * 2.0 * nk / tc;
    let t_comp = if cfg.overlap_dq {
        t_dq.max(t_mma)
    } else {
        t_dq + t_mma
    };
    let total = m_tiles as f64 * t_ld.max(t_comp);
    CostBreakdown {
        t_ld,
        t_dq,
        t_mma,
        m_tiles,
        total,
    }
}

/// Wave-quantization factor: a launch of `tiles` thread blocks over
/// `slots = SMs × blocks/SM` executes in `⌈tiles/slots⌉` waves, and the
/// final partial wave wastes `⌈w⌉/w − 1` of the machine. Persistent
/// kernels (LiquidGEMM's tile scheduler, Section 5.4) keep all SMs fed
/// by work-stealing tiles, eliminating the effect — which is why the
/// factor is reported separately rather than baked into the calibrated
/// latency model.
#[must_use]
pub fn wave_quantization_factor(spec: &GpuSpec, shape: GemmShape, mt: usize, nt: usize) -> f64 {
    assert!(mt > 0 && nt > 0);
    let tiles = shape.m.div_ceil(mt) * shape.n.div_ceil(nt);
    let slots = (spec.sms * spec.blocks_per_sm).max(1);
    let waves = tiles as f64 / slots as f64;
    if waves == 0.0 {
        return 1.0;
    }
    waves.ceil() / waves
}

/// Solve `T_LD = T_MMA` for M (the memory→compute transition of Eq. 6,
/// ignoring dequant): `M* = Φ_TC · b / (2 · Φ_BD)`.
#[must_use]
pub fn transition_batch(spec: &GpuSpec, cfg: PrecisionCfg) -> f64 {
    spec.transition_batch(cfg.tc, cfg.weight_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::H100;

    const SHAPE: GemmShape = GemmShape {
        m: 256,
        n: 4096,
        k: 4096,
    };

    #[test]
    fn w4a8_loads_half_of_w8a8() {
        let a = gemm_cost(&H100, SHAPE, PrecisionCfg::LIQUID_W4A8);
        let b = gemm_cost(&H100, SHAPE, PrecisionCfg::W8A8);
        assert!((a.t_ld * 2.0 - b.t_ld).abs() < 1e-12);
    }

    #[test]
    fn liquid_tracks_w8a8_when_compute_bound() {
        // Paper, Section 3.3: without dequant overhead W4A8 ≈ W8A8 in
        // the compute-bound regime (same INT8 MMA). At M = 256 W8A8 is
        // still just below its transition (295), so LiquidGEMM holds a
        // small memory-side edge; the two must be within ~30%.
        let a = gemm_cost(&H100, SHAPE, PrecisionCfg::LIQUID_W4A8);
        let b = gemm_cost(&H100, SHAPE, PrecisionCfg::W8A8);
        let ratio = b.total / a.total;
        assert!((1.0..1.3).contains(&ratio), "{} vs {}", a.total, b.total);
        // Both saturate tensor cores at very large effective batch:
        // compare the pure MMA terms.
        assert!((a.t_mma - b.t_mma).abs() < 1e-12);
    }

    #[test]
    fn qserve_is_about_2x_slower_at_large_batch() {
        // The observed gap motivating the paper (Section 3.1): QServe
        // W4A8 runs ~2x slower than W8A8 at M ≥ 128.
        let q = gemm_cost(&H100, SHAPE, PrecisionCfg::QSERVE_W4A8);
        let w8 = gemm_cost(&H100, SHAPE, PrecisionCfg::W8A8);
        let ratio = q.total / w8.total;
        assert!((1.8..3.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn liquid_beats_qserve_by_paper_factor_at_256() {
        // Figure 12: 2.75–2.90x at batch 256.
        let l = gemm_cost(&H100, SHAPE, PrecisionCfg::LIQUID_W4A8);
        let q = gemm_cost(&H100, SHAPE, PrecisionCfg::QSERVE_W4A8);
        let speedup = q.total / l.total;
        assert!((2.3..3.3).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn w4a8_wins_when_memory_bound() {
        let small = GemmShape { m: 8, ..SHAPE };
        let a = gemm_cost(&H100, small, PrecisionCfg::LIQUID_W4A8);
        let b = gemm_cost(&H100, small, PrecisionCfg::W8A8);
        assert!(a.memory_bound());
        assert!(a.total < b.total);
        assert!(
            (b.total / a.total - 2.0).abs() < 0.2,
            "{}",
            b.total / a.total
        );
    }

    #[test]
    fn overlap_flag_composes_dequant_correctly() {
        let serial = PrecisionCfg {
            overlap_dq: false,
            ..PrecisionCfg::LIQUID_W4A8
        };
        let over = gemm_cost(&H100, SHAPE, PrecisionCfg::LIQUID_W4A8);
        let ser = gemm_cost(&H100, SHAPE, serial);
        assert!(ser.total > over.total);
        assert!((ser.t_comp() - (ser.t_dq + ser.t_mma)).abs() < 1e-12);
    }

    #[test]
    fn cost_scales_linearly_in_nk() {
        let double_n = GemmShape {
            n: SHAPE.n * 2,
            ..SHAPE
        };
        let a = gemm_cost(&H100, SHAPE, PrecisionCfg::W8A8);
        let b = gemm_cost(&H100, double_n, PrecisionCfg::W8A8);
        assert!((b.total / a.total - 2.0).abs() < 1e-9);
    }

    #[test]
    fn m_tiling_is_ceiling() {
        let m257 = GemmShape { m: 257, ..SHAPE };
        let c = gemm_cost(&H100, m257, PrecisionCfg::W8A8);
        assert_eq!(c.m_tiles, 2);
    }

    #[test]
    fn transition_matches_spec_helper() {
        let t = transition_batch(&H100, PrecisionCfg::W8A8);
        assert!((t - 295.4).abs() < 1.0);
    }

    #[test]
    fn wave_quantization_bounds() {
        // One tile → one wave on a 132-SM machine: factor 132 (the
        // pathological small-grid case the persistent kernel fixes).
        let tiny = GemmShape {
            m: 64,
            n: 128,
            k: 4096,
        };
        let f = wave_quantization_factor(&H100, tiny, 64, 128);
        assert!((f - 132.0).abs() < 1e-9, "{f}");
        // Exactly filling all slots → factor 1.
        let full = GemmShape {
            m: 64,
            n: 128 * 132,
            k: 4096,
        };
        assert_eq!(wave_quantization_factor(&H100, full, 64, 128), 1.0);
        // Slightly over → almost 2x tail waste.
        let over = GemmShape {
            m: 64,
            n: 128 * 133,
            k: 4096,
        };
        let f = wave_quantization_factor(&H100, over, 64, 128);
        assert!(f > 1.9, "{f}");
        // Many waves → factor approaches 1.
        let many = GemmShape {
            m: 64 * 40,
            n: 128 * 132,
            k: 4096,
        };
        let f = wave_quantization_factor(&H100, many, 64, 128);
        assert!(f < 1.05, "{f}");
    }

    #[test]
    #[should_panic(expected = "degenerate shape")]
    fn zero_shape_panics() {
        let _ = gemm_cost(&H100, GemmShape { m: 0, n: 1, k: 1 }, PrecisionCfg::W8A8);
    }

    #[test]
    fn from_backend_reproduces_the_builtin_configs() {
        use lq_quant::backend::{LqqBackend, QoqBackend};
        use lq_quant::KernelBackend;
        let lqq = PrecisionCfg::from_backend(&LqqBackend.cost());
        assert_eq!(lqq.tc, PrecisionCfg::LIQUID_W4A8.tc);
        assert_eq!(lqq.alpha, PrecisionCfg::LIQUID_W4A8.alpha);
        assert_eq!(lqq.overlap_dq, PrecisionCfg::LIQUID_W4A8.overlap_dq);
        assert_eq!(lqq.mt_max, PrecisionCfg::LIQUID_W4A8.mt_max);
        // BackendCost amortises group metadata into the byte rate; the
        // hand-written const uses the nominal 0.5 B/elem.
        assert!((lqq.weight_bytes - PrecisionCfg::LIQUID_W4A8.weight_bytes).abs() < 0.05);
        let qoq = PrecisionCfg::from_backend(&QoqBackend.cost());
        assert_eq!(qoq.alpha, PrecisionCfg::QSERVE_W4A8.alpha);
        assert_eq!(qoq.overlap_dq, PrecisionCfg::QSERVE_W4A8.overlap_dq);
        assert_eq!(qoq.mt_max, PrecisionCfg::QSERVE_W4A8.mt_max);
    }

    #[test]
    fn registry_sweep_orders_backends_sanely() {
        use lq_quant::backend::registry;
        let costs: Vec<(lq_quant::BackendId, CostBreakdown)> = registry()
            .iter()
            .map(|b| {
                (
                    b.id(),
                    gemm_cost(&H100, SHAPE, PrecisionCfg::from_backend(&b.cost())),
                )
            })
            .collect();
        let total = |id: &str| {
            costs
                .iter()
                .find(|(b, _)| b.label() == id)
                .map(|(_, c)| c.total)
                .unwrap()
        };
        // Compute-bound at M = 256: the serial-dequant QoQ baseline must
        // be the slowest by a wide margin, and the cheap overlapped
        // dequant paths (LQQ, LUT) must beat it by the paper's factor.
        assert!(total("qoq") / total("lqq") > 2.0);
        assert!(total("qoq") / total("lut") > 2.0);
        // Codebook weights are the smallest (2 b/elem effective), so the
        // memory-bound decode shape must favour it.
        let decode = GemmShape { m: 4, ..SHAPE };
        let cb = gemm_cost(
            &H100,
            decode,
            PrecisionCfg::from_backend(&lq_quant::resolve(lq_quant::BackendId::Codebook).cost()),
        );
        let lqq = gemm_cost(
            &H100,
            decode,
            PrecisionCfg::from_backend(&lq_quant::resolve(lq_quant::BackendId::Lqq).cost()),
        );
        assert!(cb.memory_bound());
        assert!(cb.total < lqq.total, "{} vs {}", cb.total, lqq.total);
    }
}
