//! Published hardware metrics for the GPUs in the paper's Figure 1.
//!
//! Values are the vendor-published dense-throughput numbers. Two derived
//! quantities calibrate the set against the paper's own arithmetic:
//!
//! * memory→compute transition batch `M* = Φ_TC · bytes_per_weight /
//!   (2 · Φ_BD)` must come out at ≈300 (W8A8, H100), ≈150 (W4A8, H100),
//!   ≈156 (W8A8, A100) — Section 3.3;
//! * the dequant-overlap bound `α ≤ Φ_CUDA · bytes_per_weight / Φ_BD`
//!   must come out at ≈5.07 on H100 — Section 3.3.
//!
//! Tests at the bottom pin those identities.

/// Peak throughput numbers for one GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// HBM bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Tensor-core INT8 throughput, ops/s (1 MAC = 2 ops).
    pub tc_int8: f64,
    /// Tensor-core FP16 throughput, ops/s.
    pub tc_fp16: f64,
    /// Tensor-core FP8 throughput, ops/s (0 when unsupported).
    pub tc_fp8: f64,
    /// CUDA-core 32-bit integer throughput, ops/s.
    pub cuda_int: f64,
    /// Streaming multiprocessors.
    pub sms: usize,
    /// Resident thread blocks per SM the GEMM kernels sustain.
    pub blocks_per_sm: usize,
    /// Shared memory per SM, bytes.
    pub smem_per_sm: usize,
    /// HBM capacity, bytes.
    pub mem_capacity: u64,
}

/// NVIDIA A100 SXM 80 GB.
pub const A100: GpuSpec = GpuSpec {
    name: "A100",
    mem_bw: 2.0e12,
    tc_int8: 624.0e12,
    tc_fp16: 312.0e12,
    tc_fp8: 0.0,
    cuda_int: 19.5e12,
    sms: 108,
    blocks_per_sm: 1,
    smem_per_sm: 164 * 1024,
    mem_capacity: 80 * 1024 * 1024 * 1024,
};

/// NVIDIA H100 SXM 80 GB.
pub const H100: GpuSpec = GpuSpec {
    name: "H100",
    mem_bw: 3.35e12,
    tc_int8: 1979.0e12,
    tc_fp16: 989.5e12,
    tc_fp8: 1979.0e12,
    cuda_int: 33.97e12,
    sms: 132,
    blocks_per_sm: 1,
    smem_per_sm: 228 * 1024,
    mem_capacity: 80 * 1024 * 1024 * 1024,
};

/// NVIDIA H800 SXM 80 GB — the paper's testbed. Same SM array and HBM as
/// H100 (the H800's cuts are NVLink and FP64, which GEMM never touches).
pub const H800: GpuSpec = GpuSpec {
    name: "H800",
    mem_bw: 3.35e12,
    tc_int8: 1979.0e12,
    tc_fp16: 989.5e12,
    tc_fp8: 1979.0e12,
    cuda_int: 33.97e12,
    sms: 132,
    blocks_per_sm: 1,
    smem_per_sm: 228 * 1024,
    mem_capacity: 80 * 1024 * 1024 * 1024,
};

impl GpuSpec {
    /// Tensor-core throughput for a compute type.
    #[must_use]
    pub fn tc_throughput(&self, tc: TcKind) -> f64 {
        match tc {
            TcKind::Int8 => self.tc_int8,
            TcKind::Fp16 => self.tc_fp16,
            TcKind::Fp8 => self.tc_fp8,
        }
    }

    /// The memory→compute transition batch size for a symmetric GEMM
    /// with `weight_bytes` per element on tensor-core type `tc`
    /// (Section 3.3: `M* = Φ_TC · bytes / (2 · Φ_BD)`).
    #[must_use]
    pub fn transition_batch(&self, tc: TcKind, weight_bytes: f64) -> f64 {
        self.tc_throughput(tc) * weight_bytes / (2.0 * self.mem_bw)
    }

    /// Max per-element dequant instruction budget that still hides
    /// behind weight loading (`α ≤ Φ_CUDA · bytes / Φ_BD`).
    #[must_use]
    pub fn alpha_budget_memory_bound(&self, weight_bytes: f64) -> f64 {
        self.cuda_int * weight_bytes / self.mem_bw
    }

    /// Max α that still hides behind MMA at batch `m` with tile height
    /// `mt` (`α ≤ 2 · min(mt, m) · Φ_CUDA / Φ_TC`).
    #[must_use]
    pub fn alpha_budget_compute_bound(&self, tc: TcKind, m: usize, mt: usize) -> f64 {
        2.0 * m.min(mt) as f64 * self.cuda_int / self.tc_throughput(tc)
    }
}

/// Tensor-core compute type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcKind {
    /// INT8 MMA.
    Int8,
    /// FP16 MMA.
    Fp16,
    /// FP8 MMA.
    Fp8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_transition_points_match_paper() {
        // Section 3.3: ~300 for W8A8, ~150 for W4A8 on H100.
        let w8 = H100.transition_batch(TcKind::Int8, 1.0);
        let w4 = H100.transition_batch(TcKind::Int8, 0.5);
        assert!((w8 - 295.4).abs() < 1.0, "W8A8 H100: {w8}");
        assert!((w4 - 147.7).abs() < 1.0, "W4A8 H100: {w4}");
        assert!((w8 / 300.0 - 1.0).abs() < 0.05);
        assert!((w4 / 150.0 - 1.0).abs() < 0.05);
    }

    #[test]
    fn a100_transition_point_matches_paper() {
        // Section 3.3: 156 for W8A8 on A100.
        let w8 = A100.transition_batch(TcKind::Int8, 1.0);
        assert!((w8 - 156.0).abs() < 1.0, "W8A8 A100: {w8}");
    }

    #[test]
    fn h100_alpha_budgets_match_paper() {
        // Section 3.3: α ≤ 5.07 (memory-bound), α ≤ ~5.05 (compute-bound
        // at the W4A8 transition batch).
        let mem = H100.alpha_budget_memory_bound(0.5);
        assert!((mem - 5.07).abs() < 0.01, "memory-bound α: {mem}");
        let m_star = H100.transition_batch(TcKind::Int8, 0.5).round() as usize;
        let comp = H100.alpha_budget_compute_bound(TcKind::Int8, m_star, 256);
        assert!((comp - 5.07).abs() < 0.1, "compute-bound α: {comp}");
    }

    #[test]
    fn lqq_alpha_is_safely_under_budget() {
        use lq_swar::audit::LQQ_BUDGET;
        assert!(LQQ_BUDGET.alpha < H100.alpha_budget_memory_bound(0.5) / 5.0);
    }

    #[test]
    fn w4a8_halves_the_transition_batch() {
        for spec in [A100, H100, H800] {
            let w8 = spec.transition_batch(TcKind::Int8, 1.0);
            let w4 = spec.transition_batch(TcKind::Int8, 0.5);
            assert!((w4 * 2.0 - w8).abs() < 1e-6, "{}", spec.name);
        }
    }

    #[test]
    fn tensor_core_growth_outpaces_bandwidth() {
        // The paper's hardware-trend observation: H100/A100 compute
        // ratio exceeds the bandwidth ratio, pushing transitions higher.
        let compute_ratio = H100.tc_int8 / A100.tc_int8;
        let bw_ratio = H100.mem_bw / A100.mem_bw;
        assert!(compute_ratio > bw_ratio * 1.5);
    }

    #[test]
    fn h800_matches_h100_for_gemm() {
        assert_eq!(H800.tc_int8, H100.tc_int8);
        assert_eq!(H800.mem_bw, H100.mem_bw);
    }

    #[test]
    fn fp8_unsupported_on_a100() {
        assert_eq!(A100.tc_throughput(TcKind::Fp8), 0.0);
        assert!(H100.tc_throughput(TcKind::Fp8) > 0.0);
    }
}
