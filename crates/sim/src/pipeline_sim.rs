//! Discrete-event simulation of warp-group pipelines inside one thread
//! block (reproduces the Figure 13 ablation's GPU-shaped numbers and the
//! Section 5.1 ExCP-bubble analysis).
//!
//! Three shared resources model the heterogeneous units: the TMA engine,
//! the SM's CUDA cores, and its tensor cores. Each main-loop iteration
//! needs a load (TMA), a dequantization (CUDA), and an MMA (TC). The
//! pipeline variants differ in *who* executes the middle step and what
//! hand-offs cost:
//!
//! * **Baseline / +LQQ** — classic software-pipelined kernel: loads are
//!   double-buffered, but dequant and MMA execute in the same warps, so
//!   per iteration the compute time is `t_dq + t_mma`.
//! * **ExCP** — a dedicated Dequant WG between Load and MMA WGs. Adds a
//!   register-file↔SMEM round trip to the dequant stage and an
//!   `mbarrier` synchronisation to every hand-off; stage buffers bound
//!   the in-flight iterations.
//! * **ImFP** — `W` Compute WGs each executing dequant+MMA for the
//!   iterations they claim; dequant of one WG overlaps MMA of another.
//!   No inter-WG data movement, no software synchronisation.

/// Per-iteration stage durations (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterTimes {
    /// Weight-tile load (TMA).
    pub t_ld: f64,
    /// Dequantization (CUDA cores).
    pub t_dq: f64,
    /// MMA (tensor cores).
    pub t_mma: f64,
}

/// Result of a pipeline simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Total makespan (seconds).
    pub makespan: f64,
    /// Tensor-core busy fraction.
    pub tc_utilization: f64,
    /// CUDA-core busy fraction.
    pub cuda_utilization: f64,
}

/// Export per-resource busy time and makespan for one simulated
/// pipeline variant as gauges
/// (`lq_sim_busy_seconds{pipeline=...,resource="tma"|"cuda"|"tensor"}`,
/// `lq_sim_makespan_seconds{pipeline=...}`). No-op when telemetry is
/// disabled; last run wins, which is the right semantics for a
/// modelled (not sampled) quantity.
fn publish_busy(pipeline: &str, tma: f64, cuda: f64, tensor: f64, makespan: f64) {
    if !lq_telemetry::enabled() {
        return;
    }
    let reg = lq_telemetry::registry();
    for (resource, secs) in [("tma", tma), ("cuda", cuda), ("tensor", tensor)] {
        reg.gauge_with(
            "lq_sim_busy_seconds",
            &[("pipeline", pipeline), ("resource", resource)],
        )
        .set(secs);
    }
    reg.gauge_with("lq_sim_makespan_seconds", &[("pipeline", pipeline)])
        .set(makespan);
}

/// Classic software pipeline (no warp specialisation of dequant):
/// load overlaps compute; compute is `t_dq + t_mma` serial.
#[must_use]
pub fn simulate_serial_dequant(t: IterTimes, iters: usize, stages: usize) -> SimResult {
    assert!(iters > 0 && stages >= 1);
    let mut load_done = vec![0.0f64; iters];
    let mut comp_done = vec![0.0f64; iters];
    let mut tma_avail = 0.0f64;
    let mut comp_avail = 0.0f64;
    for i in 0..iters {
        // Stage buffer: load i waits for compute of iteration i-stages.
        let buf_free = if i >= stages {
            comp_done[i - stages]
        } else {
            0.0
        };
        let start = tma_avail.max(buf_free);
        load_done[i] = start + t.t_ld;
        tma_avail = load_done[i];
        let cstart = comp_avail.max(load_done[i]);
        comp_done[i] = cstart + t.t_dq + t.t_mma;
        comp_avail = comp_done[i];
    }
    let makespan = comp_done[iters - 1];
    let n = iters as f64;
    publish_busy(
        "serial_dequant",
        n * t.t_ld,
        n * t.t_dq,
        n * t.t_mma,
        makespan,
    );
    SimResult {
        makespan,
        tc_utilization: n * t.t_mma / makespan,
        cuda_utilization: n * t.t_dq / makespan,
    }
}

/// ExCP: Load WG → Dequant WG → MMA WG with per-hand-off sync cost and a
/// round-trip SMEM penalty on the dequant stage.
#[must_use]
pub fn simulate_excp(
    t: IterTimes,
    iters: usize,
    stages: usize,
    t_sync: f64,
    t_roundtrip: f64,
) -> SimResult {
    assert!(iters > 0 && stages >= 1);
    let t_dq_eff = t.t_dq + t_roundtrip;
    let mut load_done = vec![0.0f64; iters];
    let mut dq_done = vec![0.0f64; iters];
    let mut mma_done = vec![0.0f64; iters];
    let (mut tma_avail, mut cuda_avail, mut tc_avail) = (0.0f64, 0.0f64, 0.0f64);
    for i in 0..iters {
        let buf_free = if i >= stages {
            dq_done[i - stages]
        } else {
            0.0
        };
        load_done[i] = tma_avail.max(buf_free) + t.t_ld;
        tma_avail = load_done[i];

        let dq_buf_free = if i >= stages {
            mma_done[i - stages]
        } else {
            0.0
        };
        let dstart = cuda_avail.max(load_done[i] + t_sync).max(dq_buf_free);
        dq_done[i] = dstart + t_dq_eff;
        cuda_avail = dq_done[i];

        let mstart = tc_avail.max(dq_done[i] + t_sync);
        mma_done[i] = mstart + t.t_mma;
        tc_avail = mma_done[i];
    }
    let makespan = mma_done[iters - 1];
    let n = iters as f64;
    publish_busy("excp", n * t.t_ld, n * t_dq_eff, n * t.t_mma, makespan);
    SimResult {
        makespan,
        tc_utilization: n * t.t_mma / makespan,
        cuda_utilization: n * t_dq_eff / makespan,
    }
}

/// ImFP: `workers` Compute WGs dynamically claim iterations; each does
/// dequant (CUDA, shared) then MMA (TC, shared). Scheduling is by
/// hardware — modelled as in-order greedy claims with zero sync cost.
#[must_use]
pub fn simulate_imfp(t: IterTimes, iters: usize, stages: usize, workers: usize) -> SimResult {
    assert!(iters > 0 && stages >= 1 && workers >= 1);
    let mut load_done = vec![0.0f64; iters];
    let mut done = vec![0.0f64; iters];
    let mut wg_ready = vec![0.0f64; workers];
    let (mut tma_avail, mut cuda_avail, mut tc_avail) = (0.0f64, 0.0f64, 0.0f64);
    for i in 0..iters {
        let buf_free = if i >= stages { done[i - stages] } else { 0.0 };
        load_done[i] = tma_avail.max(buf_free) + t.t_ld;
        tma_avail = load_done[i];

        let w = i % workers;
        let dstart = wg_ready[w].max(load_done[i]).max(cuda_avail);
        let dq_end = dstart + t.t_dq;
        cuda_avail = dq_end;
        let mstart = dq_end.max(tc_avail);
        let mma_end = mstart + t.t_mma;
        tc_avail = mma_end;
        wg_ready[w] = mma_end;
        done[i] = mma_end;
    }
    let makespan = done[iters - 1];
    let n = iters as f64;
    publish_busy("imfp", n * t.t_ld, n * t.t_dq, n * t.t_mma, makespan);
    SimResult {
        makespan,
        tc_utilization: n * t.t_mma / makespan,
        cuda_utilization: n * t.t_dq / makespan,
    }
}

/// Per-iteration stage times for one main-loop iteration of a W4A8 GEMM
/// tile on `spec`, given the dequant α.
#[must_use]
pub fn iter_times(
    spec: &crate::specs::GpuSpec,
    nt: usize,
    kt: usize,
    mt: usize,
    alpha: f64,
) -> IterTimes {
    let elems = (nt * kt) as f64;
    // Block-level throughput: device throughput divided across resident
    // blocks (spec.sms × blocks_per_sm of them).
    let blocks = (spec.sms * spec.blocks_per_sm) as f64;
    IterTimes {
        t_ld: elems * 0.5 / (spec.mem_bw / blocks),
        t_dq: alpha * elems / (spec.cuda_int / blocks),
        t_mma: mt as f64 * 2.0 * elems / (spec.tc_int8 / blocks),
    }
}

/// The four Figure-13 ablation variants' makespans for `iters`
/// iterations (seconds): Baseline(QoQ serial), +LQQ(serial),
/// +LQQ+ExCP, +LQQ+ImFP.
#[derive(Debug, Clone, Copy)]
pub struct AblationResult {
    /// QoQ dequant, serial with MMA.
    pub baseline: f64,
    /// LQQ dequant, serial with MMA.
    pub lqq: f64,
    /// LQQ + explicit coarse-grained pipeline.
    pub lqq_excp: f64,
    /// LQQ + implicit fine-grained pipeline.
    pub lqq_imfp: f64,
}

/// Run the ablation for a tile stream (Figure 13's per-batch points).
///
/// Modelling notes:
/// * Blocks computing different m-tiles of the same n-column reuse the
///   weight tile through L2, so the effective HBM time per iteration is
///   divided by `⌈m/64⌉` (the per-tile-row reload the naive Eq. 3 would
///   charge never reaches HBM).
/// * The ablation holds layout and dequant *logic* constant (the paper's
///   note under Figure 13), so the baseline's α is QoQ's arithmetic cost
///   with LiquidGEMM's cheap dual-MMA addressing.
/// * ExCP must provision SMEM for the materialised INT8 tiles, costing
///   occupancy and with it achieved bandwidth (the 1.25× load factor),
///   and its hand-offs ride `mbarrier`s; the round trip is a write+read
///   of the INT8 tile at per-SM SMEM bandwidth (~400 GB/s).
#[must_use]
pub fn ablation(spec: &crate::specs::GpuSpec, m: usize, iters: usize) -> AblationResult {
    let (nt, kt) = (128, 64);
    let mt = m.min(64);
    let m_tile_reuse = m.div_ceil(64) as f64;
    let qoq_alpha = 19.0 / 8.0 + 0.25;
    let lqq_alpha = 7.0 / 8.0 + 0.25;
    let mut qoq = iter_times(spec, nt, kt, mt, qoq_alpha);
    qoq.t_ld /= m_tile_reuse;
    let mut lqq = iter_times(spec, nt, kt, mt, lqq_alpha);
    lqq.t_ld /= m_tile_reuse;
    let stages = 4;
    let t_sync = 1.5e-7 / iters as f64 * 8.0; // amortised mbarrier cost
    let t_roundtrip = 2.0 * (nt * kt) as f64 / 400.0e9;
    let excp_ld_penalty = 1.25;
    let excp_times = IterTimes {
        t_ld: lqq.t_ld * excp_ld_penalty,
        ..lqq
    };
    AblationResult {
        baseline: simulate_serial_dequant(qoq, iters, stages).makespan,
        lqq: simulate_serial_dequant(lqq, iters, stages).makespan,
        lqq_excp: simulate_excp(excp_times, iters, stages, t_sync, t_roundtrip).makespan,
        lqq_imfp: simulate_imfp(lqq, iters, stages, 2).makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::H800;

    const T: IterTimes = IterTimes {
        t_ld: 1.0,
        t_dq: 0.5,
        t_mma: 2.0,
    };

    #[test]
    fn serial_dequant_steady_state_is_sum_of_compute() {
        // Compute-bound: makespan → iters × (t_dq + t_mma).
        let r = simulate_serial_dequant(T, 100, 2);
        assert!(
            (r.makespan / (100.0 * 2.5) - 1.0).abs() < 0.02,
            "{}",
            r.makespan
        );
    }

    #[test]
    fn serial_dequant_memory_bound_case() {
        let t = IterTimes {
            t_ld: 5.0,
            t_dq: 0.5,
            t_mma: 1.0,
        };
        let r = simulate_serial_dequant(t, 100, 2);
        assert!((r.makespan / 500.0 - 1.0).abs() < 0.05, "{}", r.makespan);
    }

    #[test]
    fn imfp_hides_dequant_behind_mma() {
        // With 2 WGs and t_dq < t_mma, TC should stay ~fully busy:
        // makespan → iters × t_mma.
        let r = simulate_imfp(T, 200, 4, 2);
        assert!(
            (r.makespan / (200.0 * 2.0) - 1.0).abs() < 0.05,
            "{}",
            r.makespan
        );
        assert!(r.tc_utilization > 0.9);
    }

    #[test]
    fn imfp_beats_serial_dequant() {
        let serial = simulate_serial_dequant(T, 200, 4).makespan;
        let imfp = simulate_imfp(T, 200, 4, 2).makespan;
        assert!(imfp < serial * 0.9, "imfp {imfp} serial {serial}");
    }

    #[test]
    fn excp_pays_roundtrip_and_sync() {
        let clean = simulate_excp(T, 200, 4, 0.0, 0.0).makespan;
        let costly = simulate_excp(T, 200, 4, 0.3, 0.7).makespan;
        assert!(costly > clean);
        // With zero overheads ExCP pipelines perfectly like ImFP.
        let imfp = simulate_imfp(T, 200, 4, 2).makespan;
        assert!((clean / imfp - 1.0).abs() < 0.05);
    }

    #[test]
    fn imfp_beats_excp_with_realistic_overheads() {
        let excp = simulate_excp(T, 200, 4, 0.3, 0.7).makespan;
        let imfp = simulate_imfp(T, 200, 4, 2).makespan;
        assert!(imfp < excp, "imfp {imfp} excp {excp}");
    }

    #[test]
    fn ablation_reproduces_figure13_ordering_large_batch() {
        let r = ablation(&H800, 256, 256);
        assert!(r.lqq < r.baseline, "+LQQ must speed up: {r:?}");
        assert!(r.lqq_imfp <= r.lqq, "+ImFP must not regress: {r:?}");
        assert!(r.lqq_imfp < r.baseline * 0.75, "combined win: {r:?}");
        // Paper: LQQ alone yields up to 1.29x at large batch.
        let lqq_gain = r.baseline / r.lqq;
        assert!((1.05..1.8).contains(&lqq_gain), "LQQ gain {lqq_gain}");
    }

    #[test]
    fn ablation_small_batch_lqq_gain_is_limited() {
        // Memory-bound: dequant is hidden anyway; LQQ gains little.
        let r = ablation(&H800, 4, 256);
        let gain = r.baseline / r.lqq;
        assert!(gain < 1.1, "small-batch LQQ gain {gain}");
    }

    #[test]
    fn excp_can_hurt_at_small_batch() {
        // Figure 13: enabling ExCP at small batch degrades performance.
        let r = ablation(&H800, 4, 256);
        assert!(r.lqq_excp > r.lqq, "ExCP should cost at m=4: {r:?}");
    }

    #[test]
    fn utilizations_are_fractions() {
        for r in [
            simulate_serial_dequant(T, 50, 2),
            simulate_excp(T, 50, 2, 0.1, 0.1),
            simulate_imfp(T, 50, 2, 3),
        ] {
            assert!(r.tc_utilization > 0.0 && r.tc_utilization <= 1.0);
            assert!(r.cuda_utilization > 0.0 && r.cuda_utilization <= 1.0);
        }
    }
}
