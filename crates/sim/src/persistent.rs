//! Persistent-kernel tile scheduling vs wave-synchronous launches —
//! the GPU-level companion of Section 5.4's "we adopt standard GEMM
//! optimizations such as persistent kernels".
//!
//! A classic launch runs the tile grid in *waves*: every SM slot takes
//! one tile, and the next wave cannot start until the longest tile of
//! the current wave retires (the hardware rasteriser's behaviour once
//! occupancy is 1 block/SM and tiles synchronise on SMEM reuse). A
//! persistent kernel launches exactly `slots` blocks that pull tiles
//! from a global counter ([`crate::kernel_model`] assumes this for
//! LiquidGEMM) — greedy list scheduling, no wave barrier, so ragged
//! tile times and non-divisible grids cost far less.
//!
//! [`makespan_wave`] and [`makespan_persistent`] compute both schedules
//! for arbitrary per-tile times; the classic `⌈tiles/slots⌉` wave
//! quantization falls out as the uniform-time special case.

/// Makespan of wave-synchronous execution: tiles are issued in batches
/// of `slots`; each wave lasts as long as its slowest tile.
#[must_use]
pub fn makespan_wave(tile_times: &[f64], slots: usize) -> f64 {
    assert!(slots > 0, "need at least one SM slot");
    tile_times
        .chunks(slots)
        .map(|wave| wave.iter().copied().fold(0.0f64, f64::max))
        .sum()
}

/// Makespan of persistent (greedy list) scheduling: `slots` workers
/// each take the next tile the moment they finish the previous one.
#[must_use]
pub fn makespan_persistent(tile_times: &[f64], slots: usize) -> f64 {
    assert!(slots > 0, "need at least one SM slot");
    let mut workers = vec![0.0f64; slots.min(tile_times.len()).max(1)];
    for &t in tile_times {
        // Assign to the earliest-free worker (binary-heap-free O(n·s)
        // is fine at these sizes).
        let (idx, _) = workers
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty");
        workers[idx] += t;
    }
    workers.into_iter().fold(0.0f64, f64::max)
}

/// Relative speedup of persistent over wave scheduling for a tile grid.
#[must_use]
pub fn persistent_speedup(tile_times: &[f64], slots: usize) -> f64 {
    let w = makespan_wave(tile_times, slots);
    let p = makespan_persistent(tile_times, slots);
    if p == 0.0 {
        1.0
    } else {
        w / p
    }
}

/// Per-tile times for an `M×N` GEMM tile grid where edge tiles do
/// proportionally less work (the ragged case persistent scheduling
/// wins on).
#[must_use]
pub fn ragged_tile_times(m: usize, n: usize, mt: usize, nt: usize, t_full_tile: f64) -> Vec<f64> {
    assert!(mt > 0 && nt > 0 && t_full_tile > 0.0);
    let mut times = Vec::new();
    let mut m0 = 0;
    while m0 < m {
        let h = mt.min(m - m0);
        let mut n0 = 0;
        while n0 < n {
            let w = nt.min(n - n0);
            times.push(t_full_tile * (h * w) as f64 / (mt * nt) as f64);
            n0 += nt;
        }
        m0 += mt;
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_divisible_grid_is_equal() {
        // 264 equal tiles on 132 slots: both schedules take 2 tile-times.
        let times = vec![1.0; 264];
        assert_eq!(makespan_wave(&times, 132), 2.0);
        assert_eq!(makespan_persistent(&times, 132), 2.0);
        assert_eq!(persistent_speedup(&times, 132), 1.0);
    }

    #[test]
    fn partial_last_wave_penalises_wave_scheduling() {
        // 133 tiles on 132 slots: wave pays a full second wave for one
        // tile; persistent pays the same (that one tile must run after)
        // — with *uniform* tiles both are 2. The win needs raggedness:
        let times = vec![1.0; 133];
        assert_eq!(makespan_wave(&times, 132), 2.0);
        assert_eq!(makespan_persistent(&times, 132), 2.0);
    }

    #[test]
    fn ragged_times_reward_persistence() {
        // Alternating heavy/light tiles: waves serialise on the heavy
        // ones; persistence interleaves.
        let times: Vec<f64> = (0..64)
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.1 })
            .collect();
        let slots = 8;
        let w = makespan_wave(&times, slots);
        let p = makespan_persistent(&times, slots);
        assert!(p < w, "persistent {p} !< wave {w}");
        assert!(persistent_speedup(&times, slots) > 1.3);
    }

    #[test]
    fn persistent_is_never_slower() {
        // List scheduling dominates wave-barrier scheduling for any
        // sequence (each wave's barrier only removes freedom).
        let mut state = 0x1234_5678u64;
        for trial in 0..50 {
            let n = 5 + (trial * 7) % 90;
            let times: Vec<f64> = (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    0.1 + (state % 1000) as f64 / 500.0
                })
                .collect();
            for slots in [1usize, 3, 8, 17] {
                let w = makespan_wave(&times, slots);
                let p = makespan_persistent(&times, slots);
                assert!(p <= w + 1e-9, "n={n} slots={slots}: {p} > {w}");
            }
        }
    }

    #[test]
    fn single_slot_serialises_both() {
        let times = vec![0.5, 1.5, 1.0];
        assert_eq!(makespan_wave(&times, 1), 3.0);
        assert_eq!(makespan_persistent(&times, 1), 3.0);
    }

    #[test]
    fn ragged_grid_builder_shapes() {
        // 100×300 with 64×128 tiles → 2×3 grid with clipped edges.
        let times = ragged_tile_times(100, 300, 64, 128, 1.0);
        assert_eq!(times.len(), 6);
        assert_eq!(times[0], 1.0); // full tile
                                   // Bottom-right tile: 36×44 of 64×128.
        let last = times[5];
        assert!((last - (36.0 * 44.0) / (64.0 * 128.0)).abs() < 1e-12);
    }

    #[test]
    fn dense_gemm_grid_persistent_never_loses() {
        // Dense decode grids are near-uniform, so the persistent win is
        // small — but it must never lose.
        let times = ragged_tile_times(250, 11000, 64, 128, 1.0);
        let s = persistent_speedup(&times, 132);
        assert!(s >= 1.0, "speedup {s}");
    }

    #[test]
    fn grouped_moe_tiles_reward_persistence() {
        // Mixtral grouped GEMM: experts receive different token counts,
        // so their tile streams have different per-tile times — the
        // heterogeneity where the single persistent launch (LiquidGEMM)
        // beats wave-synchronous per-expert execution.
        let mut times = Vec::new();
        for expert in 0..8usize {
            let m_e = 2 + expert * 7; // skewed routing
            times.extend(ragged_tile_times(
                m_e,
                14336,
                64,
                128,
                0.2 + m_e as f64 * 0.0125,
            ));
        }
        let s = persistent_speedup(&times, 132);
        assert!(s > 1.05, "speedup {s}");
    }
}
