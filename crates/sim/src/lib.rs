//! # lq-sim — GPU performance model and pipeline simulator
//!
//! The paper's absolute numbers come from an H800; this crate carries
//! everything needed to regenerate their *shape* without one:
//!
//! * [`specs`] — published hardware metrics for A100/H100/H800
//!   (Figure 1's table), calibrated so the paper's derived quantities
//!   (transition batch sizes 150/300/156, α thresholds 5.07/5.05)
//!   reproduce exactly.
//! * [`roofline`] — arithmetic-intensity / attainable-throughput
//!   analysis per precision configuration (Figure 1's roofline).
//! * [`cost_model`] — the paper's Equations 3–6: per-iteration load,
//!   dequant, and MMA times; single-tile and GPU-level execution; the
//!   memory→compute transition points.
//! * [`kernel_model`] — per-system GEMM latency models (LiquidGEMM,
//!   QServe, TRT-W4A16/W8A8/FP8/FP16) with each kernel's dequant α,
//!   address-arithmetic overhead, pipeline overlap, and small-batch
//!   GEMV specialisation; drives Figures 5 and 12.
//! * [`trends`] — hardware-trend projection (Section 3.3's "implication
//!   on LLM serving"): transitions and dequant budgets on scaled GPUs.
//! * [`persistent`] — persistent-kernel tile scheduling vs
//!   wave-synchronous launches (Section 5.4's optimisation, quantified).
//! * [`pipeline_sim`] — a discrete-event simulator of warp-group
//!   pipelines inside one thread block (TMA / CUDA-core / tensor-core
//!   units, stage buffers, synchronisation costs), reproducing the
//!   ExCP-bubbles-vs-ImFP-overlap ablation (Figure 13).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost_model;
pub mod kernel_model;
pub mod persistent;
pub mod pipeline_sim;
pub mod roofline;
pub mod specs;
pub mod trends;

pub use cost_model::{CostBreakdown, GemmShape, PrecisionCfg};
pub use kernel_model::{KernelModel, SystemKind};
pub use specs::{GpuSpec, A100, H100, H800};
