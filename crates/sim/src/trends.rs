//! Hardware-trend analysis (Section 3.3, "Implication on LLM Serving").
//!
//! The paper observes that tensor-core throughput grows faster than
//! memory bandwidth generation over generation, pushing the
//! memory→compute transition to ever larger batch sizes — and that
//! W4A8 halves those thresholds, which is the strategic argument for
//! investing in a fast W4A8 kernel. This module projects that argument:
//! given compute/bandwidth growth factors, where do the transitions and
//! the dequantization budgets land on hypothetical future parts?

use crate::specs::{GpuSpec, TcKind};

/// A hypothetical GPU scaled from a baseline part.
#[must_use]
pub fn scaled_gpu(
    base: &GpuSpec,
    name: &'static str,
    compute_factor: f64,
    bandwidth_factor: f64,
) -> GpuSpec {
    assert!(compute_factor > 0.0 && bandwidth_factor > 0.0);
    GpuSpec {
        name,
        mem_bw: base.mem_bw * bandwidth_factor,
        tc_int8: base.tc_int8 * compute_factor,
        tc_fp16: base.tc_fp16 * compute_factor,
        tc_fp8: base.tc_fp8 * compute_factor,
        // CUDA-core throughput historically tracks compute, not HBM.
        cuda_int: base.cuda_int * compute_factor,
        ..*base
    }
}

/// One row of the trend table.
#[derive(Debug, Clone, Copy)]
pub struct TrendRow {
    /// GPU name.
    pub name: &'static str,
    /// W8A8 transition batch.
    pub w8a8_transition: f64,
    /// W4A8 transition batch.
    pub w4a8_transition: f64,
    /// Dequant budget α (memory-bound, 4-bit weights).
    pub alpha_budget: f64,
    /// Whether LiquidQuant's α = 0.875 still fits with 4x headroom.
    pub lqq_headroom: f64,
}

/// Evaluate the trend quantities for one GPU.
#[must_use]
pub fn trend_row(spec: &GpuSpec) -> TrendRow {
    let alpha = spec.alpha_budget_memory_bound(0.5);
    TrendRow {
        name: spec.name,
        w8a8_transition: spec.transition_batch(TcKind::Int8, 1.0),
        w4a8_transition: spec.transition_batch(TcKind::Int8, 0.5),
        alpha_budget: alpha,
        lqq_headroom: alpha / (7.0 / 8.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{A100, H100};

    #[test]
    fn history_shows_growing_transitions() {
        let a = trend_row(&A100);
        let h = trend_row(&H100);
        assert!(h.w8a8_transition > a.w8a8_transition);
        assert!(h.w4a8_transition > a.w4a8_transition);
        // W4A8 always halves W8A8.
        assert!((a.w4a8_transition * 2.0 - a.w8a8_transition).abs() < 1e-9);
    }

    #[test]
    fn compute_heavy_future_raises_thresholds() {
        // Next-gen: 2.5x compute, 1.5x bandwidth (the historical ratio).
        let next = scaled_gpu(&H100, "NextGen", 2.5, 1.5);
        let row = trend_row(&next);
        assert!(row.w8a8_transition > 450.0, "{}", row.w8a8_transition);
        // W4A8 keeps the threshold near today's W8A8 value — the
        // paper's argument for quantization as a hedge.
        assert!(row.w4a8_transition < row.w8a8_transition / 1.9);
    }

    #[test]
    fn alpha_budget_tracks_compute_bandwidth_ratio() {
        // If CUDA cores scale with compute but HBM lags, the dequant
        // budget *grows* — cheap dequantization stays viable.
        let next = scaled_gpu(&H100, "NextGen", 2.0, 1.0);
        assert!(trend_row(&next).alpha_budget > trend_row(&H100).alpha_budget * 1.9);
    }

    #[test]
    fn lqq_headroom_is_large_everywhere() {
        for spec in [A100, H100, scaled_gpu(&H100, "X", 3.0, 1.5)] {
            let row = trend_row(&spec);
            assert!(
                row.lqq_headroom > 2.0,
                "{}: {}",
                spec.name,
                row.lqq_headroom
            );
        }
    }

    #[test]
    #[should_panic(expected = "compute_factor > 0.0")]
    fn bad_factors_panic() {
        let _ = scaled_gpu(&H100, "bad", 0.0, 1.0);
    }
}
