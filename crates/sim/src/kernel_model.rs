//! Per-system GEMM latency models (drives Figures 5 and 12).
//!
//! Wraps the cost model with the per-kernel realities the paper's
//! benchmarks expose: launch overhead (persistent kernels amortise it),
//! small-batch memory efficiency (TRT ships specialised GEMV kernels
//! that LiquidGEMM and QServe lack below M ≈ 32), and grouped-GEMM
//! pipelining for MoE experts (ImFP pipelines across the per-expert
//! GEMMs; launch-per-expert kernels pay E launches).
//!
//! Calibration targets from the paper:
//! * Fig. 12, batch 256: LiquidGEMM 2.75–2.90× over QServe on LLaMA2
//!   models; 1.41–1.84× over TRT-FP8 and 1.12–2.53× over TRT-W4A16 on
//!   Mixtral above batch 32.
//! * Fig. 12, batch < 32, Mixtral: TRT-W4A16 / TRT-FP8 *beat* LiquidGEMM
//!   (GEMV specialisation).
//! * Fig. 5: QServe ≈ W8A8 at M ≤ 64, ~2× slower at M ≥ 128.

use crate::cost_model::{gemm_cost, GemmShape, PrecisionCfg};
use crate::specs::GpuSpec;

/// The systems compared in the paper's kernel benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// This paper's kernel.
    LiquidGemm,
    /// QServe's W4A8 kernel.
    QServe,
    /// TensorRT-LLM W4A16 (AWQ-style).
    TrtW4A16,
    /// TensorRT-LLM W8A8 (SmoothQuant-style).
    TrtW8A8,
    /// TensorRT-LLM FP8.
    TrtFp8,
    /// TensorRT-LLM FP16.
    TrtFp16,
}

impl SystemKind {
    /// All systems, in the paper's legend order.
    pub const ALL: [SystemKind; 6] = [
        SystemKind::LiquidGemm,
        SystemKind::QServe,
        SystemKind::TrtW4A16,
        SystemKind::TrtW8A8,
        SystemKind::TrtFp8,
        SystemKind::TrtFp16,
    ];

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::LiquidGemm => "LiquidGEMM",
            SystemKind::QServe => "QServe",
            SystemKind::TrtW4A16 => "TRT-W4A16",
            SystemKind::TrtW8A8 => "TRT-W8A8",
            SystemKind::TrtFp8 => "TRT-FP8",
            SystemKind::TrtFp16 => "TRT-FP16",
        }
    }
}

/// A calibrated kernel latency model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelModel {
    /// Which system this models.
    pub kind: SystemKind,
    /// Cost-model parameters.
    pub precision: PrecisionCfg,
    /// Fixed overhead per kernel launch (s).
    pub launch_overhead: f64,
    /// Has a specialised small-batch GEMV path.
    pub gemv_small_batch: bool,
    /// Pipelines grouped (MoE expert) GEMMs inside one launch.
    pub grouped_pipeline: bool,
    /// Fraction of peak memory bandwidth reached in the steady state.
    pub mem_efficiency: f64,
    /// Fraction of peak tensor-core throughput reached in the steady
    /// state (kernel quality: persistent ping-pong scheduling and full
    /// operand overlap push LiquidGEMM above the stock kernels —
    /// Figure 12's 1.12–1.63x compute-bound gap).
    pub mma_efficiency: f64,
}

/// Batch size below which GEMV specialisation matters.
pub const GEMV_THRESHOLD: usize = 32;

impl KernelModel {
    /// The calibrated model for one system.
    #[must_use]
    pub fn of(kind: SystemKind) -> Self {
        match kind {
            SystemKind::LiquidGemm => Self {
                kind,
                precision: PrecisionCfg::LIQUID_W4A8,
                launch_overhead: 3.0e-6, // persistent kernel
                gemv_small_batch: false,
                grouped_pipeline: true,
                mem_efficiency: 0.85,
                mma_efficiency: 0.92,
            },
            SystemKind::QServe => Self {
                kind,
                precision: PrecisionCfg::QSERVE_W4A8,
                launch_overhead: 8.0e-6,
                gemv_small_batch: false,
                grouped_pipeline: false,
                mem_efficiency: 0.80,
                mma_efficiency: 0.80,
            },
            SystemKind::TrtW4A16 => Self {
                kind,
                precision: PrecisionCfg::W4A16,
                launch_overhead: 5.0e-6,
                gemv_small_batch: true,
                grouped_pipeline: false,
                mem_efficiency: 0.85,
                mma_efficiency: 0.78,
            },
            SystemKind::TrtW8A8 => Self {
                kind,
                precision: PrecisionCfg::W8A8,
                launch_overhead: 5.0e-6,
                gemv_small_batch: false,
                grouped_pipeline: false,
                mem_efficiency: 0.85,
                mma_efficiency: 0.78,
            },
            SystemKind::TrtFp8 => Self {
                kind,
                precision: PrecisionCfg::FP8,
                launch_overhead: 5.0e-6,
                gemv_small_batch: true,
                grouped_pipeline: false,
                mem_efficiency: 0.85,
                mma_efficiency: 0.78,
            },
            SystemKind::TrtFp16 => Self {
                kind,
                precision: PrecisionCfg::FP16,
                launch_overhead: 5.0e-6,
                gemv_small_batch: true,
                grouped_pipeline: false,
                mem_efficiency: 0.85,
                mma_efficiency: 0.78,
            },
        }
    }

    /// Effective memory efficiency at batch `m`: generic tiled kernels
    /// lose bandwidth at tiny batches (partial tiles, low occupancy)
    /// and ramp smoothly back to steady state by m ≈ 64;
    /// GEMV-specialised kernels hold ~92 % up to the GEMV threshold.
    #[must_use]
    pub fn mem_eff_at(&self, m: usize) -> f64 {
        if self.gemv_small_batch && m <= GEMV_THRESHOLD {
            return 0.92;
        }
        let fill = (m.min(64) as f64 / 64.0).max(0.25);
        self.mem_efficiency * (0.80 + 0.20 * fill)
    }

    /// Latency of one dense GEMM (s).
    #[must_use]
    pub fn latency(&self, spec: &GpuSpec, shape: GemmShape) -> f64 {
        let c = gemm_cost(spec, shape, self.precision);
        let eff = self.mem_eff_at(shape.m);
        let t_ld = c.t_ld / eff;
        // Dequant rides CUDA cores (unaffected); MMA pays the kernel's
        // achieved tensor-core efficiency.
        let t_mma = c.t_mma / self.mma_efficiency;
        let t_comp = if self.precision.overlap_dq {
            c.t_dq.max(t_mma)
        } else {
            c.t_dq + t_mma
        };
        c.m_tiles as f64 * t_ld.max(t_comp) + self.launch_overhead
    }

    /// Latency of a set of GEMMs executed for one layer (s) — fused QKV,
    /// attention output, and the FFN matmuls (Figures 5 and 12 benchmark
    /// exactly this set).
    #[must_use]
    pub fn layer_latency(&self, spec: &GpuSpec, shapes: &[GemmShape]) -> f64 {
        shapes.iter().map(|&s| self.latency(spec, s)).sum()
    }

    /// Latency of a grouped (MoE) GEMM: `experts` GEMMs of shape
    /// `shape`. A grouped-pipeline kernel issues them in one persistent
    /// launch and overlaps their tails; launch-per-expert kernels pay
    /// the full sum.
    #[must_use]
    pub fn grouped_latency(&self, spec: &GpuSpec, shape: GemmShape, experts: usize) -> f64 {
        assert!(experts > 0);
        let one = self.latency(spec, shape) - self.launch_overhead;
        if self.grouped_pipeline {
            // Single launch; inter-GEMM pipelining hides ~15% of each
            // expert's fill/drain. But with only a handful of tokens per
            // expert the persistent grouped kernel's tile grid starves —
            // a few huge-N tile columns per expert leave most SMs idle
            // while TRT's dedicated per-expert GEMV kernels stay fed.
            // This is why TRT-W4A16/FP8 win below batch 32 on Mixtral
            // (paper, Figure 12) despite LiquidGEMM's byte advantage.
            let imbalance = if shape.m < 8 { 2.4 } else { 1.0 };
            self.launch_overhead + one * experts as f64 * 0.85 * imbalance
        } else {
            (self.launch_overhead + one) * experts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::H800;

    const FFN: GemmShape = GemmShape {
        m: 256,
        n: 11008,
        k: 4096,
    };

    fn lat(kind: SystemKind, m: usize) -> f64 {
        let shape = GemmShape { m, ..FFN };
        KernelModel::of(kind).latency(&H800, shape)
    }

    #[test]
    fn figure12_liquid_vs_qserve_at_256() {
        let speedup = lat(SystemKind::QServe, 256) / lat(SystemKind::LiquidGemm, 256);
        assert!((2.3..3.3).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn figure5_qserve_competitive_small_batch() {
        // At M ≤ 64 QServe ≈ W8A8 (both memory-bound; QServe moves half
        // the bytes but wastes CUDA cores).
        let q = lat(SystemKind::QServe, 16);
        let w8 = lat(SystemKind::TrtW8A8, 16);
        assert!(q < w8 * 1.2, "QServe {q} vs W8A8 {w8}");
    }

    #[test]
    fn figure5_qserve_collapses_large_batch() {
        let q = lat(SystemKind::QServe, 256);
        let w8 = lat(SystemKind::TrtW8A8, 256);
        assert!(q > 1.7 * w8, "QServe {q} vs W8A8 {w8}");
    }

    #[test]
    fn liquid_beats_all_trt_at_large_batch() {
        // Paper abstract: 1.12–1.63x over TRT kernels.
        let l = lat(SystemKind::LiquidGemm, 256);
        for kind in [
            SystemKind::TrtW4A16,
            SystemKind::TrtW8A8,
            SystemKind::TrtFp8,
            SystemKind::TrtFp16,
        ] {
            let t = lat(kind, 256);
            assert!(t / l > 0.95, "{:?}: ratio {}", kind, t / l);
        }
        let fp16_ratio = lat(SystemKind::TrtFp16, 256) / l;
        assert!(fp16_ratio > 1.5, "FP16 should lose clearly: {fp16_ratio}");
    }

    #[test]
    fn liquid_wins_memory_bound_region() {
        let l = lat(SystemKind::LiquidGemm, 8);
        let w8 = lat(SystemKind::TrtW8A8, 8);
        let f16 = lat(SystemKind::TrtFp16, 8);
        assert!(l < w8);
        assert!(l < f16);
        assert!((f16 / l) > 2.5, "fp16/liquid {}", f16 / l);
    }

    #[test]
    fn gemv_systems_win_tiny_moe_batches() {
        // Mixtral regime: per-expert batch below the GEMV threshold.
        let shape = GemmShape {
            m: 4,
            n: 14336,
            k: 4096,
        };
        let l = KernelModel::of(SystemKind::LiquidGemm).latency(&H800, shape);
        let w4a16 = KernelModel::of(SystemKind::TrtW4A16).latency(&H800, shape);
        assert!(
            w4a16 < l,
            "TRT-W4A16 {w4a16} must beat LiquidGEMM {l} at m=4"
        );
    }

    #[test]
    fn liquid_wins_moe_above_threshold() {
        let shape = GemmShape {
            m: 64,
            n: 14336,
            k: 4096,
        };
        let l = KernelModel::of(SystemKind::LiquidGemm).grouped_latency(&H800, shape, 8);
        let fp8 = KernelModel::of(SystemKind::TrtFp8).grouped_latency(&H800, shape, 8);
        let w4a16 = KernelModel::of(SystemKind::TrtW4A16).grouped_latency(&H800, shape, 8);
        assert!(fp8 / l > 1.2, "fp8/liquid {}", fp8 / l);
        assert!(w4a16 / l > 1.0, "w4a16/liquid {}", w4a16 / l);
    }

    #[test]
    fn layer_latency_sums_shapes() {
        let shapes = [
            GemmShape {
                m: 64,
                n: 12288,
                k: 4096,
            },
            GemmShape {
                m: 64,
                n: 4096,
                k: 4096,
            },
        ];
        let m = KernelModel::of(SystemKind::LiquidGemm);
        let total = m.layer_latency(&H800, &shapes);
        let sum: f64 = shapes.iter().map(|&s| m.latency(&H800, s)).sum();
        assert!((total - sum).abs() < 1e-15);
    }

    #[test]
    fn grouped_pipeline_saves_vs_per_expert_launches() {
        let shape = GemmShape {
            m: 32,
            n: 14336,
            k: 4096,
        };
        let l = KernelModel::of(SystemKind::LiquidGemm);
        let grouped = l.grouped_latency(&H800, shape, 8);
        let naive = 8.0 * l.latency(&H800, shape);
        assert!(grouped < naive);
    }
}
