//! # lq-chaos — deterministic, seed-driven fault injection
//!
//! The paper's persistent-kernel design (§5.4) only pays off if the
//! resident pool *survives* faults instead of aborting the whole GEMM;
//! QServe and the LiquidGEMM evaluation both treat the serving runtime,
//! not the kernel, as the unit that must stay up. This crate is the
//! test harness for that claim: a [`FaultPlan`] derived from a single
//! seed schedules faults at exact event indices, and a [`FaultInjector`]
//! answers "does *this* event fault?" from lock-free atomic counters.
//!
//! ## Why index-scheduled, not probabilistic
//!
//! A probabilistic injector (fault with probability p) makes failures
//! irreproducible: thread interleaving changes which draw lands on
//! which job. Here the *schedule* is fixed up front — "the 3rd worker
//! job panics, the 7th KV allocation is denied" — and each injection
//! site keeps its own monotonically increasing event counter, so a
//! seed replays the same fault pattern regardless of which worker
//! thread happens to execute the faulted event. Retried jobs do not
//! consume schedule slots (the pool passes `is_retry = true`), so a
//! scheduled panic models one *transient* fault: the retry of a
//! faulted job always runs clean, and recovery is deterministic too.
//!
//! ## Injection sites
//!
//! | site | consulted by | effect |
//! |------|--------------|--------|
//! | worker job | pool worker, before executing a fresh job | panic mid-job or stall for a scheduled duration |
//! | submit | `WorkerPool::submit`, before the capacity gate | stall the submitter (models an injector-full burst) |
//! | KV alloc | `PagedKvCache` page allocation | deny with `OutOfMemory` |
//! | engine call | test engines' prefill/decode entry | request a panic (exercises the runtime's `try_*` containment) |
//! | replica step | `lq-router` replica scheduler loop | halt the whole replica at a scheduled decode step (router failover) |
//!
//! All hooks are threaded through as `Option<&FaultInjector>`-shaped
//! state; with no injector installed the hot path costs one `None`
//! check per site.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use lq_rng::Rng;

/// What a pool worker should do with the current job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Execute normally.
    None,
    /// Panic mid-job (the self-healing path must retry and respawn).
    Panic,
    /// Sleep for the given duration first (a slow/stalled worker).
    Stall(Duration),
}

/// A deterministic fault schedule: per-site sets of event indices.
///
/// Build one from a seed ([`FaultPlan::from_seed`]) for randomized
/// chaos sweeps, or assemble an exact schedule with the `*_at`
/// builders for unit tests. Indices count *fresh* events at each site
/// from 0 (see the crate docs for why retries are exempt).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed this plan was drawn from (0 for hand-built plans) —
    /// printed by test harnesses so failures replay exactly.
    pub seed: u64,
    /// Fresh worker-job indices that panic mid-job.
    pub worker_panics: Vec<u64>,
    /// `(index, micros)`: fresh worker-job indices that stall first.
    pub worker_stalls: Vec<(u64, u64)>,
    /// `(index, micros)`: submissions that stall before the capacity
    /// gate (models a queue-full burst).
    pub submit_stalls: Vec<(u64, u64)>,
    /// KV page-allocation indices that are denied (`OutOfMemory`).
    pub kv_denials: Vec<u64>,
    /// Engine-call indices (prefill/decode entry) that panic.
    pub engine_panics: Vec<u64>,
    /// `(replica, step)`: whole-replica failures — replica `replica`
    /// halts at its decode-step `step` (router-level failover site;
    /// counts per-replica steps, independent of the indexed sites
    /// above). Not drawn by [`FaultPlan::from_seed`], which predates
    /// the router; use [`FaultPlan::replica_kill_at`] or
    /// [`FaultPlan::from_seed_with_replicas`].
    pub replica_kills: Vec<(u64, u64)>,
    /// `(shard, call)`: tensor-parallel shard-pool failures — shard
    /// `shard` of a `ShardedGemm` dies at its `call`-th sharded GEMM
    /// (counts per-shard calls, independent of the sites above). Not
    /// drawn by [`FaultPlan::from_seed`]; use
    /// [`FaultPlan::shard_kill_at`] or
    /// [`FaultPlan::from_seed_with_shards`].
    pub shard_kills: Vec<(u64, u64)>,
}

impl FaultPlan {
    /// The empty schedule: every event runs clean. An injector built
    /// from it is the "enabled but quiet" baseline for differential
    /// runs.
    #[must_use]
    pub fn quiet() -> Self {
        Self::default()
    }

    /// Draw a bounded random schedule from `seed`. Index windows are
    /// sized for the test workloads in this repo (a few dozen jobs,
    /// allocations, and engine calls per run) so most plans land at
    /// least one fault; counts are small enough that bounded retry
    /// (`MAX_JOB_RETRIES` in the pool) is never exhausted.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = Rng::new(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let draw_set = |rng: &mut Rng, max_count: u64, window: u64| -> Vec<u64> {
            let n = rng.below(max_count + 1);
            (0..n).map(|_| rng.below(window)).collect()
        };
        let draw_stalls = |rng: &mut Rng, max_count: u64, window: u64| -> Vec<(u64, u64)> {
            let n = rng.below(max_count + 1);
            (0..n)
                .map(|_| (rng.below(window), rng.range_u64(20, 200)))
                .collect()
        };
        Self {
            seed,
            worker_panics: draw_set(&mut rng, 3, 48),
            worker_stalls: draw_stalls(&mut rng, 3, 48),
            submit_stalls: draw_stalls(&mut rng, 2, 32),
            kv_denials: draw_set(&mut rng, 4, 40),
            engine_panics: draw_set(&mut rng, 2, 64),
            replica_kills: Vec::new(),
            shard_kills: Vec::new(),
        }
    }

    /// Add worker-panic indices (unit-test builder).
    #[must_use]
    pub fn worker_panics_at(mut self, indices: &[u64]) -> Self {
        self.worker_panics.extend_from_slice(indices);
        self
    }

    /// Add a worker stall of `micros` at fresh-job `index`.
    #[must_use]
    pub fn worker_stall_at(mut self, index: u64, micros: u64) -> Self {
        self.worker_stalls.push((index, micros));
        self
    }

    /// Add a submit stall of `micros` at submission `index`.
    #[must_use]
    pub fn submit_stall_at(mut self, index: u64, micros: u64) -> Self {
        self.submit_stalls.push((index, micros));
        self
    }

    /// Add KV-allocation denial indices.
    #[must_use]
    pub fn kv_denials_at(mut self, indices: &[u64]) -> Self {
        self.kv_denials.extend_from_slice(indices);
        self
    }

    /// Add engine-call panic indices.
    #[must_use]
    pub fn engine_panics_at(mut self, indices: &[u64]) -> Self {
        self.engine_panics.extend_from_slice(indices);
        self
    }

    /// Kill `replica` at its decode-step `step` (router failover).
    #[must_use]
    pub fn replica_kill_at(mut self, replica: u64, step: u64) -> Self {
        self.replica_kills.push((replica, step));
        self
    }

    /// Draw a replica-kill-only schedule from `seed`: kills exactly one
    /// of `replicas` at an early decode step. The base sites stay
    /// quiet, so router failover sweeps isolate replica death from
    /// intra-replica faults. Deterministic per seed, like
    /// [`FaultPlan::from_seed`] (which is left untouched so existing
    /// seeded suites replay identically).
    #[must_use]
    pub fn from_seed_with_replicas(seed: u64, replicas: u64) -> Self {
        assert!(replicas >= 1, "need at least one replica");
        let mut rng = Rng::new(seed ^ 0x5EED_D00F_5EED_D00F);
        let victim = rng.below(replicas);
        let step = rng.range_u64(1, 12);
        Self {
            seed,
            ..Self::default()
        }
        .replica_kill_at(victim, step)
    }

    /// Kill tensor-parallel shard pool `shard` at its `call`-th
    /// sharded GEMM (degraded-mode surfacing in `ShardedGemm`).
    #[must_use]
    pub fn shard_kill_at(mut self, shard: u64, call: u64) -> Self {
        self.shard_kills.push((shard, call));
        self
    }

    /// Draw a shard-kill-only schedule from `seed`: kills exactly one
    /// of `shards` at an early sharded-GEMM call. All other sites stay
    /// quiet, so sharded chaos sweeps isolate shard-pool death from
    /// intra-pool faults. Deterministic per seed; drawn from its own
    /// stream so existing seeded suites replay identically.
    #[must_use]
    pub fn from_seed_with_shards(seed: u64, shards: u64) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let mut rng = Rng::new(seed ^ 0x7E4D_50A7_7E4D_50A7);
        let victim = rng.below(shards);
        let call = rng.range_u64(1, 8);
        Self {
            seed,
            ..Self::default()
        }
        .shard_kill_at(victim, call)
    }

    /// True when the plan schedules no fault at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.worker_panics.is_empty()
            && self.worker_stalls.is_empty()
            && self.submit_stalls.is_empty()
            && self.kv_denials.is_empty()
            && self.engine_panics.is_empty()
            && self.replica_kills.is_empty()
            && self.shard_kills.is_empty()
    }
}

/// Counts of faults actually fired, per site (a plan index beyond the
/// run's event count never fires).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Worker-job panics injected.
    pub worker_panics: u64,
    /// Worker-job stalls injected.
    pub worker_stalls: u64,
    /// Submit stalls injected.
    pub submit_stalls: u64,
    /// KV allocations denied.
    pub kv_denials: u64,
    /// Engine-call panics requested.
    pub engine_panics: u64,
    /// Whole-replica kills fired.
    pub replica_kills: u64,
    /// Tensor-parallel shard-pool kills fired.
    pub shard_kills: u64,
}

impl FaultStats {
    /// Total faults fired across all sites.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.worker_panics
            + self.worker_stalls
            + self.submit_stalls
            + self.kv_denials
            + self.engine_panics
            + self.replica_kills
            + self.shard_kills
    }
}

/// Thread-safe runtime for one [`FaultPlan`]: each site owns an atomic
/// event counter, and a consultation compares the claimed index
/// against the plan's schedule. Share one injector (behind an `Arc`)
/// between the pool, the KV cache, and a test engine so a single seed
/// governs the whole stack.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    worker_panics: HashSet<u64>,
    worker_stalls: HashMap<u64, u64>,
    submit_stalls: HashMap<u64, u64>,
    kv_denials: HashSet<u64>,
    engine_panics: HashSet<u64>,
    replica_kills: HashMap<u64, (u64, AtomicU64)>,
    shard_kills: HashMap<u64, (u64, AtomicU64)>,
    worker_ctr: AtomicU64,
    submit_ctr: AtomicU64,
    kv_ctr: AtomicU64,
    engine_ctr: AtomicU64,
    fired: [AtomicU64; 7],
}

impl FaultInjector {
    /// Count one fired fault and put it on the trace timeline
    /// (`FaultFired`, `a` = site index as laid out in [`FaultStats`],
    /// `b` = the scheduled event index that fired) so injected faults
    /// line up against the pool/serving events they perturb.
    fn fire(&self, site: usize, scheduled: u64) {
        self.fired[site].fetch_add(1, Ordering::Relaxed);
        lq_trace::record(
            lq_trace::EventKind::FaultFired,
            lq_trace::Track::Control,
            site as u64,
            scheduled,
        );
    }

    /// Build the runtime for `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            worker_panics: plan.worker_panics.iter().copied().collect(),
            worker_stalls: plan.worker_stalls.iter().copied().collect(),
            submit_stalls: plan.submit_stalls.iter().copied().collect(),
            kv_denials: plan.kv_denials.iter().copied().collect(),
            engine_panics: plan.engine_panics.iter().copied().collect(),
            replica_kills: plan
                .replica_kills
                .iter()
                .map(|&(r, s)| (r, (s, AtomicU64::new(0))))
                .collect(),
            shard_kills: plan
                .shard_kills
                .iter()
                .map(|&(r, s)| (r, (s, AtomicU64::new(0))))
                .collect(),
            plan,
            worker_ctr: AtomicU64::new(0),
            submit_ctr: AtomicU64::new(0),
            kv_ctr: AtomicU64::new(0),
            engine_ctr: AtomicU64::new(0),
            fired: Default::default(),
        }
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The plan's seed (what a failing chaos run prints for replay).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.plan.seed
    }

    /// Consult the worker-job site. A retry does not claim an index:
    /// scheduled faults are transient, so the retried job runs clean
    /// and recovery stays deterministic.
    #[must_use]
    pub fn on_worker_job(&self, is_retry: bool) -> FaultAction {
        if is_retry {
            return FaultAction::None;
        }
        let i = self.worker_ctr.fetch_add(1, Ordering::Relaxed);
        if self.worker_panics.contains(&i) {
            self.fire(0, i);
            return FaultAction::Panic;
        }
        if let Some(&us) = self.worker_stalls.get(&i) {
            self.fire(1, i);
            return FaultAction::Stall(Duration::from_micros(us));
        }
        FaultAction::None
    }

    /// Consult the submit site: `Some(d)` means stall for `d` before
    /// taking the capacity gate.
    #[must_use]
    pub fn on_submit(&self) -> Option<Duration> {
        let i = self.submit_ctr.fetch_add(1, Ordering::Relaxed);
        self.submit_stalls.get(&i).map(|&us| {
            self.fire(2, i);
            Duration::from_micros(us)
        })
    }

    /// Consult the KV-allocation site: `true` means deny this
    /// allocation with `OutOfMemory`.
    #[must_use]
    pub fn on_kv_alloc(&self) -> bool {
        let i = self.kv_ctr.fetch_add(1, Ordering::Relaxed);
        let deny = self.kv_denials.contains(&i);
        if deny {
            self.fire(3, i);
        }
        deny
    }

    /// Consult the engine-call site: `true` asks the engine to panic
    /// at this call boundary (test engines honour it; real engines
    /// never consult it).
    #[must_use]
    pub fn on_engine_call(&self) -> bool {
        let i = self.engine_ctr.fetch_add(1, Ordering::Relaxed);
        let boom = self.engine_panics.contains(&i);
        if boom {
            self.fire(4, i);
        }
        boom
    }

    /// Consult the replica-step site: replica `replica` reports one
    /// scheduler-loop step; `true` means the whole replica halts now
    /// (router failover takes over). Each scheduled kill fires once —
    /// the step the counter reaches the plan's index — and keeps
    /// answering `true` afterwards (a dead replica stays dead).
    /// Replicas with no scheduled kill run free without counting.
    #[must_use]
    pub fn on_replica_step(&self, replica: u64) -> bool {
        let Some((step, ctr)) = self.replica_kills.get(&replica) else {
            return false;
        };
        let i = ctr.fetch_add(1, Ordering::Relaxed);
        if i == *step {
            self.fire(5, *step);
        }
        i >= *step
    }

    /// Consult the shard-call site: shard `shard` of a tensor-parallel
    /// GEMM reports one sharded call; `true` means this shard pool
    /// dies now (the sharded layer surfaces a typed `ShardFailed`
    /// error — never a partial output). Each scheduled kill fires once
    /// — the call the counter reaches the plan's index — and keeps
    /// answering `true` afterwards (a dead shard stays dead). Shards
    /// with no scheduled kill run free without counting.
    #[must_use]
    pub fn on_shard_call(&self, shard: u64) -> bool {
        let Some((call, ctr)) = self.shard_kills.get(&shard) else {
            return false;
        };
        let i = ctr.fetch_add(1, Ordering::Relaxed);
        if i == *call {
            self.fire(6, *call);
        }
        i >= *call
    }

    /// Snapshot of faults actually fired so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            worker_panics: self.fired[0].load(Ordering::Relaxed),
            worker_stalls: self.fired[1].load(Ordering::Relaxed),
            submit_stalls: self.fired[2].load(Ordering::Relaxed),
            kv_denials: self.fired[3].load(Ordering::Relaxed),
            engine_panics: self.fired[4].load(Ordering::Relaxed),
            replica_kills: self.fired[5].load(Ordering::Relaxed),
            shard_kills: self.fired[6].load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        for seed in 0..64 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
    }

    #[test]
    fn seeds_produce_varied_plans() {
        let distinct: HashSet<_> = (0..64)
            .map(|s| format!("{:?}", FaultPlan::from_seed(s)))
            .collect();
        assert!(
            distinct.len() > 32,
            "only {} distinct plans",
            distinct.len()
        );
        assert!(
            (0..64).any(|s| !FaultPlan::from_seed(s).is_empty()),
            "no seed scheduled any fault"
        );
    }

    #[test]
    fn worker_site_fires_at_exact_indices() {
        let inj = FaultInjector::new(
            FaultPlan::quiet()
                .worker_panics_at(&[1])
                .worker_stall_at(3, 50),
        );
        assert_eq!(inj.on_worker_job(false), FaultAction::None); // 0
        assert_eq!(inj.on_worker_job(false), FaultAction::Panic); // 1
        assert_eq!(inj.on_worker_job(false), FaultAction::None); // 2
        assert_eq!(
            inj.on_worker_job(false),
            FaultAction::Stall(Duration::from_micros(50)) // 3
        );
        let s = inj.stats();
        assert_eq!((s.worker_panics, s.worker_stalls), (1, 1));
    }

    #[test]
    fn retries_do_not_consume_schedule_slots() {
        let inj = FaultInjector::new(FaultPlan::quiet().worker_panics_at(&[1]));
        assert_eq!(inj.on_worker_job(false), FaultAction::None); // 0
        for _ in 0..10 {
            assert_eq!(inj.on_worker_job(true), FaultAction::None);
        }
        // The counter did not move: index 1 still panics.
        assert_eq!(inj.on_worker_job(false), FaultAction::Panic);
    }

    #[test]
    fn kv_and_engine_and_submit_sites_fire_once_each() {
        let inj = FaultInjector::new(
            FaultPlan::quiet()
                .kv_denials_at(&[0])
                .engine_panics_at(&[1])
                .submit_stall_at(0, 25),
        );
        assert!(inj.on_kv_alloc());
        assert!(!inj.on_kv_alloc());
        assert!(!inj.on_engine_call());
        assert!(inj.on_engine_call());
        assert_eq!(inj.on_submit(), Some(Duration::from_micros(25)));
        assert_eq!(inj.on_submit(), None);
        assert_eq!(inj.stats().total(), 3);
    }

    #[test]
    fn replica_site_kills_at_step_and_stays_dead() {
        let inj = FaultInjector::new(FaultPlan::quiet().replica_kill_at(1, 2));
        // Replica 0 has no scheduled kill: runs free.
        for _ in 0..10 {
            assert!(!inj.on_replica_step(0));
        }
        // Replica 1 survives steps 0..2, dies at 2, stays dead.
        assert!(!inj.on_replica_step(1));
        assert!(!inj.on_replica_step(1));
        assert!(inj.on_replica_step(1));
        assert!(inj.on_replica_step(1));
        // The kill fired exactly once.
        assert_eq!(inj.stats().replica_kills, 1);
        assert_eq!(inj.stats().total(), 1);
    }

    #[test]
    fn seeded_replica_plans_are_deterministic_and_bounded() {
        for seed in 0..32 {
            let p = FaultPlan::from_seed_with_replicas(seed, 3);
            assert_eq!(p, FaultPlan::from_seed_with_replicas(seed, 3));
            assert_eq!(p.replica_kills.len(), 1);
            let (r, s) = p.replica_kills[0];
            assert!(r < 3);
            assert!((1..12).contains(&s));
            // Base sites stay quiet: replica death is isolated.
            assert!(p.worker_panics.is_empty() && p.kv_denials.is_empty());
        }
        // All replicas get picked as victim across seeds.
        let victims: HashSet<u64> = (0..32)
            .map(|s| FaultPlan::from_seed_with_replicas(s, 3).replica_kills[0].0)
            .collect();
        assert_eq!(victims.len(), 3);
    }

    #[test]
    fn shard_site_kills_at_call_and_stays_dead() {
        let inj = FaultInjector::new(FaultPlan::quiet().shard_kill_at(1, 2));
        // Shard 0 has no scheduled kill: runs free.
        for _ in 0..10 {
            assert!(!inj.on_shard_call(0));
        }
        // Shard 1 survives calls 0..2, dies at 2, stays dead.
        assert!(!inj.on_shard_call(1));
        assert!(!inj.on_shard_call(1));
        assert!(inj.on_shard_call(1));
        assert!(inj.on_shard_call(1));
        // The kill fired exactly once.
        assert_eq!(inj.stats().shard_kills, 1);
        assert_eq!(inj.stats().total(), 1);
    }

    #[test]
    fn seeded_shard_plans_are_deterministic_and_bounded() {
        for seed in 0..32 {
            let p = FaultPlan::from_seed_with_shards(seed, 3);
            assert_eq!(p, FaultPlan::from_seed_with_shards(seed, 3));
            assert_eq!(p.shard_kills.len(), 1);
            let (r, s) = p.shard_kills[0];
            assert!(r < 3);
            assert!((1..8).contains(&s));
            // All other sites stay quiet: shard death is isolated.
            assert!(p.worker_panics.is_empty() && p.replica_kills.is_empty());
        }
        // All shards get picked as victim across seeds.
        let victims: HashSet<u64> = (0..32)
            .map(|s| FaultPlan::from_seed_with_shards(s, 3).shard_kills[0].0)
            .collect();
        assert_eq!(victims.len(), 3);
    }

    #[test]
    fn quiet_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::quiet());
        for _ in 0..100 {
            assert_eq!(inj.on_worker_job(false), FaultAction::None);
            assert!(!inj.on_kv_alloc());
            assert!(!inj.on_engine_call());
            assert_eq!(inj.on_submit(), None);
        }
        assert_eq!(inj.stats(), FaultStats::default());
        assert!(FaultPlan::quiet().is_empty());
    }
}
