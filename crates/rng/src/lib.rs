//! # lq-rng — tiny deterministic PRNGs for benchmarks and tests
//!
//! The sandbox this repo builds in has no crates.io access, so the
//! external `rand` / `proptest` crates are replaced by this in-tree
//! module: a [`SplitMix64`] seeder/stream generator and a
//! [`Rng`] (xoshiro256**) general-purpose generator, plus the handful
//! of range/fill helpers the benches and randomized tests need.
//!
//! These are *not* cryptographic generators. They are deterministic by
//! construction (seed in, same stream out on every platform), which is
//! exactly what reproducible benchmarks and randomized property tests
//! want.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// SplitMix64 (Steele, Lea, Flood 2014): one multiply-xorshift chain
/// per output. Used to seed [`Rng`] and as a cheap standalone stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator starting from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** (Blackman & Vigna 2018), seeded via SplitMix64.
///
/// The workhorse generator: full-period 2^256−1, passes BigCrush, four
/// words of state, a handful of shifts/rotates per output.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Generator whose state is expanded from `seed` with SplitMix64.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Next 32 uniformly distributed bits (upper word — xoshiro's lower
    /// bits are its weakest).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero. Uses Lemire's
    /// multiply-shift reduction (bias is < 2⁻⁶⁴·bound — irrelevant at
    /// test scale).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `i8` in `[lo, hi]` (inclusive — i8's full span fits).
    #[inline]
    pub fn range_i8(&mut self, lo: i8, hi: i8) -> i8 {
        assert!(lo <= hi, "empty range");
        let span = (i16::from(hi) - i16::from(lo)) as u64 + 1;
        (i16::from(lo) + self.below(span) as i16) as i8
    }

    /// Uniform `i8` over the full two's-complement range.
    #[inline]
    pub fn any_i8(&mut self) -> i8 {
        (self.next_u64() & 0xFF) as u8 as i8
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 random mantissa bits.
    #[inline]
    pub fn f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.f32()
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fill `out` with uniform i8 values in `[lo, hi]`.
    pub fn fill_i8(&mut self, out: &mut [i8], lo: i8, hi: i8) {
        for v in out {
            *v = self.range_i8(lo, hi);
        }
    }

    /// A vector of `n` uniform i8 values in `[lo, hi]`.
    #[must_use]
    pub fn vec_i8(&mut self, n: usize, lo: i8, hi: i8) -> Vec<i8> {
        (0..n).map(|_| self.range_i8(lo, hi)).collect()
    }

    /// A vector of `n` uniform f32 values in `[lo, hi)`.
    #[must_use]
    pub fn vec_f32(&mut self, n: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..n).map(|_| self.range_f32(lo, hi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_matches_reference() {
        // First three outputs for seed 0 from the reference C code.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let (mut a, mut b) = (Rng::new(42), Rng::new(42));
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        let equal = (0..100).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(equal < 3, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let u = r.range_usize(3, 17);
            assert!((3..17).contains(&u));
            let i = r.range_i8(-119, 119);
            assert!((-119..=119).contains(&i));
            let f = r.range_f32(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
            assert!((0.0..1.0).contains(&r.f64()));
        }
        // Inclusive i8 endpoints are reachable.
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            match r.range_i8(-2, 1) {
                -2 => seen_lo = true,
                1 => seen_hi = true,
                _ => {}
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::new(1);
        let mut counts = [0usize; 8];
        const N: usize = 80_000;
        for _ in 0..N {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            let expect = N / 8;
            assert!(c.abs_diff(expect) < expect / 10, "bucket count {c}");
        }
    }

    #[test]
    fn full_range_i8_hits_extremes() {
        let mut r = Rng::new(3);
        let mut min = i8::MAX;
        let mut max = i8::MIN;
        for _ in 0..20_000 {
            let v = r.any_i8();
            min = min.min(v);
            max = max.max(v);
        }
        assert_eq!((min, max), (i8::MIN, i8::MAX));
    }
}
