//! Open-loop arrival-trace generation for the serving router.
//!
//! Serving papers evaluate under *open-loop* load: requests arrive on
//! their own schedule whether or not the system keeps up (the paper's
//! Figure 11 sweeps exactly this). This module draws reproducible
//! arrival traces from an [`ArrivalPattern`] — stationary Poisson,
//! bursty on/off, or a diurnal sinusoid — by Lewis–Shedler thinning of
//! a homogeneous Poisson process at the pattern's peak rate, so every
//! pattern shares one exact sampler. All randomness comes from
//! [`lq_rng::Rng`]; the same seed always yields the same trace.
//!
//! [`TierMix`] splits the trace across [`Priority`] tiers and
//! [`TraceConfig::generate_prompts`] attaches seeded prompt tokens,
//! producing [`PromptRequest`]s ready for
//! [`crate::ServingRouter::run`].

use lq_rng::Rng;
use lq_serving::runtime::PromptRequest;
use lq_serving::{Priority, Request};

/// Arrival-rate process for an open-loop trace (requests per second of
/// virtual time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Stationary Poisson arrivals at `rate` req/s.
    Poisson {
        /// Mean arrival rate (req/s), > 0.
        rate: f64,
    },
    /// On/off bursts: `burst_rate` for the first `burst_fraction` of
    /// every `period`, `base_rate` for the rest — the "spiky" trace
    /// that exercises admission control.
    Bursty {
        /// Off-burst rate (req/s), ≥ 0.
        base_rate: f64,
        /// In-burst rate (req/s), ≥ `base_rate`.
        burst_rate: f64,
        /// Burst cycle length (seconds), > 0.
        period: f64,
        /// Fraction of each period spent bursting, in (0, 1).
        burst_fraction: f64,
    },
    /// Sinusoidal day/night swing around `mean_rate`:
    /// `rate(t) = mean_rate + swing * sin(2πt / period)`.
    Diurnal {
        /// Mean arrival rate (req/s), > 0.
        mean_rate: f64,
        /// Peak deviation from the mean (req/s), ≤ `mean_rate` so the
        /// rate never goes negative.
        swing: f64,
        /// Cycle length (seconds), > 0.
        period: f64,
    },
}

impl ArrivalPattern {
    /// Instantaneous arrival rate at time `t` (req/s).
    #[must_use]
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            ArrivalPattern::Poisson { rate } => rate,
            ArrivalPattern::Bursty {
                base_rate,
                burst_rate,
                period,
                burst_fraction,
            } => {
                let phase = (t / period).fract();
                if phase < burst_fraction {
                    burst_rate
                } else {
                    base_rate
                }
            }
            ArrivalPattern::Diurnal {
                mean_rate,
                swing,
                period,
            } => mean_rate + swing * (std::f64::consts::TAU * t / period).sin(),
        }
    }

    /// Upper bound on [`Self::rate_at`] — the thinning envelope.
    #[must_use]
    pub fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalPattern::Poisson { rate } => rate,
            ArrivalPattern::Bursty {
                base_rate,
                burst_rate,
                ..
            } => burst_rate.max(base_rate),
            ArrivalPattern::Diurnal {
                mean_rate, swing, ..
            } => mean_rate + swing,
        }
    }

    fn validate(&self) -> Result<(), TraceConfigError> {
        let ok = match *self {
            ArrivalPattern::Poisson { rate } => rate > 0.0 && rate.is_finite(),
            ArrivalPattern::Bursty {
                base_rate,
                burst_rate,
                period,
                burst_fraction,
            } => {
                base_rate >= 0.0
                    && burst_rate >= base_rate
                    && burst_rate > 0.0
                    && burst_rate.is_finite()
                    && period > 0.0
                    && period.is_finite()
                    && (0.0..1.0).contains(&burst_fraction)
                    && burst_fraction > 0.0
            }
            ArrivalPattern::Diurnal {
                mean_rate,
                swing,
                period,
            } => {
                mean_rate > 0.0
                    && mean_rate.is_finite()
                    && (0.0..=mean_rate).contains(&swing)
                    && period > 0.0
                    && period.is_finite()
            }
        };
        if ok {
            Ok(())
        } else {
            Err(TraceConfigError::BadPattern)
        }
    }
}

/// Share of the trace per [`Priority`] tier, in percent (must sum to
/// 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierMix {
    /// Percent of arrivals at [`Priority::Low`].
    pub low_pct: u8,
    /// Percent of arrivals at [`Priority::Normal`].
    pub normal_pct: u8,
    /// Percent of arrivals at [`Priority::High`].
    pub high_pct: u8,
}

impl Default for TierMix {
    /// Everything at [`Priority::Normal`] — the pre-router workload.
    fn default() -> Self {
        Self {
            low_pct: 0,
            normal_pct: 100,
            high_pct: 0,
        }
    }
}

impl TierMix {
    /// Draw a tier according to the mix.
    fn draw(&self, rng: &mut Rng) -> Priority {
        let x = rng.below(100) as u8;
        if x < self.low_pct {
            Priority::Low
        } else if x < self.low_pct + self.normal_pct {
            Priority::Normal
        } else {
            Priority::High
        }
    }
}

/// Invalid [`TraceConfig`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceConfigError {
    /// A pattern parameter is out of range (non-positive rate/period,
    /// burst fraction outside (0,1), or a diurnal swing above the
    /// mean).
    BadPattern,
    /// `duration <= 0` or non-finite.
    BadDuration,
    /// Tier percentages do not sum to 100.
    BadTierMix,
    /// A prompt/output length range is empty or starts at 0.
    BadLengthRange,
}

impl std::fmt::Display for TraceConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceConfigError::BadPattern => write!(f, "arrival-pattern parameter out of range"),
            TraceConfigError::BadDuration => write!(f, "duration must be finite and > 0"),
            TraceConfigError::BadTierMix => write!(f, "tier percentages must sum to 100"),
            TraceConfigError::BadLengthRange => {
                write!(f, "length ranges must be non-empty and start at >= 1")
            }
        }
    }
}

impl std::error::Error for TraceConfigError {}

/// A complete open-loop workload description: arrival process, tier
/// mix, and request-shape ranges. [`Self::generate`] turns it into a
/// concrete seeded trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Arrival-rate process.
    pub pattern: ArrivalPattern,
    /// Trace length (seconds of virtual time).
    pub duration: f64,
    /// Priority-tier split.
    pub mix: TierMix,
    /// Prompt lengths drawn uniformly from `[min, max]` (inclusive).
    pub prompt_len: (usize, usize),
    /// Output lengths drawn uniformly from `[min, max]` (inclusive).
    pub output_len: (usize, usize),
    /// Deadline attached to [`Priority::High`] requests (seconds after
    /// arrival); `None` leaves every tier deadline-free.
    pub high_deadline: Option<f64>,
}

impl TraceConfig {
    /// A stationary-Poisson config with uniform 8–32 token prompts and
    /// 4–16 token outputs, all [`Priority::Normal`].
    #[must_use]
    pub fn poisson(rate: f64, duration: f64) -> Self {
        Self {
            pattern: ArrivalPattern::Poisson { rate },
            duration,
            mix: TierMix::default(),
            prompt_len: (8, 32),
            output_len: (4, 16),
            high_deadline: None,
        }
    }

    fn validate(&self) -> Result<(), TraceConfigError> {
        self.pattern.validate()?;
        if !(self.duration.is_finite() && self.duration > 0.0) {
            return Err(TraceConfigError::BadDuration);
        }
        let sum = self.mix.low_pct as u32 + self.mix.normal_pct as u32 + self.mix.high_pct as u32;
        if sum != 100 {
            return Err(TraceConfigError::BadTierMix);
        }
        let (p0, p1) = self.prompt_len;
        let (o0, o1) = self.output_len;
        if p0 == 0 || p1 < p0 || o0 == 0 || o1 < o0 {
            return Err(TraceConfigError::BadLengthRange);
        }
        Ok(())
    }

    /// Draw the arrival trace for this config from `seed`
    /// (deterministic: same seed, same trace). Request ids are dense
    /// from 0 in arrival order.
    ///
    /// Arrivals come from Lewis–Shedler thinning: candidate points are
    /// a homogeneous Poisson process at [`ArrivalPattern::peak_rate`],
    /// each kept with probability `rate_at(t) / peak_rate`, which
    /// yields an exact inhomogeneous Poisson process for any bounded
    /// rate function.
    pub fn generate(&self, seed: u64) -> Result<Vec<Request>, TraceConfigError> {
        self.validate()?;
        let mut rng = Rng::new(seed ^ 0x7AFF_1C00_7AFF_1C00);
        let peak = self.pattern.peak_rate();
        let mut out = Vec::new();
        let mut t = 0.0f64;
        let mut id = 0u64;
        loop {
            // Exponential(peak) gap; 1 - f64() keeps ln away from 0.
            t += -(1.0 - rng.f64()).ln() / peak;
            if t >= self.duration {
                break;
            }
            if rng.f64() * peak > self.pattern.rate_at(t) {
                continue; // thinned out
            }
            let tier = self.mix.draw(&mut rng);
            // Ranges are inclusive; `range_usize` is half-open.
            let prompt_len = rng.range_usize(self.prompt_len.0, self.prompt_len.1 + 1);
            let output_len = rng.range_usize(self.output_len.0, self.output_len.1 + 1);
            let mut req = Request::new(id, prompt_len, output_len, t).with_priority(tier);
            if tier == Priority::High {
                if let Some(d) = self.high_deadline {
                    req = req.with_deadline(d);
                }
            }
            out.push(req);
            id += 1;
        }
        Ok(out)
    }

    /// [`Self::generate`] plus seeded prompt tokens in `[0, vocab)` —
    /// the form [`crate::ServingRouter::run`] consumes.
    pub fn generate_prompts(
        &self,
        seed: u64,
        vocab: usize,
    ) -> Result<Vec<PromptRequest>, TraceConfigError> {
        assert!(vocab >= 1, "empty vocabulary");
        let metas = self.generate(seed)?;
        let mut rng = Rng::new(seed ^ 0x9E37_79B9_7F4A_7C15);
        Ok(metas
            .into_iter()
            .map(|meta| {
                let prompt = (0..meta.prompt_len)
                    .map(|_| rng.below(vocab as u64) as usize)
                    .collect();
                PromptRequest::new(meta, prompt)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_is_seeded_and_rate_matched() {
        let cfg = TraceConfig::poisson(50.0, 20.0);
        let a = cfg.generate(42).unwrap();
        let b = cfg.generate(42).unwrap();
        assert_eq!(a, b, "same seed must replay the same trace");
        let c = cfg.generate(43).unwrap();
        assert_ne!(a, c, "different seeds must differ");
        // ~1000 expected arrivals; 5 sigma ≈ 158.
        let n = a.len() as f64;
        assert!((n - 1000.0).abs() < 160.0, "got {n} arrivals for E=1000");
        // Arrivals are sorted, in range, and densely id'd.
        for (i, w) in a.windows(2).enumerate() {
            assert!(w[0].arrival <= w[1].arrival);
            assert_eq!(a[i].id, i as u64);
        }
        assert!(a.iter().all(|r| r.arrival < 20.0));
    }

    #[test]
    fn tier_mix_splits_approximately() {
        let mut cfg = TraceConfig::poisson(100.0, 20.0);
        cfg.mix = TierMix {
            low_pct: 25,
            normal_pct: 45,
            high_pct: 30,
        };
        cfg.high_deadline = Some(5.0);
        let trace = cfg.generate(7).unwrap();
        let n = trace.len() as f64;
        let share = |p: Priority| trace.iter().filter(|r| r.priority == p).count() as f64 / n;
        assert!((share(Priority::Low) - 0.25).abs() < 0.05);
        assert!((share(Priority::Normal) - 0.45).abs() < 0.05);
        assert!((share(Priority::High) - 0.30).abs() < 0.05);
        // Only High carries the deadline.
        for r in &trace {
            assert_eq!(r.deadline.is_some(), r.priority == Priority::High);
        }
    }

    #[test]
    fn bursty_and_diurnal_rates_modulate() {
        let b = ArrivalPattern::Bursty {
            base_rate: 10.0,
            burst_rate: 100.0,
            period: 1.0,
            burst_fraction: 0.2,
        };
        assert_eq!(b.rate_at(0.1), 100.0);
        assert_eq!(b.rate_at(0.5), 10.0);
        assert_eq!(b.rate_at(1.1), 100.0); // periodic
        assert_eq!(b.peak_rate(), 100.0);
        let d = ArrivalPattern::Diurnal {
            mean_rate: 50.0,
            swing: 30.0,
            period: 4.0,
        };
        assert!((d.rate_at(1.0) - 80.0).abs() < 1e-9); // peak at quarter period
        assert!((d.rate_at(3.0) - 20.0).abs() < 1e-9); // trough
        assert_eq!(d.peak_rate(), 80.0);
        // Thinning actually concentrates bursty arrivals in-burst.
        let cfg = TraceConfig {
            pattern: b,
            duration: 50.0,
            mix: TierMix::default(),
            prompt_len: (8, 8),
            output_len: (4, 4),
            high_deadline: None,
        };
        let trace = cfg.generate(11).unwrap();
        let in_burst = trace
            .iter()
            .filter(|r| (r.arrival / 1.0).fract() < 0.2)
            .count() as f64;
        let frac = in_burst / trace.len() as f64;
        // Bursts carry 100*0.2 / (100*0.2 + 10*0.8) ≈ 71% of arrivals.
        assert!(frac > 0.6, "burst fraction {frac} too low");
    }

    #[test]
    fn generate_prompts_matches_meta() {
        let cfg = TraceConfig::poisson(20.0, 5.0);
        let reqs = cfg.generate_prompts(3, 64).unwrap();
        assert!(!reqs.is_empty());
        for pr in &reqs {
            assert_eq!(pr.prompt.len(), pr.meta.prompt_len);
            assert!(pr.prompt.iter().all(|&t| t < 64));
        }
        // Deterministic too.
        assert_eq!(reqs.len(), cfg.generate_prompts(3, 64).unwrap().len());
    }

    #[test]
    fn config_validation_rejects_bad_parameters() {
        assert_eq!(
            TraceConfig::poisson(0.0, 10.0).generate(0).err(),
            Some(TraceConfigError::BadPattern)
        );
        assert_eq!(
            TraceConfig::poisson(10.0, 0.0).generate(0).err(),
            Some(TraceConfigError::BadDuration)
        );
        let mut bad_mix = TraceConfig::poisson(10.0, 1.0);
        bad_mix.mix = TierMix {
            low_pct: 50,
            normal_pct: 50,
            high_pct: 50,
        };
        assert_eq!(
            bad_mix.generate(0).err(),
            Some(TraceConfigError::BadTierMix)
        );
        let mut bad_len = TraceConfig::poisson(10.0, 1.0);
        bad_len.prompt_len = (0, 4);
        assert_eq!(
            bad_len.generate(0).err(),
            Some(TraceConfigError::BadLengthRange)
        );
        let bad_diurnal = TraceConfig {
            pattern: ArrivalPattern::Diurnal {
                mean_rate: 10.0,
                swing: 20.0,
                period: 1.0,
            },
            ..TraceConfig::poisson(10.0, 1.0)
        };
        assert_eq!(
            bad_diurnal.generate(0).err(),
            Some(TraceConfigError::BadPattern)
        );
    }
}
