//! # lq-router — sharded multi-replica serving router
//!
//! Scales the single-replica [`lq_serving::runtime::ServingRuntime`]
//! out to N replicas, each with its own engine, KV admission table,
//! and `{replica="<n>"}`-labelled telemetry — the CPU analogue of a
//! multi-GPU serving deployment in the paper's system evaluation.
//!
//! * [`traffic`] — seeded open-loop arrival traces (Poisson / bursty /
//!   diurnal, tier mixes) for overload experiments.
//! * [`ServingRouter`] — shards a workload across replicas under a
//!   [`RoutingPolicy`] (round-robin, least-loaded, affinity) and an
//!   optional prefill/decode [`Disaggregation`] split, runs every
//!   replica on its own thread (`std::thread::scope`), and fails over:
//!   when a replica halts mid-run (an `lq-chaos` replica-kill fault),
//!   its evacuated requests — running sequences with KV fully
//!   released, queued work, future arrivals — re-route to the
//!   survivors in the next wave.
//!
//! Routing is computed *before* a wave runs, from request metadata and
//! the alive set only. Surviving replicas therefore receive exactly
//! the same wave-0 shard whether or not another replica dies, which is
//! what makes the chaos failover tests bit-exact.
//!
//! Telemetry (when [`lq_telemetry::enable`] is on):
//!
//! | metric | kind | meaning |
//! |--------|------|---------|
//! | `lq_router_routed_total{replica}` | counter | requests assigned to each replica (all waves) |
//! | `lq_router_failovers_total` | counter | whole-replica failures absorbed |
//! | `lq_router_rerouted_total` | counter | requests re-routed to survivors after a failover |
//!
//! Trace events (when `lq-trace` is recording): `RouterRoute` per
//! shard decision, `ReplicaKill` per absorbed failure, `ReqReroute`
//! on each re-queued request's own track — so a request's causal
//! timeline survives the cross-replica hop.
//!
//! The router composes with *intra-GEMM* tensor parallelism: hand the
//! engine factory an `lq_engine::tp::TensorParallelEngine` (every
//! projection split across `lq_core::shard::ShardedGemm` pools,
//! DESIGN.md §14) and requests shard across replicas while each
//! replica's GEMMs shard across pools — the two axes are independent,
//! and `tests/shard_chaos.rs` drives them together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod traffic;

pub use traffic::{ArrivalPattern, TierMix, TraceConfig, TraceConfigError};

use lq_chaos::FaultInjector;
use lq_serving::runtime::{
    DrainedRun, PromptRequest, ServingConfigError, ServingEngine, ServingRuntime,
    ServingRuntimeBuilder,
};
use lq_serving::RunStats;
use std::fmt;
use std::sync::Arc;

/// How the router picks a replica for each request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Rotate through the candidate replicas in arrival order.
    RoundRobin,
    /// Send each request to the candidate with the fewest reserved
    /// tokens (`prompt + output`) assigned so far this wave — the
    /// default, and the best at absorbing a failed replica's load.
    #[default]
    LeastLoaded,
    /// `id % candidates`: the same request id always lands on the same
    /// replica (prefix-cache-style session stickiness) as long as the
    /// alive set is unchanged.
    Affinity,
}

/// Optional prefill/decode disaggregation at the router layer: a
/// dedicated pool absorbs long-prompt (prefill-heavy) requests so
/// decode replicas keep short queues — the cluster-level counterpart
/// of the per-replica `max_prefill_tokens` budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Disaggregation {
    /// Every replica serves every request.
    #[default]
    Unified,
    /// Replicas `0..prefill_replicas` serve requests with
    /// `prompt_len >= prompt_threshold`; the rest serve short-prompt
    /// traffic. If one pool is entirely dead, its traffic falls back
    /// to any alive replica rather than being dropped.
    PrefillDecode {
        /// Size of the long-prompt pool (1..replicas).
        prefill_replicas: usize,
        /// Prompt length at which a request is prefill-heavy.
        prompt_threshold: usize,
    },
}

/// Invalid [`ServingRouter::builder`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterConfigError {
    /// `replicas == 0`.
    ZeroReplicas,
    /// `PrefillDecode` with an empty prefill or decode pool.
    BadDisaggregation,
    /// The per-replica runtime template failed validation.
    Runtime(ServingConfigError),
}

impl fmt::Display for RouterConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterConfigError::ZeroReplicas => write!(f, "replicas must be >= 1"),
            RouterConfigError::BadDisaggregation => {
                write!(f, "PrefillDecode needs 1 <= prefill_replicas < replicas")
            }
            RouterConfigError::Runtime(e) => write!(f, "replica runtime: {e}"),
        }
    }
}

impl std::error::Error for RouterConfigError {}

impl From<ServingConfigError> for RouterConfigError {
    fn from(e: ServingConfigError) -> Self {
        RouterConfigError::Runtime(e)
    }
}

/// Per-replica outcome of a [`ServingRouter::run`].
#[derive(Debug, Clone)]
pub struct ReplicaReport {
    /// Replica index.
    pub replica: usize,
    /// Requests assigned to this replica across all waves.
    pub routed: u64,
    /// Whether a replica-kill fault halted it (dead replicas take no
    /// further waves).
    pub killed: bool,
    /// This replica's completions and counters, merged across waves
    /// (`makespan` sums over its waves; each wave restarts the
    /// replica's virtual clock).
    pub stats: RunStats,
}

/// Aggregate outcome of a [`ServingRouter::run`].
#[derive(Debug, Clone)]
pub struct RouterStats {
    /// One report per replica.
    pub replicas: Vec<ReplicaReport>,
    /// Whole-replica failures absorbed.
    pub failovers: u64,
    /// Requests re-routed to survivors after a failover.
    pub rerouted: u64,
    /// Scheduling waves executed (1 = no failover).
    pub waves: u32,
    /// Requests left unserved because every replica died. Empty
    /// whenever at least one replica survives.
    pub unserved: Vec<PromptRequest>,
}

impl RouterStats {
    /// Cluster-level view: all completions concatenated, token and
    /// step counters summed, makespan and peak batch taken as the max
    /// over replicas (replicas run concurrently).
    #[must_use]
    pub fn merged(&self) -> RunStats {
        let mut out = RunStats::empty();
        for r in &self.replicas {
            out.completions.extend(r.stats.completions.iter().copied());
            out.generated_tokens += r.stats.generated_tokens;
            out.makespan = out.makespan.max(r.stats.makespan);
            out.peak_batch = out.peak_batch.max(r.stats.peak_batch);
            out.decode_steps += r.stats.decode_steps;
            out.preemptions += r.stats.preemptions;
            out.preempted_tokens += r.stats.preempted_tokens;
        }
        out
    }
}

fn merge_into(into: &mut RunStats, from: RunStats) {
    into.completions.extend(from.completions);
    into.generated_tokens += from.generated_tokens;
    into.makespan += from.makespan;
    into.peak_batch = into.peak_batch.max(from.peak_batch);
    into.decode_steps += from.decode_steps;
    into.preemptions += from.preemptions;
    into.preempted_tokens += from.preempted_tokens;
}

/// Shards a workload across N [`ServingRuntime`] replicas with
/// failover. Construct via [`ServingRouter::builder`].
pub struct ServingRouter {
    replicas: usize,
    policy: RoutingPolicy,
    disagg: Disaggregation,
    template: ServingRuntimeBuilder,
    injector: Option<Arc<FaultInjector>>,
}

impl ServingRouter {
    /// Start building a validated router.
    #[must_use]
    pub fn builder() -> ServingRouterBuilder {
        ServingRouterBuilder::default()
    }

    /// Number of replicas.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Shard assignment for `requests` with every replica alive, as
    /// `(request id, replica)` in arrival order — exactly the wave-0
    /// assignment [`Self::run`] would use.
    #[must_use]
    pub fn route_preview(&self, requests: &[PromptRequest]) -> Vec<(u64, usize)> {
        let mut sorted: Vec<&PromptRequest> = requests.iter().collect();
        sorted.sort_by(|a, b| a.meta.arrival.total_cmp(&b.meta.arrival));
        let alive = vec![true; self.replicas];
        let assignment = self.assign(&sorted, &alive);
        sorted
            .iter()
            .zip(assignment)
            .map(|(pr, r)| (pr.meta.id, r))
            .collect()
    }

    /// Pick a replica for each request (already sorted by arrival)
    /// from request metadata and the alive set only — no timing
    /// dependence, so survivors' shards are identical with and
    /// without a concurrent replica kill.
    fn assign(&self, reqs: &[&PromptRequest], alive: &[bool]) -> Vec<usize> {
        let n = self.replicas;
        let all: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
        assert!(!all.is_empty(), "assign requires an alive replica");
        let mut load = vec![0u64; n];
        let mut rr = 0usize;
        reqs.iter()
            .map(|pr| {
                let pool: Vec<usize> = match self.disagg {
                    Disaggregation::Unified => all.clone(),
                    Disaggregation::PrefillDecode {
                        prefill_replicas,
                        prompt_threshold,
                    } => {
                        let range = if pr.meta.prompt_len >= prompt_threshold {
                            0..prefill_replicas
                        } else {
                            prefill_replicas..n
                        };
                        let pool: Vec<usize> = range.filter(|&i| alive[i]).collect();
                        if pool.is_empty() {
                            all.clone() // whole pool dead: any survivor
                        } else {
                            pool
                        }
                    }
                };
                let r = match self.policy {
                    RoutingPolicy::RoundRobin => {
                        let r = pool[rr % pool.len()];
                        rr += 1;
                        r
                    }
                    RoutingPolicy::LeastLoaded => *pool
                        .iter()
                        .min_by_key(|&&i| (load[i], i))
                        .expect("pool is non-empty"),
                    RoutingPolicy::Affinity => pool[pr.meta.id as usize % pool.len()],
                };
                load[r] += (pr.meta.prompt_len + pr.meta.output_len) as u64;
                r
            })
            .collect()
    }

    /// Serve `requests` across the replicas. `make_engine(i)` builds
    /// replica `i`'s engine (each replica owns one engine and one
    /// runtime for the whole run, across failover waves).
    ///
    /// Each wave shards the outstanding requests over the alive
    /// replicas and runs them concurrently (one OS thread per replica
    /// via `std::thread::scope`). A replica halted by its
    /// `on_replica_step` chaos site is marked dead — dead stays dead —
    /// and everything it evacuated (running sequences with KV fully
    /// released, queued work, future arrivals) re-routes to the
    /// survivors in the next wave, keeping each request's original
    /// arrival time and trace track. Requests are lost only if every
    /// replica dies ([`RouterStats::unserved`]).
    pub fn run<E: ServingEngine + Send>(
        &self,
        mut make_engine: impl FnMut(usize) -> E,
        requests: Vec<PromptRequest>,
    ) -> RouterStats {
        let n = self.replicas;
        let mut engines: Vec<E> = (0..n).map(&mut make_engine).collect();
        let mut runtimes: Vec<ServingRuntime> = (0..n)
            .map(|i| {
                self.template
                    .clone()
                    .replica(i as u32)
                    .build()
                    .expect("template validated at router build")
            })
            .collect();
        let mut alive = vec![true; n];
        let mut reports: Vec<ReplicaReport> = (0..n)
            .map(|i| ReplicaReport {
                replica: i,
                routed: 0,
                killed: false,
                stats: RunStats::empty(),
            })
            .collect();
        let mut failovers = 0u64;
        let mut rerouted = 0u64;
        let mut waves = 0u32;
        let mut unserved: Vec<PromptRequest> = Vec::new();
        let mut carry = requests;

        // Each wave either drains its shards or shrinks the alive set
        // (a dead replica stays dead), so the loop terminates after at
        // most `n` failovers; the cap is a backstop for a misbehaving
        // engine that halts without a kill.
        while !carry.is_empty() {
            if !alive.iter().any(|&a| a) || waves > n as u32 {
                unserved = carry;
                break;
            }
            carry.sort_by(|a, b| a.meta.arrival.total_cmp(&b.meta.arrival));
            let assignment = {
                let sorted: Vec<&PromptRequest> = carry.iter().collect();
                self.assign(&sorted, &alive)
            };
            if waves > 0 {
                rerouted += carry.len() as u64;
            }
            let mut shards: Vec<Vec<PromptRequest>> = (0..n).map(|_| Vec::new()).collect();
            for (pr, r) in carry.drain(..).zip(assignment) {
                reports[r].routed += 1;
                if lq_trace::enabled() {
                    lq_trace::record_virtual(
                        lq_trace::EventKind::RouterRoute,
                        lq_trace::Track::Control,
                        (pr.meta.arrival * 1e9) as u64,
                        r as u64,
                        pr.meta.id,
                    );
                }
                shards[r].push(pr);
            }
            waves += 1;

            // One thread per alive, non-idle replica; scoped so the
            // engines and runtimes stay borrowed, not moved.
            let injector = &self.injector;
            let results: Vec<Option<DrainedRun>> = std::thread::scope(|s| {
                let handles: Vec<_> = engines
                    .iter_mut()
                    .zip(runtimes.iter_mut())
                    .zip(shards)
                    .enumerate()
                    .map(|(i, ((engine, rt), shard))| {
                        if shard.is_empty() || !alive[i] {
                            return None;
                        }
                        let inj = injector.clone();
                        Some(s.spawn(move || {
                            let mut halt = move |_steps: u64| {
                                inj.as_ref().is_some_and(|j| j.on_replica_step(i as u64))
                            };
                            rt.run_with_halt(engine, shard, &mut halt)
                        }))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.map(|h| h.join().expect("replica thread panicked")))
                    .collect()
            });

            for (i, res) in results.into_iter().enumerate() {
                let Some(run) = res else { continue };
                merge_into(&mut reports[i].stats, run.stats);
                if run.halted {
                    alive[i] = false;
                    reports[i].killed = true;
                    failovers += 1;
                    if lq_trace::enabled() {
                        lq_trace::record_virtual(
                            lq_trace::EventKind::ReplicaKill,
                            lq_trace::Track::Control,
                            0,
                            i as u64,
                            run.evacuated.len() as u64,
                        );
                        for pr in &run.evacuated {
                            lq_trace::record_virtual(
                                lq_trace::EventKind::ReqReroute,
                                lq_trace::Track::Request(pr.meta.id),
                                (pr.meta.arrival * 1e9) as u64,
                                i as u64,
                                0,
                            );
                        }
                    }
                    carry.extend(run.evacuated);
                }
            }
        }

        if lq_telemetry::enabled() {
            let reg = lq_telemetry::registry();
            for r in &reports {
                let id = r.replica.to_string();
                reg.counter_with("lq_router_routed_total", &[("replica", id.as_str())])
                    .add(r.routed);
            }
            reg.counter("lq_router_failovers_total").add(failovers);
            reg.counter("lq_router_rerouted_total").add(rerouted);
        }

        RouterStats {
            replicas: reports,
            failovers,
            rerouted,
            waves,
            unserved,
        }
    }
}

/// Validating builder for [`ServingRouter`]. Per-replica runtime knobs
/// pass through a [`ServingRuntimeBuilder`] template (cloned per
/// replica with its own `replica` label); router-level knobs pick the
/// shard policy, disaggregation split, and chaos injector.
#[derive(Clone)]
pub struct ServingRouterBuilder {
    replicas: usize,
    policy: RoutingPolicy,
    disagg: Disaggregation,
    template: ServingRuntimeBuilder,
    injector: Option<Arc<FaultInjector>>,
}

impl Default for ServingRouterBuilder {
    fn default() -> Self {
        Self {
            replicas: 2,
            policy: RoutingPolicy::default(),
            disagg: Disaggregation::default(),
            template: ServingRuntimeBuilder::default(),
            injector: None,
        }
    }
}

impl ServingRouterBuilder {
    /// Number of replicas (validated ≥ 1; default 2).
    #[must_use]
    pub fn replicas(mut self, n: usize) -> Self {
        self.replicas = n;
        self
    }

    /// Shard-selection policy (default [`RoutingPolicy::LeastLoaded`]).
    #[must_use]
    pub fn policy(mut self, p: RoutingPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Prefill/decode split (default [`Disaggregation::Unified`]).
    #[must_use]
    pub fn disaggregation(mut self, d: Disaggregation) -> Self {
        self.disagg = d;
        self
    }

    /// Replace the whole per-replica runtime template.
    #[must_use]
    pub fn runtime(mut self, template: ServingRuntimeBuilder) -> Self {
        self.template = template;
        self
    }

    /// Wire a [`FaultInjector`] into the cluster: its `replica_kills`
    /// sites halt whole replicas (router failover) and its KV-denial
    /// sites reach every replica's admission table.
    #[must_use]
    pub fn fault_injector(mut self, inj: Arc<FaultInjector>) -> Self {
        self.template = self.template.fault_injector(Arc::clone(&inj));
        self.injector = Some(inj);
        self
    }

    /// Validate and build the router. The runtime template is
    /// test-built once here so every later per-replica build is
    /// infallible.
    pub fn build(self) -> Result<ServingRouter, RouterConfigError> {
        if self.replicas == 0 {
            return Err(RouterConfigError::ZeroReplicas);
        }
        if let Disaggregation::PrefillDecode {
            prefill_replicas, ..
        } = self.disagg
        {
            if prefill_replicas == 0 || prefill_replicas >= self.replicas {
                return Err(RouterConfigError::BadDisaggregation);
            }
        }
        self.template.clone().build()?;
        Ok(ServingRouter {
            replicas: self.replicas,
            policy: self.policy,
            disagg: self.disagg,
            template: self.template,
            injector: self.injector,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lq_chaos::FaultPlan;
    use lq_serving::kvcache::SeqId;
    use lq_serving::{Request, SchedulerConfigError};
    use std::collections::HashMap;

    /// Per-sequence deterministic engine: the next token depends only
    /// on `(id, previous token)`, so a sequence's history is identical
    /// whatever replica or batch it runs in.
    struct PerSeqEngine {
        live: HashMap<SeqId, usize>,
    }

    impl PerSeqEngine {
        fn new(_replica: usize) -> Self {
            Self {
                live: HashMap::new(),
            }
        }

        fn step(id: SeqId, prev: usize) -> usize {
            (id as usize * 131 + prev * 31 + 7) % 97
        }
    }

    impl ServingEngine for PerSeqEngine {
        fn prefill(&mut self, id: SeqId, prompt: &[usize]) -> usize {
            let tok = Self::step(id, prompt.iter().sum::<usize>() % 97);
            assert!(self.live.insert(id, tok).is_none(), "{id} already live");
            tok
        }

        fn decode_batch(&mut self, slots: &[(SeqId, usize)]) -> Vec<usize> {
            slots
                .iter()
                .map(|&(id, prev)| {
                    assert!(self.live.contains_key(&id), "decode of dead {id}");
                    let tok = Self::step(id, prev);
                    self.live.insert(id, tok);
                    tok
                })
                .collect()
        }

        fn release(&mut self, id: SeqId) {
            assert!(self.live.remove(&id).is_some(), "double release of {id}");
        }
    }

    fn preqs(n: usize) -> Vec<PromptRequest> {
        (0..n as u64)
            .map(|id| PromptRequest::new(Request::new(id, 8, 4, 0.0), (0..8).collect()))
            .collect()
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            ServingRouter::builder().replicas(0).build().err(),
            Some(RouterConfigError::ZeroReplicas)
        );
        assert_eq!(
            ServingRouter::builder()
                .replicas(2)
                .disaggregation(Disaggregation::PrefillDecode {
                    prefill_replicas: 2,
                    prompt_threshold: 64,
                })
                .build()
                .err(),
            Some(RouterConfigError::BadDisaggregation)
        );
        // Template validation flows through.
        assert_eq!(
            ServingRouter::builder()
                .runtime(ServingRuntime::builder().max_batch(0))
                .build()
                .err(),
            Some(RouterConfigError::Runtime(ServingConfigError::Scheduler(
                SchedulerConfigError::ZeroMaxBatch
            )))
        );
        assert!(ServingRouter::builder().replicas(3).build().is_ok());
    }

    #[test]
    fn round_robin_alternates() {
        let router = ServingRouter::builder()
            .replicas(2)
            .policy(RoutingPolicy::RoundRobin)
            .build()
            .unwrap();
        let plan = router.route_preview(&preqs(8));
        let to0 = plan.iter().filter(|&&(_, r)| r == 0).count();
        assert_eq!(to0, 4, "round-robin must split 8 requests 4/4");
        for w in plan.windows(2) {
            assert_ne!(w[0].1, w[1].1, "consecutive requests alternate");
        }
    }

    #[test]
    fn least_loaded_absorbs_token_imbalance() {
        let router = ServingRouter::builder().replicas(2).build().unwrap();
        // One huge request then four small ones: the big one pins a
        // replica, the small ones pile onto the other until it
        // catches up in reserved tokens.
        let mut reqs = vec![PromptRequest::new(
            Request::new(0, 64, 64, 0.0),
            (0..64).collect(),
        )];
        reqs.extend((1..5u64).map(|id| {
            PromptRequest::new(Request::new(id, 8, 8, id as f64 * 1e-6), (0..8).collect())
        }));
        let plan = router.route_preview(&reqs);
        assert_eq!(plan[0], (0, 0), "first request to the first replica");
        // 128 tokens on replica 0 vs 16 each: all four land on 1.
        for &(id, r) in &plan[1..] {
            assert_eq!(r, 1, "request {id} should avoid the loaded replica");
        }
    }

    #[test]
    fn affinity_is_sticky() {
        let router = ServingRouter::builder()
            .replicas(3)
            .policy(RoutingPolicy::Affinity)
            .build()
            .unwrap();
        let plan = router.route_preview(&preqs(9));
        for &(id, r) in &plan {
            assert_eq!(r, id as usize % 3, "affinity is id mod alive-count");
        }
    }

    #[test]
    fn disaggregation_pools_long_prompts() {
        let router = ServingRouter::builder()
            .replicas(3)
            .policy(RoutingPolicy::RoundRobin)
            .disaggregation(Disaggregation::PrefillDecode {
                prefill_replicas: 1,
                prompt_threshold: 32,
            })
            .build()
            .unwrap();
        let mut reqs = Vec::new();
        for id in 0..4u64 {
            reqs.push(PromptRequest::new(
                Request::new(id, 64, 4, 0.0),
                (0..64).collect(),
            ));
            reqs.push(PromptRequest::new(
                Request::new(100 + id, 8, 4, 0.0),
                (0..8).collect(),
            ));
        }
        for (id, r) in router.route_preview(&reqs) {
            if id < 100 {
                assert_eq!(r, 0, "long prompt {id} belongs to the prefill pool");
            } else {
                assert!(r >= 1, "short prompt {id} belongs to the decode pool");
            }
        }
    }

    #[test]
    fn all_requests_complete_across_replicas() {
        let router = ServingRouter::builder().replicas(3).build().unwrap();
        let out = router.run(PerSeqEngine::new, preqs(12));
        assert_eq!(out.waves, 1);
        assert_eq!(out.failovers, 0);
        assert!(out.unserved.is_empty());
        let merged = out.merged();
        assert_eq!(merged.finished(), 12);
        let routed: u64 = out.replicas.iter().map(|r| r.routed).sum();
        assert_eq!(routed, 12);
        // Least-loaded over identical requests spreads evenly.
        for r in &out.replicas {
            assert_eq!(r.routed, 4);
            assert!(!r.killed);
        }
    }

    #[test]
    fn replica_kill_fails_over_and_everything_completes() {
        let inj = Arc::new(FaultInjector::new(FaultPlan::quiet().replica_kill_at(0, 2)));
        let router = ServingRouter::builder()
            .replicas(2)
            .fault_injector(Arc::clone(&inj))
            .build()
            .unwrap();
        // Long outputs so replica 0 is mid-decode at its kill step.
        let reqs: Vec<PromptRequest> = (0..6u64)
            .map(|id| PromptRequest::new(Request::new(id, 8, 16, 0.0), (0..8).collect()))
            .collect();
        let out = router.run(PerSeqEngine::new, reqs);
        assert_eq!(out.failovers, 1);
        assert!(out.replicas[0].killed);
        assert!(!out.replicas[1].killed);
        assert!(out.rerouted > 0, "victims must re-route");
        assert!(out.waves >= 2);
        assert!(out.unserved.is_empty());
        assert_eq!(inj.stats().replica_kills, 1);
        // Every request completes exactly once, on some replica.
        let merged = out.merged();
        assert_eq!(merged.finished(), 6);
        let mut ids: Vec<u64> = merged.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..6).collect::<Vec<_>>());
        // Evacuated work was accounted as discarded, not generated.
        assert!(merged.preempted_tokens > 0);
        assert_eq!(
            merged.generated_tokens,
            merged.completions.iter().map(|c| c.generated).sum::<u64>()
        );
    }

    #[test]
    fn all_replicas_dead_reports_unserved() {
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::quiet()
                .replica_kill_at(0, 0)
                .replica_kill_at(1, 0),
        ));
        let router = ServingRouter::builder()
            .replicas(2)
            .fault_injector(inj)
            .build()
            .unwrap();
        let out = router.run(PerSeqEngine::new, preqs(4));
        assert_eq!(out.failovers, 2);
        assert_eq!(out.unserved.len(), 4, "no survivor: requests are unserved");
        assert_eq!(out.merged().completions.len(), 0);
    }
}
