//! `LQ_FORCE_SCALAR` end-to-end: with the override set, the process-wide
//! microkernel resolution must pick the scalar family even on a host
//! with SIMD, and every pool pipeline must still be bit-exact.
//!
//! This lives in its own integration-test binary because the override
//! is read exactly once (`MicrokernelSet::global` memoises in a
//! `OnceLock`): the variable must be set before anything in the process
//! touches the global set, which a shared test binary cannot guarantee.

use lq_core::reference::max_abs_diff;
use lq_core::{KernelKind, LiquidGemm, MicrokernelSet, SimdVariant};
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;

#[test]
fn force_scalar_overrides_detection_through_the_pool() {
    // Set before first use of MicrokernelSet::global() anywhere in this
    // process — this file's only test, so no ordering hazard.
    std::env::set_var("LQ_FORCE_SCALAR", "1");
    assert_eq!(
        MicrokernelSet::global().variant(),
        SimdVariant::Scalar,
        "LQ_FORCE_SCALAR=1 must force the scalar family"
    );

    let (m, n, k) = (5, 23, 192);
    let xf = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.013).sin() * 1.4);
    let wf = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.007).cos());
    let qa = QuantizedActivations::quantize(&xf, None);

    let lg = LiquidGemm::builder().workers(2).build().unwrap();
    assert_eq!(lg.pool().microkernels().variant(), SimdVariant::Scalar);
    let w = lg.pack_weights(&wf, 64);
    let want = lg.gemm(&qa.q, &qa.scales, &w, KernelKind::Serial).y;
    for kind in [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp] {
        let got = lg.gemm(&qa.q, &qa.scales, &w, kind).y;
        assert_eq!(max_abs_diff(&got, &want), 0.0, "{kind:?}");
    }

    // The explicit builder override still beats the env var: forcing a
    // detected SIMD variant works, and its results match scalar.
    if let Some(mk) = MicrokernelSet::for_variant(SimdVariant::Avx2) {
        let lg2 = LiquidGemm::builder()
            .workers(2)
            .force_microkernel(mk.variant())
            .build()
            .unwrap();
        assert_eq!(lg2.pool().microkernels().variant(), SimdVariant::Avx2);
        let got = lg2.gemm(&qa.q, &qa.scales, &w, KernelKind::ImFp).y;
        assert_eq!(max_abs_diff(&got, &want), 0.0, "forced avx2 vs scalar");
    }
}
