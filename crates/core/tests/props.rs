//! Randomized property tests for the GEMM kernels: every optimized
//! variant must be bit-identical to the naive integer reference on
//! arbitrary shapes and data (seeded in-tree PRNG; offline sandbox has
//! no proptest).

use lq_core::api::W4A8Weights;
use lq_core::packed::{PackedLqqLinear, PackedQoqLinear, W8A8Linear};
use lq_core::pipeline::ParallelConfig;
use lq_core::reference::{epilogue_ref, gemm_i8_ref, max_abs_diff};
use lq_core::serial::{w4a8_lqq_serial, w4a8_qoq_serial, w8a8_serial};
use lq_core::tiled::w4a8_lqq_tiled;
use lq_core::{KernelKind, LiquidGemm};
use lq_layout::tiles::TileConfig;
use lq_quant::level1::PROTECTIVE_MAX;
use lq_quant::lqq::LqqTensor;
use lq_quant::mat::Mat;
use lq_quant::qoq::QoqTensor;
use lq_rng::Rng;

const CASES: usize = 48;

/// Random problem: M×K i8 activations (full range), N×K i8 level-1
/// weights (protective range), per-token scales. Group size 32.
fn problem(rng: &mut Rng) -> (Mat<i8>, Vec<f32>, Mat<i8>) {
    let m = rng.range_usize(1, 6);
    let n = rng.range_usize(1, 12);
    let k = rng.range_usize(1, 4) * 32;
    let xv: Vec<i8> = (0..m * k).map(|_| rng.any_i8()).collect();
    let scales = rng.vec_f32(m, 0.001, 1.0);
    let wv = rng.vec_i8(n * k, -PROTECTIVE_MAX, PROTECTIVE_MAX);
    (Mat::from_vec(m, k, xv), scales, Mat::from_vec(n, k, wv))
}

fn oracle(x: &Mat<i8>, scales: &[f32], w_i8: &Mat<i8>, ch: &[f32]) -> Mat<f32> {
    epilogue_ref(&gemm_i8_ref(x, w_i8), scales, ch)
}

/// LQQ serial kernel == dequantize-then-integer-GEMM oracle, bitwise.
#[test]
fn lqq_serial_equals_oracle() {
    let mut rng = Rng::new(0xC0DE_0001);
    for case in 0..CASES {
        let (x, scales, w_l1) = problem(&mut rng);
        let t = LqqTensor::quantize(&w_l1, 32);
        let ch: Vec<f32> = (0..w_l1.rows()).map(|r| 0.01 + r as f32 * 0.001).collect();
        let packed = PackedLqqLinear::from_tensor(&t, ch.clone());
        let got = w4a8_lqq_serial(&x, &scales, &packed);
        let want = oracle(&x, &scales, &t.dequantize(), &ch);
        assert_eq!(max_abs_diff(&got, &want), 0.0, "case {case}");
    }
}

/// QoQ serial kernel == its oracle, bitwise.
#[test]
fn qoq_serial_equals_oracle() {
    let mut rng = Rng::new(0xC0DE_0002);
    for case in 0..CASES {
        let (x, scales, w_l1) = problem(&mut rng);
        let t = QoqTensor::quantize(&w_l1, 32);
        let ch: Vec<f32> = (0..w_l1.rows()).map(|r| 0.02 + r as f32 * 0.002).collect();
        let packed = PackedQoqLinear::from_tensor(&t, ch.clone());
        let got = w4a8_qoq_serial(&x, &scales, &packed);
        let want = oracle(&x, &scales, &t.dequantize(), &ch);
        assert_eq!(max_abs_diff(&got, &want), 0.0, "case {case}");
    }
}

/// W8A8 kernel == its oracle, bitwise.
#[test]
fn w8a8_equals_oracle() {
    let mut rng = Rng::new(0xC0DE_0003);
    for case in 0..CASES {
        let (x, scales, w_l1) = problem(&mut rng);
        let ch: Vec<f32> = (0..w_l1.rows()).map(|_| 0.5).collect();
        let w = W8A8Linear {
            q: w_l1.clone(),
            channel_scales: ch.clone(),
        };
        let got = w8a8_serial(&x, &scales, &w);
        let want = oracle(&x, &scales, &w_l1, &ch);
        assert_eq!(max_abs_diff(&got, &want), 0.0, "case {case}");
    }
}

/// Every pipeline variant equals the serial kernel on arbitrary shapes
/// and task/stage configurations, across pools of different sizes.
#[test]
fn pipelines_equal_serial() {
    let mut rng = Rng::new(0xC0DE_0004);
    // Worker count is a pool property now, not a per-call knob: build
    // one small and one wide persistent pool and alternate.
    let pools = [
        LiquidGemm::builder().workers(1).build().unwrap(),
        LiquidGemm::builder().workers(4).build().unwrap(),
    ];
    for case in 0..CASES {
        let (x, scales, w_l1) = problem(&mut rng);
        let lg = &pools[rng.range_usize(0, 2)];
        let cfg = ParallelConfig::builder()
            .task_rows(rng.range_usize(1, 9))
            .stages(rng.range_usize(2, 5))
            .build()
            .expect("randomized config in valid range");
        let t = LqqTensor::quantize(&w_l1, 32);
        let ch: Vec<f32> = (0..w_l1.rows()).map(|_| 0.1).collect();
        let packed = W4A8Weights::lqq(PackedLqqLinear::from_tensor(&t, ch));
        let base = lg
            .gemm_with(&x, &scales, &packed, KernelKind::Serial, cfg)
            .y;
        for kind in [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp] {
            let y = lg.gemm_with(&x, &scales, &packed, kind, cfg).y;
            assert_eq!(max_abs_diff(&y, &base), 0.0, "case {case} {kind:?} {cfg:?}");
        }
    }
}

/// The tiled kernel equals the serial kernel for arbitrary tile shapes
/// whose Kt is a multiple of the group size.
#[test]
fn tiled_equals_serial() {
    let mut rng = Rng::new(0xC0DE_0005);
    for case in 0..CASES {
        let (x, scales, w_l1) = problem(&mut rng);
        let tile = TileConfig {
            mt: rng.range_usize(1, 8),
            nt: rng.range_usize(1, 8),
            kt: rng.range_usize(1, 4) * 32,
        };
        let t = LqqTensor::quantize(&w_l1, 32);
        let ch: Vec<f32> = (0..w_l1.rows()).map(|_| 0.3).collect();
        let packed = PackedLqqLinear::from_tensor(&t, ch);
        let want = w4a8_lqq_serial(&x, &scales, &packed);
        let got = w4a8_lqq_tiled(&x, &scales, &packed, tile);
        assert_eq!(max_abs_diff(&got, &want), 0.0, "case {case} {tile:?}");
    }
}
