//! Property-based tests for the GEMM kernels: every optimized variant
//! must be bit-identical to the naive integer reference on arbitrary
//! shapes and data.

use lq_core::api::W4A8Weights;
use lq_core::packed::{PackedLqqLinear, PackedQoqLinear, W8A8Linear};
use lq_core::pipeline::ParallelConfig;
use lq_core::reference::{epilogue_ref, gemm_i8_ref, max_abs_diff};
use lq_core::serial::{w4a8_lqq_serial, w4a8_qoq_serial, w8a8_serial};
use lq_core::tiled::w4a8_lqq_tiled;
use lq_core::{gemm, KernelKind};
use lq_layout::tiles::TileConfig;
use lq_quant::level1::PROTECTIVE_MAX;
use lq_quant::lqq::LqqTensor;
use lq_quant::mat::Mat;
use lq_quant::qoq::QoqTensor;
use proptest::prelude::*;

/// Random problem: M×K i8 activations (full range), N×K i8 level-1
/// weights (protective range), per-token scales.
fn problem() -> impl Strategy<Value = (Mat<i8>, Vec<f32>, Mat<i8>)> {
    (1usize..6, 1usize..12, 1usize..4).prop_flat_map(|(m, n, kg)| {
        let k = kg * 32; // group size 32
        (
            prop::collection::vec(any::<i8>(), m * k),
            prop::collection::vec(0.001f32..1.0, m),
            prop::collection::vec(-PROTECTIVE_MAX..=PROTECTIVE_MAX, n * k),
            Just((m, n, k)),
        )
            .prop_map(|(xv, scales, wv, (m, n, k))| {
                (
                    Mat::from_vec(m, k, xv),
                    scales,
                    Mat::from_vec(n, k, wv),
                )
            })
    })
}

fn oracle(x: &Mat<i8>, scales: &[f32], w_i8: &Mat<i8>, ch: &[f32]) -> Mat<f32> {
    epilogue_ref(&gemm_i8_ref(x, w_i8), scales, ch)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LQQ serial kernel == dequantize-then-integer-GEMM oracle, bitwise.
    #[test]
    fn lqq_serial_equals_oracle((x, scales, w_l1) in problem()) {
        let t = LqqTensor::quantize(&w_l1, 32);
        let ch: Vec<f32> = (0..w_l1.rows()).map(|r| 0.01 + r as f32 * 0.001).collect();
        let packed = PackedLqqLinear::from_tensor(&t, ch.clone());
        let got = w4a8_lqq_serial(&x, &scales, &packed);
        let want = oracle(&x, &scales, &t.dequantize(), &ch);
        prop_assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    /// QoQ serial kernel == its oracle, bitwise.
    #[test]
    fn qoq_serial_equals_oracle((x, scales, w_l1) in problem()) {
        let t = QoqTensor::quantize(&w_l1, 32);
        let ch: Vec<f32> = (0..w_l1.rows()).map(|r| 0.02 + r as f32 * 0.002).collect();
        let packed = PackedQoqLinear::from_tensor(&t, ch.clone());
        let got = w4a8_qoq_serial(&x, &scales, &packed);
        let want = oracle(&x, &scales, &t.dequantize(), &ch);
        prop_assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    /// W8A8 kernel == its oracle, bitwise.
    #[test]
    fn w8a8_equals_oracle((x, scales, w_l1) in problem()) {
        let ch: Vec<f32> = (0..w_l1.rows()).map(|_| 0.5).collect();
        let w = W8A8Linear { q: w_l1.clone(), channel_scales: ch.clone() };
        let got = w8a8_serial(&x, &scales, &w);
        let want = oracle(&x, &scales, &w_l1, &ch);
        prop_assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    /// Every pipeline variant equals the serial kernel on arbitrary
    /// shapes and worker/task/stage configurations.
    #[test]
    fn pipelines_equal_serial(
        (x, scales, w_l1) in problem(),
        workers in 1usize..5,
        task_rows in 1usize..9,
        stages in 1usize..5,
    ) {
        let t = LqqTensor::quantize(&w_l1, 32);
        let ch: Vec<f32> = (0..w_l1.rows()).map(|_| 0.1).collect();
        let packed = W4A8Weights::Lqq(PackedLqqLinear::from_tensor(&t, ch));
        let cfg = ParallelConfig { workers, task_rows, stages };
        let base = gemm(&x, &scales, &packed, KernelKind::Serial, cfg).y;
        for kind in [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp] {
            let y = gemm(&x, &scales, &packed, kind, cfg).y;
            prop_assert_eq!(max_abs_diff(&y, &base), 0.0, "{:?}", kind);
        }
    }

    /// The tiled kernel equals the serial kernel for arbitrary tile
    /// shapes whose Kt is a multiple of the group size.
    #[test]
    fn tiled_equals_serial(
        (x, scales, w_l1) in problem(),
        mt in 1usize..8,
        nt in 1usize..8,
        ktg in 1usize..4,
    ) {
        let t = LqqTensor::quantize(&w_l1, 32);
        let ch: Vec<f32> = (0..w_l1.rows()).map(|_| 0.3).collect();
        let packed = PackedLqqLinear::from_tensor(&t, ch);
        let want = w4a8_lqq_serial(&x, &scales, &packed);
        let tile = TileConfig { mt, nt, kt: ktg * 32 };
        let got = w4a8_lqq_tiled(&x, &scales, &packed, tile);
        prop_assert_eq!(max_abs_diff(&got, &want), 0.0);
    }
}
