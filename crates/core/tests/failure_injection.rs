//! Failure-injection tests for the pool-backed pipelines: panicking
//! workers must not deadlock, poison, or silently corrupt results.

use lq_core::api::W4A8Weights;
use lq_core::packed::PackedLqqLinear;
use lq_core::pipeline::ParallelConfig;
use lq_core::reference::max_abs_diff;
use lq_core::scheduler::TaskScheduler;
use lq_core::PlacementPolicy;
use lq_core::{KernelKind, LiquidGemm};
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn fixture(m: usize, n: usize, k: usize) -> (Mat<i8>, Vec<f32>, PackedLqqLinear) {
    let xf = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.023).sin());
    let wf = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.011).cos());
    let qa = QuantizedActivations::quantize(&xf, None);
    (qa.q, qa.scales, PackedLqqLinear::quantize(&wf, 64))
}

/// Degenerate configurations must still complete and agree. The
/// literals below are intentional: some sit *below* the builder's
/// minimums (`stages: 1` serialises the ring) to prove the drivers
/// clamp rather than hang; `task_rows > N` makes one giant task.
#[test]
fn degenerate_configs_terminate_and_agree() {
    let (x, s, w) = fixture(3, 10, 128);
    let weights = W4A8Weights::lqq(w);
    let lg = LiquidGemm::builder().workers(4).build().unwrap();
    let base = lg.gemm(&x, &s, &weights, KernelKind::Serial).y;
    for cfg in [
        ParallelConfig {
            workers: 1,
            task_rows: 1,
            stages: 1,
            placement: PlacementPolicy::Unpinned,
        },
        ParallelConfig {
            workers: 8,
            task_rows: 100,
            stages: 1,
            placement: PlacementPolicy::Unpinned,
        },
        ParallelConfig {
            workers: 2,
            task_rows: 1,
            stages: 16,
            placement: PlacementPolicy::Unpinned,
        },
        ParallelConfig {
            workers: 16,
            task_rows: 3,
            stages: 2,
            placement: PlacementPolicy::Unpinned,
        },
    ] {
        for kind in [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp] {
            let y = lg.gemm_with(&x, &s, &weights, kind, cfg).y;
            assert_eq!(max_abs_diff(&y, &base), 0.0, "{kind:?} {cfg:?}");
        }
    }
}

/// A panic inside a pool job must surface as a panic of the *calling*
/// thread (never a deadlock or a wrong answer), and the pool must keep
/// serving afterwards — the persistent-kernel containment property.
#[test]
fn worker_panic_propagates_not_deadlocks() {
    let lg = LiquidGemm::builder().workers(2).build().unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        lg.inject_worker_panic();
    }));
    // inject_worker_panic itself contains the panic and returns; the
    // strong claim is that the pool still works and drops cleanly.
    assert!(result.is_ok(), "containment must not poison the caller");
    let (x, s, w) = fixture(2, 8, 64);
    let weights = W4A8Weights::lqq(w);
    let base = lg.gemm(&x, &s, &weights, KernelKind::Serial).y;
    let y = lg.gemm(&x, &s, &weights, KernelKind::ImFp).y;
    assert_eq!(max_abs_diff(&y, &base), 0.0);
}

/// Raw channel-level variant of the same property: once a consumer
/// dies, its `Receiver` drop disconnects the channel so a producer's
/// `send` fails instead of blocking forever.
#[test]
fn channel_disconnect_prevents_send_deadlock() {
    let result = std::panic::catch_unwind(|| {
        std::thread::scope(|sc| {
            let (tx, rx) = lq_core::sync::bounded::<usize>(2);
            sc.spawn(move || {
                for i in 0..10 {
                    if tx.send(i).is_err() {
                        // Consumer died; stop producing.
                        return;
                    }
                }
            });
            sc.spawn(move || {
                for v in rx.iter() {
                    assert!(v < 5, "injected failure at {v}");
                }
            });
        });
    });
    assert!(result.is_err(), "the injected panic must surface");
}

/// The dynamic task scheduler under a worker that dies mid-stream:
/// remaining tasks are still claimed exactly once by the survivors.
#[test]
fn scheduler_survives_dying_worker() {
    let total = 1000;
    let sched = Arc::new(TaskScheduler::new(total));
    let done = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for worker in 0..4 {
        let sched = Arc::clone(&sched);
        let done = Arc::clone(&done);
        handles.push(std::thread::spawn(move || {
            let mut claimed = 0;
            while let Some(_id) = sched.claim() {
                done.fetch_add(1, Ordering::Relaxed);
                claimed += 1;
                // Worker 0 "dies" after 10 tasks.
                if worker == 0 && claimed == 10 {
                    return;
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("no panics here");
    }
    assert_eq!(
        done.load(Ordering::Relaxed),
        total,
        "all tasks processed despite early exit"
    );
}

/// Zero-size edge: N smaller than one task and M = 1 must work through
/// every pipeline.
#[test]
fn minimum_size_problem() {
    let (x, s, w) = fixture(1, 1, 64);
    let weights = W4A8Weights::lqq(w);
    let lg = LiquidGemm::builder()
        .workers(4)
        .task_rows(8)
        .stages(4)
        .build()
        .unwrap();
    let base = lg.gemm(&x, &s, &weights, KernelKind::Serial).y;
    assert_eq!((base.rows(), base.cols()), (1, 1));
    for kind in [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp] {
        let y = lg.gemm(&x, &s, &weights, kind).y;
        assert_eq!(max_abs_diff(&y, &base), 0.0);
    }
}

/// Concurrent use of one weight object from many GEMMs on one shared
/// pool (shared immutable weights, the serving pattern) stays correct.
#[test]
fn shared_weights_across_concurrent_gemms() {
    let (x, s, w) = fixture(4, 24, 128);
    let weights = Arc::new(W4A8Weights::lqq(w));
    let lg = Arc::new(
        LiquidGemm::builder()
            .workers(2)
            .task_rows(5)
            .stages(2)
            .build()
            .unwrap(),
    );
    let base = lg.gemm(&x, &s, &weights, KernelKind::Serial).y;
    let x = Arc::new(x);
    let s = Arc::new(s);
    let mut handles = Vec::new();
    for _ in 0..4 {
        let (x, s, weights, base, lg) = (
            Arc::clone(&x),
            Arc::clone(&s),
            Arc::clone(&weights),
            base.clone(),
            Arc::clone(&lg),
        );
        handles.push(std::thread::spawn(move || {
            let y = lg.gemm(&x, &s, &weights, KernelKind::ImFp).y;
            assert_eq!(max_abs_diff(&y, &base), 0.0);
        }));
    }
    for h in handles {
        h.join().expect("concurrent gemm panicked");
    }
}
