//! Randomized property tests for the register-tiled microkernel: the
//! panel-packed `accumulate_strip` + `scatter_channel` path must be
//! bit-identical to the naive triple-loop reference on arbitrary ragged
//! shapes and data (seeded in-tree PRNG; offline sandbox has no
//! proptest).
//!
//! Raw i8 weights are fed straight to the microkernel — no quantizer in
//! the loop — so a mismatch here pins the bug to the tiling itself, not
//! to dequantization (which `props.rs` covers end-to-end).

use lq_core::microkernel::{accumulate_strip, scatter_channel, APanels, NR};
use lq_core::reference::{epilogue_ref, gemm_i8_ref, max_abs_diff};
use lq_core::serial::w4a8_serial_with;
use lq_core::{MicrokernelSet, SimdVariant};
use lq_quant::act::QuantizedActivations;
use lq_quant::backend::registry;
use lq_quant::mat::Mat;
use lq_rng::Rng;

const CASES: usize = 64;

/// Full GEMM + epilogue through the microkernel path, driving K in the
/// chunks listed by `kcuts` (exclusive prefix ends; `k` is implicit as
/// the final cut) so callers can exercise arbitrary `k0`/`kc` splits —
/// the pattern the group-at-a-time dequant loop in `serial.rs` feeds.
fn microkernel_gemm(
    x: &Mat<i8>,
    act: &[f32],
    w: &Mat<i8>,
    ch: &[f32],
    kcuts: &[usize],
) -> Mat<f32> {
    let (m, k, n) = (x.rows(), x.cols(), w.rows());
    let a = APanels::pack(x);
    let mut out = Mat::zeros(m, n);
    let mut col = vec![0.0f32; m];
    let mut wchunk = vec![0i8; NR * k];
    for jb in (0..n).step_by(NR) {
        let nr = NR.min(n - jb);
        let mut acc = vec![0i32; a.acc_len()];
        let mut k0 = 0;
        for &cut in kcuts.iter().chain(std::iter::once(&k)) {
            if cut <= k0 {
                continue;
            }
            let kc = cut - k0;
            // Strip rows beyond `nr` stay zero: computed, never read.
            wchunk[..NR * kc].fill(0);
            for r in 0..nr {
                wchunk[r * kc..(r + 1) * kc].copy_from_slice(&w.row(jb + r)[k0..cut]);
            }
            accumulate_strip(&a, k0, kc, &wchunk[..NR * kc], &mut acc);
            k0 = cut;
        }
        for r in 0..nr {
            scatter_channel(&a, &acc, r, act, ch[jb + r], &mut col);
            for (i, &v) in col.iter().enumerate() {
                out.set(i, jb + r, v);
            }
        }
    }
    out
}

fn oracle(x: &Mat<i8>, act: &[f32], w: &Mat<i8>, ch: &[f32]) -> Mat<f32> {
    epilogue_ref(&gemm_i8_ref(x, w), act, ch)
}

/// Ragged M/N/K with full-range i8 operands and random K split points:
/// every panel/tail/edge combination must match the reference bitwise.
#[test]
fn microkernel_equals_reference_ragged_shapes() {
    let mut rng = Rng::new(0xB1A5_0001);
    for case in 0..CASES {
        // M crosses the MR boundary (panels + tail), N crosses NR, and
        // K is rarely a multiple of the vector widths LLVM picks, so
        // the reduction tails are exercised constantly.
        let m = rng.range_usize(1, 13);
        let n = rng.range_usize(1, 11);
        let k = rng.range_usize(1, 53);
        let x = Mat::from_vec(m, k, rng.vec_i8(m * k, -128, 127));
        let w = Mat::from_vec(n, k, rng.vec_i8(n * k, -128, 127));
        let act = rng.vec_f32(m, 0.001, 1.0);
        let ch = rng.vec_f32(n, 0.001, 0.5);
        // 0–2 random K cuts, unsorted duplicates tolerated by the
        // driver (it skips empty chunks).
        let mut kcuts = vec![rng.range_usize(0, k), rng.range_usize(0, k)];
        kcuts.sort_unstable();
        let got = microkernel_gemm(&x, &act, &w, &ch, &kcuts);
        let want = oracle(&x, &act, &w, &ch);
        assert_eq!(
            max_abs_diff(&got, &want),
            0.0,
            "case {case}: m={m} n={n} k={k} kcuts={kcuts:?}"
        );
    }
}

/// Decode shape M=1 (pure tail, no panels) across small ragged K.
#[test]
fn microkernel_equals_reference_decode_m1() {
    let mut rng = Rng::new(0xB1A5_0002);
    for case in 0..CASES {
        let k = rng.range_usize(1, 80);
        let n = rng.range_usize(1, 9);
        let x = Mat::from_vec(1, k, rng.vec_i8(k, -128, 127));
        let w = Mat::from_vec(n, k, rng.vec_i8(n * k, -128, 127));
        let act = rng.vec_f32(1, 0.001, 1.0);
        let ch = rng.vec_f32(n, 0.001, 0.5);
        let got = microkernel_gemm(&x, &act, &w, &ch, &[]);
        let want = oracle(&x, &act, &w, &ch);
        assert_eq!(max_abs_diff(&got, &want), 0.0, "case {case}: n={n} k={k}");
    }
}

/// Every operand at i8::MIN — the magnitude-maximal products — on a K
/// deliberately off any power-of-two grid, with M covering panel+tail.
#[test]
fn microkernel_survives_all_extreme_inputs() {
    let k = 16 * 16 + 7;
    for m in [1usize, 4, 5, 9] {
        let n = 6;
        let x = Mat::from_vec(m, k, vec![i8::MIN; m * k]);
        let w = Mat::from_vec(n, k, vec![i8::MIN; n * k]);
        let act = vec![0.25f32; m];
        let ch = vec![0.5f32; n];
        let got = microkernel_gemm(&x, &act, &w, &ch, &[k / 3]);
        let want = oracle(&x, &act, &w, &ch);
        assert_eq!(max_abs_diff(&got, &want), 0.0, "m={m}");
    }
}

/// Every microkernel family this CPU supports (the ISA-dispatch layer
/// over the scalar path above). `for_variant` returns `None` for
/// undetected ISAs, so the loop adapts to the host without skipping the
/// scalar baseline anywhere.
fn detected_sets() -> Vec<MicrokernelSet> {
    [SimdVariant::Scalar, SimdVariant::Avx2, SimdVariant::Vnni]
        .into_iter()
        .filter_map(MicrokernelSet::for_variant)
        .collect()
}

/// [`microkernel_gemm`], but through the [`MicrokernelSet`] dispatch
/// layer: strip width, accumulator layout, and kernels all come from
/// the variant under test.
fn mk_gemm(
    mk: MicrokernelSet,
    x: &Mat<i8>,
    act: &[f32],
    w: &Mat<i8>,
    ch: &[f32],
    kcuts: &[usize],
) -> Mat<f32> {
    let (m, k, n) = (x.rows(), x.cols(), w.rows());
    let a = APanels::pack(x);
    let strip = mk.strip_width();
    let mut out = Mat::zeros(m, n);
    let mut col = vec![0.0f32; m];
    let mut wchunk = vec![0i8; strip * k];
    for jb in (0..n).step_by(strip) {
        let nr = strip.min(n - jb);
        let mut acc = vec![0i32; mk.acc_len(&a)];
        let mut k0 = 0;
        for &cut in kcuts.iter().chain(std::iter::once(&k)) {
            if cut <= k0 {
                continue;
            }
            let kc = cut - k0;
            wchunk[..strip * kc].fill(0);
            for r in 0..nr {
                wchunk[r * kc..(r + 1) * kc].copy_from_slice(&w.row(jb + r)[k0..cut]);
            }
            mk.accumulate(&a, k0, kc, &wchunk[..strip * kc], &mut acc);
            k0 = cut;
        }
        for r in 0..nr {
            mk.scatter(&a, &acc, r, act, ch[jb + r], &mut col);
            for (i, &v) in col.iter().enumerate() {
                out.set(i, jb + r, v);
            }
        }
    }
    out
}

/// Every detected ISA variant, ragged M/N/K with random K cuts: all
/// must be bitwise-identical to the naive reference (and so to each
/// other). M spans every adaptive shape (1×16, 4×16, 6×16 + tails).
#[test]
fn every_detected_variant_equals_reference_ragged_shapes() {
    for mk in detected_sets() {
        let mut rng = Rng::new(0xB1A5_0003);
        for case in 0..CASES {
            let m = rng.range_usize(1, 14);
            let n = rng.range_usize(1, 35);
            let k = rng.range_usize(1, 180);
            let x = Mat::from_vec(m, k, rng.vec_i8(m * k, -128, 127));
            let w = Mat::from_vec(n, k, rng.vec_i8(n * k, -128, 127));
            let act = rng.vec_f32(m, 0.001, 1.0);
            let ch = rng.vec_f32(n, 0.001, 0.5);
            let mut kcuts = vec![rng.range_usize(0, k), rng.range_usize(0, k)];
            kcuts.sort_unstable();
            let got = mk_gemm(mk, &x, &act, &w, &ch, &kcuts);
            let want = oracle(&x, &act, &w, &ch);
            assert_eq!(
                max_abs_diff(&got, &want),
                0.0,
                "{} case {case}: m={m} n={n} k={k} kcuts={kcuts:?}",
                mk.variant().label()
            );
        }
    }
}

/// Every detected variant on all-i8::MIN operands — the inputs that
/// overflow any i16-pair (maddubs-style) accumulation scheme. The VNNI
/// bias trick and the AVX2 sign-extension path must both survive.
#[test]
fn every_detected_variant_survives_extreme_inputs() {
    let k = 16 * 64 + 7;
    for mk in detected_sets() {
        for m in [1usize, 4, 5, 6, 7, 13] {
            let n = 19;
            let x = Mat::from_vec(m, k, vec![i8::MIN; m * k]);
            let w = Mat::from_vec(n, k, vec![i8::MIN; n * k]);
            let act = vec![0.25f32; m];
            let ch = vec![0.5f32; n];
            let got = mk_gemm(mk, &x, &act, &w, &ch, &[k / 3, k / 2]);
            let want = oracle(&x, &act, &w, &ch);
            assert_eq!(
                max_abs_diff(&got, &want),
                0.0,
                "{} m={m}",
                mk.variant().label()
            );
        }
    }
}

/// End-to-end differential over the real dequant path: the serial
/// driver under every detected variant, against the scalar variant,
/// for every registered W4A8 backend (LQQ, QoQ, LUT, codebook).
#[test]
fn every_variant_matches_scalar_through_serial_for_all_backends() {
    let (m, n, k) = (5, 23, 256);
    let xf = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.013).sin() * 1.4);
    let wf = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.007).cos());
    let qa = QuantizedActivations::quantize(&xf, None);
    let scalar = MicrokernelSet::scalar();
    for backend in registry() {
        let packed = backend.pack(&wf, 64);
        let want = w4a8_serial_with(scalar, &qa.q, &qa.scales, packed.as_ref());
        for mk in detected_sets() {
            let got = w4a8_serial_with(mk, &qa.q, &qa.scales, packed.as_ref());
            assert_eq!(
                max_abs_diff(&got, &want),
                0.0,
                "backend {} variant {}",
                backend.id(),
                mk.variant().label()
            );
        }
    }
}
