//! Multi-threaded stress tests for the persistent worker-pool runtime:
//! one shared `LiquidGemm` handle, several caller threads, mixed
//! Lqq/Qoq schemes, mixed shapes, every pool-backed variant — all
//! results bit-exact against the serial kernels; plus lifecycle tests
//! proving workers join on drop and survive panics in jobs.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use lq_core::api::W4A8Weights;
use lq_core::reference::max_abs_diff;
use lq_core::serial::{w4a8_lqq_serial, w4a8_qoq_serial};
use lq_core::{KernelKind, LiquidGemm, PackedLqqLinear, PackedQoqLinear};
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;
use lq_rng::Rng;

/// One precomputed problem: quantized activations, both weight schemes,
/// and the serial oracles for each.
struct Case {
    x: Mat<i8>,
    scales: Vec<f32>,
    lqq: W4A8Weights,
    qoq: W4A8Weights,
    want_lqq: Mat<f32>,
    want_qoq: Mat<f32>,
}

fn build_cases() -> Vec<Case> {
    // Decode shapes (M=1..4) through small prefill shapes, N not always
    // divisible by task_rows, K across one to three groups.
    let shapes = [
        (1, 16, 64),
        (2, 23, 128),
        (4, 40, 192),
        (3, 7, 64),
        (8, 31, 128),
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(m, n, k))| {
            let xf = Mat::from_fn(m, k, |r, c| ((r * k + c + i) as f32 * 0.017).sin() * 1.7);
            let wf = Mat::from_fn(n, k, |r, c| ((r * k + c + 3 * i) as f32 * 0.009).cos());
            let qa = QuantizedActivations::quantize(&xf, None);
            let lqq = PackedLqqLinear::quantize(&wf, 64);
            let qoq = PackedQoqLinear::quantize(&wf, 64);
            let want_lqq = w4a8_lqq_serial(&qa.q, &qa.scales, &lqq);
            let want_qoq = w4a8_qoq_serial(&qa.q, &qa.scales, &qoq);
            Case {
                x: qa.q,
                scales: qa.scales,
                lqq: W4A8Weights::lqq(lqq),
                qoq: W4A8Weights::qoq(qoq),
                want_lqq,
                want_qoq,
            }
        })
        .collect()
}

const PARALLEL_KINDS: [KernelKind; 3] =
    [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp];

/// The acceptance property: several caller threads hammer one shared
/// handle with mixed schemes, shapes, and variants concurrently; every
/// single result is bit-exact (`max_abs_diff == 0.0`) vs serial.
#[test]
fn concurrent_mixed_gemms_bit_exact() {
    const CALLERS: usize = 4;
    const ITERS: usize = 30;
    let cases = Arc::new(build_cases());
    let lg = Arc::new(
        LiquidGemm::builder()
            .workers(4)
            .task_rows(5)
            .stages(3)
            .build()
            .unwrap(),
    );
    let mut handles = Vec::new();
    for caller in 0..CALLERS {
        let cases = Arc::clone(&cases);
        let lg = Arc::clone(&lg);
        handles.push(std::thread::spawn(move || {
            let mut rng = Rng::new(0xBEEF + caller as u64);
            for iter in 0..ITERS {
                let case = &cases[rng.range_usize(0, cases.len())];
                let kind = PARALLEL_KINDS[rng.range_usize(0, PARALLEL_KINDS.len())];
                let (weights, want) = if rng.range_usize(0, 2) == 0 {
                    (&case.lqq, &case.want_lqq)
                } else {
                    (&case.qoq, &case.want_qoq)
                };
                let y = lg.gemm(&case.x, &case.scales, weights, kind).y;
                assert_eq!(
                    max_abs_diff(&y, want),
                    0.0,
                    "caller {caller} iter {iter} {kind:?} diverged from serial"
                );
            }
        }));
    }
    for h in handles {
        h.join().expect("stress caller panicked");
    }
}

/// Dropping the handle joins every worker thread — no leak. The probe
/// outlives the pool and must read zero afterwards.
#[test]
fn drop_joins_workers_no_leak() {
    let lg = LiquidGemm::builder().workers(3).build().unwrap();
    let probe = lg.pool().live_probe();
    let cases = build_cases();
    let c = &cases[0];
    let _ = lg.gemm(&c.x, &c.scales, &c.lqq, KernelKind::ImFp);
    drop(lg);
    assert_eq!(
        probe.load(Ordering::SeqCst),
        0,
        "all workers must have exited and been joined"
    );
}

/// A panic inside a job must not deadlock drop: the worker contains it,
/// keeps serving, and still consumes its poison pill.
#[test]
fn panic_in_job_then_clean_drop() {
    let lg = LiquidGemm::builder().workers(2).build().unwrap();
    let probe = lg.pool().live_probe();
    lg.inject_worker_panic();
    lg.inject_worker_panic();
    // Still functional after two contained panics.
    let cases = build_cases();
    let c = &cases[1];
    let y = lg.gemm(&c.x, &c.scales, &c.qoq, KernelKind::ExCp).y;
    assert_eq!(max_abs_diff(&y, &c.want_qoq), 0.0);
    drop(lg);
    assert_eq!(probe.load(Ordering::SeqCst), 0, "no deadlock on drop");
}
