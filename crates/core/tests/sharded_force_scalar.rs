//! `LQ_FORCE_SCALAR` under tensor-parallel sharding: with the
//! process-wide scalar override set, every shard pool must resolve the
//! scalar microkernel family and both collectives must stay bit-exact
//! against the unsharded scalar kernel.
//!
//! Own integration-test binary for the same reason as
//! `force_scalar.rs`: the override is read once
//! (`MicrokernelSet::global` memoises in a `OnceLock`), so the
//! variable must be set before anything in the process touches the
//! global set.

use lq_core::reference::max_abs_diff;
use lq_core::shard::ShardedGemm;
use lq_core::{KernelKind, LiquidGemm, MicrokernelSet, SimdVariant};
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;

#[test]
fn forced_scalar_sharding_is_bit_exact() {
    // Set before the first MicrokernelSet::global() in this process —
    // this file's only test, so no ordering hazard.
    std::env::set_var("LQ_FORCE_SCALAR", "1");
    assert_eq!(MicrokernelSet::global().variant(), SimdVariant::Scalar);

    let (m, n, k) = (5, 37, 192);
    let xf = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.013).sin() * 1.4);
    let wf = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.007).cos());
    let qa = QuantizedActivations::quantize(&xf, None);

    let lg = LiquidGemm::builder().workers(1).build().unwrap();
    let want = lg
        .gemm(
            &qa.q,
            &qa.scales,
            &lg.pack_weights(&wf, 64),
            KernelKind::Serial,
        )
        .y;
    for shards in [2usize, 3] {
        let tp = ShardedGemm::builder()
            .shards(shards)
            .workers_per_shard(1)
            .build()
            .unwrap();
        for s in 0..shards {
            assert_eq!(
                tp.shard_pool(s).pool().microkernels().variant(),
                SimdVariant::Scalar,
                "shard {s} must inherit the scalar override"
            );
        }
        let sw = tp.pack_weights(&wf, 64);
        let col = tp.gemm(&qa.q, &qa.scales, &sw, KernelKind::ImFp).unwrap().y;
        assert_eq!(max_abs_diff(&col, &want), 0.0, "column shards={shards}");
        let row = tp.gemm_row(&qa.q, &qa.scales, &sw).unwrap().y;
        assert_eq!(max_abs_diff(&row, &want), 0.0, "row shards={shards}");
    }
}
