//! Differential property suite for tensor-parallel sharding
//! (DESIGN.md §14): column-parallel and row-parallel sharded GEMMs
//! must be **bit-identical** (`max_abs_diff == 0`) to the unsharded
//! kernel on ragged shapes, for every registered backend, every
//! microkernel variant detected on this host, and shard counts 1–4.
//!
//! Raggedness is the point: N not divisible by the shard count
//! (uneven column windows), M = 1 (the decode hot path), and K cuts
//! that leave shards with unequal group counts — plus more shards than
//! quant groups, which must yield exact-zero empty partials.

use lq_core::reference::max_abs_diff;
use lq_core::shard::ShardedGemm;
use lq_core::{BackendId, KernelKind, LiquidGemm, SimdVariant, W4A8Weights};
use lq_quant::mat::Mat;
use lq_rng::Rng;

/// Random ragged problem. Every third case pins M = 1 (decode); K is
/// always a multiple of the group size; N is drawn odd-heavy so it is
/// usually not divisible by 2, 3, or 4.
fn problem(rng: &mut Rng, case: usize) -> (Mat<i8>, Vec<f32>, Mat<f32>, usize) {
    let m = if case.is_multiple_of(3) {
        1
    } else {
        rng.range_usize(2, 7)
    };
    let group = if rng.below(2) == 0 { 32 } else { 64 };
    let k = rng.range_usize(1, 6) * group;
    let n = 2 * rng.range_usize(1, 20) + 1; // odd: ragged under 2 and 4
    let x = Mat::from_vec(m, k, (0..m * k).map(|_| rng.any_i8()).collect());
    let scales = rng.vec_f32(m, 0.001, 1.0);
    let w = Mat::from_fn(n, k, |r, c| {
        (((r * k + c) as f32 + case as f32) * 0.017).sin()
    });
    (x, scales, w, group)
}

fn sweep_variant(variant: SimdVariant) {
    let mut rng = Rng::new(0x5AA2_D001 ^ variant as u64);
    for backend in BackendId::all() {
        // Unsharded reference: same backend, same forced variant.
        let reference = LiquidGemm::builder()
            .workers(1)
            .backend(backend)
            .force_microkernel(variant)
            .build()
            .unwrap();
        for shards in [1usize, 2, 3, 4] {
            let tp = ShardedGemm::builder()
                .shards(shards)
                .workers_per_shard(1)
                .backend(backend)
                .force_microkernel(variant)
                .build()
                .unwrap();
            for case in 0..4 {
                let (x, scales, wf, group) = problem(&mut rng, case);
                let w1 = W4A8Weights::quantize(&wf, group, backend);
                let want = reference.gemm(&x, &scales, &w1, KernelKind::Serial).y;
                let sw = tp.pack_weights(&wf, group);
                let col = tp.gemm(&x, &scales, &sw, KernelKind::ImFp).unwrap().y;
                assert_eq!(
                    max_abs_diff(&col, &want),
                    0.0,
                    "column {backend:?}/{variant:?} shards={shards} case={case} \
                     m={} n={} k={}",
                    x.rows(),
                    wf.rows(),
                    x.cols(),
                );
                let row = tp.gemm_row(&x, &scales, &sw).unwrap().y;
                assert_eq!(
                    max_abs_diff(&row, &want),
                    0.0,
                    "row {backend:?}/{variant:?} shards={shards} case={case} \
                     m={} n={} k={}",
                    x.rows(),
                    wf.rows(),
                    x.cols(),
                );
            }
        }
    }
}

/// The full differential matrix: backends × detected variants × shard
/// counts × ragged shapes, column and row parallel, bitwise.
#[test]
fn sharded_matches_unsharded_across_backends_variants_and_shard_counts() {
    for variant in SimdVariant::detected() {
        sweep_variant(variant);
    }
}

/// More shards than K quant groups: the surplus shards own empty
/// slices and the row-parallel all-reduce must still be exact.
#[test]
fn row_parallel_with_empty_shards_is_exact() {
    let mut rng = Rng::new(0x5AA2_D002);
    for backend in BackendId::all() {
        let reference = LiquidGemm::builder()
            .workers(1)
            .backend(backend)
            .build()
            .unwrap();
        // K = 64, group 64 → a single quant group across 4 shards.
        let m = 3;
        let (k, group) = (64, 64);
        let x = Mat::from_vec(m, k, (0..m * k).map(|_| rng.any_i8()).collect());
        let scales = rng.vec_f32(m, 0.01, 1.0);
        let wf = Mat::from_fn(11, k, |r, c| ((r * k + c) as f32 * 0.03).cos());
        let want = reference
            .gemm(
                &x,
                &scales,
                &W4A8Weights::quantize(&wf, group, backend),
                KernelKind::Serial,
            )
            .y;
        let tp = ShardedGemm::builder()
            .shards(4)
            .workers_per_shard(1)
            .backend(backend)
            .build()
            .unwrap();
        let sw = tp.pack_weights(&wf, group);
        let got = tp.gemm_row(&x, &scales, &sw).unwrap().y;
        assert_eq!(max_abs_diff(&got, &want), 0.0, "{backend:?}");
    }
}

/// Shard-count-1 sharding is the identity: same pack, same plan, same
/// bits through both collectives, for every pipeline kind.
#[test]
fn single_shard_is_identity_for_every_kind() {
    let mut rng = Rng::new(0x5AA2_D003);
    let m = 4;
    let (k, group) = (128, 32);
    let x = Mat::from_vec(m, k, (0..m * k).map(|_| rng.any_i8()).collect());
    let scales = rng.vec_f32(m, 0.01, 1.0);
    let wf = Mat::from_fn(23, k, |r, c| ((r * k + c) as f32 * 0.019).sin());
    let lg = LiquidGemm::builder().workers(2).build().unwrap();
    let want = lg
        .gemm(
            &x,
            &scales,
            &lg.pack_weights(&wf, group),
            KernelKind::Serial,
        )
        .y;
    let tp = ShardedGemm::builder()
        .shards(1)
        .workers_per_shard(2)
        .build()
        .unwrap();
    let sw = tp.pack_weights(&wf, group);
    for kind in [
        KernelKind::Serial,
        KernelKind::FlatParallel,
        KernelKind::ExCp,
        KernelKind::ImFp,
    ] {
        let got = tp.gemm(&x, &scales, &sw, kind).unwrap().y;
        assert_eq!(max_abs_diff(&got, &want), 0.0, "{kind:?}");
    }
    let got = tp.gemm_row(&x, &scales, &sw).unwrap().y;
    assert_eq!(max_abs_diff(&got, &want), 0.0, "row");
}
