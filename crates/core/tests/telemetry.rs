//! Telemetry integration tests for the pool-backed pipelines: counters
//! are monotone, tasks are accounted exactly, and enabling telemetry
//! leaves results bit-identical.

use lq_core::api::W4A8Weights;
use lq_core::pipeline::ParallelConfig;
use lq_core::reference::max_abs_diff;
use lq_core::serial::w4a8_lqq_serial;
use lq_core::{KernelKind, LiquidGemm, PackedLqqLinear};
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;
use lq_rng::Rng;

/// All tests record into the same process-global registry; serialize
/// them so exact-delta assertions aren't perturbed by the other tests'
/// pipeline runs.
static EXCLUSIVE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn fixture(rng: &mut Rng, m: usize, n: usize, k: usize) -> (Mat<i8>, Vec<f32>, PackedLqqLinear) {
    let xf = Mat::from_fn(m, k, |_, _| rng.range_f32(-2.0, 2.0));
    let wf = Mat::from_fn(n, k, |_, _| rng.range_f32(-1.0, 1.0));
    let qa = QuantizedActivations::quantize(&xf, None);
    (qa.q, qa.scales, PackedLqqLinear::quantize(&wf, 64))
}

/// Property: across repeated ImFP runs with randomized shapes, every
/// pipeline stall counter is monotone non-decreasing and the tasks
/// counter advances by exactly ⌈N / task_rows⌉ per run.
#[test]
fn imfp_stall_counters_monotone_across_runs() {
    let _guard = EXCLUSIVE.lock().unwrap();
    lq_telemetry::enable();
    let reg = lq_telemetry::registry();
    let stall_names: Vec<(&str, [(&str, &str); 3])> = ["load", "compute"]
        .iter()
        .map(|r| {
            (
                "lq_pipeline_stall_total",
                [("variant", "imfp"), ("backend", "lqq"), ("role", *r)],
            )
        })
        .collect();
    let tasks = reg.counter_with(
        "lq_pipeline_tasks_total",
        &[("variant", "imfp"), ("backend", "lqq")],
    );

    let lg = LiquidGemm::builder().workers(3).build().unwrap();
    let mut rng = Rng::new(0x5ECD);
    let mut prev_stalls: Vec<u64> = stall_names
        .iter()
        .map(|(n, l)| reg.counter_with(n, l).get())
        .collect();
    for round in 0..8 {
        let m = rng.range_usize(1, 6);
        let n = rng.range_usize(4, 40);
        let k = 64 * rng.range_usize(1, 4);
        let (x, s, w) = fixture(&mut rng, m, n, k);
        let task_rows = rng.range_usize(1, 9);
        let cfg = ParallelConfig::builder()
            .task_rows(task_rows)
            .stages(2)
            .build()
            .unwrap();

        let tasks_before = tasks.get();
        let want = w4a8_lqq_serial(&x, &s, &w);
        let weights = W4A8Weights::lqq(w);
        let got = lg.gemm_with(&x, &s, &weights, KernelKind::ImFp, cfg).y;
        assert_eq!(max_abs_diff(&got, &want), 0.0, "round {round}");

        let expected_tasks = n.div_ceil(task_rows) as u64;
        assert_eq!(
            tasks.get() - tasks_before,
            expected_tasks,
            "round {round}: tasks counter must advance by the task count"
        );
        for (i, (name, labels)) in stall_names.iter().enumerate() {
            let now = reg.counter_with(name, labels).get();
            assert!(
                now >= prev_stalls[i],
                "round {round}: {name}{labels:?} went backwards ({} -> {now})",
                prev_stalls[i]
            );
            prev_stalls[i] = now;
        }
    }
}

/// Telemetry on vs off must not change numeric results, and the GEMM
/// call histogram must record one sample per instrumented call.
#[test]
fn gemm_call_histogram_counts_calls() {
    let _guard = EXCLUSIVE.lock().unwrap();
    lq_telemetry::enable();
    let mut rng = Rng::new(7);
    let (x, s, w) = fixture(&mut rng, 3, 12, 128);
    let weights = W4A8Weights::lqq(w);
    let lg = LiquidGemm::builder()
        .workers(2)
        .task_rows(4)
        .stages(2)
        .build()
        .unwrap();
    let hist = lq_telemetry::registry()
        .histogram_with("lq_gemm_ns", &[("variant", "imfp"), ("backend", "lqq")]);
    let before = hist.count();
    let a = lg.gemm(&x, &s, &weights, KernelKind::ImFp).y;
    let b = lg.gemm(&x, &s, &weights, KernelKind::ImFp).y;
    assert!(hist.count() >= before + 2, "each call records a span");
    assert_eq!(max_abs_diff(&a, &b), 0.0, "runs are deterministic");
}

/// The pool's own families appear once telemetry is on: per-worker job
/// counters advance and the queue-depth gauge exists.
#[test]
fn pool_metrics_are_exported() {
    let _guard = EXCLUSIVE.lock().unwrap();
    lq_telemetry::enable();
    let reg = lq_telemetry::registry();
    let mut rng = Rng::new(11);
    let (x, s, w) = fixture(&mut rng, 2, 16, 64);
    let weights = W4A8Weights::lqq(w);
    // Fresh single-worker pool: all jobs land on worker 0.
    let lg = LiquidGemm::builder()
        .workers(1)
        .task_rows(4)
        .build()
        .unwrap();
    let jobs = reg.counter_with("lq_pool_jobs_total", &[("worker", "0")]);
    let before = jobs.get();
    let _ = lg.gemm(&x, &s, &weights, KernelKind::ImFp);
    let _ = lg.gemm(&x, &s, &weights, KernelKind::ExCp);
    // ImFP: 4 compute jobs; ExCP: 4 dequant jobs (+ up to 4 queued MMA
    // jobs, some possibly inlined). At minimum the 8 first-hop jobs ran.
    assert!(
        jobs.get() >= before + 8,
        "worker 0 executed the submitted jobs ({} -> {})",
        before,
        jobs.get()
    );
    let prom = reg.to_prometheus();
    assert!(prom.contains("lq_pool_queue_depth"), "{prom}");
    assert!(prom.contains("lq_pool_busy_ns_total"), "{prom}");
}
