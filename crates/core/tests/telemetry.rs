//! Telemetry integration tests for the pipelines: counters are
//! monotone, tasks are accounted exactly, and disabling telemetry
//! leaves results bit-identical.

use lq_core::pipeline::{w4a8_imfp, ParallelConfig};
use lq_core::reference::max_abs_diff;
use lq_core::serial::w4a8_lqq_serial;
use lq_core::PackedLqqLinear;
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;
use lq_rng::Rng;

/// Both tests record into the same process-global registry; serialize
/// them so exact-delta assertions aren't perturbed by the other test's
/// pipeline runs.
static EXCLUSIVE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn fixture(rng: &mut Rng, m: usize, n: usize, k: usize) -> (Mat<i8>, Vec<f32>, PackedLqqLinear) {
    let xf = Mat::from_fn(m, k, |_, _| rng.range_f32(-2.0, 2.0));
    let wf = Mat::from_fn(n, k, |_, _| rng.range_f32(-1.0, 1.0));
    let qa = QuantizedActivations::quantize(&xf, None);
    (qa.q, qa.scales, PackedLqqLinear::quantize(&wf, 64))
}

/// Property: across repeated `w4a8_imfp` runs with randomized shapes,
/// every pipeline stall counter is monotone non-decreasing and the
/// tasks counter advances by exactly ⌈N / task_rows⌉ per run.
#[test]
fn imfp_stall_counters_monotone_across_runs() {
    let _guard = EXCLUSIVE.lock().unwrap();
    lq_telemetry::enable();
    let reg = lq_telemetry::registry();
    let stall_names: Vec<(&str, [(&str, &str); 2])> = ["load", "compute"]
        .iter()
        .map(|r| {
            (
                "lq_pipeline_stall_total",
                [("variant", "imfp"), ("role", *r)],
            )
        })
        .collect();
    let tasks = reg.counter_with("lq_pipeline_tasks_total", &[("variant", "imfp")]);

    let mut rng = Rng::new(0x5ECD);
    let mut prev_stalls: Vec<u64> = stall_names
        .iter()
        .map(|(n, l)| reg.counter_with(n, l).get())
        .collect();
    for round in 0..8 {
        let m = rng.range_usize(1, 6);
        let n = rng.range_usize(4, 40);
        let k = 64 * rng.range_usize(1, 4);
        let (x, s, w) = fixture(&mut rng, m, n, k);
        let task_rows = rng.range_usize(1, 9);
        let cfg = ParallelConfig {
            workers: rng.range_usize(1, 5),
            task_rows,
            stages: 2,
        };

        let tasks_before = tasks.get();
        let got = w4a8_imfp(&x, &s, Some(&w), None, cfg);
        let want = w4a8_lqq_serial(&x, &s, &w);
        assert_eq!(max_abs_diff(&got, &want), 0.0, "round {round}");

        let expected_tasks = n.div_ceil(task_rows) as u64;
        assert_eq!(
            tasks.get() - tasks_before,
            expected_tasks,
            "round {round}: tasks counter must advance by the task count"
        );
        for (i, (name, labels)) in stall_names.iter().enumerate() {
            let now = reg.counter_with(name, labels).get();
            assert!(
                now >= prev_stalls[i],
                "round {round}: {name}{labels:?} went backwards ({} -> {now})",
                prev_stalls[i]
            );
            prev_stalls[i] = now;
        }
    }
}

/// Telemetry on vs off must not change numeric results, and the GEMM
/// call histogram must record one sample per instrumented call.
#[test]
fn gemm_call_histogram_counts_calls() {
    let _guard = EXCLUSIVE.lock().unwrap();
    lq_telemetry::enable();
    let mut rng = Rng::new(7);
    let (x, s, w) = fixture(&mut rng, 3, 12, 128);
    let cfg = ParallelConfig {
        workers: 2,
        task_rows: 4,
        stages: 2,
    };
    let hist = lq_telemetry::registry().histogram_with("lq_gemm_ns", &[("variant", "imfp")]);
    let before = hist.count();
    let a = w4a8_imfp(&x, &s, Some(&w), None, cfg);
    let b = w4a8_imfp(&x, &s, Some(&w), None, cfg);
    assert!(hist.count() >= before + 2, "each call records a span");
    assert_eq!(max_abs_diff(&a, &b), 0.0, "runs are deterministic");
}
