//! Parallel W4A8 kernels: flat data-parallel, explicit coarse-grained
//! pipeline (ExCP), and the implicit fine-grained pipeline (ImFP).
//!
//! Mapping of the paper's Hopper structures (Figure 6) onto CPU threads:
//!
//! | paper                         | here                                   |
//! |-------------------------------|----------------------------------------|
//! | Load WG issuing TMA           | producer thread copying packed weight  |
//! |                               | tiles into recycled staging buffers    |
//! | SMEM stages                   | the ring of owned `Vec<u32>` buffers   |
//! |                               | circulating producer → worker → free   |
//! | Compute WG (dequant + MMA)    | ImFP worker: dequant a group into a    |
//! |                               | register-file-sized buffer, dot it     |
//! |                               | immediately (no round trip)            |
//! | Dequant WG → SMEM → MMA WG    | ExCP: separate dequant threads fully   |
//! |                               | materialising INT8 tiles that separate |
//! |                               | MMA threads then re-read               |
//! | mbarrier sync between WGs     | the extra bounded channel hop in ExCP  |
//! | hardware task scheduling      | one atomic claim / channel recv        |
//!
//! All variants compute `Yᵀ = W·Xᵀ` — the paper's Section 5.4 rewrite —
//! so each task (a block of output channels) owns a *contiguous* slice
//! of the transposed output, giving workers disjoint `&mut` slices with
//! no locking; the final transpose is the trailing `ᵀ`.
//!
//! Every variant is bit-exact against the serial LQQ kernel (tests at
//! the bottom and in `tests/parallel.rs`).
//!
//! ## Telemetry
//!
//! When [`lq_telemetry::enable`] has been called, every variant records
//! whole-call latency (`lq_gemm_ns`), per-role task spans
//! (`lq_pipeline_task_ns`), would-block stall counts on the stage ring
//! (`lq_pipeline_stall_total` — the CPU analog of the per-warp-group
//! stalls behind the paper's Fig. 10/13 ImFP-vs-ExCP comparison), and
//! queue-occupancy gauges. Disabled (the default), the instrumentation
//! is a single relaxed load per call plus dead `Option` branches.

use lq_quant::mat::Mat;

use crate::microkernel::{dequant_group_lqq, dequant_group_qoq, dot_i8, dot_i8_x4};
use crate::packed::{PackedLqqLinear, PackedQoqLinear};
use crate::scheduler::TaskScheduler;
use crate::serial::MAX_GROUP;
use crate::sync::{bounded, Receiver, Sender};
use crate::telemetry::{call_span, recv_counting, send_counting, PipeMetrics};

/// Parallel execution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Compute workers (ImFP: dequant+MMA each; ExCP: split between
    /// dequant and MMA roles).
    pub workers: usize,
    /// Output channels per task (the fine-grained task size).
    pub task_rows: usize,
    /// Staging buffers in flight (the "SMEM stage" count).
    pub stages: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            task_rows: 8,
            stages: 8,
        }
    }
}

/// Which dequantization algorithm a W4A8 kernel variant uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dequant {
    /// LiquidQuant fast path.
    Lqq,
    /// QServe/QoQ emulated path.
    Qoq,
}

/// A W4A8 weight source the pipelines can stream from, independent of
/// the second-level scheme.
enum WeightsRef<'a> {
    Lqq(&'a PackedLqqLinear),
    Qoq(&'a PackedQoqLinear),
}

impl WeightsRef<'_> {
    fn n(&self) -> usize {
        match self {
            WeightsRef::Lqq(w) => w.n,
            WeightsRef::Qoq(w) => w.n,
        }
    }

    fn k(&self) -> usize {
        match self {
            WeightsRef::Lqq(w) => w.k,
            WeightsRef::Qoq(w) => w.k,
        }
    }

    fn group(&self) -> usize {
        match self {
            WeightsRef::Lqq(w) => w.group,
            WeightsRef::Qoq(w) => w.group,
        }
    }

    fn channel_scale(&self, j: usize) -> f32 {
        match self {
            WeightsRef::Lqq(w) => w.channel_scales[j],
            WeightsRef::Qoq(w) => w.channel_scales[j],
        }
    }

    /// Packed words of rows `[r0, r1)` (contiguous — the tile the Load
    /// WG transfers).
    fn rows_words(&self, r0: usize, r1: usize) -> &[u32] {
        match self {
            WeightsRef::Lqq(w) => w.words.rows_words(r0, r1),
            WeightsRef::Qoq(w) => w.words.rows_words(r0, r1),
        }
    }

    /// Dequantize group `g` of absolute row `j` from `words` (a staged
    /// copy whose row 0 is absolute row `base`).
    fn dequant_group_from(&self, words: &[u32], base: usize, j: usize, g: usize, out: &mut [i8]) {
        let group = self.group();
        let wpr = self.k() / 8;
        let wpg = group / 8;
        let off = (j - base) * wpr + g * wpg;
        let slice = &words[off..off + wpg];
        match self {
            WeightsRef::Lqq(w) => dequant_group_lqq(slice, w.group_params(j, g), out),
            WeightsRef::Qoq(w) => dequant_group_qoq(slice, w.group_params(j, g), out),
        }
    }
}

/// Compute `Yᵀ` rows `[j0, j1)` into `out_t` (length `(j1-j0)·m`),
/// streaming packed words from `words` (staged tile starting at `j0`).
fn compute_rows(
    w: &WeightsRef<'_>,
    words: &[u32],
    j0: usize,
    j1: usize,
    x: &Mat<i8>,
    act_scales: &[f32],
    out_t: &mut [f32],
) {
    let m = x.rows();
    let group = w.group();
    let groups_per_row = w.k() / group;
    let mut buf = [0i8; MAX_GROUP];
    let mut acc = vec![0i32; m];
    for j in j0..j1 {
        acc.fill(0);
        for g in 0..groups_per_row {
            w.dequant_group_from(words, j0, j, g, &mut buf[..group]);
            let k0 = g * group;
            accumulate(&mut acc, x, k0, k0 + group, &buf[..group]);
        }
        let ch = w.channel_scale(j);
        let row = &mut out_t[(j - j0) * m..(j - j0 + 1) * m];
        for (i, o) in row.iter_mut().enumerate() {
            *o = acc[i] as f32 * act_scales[i] * ch;
        }
    }
}

#[inline]
fn accumulate(acc: &mut [i32], x: &Mat<i8>, k0: usize, k1: usize, w_buf: &[i8]) {
    let m = acc.len();
    let mut i = 0;
    while i + 4 <= m {
        let r = dot_i8_x4(
            w_buf,
            &x.row(i)[k0..k1],
            &x.row(i + 1)[k0..k1],
            &x.row(i + 2)[k0..k1],
            &x.row(i + 3)[k0..k1],
        );
        acc[i] += r[0];
        acc[i + 1] += r[1];
        acc[i + 2] += r[2];
        acc[i + 3] += r[3];
        i += 4;
    }
    while i < m {
        acc[i] += dot_i8(w_buf, &x.row(i)[k0..k1]);
        i += 1;
    }
}

/// Transpose the flat `N×M` buffer into an `M×N` [`Mat`].
fn assemble_output(y_t: Vec<f32>, m: usize, n: usize) -> Mat<f32> {
    let mut y = Mat::zeros(m, n);
    for j in 0..n {
        for i in 0..m {
            y.set(i, j, y_t[j * m + i]);
        }
    }
    y
}

fn check_shapes(x: &Mat<i8>, act_scales: &[f32], k: usize) {
    assert_eq!(x.cols(), k, "K mismatch");
    assert_eq!(act_scales.len(), x.rows(), "one scale per token");
}

/// Flat data-parallel W4A8 kernel: every worker claims row-blocks from
/// the shared scheduler and reads packed weights directly (no staging
/// producer). The "pipeline off" arm of the Figure 13 ablation.
#[must_use]
pub fn w4a8_flat_parallel(
    x: &Mat<i8>,
    act_scales: &[f32],
    lqq: Option<&PackedLqqLinear>,
    qoq: Option<&PackedQoqLinear>,
    cfg: ParallelConfig,
) -> Mat<f32> {
    let w = match (lqq, qoq) {
        (Some(w), None) => WeightsRef::Lqq(w),
        (None, Some(w)) => WeightsRef::Qoq(w),
        _ => panic!("exactly one weight source required"),
    };
    check_shapes(x, act_scales, w.k());
    let _call = call_span("flat");
    let metrics = PipeMetrics::resolve("flat");
    let (m, n) = (x.rows(), w.n());
    let tasks = n.div_ceil(cfg.task_rows);
    let sched = TaskScheduler::new(tasks);
    let mut y_t = vec![0.0f32; n * m];
    {
        let chunks: Vec<(usize, &mut [f32])> =
            y_t.chunks_mut(cfg.task_rows * m).enumerate().collect();
        let chunk_q = std::sync::Mutex::new(chunks.into_iter().map(Some).collect::<Vec<_>>());
        let (w, metrics) = (&w, &metrics);
        std::thread::scope(|s| {
            for _ in 0..cfg.workers.max(1) {
                let (sched, chunk_q) = (&sched, &chunk_q);
                s.spawn(move || {
                    while let Some(t) = sched.claim() {
                        if let Some(mx) = metrics {
                            mx.claims.inc();
                            mx.tasks.inc();
                        }
                        let _span = metrics.as_ref().map(|mx| mx.task_ns_compute.span_owned());
                        let (idx, slice) = chunk_q.lock().expect("chunk queue poisoned")[t]
                            .take()
                            .expect("task claimed once");
                        debug_assert_eq!(idx, t);
                        let j0 = t * cfg.task_rows;
                        let j1 = (j0 + cfg.task_rows).min(n);
                        // Flat variant: read straight from the weight
                        // matrix (row j0's words start the slice).
                        let words = w.rows_words(j0, j1);
                        compute_rows(w, words, j0, j1, x, act_scales, slice);
                    }
                });
            }
        });
    }
    assemble_output(y_t, m, n)
}

/// A staged tile in flight: task row range plus the recycled buffer
/// holding its packed words and the output slice it owns.
struct StagedTask<'a> {
    j0: usize,
    j1: usize,
    words: Vec<u32>,
    out: &'a mut [f32],
}

/// The implicit fine-grained pipeline (ImFP): one producer thread
/// streams packed weight tiles into recycled staging buffers (the SMEM
/// ring); multiple compute workers each dequantize *and* immediately
/// multiply their claimed tile — dequantization in one worker overlaps
/// MMA in another with no cross-stage data movement.
#[must_use]
pub fn w4a8_imfp(
    x: &Mat<i8>,
    act_scales: &[f32],
    lqq: Option<&PackedLqqLinear>,
    qoq: Option<&PackedQoqLinear>,
    cfg: ParallelConfig,
) -> Mat<f32> {
    let w = match (lqq, qoq) {
        (Some(w), None) => WeightsRef::Lqq(w),
        (None, Some(w)) => WeightsRef::Qoq(w),
        _ => panic!("exactly one weight source required"),
    };
    check_shapes(x, act_scales, w.k());
    let _call = call_span("imfp");
    let metrics = PipeMetrics::resolve("imfp");
    let (m, n) = (x.rows(), w.n());
    let mut y_t = vec![0.0f32; n * m];
    {
        let (task_tx, task_rx): (Sender<StagedTask>, Receiver<StagedTask>) =
            bounded(cfg.stages.max(1));
        let (free_tx, free_rx): (Sender<Vec<u32>>, Receiver<Vec<u32>>) =
            bounded(cfg.stages.max(1) + cfg.workers + 1);
        for _ in 0..cfg.stages.max(1) {
            free_tx.send(Vec::new()).expect("prefill free ring");
        }
        let chunks = y_t.chunks_mut(cfg.task_rows * m);
        let (wref, metrics) = (&w, &metrics);
        std::thread::scope(|s| {
            // Producer: the Load WG. A stall here means the stage ring
            // is full or empty of recycled buffers — compute is the
            // bottleneck (backpressure).
            let producer_task_tx = task_tx;
            let producer_free_rx = free_rx;
            s.spawn(move || {
                for (t, out) in chunks.enumerate() {
                    let j0 = t * cfg.task_rows;
                    let j1 = (j0 + cfg.task_rows).min(n);
                    let stall = metrics.as_ref().map(|mx| &mx.stall_load);
                    let mut buf =
                        recv_counting(&producer_free_rx, stall).expect("free ring closed");
                    {
                        let _span = metrics.as_ref().map(|mx| mx.task_ns_load.span_owned());
                        buf.clear();
                        buf.extend_from_slice(wref.rows_words(j0, j1));
                    }
                    if send_counting(
                        &producer_task_tx,
                        StagedTask {
                            j0,
                            j1,
                            words: buf,
                            out,
                        },
                        stall,
                    )
                    .is_err()
                    {
                        unreachable!("task channel closed while producing");
                    }
                    if let Some(mx) = metrics {
                        mx.depth_task.set(producer_task_tx.len() as f64);
                    }
                }
                // Dropping the sender ends the pipeline.
            });
            // Compute workers: dequant + MMA fused. A stall here means
            // the producer can't keep tiles coming — load-bound.
            for _ in 0..cfg.workers.max(1) {
                let rx = task_rx.clone();
                let free = free_tx.clone();
                s.spawn(move || {
                    let stall = metrics.as_ref().map(|mx| &mx.stall_compute);
                    while let Ok(task) = recv_counting(&rx, stall) {
                        let StagedTask { j0, j1, words, out } = task;
                        {
                            let _span = metrics.as_ref().map(|mx| mx.task_ns_compute.span_owned());
                            compute_rows(wref, &words, j0, j1, x, act_scales, out);
                        }
                        if let Some(mx) = metrics {
                            mx.tasks.inc();
                        }
                        // Recycle the stage; ignore shutdown races.
                        let _ = free.send(words);
                    }
                });
            }
            drop(task_rx);
            drop(free_tx);
        });
    }
    assemble_output(y_t, m, n)
}

/// A dequantized tile travelling from the Dequant WGs to the MMA WGs in
/// the ExCP pipeline.
struct DequantizedTask<'a> {
    j0: usize,
    j1: usize,
    /// Fully materialised INT8 weights for rows `[j0, j1)` — the
    /// "write back to SMEM" the paper identifies as ExCP's overhead.
    tile: Vec<i8>,
    out: &'a mut [f32],
}

/// The explicit coarse-grained pipeline (ExCP): Load → Dequant → MMA as
/// *separate* thread roles connected by bounded channels. The dequant
/// stage materialises whole INT8 tiles that the MMA stage re-reads —
/// the RF↔SMEM round trip — and the static role split can leave one
/// stage idle while another is the bottleneck.
#[must_use]
pub fn w4a8_excp(
    x: &Mat<i8>,
    act_scales: &[f32],
    lqq: Option<&PackedLqqLinear>,
    qoq: Option<&PackedQoqLinear>,
    cfg: ParallelConfig,
) -> Mat<f32> {
    let w = match (lqq, qoq) {
        (Some(w), None) => WeightsRef::Lqq(w),
        (None, Some(w)) => WeightsRef::Qoq(w),
        _ => panic!("exactly one weight source required"),
    };
    check_shapes(x, act_scales, w.k());
    let _call = call_span("excp");
    let metrics = PipeMetrics::resolve("excp");
    let (m, n) = (x.rows(), w.n());
    let k = w.k();
    let group = w.group();
    // Split workers between the two compute roles, at least one each.
    let dequant_workers = (cfg.workers / 2).max(1);
    let mma_workers = (cfg.workers - dequant_workers).max(1);
    let mut y_t = vec![0.0f32; n * m];
    {
        let (load_tx, load_rx): (Sender<StagedTask>, Receiver<StagedTask>) =
            bounded(cfg.stages.max(1));
        let (deq_tx, deq_rx): (Sender<DequantizedTask>, Receiver<DequantizedTask>) =
            bounded(cfg.stages.max(1));
        let chunks = y_t.chunks_mut(cfg.task_rows * m);
        let (wref, metrics) = (&w, &metrics);
        std::thread::scope(|s| {
            // Stage 1: Load WG. Stalls = stage buffers full (dequant
            // behind).
            s.spawn(move || {
                for (t, out) in chunks.enumerate() {
                    let j0 = t * cfg.task_rows;
                    let j1 = (j0 + cfg.task_rows).min(n);
                    let words = {
                        let _span = metrics.as_ref().map(|mx| mx.task_ns_load.span_owned());
                        wref.rows_words(j0, j1).to_vec()
                    };
                    let stall = metrics.as_ref().map(|mx| &mx.stall_load);
                    if send_counting(&load_tx, StagedTask { j0, j1, words, out }, stall).is_err() {
                        unreachable!("load channel closed while producing");
                    }
                    if let Some(mx) = metrics {
                        mx.depth_task.set(load_tx.len() as f64);
                    }
                }
            });
            // Stage 2: Dequant WGs — materialise full INT8 tiles. Recv
            // stalls = load behind; send stalls = MMA behind.
            for _ in 0..dequant_workers {
                let rx = load_rx.clone();
                let tx = deq_tx.clone();
                s.spawn(move || {
                    let stall = metrics.as_ref().map(|mx| &mx.stall_dequant);
                    let mut buf = [0i8; MAX_GROUP];
                    while let Ok(task) = recv_counting(&rx, stall) {
                        let StagedTask { j0, j1, words, out } = task;
                        let rows = j1 - j0;
                        let mut tile = vec![0i8; rows * k];
                        {
                            let _span = metrics.as_ref().map(|mx| mx.task_ns_dequant.span_owned());
                            for j in j0..j1 {
                                for g in 0..k / group {
                                    wref.dequant_group_from(&words, j0, j, g, &mut buf[..group]);
                                    let dst = (j - j0) * k + g * group;
                                    tile[dst..dst + group].copy_from_slice(&buf[..group]);
                                }
                            }
                        }
                        if send_counting(&tx, DequantizedTask { j0, j1, tile, out }, stall).is_err()
                        {
                            unreachable!("dequant channel closed while MMA workers live");
                        }
                        if let Some(mx) = metrics {
                            mx.depth_dequant.set(tx.len() as f64);
                        }
                    }
                });
            }
            drop(load_rx);
            drop(deq_tx);
            // Stage 3: MMA WGs — dot products from the materialised
            // tile. Stalls = dequant behind.
            for _ in 0..mma_workers {
                let rx = deq_rx.clone();
                s.spawn(move || {
                    let stall = metrics.as_ref().map(|mx| &mx.stall_mma);
                    let mut acc = vec![0i32; m];
                    while let Ok(task) = recv_counting(&rx, stall) {
                        let DequantizedTask { j0, j1, tile, out } = task;
                        let _span = metrics.as_ref().map(|mx| mx.task_ns_mma.span_owned());
                        for j in j0..j1 {
                            acc.fill(0);
                            let wrow = &tile[(j - j0) * k..(j - j0 + 1) * k];
                            accumulate(&mut acc, x, 0, k, wrow);
                            let ch = wref.channel_scale(j);
                            let row = &mut out[(j - j0) * m..(j - j0 + 1) * m];
                            for (i, o) in row.iter_mut().enumerate() {
                                *o = acc[i] as f32 * act_scales[i] * ch;
                            }
                        }
                        if let Some(mx) = metrics {
                            mx.tasks.inc();
                        }
                    }
                });
            }
            drop(deq_rx);
        });
    }
    assemble_output(y_t, m, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::max_abs_diff;
    use crate::serial::{w4a8_lqq_serial, w4a8_qoq_serial};
    use lq_quant::act::QuantizedActivations;

    fn fixture(
        m: usize,
        n: usize,
        k: usize,
    ) -> (Mat<i8>, Vec<f32>, PackedLqqLinear, PackedQoqLinear) {
        let xf = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.11).sin() * 2.0);
        let wf = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.05).cos());
        let qa = QuantizedActivations::quantize(&xf, None);
        let lqq = PackedLqqLinear::quantize(&wf, 64);
        let qoq = PackedQoqLinear::quantize(&wf, 64);
        (qa.q, qa.scales, lqq, qoq)
    }

    #[test]
    fn imfp_matches_serial_bit_exact() {
        let (x, s, lqq, _) = fixture(7, 33, 128);
        let want = w4a8_lqq_serial(&x, &s, &lqq);
        for workers in [1, 2, 4] {
            let cfg = ParallelConfig {
                workers,
                task_rows: 5,
                stages: 3,
            };
            let got = w4a8_imfp(&x, &s, Some(&lqq), None, cfg);
            assert_eq!(max_abs_diff(&got, &want), 0.0, "workers={workers}");
        }
    }

    #[test]
    fn excp_matches_serial_bit_exact() {
        let (x, s, lqq, _) = fixture(6, 20, 192);
        let want = w4a8_lqq_serial(&x, &s, &lqq);
        let cfg = ParallelConfig {
            workers: 4,
            task_rows: 3,
            stages: 2,
        };
        let got = w4a8_excp(&x, &s, Some(&lqq), None, cfg);
        assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn flat_matches_serial_bit_exact() {
        let (x, s, lqq, _) = fixture(5, 17, 64);
        let want = w4a8_lqq_serial(&x, &s, &lqq);
        let cfg = ParallelConfig {
            workers: 3,
            task_rows: 4,
            stages: 2,
        };
        let got = w4a8_flat_parallel(&x, &s, Some(&lqq), None, cfg);
        assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn qoq_variants_match_their_serial() {
        let (x, s, _, qoq) = fixture(4, 12, 128);
        let want = w4a8_qoq_serial(&x, &s, &qoq);
        let cfg = ParallelConfig {
            workers: 2,
            task_rows: 4,
            stages: 2,
        };
        for got in [
            w4a8_imfp(&x, &s, None, Some(&qoq), cfg),
            w4a8_excp(&x, &s, None, Some(&qoq), cfg),
            w4a8_flat_parallel(&x, &s, None, Some(&qoq), cfg),
        ] {
            assert_eq!(max_abs_diff(&got, &want), 0.0);
        }
    }

    #[test]
    fn task_rows_not_dividing_n_is_handled() {
        let (x, s, lqq, _) = fixture(3, 10, 64);
        let want = w4a8_lqq_serial(&x, &s, &lqq);
        let cfg = ParallelConfig {
            workers: 2,
            task_rows: 7,
            stages: 2,
        };
        let got = w4a8_imfp(&x, &s, Some(&lqq), None, cfg);
        assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn more_workers_than_tasks_is_safe() {
        let (x, s, lqq, _) = fixture(2, 4, 64);
        let cfg = ParallelConfig {
            workers: 16,
            task_rows: 4,
            stages: 8,
        };
        let want = w4a8_lqq_serial(&x, &s, &lqq);
        let got = w4a8_imfp(&x, &s, Some(&lqq), None, cfg);
        assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    #[should_panic(expected = "exactly one weight source required")]
    fn two_weight_sources_panics() {
        let (x, s, lqq, qoq) = fixture(2, 4, 64);
        let _ = w4a8_imfp(&x, &s, Some(&lqq), Some(&qoq), ParallelConfig::default());
    }
}
