//! Parallel W4A8 kernels: flat data-parallel, explicit coarse-grained
//! pipeline (ExCP), and the implicit fine-grained pipeline (ImFP) — all
//! running as tile jobs on the persistent [`WorkerPool`]
//! (see [`crate::runtime`]) instead of spawning threads per call.
//!
//! Mapping of the paper's Hopper structures (Figure 6) onto the pool:
//!
//! | paper                         | here                                   |
//! |-------------------------------|----------------------------------------|
//! | persistent kernel (§5.4)      | the long-lived worker threads owned by |
//! |                               | a [`crate::LiquidGemm`] handle         |
//! | Load WG issuing TMA           | the calling thread staging packed      |
//! |                               | weight tiles into recycled buffers     |
//! | SMEM stages                   | the ring of owned `Vec<u32>` buffers   |
//! |                               | circulating caller → worker → free     |
//! | Compute WG (dequant + MMA)    | ImFP job: dequant a group into a       |
//! |                               | register-file-sized buffer, dot it     |
//! |                               | immediately (no round trip)            |
//! | Dequant WG → SMEM → MMA WG    | ExCP: a Dequant job fully materialises |
//! |                               | the INT8 tile, then forwards a second  |
//! |                               | MMA job that re-reads it               |
//! | mbarrier sync between WGs     | the extra queue hop in ExCP            |
//! | hardware task scheduling      | one bounded-MPMC recv per job          |
//!
//! All variants compute `Yᵀ = W·Xᵀ` — the paper's Section 5.4 rewrite —
//! so each task (a block of output channels) owns a *contiguous* slice
//! of the transposed output; workers return owned chunks the caller
//! stitches together, and the final transpose is the trailing `ᵀ`.
//! Integer accumulation is exact, so every variant stays bit-identical
//! to the serial LQQ/QoQ kernels regardless of worker interleaving
//! (tests at the bottom, in `tests/props.rs`, and under concurrency in
//! `tests/runtime_stress.rs`).
//!
//! What still distinguishes the variants on the pool:
//! * **Flat** stages tiles eagerly — the caller copies and enqueues as
//!   fast as the injector queue accepts, allocating a fresh buffer per
//!   task (no recycling, no stage bound). "Pipeline off" in Figure 13.
//! * **ImFP** bounds staged tiles to `stages` recycled buffers; the
//!   caller blocks on the free ring when compute is behind
//!   (backpressure = the `load` stall counter).
//! * **ExCP** adds the materialise-then-requeue round trip: each tile
//!   crosses the queue twice and the INT8 intermediate is written and
//!   re-read — the RF↔SMEM overhead the paper measures against ImFP.
//!
//! ## Telemetry
//!
//! When [`lq_telemetry::enable`] has been called, every variant records
//! whole-call latency (`lq_gemm_ns`), per-role task spans
//! (`lq_pipeline_task_ns`), would-block stalls on the stage ring
//! (`lq_pipeline_stall_total{role="load"}` — the CPU analog of the
//! warp-group stalls behind the paper's Fig. 10/13), task counts, and
//! queue-occupancy gauges; the pool itself exports queue depth and
//! per-worker busy/steal counters (see [`crate::runtime`]). Disabled
//! (the default), instrumentation is a single relaxed load per call.

use std::fmt;
use std::sync::Arc;

use lq_quant::backend::{PackedWeights, TileDequant};
use lq_quant::mat::Mat;

use crate::affinity::PlacementPolicy;
use crate::microkernel::{APanels, MicrokernelSet};
use crate::runtime::{CallCtx, Job, Reply, WorkerPool};
use crate::simd::{self, SimdVariant};
use crate::sync::{bounded, Receiver, Sender};
use crate::telemetry::{call_span, recv_counting, PipeMetrics};

/// Parallel execution parameters.
///
/// Construct via [`ParallelConfig::builder`] (validating) or
/// [`ParallelConfig::default`]. The fields stay public for
/// introspection and for tests that deliberately build degenerate
/// configs; production call sites should go through the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads. Used when sizing a pool
    /// ([`crate::LiquidGemm::builder`]); ignored by per-call overrides —
    /// a persistent pool's thread count is fixed at build time.
    pub workers: usize,
    /// Output channels per task (the fine-grained task size).
    pub task_rows: usize,
    /// Staging buffers in flight (the "SMEM stage" count).
    pub stages: usize,
    /// Worker-to-CPU placement policy. Like `workers`, this is a
    /// pool-sizing parameter: it takes effect when the pool is built
    /// ([`crate::LiquidGemm::builder`]) and is ignored by per-call
    /// overrides. Defaults to [`PlacementPolicy::Unpinned`].
    pub placement: PlacementPolicy,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            task_rows: 8,
            stages: 8,
            placement: PlacementPolicy::Unpinned,
        }
    }
}

impl ParallelConfig {
    /// Start building a validated config (defaults as [`Default`]).
    #[must_use]
    pub fn builder() -> ParallelConfigBuilder {
        ParallelConfigBuilder::default()
    }
}

/// Why a [`ParallelConfig`] (or [`crate::LiquidGemmBuilder`]) was
/// rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `workers == 0`: the pool would never execute anything.
    ZeroWorkers,
    /// `stages < 2` (value attached): a stage ring needs at least
    /// double buffering for load to overlap compute.
    TooFewStages(usize),
    /// `task_rows == 0`: tasks would cover no output channels.
    ZeroTaskRows,
    /// `queue_depth == 0`: the injector queue could hold no jobs.
    ZeroQueueDepth,
    /// A microkernel variant was forced
    /// ([`crate::LiquidGemmBuilder::force_microkernel`]) that the
    /// running CPU does not support.
    UnsupportedMicrokernel(SimdVariant),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(f, "workers must be >= 1"),
            ConfigError::TooFewStages(s) => {
                write!(f, "stages must be >= 2 for double buffering (got {s})")
            }
            ConfigError::ZeroTaskRows => write!(f, "task_rows must be >= 1"),
            ConfigError::ZeroQueueDepth => write!(f, "queue_depth must be >= 1"),
            ConfigError::UnsupportedMicrokernel(v) => {
                write!(f, "microkernel variant {:?} not supported by this CPU", v)
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`ParallelConfig`].
#[derive(Debug, Clone)]
pub struct ParallelConfigBuilder {
    workers: usize,
    task_rows: usize,
    stages: usize,
    placement: PlacementPolicy,
}

impl Default for ParallelConfigBuilder {
    fn default() -> Self {
        let d = ParallelConfig::default();
        Self {
            workers: d.workers,
            task_rows: d.task_rows,
            stages: d.stages,
            placement: d.placement,
        }
    }
}

impl ParallelConfigBuilder {
    /// Worker threads (validated ≥ 1).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Output channels per task (validated ≥ 1).
    #[must_use]
    pub fn task_rows(mut self, r: usize) -> Self {
        self.task_rows = r;
        self
    }

    /// Staging buffers in flight (validated ≥ 2).
    #[must_use]
    pub fn stages(mut self, s: usize) -> Self {
        self.stages = s;
        self
    }

    /// Worker-to-CPU placement policy (applies at pool build time, like
    /// `workers`; any value is valid — pinning degrades to a no-op
    /// where the OS refuses it).
    #[must_use]
    pub fn placement(mut self, p: PlacementPolicy) -> Self {
        self.placement = p;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ParallelConfig, ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.stages < 2 {
            return Err(ConfigError::TooFewStages(self.stages));
        }
        if self.task_rows == 0 {
            return Err(ConfigError::ZeroTaskRows);
        }
        Ok(ParallelConfig {
            workers: self.workers,
            task_rows: self.task_rows,
            stages: self.stages,
            placement: self.placement,
        })
    }
}

/// Compute `Yᵀ` rows `[0, rows)` of a staged tile into `out_t` (length
/// `rows·m`): the fused dequant+MMA job body (Flat and ImFP). Channels
/// are walked a `strip_width()`-row strip at a time; each K block
/// ([`MicrokernelSet::kc_block`]) is dequantized for the whole strip by
/// the backend's [`TileDequant`] recipe — with the next block's packed
/// words software-prefetched — then the selected register-tile
/// microkernel family reduces it over every packed activation panel.
pub(crate) fn compute_rows_staged(
    mk: MicrokernelSet,
    q: &dyn TileDequant,
    words: &[u32],
    rows: usize,
    a: &APanels,
    act_scales: &[f32],
    out_t: &mut [f32],
) {
    let m = a.m();
    mk.record_dispatch(m);
    let group = q.group();
    let k = q.k();
    let strip = mk.strip_width();
    let kcb = mk.kc_block(group, k);
    let mut wbuf = vec![0i8; strip * kcb];
    let mut acc = vec![0i32; mk.acc_len(a)];
    let wpr = words.len() / rows.max(1);
    for jb in (0..rows).step_by(strip) {
        let nr = strip.min(rows - jb);
        acc.fill(0);
        let mut k0 = 0usize;
        while k0 < k {
            let kc = kcb.min(k - k0);
            if nr < strip {
                // Unused strip rows stay zero at the current row
                // stride: their chains are never read back.
                wbuf.fill(0);
            }
            // Hint the next K block's packed words while this block
            // dequantizes and reduces.
            for r in 0..nr {
                simd::prefetch_read(words, (jb + r) * wpr + wpr * (k0 + kc) / k.max(1));
            }
            let g0 = k0 / group;
            for r in 0..nr {
                let dst = &mut wbuf[r * kc..(r + 1) * kc];
                for (gg, chunk) in dst.chunks_mut(group).enumerate() {
                    q.dequant_group(words, jb + r, g0 + gg, chunk);
                }
            }
            mk.accumulate(a, k0, kc, &wbuf[..strip * kc], &mut acc);
            k0 += kc;
        }
        for r in 0..nr {
            let ch = q.channel_scales()[jb + r];
            let row = &mut out_t[(jb + r) * m..(jb + r + 1) * m];
            mk.scatter(a, &acc, r, act_scales, ch, row);
        }
    }
}

/// Raw-sum twin of [`compute_rows_staged`]: the identical staged
/// dequant + accumulate loop, but each channel row is scattered as
/// exact i64 pre-epilogue dot products (no activation / channel
/// scaling). Row-parallel shards run this over their K slice and sum
/// the integer partials across shards before the single final
/// epilogue — which is what makes the sharded result bit-identical to
/// the unsharded kernel.
pub(crate) fn compute_rows_staged_raw(
    mk: MicrokernelSet,
    q: &dyn TileDequant,
    words: &[u32],
    rows: usize,
    a: &APanels,
    out_t: &mut [i64],
) {
    let m = a.m();
    mk.record_dispatch(m);
    let group = q.group();
    let k = q.k();
    let strip = mk.strip_width();
    let kcb = mk.kc_block(group, k);
    let mut wbuf = vec![0i8; strip * kcb];
    let mut acc = vec![0i32; mk.acc_len(a)];
    let wpr = words.len() / rows.max(1);
    for jb in (0..rows).step_by(strip) {
        let nr = strip.min(rows - jb);
        acc.fill(0);
        let mut k0 = 0usize;
        while k0 < k {
            let kc = kcb.min(k - k0);
            if nr < strip {
                wbuf.fill(0);
            }
            for r in 0..nr {
                simd::prefetch_read(words, (jb + r) * wpr + wpr * (k0 + kc) / k.max(1));
            }
            let g0 = k0 / group;
            for r in 0..nr {
                let dst = &mut wbuf[r * kc..(r + 1) * kc];
                for (gg, chunk) in dst.chunks_mut(group).enumerate() {
                    q.dequant_group(words, jb + r, g0 + gg, chunk);
                }
            }
            mk.accumulate(a, k0, kc, &wbuf[..strip * kc], &mut acc);
            k0 += kc;
        }
        for r in 0..nr {
            let row = &mut out_t[(jb + r) * m..(jb + r + 1) * m];
            mk.scatter_raw(a, &acc, r, row);
        }
    }
}

/// ExCP stage 3 job body: register-tiled MMA from a materialised INT8
/// tile (row-major, so full strips feed the microkernel in place).
pub(crate) fn mma_rows(
    mk: MicrokernelSet,
    tile: &[i8],
    k: usize,
    channel_scales: &[f32],
    a: &APanels,
    act_scales: &[f32],
    out_t: &mut [f32],
) {
    let m = a.m();
    mk.record_dispatch(m);
    let rows = channel_scales.len();
    let strip = mk.strip_width();
    let mut acc = vec![0i32; mk.acc_len(a)];
    let mut pad = vec![0i8; strip * k];
    for jb in (0..rows).step_by(strip) {
        let nr = strip.min(rows - jb);
        acc.fill(0);
        if nr == strip {
            mk.accumulate(a, 0, k, &tile[jb * k..(jb + strip) * k], &mut acc);
        } else {
            pad[..nr * k].copy_from_slice(&tile[jb * k..(jb + nr) * k]);
            pad[nr * k..].fill(0);
            mk.accumulate(a, 0, k, &pad, &mut acc);
        }
        for r in 0..nr {
            let ch = channel_scales[jb + r];
            let row = &mut out_t[(jb + r) * m..(jb + r + 1) * m];
            mk.scatter(a, &acc, r, act_scales, ch, row);
        }
    }
}

/// Transpose the flat `N×M` buffer into an `M×N` [`Mat`].
fn assemble_output(y_t: Vec<f32>, m: usize, n: usize) -> Mat<f32> {
    let mut y = Mat::zeros(m, n);
    for j in 0..n {
        for i in 0..m {
            y.set(i, j, y_t[j * m + i]);
        }
    }
    y
}

fn check_shapes(x: &Mat<i8>, act_scales: &[f32], k: usize) {
    assert_eq!(x.cols(), k, "K mismatch");
    assert_eq!(act_scales.len(), x.rows(), "one scale per token");
}

/// Per-call shared context + reply channel, common to all variants.
fn make_ctx(
    pool: &WorkerPool,
    x: &Mat<i8>,
    act_scales: &[f32],
    tasks: usize,
    recycle: Option<Sender<Vec<u32>>>,
    metrics: &Option<Arc<PipeMetrics>>,
) -> (Arc<CallCtx>, Receiver<Reply>, u64) {
    make_ctx_mode(pool, x, act_scales, tasks, recycle, metrics, false)
}

#[allow(clippy::too_many_arguments)]
fn make_ctx_mode(
    pool: &WorkerPool,
    x: &Mat<i8>,
    act_scales: &[f32],
    tasks: usize,
    recycle: Option<Sender<Vec<u32>>>,
    metrics: &Option<Arc<PipeMetrics>>,
    raw: bool,
) -> (Arc<CallCtx>, Receiver<Reply>, u64) {
    let (reply_tx, reply_rx) = bounded(tasks.max(1));
    let epoch = pool.next_epoch();
    let ctx = Arc::new(CallCtx {
        // One pass over the block — the same cost the pre-tiling runtime
        // paid to clone `x` into the call context.
        a: APanels::pack(x),
        act_scales: act_scales.to_vec(),
        reply: reply_tx,
        recycle,
        epoch,
        mk: pool.microkernels(),
        metrics: metrics.clone(),
        raw,
    });
    (ctx, reply_rx, epoch)
}

/// Collect exactly `tasks` tile replies and assemble the `M×N` output.
/// Re-panics if any job panicked in a worker *and* exhausted the
/// pool's retry budget (transient faults are retried and never reach
/// here; see the self-healing notes in [`crate::runtime`]).
fn collect_tiles(rx: &Receiver<Reply>, tasks: usize, m: usize, n: usize, epoch: u64) -> Mat<f32> {
    let mut y_t = vec![0.0f32; n * m];
    for _ in 0..tasks {
        match rx.recv() {
            Ok(Reply::Done { j0, out, epoch: e }) => {
                debug_assert_eq!(e, epoch, "cross-call reply mix-up");
                let dst = j0 * m;
                y_t[dst..dst + out.len()].copy_from_slice(&out);
            }
            Ok(Reply::RawDone { .. }) => {
                unreachable!("raw reply on a scaled call (ctx.raw mode mix-up)")
            }
            Ok(Reply::Panicked) => {
                panic!("LiquidGemm tile job panicked on every retry (deterministic bug)")
            }
            Err(_) => unreachable!("reply channel closed before all tiles arrived"),
        }
    }
    assemble_output(y_t, m, n)
}

/// Raw-mode twin of [`collect_tiles`]: collect exactly `tasks` i64
/// tile replies into the flat `N×M` pre-epilogue buffer (no transpose,
/// no scales — the caller all-reduces across shards first).
fn collect_tiles_raw(
    rx: &Receiver<Reply>,
    tasks: usize,
    m: usize,
    n: usize,
    epoch: u64,
) -> Vec<i64> {
    let mut y_t = vec![0i64; n * m];
    for _ in 0..tasks {
        match rx.recv() {
            Ok(Reply::RawDone { j0, out, epoch: e }) => {
                debug_assert_eq!(e, epoch, "cross-call reply mix-up");
                let dst = j0 * m;
                y_t[dst..dst + out.len()].copy_from_slice(&out);
            }
            Ok(Reply::Done { .. }) => {
                unreachable!("scaled reply on a raw call (ctx.raw mode mix-up)")
            }
            Ok(Reply::Panicked) => {
                panic!("LiquidGemm tile job panicked on every retry (deterministic bug)")
            }
            Err(_) => unreachable!("reply channel closed before all tiles arrived"),
        }
    }
    y_t
}

/// Flat data-parallel W4A8 kernel on the persistent pool: the caller
/// eagerly stages every tile (fresh buffer per task, no stage ring) and
/// workers run fused dequant+MMA jobs. The "pipeline off" arm of the
/// Figure 13 ablation. Blocks only on the injector queue's capacity.
#[must_use]
pub fn w4a8_flat_parallel(
    pool: &WorkerPool,
    x: &Mat<i8>,
    act_scales: &[f32],
    w: &dyn PackedWeights,
    cfg: ParallelConfig,
) -> Mat<f32> {
    check_shapes(x, act_scales, w.k());
    let backend = w.backend().label();
    let _call = call_span("flat", backend);
    let metrics = PipeMetrics::resolve("flat", backend).map(Arc::new);
    let (m, n) = (x.rows(), w.n());
    let task_rows = cfg.task_rows.max(1);
    let tasks = n.div_ceil(task_rows);
    let (ctx, reply_rx, epoch) = make_ctx(pool, x, act_scales, tasks, None, &metrics);
    for t in 0..tasks {
        let j0 = t * task_rows;
        let j1 = (j0 + task_rows).min(n);
        let load_t0 = lq_trace::enabled().then(std::time::Instant::now);
        let words = {
            let _span = metrics.as_ref().map(|mx| mx.task_ns_load.span_owned());
            w.rows_words(j0, j1).to_vec()
        };
        if let Some(t0) = load_t0 {
            lq_trace::span(
                lq_trace::EventKind::StageLoad,
                lq_trace::Track::Control,
                j0 as u64,
                0,
                t0,
            );
        }
        pool.submit(Job::Compute {
            ctx: Arc::clone(&ctx),
            j0,
            rows: j1 - j0,
            words,
            quant: w.tile_dequant(j0, j1),
        });
        if let Some(mx) = &metrics {
            mx.depth_task.set(pool.queue_len() as f64);
        }
    }
    drop(ctx);
    collect_tiles(&reply_rx, tasks, m, n, epoch)
}

/// Flat data-parallel *raw* W4A8 partial GEMM on the persistent pool:
/// same tile decomposition as [`w4a8_flat_parallel`], but every tile
/// job runs in raw mode and the call returns the flat `N×M` buffer of
/// exact i64 pre-epilogue dot products. Row-parallel sharding sums
/// these buffers across K-slice shards (an exact integer all-reduce)
/// and applies the activation/channel epilogue once at the end —
/// bit-identical to an unsharded call. `act_scales` are threaded only
/// for shape checking; they are *not* applied here.
#[must_use]
pub(crate) fn w4a8_flat_raw(
    pool: &WorkerPool,
    x: &Mat<i8>,
    w: &dyn PackedWeights,
    cfg: ParallelConfig,
) -> Vec<i64> {
    assert_eq!(x.cols(), w.k(), "K mismatch");
    let backend = w.backend().label();
    let _call = call_span("flat_raw", backend);
    let metrics = PipeMetrics::resolve("flat_raw", backend).map(Arc::new);
    let (m, n) = (x.rows(), w.n());
    let ones = vec![1.0f32; m];
    let task_rows = cfg.task_rows.max(1);
    let tasks = n.div_ceil(task_rows);
    let (ctx, reply_rx, epoch) = make_ctx_mode(pool, x, &ones, tasks, None, &metrics, true);
    for t in 0..tasks {
        let j0 = t * task_rows;
        let j1 = (j0 + task_rows).min(n);
        let load_t0 = lq_trace::enabled().then(std::time::Instant::now);
        let words = {
            let _span = metrics.as_ref().map(|mx| mx.task_ns_load.span_owned());
            w.rows_words(j0, j1).to_vec()
        };
        if let Some(t0) = load_t0 {
            lq_trace::span(
                lq_trace::EventKind::StageLoad,
                lq_trace::Track::Control,
                j0 as u64,
                0,
                t0,
            );
        }
        pool.submit(Job::Compute {
            ctx: Arc::clone(&ctx),
            j0,
            rows: j1 - j0,
            words,
            quant: w.tile_dequant(j0, j1),
        });
        if let Some(mx) = &metrics {
            mx.depth_task.set(pool.queue_len() as f64);
        }
    }
    drop(ctx);
    collect_tiles_raw(&reply_rx, tasks, m, n, epoch)
}

/// The implicit fine-grained pipeline (ImFP) on the persistent pool:
/// the calling thread is the Load stage, streaming packed weight tiles
/// into `cfg.stages` recycled staging buffers (the SMEM ring); pool
/// workers run fused dequant+MMA jobs — dequantization of one tile
/// overlaps MMA of another with no cross-stage data movement. When all
/// stage buffers are in flight the caller blocks on the free ring
/// (backpressure; counted as a `load` stall).
#[must_use]
pub fn w4a8_imfp(
    pool: &WorkerPool,
    x: &Mat<i8>,
    act_scales: &[f32],
    w: &dyn PackedWeights,
    cfg: ParallelConfig,
) -> Mat<f32> {
    check_shapes(x, act_scales, w.k());
    let backend = w.backend().label();
    let _call = call_span("imfp", backend);
    let metrics = PipeMetrics::resolve("imfp", backend).map(Arc::new);
    let (m, n) = (x.rows(), w.n());
    let task_rows = cfg.task_rows.max(1);
    let tasks = n.div_ceil(task_rows);
    let stages = cfg.stages.max(1);
    // The free ring: capacity covers every buffer that can exist at
    // once, so recycling sends never block inside workers.
    let (free_tx, free_rx) = bounded::<Vec<u32>>(stages + pool.workers() + 1);
    for _ in 0..stages {
        free_tx.send(Vec::new()).expect("prefill free ring");
    }
    let (ctx, reply_rx, epoch) =
        make_ctx(pool, x, act_scales, tasks, Some(free_tx.clone()), &metrics);
    for t in 0..tasks {
        let j0 = t * task_rows;
        let j1 = (j0 + task_rows).min(n);
        let stall = metrics.as_ref().map(|mx| &mx.stall_load);
        let mut buf = recv_counting(&free_rx, stall).expect("free ring closed");
        let load_t0 = lq_trace::enabled().then(std::time::Instant::now);
        {
            let _span = metrics.as_ref().map(|mx| mx.task_ns_load.span_owned());
            buf.clear();
            buf.extend_from_slice(w.rows_words(j0, j1));
        }
        if let Some(t0) = load_t0 {
            lq_trace::span(
                lq_trace::EventKind::StageLoad,
                lq_trace::Track::Control,
                j0 as u64,
                0,
                t0,
            );
        }
        pool.submit(Job::Compute {
            ctx: Arc::clone(&ctx),
            j0,
            rows: j1 - j0,
            words: buf,
            quant: w.tile_dequant(j0, j1),
        });
        if let Some(mx) = &metrics {
            mx.depth_task.set(pool.queue_len() as f64);
        }
    }
    drop(ctx);
    drop(free_tx);
    collect_tiles(&reply_rx, tasks, m, n, epoch)
}

/// The explicit coarse-grained pipeline (ExCP) on the persistent pool:
/// Load (the caller, staging through the same bounded ring as ImFP) →
/// Dequant jobs that materialise whole INT8 tiles → MMA jobs that
/// re-read them. Each tile crosses the injector queue twice and the
/// INT8 intermediate makes the RF↔SMEM round trip — the overhead the
/// paper measures against ImFP. A Dequant job forwards its MMA job onto
/// the executing worker's own deque (LIFO, so the tile is still hot);
/// idle workers may steal it from the tail.
#[must_use]
pub fn w4a8_excp(
    pool: &WorkerPool,
    x: &Mat<i8>,
    act_scales: &[f32],
    w: &dyn PackedWeights,
    cfg: ParallelConfig,
) -> Mat<f32> {
    check_shapes(x, act_scales, w.k());
    let backend = w.backend().label();
    let _call = call_span("excp", backend);
    let metrics = PipeMetrics::resolve("excp", backend).map(Arc::new);
    let (m, n) = (x.rows(), w.n());
    let task_rows = cfg.task_rows.max(1);
    let tasks = n.div_ceil(task_rows);
    let stages = cfg.stages.max(1);
    let (free_tx, free_rx) = bounded::<Vec<u32>>(stages + pool.workers() + 1);
    for _ in 0..stages {
        free_tx.send(Vec::new()).expect("prefill free ring");
    }
    let (ctx, reply_rx, epoch) =
        make_ctx(pool, x, act_scales, tasks, Some(free_tx.clone()), &metrics);
    for t in 0..tasks {
        let j0 = t * task_rows;
        let j1 = (j0 + task_rows).min(n);
        let stall = metrics.as_ref().map(|mx| &mx.stall_load);
        let mut buf = recv_counting(&free_rx, stall).expect("free ring closed");
        let load_t0 = lq_trace::enabled().then(std::time::Instant::now);
        {
            let _span = metrics.as_ref().map(|mx| mx.task_ns_load.span_owned());
            buf.clear();
            buf.extend_from_slice(w.rows_words(j0, j1));
        }
        if let Some(t0) = load_t0 {
            lq_trace::span(
                lq_trace::EventKind::StageLoad,
                lq_trace::Track::Control,
                j0 as u64,
                0,
                t0,
            );
        }
        pool.submit(Job::Dequant {
            ctx: Arc::clone(&ctx),
            j0,
            rows: j1 - j0,
            words: buf,
            quant: w.tile_dequant(j0, j1),
        });
        if let Some(mx) = &metrics {
            mx.depth_task.set(pool.queue_len() as f64);
        }
    }
    drop(ctx);
    drop(free_tx);
    collect_tiles(&reply_rx, tasks, m, n, epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::{PackedLqqLinear, PackedQoqLinear};
    use crate::reference::max_abs_diff;
    use crate::serial::{w4a8_lqq_serial, w4a8_qoq_serial};
    use lq_quant::act::QuantizedActivations;

    fn fixture(
        m: usize,
        n: usize,
        k: usize,
    ) -> (Mat<i8>, Vec<f32>, PackedLqqLinear, PackedQoqLinear) {
        let xf = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.11).sin() * 2.0);
        let wf = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.05).cos());
        let qa = QuantizedActivations::quantize(&xf, None);
        let lqq = PackedLqqLinear::quantize(&wf, 64);
        let qoq = PackedQoqLinear::quantize(&wf, 64);
        (qa.q, qa.scales, lqq, qoq)
    }

    fn cfg(task_rows: usize, stages: usize) -> ParallelConfig {
        ParallelConfig::builder()
            .task_rows(task_rows)
            .stages(stages)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn imfp_matches_serial_bit_exact() {
        let (x, s, lqq, _) = fixture(7, 33, 128);
        let want = w4a8_lqq_serial(&x, &s, &lqq);
        for workers in [1, 2, 4] {
            let pool = WorkerPool::new(workers, 16);
            let got = w4a8_imfp(&pool, &x, &s, &lqq, cfg(5, 3));
            assert_eq!(max_abs_diff(&got, &want), 0.0, "workers={workers}");
        }
    }

    #[test]
    fn excp_matches_serial_bit_exact() {
        let (x, s, lqq, _) = fixture(6, 20, 192);
        let want = w4a8_lqq_serial(&x, &s, &lqq);
        let pool = WorkerPool::new(4, 16);
        let got = w4a8_excp(&pool, &x, &s, &lqq, cfg(3, 2));
        assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn flat_matches_serial_bit_exact() {
        let (x, s, lqq, _) = fixture(5, 17, 64);
        let want = w4a8_lqq_serial(&x, &s, &lqq);
        let pool = WorkerPool::new(3, 16);
        let got = w4a8_flat_parallel(&pool, &x, &s, &lqq, cfg(4, 2));
        assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn qoq_variants_match_their_serial() {
        let (x, s, _, qoq) = fixture(4, 12, 128);
        let want = w4a8_qoq_serial(&x, &s, &qoq);
        let pool = WorkerPool::new(2, 16);
        let c = cfg(4, 2);
        for got in [
            w4a8_imfp(&pool, &x, &s, &qoq, c),
            w4a8_excp(&pool, &x, &s, &qoq, c),
            w4a8_flat_parallel(&pool, &x, &s, &qoq, c),
        ] {
            assert_eq!(max_abs_diff(&got, &want), 0.0);
        }
    }

    #[test]
    fn every_backend_runs_every_pipeline_bit_exact_vs_its_serial() {
        use lq_quant::backend::registry;
        let (x, s, _, _) = fixture(5, 22, 128);
        let wf = Mat::from_fn(22, 128, |r, c| ((r * 128 + c) as f32 * 0.05).cos());
        let pool = WorkerPool::new(3, 16);
        let c = cfg(5, 2);
        for backend in registry() {
            let packed = backend.pack(&wf, 64);
            let w = packed.as_ref();
            let want = crate::serial::w4a8_serial(&x, &s, w);
            for (name, got) in [
                ("imfp", w4a8_imfp(&pool, &x, &s, w, c)),
                ("excp", w4a8_excp(&pool, &x, &s, w, c)),
                ("flat", w4a8_flat_parallel(&pool, &x, &s, w, c)),
            ] {
                assert_eq!(
                    max_abs_diff(&got, &want),
                    0.0,
                    "backend {} variant {name}",
                    backend.id()
                );
            }
        }
    }

    #[test]
    fn task_rows_not_dividing_n_is_handled() {
        let (x, s, lqq, _) = fixture(3, 10, 64);
        let want = w4a8_lqq_serial(&x, &s, &lqq);
        let pool = WorkerPool::new(2, 16);
        let got = w4a8_imfp(&pool, &x, &s, &lqq, cfg(7, 2));
        assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn more_workers_than_tasks_is_safe() {
        let (x, s, lqq, _) = fixture(2, 4, 64);
        let want = w4a8_lqq_serial(&x, &s, &lqq);
        let pool = WorkerPool::new(16, 32);
        let got = w4a8_imfp(&pool, &x, &s, &lqq, cfg(4, 8));
        assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn one_pool_serves_interleaved_variants() {
        let (x, s, lqq, qoq) = fixture(3, 19, 128);
        let want_l = w4a8_lqq_serial(&x, &s, &lqq);
        let want_q = w4a8_qoq_serial(&x, &s, &qoq);
        let pool = WorkerPool::new(3, 8);
        let c = cfg(4, 2);
        for _ in 0..8 {
            assert_eq!(
                max_abs_diff(&w4a8_imfp(&pool, &x, &s, &lqq, c), &want_l),
                0.0
            );
            assert_eq!(
                max_abs_diff(&w4a8_excp(&pool, &x, &s, &qoq, c), &want_q),
                0.0
            );
            assert_eq!(
                max_abs_diff(&w4a8_flat_parallel(&pool, &x, &s, &lqq, c), &want_l),
                0.0
            );
        }
    }

    #[test]
    fn config_builder_validates() {
        assert!(ParallelConfig::builder().build().is_ok());
        assert_eq!(
            ParallelConfig::builder().workers(0).build(),
            Err(ConfigError::ZeroWorkers)
        );
        assert_eq!(
            ParallelConfig::builder().stages(1).build(),
            Err(ConfigError::TooFewStages(1))
        );
        assert_eq!(
            ParallelConfig::builder().task_rows(0).build(),
            Err(ConfigError::ZeroTaskRows)
        );
        // Errors render human-readable messages.
        assert!(ConfigError::TooFewStages(1).to_string().contains("got 1"));
    }
}
