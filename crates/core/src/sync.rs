//! In-tree bounded MPMC channel (std `Mutex` + `Condvar`), the
//! crossbeam replacement the pipelines run on.
//!
//! The offline build sandbox has no crates.io access, so the SMEM-ring
//! hand-offs in [`crate::pipeline`] use this ~150-line channel instead
//! of `crossbeam::channel`. Semantics match what the pipelines need:
//!
//! * bounded capacity (the "SMEM stage" count) with blocking
//!   `send`/`recv` and non-blocking `try_send`/`try_recv` — the `try_*`
//!   variants let callers count *would-block* events, which is exactly
//!   the pipeline-stall signal `lq-telemetry` exports;
//! * disconnect detection: `send` fails once every `Receiver` is gone,
//!   `recv` fails once the queue is empty and every `Sender` is gone;
//! * `len()` for queue-occupancy gauges.
//!
//! This is a convoy-prone lock-based queue, not a performance channel —
//! hand-offs here are per *task* (hundreds of rows of weights), so the
//! lock cost is noise. Do not use it for per-element traffic.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when all receivers are gone;
/// carries the unsent value back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity (would block).
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the queue is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty (would block).
    Empty,
    /// The queue is empty and all senders are gone.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when an item is pushed or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when an item is popped or the last receiver leaves.
    not_full: Condvar,
    cap: usize,
}

/// Create a bounded channel with capacity `cap` (≥ 1).
#[must_use]
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap >= 1, "capacity must be at least 1");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(cap),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Sending half; clonable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; clonable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Block until there is room, then enqueue. Fails (returning the
    /// value) once every receiver is dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().expect("channel poisoned");
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if st.queue.len() < self.shared.cap {
                st.queue.push_back(value);
                drop(st);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = self.shared.not_full.wait(st).expect("channel poisoned");
        }
    }

    /// Enqueue only if there is room right now.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.state.lock().expect("channel poisoned");
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if st.queue.len() >= self.shared.cap {
            return Err(TrySendError::Full(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Items currently queued (racy; for occupancy gauges).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty (racy).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel poisoned").senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("channel poisoned");
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until an item arrives; fails once the queue is empty and
    /// every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().expect("channel poisoned");
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.not_empty.wait(st).expect("channel poisoned");
        }
    }

    /// Dequeue only if an item is available right now.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock().expect("channel poisoned");
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking iterator over received items, ending at disconnect.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.recv().ok())
    }

    /// Items currently queued (racy; for occupancy gauges).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty (racy).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("channel poisoned");
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.len(), 4);
        assert_eq!(tx.try_send(9), Err(TrySendError::Full(9)));
        assert_eq!(
            (0..4).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        let (tx, rx) = bounded::<u32>(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn mpmc_all_items_delivered_once() {
        const PRODUCERS: usize = 3;
        const CONSUMERS: usize = 4;
        const PER: usize = 500;
        let (tx, rx) = bounded::<usize>(8);
        let received = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..PER {
                        tx.send(p * PER + i).unwrap();
                    }
                });
            }
            drop(tx);
            for _ in 0..CONSUMERS {
                let rx = rx.clone();
                let received = &received;
                s.spawn(move || {
                    let mut mine = Vec::new();
                    while let Ok(v) = rx.recv() {
                        mine.push(v);
                    }
                    received.lock().unwrap().extend(mine);
                });
            }
            drop(rx);
        });
        let mut all = received.into_inner().unwrap();
        all.sort_unstable();
        assert_eq!(all, (0..PRODUCERS * PER).collect::<Vec<_>>());
    }

    #[test]
    fn blocking_send_wakes_on_recv() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| tx.send(2).unwrap()); // blocks until the recv below
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        });
    }
}
