//! GEMM epilogue: level-1 dequantization, scale application, and the
//! `(W·Xᵀ)ᵀ` output transposition trick.
//!
//! The paper fuses the first-level dequantization (per-channel weight
//! scale × per-token activation scale) into the epilogue, where its cost
//! amortises over the whole K reduction (Section 5.3). Section 5.4's
//! shape trick — computing `Y = (W·Xᵀ)ᵀ` instead of `X·Wᵀ` — lets the
//! kernel put the *large* dimension (N) on the MMA's flexible axis when
//! the batch M is small; on the CPU the analogous decision is which
//! operand the inner loops stream.

use lq_quant::mat::Mat;

/// Scale an `M×N` i32 accumulator into f32 output:
/// `y[i][j] = acc[i][j] · act[i] · ch[j]`.
pub fn apply_scales_i32(acc: &Mat<i32>, act: &[f32], ch: &[f32], out: &mut Mat<f32>) {
    assert_eq!(acc.rows(), out.rows());
    assert_eq!(acc.cols(), out.cols());
    assert_eq!(act.len(), acc.rows());
    assert_eq!(ch.len(), acc.cols());
    for (i, &ai) in act.iter().enumerate() {
        let src = acc.row(i);
        let dst = out.row_mut(i);
        for j in 0..src.len() {
            dst[j] = src[j] as f32 * ai * ch[j];
        }
    }
}

/// Scale one accumulator column (all tokens of output channel `j`) —
/// the per-task epilogue used by the pipelined kernels, whose workers
/// own disjoint channel ranges.
pub fn apply_scales_column(acc_col: &[i32], act: &[f32], ch_scale: f32, out_col: &mut [f32]) {
    assert_eq!(acc_col.len(), act.len());
    assert_eq!(acc_col.len(), out_col.len());
    for ((o, &a), &s) in out_col.iter_mut().zip(acc_col.iter()).zip(act.iter()) {
        *o = a as f32 * s * ch_scale;
    }
}

/// Decide whether the `(W·Xᵀ)ᵀ` rewrite pays off: with M below the
/// hardware's fixed MMA height (64 on Hopper), computing with W as the
/// "activation" operand fills the tensor core's m dimension with output
/// channels instead of padding (paper, Section 5.4).
#[must_use]
pub fn should_transpose(m: usize, mma_m: usize) -> bool {
    m < mma_m
}

/// Transpose an `N×M` result into `M×N` (the final `ᵀ` of `(W·Xᵀ)ᵀ`).
#[must_use]
pub fn transpose_out(y_t: &Mat<f32>) -> Mat<f32> {
    y_t.transposed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_application() {
        let acc = Mat::from_vec(2, 3, vec![1i32, 2, 3, 4, 5, 6]);
        let mut out = Mat::zeros(2, 3);
        apply_scales_i32(&acc, &[2.0, 10.0], &[1.0, 0.5, 0.1], &mut out);
        assert_eq!(out.as_slice(), &[2.0, 2.0, 0.6, 40.0, 25.0, 6.0]);
    }

    #[test]
    fn column_scale_matches_full() {
        let acc = Mat::from_vec(3, 2, vec![1i32, 10, 2, 20, 3, 30]);
        let act = [1.0f32, 0.5, 2.0];
        let ch = [10.0f32, 0.1];
        let mut full = Mat::zeros(3, 2);
        apply_scales_i32(&acc, &act, &ch, &mut full);
        for (j, &cj) in ch.iter().enumerate() {
            let col: Vec<i32> = (0..3).map(|i| *acc.get(i, j)).collect();
            let mut out = vec![0.0f32; 3];
            apply_scales_column(&col, &act, cj, &mut out);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, *full.get(i, j));
            }
        }
    }

    #[test]
    fn transpose_decision_uses_mma_height() {
        assert!(should_transpose(4, 64));
        assert!(should_transpose(63, 64));
        assert!(!should_transpose(64, 64));
        assert!(!should_transpose(256, 64));
    }

    #[test]
    fn transpose_out_roundtrip() {
        let y_t = Mat::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let y = transpose_out(&y_t);
        assert_eq!((y.rows(), y.cols()), (2, 3));
        assert_eq!(*y.get(1, 2), *y_t.get(2, 1));
    }
}
