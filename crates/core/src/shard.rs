//! Tensor-parallel GEMM sharding across persistent pools
//! (DESIGN.md §14).
//!
//! The PR 8 router shards *requests* across replicas; this module
//! shards one *GEMM* across K independent [`LiquidGemm`] pools — the
//! CPU counterpart of multi-GPU tensor parallelism, mapped onto the
//! paper's §5.4 persistent-kernel design (N persistent pools
//! cooperating on one layer):
//!
//! * **Column parallel** ([`ShardedGemm::gemm`]): the N dimension
//!   (output channels) is split into contiguous windows, one per
//!   shard. Every shard runs the ordinary scaled kernel over a
//!   row-offset *view* of one shared pack ([`ShardView`]) and the
//!   outputs are concatenated column-wise — a deterministic
//!   all-gather. Per-channel accumulator chains are independent, so
//!   each output column is computed by exactly the same instruction
//!   sequence as the unsharded call: bit-exact by construction.
//! * **Row parallel** ([`ShardedGemm::gemm_row`]): the K dimension
//!   (reduction) is split at quant-group boundaries. Each shard
//!   computes raw i64 partial dot products over its K slice (the
//!   [`crate::pipeline`] raw drivers — no epilogue), the partials are
//!   summed in exact integer arithmetic (the all-reduce), and the
//!   single activation/channel-scale epilogue runs once on the full
//!   sum. Every per-slice partial fits i32 (`kc·128·128 < 2^31` for
//!   `K ≤ 2^17`), the i64 sum is exact, and converting to f32 once at
//!   the end is the same conversion the unsharded scatter performs —
//!   bit-exact again. An f32 all-reduce would *not* be: f32 loses
//!   integer exactness above 2^24, and float addition is not
//!   associative.
//!
//! Both collectives record `AllGather`/`AllReduce` spans (one per
//! shard, `a` = shard index, `b` = shard count) carrying the ambient
//! correlation ID, so `lq_trace::analyze::shard_collectives` can
//! attribute shard-skew wait time — the slowest-minus-fastest gap the
//! barrier pays.
//!
//! Failure semantics: an `lq-chaos` [`FaultInjector`] with a scheduled
//! shard kill ([`lq_chaos::FaultPlan::shard_kill_at`]) makes the
//! victim's pool die at its scheduled call. The sharded layer then
//! returns the typed [`ShardError::ShardFailed`] — never a partial or
//! silently wrong output — and the shard stays dead (degraded mode)
//! until the handle is rebuilt.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lq_chaos::FaultInjector;
use lq_quant::backend::{BackendId, PackedWeights, TileDequant};
use lq_quant::mat::Mat;

use crate::api::{GemmOutput, KernelKind, W4A8Weights};
use crate::pipeline::{w4a8_flat_raw, ConfigError};
use crate::runtime::{LiquidGemm, LiquidGemmBuilder};
use crate::simd::SimdVariant;

// ===========================================================================
// Packed-weight views: one full pack, per-shard windows.
// ===========================================================================

/// Column-parallel (N-offset) view over a shared pack: rows
/// `[n0, n1)` of the inner weights, presented as a standalone
/// [`PackedWeights`]. A view instead of a re-pack is what keeps every
/// backend bit-exact — the codebook backend's k-means codebook is
/// matrix-global, so packing a shard's rows alone would quantize them
/// differently.
struct ShardView {
    inner: Arc<dyn PackedWeights>,
    n0: usize,
    n1: usize,
}

impl PackedWeights for ShardView {
    fn backend(&self) -> BackendId {
        self.inner.backend()
    }

    fn n(&self) -> usize {
        self.n1 - self.n0
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn group(&self) -> usize {
        self.inner.group()
    }

    fn channel_scales(&self) -> &[f32] {
        &self.inner.channel_scales()[self.n0..self.n1]
    }

    fn rows_words(&self, r0: usize, r1: usize) -> &[u32] {
        self.inner.rows_words(self.n0 + r0, self.n0 + r1)
    }

    fn dequant_row_group(&self, row: usize, g: usize, out: &mut [i8]) {
        self.inner.dequant_row_group(self.n0 + row, g, out);
    }

    fn tile_dequant(&self, j0: usize, j1: usize) -> Box<dyn TileDequant> {
        self.inner.tile_dequant(self.n0 + j0, self.n0 + j1)
    }

    fn weight_bytes(&self) -> usize {
        // Proportional share of the shared pack.
        let n = self.inner.n().max(1);
        self.inner.weight_bytes() * (self.n1 - self.n0) / n
    }
}

/// Row-parallel (K-slice) view over a shared pack: quant groups
/// `[g0, g0 + groups)` of every row. `rows_words` still hands out
/// *full* packed rows (so the staged loop's words-per-row geometry is
/// unchanged); the wrapped [`TileDequant`] offsets every group index
/// by `g0`, which is where the slice actually happens.
struct KShardView {
    inner: Arc<dyn PackedWeights>,
    g0: usize,
    groups: usize,
}

impl PackedWeights for KShardView {
    fn backend(&self) -> BackendId {
        self.inner.backend()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn k(&self) -> usize {
        self.groups * self.inner.group()
    }

    fn group(&self) -> usize {
        self.inner.group()
    }

    fn channel_scales(&self) -> &[f32] {
        self.inner.channel_scales()
    }

    fn rows_words(&self, r0: usize, r1: usize) -> &[u32] {
        self.inner.rows_words(r0, r1)
    }

    fn dequant_row_group(&self, row: usize, g: usize, out: &mut [i8]) {
        self.inner.dequant_row_group(row, self.g0 + g, out);
    }

    fn tile_dequant(&self, j0: usize, j1: usize) -> Box<dyn TileDequant> {
        Box::new(KShardTile {
            inner: self.inner.tile_dequant(j0, j1),
            g0: self.g0,
            k: self.k(),
        })
    }

    fn weight_bytes(&self) -> usize {
        let k = self.inner.k().max(1);
        self.inner.weight_bytes() * self.k() / k
    }
}

/// [`TileDequant`] wrapper that shifts group indices by the K-slice
/// offset and reports the slice length as `k()`.
struct KShardTile {
    inner: Box<dyn TileDequant>,
    g0: usize,
    k: usize,
}

impl TileDequant for KShardTile {
    fn k(&self) -> usize {
        self.k
    }

    fn group(&self) -> usize {
        self.inner.group()
    }

    fn channel_scales(&self) -> &[f32] {
        self.inner.channel_scales()
    }

    fn dequant_group(&self, words: &[u32], j_rel: usize, g: usize, out: &mut [i8]) {
        self.inner.dequant_group(words, j_rel, self.g0 + g, out);
    }
}

// ===========================================================================
// ShardedWeights — one pack plus the column/row split plans.
// ===========================================================================

/// Weights packed once (full matrix, by the configured backend) plus
/// the deterministic column and row split plans for a fixed shard
/// count. Cheap to clone (`Arc` inside).
#[derive(Clone)]
pub struct ShardedWeights {
    packed: Arc<dyn PackedWeights>,
    /// Column plan: shard `s` owns output channels `[col[s].0, col[s].1)`.
    col: Vec<(usize, usize)>,
    /// Row plan: shard `s` owns quant groups `[row[s].0, row[s].0 + row[s].1)`.
    row: Vec<(usize, usize)>,
}

/// Split `total` items into `parts` contiguous balanced windows: the
/// first `total % parts` windows get one extra item. Deterministic —
/// the concat/all-gather order is the plan order.
fn balanced_plan(total: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = total / parts;
    let extra = total % parts;
    let mut plan = Vec::with_capacity(parts);
    let mut at = 0;
    for s in 0..parts {
        let len = base + usize::from(s < extra);
        plan.push((at, at + len));
        at += len;
    }
    plan
}

impl ShardedWeights {
    /// Wrap an already-packed weight handle with split plans for
    /// `shards` shards. Columns split anywhere; rows split at quant
    /// group boundaries (`k` must be a multiple of `group`, which
    /// every registered backend already requires).
    #[must_use]
    pub fn from_weights(w: &W4A8Weights, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let packed = w.packed();
        let col = balanced_plan(packed.n(), shards);
        let groups = packed.k() / packed.group();
        let row = balanced_plan(groups, shards)
            .into_iter()
            .map(|(g0, g1)| (g0, g1 - g0))
            .collect();
        Self { packed, col, row }
    }

    /// Output channels (full, unsharded N).
    #[must_use]
    pub fn n(&self) -> usize {
        self.packed.n()
    }

    /// Reduction dim (full, unsharded K).
    #[must_use]
    pub fn k(&self) -> usize {
        self.packed.k()
    }

    /// Quantization group size along K.
    #[must_use]
    pub fn group(&self) -> usize {
        self.packed.group()
    }

    /// Which backend packed the shared representation.
    #[must_use]
    pub fn backend(&self) -> BackendId {
        self.packed.backend()
    }

    /// Shard count the plans were computed for.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.col.len()
    }

    /// Column window `[n0, n1)` of shard `s` (may be empty when
    /// `N < shards`).
    #[must_use]
    pub fn col_range(&self, s: usize) -> (usize, usize) {
        self.col[s]
    }
}

impl fmt::Debug for ShardedWeights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedWeights")
            .field("backend", &self.packed.backend())
            .field("n", &self.packed.n())
            .field("k", &self.packed.k())
            .field("shards", &self.col.len())
            .finish()
    }
}

// ===========================================================================
// ShardedGemm — K pools, one layer.
// ===========================================================================

/// A tensor-parallel GEMM call failed because a shard pool is dead.
///
/// The output is never partially populated: either every shard
/// contributed, or the caller gets this error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// Shard `shard`'s pool was killed (chaos) or panicked; the layer
    /// runs degraded until rebuilt.
    ShardFailed {
        /// Index of the dead shard.
        shard: usize,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::ShardFailed { shard } => {
                write!(f, "tensor-parallel shard {shard} failed (pool dead)")
            }
        }
    }
}

impl std::error::Error for ShardError {}

struct ShardSlot {
    gemm: LiquidGemm,
    /// Flips false on the first failure and stays false: a dead shard
    /// never silently rejoins with stale state.
    alive: AtomicBool,
}

/// Column/row-parallel GEMM layer over `shards` independent
/// [`LiquidGemm`] pools.
///
/// ```
/// use lq_core::shard::ShardedGemm;
/// use lq_core::KernelKind;
/// use lq_quant::act::QuantizedActivations;
/// use lq_quant::mat::Mat;
///
/// let w = Mat::from_fn(24, 128, |r, c| ((r * 128 + c) as f32 * 0.05).cos());
/// let x = Mat::from_fn(3, 128, |r, c| ((r * 128 + c) as f32 * 0.1).sin());
/// let qa = QuantizedActivations::quantize(&x, None);
/// let tp = ShardedGemm::builder()
///     .shards(2)
///     .workers_per_shard(2)
///     .build()
///     .unwrap();
/// let sw = tp.pack_weights(&w, 64);
/// let y = tp.gemm(&qa.q, &qa.scales, &sw, KernelKind::ImFp).unwrap().y;
/// assert_eq!((y.rows(), y.cols()), (3, 24));
/// ```
pub struct ShardedGemm {
    shards: Vec<ShardSlot>,
    fault: Option<Arc<FaultInjector>>,
}

impl ShardedGemm {
    /// Start configuring a sharded layer.
    #[must_use]
    pub fn builder() -> ShardedGemmBuilder {
        ShardedGemmBuilder::default()
    }

    /// Shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `s`'s pool handle (bench/telemetry access — per-shard
    /// worker stats, busy-balance audits).
    #[must_use]
    pub fn shard_pool(&self, s: usize) -> &LiquidGemm {
        &self.shards[s].gemm
    }

    /// How many shards are still alive (== [`ShardedGemm::shards`]
    /// unless chaos killed one).
    #[must_use]
    pub fn live_shards(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.alive.load(Ordering::Acquire))
            .count()
    }

    /// Pack FP32 weights once with shard 0's configured backend and
    /// compute the split plans for this layer's shard count.
    #[must_use]
    pub fn pack_weights(&self, w: &Mat<f32>, group: usize) -> ShardedWeights {
        let packed = W4A8Weights::quantize(w, group, self.shards[0].gemm.backend());
        ShardedWeights::from_weights(&packed, self.shards())
    }

    /// Consult liveness + the chaos shard-kill site for shard `s` at
    /// one sharded call. Returns false when the shard must not run.
    fn shard_ok(&self, s: usize) -> bool {
        let slot = &self.shards[s];
        if !slot.alive.load(Ordering::Acquire) {
            return false;
        }
        if let Some(f) = &self.fault {
            if f.on_shard_call(s as u64) {
                slot.alive.store(false, Ordering::Release);
                return false;
            }
        }
        true
    }

    /// Column-parallel `Y = X·Wᵀ`: each shard computes its window of
    /// output channels on its own pool (concurrently), and the windows
    /// concatenate into the full `M×N` output — the all-gather.
    /// Bit-exact vs the unsharded [`LiquidGemm::gemm`] for every
    /// backend, microkernel variant, and pipeline kind.
    ///
    /// # Errors
    /// [`ShardError::ShardFailed`] if any shard is dead or dies during
    /// the call; the output is never partially populated.
    pub fn gemm(
        &self,
        x: &Mat<i8>,
        act_scales: &[f32],
        w: &ShardedWeights,
        kind: KernelKind,
    ) -> Result<GemmOutput, ShardError> {
        assert_eq!(x.cols(), w.k(), "K mismatch");
        assert_eq!(w.shards(), self.shards(), "plan/layer shard count");
        let m = x.rows();
        let n = w.n();
        let count = self.shards() as u64;
        let corr = lq_trace::current_corr();
        let parts: Vec<Result<Mat<f32>, ShardError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.shards())
                .map(|s| {
                    let (n0, n1) = w.col_range(s);
                    let packed = Arc::clone(&w.packed);
                    scope.spawn(move || {
                        if !self.shard_ok(s) {
                            return Err(ShardError::ShardFailed { shard: s });
                        }
                        let t0 = std::time::Instant::now();
                        let view = W4A8Weights::from_arc(Arc::new(ShardView {
                            inner: packed,
                            n0,
                            n1,
                        }));
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            self.shards[s].gemm.gemm(x, act_scales, &view, kind).y
                        }));
                        lq_trace::span_full(
                            lq_trace::EventKind::AllGather,
                            lq_trace::Track::Control,
                            corr,
                            s as u64,
                            count,
                            t0,
                            0,
                        );
                        out.map_err(|_| {
                            self.shards[s].alive.store(false, Ordering::Release);
                            ShardError::ShardFailed { shard: s }
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard driver thread never panics"))
                .collect()
        });
        // All-gather: deterministic column concat in plan order. Fail
        // the whole call before touching the output if any shard died.
        let mut y = Mat::zeros(m, n);
        for (s, part) in parts.iter().enumerate() {
            if part.is_err() {
                return Err(ShardError::ShardFailed { shard: s });
            }
        }
        for (s, part) in parts.into_iter().enumerate() {
            let part = part.expect("checked above");
            let (n0, _) = w.col_range(s);
            for i in 0..m {
                let src = part.row(i);
                y.row_mut(i)[n0..n0 + src.len()].copy_from_slice(src);
            }
        }
        Ok(GemmOutput { y })
    }

    /// Row-parallel `Y = X·Wᵀ` (the FFN down-projection split): each
    /// shard computes exact i64 partial dot products over its K slice
    /// (quant-group aligned) on its own pool, the partials all-reduce
    /// by exact integer summation, and the activation/channel epilogue
    /// runs once on the full sums — bit-exact vs the unsharded kernel.
    ///
    /// Runs the flat raw driver on every shard pool (pipeline choice
    /// does not apply: there is no per-shard epilogue to overlap).
    ///
    /// # Errors
    /// [`ShardError::ShardFailed`] if any shard is dead or dies during
    /// the call; the output is never partially populated.
    pub fn gemm_row(
        &self,
        x: &Mat<i8>,
        act_scales: &[f32],
        w: &ShardedWeights,
    ) -> Result<GemmOutput, ShardError> {
        assert_eq!(x.cols(), w.k(), "K mismatch");
        assert_eq!(act_scales.len(), x.rows(), "one scale per token");
        assert_eq!(w.shards(), self.shards(), "plan/layer shard count");
        let (m, n) = (x.rows(), w.n());
        let group = w.group();
        let count = self.shards() as u64;
        let corr = lq_trace::current_corr();
        let parts: Vec<Result<Option<Vec<i64>>, ShardError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.shards())
                .map(|s| {
                    let (g0, groups) = w.row[s];
                    let packed = Arc::clone(&w.packed);
                    scope.spawn(move || {
                        if !self.shard_ok(s) {
                            return Err(ShardError::ShardFailed { shard: s });
                        }
                        if groups == 0 {
                            // More shards than quant groups: an empty
                            // slice contributes an exact zero — but it
                            // still joins the barrier, so it records a
                            // zero-work span to keep the collective's
                            // span group complete.
                            lq_trace::span_full(
                                lq_trace::EventKind::AllReduce,
                                lq_trace::Track::Control,
                                corr,
                                s as u64,
                                count,
                                std::time::Instant::now(),
                                0,
                            );
                            return Ok(None);
                        }
                        let t0 = std::time::Instant::now();
                        let k0 = g0 * group;
                        let ks = groups * group;
                        // Slice the activations' K columns for this
                        // shard; per-token scales stay K-global and are
                        // applied once after the reduce.
                        let xs = Mat::from_fn(m, ks, |r, c| x.row(r)[k0 + c]);
                        let view = KShardView {
                            inner: packed,
                            g0,
                            groups,
                        };
                        let lg = &self.shards[s].gemm;
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            w4a8_flat_raw(lg.pool(), &xs, &view, lg.config())
                        }));
                        lq_trace::span_full(
                            lq_trace::EventKind::AllReduce,
                            lq_trace::Track::Control,
                            corr,
                            s as u64,
                            count,
                            t0,
                            0,
                        );
                        match out {
                            Ok(v) => Ok(Some(v)),
                            Err(_) => {
                                self.shards[s].alive.store(false, Ordering::Release);
                                Err(ShardError::ShardFailed { shard: s })
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard driver thread never panics"))
                .collect()
        });
        // Exact all-reduce: i64 sums, order-independent, then one
        // epilogue — the same `(Σ as f32) · act · ch` the unsharded
        // scatter performs.
        let mut acc = vec![0i64; n * m];
        for (s, part) in parts.iter().enumerate() {
            if part.is_err() {
                return Err(ShardError::ShardFailed { shard: s });
            }
        }
        for part in parts.into_iter().flatten().flatten() {
            for (a, p) in acc.iter_mut().zip(part) {
                *a += p;
            }
        }
        let ch = w.packed.channel_scales();
        let mut y = Mat::zeros(m, n);
        for j in 0..n {
            for i in 0..m {
                let s = acc[j * m + i];
                debug_assert!(
                    i32::try_from(s).is_ok(),
                    "i8 GEMM accumulator exceeded i32 (K > 2^17?)"
                );
                y.set(i, j, s as f32 * act_scales[i] * ch[j]);
            }
        }
        Ok(GemmOutput { y })
    }
}

// ===========================================================================
// Builder.
// ===========================================================================

/// Invalid [`ShardedGemm::builder`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardConfigError {
    /// `shards == 0`.
    ZeroShards,
    /// A per-shard pool rejected its configuration.
    Pool(ConfigError),
}

impl fmt::Display for ShardConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardConfigError::ZeroShards => write!(f, "shards must be >= 1"),
            ShardConfigError::Pool(e) => write!(f, "shard pool: {e}"),
        }
    }
}

impl std::error::Error for ShardConfigError {}

impl From<ConfigError> for ShardConfigError {
    fn from(e: ConfigError) -> Self {
        ShardConfigError::Pool(e)
    }
}

/// Builder for [`ShardedGemm`] — mirrors [`LiquidGemm::builder`] with
/// per-shard pool parameters.
pub struct ShardedGemmBuilder {
    shards: usize,
    workers_per_shard: usize,
    task_rows: usize,
    backend: BackendId,
    force_microkernel: Option<SimdVariant>,
    fault: Option<Arc<FaultInjector>>,
}

impl Default for ShardedGemmBuilder {
    fn default() -> Self {
        Self {
            shards: 2,
            workers_per_shard: 2,
            task_rows: 8,
            backend: BackendId::Lqq,
            force_microkernel: None,
            fault: None,
        }
    }
}

impl ShardedGemmBuilder {
    /// Number of independent shard pools (default 2).
    #[must_use]
    pub fn shards(mut self, s: usize) -> Self {
        self.shards = s;
        self
    }

    /// Worker threads per shard pool (default 2).
    #[must_use]
    pub fn workers_per_shard(mut self, w: usize) -> Self {
        self.workers_per_shard = w;
        self
    }

    /// Output-channel rows per tile job within each shard (default 8).
    #[must_use]
    pub fn task_rows(mut self, r: usize) -> Self {
        self.task_rows = r;
        self
    }

    /// Dequant backend [`ShardedGemm::pack_weights`] uses (default
    /// LQQ).
    #[must_use]
    pub fn backend(mut self, id: BackendId) -> Self {
        self.backend = id;
        self
    }

    /// Force a microkernel variant on every shard pool (tests).
    #[must_use]
    pub fn force_microkernel(mut self, v: SimdVariant) -> Self {
        self.force_microkernel = Some(v);
        self
    }

    /// Attach a chaos injector: its shard-kill site governs shard
    /// death ([`lq_chaos::FaultInjector::on_shard_call`]).
    #[must_use]
    pub fn fault_injector(mut self, f: Arc<FaultInjector>) -> Self {
        self.fault = Some(f);
        self
    }

    /// Build the shard pools.
    ///
    /// # Errors
    /// [`ShardConfigError`] on zero shards or invalid per-pool
    /// parameters.
    pub fn build(self) -> Result<ShardedGemm, ShardConfigError> {
        if self.shards == 0 {
            return Err(ShardConfigError::ZeroShards);
        }
        let mut shards = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            let mut b: LiquidGemmBuilder = LiquidGemm::builder()
                .workers(self.workers_per_shard)
                .task_rows(self.task_rows)
                .backend(self.backend);
            if let Some(v) = self.force_microkernel {
                b = b.force_microkernel(v);
            }
            shards.push(ShardSlot {
                gemm: b.build()?,
                alive: AtomicBool::new(true),
            });
        }
        Ok(ShardedGemm {
            shards,
            fault: self.fault,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::max_abs_diff;
    use lq_chaos::FaultPlan;
    use lq_quant::act::QuantizedActivations;

    fn fixture(m: usize, n: usize, k: usize) -> (Mat<i8>, Vec<f32>, Mat<f32>) {
        let xf = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.13).sin() * 1.5);
        let wf = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.04).cos());
        let qa = QuantizedActivations::quantize(&xf, None);
        (qa.q, qa.scales, wf)
    }

    #[test]
    fn column_parallel_is_bit_exact_vs_unsharded() {
        let (x, s, wf) = fixture(5, 37, 128);
        let lg = LiquidGemm::builder().workers(2).build().unwrap();
        let w1 = lg.pack_weights(&wf, 64);
        let want = lg.gemm(&x, &s, &w1, KernelKind::ImFp).y;
        for shards in [1usize, 2, 3, 4] {
            let tp = ShardedGemm::builder()
                .shards(shards)
                .workers_per_shard(2)
                .build()
                .unwrap();
            let sw = tp.pack_weights(&wf, 64);
            let y = tp.gemm(&x, &s, &sw, KernelKind::ImFp).unwrap().y;
            assert_eq!(max_abs_diff(&y, &want), 0.0, "shards={shards}");
        }
    }

    #[test]
    fn row_parallel_is_bit_exact_vs_unsharded() {
        let (x, s, wf) = fixture(4, 19, 256);
        let lg = LiquidGemm::builder().workers(2).build().unwrap();
        let w1 = lg.pack_weights(&wf, 64);
        let want = lg.gemm(&x, &s, &w1, KernelKind::ImFp).y;
        for shards in [1usize, 2, 3, 4] {
            let tp = ShardedGemm::builder()
                .shards(shards)
                .workers_per_shard(2)
                .build()
                .unwrap();
            let sw = tp.pack_weights(&wf, 64);
            let y = tp.gemm_row(&x, &s, &sw).unwrap().y;
            assert_eq!(max_abs_diff(&y, &want), 0.0, "shards={shards}");
        }
    }

    #[test]
    fn more_shards_than_groups_still_exact() {
        // K=128, group=64 → 2 groups across 4 shards: two empty slices.
        let (x, s, wf) = fixture(3, 9, 128);
        let lg = LiquidGemm::builder().workers(1).build().unwrap();
        let want = lg
            .gemm(&x, &s, &lg.pack_weights(&wf, 64), KernelKind::ImFp)
            .y;
        let tp = ShardedGemm::builder()
            .shards(4)
            .workers_per_shard(1)
            .build()
            .unwrap();
        let sw = tp.pack_weights(&wf, 64);
        assert_eq!(
            max_abs_diff(&tp.gemm_row(&x, &s, &sw).unwrap().y, &want),
            0.0
        );
    }

    #[test]
    fn killed_shard_surfaces_typed_error_and_stays_dead() {
        let (x, s, wf) = fixture(2, 16, 128);
        let inj = Arc::new(FaultInjector::new(FaultPlan::quiet().shard_kill_at(1, 1)));
        let tp = ShardedGemm::builder()
            .shards(2)
            .workers_per_shard(1)
            .fault_injector(Arc::clone(&inj))
            .build()
            .unwrap();
        let sw = tp.pack_weights(&wf, 64);
        // Call 0 succeeds; call 1 kills shard 1; later calls stay dead.
        assert!(tp.gemm(&x, &s, &sw, KernelKind::ImFp).is_ok());
        assert_eq!(
            tp.gemm(&x, &s, &sw, KernelKind::ImFp).err(),
            Some(ShardError::ShardFailed { shard: 1 })
        );
        assert_eq!(inj.stats().shard_kills, 1);
        assert_eq!(tp.live_shards(), 1);
        assert_eq!(
            tp.gemm_row(&x, &s, &sw).err(),
            Some(ShardError::ShardFailed { shard: 1 })
        );
    }

    #[test]
    fn zero_shards_is_a_config_error() {
        assert_eq!(
            ShardedGemm::builder().shards(0).build().err(),
            Some(ShardConfigError::ZeroShards)
        );
    }
}
