//! Single-threaded GEMM kernels for every precision under study.
//!
//! These are the ablation's "no pipeline" variants and the correctness
//! anchors for the parallel kernels. All share the same loop structure —
//! per output channel, per K-group: (dequantize if needed) then a
//! batched dot against all tokens — so the *only* difference between
//! `w4a8_lqq_serial` and `w4a8_qoq_serial` is the dequantization
//! microkernel, making the LQQ-vs-QoQ benchmark a pure algorithm
//! comparison, exactly like the paper's Figure 13 "+LQQ" ablation.
//!
//! Integer kernels are bit-exact against `reference::gemm_i8_ref` on the
//! dequantized weights; float kernels match to rounding tolerance.

use lq_quant::backend::PackedWeights;
use lq_quant::fp8::decode_lut;
use lq_quant::mat::Mat;

use crate::microkernel::{dequant_group_lqq, dot_f32, APanels, MicrokernelSet};
use crate::packed::{
    Fp16Linear, Fp8Linear, PackedLqqLinear, PackedQoqLinear, W4A16Linear, W8A8Linear,
};
use crate::simd;

/// Largest group size the stack-allocated dequant buffer supports
/// (defined next to the backend traits; re-exported for kernel users).
pub use lq_quant::backend::MAX_GROUP;

/// Scatter a strip accumulator into output columns `jb..jb+nr` with
/// the epilogue scales applied.
#[inline]
pub(crate) fn write_strip(
    mk: MicrokernelSet,
    out: &mut Mat<f32>,
    jb: usize,
    nr: usize,
    a: &APanels,
    acc: &[i32],
    scales: (&[f32], &[f32]),
) {
    let (act_scales, ch) = scales;
    let mut col = vec![0.0f32; a.m()];
    for r in 0..nr {
        mk.scatter(a, acc, r, act_scales, ch[jb + r], &mut col);
        for (i, &v) in col.iter().enumerate() {
            out.set(i, jb + r, v);
        }
    }
}

/// W4A8 serial kernel over any registered backend with the process-wide
/// microkernel family ([`MicrokernelSet::global`]).
///
/// The loop structure, accumulation order, and epilogue are identical
/// for every backend, so two backends that dequantize to the same INT8
/// tile bytes produce bit-identical outputs.
#[must_use]
pub fn w4a8_serial(x: &Mat<i8>, act_scales: &[f32], w: &dyn PackedWeights) -> Mat<f32> {
    w4a8_serial_with(MicrokernelSet::global(), x, act_scales, w)
}

/// W4A8 serial kernel over any registered backend and an explicit
/// microkernel family: per `strip_width()`-channel strip, per K block
/// ([`MicrokernelSet::kc_block`] — one group for the scalar family, an
/// L1-sized run of groups for the SIMD ones), the backend's
/// dequantization fills a staging buffer that is immediately consumed
/// by the register-tile microkernel (the ImFP data path, minus the
/// parallelism). The packed source words for each strip are
/// software-prefetched one K block ahead of the dequant walk.
#[must_use]
pub fn w4a8_serial_with(
    mk: MicrokernelSet,
    x: &Mat<i8>,
    act_scales: &[f32],
    w: &dyn PackedWeights,
) -> Mat<f32> {
    let (n, k, group) = (w.n(), w.k(), w.group());
    assert_eq!(x.cols(), k, "K mismatch");
    assert_eq!(act_scales.len(), x.rows(), "one scale per token");
    assert!(group <= MAX_GROUP, "group size exceeds MAX_GROUP");
    let ch = w.channel_scales();
    let a = APanels::pack(x);
    let m = x.rows();
    mk.record_dispatch(m);
    let mut out = Mat::zeros(m, n);
    let strip = mk.strip_width();
    let kcb = mk.kc_block(group, k);
    let mut wbuf = vec![0i8; strip * kcb];
    let mut acc = vec![0i32; mk.acc_len(&a)];
    for jb in (0..n).step_by(strip) {
        let nr = strip.min(n - jb);
        acc.fill(0);
        let words = w.rows_words(jb, jb + nr);
        let wpr = words.len() / nr.max(1);
        let mut k0 = 0usize;
        while k0 < k {
            let kc = kcb.min(k - k0);
            if nr < strip {
                // Unused strip rows stay zero at the current row stride:
                // they multiply into chains the writeback never reads.
                wbuf.fill(0);
            }
            // Hint the *next* K block's packed words into cache while
            // this block dequantizes and reduces.
            for r in 0..nr {
                simd::prefetch_read(words, r * wpr + wpr * (k0 + kc) / k.max(1));
            }
            let g0 = k0 / group;
            for r in 0..nr {
                let dst = &mut wbuf[r * kc..(r + 1) * kc];
                for (gg, chunk) in dst.chunks_mut(group).enumerate() {
                    w.dequant_row_group(jb + r, g0 + gg, chunk);
                }
            }
            mk.accumulate(&a, k0, kc, &wbuf[..strip * kc], &mut acc);
            k0 += kc;
        }
        write_strip(mk, &mut out, jb, nr, &a, &acc, (act_scales, ch));
    }
    out
}

/// LiquidGEMM W4A8, serial: the generic strip kernel driven by the LQQ
/// two-instruction sweet dequantization.
#[must_use]
pub fn w4a8_lqq_serial(x: &Mat<i8>, act_scales: &[f32], w: &PackedLqqLinear) -> Mat<f32> {
    w4a8_serial(x, act_scales, w)
}

/// QServe-baseline W4A8, serial: identical loop structure, but each
/// group goes through the emulated-`vsub4` dequantization (19 ops per 8
/// elements instead of 7).
#[must_use]
pub fn w4a8_qoq_serial(x: &Mat<i8>, act_scales: &[f32], w: &PackedQoqLinear) -> Mat<f32> {
    w4a8_serial(x, act_scales, w)
}

/// W8A8, serial: the symmetric-GEMM baseline — no dequantization in the
/// main loop at all (paper, Figure 3 right). The weight matrix is
/// row-major, so a full NR-row strip feeds the microkernel in place.
#[must_use]
pub fn w8a8_serial(x: &Mat<i8>, act_scales: &[f32], w: &W8A8Linear) -> Mat<f32> {
    assert_eq!(x.cols(), w.q.cols(), "K mismatch");
    assert_eq!(act_scales.len(), x.rows(), "one scale per token");
    let mk = MicrokernelSet::global();
    let a = APanels::pack(x);
    let (m, k, n) = (x.rows(), x.cols(), w.q.rows());
    mk.record_dispatch(m);
    let strip = mk.strip_width();
    let mut out = Mat::zeros(m, n);
    let mut acc = vec![0i32; mk.acc_len(&a)];
    let mut pad = vec![0i8; strip * k];
    for jb in (0..n).step_by(strip) {
        let nr = strip.min(n - jb);
        acc.fill(0);
        if nr == strip {
            let block = &w.q.as_slice()[jb * k..(jb + strip) * k];
            mk.accumulate(&a, 0, k, block, &mut acc);
        } else {
            pad[..nr * k].copy_from_slice(&w.q.as_slice()[jb * k..(jb + nr) * k]);
            pad[nr * k..].fill(0);
            mk.accumulate(&a, 0, k, &pad, &mut acc);
        }
        write_strip(
            mk,
            &mut out,
            jb,
            nr,
            &a,
            &acc,
            (act_scales, &w.channel_scales),
        );
    }
    out
}

/// W4A16, serial: UINT4 weights dequantized to f32 in the main loop
/// (two levels fused), f32 activations, f32 accumulation.
#[must_use]
pub fn w4a16_serial(x: &Mat<f32>, w: &W4A16Linear) -> Mat<f32> {
    let p = &w.packed;
    assert_eq!(x.cols(), p.k, "K mismatch");
    assert!(p.group <= MAX_GROUP, "group size exceeds MAX_GROUP");
    let m = x.rows();
    let mut out = Mat::zeros(m, p.n);
    let mut ibuf = [0i8; MAX_GROUP];
    let mut fbuf = [0.0f32; MAX_GROUP];
    let mut acc = vec![0.0f32; m];
    for j in 0..p.n {
        acc.fill(0.0);
        let ch = p.channel_scales[j];
        for g in 0..p.groups_per_row() {
            let params = p.group_params(j, g);
            dequant_group_lqq(p.group_words(j, g), params, &mut ibuf[..p.group]);
            for (f, &i8v) in fbuf[..p.group].iter_mut().zip(ibuf[..p.group].iter()) {
                *f = f32::from(i8v) * ch;
            }
            let k0 = g * p.group;
            for (i, a) in acc.iter_mut().enumerate() {
                *a += dot_f32(&fbuf[..p.group], &x.row(i)[k0..k0 + p.group]);
            }
        }
        for (i, &a) in acc.iter().enumerate() {
            out.set(i, j, a);
        }
    }
    out
}

/// FP16 baseline, serial: binary16 weights decoded on the fly, f32 math.
#[must_use]
pub fn fp16_serial(x: &Mat<f32>, w: &Fp16Linear) -> Mat<f32> {
    assert_eq!(x.cols(), w.k, "K mismatch");
    let m = x.rows();
    let mut out = Mat::zeros(m, w.n);
    let mut frow = vec![0.0f32; w.k];
    for j in 0..w.n {
        for (f, h) in frow.iter_mut().zip(w.row(j).iter()) {
            *f = h.to_f32();
        }
        for i in 0..m {
            out.set(i, j, dot_f32(&frow, x.row(i)));
        }
    }
    out
}

/// FP8 (E4M3) baseline, serial: table-decoded weights, f32 math,
/// per-channel scale in the epilogue.
#[must_use]
pub fn fp8_serial(x: &Mat<f32>, w: &Fp8Linear) -> Mat<f32> {
    assert_eq!(x.cols(), w.k, "K mismatch");
    let lut = decode_lut();
    let m = x.rows();
    let mut out = Mat::zeros(m, w.n);
    let mut frow = vec![0.0f32; w.k];
    for j in 0..w.n {
        for (f, &c) in frow.iter_mut().zip(w.row(j).iter()) {
            *f = lut[c as usize];
        }
        let ch = w.channel_scales[j];
        for i in 0..m {
            out.set(i, j, dot_f32(&frow, x.row(i)) * ch);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{epilogue_ref, gemm_f32_ref, gemm_i8_ref, max_abs_diff};
    use lq_quant::act::QuantizedActivations;
    use lq_quant::weights::{QuantScheme, QuantizedLinear};

    fn fixture(m: usize, n: usize, k: usize) -> (Mat<f32>, Mat<f32>) {
        let x = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.13).sin() * 1.5);
        let w = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.07).cos() * 0.8);
        (x, w)
    }

    fn quantized_inputs(m: usize, k: usize) -> (Mat<i8>, Vec<f32>) {
        let (x, _) = fixture(m, 8, k);
        let qa = QuantizedActivations::quantize(&x, None);
        (qa.q, qa.scales)
    }

    #[test]
    fn lqq_serial_is_bit_exact_vs_reference() {
        let (m, n, k) = (5, 7, 128);
        let (_, wf) = fixture(m, n, k);
        let (xq, xs) = quantized_inputs(m, k);
        let q = QuantizedLinear::quantize(&wf, 64, QuantScheme::Lqq, None);
        let p = PackedLqqLinear::from_quantized(&q);
        let got = w4a8_lqq_serial(&xq, &xs, &p);
        // Oracle: dequantize to i8, integer GEMM, epilogue.
        let w_i8 = q.dequant_to_i8();
        let acc = gemm_i8_ref(&xq, &w_i8);
        let ch: Vec<f32> = q.channel_scales.iter().map(|s| s.scale).collect();
        let want = epilogue_ref(&acc, &xs, &ch);
        assert_eq!(max_abs_diff(&got, &want), 0.0, "must be bit-exact");
    }

    #[test]
    fn qoq_serial_is_bit_exact_vs_reference() {
        let (m, n, k) = (6, 4, 192);
        let (_, wf) = fixture(m, n, k);
        let (xq, xs) = quantized_inputs(m, k);
        let q = QuantizedLinear::quantize(&wf, 64, QuantScheme::Qoq, None);
        let p = PackedQoqLinear::from_quantized(&q);
        let got = w4a8_qoq_serial(&xq, &xs, &p);
        let w_i8 = q.dequant_to_i8();
        let acc = gemm_i8_ref(&xq, &w_i8);
        let ch: Vec<f32> = q.channel_scales.iter().map(|s| s.scale).collect();
        let want = epilogue_ref(&acc, &xs, &ch);
        assert_eq!(max_abs_diff(&got, &want), 0.0, "must be bit-exact");
    }

    #[test]
    fn w8a8_serial_matches_reference() {
        let (m, n, k) = (4, 6, 96);
        let (_, wf) = fixture(m, n, k);
        let (xq, xs) = quantized_inputs(m, k);
        let w = W8A8Linear::quantize(&wf);
        let got = w8a8_serial(&xq, &xs, &w);
        let acc = gemm_i8_ref(&xq, &w.q);
        let want = epilogue_ref(&acc, &xs, &w.channel_scales);
        assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn w4a16_serial_matches_dequantized_f32_gemm() {
        let (m, n, k) = (3, 5, 128);
        let (x, wf) = fixture(m, n, k);
        let w = W4A16Linear::quantize(&wf, 64);
        let got = w4a16_serial(&x, &w);
        // Oracle: full dequant to f32, then f32 GEMM.
        let q = QuantizedLinear::quantize(&wf, 64, QuantScheme::Lqq, None);
        let want = gemm_f32_ref(&x, &q.dequant_to_f32());
        assert!(max_abs_diff(&got, &want) < 1e-3);
    }

    #[test]
    fn fp16_serial_close_to_f32_gemm() {
        let (m, n, k) = (4, 4, 64);
        let (x, wf) = fixture(m, n, k);
        let w = Fp16Linear::encode(&wf);
        let got = fp16_serial(&x, &w);
        let want = gemm_f32_ref(&x, &wf);
        // binary16 weights: relative error ~2^-11 per element.
        assert!(max_abs_diff(&got, &want) < 0.05);
    }

    #[test]
    fn fp8_serial_close_to_f32_gemm() {
        let (m, n, k) = (4, 4, 64);
        let (x, wf) = fixture(m, n, k);
        let w = Fp8Linear::encode(&wf);
        let got = fp8_serial(&x, &w);
        let want = gemm_f32_ref(&x, &wf);
        // E4M3: ~6% relative per element; K=64 accumulation averages out.
        assert!(max_abs_diff(&got, &want) < 1.0);
    }

    #[test]
    fn lqq_and_qoq_kernels_land_close_to_fp_output() {
        // The two second-level grids have the same step but different
        // anchors, so outputs differ slightly; both must stay within
        // quantization distance of the FP oracle and of each other.
        let (m, n, k) = (3, 4, 64);
        let (x, wf) = fixture(m, n, k);
        let (xq, xs) = quantized_inputs(m, k);
        let lqq = PackedLqqLinear::quantize(&wf, 64);
        let qoq = PackedQoqLinear::quantize(&wf, 64);
        let a = w4a8_lqq_serial(&xq, &xs, &lqq);
        let b = w4a8_qoq_serial(&xq, &xs, &qoq);
        let ideal = gemm_f32_ref(&x, &wf);
        let scale_of_outputs = ideal
            .as_slice()
            .iter()
            .fold(0.0f32, |mx, v| mx.max(v.abs()));
        let tol = scale_of_outputs * 0.25;
        assert!(
            max_abs_diff(&a, &ideal) < tol,
            "lqq {}",
            max_abs_diff(&a, &ideal)
        );
        assert!(
            max_abs_diff(&b, &ideal) < tol,
            "qoq {}",
            max_abs_diff(&b, &ideal)
        );
        assert!(max_abs_diff(&a, &b) < tol);
    }

    #[test]
    fn lut_serial_is_bit_exact_vs_lqq_serial() {
        // LUT tables reproduce the SWAR register bytes exactly, so the
        // generic kernel over a LUT-packed linear must match the LQQ
        // path bit-for-bit.
        let (m, n, k) = (5, 7, 128);
        let (_, wf) = fixture(m, n, k);
        let (xq, xs) = quantized_inputs(m, k);
        let lqq = PackedLqqLinear::quantize(&wf, 64);
        let lut = crate::packed::PackedLutLinear::quantize(&wf, 64);
        let a = w4a8_serial(&xq, &xs, &lqq);
        let b = w4a8_serial(&xq, &xs, &lut);
        assert_eq!(max_abs_diff(&a, &b), 0.0, "LUT must match LQQ bit-exactly");
    }

    #[test]
    fn codebook_serial_matches_its_own_dequantized_reference() {
        // Codebook is lossy vs fp32, but the kernel must be bit-exact
        // against an integer GEMM over its own reconstruction.
        let (m, n, k) = (4, 6, 128);
        let (_, wf) = fixture(m, n, k);
        let (xq, xs) = quantized_inputs(m, k);
        let cb = crate::packed::PackedCodebookLinear::quantize(&wf, 64);
        let got = w4a8_serial(&xq, &xs, &cb);
        let mut w_i8 = Mat::zeros(n, k);
        let mut row = vec![0i8; 64];
        for j in 0..n {
            for g in 0..k / 64 {
                cb.dequant_row_group(j, g, &mut row);
                for (c, &v) in row.iter().enumerate() {
                    w_i8.set(j, g * 64 + c, v);
                }
            }
        }
        let acc = gemm_i8_ref(&xq, &w_i8);
        let want = epilogue_ref(&acc, &xs, cb.channel_scales());
        assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn single_token_edge_case() {
        let (m, n, k) = (1, 3, 64);
        let (_, wf) = fixture(m, n, k);
        let (xq, xs) = quantized_inputs(m, k);
        let p = PackedLqqLinear::quantize(&wf, 64);
        let y = w4a8_lqq_serial(&xq, &xs, &p);
        assert_eq!((y.rows(), y.cols()), (1, 3));
    }

    #[test]
    #[should_panic(expected = "K mismatch")]
    fn shape_mismatch_panics() {
        let x: Mat<i8> = Mat::zeros(2, 64);
        let wf = Mat::zeros(2, 128);
        let p = PackedLqqLinear::quantize(&wf, 64);
        let _ = w4a8_lqq_serial(&x, &[1.0, 1.0], &p);
    }
}
