//! Persistent worker-pool GEMM runtime — the paper's Section 5.4
//! persistent kernel, owned by a handle instead of re-created per call.
//!
//! The paper keeps one kernel resident on the GPU and lets long-lived
//! warp groups *pull* tile work, so no launch pays setup cost twice.
//! The CPU analog: [`LiquidGemm`] owns a [`WorkerPool`] of persistent
//! threads created once at `build()`; every `gemm` call places tile
//! jobs onto the pool and collects per-tile results off a per-call
//! reply channel. `lq_sim::persistent::{makespan_wave,
//! makespan_persistent}` is the analytical model of exactly this
//! wave-launch vs persistent-pool trade-off.
//!
//! ## Work-stealing tile scheduler
//!
//! Jobs no longer funnel through a single shared MPMC queue (which let
//! whichever worker won the condvar race drain everything — the ~5×
//! busy-ns imbalance in the pre-PR-4 bench snapshot). Instead each
//! worker owns a deque and work flows three ways:
//!
//! * **Placement**: external submissions are dealt round-robin onto the
//!   workers' deques (`push_front`), so every worker has a designated
//!   share and is woken directly (its deque's condvar) — the CPU image
//!   of QServe-style static warp assignment.
//! * **LIFO local / FIFO steal**: an owner pops its own deque from the
//!   back — so a job it *forwarded to itself* (the ExCP Dequant→MMA
//!   hop) runs next while the tile is cache-hot — while thieves steal
//!   from the front, taking the work the owner would reach last.
//! * **Stealing**: a worker that finds its own deque and the global
//!   injector empty sweeps the other deques before parking with a
//!   short timeout (work conservation even when a wakeup is missed).
//!   Steals are counted per worker ([`WorkerPool::worker_stats`] and
//!   `lq_pool_steal_total{worker=…}`).
//!
//! Total queued jobs are bounded by `queue_depth`: external submitters
//! block on the capacity gate, restoring the old bounded-injector
//! backpressure. Worker self-forwards are exempt (a worker blocking on
//! its own pool's capacity would deadlock) — the transient excess is at
//! most one job per worker.
//!
//! Why jobs are fully owned: `lq-core` denies `unsafe` outside the two
//! leaf modules ([`crate::simd`], [`crate::affinity`]), so the
//! rayon-style lifetime-erased scoped pool is off the table. Instead
//! each job carries its staged packed words (`Vec<u32>` — the copy the
//! ImFP producer already made into the SMEM ring), an owned dequant
//! recipe (a boxed [`lq_quant::TileDequant`], a few bytes per group),
//! and an `Arc` of the per-call context (packed activation panels, scales,
//! reply sender). Workers compute into owned output chunks and send
//! them back; the caller assembles and transposes. Integer accumulation
//! is exact, so results stay bit-identical to the serial kernels no
//! matter which worker runs which tile in which order.
//!
//! Epoch stamps: every call takes a fresh epoch from the pool's
//! `AtomicU64`; replies carry it so a debug build catches any cross-call
//! mix-up (each call has a private reply channel, so in release this is
//! belt and braces).
//!
//! Shutdown: dropping the pool flips the shared `shutdown` flag and
//! wakes everyone; a worker exits only when the flag is set *and* no
//! jobs remain queued anywhere (drain-and-exit — a LIFO deque would
//! pop a poison pill before older queued work, so pills are gone).
//!
//! ## Self-healing (quarantine, retry, respawn)
//!
//! A panic inside a job is caught with `catch_unwind`, but instead of
//! propagating to the caller the pool heals itself:
//!
//! 1. The job's owned fields survive the unwind (the caught closure
//!    only *borrows* them), so the worker reconstructs the job and
//!    requeues it on the global injector for another worker —
//!    non-blocking, with a small attempts-proportional backoff, up to
//!    [`MAX_JOB_RETRIES`] times. Integer accumulation keeps the
//!    retried result bit-exact with the serial kernels.
//! 2. The panicked worker is quarantined: it records the restart
//!    (`worker_stats().restarts`, `lq_pool_worker_restarts_total`),
//!    spawns its own replacement thread under the lifecycle lock
//!    (skipped when shutdown has begun), and exits. Replacement
//!    handles register in the same lifecycle state drop joins, so no
//!    thread is ever leaked.
//! 3. Only when a job exhausts its retry budget does the caller see a
//!    `Panicked` reply (which re-panics there — a deterministic bug,
//!    not a transient fault).
//!
//! Fault injection for tests threads a shared
//! [`lq_chaos::FaultInjector`] through [`LiquidGemmBuilder::fault_injector`]:
//! workers consult it before each *fresh* job (retries are exempt, so
//! injected panics model transient faults and recovery stays
//! deterministic) and submitters consult it for stall bursts. Without
//! an injector every hook is one `Option` check — the PR 4 hot path is
//! unchanged.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use lq_chaos::{FaultAction, FaultInjector};
use lq_quant::act::QuantizedActivations;
use lq_quant::backend::{BackendId, TileDequant};
use lq_quant::mat::Mat;
use lq_telemetry::Gauge;

use crate::affinity::{self, PlacementPolicy};
use crate::api::{GemmOutput, KernelKind, W4A8Weights};
use crate::microkernel::{APanels, MicrokernelSet};
use crate::pipeline::{
    compute_rows_staged, compute_rows_staged_raw, mma_rows, w4a8_excp, w4a8_flat_parallel,
    w4a8_imfp, ConfigError, ParallelConfig,
};
use crate::serial::w4a8_serial_with;
use crate::simd::SimdVariant;
use crate::sync::{bounded, Sender};
use crate::telemetry::{pool_fault_metrics, PipeMetrics, WorkerMetrics};

/// Per-call shared state a tile job needs beyond its own tile: the
/// packed activations, the reply channel, and (for the staged
/// variants) the free-ring sender that recycles word buffers.
pub(crate) struct CallCtx {
    /// INT8 activations packed into register-tile panels — built once
    /// per call so jobs are `'static` (the same single pass over the
    /// block that cloning the matrix used to cost).
    pub(crate) a: APanels,
    /// Per-token activation scales.
    pub(crate) act_scales: Vec<f32>,
    /// Where finished tiles go.
    pub(crate) reply: Sender<Reply>,
    /// Stage-ring recycling for `words` buffers (ImFP/ExCP).
    pub(crate) recycle: Option<Sender<Vec<u32>>>,
    /// Epoch stamped on every reply of this call.
    pub(crate) epoch: u64,
    /// Microkernel family every tile job of this call computes with
    /// (captured from the pool at call setup — one resolved dispatch
    /// per call, not per tile).
    pub(crate) mk: MicrokernelSet,
    /// Per-variant pipeline metrics (None when telemetry is off).
    pub(crate) metrics: Option<Arc<PipeMetrics>>,
    /// Raw mode: Compute jobs skip the epilogue and reply with exact
    /// i64 partial sums ([`Reply::RawDone`]) — the row-parallel shards'
    /// all-reduce operands. Never set for Dequant/Mma (ExCP) calls.
    pub(crate) raw: bool,
}

/// A finished (or failed) tile travelling back to the calling thread.
pub(crate) enum Reply {
    /// Rows `[j0, j0 + out.len()/m)` of `Yᵀ`, flat `rows×m`.
    Done {
        j0: usize,
        out: Vec<f32>,
        epoch: u64,
    },
    /// Raw-mode twin of `Done`: the same tile as exact pre-epilogue
    /// i64 dot products (the all-reduce operand for row-parallel
    /// sharding — f32 replies would be lossy above 2^24).
    RawDone {
        j0: usize,
        out: Vec<i64>,
        epoch: u64,
    },
    /// The job panicked; the caller re-panics.
    Panicked,
}

/// One unit of work on a worker deque.
pub(crate) enum Job {
    /// Fused dequant+MMA over a staged tile (Flat and ImFP variants).
    Compute {
        ctx: Arc<CallCtx>,
        j0: usize,
        rows: usize,
        words: Vec<u32>,
        quant: Box<dyn TileDequant>,
    },
    /// ExCP stage 2: materialise the INT8 tile, then forward an [`Job::Mma`].
    Dequant {
        ctx: Arc<CallCtx>,
        j0: usize,
        rows: usize,
        words: Vec<u32>,
        quant: Box<dyn TileDequant>,
    },
    /// ExCP stage 3: dot products from a materialised INT8 tile.
    Mma {
        ctx: Arc<CallCtx>,
        j0: usize,
        k: usize,
        tile: Vec<i8>,
        channel_scales: Vec<f32>,
    },
    /// Test-only: panic inside the worker (exercises containment).
    Panic { reply: Sender<Reply> },
}

impl Job {
    /// Last resort when the retry budget is exhausted: report the
    /// failure on the job's reply channel so the caller un-blocks
    /// (and re-panics — see `collect_tiles`).
    fn abandon(self) {
        let reply = match self {
            Job::Compute { ctx, .. } | Job::Dequant { ctx, .. } | Job::Mma { ctx, .. } => {
                ctx.reply.clone()
            }
            Job::Panic { reply } => reply,
        };
        let _ = reply.send(Reply::Panicked);
    }
}

/// How many times a panicked job is retried on another worker before
/// its caller sees the failure. Injected (transient) faults never
/// recur on retry; a *deterministic* bug exhausts the budget fast
/// instead of looping forever.
const MAX_JOB_RETRIES: u8 = 3;

/// A queued job plus its retry count and trace identity. Fresh
/// submissions and worker self-forwards start at 0 attempts; each
/// panic-requeue increments it. `id`/`corr` are 0 unless tracing was
/// enabled at enqueue time; both survive retries, so a retried job's
/// whole history shares one timeline in the trace.
pub(crate) struct Tracked {
    job: Job,
    attempts: u8,
    /// Process-unique trace job ID (0 = untraced).
    id: u64,
    /// Causal correlation ID captured from the submitting thread's
    /// [`lq_trace::corr_scope`] (0 = none).
    corr: u64,
}

impl Tracked {
    fn fresh(job: Job) -> Self {
        let (id, corr) = if lq_trace::enabled() {
            (lq_trace::fresh_job_id(), lq_trace::current_corr())
        } else {
            (0, 0)
        };
        Self {
            job,
            attempts: 0,
            id,
            corr,
        }
    }

    /// A worker self-forward (the ExCP Dequant→MMA hop): new job, but
    /// the *submitting request's* correlation — the worker thread's own
    /// scope is not the causal parent.
    fn forward(job: Job, corr: u64) -> Self {
        let id = if lq_trace::enabled() {
            lq_trace::fresh_job_id()
        } else {
            0
        };
        Self {
            job,
            attempts: 0,
            id,
            corr,
        }
    }
}

/// One worker's deque plus the condvar its owner parks on. The deque
/// mutex doubles as the park lock, so a push under the lock followed by
/// `notify_one` can never lose a wakeup.
struct WorkerDeque {
    q: Mutex<VecDeque<Tracked>>,
    cv: Condvar,
}

impl WorkerDeque {
    fn new() -> Self {
        Self {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }
}

/// Global pool accounting behind one small mutex: the total queued-job
/// count (for the capacity gate and `queue_len`) and the shutdown flag.
struct Ctrl {
    queued: usize,
    shutdown: bool,
}

/// Lifetime counters of one worker, always on (plain relaxed atomics —
/// no dependency on `lq-telemetry` being enabled) so benches and the CI
/// smoke gate can audit load balance on any build.
struct WorkerCounters {
    jobs: AtomicU64,
    busy_ns: AtomicU64,
    steals: AtomicU64,
    restarts: AtomicU64,
    retries: AtomicU64,
    /// CPU this worker slot last pinned itself to; `u64::MAX` means
    /// unpinned (no placement policy, or the OS refused the mask).
    pinned: AtomicU64,
}

impl Default for WorkerCounters {
    fn default() -> Self {
        Self {
            jobs: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            pinned: AtomicU64::new(u64::MAX),
        }
    }
}

/// Snapshot of one worker's lifetime counters
/// (see [`WorkerPool::worker_stats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Jobs this worker executed.
    pub jobs: u64,
    /// Nanoseconds spent executing jobs.
    pub busy_ns: u64,
    /// Jobs this worker stole from another worker's deque.
    pub steals: u64,
    /// Times a worker slot was respawned after a panic quarantined its
    /// thread (counters are per *slot*, so they survive the respawn).
    pub restarts: u64,
    /// Panicked jobs this worker slot requeued for another attempt.
    pub retries: u64,
    /// CPU this worker slot is pinned to, or `None` when unpinned
    /// (the default [`PlacementPolicy::Unpinned`], a non-Linux host,
    /// or an OS that refused the affinity mask). A respawned slot
    /// re-pins to the same CPU, so the value is stable across heals.
    pub pinned_cpu: Option<u32>,
}

/// Thread handles plus the shutdown latch they are joined through.
/// Workers respawn their own replacements, so handles live in shared
/// state (not on [`WorkerPool`]): a respawner registers its
/// replacement under this lock, and drop flips `shutting_down` and
/// takes every handle under the same lock — either the replacement is
/// registered before the take (and gets joined) or the respawner sees
/// the flag and spawns nothing. No handle escapes.
#[derive(Default)]
struct Lifecycle {
    shutting_down: bool,
    handles: Vec<JoinHandle<()>>,
}

/// State shared by submitters and every worker thread.
struct Shared {
    locals: Vec<WorkerDeque>,
    /// Global FIFO for jobs with no designated worker (the
    /// panic-injection probe and panic-requeued retries); checked
    /// after the own deque.
    injector: WorkerDeque,
    ctrl: Mutex<Ctrl>,
    /// Submitters park here when `queued == cap`.
    space: Condvar,
    cap: usize,
    rr: AtomicUsize,
    stats: Vec<WorkerCounters>,
    lifecycle: Mutex<Lifecycle>,
    /// Worker-to-CPU placement policy; each worker (and each respawned
    /// replacement) pins itself on entry to its loop.
    placement: PlacementPolicy,
    /// Fault-injection hook; `None` (one branch per site) in
    /// production builds.
    fault: Option<Arc<FaultInjector>>,
}

impl Shared {
    /// Account one queued job, blocking while the pool is at capacity.
    fn gate_and_count(&self) {
        let mut c = self.ctrl.lock().expect("pool ctrl poisoned");
        while c.queued >= self.cap {
            c = self.space.wait(c).expect("pool ctrl poisoned");
        }
        c.queued += 1;
    }

    /// Account one queued job without the capacity gate (worker
    /// self-forwards — blocking inside a worker would deadlock).
    fn count_unchecked(&self) {
        self.ctrl.lock().expect("pool ctrl poisoned").queued += 1;
    }

    /// Account one dequeued job and release a blocked submitter.
    fn note_pop(&self) {
        let mut c = self.ctrl.lock().expect("pool ctrl poisoned");
        c.queued -= 1;
        drop(c);
        self.space.notify_one();
    }

    /// Push a job onto worker `w`'s deque from *outside* (placement):
    /// `push_front`, so the owner — which pops from the back — runs
    /// external jobs in arrival order while its own forwards (pushed to
    /// the back) stay LIFO.
    fn place(&self, w: usize, t: Tracked) {
        let d = &self.locals[w];
        d.q.lock().expect("worker deque poisoned").push_front(t);
        d.cv.notify_one();
    }

    /// Push a job onto the executing worker's own deque (`push_back` —
    /// it will be popped next, cache-hot, unless a thief takes it).
    /// `corr` is the forwarding job's correlation ID (the worker
    /// thread's own trace scope is not the causal parent).
    fn push_local(&self, w: usize, job: Job, corr: u64) {
        self.count_unchecked();
        let t = Tracked::forward(job, corr);
        if t.id != 0 {
            lq_trace::record_corr(
                lq_trace::EventKind::JobSubmit,
                lq_trace::Track::Worker(w as u32),
                corr,
                t.id,
                w as u64,
            );
        }
        let d = &self.locals[w];
        d.q.lock().expect("worker deque poisoned").push_back(t);
        // The owner is busy executing; this wakes nobody today, but
        // keeps the invariant that every push signals its deque.
        d.cv.notify_one();
    }

    /// Requeue a panicked job on the global injector for any worker to
    /// pick up. Never takes the capacity gate (a quarantined worker
    /// blocking on its own pool would deadlock); the transient excess
    /// is at most one job per restart.
    fn requeue(&self, t: Tracked) {
        self.count_unchecked();
        self.injector
            .q
            .lock()
            .expect("pool injector poisoned")
            .push_back(t);
        for w in &self.locals {
            w.cv.notify_one();
        }
    }
}

/// Persistent worker threads plus the per-worker deques they pull tile
/// jobs from (work-stealing; see the module docs). Created once by
/// [`LiquidGemm::builder`]; drop drains all queues and joins every
/// thread.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: usize,
    live: Arc<AtomicUsize>,
    epoch: AtomicU64,
    depth_gauge: OnceLock<Arc<Gauge>>,
    mk: MicrokernelSet,
}

impl WorkerPool {
    /// A pool with no fault injector (tests and internal callers).
    #[cfg(test)]
    pub(crate) fn new(workers: usize, queue_depth: usize) -> Self {
        Self::with_faults(
            workers,
            queue_depth,
            PlacementPolicy::Unpinned,
            MicrokernelSet::global(),
            None,
        )
    }

    pub(crate) fn with_faults(
        workers: usize,
        queue_depth: usize,
        placement: PlacementPolicy,
        mk: MicrokernelSet,
        fault: Option<Arc<FaultInjector>>,
    ) -> Self {
        let shared = Arc::new(Shared {
            locals: (0..workers).map(|_| WorkerDeque::new()).collect(),
            injector: WorkerDeque::new(),
            ctrl: Mutex::new(Ctrl {
                queued: 0,
                shutdown: false,
            }),
            space: Condvar::new(),
            cap: queue_depth,
            rr: AtomicUsize::new(0),
            stats: (0..workers).map(|_| WorkerCounters::default()).collect(),
            lifecycle: Mutex::new(Lifecycle::default()),
            placement,
            fault,
        });
        let live = Arc::new(AtomicUsize::new(0));
        for id in 0..workers {
            spawn_worker(&shared, &live, id);
        }
        Self {
            shared,
            workers,
            live,
            epoch: AtomicU64::new(0),
            depth_gauge: OnceLock::new(),
            mk,
        }
    }

    /// Place a job, blocking when the pool is at capacity (the natural
    /// backpressure bounding staged-tile memory). Placement is
    /// round-robin across worker deques, so load is spread at enqueue
    /// time and stealing only handles the stragglers.
    pub(crate) fn submit(&self, job: Job) {
        if let Some(f) = &self.shared.fault {
            if let Some(d) = f.on_submit() {
                // Injected submitter stall: models an injector-full
                // burst upstream of the capacity gate.
                std::thread::sleep(d);
            }
        }
        self.shared.gate_and_count();
        let t = Tracked::fresh(job);
        match t {
            // Jobs with no tile affinity go to the global injector.
            t @ Tracked {
                job: Job::Panic { .. },
                ..
            } => {
                let d = &self.shared.injector;
                d.q.lock().expect("pool injector poisoned").push_back(t);
                for w in &self.shared.locals {
                    w.cv.notify_one();
                }
            }
            t => {
                let w = self.shared.rr.fetch_add(1, Ordering::Relaxed) % self.workers;
                if t.id != 0 {
                    lq_trace::record_corr(
                        lq_trace::EventKind::JobSubmit,
                        lq_trace::Track::Control,
                        t.corr,
                        t.id,
                        w as u64,
                    );
                }
                self.shared.place(w, t);
            }
        }
        if lq_telemetry::enabled() {
            let g = self
                .depth_gauge
                .get_or_init(|| lq_telemetry::registry().gauge("lq_pool_queue_depth"));
            g.set(self.queue_len() as f64);
        }
    }

    /// Fresh epoch for one GEMM call.
    pub(crate) fn next_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of worker threads the pool was built with.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The microkernel family every GEMM issued through this pool
    /// computes with (fixed at build time; see
    /// [`LiquidGemmBuilder::force_microkernel`]).
    #[must_use]
    pub fn microkernels(&self) -> MicrokernelSet {
        self.mk
    }

    /// The worker-to-CPU placement policy the pool was built with.
    #[must_use]
    pub fn placement(&self) -> PlacementPolicy {
        self.shared.placement
    }

    /// Worker threads currently alive (0 after drop has joined them).
    #[must_use]
    pub fn live_workers(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Jobs currently queued across all deques (racy; for occupancy
    /// gauges).
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.shared.ctrl.lock().expect("pool ctrl poisoned").queued
    }

    /// Per-worker lifetime counters (jobs, busy-ns, steals) — the raw
    /// material for load-balance audits independent of telemetry.
    #[must_use]
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.shared
            .stats
            .iter()
            .map(|s| WorkerStats {
                jobs: s.jobs.load(Ordering::Relaxed),
                busy_ns: s.busy_ns.load(Ordering::Relaxed),
                steals: s.steals.load(Ordering::Relaxed),
                restarts: s.restarts.load(Ordering::Relaxed),
                retries: s.retries.load(Ordering::Relaxed),
                pinned_cpu: match s.pinned.load(Ordering::Relaxed) {
                    u64::MAX => None,
                    cpu => Some(cpu as u32),
                },
            })
            .collect()
    }

    /// Test probe: the shared live-worker counter, observable after the
    /// pool itself is gone (proves threads joined, not leaked).
    #[doc(hidden)]
    #[must_use]
    pub fn live_probe(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.live)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared
            .ctrl
            .lock()
            .expect("pool ctrl poisoned")
            .shutdown = true;
        // Latch out further respawns, then take every handle spawned
        // so far — construction-time workers and panic replacements
        // alike (see [`Lifecycle`] for why this cannot race a
        // respawn).
        let handles = {
            let mut lc = self
                .shared
                .lifecycle
                .lock()
                .expect("pool lifecycle poisoned");
            lc.shutting_down = true;
            std::mem::take(&mut lc.handles)
        };
        for d in &self.shared.locals {
            d.cv.notify_all();
        }
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Decrements the live-worker count however the worker exits.
struct LiveGuard(Arc<AtomicUsize>);

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// How long an idle worker sleeps before re-sweeping the other deques.
/// Placement notifies the designated worker directly, so this timeout
/// only bounds how stale a *steal* opportunity can go unnoticed.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Spawn (or respawn) the worker thread for slot `id`, registering its
/// handle in the shared lifecycle state so drop can join it. A respawn
/// that loses the race with shutdown spawns nothing — the remaining
/// workers (or nobody, if the caller is gone) drain the queues.
fn spawn_worker(shared: &Arc<Shared>, live: &Arc<AtomicUsize>, id: usize) {
    let mut lc = shared.lifecycle.lock().expect("pool lifecycle poisoned");
    if lc.shutting_down {
        return;
    }
    let sh = Arc::clone(shared);
    let lv = Arc::clone(live);
    let h = std::thread::Builder::new()
        .name(format!("lq-pool-{id}"))
        .spawn(move || worker_loop(id, &sh, &lv))
        .expect("spawn pool worker");
    lc.handles.push(h);
}

/// Find the next job: own deque (LIFO) → global injector → steal sweep
/// (FIFO from the victim's front) → park. Returns `None` when the pool
/// is shutting down and every queue has drained.
fn take_job(shared: &Shared, id: usize) -> Option<(Tracked, bool)> {
    loop {
        if let Some(j) = shared.locals[id]
            .q
            .lock()
            .expect("worker deque poisoned")
            .pop_back()
        {
            return Some((j, false));
        }
        if let Some(j) = shared
            .injector
            .q
            .lock()
            .expect("pool injector poisoned")
            .pop_front()
        {
            return Some((j, false));
        }
        for off in 1..shared.locals.len() {
            let victim = (id + off) % shared.locals.len();
            if let Some(j) = shared.locals[victim]
                .q
                .lock()
                .expect("worker deque poisoned")
                .pop_front()
            {
                return Some((j, true));
            }
        }
        {
            let c = shared.ctrl.lock().expect("pool ctrl poisoned");
            if c.shutdown && c.queued == 0 {
                return None;
            }
        }
        // Park on the own deque's condvar; the guard re-check under the
        // same lock closes the push-vs-park race. The timeout covers
        // jobs that appeared on *other* deques after the sweep.
        let q = shared.locals[id].q.lock().expect("worker deque poisoned");
        if q.is_empty() {
            let _ = shared.locals[id]
                .cv
                .wait_timeout(q, PARK_TIMEOUT)
                .expect("worker deque poisoned");
        }
    }
}

fn worker_loop(id: usize, shared: &Arc<Shared>, live: &Arc<AtomicUsize>) {
    live.fetch_add(1, Ordering::SeqCst);
    let _guard = LiveGuard(Arc::clone(live));
    // Pin per the pool's placement policy. Running here (not in the
    // spawner) means a panic-respawned replacement re-pins itself to
    // the same CPU automatically. A refused mask leaves the slot
    // unpinned and is visible as `pinned_cpu: None` in worker_stats.
    if let Some(cpu) = shared.placement.cpu_for(id, shared.locals.len()) {
        if affinity::pin_thread(cpu) {
            shared.stats[id].pinned.store(cpu as u64, Ordering::Relaxed);
        }
    }
    // Per-worker metric handles, resolved once the first time telemetry
    // is observed enabled (label: worker id).
    let mut wm: Option<WorkerMetrics> = None;
    while let Some((tracked, stolen)) = take_job(shared, id) {
        shared.note_pop();
        if wm.is_none() && lq_telemetry::enabled() {
            wm = WorkerMetrics::resolve(id);
        }
        if stolen {
            shared.stats[id].steals.fetch_add(1, Ordering::Relaxed);
            if let Some(w) = &wm {
                w.steals.inc();
            }
        }
        let Tracked {
            job,
            attempts,
            id: job_id,
            corr,
        } = tracked;
        if job_id != 0 {
            lq_trace::record_corr(
                lq_trace::EventKind::JobStart,
                lq_trace::Track::Worker(id as u32),
                corr,
                job_id,
                u64::from(stolen),
            );
        }
        // Retries are exempt from injection: a scheduled fault is
        // transient by definition, so the retried job runs clean and
        // recovery is as deterministic as the fault itself.
        let force_panic = match &shared.fault {
            Some(f) => match f.on_worker_job(attempts > 0) {
                FaultAction::Panic => true,
                FaultAction::Stall(d) => {
                    std::thread::sleep(d);
                    false
                }
                FaultAction::None => false,
            },
            None => false,
        };
        let t0 = std::time::Instant::now();
        match execute(job, shared, id, corr, force_panic) {
            JobOutcome::Done => {
                let ns = t0.elapsed().as_nanos() as u64;
                shared.stats[id].jobs.fetch_add(1, Ordering::Relaxed);
                shared.stats[id].busy_ns.fetch_add(ns, Ordering::Relaxed);
                if job_id != 0 {
                    lq_trace::span_full(
                        lq_trace::EventKind::JobFinish,
                        lq_trace::Track::Worker(id as u32),
                        corr,
                        job_id,
                        0,
                        t0,
                        0,
                    );
                }
                if let Some(w) = &wm {
                    w.busy_ns.add(ns);
                    w.job_ns.record(ns);
                    w.jobs.inc();
                }
            }
            JobOutcome::Panicked(retry) => {
                heal(shared, live, id, retry, attempts, job_id, corr);
                return;
            }
        }
    }
}

/// The quarantine-and-respawn path a worker takes after a job panicked
/// under it: requeue the surviving job (bounded retries with a small
/// attempts-proportional backoff) or abandon it to its caller, record
/// the restart, spawn this slot's replacement, and let the quarantined
/// thread exit (its caller `return`s out of [`worker_loop`]).
fn heal(
    shared: &Arc<Shared>,
    live: &Arc<AtomicUsize>,
    id: usize,
    retry: Option<Job>,
    attempts: u8,
    job_id: u64,
    corr: u64,
) {
    shared.stats[id].restarts.fetch_add(1, Ordering::Relaxed);
    lq_trace::record_corr(
        lq_trace::EventKind::WorkerQuarantine,
        lq_trace::Track::Worker(id as u32),
        corr,
        job_id,
        0,
    );
    let fm = pool_fault_metrics();
    if let Some(m) = &fm {
        m.restarts.inc();
    }
    if let Some(job) = retry {
        if attempts < MAX_JOB_RETRIES {
            shared.stats[id].retries.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &fm {
                m.retries.inc();
            }
            if job_id != 0 {
                lq_trace::record_corr(
                    lq_trace::EventKind::JobRetry,
                    lq_trace::Track::Worker(id as u32),
                    corr,
                    job_id,
                    u64::from(attempts) + 1,
                );
            }
            // Backoff before handing the job to a peer: transient
            // faults (the only kind the injector models) clear on
            // their own; deterministic bugs exhaust the budget fast.
            std::thread::sleep(Duration::from_micros(50u64 << attempts));
            shared.requeue(Tracked {
                job,
                attempts: attempts + 1,
                id: job_id,
                corr,
            });
        } else {
            job.abandon();
        }
    }
    spawn_worker(shared, live, id);
    lq_trace::record_corr(
        lq_trace::EventKind::WorkerRespawn,
        lq_trace::Track::Worker(id as u32),
        corr,
        0,
        0,
    );
}

/// What became of one job attempt. On `Panicked` the job's owned
/// fields survived the unwind (the caught closure only borrowed them),
/// so the reconstructed job can be retried on another worker;
/// `Panicked(None)` means the job has nothing to retry (the
/// test-injected [`Job::Panic`] probe, which already replied).
enum JobOutcome {
    Done,
    Panicked(Option<Job>),
}

/// Run one job attempt, containing panics. `force_panic` is the fault
/// injector's verdict for this attempt — raised *inside* the caught
/// closure so the injected fault takes the exact path a real mid-job
/// panic would. `corr` is the job's causal correlation ID (stage spans
/// must carry the submitting request's scope, not the worker's).
fn execute(job: Job, shared: &Shared, id: usize, corr: u64, force_panic: bool) -> JobOutcome {
    let stage_t0 = lq_trace::enabled().then(std::time::Instant::now);
    let stage_span = |kind: lq_trace::EventKind, j0: usize, rows: usize| {
        if let Some(t0) = stage_t0 {
            lq_trace::span_full(
                kind,
                lq_trace::Track::Worker(id as u32),
                corr,
                j0 as u64,
                rows as u64,
                t0,
                0,
            );
        }
    };
    match job {
        Job::Compute {
            ctx,
            j0,
            rows,
            words,
            quant,
        } => {
            // Raw-mode calls reply with exact i64 partials, scaled
            // calls with f32 tiles; both run the same staged loop.
            enum TileBuf {
                Scaled(Vec<f32>),
                Raw(Vec<i64>),
            }
            let res = catch_unwind(AssertUnwindSafe(|| {
                if force_panic {
                    panic!("injected fault: worker panic mid-Compute");
                }
                let _span = ctx
                    .metrics
                    .as_ref()
                    .map(|mx| mx.task_ns_compute.span_owned());
                let m = ctx.a.m();
                if ctx.raw {
                    let mut out = vec![0i64; rows * m];
                    compute_rows_staged_raw(ctx.mk, quant.as_ref(), &words, rows, &ctx.a, &mut out);
                    TileBuf::Raw(out)
                } else {
                    let mut out = vec![0.0f32; rows * m];
                    compute_rows_staged(
                        ctx.mk,
                        quant.as_ref(),
                        &words,
                        rows,
                        &ctx.a,
                        &ctx.act_scales,
                        &mut out,
                    );
                    TileBuf::Scaled(out)
                }
            }));
            match res {
                Ok(buf) => {
                    stage_span(lq_trace::EventKind::StageCompute, j0, rows);
                    let epoch = ctx.epoch;
                    let reply = match buf {
                        TileBuf::Scaled(out) => Reply::Done { j0, out, epoch },
                        TileBuf::Raw(out) => Reply::RawDone { j0, out, epoch },
                    };
                    finish_tile(&ctx, reply, Some(words));
                    JobOutcome::Done
                }
                Err(_) => JobOutcome::Panicked(Some(Job::Compute {
                    ctx,
                    j0,
                    rows,
                    words,
                    quant,
                })),
            }
        }
        Job::Dequant {
            ctx,
            j0,
            rows,
            words,
            quant,
        } => {
            let res = catch_unwind(AssertUnwindSafe(|| {
                if force_panic {
                    panic!("injected fault: worker panic mid-Dequant");
                }
                let _span = ctx
                    .metrics
                    .as_ref()
                    .and_then(|mx| mx.task_ns_dequant.as_ref().map(|h| h.span_owned()));
                quant.materialize(&words, rows)
            }));
            match res {
                Ok((tile, k, channel_scales)) => {
                    stage_span(lq_trace::EventKind::StageDequant, j0, rows);
                    if let Some(rec) = &ctx.recycle {
                        let _ = rec.send(words);
                    }
                    // Forward the second hop onto our own deque: popped
                    // next (LIFO) while the materialised tile is still
                    // cache-hot, or stolen by an idle worker.
                    shared.push_local(
                        id,
                        Job::Mma {
                            ctx,
                            j0,
                            k,
                            tile,
                            channel_scales,
                        },
                        corr,
                    );
                    JobOutcome::Done
                }
                Err(_) => JobOutcome::Panicked(Some(Job::Dequant {
                    ctx,
                    j0,
                    rows,
                    words,
                    quant,
                })),
            }
        }
        Job::Mma {
            ctx,
            j0,
            k,
            tile,
            channel_scales,
        } => {
            let res = catch_unwind(AssertUnwindSafe(|| {
                if force_panic {
                    panic!("injected fault: worker panic mid-Mma");
                }
                let _span = ctx
                    .metrics
                    .as_ref()
                    .and_then(|mx| mx.task_ns_mma.as_ref().map(|h| h.span_owned()));
                let m = ctx.a.m();
                let mut out = vec![0.0f32; channel_scales.len() * m];
                mma_rows(
                    ctx.mk,
                    &tile,
                    k,
                    &channel_scales,
                    &ctx.a,
                    &ctx.act_scales,
                    &mut out,
                );
                out
            }));
            match res {
                Ok(out) => {
                    stage_span(lq_trace::EventKind::StageMma, j0, channel_scales.len());
                    let epoch = ctx.epoch;
                    finish_tile(&ctx, Reply::Done { j0, out, epoch }, None);
                    JobOutcome::Done
                }
                Err(_) => JobOutcome::Panicked(Some(Job::Mma {
                    ctx,
                    j0,
                    k,
                    tile,
                    channel_scales,
                })),
            }
        }
        Job::Panic { reply } => {
            let res = catch_unwind(|| panic!("injected worker panic"));
            debug_assert!(res.is_err());
            let _ = reply.send(Reply::Panicked);
            // The probe quarantines its worker like any real panic, so
            // tests exercising it also exercise respawn — but there is
            // no job to retry.
            JobOutcome::Panicked(None)
        }
    }
}

/// Common tail of successful Compute/Mma jobs: count the task, recycle
/// the stage buffer, reply. Reply-send failures mean the caller is
/// gone (it panicked or was dropped) and are deliberately ignored.
fn finish_tile(ctx: &Arc<CallCtx>, reply: Reply, words: Option<Vec<u32>>) {
    if let Some(mx) = &ctx.metrics {
        mx.tasks.inc();
    }
    if let (Some(rec), Some(buf)) = (&ctx.recycle, words) {
        let _ = rec.send(buf);
    }
    let _ = ctx.reply.send(reply);
}

/// Long-lived handle over the persistent worker pool — the redesigned
/// front door of the kernel library.
///
/// Build one per process (or per serving engine), keep it, and issue
/// every GEMM through it:
///
/// ```
/// use lq_core::{KernelKind, LiquidGemm};
/// use lq_quant::act::QuantizedActivations;
/// use lq_quant::mat::Mat;
/// use lq_quant::BackendId;
///
/// let x = Mat::from_fn(2, 64, |r, c| ((r * 64 + c) as f32 * 0.1).sin());
/// let w = Mat::from_fn(8, 64, |r, c| ((r * 64 + c) as f32 * 0.05).cos());
/// let lg = LiquidGemm::builder()
///     .workers(2)
///     .backend(BackendId::Lqq) // or Qoq, Lut, Codebook
///     .build()
///     .unwrap();
/// let weights = lg.pack_weights(&w, 64);
/// let qa = QuantizedActivations::quantize(&x, None);
/// let y = lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::ImFp);
/// assert_eq!(y.y.rows(), 2);
/// ```
pub struct LiquidGemm {
    pool: WorkerPool,
    defaults: ParallelConfig,
    backend: BackendId,
}

impl LiquidGemm {
    /// Start configuring a handle. Defaults: `workers` =
    /// `available_parallelism` capped at 8, `task_rows` 8, `stages` 8,
    /// `queue_depth` 64.
    #[must_use]
    pub fn builder() -> LiquidGemmBuilder {
        LiquidGemmBuilder::default()
    }

    /// The pool this handle owns.
    #[must_use]
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The per-call defaults (`workers` documents the pool size; the
    /// pool itself is fixed at build time).
    #[must_use]
    pub fn config(&self) -> ParallelConfig {
        self.defaults
    }

    /// Number of persistent worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The kernel backend this handle packs weights with (set via
    /// [`LiquidGemmBuilder::backend`]; default [`BackendId::Lqq`]).
    #[must_use]
    pub fn backend(&self) -> BackendId {
        self.backend
    }

    /// Quantize and pack FP32 weights with this handle's configured
    /// backend — the builder-driven path that replaced per-scheme
    /// constructor calls at every quantize site.
    #[must_use]
    pub fn pack_weights(&self, w: &Mat<f32>, group: usize) -> W4A8Weights {
        W4A8Weights::quantize(w, group, self.backend)
    }

    /// Run `Y = X·Wᵀ` with this handle's default tiling.
    #[must_use]
    pub fn gemm(
        &self,
        x: &Mat<i8>,
        act_scales: &[f32],
        weights: &W4A8Weights,
        kind: KernelKind,
    ) -> GemmOutput {
        self.gemm_with(x, act_scales, weights, kind, self.defaults)
    }

    /// Run `Y = X·Wᵀ` with explicit tiling parameters. `cfg.task_rows`
    /// and `cfg.stages` apply per call; `cfg.workers` is ignored — the
    /// pool's thread count was fixed at [`LiquidGemm::builder`] time.
    #[must_use]
    pub fn gemm_with(
        &self,
        x: &Mat<i8>,
        act_scales: &[f32],
        weights: &W4A8Weights,
        kind: KernelKind,
        cfg: ParallelConfig,
    ) -> GemmOutput {
        let w = weights.as_dyn();
        let y = match kind {
            KernelKind::Serial => w4a8_serial_with(self.pool.microkernels(), x, act_scales, w),
            KernelKind::FlatParallel => w4a8_flat_parallel(&self.pool, x, act_scales, w, cfg),
            KernelKind::ExCp => w4a8_excp(&self.pool, x, act_scales, w, cfg),
            KernelKind::ImFp => w4a8_imfp(&self.pool, x, act_scales, w, cfg),
        };
        GemmOutput { y }
    }

    /// W4A8 GEMM taking FP32 activations: per-token INT8 quantization is
    /// fused in front of the kernel. `smooth` (length K), if given,
    /// divides the activations channel-wise first (the SmoothQuant
    /// inverse scale — the weights must have been quantized with the
    /// matching forward scale).
    #[must_use]
    pub fn gemm_f32(
        &self,
        x: &Mat<f32>,
        weights: &W4A8Weights,
        smooth: Option<&[f32]>,
        kind: KernelKind,
    ) -> GemmOutput {
        self.gemm_f32_with(x, weights, smooth, kind, self.defaults)
    }

    /// [`LiquidGemm::gemm_f32`] with explicit tiling parameters.
    #[must_use]
    pub fn gemm_f32_with(
        &self,
        x: &Mat<f32>,
        weights: &W4A8Weights,
        smooth: Option<&[f32]>,
        kind: KernelKind,
        cfg: ParallelConfig,
    ) -> GemmOutput {
        assert_eq!(x.cols(), weights.k(), "K mismatch");
        let qa = QuantizedActivations::quantize(x, smooth);
        self.gemm_with(&qa.q, &qa.scales, weights, kind, cfg)
    }

    /// Test probe: make one worker panic inside a job and wait for the
    /// contained report. The pool must keep working afterwards.
    #[doc(hidden)]
    pub fn inject_worker_panic(&self) {
        let (tx, rx) = bounded(1);
        self.pool.submit(Job::Panic { reply: tx });
        match rx.recv() {
            Ok(Reply::Panicked) => {}
            _ => panic!("expected a contained panic reply"),
        }
    }
}

/// Builder for [`LiquidGemm`]; validates like
/// [`ParallelConfig::builder`] and additionally requires
/// `queue_depth >= 1`.
#[derive(Debug, Clone)]
pub struct LiquidGemmBuilder {
    workers: usize,
    task_rows: usize,
    stages: usize,
    queue_depth: usize,
    backend: BackendId,
    placement: PlacementPolicy,
    microkernel: Option<SimdVariant>,
    fault: Option<Arc<FaultInjector>>,
}

impl Default for LiquidGemmBuilder {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        Self {
            workers: workers.clamp(1, 8),
            task_rows: 8,
            stages: 8,
            queue_depth: 64,
            backend: BackendId::Lqq,
            placement: PlacementPolicy::Unpinned,
            microkernel: None,
            fault: None,
        }
    }
}

impl LiquidGemmBuilder {
    /// Persistent worker threads (validated ≥ 1).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Default output channels per tile job (validated ≥ 1).
    #[must_use]
    pub fn task_rows(mut self, r: usize) -> Self {
        self.task_rows = r;
        self
    }

    /// Default staging buffers in flight per call (validated ≥ 2).
    #[must_use]
    pub fn stages(mut self, s: usize) -> Self {
        self.stages = s;
        self
    }

    /// Injector queue capacity (validated ≥ 1). Bounds how many staged
    /// tiles can wait unexecuted; submitters block beyond it.
    #[must_use]
    pub fn queue_depth(mut self, q: usize) -> Self {
        self.queue_depth = q;
        self
    }

    /// Kernel backend used by [`LiquidGemm::pack_weights`] (per-layer
    /// runtime selection: any [`lq_quant::registry`] entry). Default
    /// [`BackendId::Lqq`]. Weights packed elsewhere carry their own
    /// backend and run on any handle.
    #[must_use]
    pub fn backend(mut self, id: BackendId) -> Self {
        self.backend = id;
        self
    }

    /// Worker-to-CPU placement policy (default
    /// [`PlacementPolicy::Unpinned`]). `Compact` packs workers onto the
    /// lowest allowed CPUs (shared-cache locality); `Scatter` spreads
    /// them across the allowed set (cache-capacity isolation). Pinning
    /// degrades to a no-op on non-Linux hosts or when the OS refuses
    /// the mask — check `worker_stats()[i].pinned_cpu`.
    #[must_use]
    pub fn placement(mut self, p: PlacementPolicy) -> Self {
        self.placement = p;
        self
    }

    /// Force a specific microkernel ISA variant instead of the runtime
    /// auto-detected best (bench sweeps and A/B debugging). `build()`
    /// fails with [`ConfigError::UnsupportedMicrokernel`] when this CPU
    /// lacks the variant's features.
    #[must_use]
    pub fn force_microkernel(mut self, v: SimdVariant) -> Self {
        self.microkernel = Some(v);
        self
    }

    /// Install a [`FaultInjector`] (chaos testing): workers consult it
    /// before each fresh job and submitters before each submission.
    /// Without one — the default — every hook is a single `Option`
    /// check on the hot path.
    #[must_use]
    pub fn fault_injector(mut self, inj: Arc<FaultInjector>) -> Self {
        self.fault = Some(inj);
        self
    }

    /// Validate and spawn the pool.
    pub fn build(self) -> Result<LiquidGemm, ConfigError> {
        let defaults = ParallelConfig::builder()
            .workers(self.workers)
            .task_rows(self.task_rows)
            .stages(self.stages)
            .placement(self.placement)
            .build()?;
        if self.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        let mk = match self.microkernel {
            Some(v) => {
                MicrokernelSet::for_variant(v).ok_or(ConfigError::UnsupportedMicrokernel(v))?
            }
            None => MicrokernelSet::global(),
        };
        Ok(LiquidGemm {
            pool: WorkerPool::with_faults(
                defaults.workers,
                self.queue_depth,
                defaults.placement,
                mk,
                self.fault,
            ),
            defaults,
            backend: self.backend,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::max_abs_diff;
    use lq_quant::act::QuantizedActivations;

    fn fixture(m: usize, n: usize, k: usize) -> (Mat<i8>, Vec<f32>, W4A8Weights) {
        let xf = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.13).sin() * 1.5);
        let wf = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.04).cos());
        let qa = QuantizedActivations::quantize(&xf, None);
        let w = W4A8Weights::lqq(crate::packed::PackedLqqLinear::quantize(&wf, 64));
        (qa.q, qa.scales, w)
    }

    #[test]
    fn builder_backend_selection_packs_and_runs_every_backend() {
        let (m, n, k) = (4, 16, 128);
        let xf = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.13).sin() * 1.5);
        let wf = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.04).cos());
        let qa = QuantizedActivations::quantize(&xf, None);
        for id in BackendId::all() {
            let lg = LiquidGemm::builder()
                .workers(2)
                .backend(id)
                .build()
                .unwrap();
            assert_eq!(lg.backend(), id);
            let w = lg.pack_weights(&wf, 64);
            assert_eq!(w.backend(), id);
            let want = lg.gemm(&qa.q, &qa.scales, &w, KernelKind::Serial).y;
            for kind in [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp] {
                let got = lg.gemm(&qa.q, &qa.scales, &w, kind).y;
                assert_eq!(max_abs_diff(&got, &want), 0.0, "{id} {kind:?}");
            }
        }
    }

    #[test]
    fn handle_matches_serial_for_all_kinds() {
        let (x, s, w) = fixture(5, 23, 128);
        let lg = LiquidGemm::builder().workers(3).build().unwrap();
        let want = lg.gemm(&x, &s, &w, KernelKind::Serial).y;
        for kind in [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp] {
            let got = lg.gemm(&x, &s, &w, kind).y;
            assert_eq!(max_abs_diff(&got, &want), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn handle_survives_many_calls() {
        let (x, s, w) = fixture(2, 9, 64);
        let lg = LiquidGemm::builder()
            .workers(2)
            .task_rows(4)
            .stages(2)
            .build()
            .unwrap();
        let want = lg.gemm(&x, &s, &w, KernelKind::Serial).y;
        for i in 0..50 {
            let kind = [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp][i % 3];
            assert_eq!(max_abs_diff(&lg.gemm(&x, &s, &w, kind).y, &want), 0.0);
        }
    }

    #[test]
    fn placement_policies_pin_workers_and_stay_bit_exact() {
        let (x, s, w) = fixture(4, 17, 128);
        for policy in [PlacementPolicy::Compact, PlacementPolicy::Scatter] {
            let lg = LiquidGemm::builder()
                .workers(3)
                .placement(policy)
                .build()
                .unwrap();
            assert_eq!(lg.pool().placement(), policy);
            let want = lg.gemm(&x, &s, &w, KernelKind::Serial).y;
            let got = lg.gemm(&x, &s, &w, KernelKind::ImFp).y;
            assert_eq!(max_abs_diff(&got, &want), 0.0, "{policy:?}");
            // On Linux every worker must report its pinned CPU from
            // the allowed set; the portable fallback reports None.
            let allowed = crate::affinity::allowed_cpus();
            for (id, st) in lg.pool().worker_stats().iter().enumerate() {
                if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
                    let cpu = st
                        .pinned_cpu
                        .unwrap_or_else(|| panic!("{policy:?} worker {id} not pinned"));
                    assert!(
                        allowed.contains(&(cpu as usize)),
                        "{policy:?} worker {id} pinned to cpu{cpu} outside allowed set"
                    );
                } else {
                    assert_eq!(st.pinned_cpu, None);
                }
            }
        }
        // Unpinned pools never report a CPU.
        let lg = LiquidGemm::builder().workers(2).build().unwrap();
        for st in lg.pool().worker_stats() {
            assert_eq!(st.pinned_cpu, None);
        }
    }

    #[test]
    fn forced_microkernel_is_validated_and_used() {
        // Scalar is always available and must round-trip.
        let lg = LiquidGemm::builder()
            .workers(2)
            .force_microkernel(SimdVariant::Scalar)
            .build()
            .unwrap();
        assert_eq!(lg.pool().microkernels().variant(), SimdVariant::Scalar);
        let (x, s, w) = fixture(3, 9, 64);
        let want = lg.gemm(&x, &s, &w, KernelKind::Serial).y;
        // Every detected variant builds and matches; undetected ones
        // must be rejected with the typed error.
        for v in [SimdVariant::Avx2, SimdVariant::Vnni] {
            match LiquidGemm::builder()
                .workers(2)
                .force_microkernel(v)
                .build()
            {
                Ok(lgv) => {
                    assert!(v.available());
                    assert_eq!(lgv.pool().microkernels().variant(), v);
                    let got = lgv.gemm(&x, &s, &w, KernelKind::ImFp).y;
                    assert_eq!(max_abs_diff(&got, &want), 0.0, "{v:?}");
                }
                Err(e) => {
                    assert!(!v.available());
                    assert!(matches!(e, ConfigError::UnsupportedMicrokernel(bad) if bad == v));
                }
            }
        }
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(matches!(
            LiquidGemm::builder().workers(0).build(),
            Err(ConfigError::ZeroWorkers)
        ));
        assert!(matches!(
            LiquidGemm::builder().stages(1).build(),
            Err(ConfigError::TooFewStages(1))
        ));
        assert!(matches!(
            LiquidGemm::builder().task_rows(0).build(),
            Err(ConfigError::ZeroTaskRows)
        ));
        assert!(matches!(
            LiquidGemm::builder().queue_depth(0).build(),
            Err(ConfigError::ZeroQueueDepth)
        ));
    }

    #[test]
    fn drop_joins_all_workers() {
        let lg = LiquidGemm::builder().workers(3).build().unwrap();
        let probe = lg.pool().live_probe();
        let (x, s, w) = fixture(1, 4, 64);
        let _ = lg.gemm(&x, &s, &w, KernelKind::ImFp);
        // Thread start-up is asynchronous; give stragglers a moment.
        for _ in 0..200 {
            if lg.pool().live_workers() == 3 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(lg.pool().live_workers(), 3);
        drop(lg);
        assert_eq!(probe.load(std::sync::atomic::Ordering::SeqCst), 0);
    }

    #[test]
    fn panic_in_job_is_contained() {
        let lg = LiquidGemm::builder().workers(2).build().unwrap();
        lg.inject_worker_panic();
        // Pool still serves correct results afterwards.
        let (x, s, w) = fixture(3, 8, 64);
        let want = lg.gemm(&x, &s, &w, KernelKind::Serial).y;
        let got = lg.gemm(&x, &s, &w, KernelKind::ImFp).y;
        assert_eq!(max_abs_diff(&got, &want), 0.0);
        drop(lg); // and still joins cleanly
    }

    fn stats_sum(lg: &LiquidGemm) -> (u64, u64) {
        let s = lg.pool().worker_stats();
        (
            s.iter().map(|w| w.restarts).sum(),
            s.iter().map(|w| w.retries).sum(),
        )
    }

    #[test]
    fn injected_panic_during_queued_job_is_retried_bit_exact() {
        // The very first fresh job panics mid-execution: the dying
        // worker must requeue it, respawn, and the caller must see a
        // bit-exact result — never the panic.
        let inj = Arc::new(FaultInjector::new(
            lq_chaos::FaultPlan::quiet().worker_panics_at(&[0]),
        ));
        let lg = LiquidGemm::builder()
            .workers(2)
            .fault_injector(Arc::clone(&inj))
            .build()
            .unwrap();
        let (x, s, w) = fixture(5, 23, 128);
        let want = lg.gemm(&x, &s, &w, KernelKind::Serial).y;
        let got = lg.gemm(&x, &s, &w, KernelKind::ImFp).y;
        assert_eq!(max_abs_diff(&got, &want), 0.0);
        assert_eq!(inj.stats().worker_panics, 1, "fault did not fire");
        let (restarts, retries) = stats_sum(&lg);
        assert_eq!(restarts, 1, "restart not counted in worker_stats");
        assert_eq!(retries, 1, "retry not counted in worker_stats");
    }

    #[test]
    fn panic_storm_all_workers_die_once_pool_still_drains() {
        // One scheduled panic per worker slot, spread across the job
        // stream: every worker dies (at least) once, every job still
        // completes, every variant stays bit-exact.
        const WORKERS: usize = 3;
        let inj = Arc::new(FaultInjector::new(
            lq_chaos::FaultPlan::quiet().worker_panics_at(&[0, 2, 4]),
        ));
        let lg = LiquidGemm::builder()
            .workers(WORKERS)
            .fault_injector(Arc::clone(&inj))
            .build()
            .unwrap();
        let (x, s, w) = fixture(7, 31, 128);
        let want = lg.gemm(&x, &s, &w, KernelKind::Serial).y;
        for kind in [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp] {
            assert_eq!(
                max_abs_diff(&lg.gemm(&x, &s, &w, kind).y, &want),
                0.0,
                "{kind:?}"
            );
        }
        assert_eq!(inj.stats().worker_panics, 3);
        let (restarts, retries) = stats_sum(&lg);
        assert_eq!(restarts, 3);
        assert_eq!(retries, 3);
        // Replacements bring the pool back to full strength.
        for _ in 0..200 {
            if lg.pool().live_workers() == WORKERS {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(lg.pool().live_workers(), WORKERS);
        // And the healed pool still drops cleanly (joins replacements).
        let probe = lg.pool().live_probe();
        drop(lg);
        assert_eq!(probe.load(std::sync::atomic::Ordering::SeqCst), 0);
    }

    #[test]
    fn panic_racing_shutdown_leaks_no_thread() {
        // A worker panic (probe) races pool drop from another thread:
        // whether the respawn wins or loses the race with the shutdown
        // latch, every thread must be joined.
        for _ in 0..20 {
            let lg = Arc::new(LiquidGemm::builder().workers(2).build().unwrap());
            let probe = lg.pool().live_probe();
            let h = {
                let lg = Arc::clone(&lg);
                std::thread::spawn(move || lg.inject_worker_panic())
            };
            drop(lg); // the last Arc may drop here or in the thread
            h.join().unwrap();
            assert_eq!(probe.load(std::sync::atomic::Ordering::SeqCst), 0);
        }
    }

    #[test]
    fn worker_stalls_and_submit_stalls_only_delay() {
        let inj = Arc::new(FaultInjector::new(
            lq_chaos::FaultPlan::quiet()
                .worker_stall_at(1, 100)
                .submit_stall_at(0, 100),
        ));
        let lg = LiquidGemm::builder()
            .workers(2)
            .fault_injector(Arc::clone(&inj))
            .build()
            .unwrap();
        let (x, s, w) = fixture(4, 16, 64);
        let want = lg.gemm(&x, &s, &w, KernelKind::Serial).y;
        assert_eq!(
            max_abs_diff(&lg.gemm(&x, &s, &w, KernelKind::ImFp).y, &want),
            0.0
        );
        let st = inj.stats();
        assert_eq!((st.worker_stalls, st.submit_stalls), (1, 1));
        assert_eq!(stats_sum(&lg), (0, 0), "stalls must not restart workers");
    }
}
