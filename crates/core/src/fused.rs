//! Fused activation-quantization GEMM front end.
//!
//! The paper's serving system (Section 6) quantizes FP16 activations to
//! INT8 on the fly, per token, "typically fused into other kernels".
//! This module is that fusion point on the API level: callers hand over
//! FP32 activations and get the W4A8 GEMM result; quantization happens
//! inside, optionally after SmoothQuant scale division, so no caller
//! ever routes unquantized activations into an INT8 kernel by mistake.

use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;

use crate::api::{gemm, GemmOutput, KernelKind, W4A8Weights};
use crate::pipeline::ParallelConfig;

/// W4A8 GEMM taking FP32 activations: per-token INT8 quantization is
/// fused in front of the kernel. `smooth` (length K), if given, divides
/// the activations channel-wise first (the SmoothQuant inverse scale —
/// the weights must have been quantized with the matching forward
/// scale).
#[must_use]
pub fn gemm_f32_activations(
    x: &Mat<f32>,
    weights: &W4A8Weights,
    smooth: Option<&[f32]>,
    kind: KernelKind,
    cfg: ParallelConfig,
) -> GemmOutput {
    assert_eq!(x.cols(), weights.k(), "K mismatch");
    let qa = QuantizedActivations::quantize(x, smooth);
    gemm(&qa.q, &qa.scales, weights, kind, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::PackedLqqLinear;
    use crate::reference::{gemm_f32_ref, max_abs_diff};
    use lq_quant::metrics::error_stats;
    use lq_quant::smooth::{calibrate, smooth_weights};

    fn fixture(m: usize, n: usize, k: usize) -> (Mat<f32>, Mat<f32>) {
        let x = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.019).sin() * 1.2);
        let w = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.008).cos() * 0.7);
        (x, w)
    }

    #[test]
    fn fused_equals_manual_two_step() {
        let (x, w) = fixture(6, 24, 128);
        let weights = W4A8Weights::Lqq(PackedLqqLinear::quantize(&w, 64));
        let fused = gemm_f32_activations(
            &x,
            &weights,
            None,
            KernelKind::Serial,
            ParallelConfig::default(),
        );
        let qa = QuantizedActivations::quantize(&x, None);
        let manual = gemm(
            &qa.q,
            &qa.scales,
            &weights,
            KernelKind::Serial,
            ParallelConfig::default(),
        );
        assert_eq!(max_abs_diff(&fused.y, &manual.y), 0.0);
    }

    #[test]
    fn fused_output_tracks_fp32() {
        let (x, w) = fixture(8, 32, 256);
        let weights = W4A8Weights::Lqq(PackedLqqLinear::quantize(&w, 64));
        let y = gemm_f32_activations(
            &x,
            &weights,
            None,
            KernelKind::Serial,
            ParallelConfig::default(),
        )
        .y;
        let e = error_stats(&gemm_f32_ref(&x, &w), &y);
        assert!(e.sqnr_db > 25.0, "sqnr {}", e.sqnr_db);
    }

    #[test]
    fn fused_smoothing_path_is_consistent() {
        // With outlier activations: smooth scales applied to weights at
        // quantization time and to activations inside the fused call
        // must cancel exactly in expectation.
        let (mut x, w) = fixture(8, 16, 64);
        for r in 0..x.rows() {
            x.row_mut(r)[5] *= 25.0; // outlier channel
        }
        let cal = calibrate(&x, &w, 7);
        let w_s = smooth_weights(&w, &cal.scales);
        let weights = W4A8Weights::Lqq(PackedLqqLinear::quantize(&w_s, 64));
        let y = gemm_f32_activations(
            &x,
            &weights,
            Some(&cal.scales),
            KernelKind::Serial,
            ParallelConfig::default(),
        )
        .y;
        let e = error_stats(&gemm_f32_ref(&x, &w), &y);
        assert!(e.cosine > 0.995, "cosine {}", e.cosine);
    }

    #[test]
    #[should_panic(expected = "K mismatch")]
    fn k_mismatch_panics() {
        let (x, _) = fixture(2, 4, 64);
        let w = Mat::from_fn(4, 128, |_, _| 0.1);
        let weights = W4A8Weights::Lqq(PackedLqqLinear::quantize(&w, 64));
        let _ = gemm_f32_activations(
            &x,
            &weights,
            None,
            KernelKind::Serial,
            ParallelConfig::default(),
        );
    }
}
