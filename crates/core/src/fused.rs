//! Fused activation-quantization GEMM front end.
//!
//! The paper's serving system (Section 6) quantizes FP16 activations to
//! INT8 on the fly, per token, "typically fused into other kernels".
//! That fusion point lives on the handle —
//! [`crate::LiquidGemm::gemm_f32`] — so no caller ever routes
//! unquantized activations into an INT8 kernel by mistake. This module
//! holds its tests; the implementation sits with the rest of the
//! handle methods in `runtime.rs`.

#[cfg(test)]
mod tests {
    use crate::api::{KernelKind, W4A8Weights};
    use crate::packed::PackedLqqLinear;
    use crate::reference::{gemm_f32_ref, max_abs_diff};
    use crate::runtime::LiquidGemm;
    use lq_quant::act::QuantizedActivations;
    use lq_quant::mat::Mat;
    use lq_quant::metrics::error_stats;
    use lq_quant::smooth::{calibrate, smooth_weights};

    fn fixture(m: usize, n: usize, k: usize) -> (Mat<f32>, Mat<f32>) {
        let x = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.019).sin() * 1.2);
        let w = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.008).cos() * 0.7);
        (x, w)
    }

    fn handle() -> LiquidGemm {
        LiquidGemm::builder().workers(2).build().unwrap()
    }

    #[test]
    fn fused_equals_manual_two_step() {
        let (x, w) = fixture(6, 24, 128);
        let weights = W4A8Weights::lqq(PackedLqqLinear::quantize(&w, 64));
        let lg = handle();
        let fused = lg.gemm_f32(&x, &weights, None, KernelKind::Serial);
        let qa = QuantizedActivations::quantize(&x, None);
        let manual = lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::Serial);
        assert_eq!(max_abs_diff(&fused.y, &manual.y), 0.0);
    }

    #[test]
    fn fused_output_tracks_fp32() {
        let (x, w) = fixture(8, 32, 256);
        let weights = W4A8Weights::lqq(PackedLqqLinear::quantize(&w, 64));
        let y = handle().gemm_f32(&x, &weights, None, KernelKind::Serial).y;
        let e = error_stats(&gemm_f32_ref(&x, &w), &y);
        assert!(e.sqnr_db > 25.0, "sqnr {}", e.sqnr_db);
    }

    #[test]
    fn fused_smoothing_path_is_consistent() {
        // With outlier activations: smooth scales applied to weights at
        // quantization time and to activations inside the fused call
        // must cancel exactly in expectation.
        let (mut x, w) = fixture(8, 16, 64);
        for r in 0..x.rows() {
            x.row_mut(r)[5] *= 25.0; // outlier channel
        }
        let cal = calibrate(&x, &w, 7);
        let w_s = smooth_weights(&w, &cal.scales);
        let weights = W4A8Weights::lqq(PackedLqqLinear::quantize(&w_s, 64));
        let y = handle()
            .gemm_f32(&x, &weights, Some(&cal.scales), KernelKind::Serial)
            .y;
        let e = error_stats(&gemm_f32_ref(&x, &w), &y);
        assert!(e.cosine > 0.995, "cosine {}", e.cosine);
    }

    #[test]
    #[should_panic(expected = "K mismatch")]
    fn k_mismatch_panics() {
        let (x, _) = fixture(2, 4, 64);
        let w = Mat::from_fn(4, 128, |_, _| 0.1);
        let weights = W4A8Weights::lqq(PackedLqqLinear::quantize(&w, 64));
        let _ = handle().gemm_f32(&x, &weights, None, KernelKind::Serial);
    }
}
