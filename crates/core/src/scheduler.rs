//! Persistent-kernel-style dynamic task scheduler.
//!
//! The paper's ImFP relies on *hardware* scheduling: fine-grained tasks
//! are claimed preemptively by whichever Compute WG is free, with no
//! software synchronisation beyond the claim itself. The CPU analog is
//! a single atomic counter: `claim()` is one `fetch_add`, wait-free, and
//! naturally load-balances workers that run at different speeds —
//! the property the ExCP design lacks.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Wait-free dynamic scheduler over `total` task indices.
#[derive(Debug)]
pub struct TaskScheduler {
    next: AtomicUsize,
    total: usize,
}

impl TaskScheduler {
    /// Scheduler over task ids `0..total`.
    #[must_use]
    pub fn new(total: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            total,
        }
    }

    /// Total task count.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Claim the next task, or `None` when exhausted.
    ///
    /// Relaxed ordering suffices: the claim itself carries no data, and
    /// task payloads are published before workers start (or handed over
    /// through channels, which synchronise).
    #[inline]
    pub fn claim(&self) -> Option<usize> {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        (id < self.total).then_some(id)
    }

    /// Claim a batch of up to `n` consecutive tasks (reduces contention
    /// for very fine tasks). Returns a half-open range.
    pub fn claim_batch(&self, n: usize) -> Option<std::ops::Range<usize>> {
        assert!(n > 0);
        let start = self.next.fetch_add(n, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(start..(start + n).min(self.total))
    }

    /// Number of tasks already claimed (may exceed `total` transiently
    /// after the last claim; clamped).
    #[must_use]
    pub fn claimed(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_claims_cover_range_once() {
        let s = TaskScheduler::new(5);
        let got: Vec<usize> = std::iter::from_fn(|| s.claim()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.claim(), None);
        assert_eq!(s.claimed(), 5);
    }

    #[test]
    fn batch_claims_partition_range() {
        let s = TaskScheduler::new(10);
        assert_eq!(s.claim_batch(4), Some(0..4));
        assert_eq!(s.claim_batch(4), Some(4..8));
        assert_eq!(s.claim_batch(4), Some(8..10));
        assert_eq!(s.claim_batch(4), None);
    }

    #[test]
    fn concurrent_claims_are_disjoint_and_complete() {
        let total = 10_000;
        let s = Arc::new(TaskScheduler::new(total));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                while let Some(id) = s.claim() {
                    mine.push(id);
                }
                mine
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..total).collect();
        assert_eq!(all, expect, "every task claimed exactly once");
    }

    #[test]
    fn zero_tasks_is_immediately_exhausted() {
        let s = TaskScheduler::new(0);
        assert_eq!(s.claim(), None);
        assert_eq!(s.claim_batch(3), None);
    }
}
