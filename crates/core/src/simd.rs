//! Explicit-SIMD i8 dot-product kernels — the ISA-specific half of the
//! microkernel dispatch layer (see [`crate::microkernel::MicrokernelSet`]
//! and DESIGN.md §13).
//!
//! Two hand-written variants sit behind runtime feature detection, with
//! the scalar (autovectorized) kernels in [`crate::microkernel`] as both
//! the portable fallback and the bit-exactness oracle:
//!
//! * **AVX2** (`avx2`): 16-lane i8 streams are sign-extended to i16
//!   (`vpmovsxbw`) and reduced with `vpmaddwd` into 8 i32 lanes. This is
//!   exact for every i8×i8 product: a pair sum is bounded by
//!   `2·128·128 = 32768 ≤ i32::MAX`, so no intermediate saturates. The
//!   tempting one-instruction alternative — `vpmaddubsw`
//!   (`_mm256_maddubs_epi16`, u8×i8 with i16 *saturating* pair sums) —
//!   is **not** bit-exact at the extremes: `128·128 + 128·127` saturates
//!   at `i16::MAX`, and the usual `vpsignb` operand-order fix-up
//!   overflows for `w = -128`. We only use the u8×i8 trick where the
//!   hardware accumulates at i32 width (the VNNI path below).
//! * **AVX-512-VNNI** (`avx512vnni`): `vpdpbusd`
//!   (`_mm512_dpbusd_epi32`) multiplies *unsigned* bytes by signed bytes
//!   and accumulates quads directly into i32 lanes — no intermediate
//!   narrowing, so no saturation (unlike `vpdpbusds`). Our activations
//!   are signed, so the operand-order trick becomes a bias: feed
//!   `a ⊕ 0x80` (i.e. `a + 128` as u8) and compensate with
//!   `128·Σw`, where `Σw` comes from a second `vpdpbusd` against an
//!   all-ones byte vector. Both the biased sum and the compensation are
//!   carried per i32 lane and only combined — in i64, so the biased
//!   intermediate can never wrap — at scatter time. Exact for
//!   `K ≤ 2^17`, the same bound the scalar kernel documents.
//!
//! Accumulator chains keep their partial sums *vector-shaped* (8 or 16
//! i32 lanes per chain, stored to the caller's accumulator buffer
//! between calls) and are reduced horizontally exactly once, when a
//! channel is scattered: i32 addition is associative, so any lane
//! split/merge order produces bit-identical results to the scalar
//! left-to-right reduction.
//!
//! This module (and [`crate::affinity`]) are the only places in
//! `lq-core` allowed to use `unsafe`: every kernel is an
//! `#[target_feature]` function reached solely through safe wrappers
//! that check slice bounds and are only constructed after
//! `is_x86_feature_detected!` confirmed the ISA.

#![allow(unsafe_code)]

/// Instruction-set variant of the i8 microkernel family. `Scalar` is
/// always available; the SIMD variants exist only where
/// `is_x86_feature_detected!` confirms the hardware at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdVariant {
    /// Portable autovectorized kernels ([`crate::microkernel::mk_i8_4x4`]
    /// and friends) — fallback and bit-exactness oracle.
    Scalar,
    /// AVX2 sign-extend + `vpmaddwd` (8 i32 lanes per chain).
    Avx2,
    /// AVX-512-VNNI `vpdpbusd` with the `a ⊕ 0x80` bias trick
    /// (16 i32 lanes per chain).
    Vnni,
}

impl SimdVariant {
    /// Stable label used in telemetry (`variant="avx2|vnni|scalar"`)
    /// and bench JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SimdVariant::Scalar => "scalar",
            SimdVariant::Avx2 => "avx2",
            SimdVariant::Vnni => "vnni",
        }
    }

    /// Parse a [`SimdVariant::label`] back (env overrides, CLIs).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(SimdVariant::Scalar),
            "avx2" => Some(SimdVariant::Avx2),
            "vnni" => Some(SimdVariant::Vnni),
            _ => None,
        }
    }

    /// Does the running CPU support this variant?
    #[must_use]
    pub fn available(self) -> bool {
        match self {
            SimdVariant::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdVariant::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            SimdVariant::Vnni => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512bw")
                    && std::arch::is_x86_feature_detected!("avx512vnni")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Every variant the running CPU supports (always includes
    /// `Scalar`) — the property suite iterates this.
    #[must_use]
    pub fn detected() -> Vec<SimdVariant> {
        [SimdVariant::Scalar, SimdVariant::Avx2, SimdVariant::Vnni]
            .into_iter()
            .filter(|v| v.available())
            .collect()
    }

    /// The fastest available variant (VNNI > AVX2 > scalar).
    #[must_use]
    pub fn best_available() -> SimdVariant {
        if SimdVariant::Vnni.available() {
            SimdVariant::Vnni
        } else if SimdVariant::Avx2.available() {
            SimdVariant::Avx2
        } else {
            SimdVariant::Scalar
        }
    }

    /// i32 partial-sum lanes each accumulator chain carries (1 for the
    /// scalar kernels' plain i32).
    #[must_use]
    pub(crate) fn lanes(self) -> usize {
        match self {
            SimdVariant::Scalar => 1,
            SimdVariant::Avx2 => 8,
            SimdVariant::Vnni => 16,
        }
    }
}

/// Best-effort read prefetch of `slice[idx..]` into L1 (`prefetcht0`).
/// Out-of-range indices and non-x86 targets are no-ops — this is a pure
/// hint and never affects results.
#[inline(always)]
pub(crate) fn prefetch_read<T>(slice: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    if idx < slice.len() {
        // SAFETY: the pointer is in bounds; prefetch reads nothing
        // architecturally and writes nothing.
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                slice.as_ptr().add(idx).cast::<i8>(),
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slice, idx);
    }
}

// ---------------------------------------------------------------------------
// Safe wrappers. Each checks bounds, asserts the MR it was handed is a
// supported monomorphization, and (in debug) that the ISA was detected.
// On non-x86_64 targets they are unreachable: `SimdVariant::available`
// never admits a SIMD variant there, so the dispatch layer cannot call
// them.
// ---------------------------------------------------------------------------

/// One `MR`-row panel of *biased* (`x ⊕ 0x80`) activation rows against
/// `strip` weight rows over `kc`, adding into per-chain 16-lane i32
/// partials: chain `(nr, r)` occupies `acc[(nr*MR + r)*16..][..16]`.
#[cfg(target_arch = "x86_64")]
pub(crate) fn vnni_panel(a: &[&[u8]], w_block: &[i8], kc: usize, strip: usize, acc: &mut [i32]) {
    debug_assert!(SimdVariant::Vnni.available());
    assert!(a.iter().all(|r| r.len() >= kc));
    assert!(w_block.len() >= strip * kc);
    assert!(acc.len() >= strip * a.len() * 16);
    // SAFETY: bounds checked above; the target features were verified by
    // `SimdVariant::available` before this variant could be selected.
    match *a {
        [r0] => unsafe { panel_vnni::<1>([r0], w_block, kc, strip, acc) },
        [r0, r1, r2, r3] => unsafe { panel_vnni::<4>([r0, r1, r2, r3], w_block, kc, strip, acc) },
        [r0, r1, r2, r3, r4, r5] => unsafe {
            panel_vnni::<6>([r0, r1, r2, r3, r4, r5], w_block, kc, strip, acc)
        },
        _ => unreachable!("unsupported VNNI panel height {}", a.len()),
    }
}

/// Per-weight-row byte sums `Σw` over `[0, kc)`, added into 16-lane i32
/// partials at `acc[nr*16..][..16]` — the compensation term for the
/// VNNI bias trick (`true = biased − 128·Σw`).
#[cfg(target_arch = "x86_64")]
pub(crate) fn vnni_wsum(w_block: &[i8], kc: usize, strip: usize, acc: &mut [i32]) {
    debug_assert!(SimdVariant::Vnni.available());
    assert!(w_block.len() >= strip * kc);
    assert!(acc.len() >= strip * 16);
    // SAFETY: bounds checked above; ISA verified at variant selection.
    unsafe { wsum_vnni(w_block, kc, strip, acc) }
}

/// One `MR`-row panel of i8 activation rows against `strip` weight rows
/// over `kc`, adding into per-chain 8-lane i32 partials: chain `(nr, r)`
/// occupies `acc[(nr*MR + r)*8..][..8]`.
#[cfg(target_arch = "x86_64")]
pub(crate) fn avx2_panel(a: &[&[i8]], w_block: &[i8], kc: usize, strip: usize, acc: &mut [i32]) {
    debug_assert!(SimdVariant::Avx2.available());
    assert!(a.iter().all(|r| r.len() >= kc));
    assert!(w_block.len() >= strip * kc);
    assert!(acc.len() >= strip * a.len() * 8);
    // SAFETY: bounds checked above; ISA verified at variant selection.
    match *a {
        [r0] => unsafe { panel_avx2::<1>([r0], w_block, kc, strip, acc) },
        [r0, r1, r2, r3] => unsafe { panel_avx2::<4>([r0, r1, r2, r3], w_block, kc, strip, acc) },
        [r0, r1, r2, r3, r4, r5] => unsafe {
            panel_avx2::<6>([r0, r1, r2, r3, r4, r5], w_block, kc, strip, acc)
        },
        _ => unreachable!("unsupported AVX2 panel height {}", a.len()),
    }
}

/// `strip` dot products of one biased activation row chunk against
/// `strip` weight rows, reduced in-register and *added* to `out[nr]`
/// (the tiled kernel's per-group accumulation). `kc ≤ 2^14` keeps the
/// biased in-register sum far from i32 wrap.
#[cfg(target_arch = "x86_64")]
pub(crate) fn vnni_dot_strip(a_biased: &[u8], w_block: &[i8], kc: usize, out: &mut [i32]) {
    debug_assert!(SimdVariant::Vnni.available());
    assert!(kc <= 1 << 14, "dot_strip kc bound (biased i32 headroom)");
    assert!(a_biased.len() >= kc);
    assert!(w_block.len() >= out.len() * kc);
    // SAFETY: bounds checked above; ISA verified at variant selection.
    unsafe { dot_strip_vnni(a_biased, w_block, kc, out) }
}

/// `strip` dot products of one i8 activation row chunk against `strip`
/// weight rows, reduced in-register and *added* to `out[nr]`.
#[cfg(target_arch = "x86_64")]
pub(crate) fn avx2_dot_strip(a: &[i8], w_block: &[i8], kc: usize, out: &mut [i32]) {
    debug_assert!(SimdVariant::Avx2.available());
    assert!(kc <= 1 << 14, "dot_strip kc bound");
    assert!(a.len() >= kc);
    assert!(w_block.len() >= out.len() * kc);
    // SAFETY: bounds checked above; ISA verified at variant selection.
    unsafe { dot_strip_avx2(a, w_block, kc, out) }
}

// Non-x86_64 stubs: the dispatch layer can only select SIMD variants
// where `available()` said yes, which is never on these targets.
#[cfg(not(target_arch = "x86_64"))]
mod stubs {
    #![allow(dead_code)]
    pub(crate) fn vnni_panel(_: &[&[u8]], _: &[i8], _: usize, _: usize, _: &mut [i32]) {
        unreachable!("VNNI kernel on a non-x86_64 target")
    }
    pub(crate) fn vnni_wsum(_: &[i8], _: usize, _: usize, _: &mut [i32]) {
        unreachable!("VNNI kernel on a non-x86_64 target")
    }
    pub(crate) fn avx2_panel(_: &[&[i8]], _: &[i8], _: usize, _: usize, _: &mut [i32]) {
        unreachable!("AVX2 kernel on a non-x86_64 target")
    }
    pub(crate) fn vnni_dot_strip(_: &[u8], _: &[i8], _: usize, _: &mut [i32]) {
        unreachable!("VNNI kernel on a non-x86_64 target")
    }
    pub(crate) fn avx2_dot_strip(_: &[i8], _: &[i8], _: usize, _: &mut [i32]) {
        unreachable!("AVX2 kernel on a non-x86_64 target")
    }
}
#[cfg(not(target_arch = "x86_64"))]
pub(crate) use stubs::*;

// ---------------------------------------------------------------------------
// The kernels proper.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::{
    __m128i, __m256i, __mmask64, _mm256_add_epi32, _mm256_castsi256_si128, _mm256_cvtepi8_epi16,
    _mm256_extracti128_si256, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_setzero_si256,
    _mm256_storeu_si256, _mm512_add_epi32, _mm512_dpbusd_epi32, _mm512_loadu_si512,
    _mm512_maskz_loadu_epi8, _mm512_reduce_add_epi32, _mm512_set1_epi8, _mm512_setzero_si512,
    _mm512_storeu_si512, _mm_add_epi32, _mm_cvtsi128_si32, _mm_loadu_si128, _mm_shuffle_epi32,
    _mm_unpackhi_epi64,
};

/// How many K bytes ahead of the current position the panel kernels
/// prefetch the next activation/weight data.
#[cfg(target_arch = "x86_64")]
const PREFETCH_AHEAD: usize = 256;

/// # Safety
/// Caller guarantees avx512f/bw/vnni, `a[r].len() >= kc`,
/// `w_block.len() >= strip*kc`, `acc.len() >= strip*MR*16`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
unsafe fn panel_vnni<const MR: usize>(
    a: [&[u8]; MR],
    w_block: &[i8],
    kc: usize,
    strip: usize,
    acc: &mut [i32],
) {
    for nr in 0..strip {
        let w_row = w_block.as_ptr().add(nr * kc);
        let mut lanes = [_mm512_setzero_si512(); MR];
        let mut t = 0usize;
        while t + 64 <= kc {
            prefetch_read(w_block, nr * kc + t + PREFETCH_AHEAD);
            let wv = _mm512_loadu_si512(w_row.add(t).cast());
            for r in 0..MR {
                let av = _mm512_loadu_si512(a[r].as_ptr().add(t).cast());
                lanes[r] = _mm512_dpbusd_epi32(lanes[r], av, wv);
            }
            t += 64;
        }
        if t < kc {
            // Masked tail load: lanes beyond `kc` read as 0 and
            // contribute 0 to every quad sum — exact.
            let mask: __mmask64 = (1u64 << (kc - t)) - 1;
            let wv = _mm512_maskz_loadu_epi8(mask, w_row.add(t));
            for r in 0..MR {
                let av = _mm512_maskz_loadu_epi8(mask, a[r].as_ptr().add(t).cast());
                lanes[r] = _mm512_dpbusd_epi32(lanes[r], av, wv);
            }
        }
        for (r, lane) in lanes.iter().enumerate() {
            let dst = acc.as_mut_ptr().add((nr * MR + r) * 16);
            let cur = _mm512_loadu_si512(dst.cast_const().cast());
            _mm512_storeu_si512(dst.cast(), _mm512_add_epi32(cur, *lane));
        }
    }
}

/// # Safety
/// Caller guarantees avx512f/bw/vnni, `w_block.len() >= strip*kc`,
/// `acc.len() >= strip*16`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
unsafe fn wsum_vnni(w_block: &[i8], kc: usize, strip: usize, acc: &mut [i32]) {
    let ones = _mm512_set1_epi8(1);
    for nr in 0..strip {
        let w_row = w_block.as_ptr().add(nr * kc);
        let mut lane = _mm512_setzero_si512();
        let mut t = 0usize;
        while t + 64 <= kc {
            let wv = _mm512_loadu_si512(w_row.add(t).cast());
            lane = _mm512_dpbusd_epi32(lane, ones, wv);
            t += 64;
        }
        if t < kc {
            let mask: __mmask64 = (1u64 << (kc - t)) - 1;
            let wv = _mm512_maskz_loadu_epi8(mask, w_row.add(t));
            lane = _mm512_dpbusd_epi32(lane, ones, wv);
        }
        let dst = acc.as_mut_ptr().add(nr * 16);
        let cur = _mm512_loadu_si512(dst.cast_const().cast());
        _mm512_storeu_si512(dst.cast(), _mm512_add_epi32(cur, lane));
    }
}

/// # Safety
/// Caller guarantees avx512f/bw/vnni, `a_biased.len() >= kc`,
/// `w_block.len() >= out.len()*kc`, `kc ≤ 2^14`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
unsafe fn dot_strip_vnni(a_biased: &[u8], w_block: &[i8], kc: usize, out: &mut [i32]) {
    let ones = _mm512_set1_epi8(1);
    for (nr, o) in out.iter_mut().enumerate() {
        let w_row = w_block.as_ptr().add(nr * kc);
        let mut biased = _mm512_setzero_si512();
        let mut wsum = _mm512_setzero_si512();
        let mut t = 0usize;
        while t + 64 <= kc {
            let wv = _mm512_loadu_si512(w_row.add(t).cast());
            let av = _mm512_loadu_si512(a_biased.as_ptr().add(t).cast());
            biased = _mm512_dpbusd_epi32(biased, av, wv);
            wsum = _mm512_dpbusd_epi32(wsum, ones, wv);
            t += 64;
        }
        if t < kc {
            let mask: __mmask64 = (1u64 << (kc - t)) - 1;
            let wv = _mm512_maskz_loadu_epi8(mask, w_row.add(t));
            let av = _mm512_maskz_loadu_epi8(mask, a_biased.as_ptr().add(t).cast());
            biased = _mm512_dpbusd_epi32(biased, av, wv);
            wsum = _mm512_dpbusd_epi32(wsum, ones, wv);
        }
        // kc ≤ 2^14 ⇒ |biased total| ≤ 255·128·2^14 < 2^30: safe in i32.
        *o += _mm512_reduce_add_epi32(biased) - 128 * _mm512_reduce_add_epi32(wsum);
    }
}

/// Horizontal sum of 8 i32 lanes.
///
/// # Safety
/// Caller guarantees avx2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi32_avx2(v: __m256i) -> i32 {
    let lo = _mm256_castsi256_si128(v);
    let hi = _mm256_extracti128_si256(v, 1);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b0101_0101));
    _mm_cvtsi128_si32(s)
}

/// Load 16 i8 and sign-extend to 16 i16 lanes.
///
/// # Safety
/// Caller guarantees avx2 and 16 readable bytes at `p`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn load_sx16(p: *const i8) -> __m256i {
    _mm256_cvtepi8_epi16(_mm_loadu_si128(p.cast::<__m128i>()))
}

/// # Safety
/// Caller guarantees avx2, `a[r].len() >= kc`,
/// `w_block.len() >= strip*kc`, `acc.len() >= strip*MR*8`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn panel_avx2<const MR: usize>(
    a: [&[i8]; MR],
    w_block: &[i8],
    kc: usize,
    strip: usize,
    acc: &mut [i32],
) {
    for nr in 0..strip {
        let w_row = w_block.as_ptr().add(nr * kc);
        let mut lanes = [_mm256_setzero_si256(); MR];
        let mut t = 0usize;
        while t + 16 <= kc {
            prefetch_read(w_block, nr * kc + t + PREFETCH_AHEAD);
            // Sign-extend to i16 and vpmaddwd: every pair sum is
            // ≤ 2·128·128 and accumulates at i32 width — exact, unlike
            // vpmaddubsw's saturating i16 pair sums (module docs).
            let wv = load_sx16(w_row.add(t));
            for r in 0..MR {
                let av = load_sx16(a[r].as_ptr().add(t));
                lanes[r] = _mm256_add_epi32(lanes[r], _mm256_madd_epi16(av, wv));
            }
            t += 16;
        }
        if t < kc {
            let rem = kc - t;
            let mut wtail = [0i8; 16];
            wtail[..rem].copy_from_slice(&w_block[nr * kc + t..nr * kc + kc]);
            let wv = load_sx16(wtail.as_ptr());
            for r in 0..MR {
                let mut atail = [0i8; 16];
                atail[..rem].copy_from_slice(&a[r][t..kc]);
                let av = load_sx16(atail.as_ptr());
                lanes[r] = _mm256_add_epi32(lanes[r], _mm256_madd_epi16(av, wv));
            }
        }
        for (r, lane) in lanes.iter().enumerate() {
            let dst = acc.as_mut_ptr().add((nr * MR + r) * 8);
            let cur = _mm256_loadu_si256(dst.cast_const().cast());
            _mm256_storeu_si256(dst.cast(), _mm256_add_epi32(cur, *lane));
        }
    }
}

/// # Safety
/// Caller guarantees avx2, `a.len() >= kc`,
/// `w_block.len() >= out.len()*kc`, `kc ≤ 2^14`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_strip_avx2(a: &[i8], w_block: &[i8], kc: usize, out: &mut [i32]) {
    for (nr, o) in out.iter_mut().enumerate() {
        let w_row = w_block.as_ptr().add(nr * kc);
        let mut lanes = _mm256_setzero_si256();
        let mut t = 0usize;
        while t + 16 <= kc {
            let wv = load_sx16(w_row.add(t));
            let av = load_sx16(a.as_ptr().add(t));
            lanes = _mm256_add_epi32(lanes, _mm256_madd_epi16(av, wv));
            t += 16;
        }
        if t < kc {
            let rem = kc - t;
            let mut wtail = [0i8; 16];
            wtail[..rem].copy_from_slice(&w_block[nr * kc + t..nr * kc + kc]);
            let mut atail = [0i8; 16];
            atail[..rem].copy_from_slice(&a[t..kc]);
            lanes = _mm256_add_epi32(
                lanes,
                _mm256_madd_epi16(load_sx16(atail.as_ptr()), load_sx16(wtail.as_ptr())),
            );
        }
        *o += hsum_epi32_avx2(lanes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for v in [SimdVariant::Scalar, SimdVariant::Avx2, SimdVariant::Vnni] {
            assert_eq!(SimdVariant::parse(v.label()), Some(v));
        }
        assert_eq!(SimdVariant::parse("neon"), None);
    }

    #[test]
    fn detection_always_includes_scalar_and_respects_ordering() {
        let d = SimdVariant::detected();
        assert!(d.contains(&SimdVariant::Scalar));
        assert!(d.contains(&SimdVariant::best_available()));
        assert!(SimdVariant::best_available().available());
    }

    #[test]
    fn prefetch_is_inert() {
        let v = vec![1u8; 64];
        prefetch_read(&v, 0);
        prefetch_read(&v, 63);
        prefetch_read(&v, 64); // out of range: no-op
        prefetch_read::<u8>(&[], 0);
    }

    #[cfg(target_arch = "x86_64")]
    fn naive_dot(a: &[i8], w: &[i8]) -> i32 {
        a.iter()
            .zip(w)
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum()
    }

    /// Every kernel, against the naive dot, over ragged kc including
    /// the all-`i8::MIN` extreme — the saturation trap the module docs
    /// describe.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn kernels_match_naive_including_extremes() {
        let mut rng = lq_rng::Rng::new(0x51D_CAFE);
        for kc in [1usize, 7, 15, 16, 17, 63, 64, 65, 130, 256] {
            let strip = 16usize;
            let mut cases: Vec<(Vec<i8>, Vec<i8>)> = Vec::new();
            cases.push((
                rng.vec_i8(6 * kc, -128, 127),
                rng.vec_i8(strip * kc, -128, 127),
            ));
            // All-extreme inputs: -128 everywhere.
            cases.push((vec![-128i8; 6 * kc], vec![-128i8; strip * kc]));
            for (a_rows, w_block) in cases {
                let rows: Vec<&[i8]> = a_rows.chunks(kc).collect();
                let biased: Vec<u8> = a_rows.iter().map(|&v| (v as u8) ^ 0x80).collect();
                let brows: Vec<&[u8]> = biased.chunks(kc).collect();
                let want: Vec<i32> = (0..strip)
                    .flat_map(|nr| {
                        rows.iter()
                            .map(move |r| (nr, r))
                            .map(|(nr, r)| naive_dot(r, &w_block[nr * kc..(nr + 1) * kc]))
                    })
                    .collect();
                if SimdVariant::Avx2.available() {
                    let mut acc = vec![0i32; strip * 6 * 8];
                    avx2_panel(&rows, &w_block, kc, strip, &mut acc);
                    for (ci, &w) in want.iter().enumerate() {
                        let got: i64 = acc[ci * 8..(ci + 1) * 8]
                            .iter()
                            .map(|&v| i64::from(v))
                            .sum();
                        assert_eq!(got, i64::from(w), "avx2 kc={kc} chain={ci}");
                    }
                    let mut out = vec![0i32; strip];
                    avx2_dot_strip(rows[0], &w_block, kc, &mut out);
                    for nr in 0..strip {
                        assert_eq!(out[nr], want[nr * 6], "avx2 dot_strip kc={kc} nr={nr}");
                    }
                }
                if SimdVariant::Vnni.available() {
                    let mut acc = vec![0i32; strip * 6 * 16];
                    let mut wsum = vec![0i32; strip * 16];
                    vnni_panel(&brows, &w_block, kc, strip, &mut acc);
                    vnni_wsum(&w_block, kc, strip, &mut wsum);
                    for nr in 0..strip {
                        let ws: i64 = wsum[nr * 16..(nr + 1) * 16]
                            .iter()
                            .map(|&v| i64::from(v))
                            .sum();
                        for r in 0..6 {
                            let ci = nr * 6 + r;
                            let biased_sum: i64 = acc[ci * 16..(ci + 1) * 16]
                                .iter()
                                .map(|&v| i64::from(v))
                                .sum();
                            assert_eq!(
                                biased_sum - 128 * ws,
                                i64::from(want[ci]),
                                "vnni kc={kc} chain={ci}"
                            );
                        }
                    }
                    let mut out = vec![0i32; strip];
                    vnni_dot_strip(brows[0], &w_block, kc, &mut out);
                    for nr in 0..strip {
                        assert_eq!(out[nr], want[nr * 6], "vnni dot_strip kc={kc} nr={nr}");
                    }
                }
            }
        }
    }
}
