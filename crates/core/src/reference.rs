//! Naive reference GEMMs — the oracles every kernel is tested against.
//!
//! Deliberately simple triple loops with no tiling, no SWAR, no
//! parallelism. Integer paths are exact, so optimized kernels must match
//! them bit-for-bit; float paths define the semantics the f32 kernels
//! approximate.

use lq_quant::mat::Mat;

/// `Y = X Wᵀ` over INT8 operands with i32 accumulation:
/// `X: M×K (i8)`, `W: N×K (i8)` → `Y: M×N (i32)`.
#[must_use]
pub fn gemm_i8_ref(x: &Mat<i8>, w: &Mat<i8>) -> Mat<i32> {
    assert_eq!(x.cols(), w.cols(), "K mismatch");
    let (m, k, n) = (x.rows(), x.cols(), w.rows());
    let mut y = Mat::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for l in 0..k {
                acc += i32::from(*x.get(i, l)) * i32::from(*w.get(j, l));
            }
            y.set(i, j, acc);
        }
    }
    y
}

/// `Y = X Wᵀ` over f32: `X: M×K`, `W: N×K` → `Y: M×N`.
#[must_use]
pub fn gemm_f32_ref(x: &Mat<f32>, w: &Mat<f32>) -> Mat<f32> {
    assert_eq!(x.cols(), w.cols(), "K mismatch");
    let (m, k, n) = (x.rows(), x.cols(), w.rows());
    let mut y = Mat::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += x.get(i, l) * w.get(j, l);
            }
            y.set(i, j, acc);
        }
    }
    y
}

/// Apply the W4A8 epilogue to an integer accumulator: per-token
/// activation scale × per-channel weight scale.
#[must_use]
pub fn epilogue_ref(acc: &Mat<i32>, act_scales: &[f32], channel_scales: &[f32]) -> Mat<f32> {
    assert_eq!(act_scales.len(), acc.rows());
    assert_eq!(channel_scales.len(), acc.cols());
    Mat::from_fn(acc.rows(), acc.cols(), |i, j| {
        *acc.get(i, j) as f32 * act_scales[i] * channel_scales[j]
    })
}

/// Max absolute elementwise difference between two f32 matrices.
#[must_use]
pub fn max_abs_diff(a: &Mat<f32>, b: &Mat<f32>) -> f32 {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    a.as_slice()
        .iter()
        .zip(b.as_slice().iter())
        .fold(0.0f32, |m, (&x, &y)| m.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i8_gemm_small_hand_case() {
        // X = [[1,2],[3,4]], W = [[5,6],[7,8]] → Y = X Wᵀ
        let x = Mat::from_vec(2, 2, vec![1i8, 2, 3, 4]);
        let w = Mat::from_vec(2, 2, vec![5i8, 6, 7, 8]);
        let y = gemm_i8_ref(&x, &w);
        assert_eq!(y.as_slice(), &[17, 23, 39, 53]);
    }

    #[test]
    fn f32_gemm_small_hand_case() {
        let x = Mat::from_vec(1, 3, vec![1.0f32, 0.5, -2.0]);
        let w = Mat::from_vec(2, 3, vec![2.0f32, 4.0, 1.0, -1.0, 0.0, 3.0]);
        let y = gemm_f32_ref(&x, &w);
        assert_eq!(y.as_slice(), &[2.0, -7.0]);
    }

    #[test]
    fn epilogue_applies_both_scales() {
        let acc = Mat::from_vec(2, 2, vec![10i32, 20, 30, 40]);
        let y = epilogue_ref(&acc, &[0.5, 2.0], &[1.0, 0.1]);
        assert_eq!(y.as_slice(), &[5.0, 1.0, 60.0, 8.0]);
    }

    #[test]
    fn max_abs_diff_finds_worst_cell() {
        let a = Mat::from_vec(1, 3, vec![1.0f32, 2.0, 3.0]);
        let b = Mat::from_vec(1, 3, vec![1.5f32, 2.0, 1.0]);
        assert_eq!(max_abs_diff(&a, &b), 2.0);
    }

    #[test]
    #[should_panic(expected = "K mismatch")]
    fn shape_mismatch_panics() {
        let x: Mat<i8> = Mat::zeros(2, 3);
        let w: Mat<i8> = Mat::zeros(2, 4);
        let _ = gemm_i8_ref(&x, &w);
    }
}
