//! Cache/topology-aware worker placement: CPU pinning via raw
//! `sched_setaffinity`, with a portable no-op fallback.
//!
//! The workspace is std-only (no `libc`), so on Linux/x86_64 the two
//! affinity syscalls are issued directly with `core::arch::asm!`. On
//! every other target the policy degrades to [`PlacementPolicy::Unpinned`]
//! behaviour: `cpu_for` still computes a placement, but `pin_thread`
//! reports failure and the pool simply records "not pinned" in
//! [`crate::WorkerStats`].
//!
//! The allowed-CPU list is snapshotted once (at first pool startup,
//! before any worker pins itself) from the process affinity mask, so
//! cgroup/taskset restrictions are respected and later per-thread pins
//! don't corrupt the view.
//!
//! This module (and [`crate::simd`]) are the only places in `lq-core`
//! allowed to use `unsafe`.

#![allow(unsafe_code)]

use std::sync::OnceLock;

/// How pool workers are placed on CPUs. Exposed through
/// `ParallelConfig::builder()` and `LiquidGemm::builder()`; the
/// resulting per-worker CPU is reported in `WorkerStats::pinned_cpu`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementPolicy {
    /// Leave workers wherever the OS scheduler puts them (default —
    /// matches all prior releases).
    #[default]
    Unpinned,
    /// Pin worker `i` to the `i`-th allowed CPU, wrapping. Packs
    /// workers onto adjacent CPUs, which keeps sibling workers sharing
    /// L2/L3 — best when workers exchange staged tiles (ImFP/ExCP).
    Compact,
    /// Spread workers evenly across the allowed-CPU list. Maximizes
    /// per-worker cache/bandwidth share — best for flat data-parallel
    /// jobs on multi-socket or hybrid parts.
    Scatter,
}

impl PlacementPolicy {
    /// Stable label, used in `worker_stats()` reporting and benches.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::Unpinned => "unpinned",
            PlacementPolicy::Compact => "compact",
            PlacementPolicy::Scatter => "scatter",
        }
    }

    /// Parse a [`PlacementPolicy::label`] back.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "unpinned" => Some(PlacementPolicy::Unpinned),
            "compact" => Some(PlacementPolicy::Compact),
            "scatter" => Some(PlacementPolicy::Scatter),
            _ => None,
        }
    }

    /// The CPU worker `worker` (of `workers` total) should pin to under
    /// this policy, or `None` for unpinned.
    #[must_use]
    pub(crate) fn cpu_for(self, worker: usize, workers: usize) -> Option<usize> {
        if self == PlacementPolicy::Unpinned {
            return None;
        }
        let allowed = allowed_cpus();
        if allowed.is_empty() {
            return None;
        }
        let idx = match self {
            PlacementPolicy::Unpinned => unreachable!(),
            PlacementPolicy::Compact => worker % allowed.len(),
            PlacementPolicy::Scatter => (worker * allowed.len() / workers.max(1)) % allowed.len(),
        };
        Some(allowed[idx])
    }
}

/// CPUs this process may run on, snapshotted once from the process
/// affinity mask (falls back to `0..available_parallelism` where the
/// mask can't be read).
pub(crate) fn allowed_cpus() -> &'static [usize] {
    static CPUS: OnceLock<Vec<usize>> = OnceLock::new();
    CPUS.get_or_init(|| {
        sys::current_mask().unwrap_or_else(|| {
            let n = std::thread::available_parallelism().map_or(1, |n| n.get());
            (0..n).collect()
        })
    })
}

/// Pin the calling thread to `cpu`. Returns whether the kernel accepted
/// the mask (always `false` on non-Linux targets).
pub(crate) fn pin_thread(cpu: usize) -> bool {
    sys::set_cpu(cpu)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    const SYS_SCHED_SETAFFINITY: u64 = 203;
    const SYS_SCHED_GETAFFINITY: u64 = 204;
    /// 16 × u64 = 1024 CPUs, the kernel's default `CONFIG_NR_CPUS` cap.
    const SET_WORDS: usize = 16;

    /// Raw 3-argument syscall.
    ///
    /// # Safety
    /// `nr` and its arguments must form a valid syscall; pointer
    /// arguments must be live for the kernel's access.
    unsafe fn syscall3(nr: u64, a: u64, b: u64, c: u64) -> i64 {
        let ret: i64;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// The calling thread's affinity mask as a sorted CPU list.
    pub(super) fn current_mask() -> Option<Vec<usize>> {
        let mut set = [0u64; SET_WORDS];
        // SAFETY: `set` outlives the call and is sized per `rsi`;
        // pid 0 means "calling thread".
        let r = unsafe {
            syscall3(
                SYS_SCHED_GETAFFINITY,
                0,
                core::mem::size_of_val(&set) as u64,
                set.as_mut_ptr() as u64,
            )
        };
        // sched_getaffinity returns the number of bytes copied on
        // success (> 0), a negated errno on failure.
        if r <= 0 {
            return None;
        }
        let cpus: Vec<usize> = (0..SET_WORDS * 64)
            .filter(|&c| set[c / 64] >> (c % 64) & 1 == 1)
            .collect();
        if cpus.is_empty() {
            None
        } else {
            Some(cpus)
        }
    }

    /// Pin the calling thread to exactly `cpu`.
    pub(super) fn set_cpu(cpu: usize) -> bool {
        if cpu >= SET_WORDS * 64 {
            return false;
        }
        let mut set = [0u64; SET_WORDS];
        set[cpu / 64] = 1u64 << (cpu % 64);
        // SAFETY: `set` outlives the call and is sized per `rsi`;
        // pid 0 means "calling thread".
        let r = unsafe {
            syscall3(
                SYS_SCHED_SETAFFINITY,
                0,
                core::mem::size_of_val(&set) as u64,
                set.as_ptr() as u64,
            )
        };
        r == 0
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod sys {
    pub(super) fn current_mask() -> Option<Vec<usize>> {
        None
    }
    pub(super) fn set_cpu(_cpu: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for p in [
            PlacementPolicy::Unpinned,
            PlacementPolicy::Compact,
            PlacementPolicy::Scatter,
        ] {
            assert_eq!(PlacementPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(PlacementPolicy::parse("numa"), None);
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::Unpinned);
    }

    #[test]
    fn unpinned_never_places() {
        for w in 0..8 {
            assert_eq!(PlacementPolicy::Unpinned.cpu_for(w, 4), None);
        }
    }

    #[test]
    fn placements_are_within_the_allowed_set() {
        let allowed = allowed_cpus();
        assert!(!allowed.is_empty());
        for policy in [PlacementPolicy::Compact, PlacementPolicy::Scatter] {
            for workers in 1..9usize {
                for w in 0..workers {
                    let cpu = policy.cpu_for(w, workers).expect("pinned policy places");
                    assert!(
                        allowed.contains(&cpu),
                        "{policy:?} w={w}/{workers} -> {cpu}"
                    );
                }
            }
        }
    }

    #[test]
    fn compact_packs_and_scatter_spreads() {
        let n = allowed_cpus().len();
        // Compact walks the allowed list in order.
        for w in 0..n {
            assert_eq!(
                PlacementPolicy::Compact.cpu_for(w, n),
                Some(allowed_cpus()[w % n])
            );
        }
        // Scatter with workers == allowed covers every CPU exactly once.
        let mut seen: Vec<usize> = (0..n)
            .map(|w| PlacementPolicy::Scatter.cpu_for(w, n).unwrap())
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), n);
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn pinning_really_pins() {
        // Pin a scratch thread (not the test thread) so the test
        // harness scheduling is unaffected.
        let cpu = allowed_cpus()[0];
        let ok = std::thread::spawn(move || pin_thread(cpu)).join().unwrap();
        assert!(ok, "sched_setaffinity to an allowed CPU should succeed");
        // An absurd CPU index must be rejected, not wrap.
        assert!(!pin_thread(usize::MAX));
    }
}
