//! Kernel-layer telemetry: the metric families the pipelines record
//! and the stall-counting channel wrappers.
//!
//! All handles are resolved from the global [`lq_telemetry`] registry
//! once per GEMM call — and only when recording is enabled, so the
//! disabled path costs one relaxed load per call (the "noop recorder").
//!
//! Exported families (all labeled `variant="flat"|"excp"|"imfp"`):
//!
//! | metric | kind | meaning |
//! |--------|------|---------|
//! | `lq_gemm_ns` | histogram | whole-call wall-clock latency |
//! | `lq_pipeline_task_ns{role}` | histogram | per-task span in each role |
//! | `lq_pipeline_stall_total{role}` | counter | would-block events on the stage ring (the CPU analog of a warp-group stall) |
//! | `lq_pipeline_tasks_total` | counter | tasks executed |
//! | `lq_pipeline_queue_depth{queue}` | gauge | staged tasks in flight after each send |
//! | `lq_sched_claimed_total` | counter | dynamic-scheduler claims (flat variant) |
//!
//! Roles mirror the paper's warp groups: `load` is the producer (TMA),
//! `compute` the fused dequant+MMA worker (ImFP), `dequant`/`mma` the
//! split ExCP stages.

use std::sync::Arc;

use lq_telemetry::{registry, Counter, Gauge, Histogram, OwnedSpan};

use crate::sync::{Receiver, RecvError, SendError, Sender, TryRecvError, TrySendError};

/// Handles for one pipeline variant's metric families.
pub(crate) struct PipeMetrics {
    pub tasks: Arc<Counter>,
    pub claims: Arc<Counter>,
    pub stall_load: Arc<Counter>,
    pub stall_compute: Arc<Counter>,
    pub stall_dequant: Arc<Counter>,
    pub stall_mma: Arc<Counter>,
    pub depth_task: Arc<Gauge>,
    pub depth_dequant: Arc<Gauge>,
    pub task_ns_load: Arc<Histogram>,
    pub task_ns_compute: Arc<Histogram>,
    pub task_ns_dequant: Arc<Histogram>,
    pub task_ns_mma: Arc<Histogram>,
}

impl PipeMetrics {
    /// Resolve handles for `variant`, or `None` when telemetry is off
    /// (instrumentation then compiles down to `if let Some` misses).
    pub(crate) fn resolve(variant: &str) -> Option<Self> {
        if !lq_telemetry::enabled() {
            return None;
        }
        let reg = registry();
        let v = [("variant", variant)];
        fn role<'a>(variant: &'a str, r: &'a str) -> [(&'a str, &'a str); 2] {
            [("variant", variant), ("role", r)]
        }
        fn queue<'a>(variant: &'a str, q: &'a str) -> [(&'a str, &'a str); 2] {
            [("variant", variant), ("queue", q)]
        }
        Some(Self {
            tasks: reg.counter_with("lq_pipeline_tasks_total", &v),
            claims: reg.counter_with("lq_sched_claimed_total", &v),
            stall_load: reg.counter_with("lq_pipeline_stall_total", &role(variant, "load")),
            stall_compute: reg.counter_with("lq_pipeline_stall_total", &role(variant, "compute")),
            stall_dequant: reg.counter_with("lq_pipeline_stall_total", &role(variant, "dequant")),
            stall_mma: reg.counter_with("lq_pipeline_stall_total", &role(variant, "mma")),
            depth_task: reg.gauge_with("lq_pipeline_queue_depth", &queue(variant, "task")),
            depth_dequant: reg.gauge_with("lq_pipeline_queue_depth", &queue(variant, "dequant")),
            task_ns_load: reg.histogram_with("lq_pipeline_task_ns", &role(variant, "load")),
            task_ns_compute: reg.histogram_with("lq_pipeline_task_ns", &role(variant, "compute")),
            task_ns_dequant: reg.histogram_with("lq_pipeline_task_ns", &role(variant, "dequant")),
            task_ns_mma: reg.histogram_with("lq_pipeline_task_ns", &role(variant, "mma")),
        })
    }
}

/// Whole-call span for `lq_gemm_ns{variant=...}` (None when disabled).
pub(crate) fn call_span(variant: &str) -> Option<OwnedSpan> {
    lq_telemetry::enabled().then(|| {
        registry()
            .histogram_with("lq_gemm_ns", &[("variant", variant)])
            .span_owned()
    })
}

/// `recv` that counts a stall when it would block.
pub(crate) fn recv_counting<T>(
    rx: &Receiver<T>,
    stall: Option<&Arc<Counter>>,
) -> Result<T, RecvError> {
    match rx.try_recv() {
        Ok(v) => Ok(v),
        Err(TryRecvError::Disconnected) => Err(RecvError),
        Err(TryRecvError::Empty) => {
            if let Some(c) = stall {
                c.inc();
            }
            rx.recv()
        }
    }
}

/// `send` that counts a stall when it would block.
pub(crate) fn send_counting<T>(
    tx: &Sender<T>,
    value: T,
    stall: Option<&Arc<Counter>>,
) -> Result<(), SendError<T>> {
    match tx.try_send(value) {
        Ok(()) => Ok(()),
        Err(TrySendError::Disconnected(v)) => Err(SendError(v)),
        Err(TrySendError::Full(v)) => {
            if let Some(c) = stall {
                c.inc();
            }
            tx.send(v)
        }
    }
}
