//! Kernel-layer telemetry: the metric families the pipelines record
//! and the stall-counting channel wrappers.
//!
//! All handles are resolved from the global [`lq_telemetry`] registry
//! once per GEMM call — and only when recording is enabled, so the
//! disabled path costs one relaxed load per call (the "noop recorder").
//!
//! Exported families (labeled `variant="flat"|"excp"|"imfp"` and
//! `backend="lqq"|"qoq"|"lut"|"codebook"` — the [`lq_quant::BackendId`]
//! the call dispatched to, so per-backend counters and histograms never
//! alias):
//!
//! | metric | kind | meaning |
//! |--------|------|---------|
//! | `lq_gemm_ns` | histogram | whole-call wall-clock latency |
//! | `lq_pipeline_task_ns{role}` | histogram | per-task span in each role |
//! | `lq_pipeline_stall_total{role="load"}` | counter | would-block events on the stage ring (the CPU analog of a warp-group stall) |
//! | `lq_pipeline_tasks_total` | counter | tasks executed |
//! | `lq_pipeline_queue_depth{queue="task"}` | gauge | queued-job count after each submit |
//!
//! plus the pool-level families (labeled per `worker`):
//!
//! | metric | kind | meaning |
//! |--------|------|---------|
//! | `lq_pool_queue_depth` | gauge | queued-job count after each submit |
//! | `lq_pool_jobs_total{worker}` | counter | jobs executed by each worker |
//! | `lq_pool_busy_ns_total{worker}` | counter | time each worker spent executing (vs parked) — the per-worker occupancy the balance gate audits |
//! | `lq_pool_steal_total{worker}` | counter | jobs this worker stole from another worker's deque |
//! | `lq_pool_job_ns{worker}` | histogram | per-job latency |
//! | `lq_pool_worker_restarts_total` | counter | worker threads quarantined and respawned after a job panic |
//! | `lq_pool_job_retries_total` | counter | panicked jobs requeued for another attempt (0 in any fault-free run — the CI smoke bench gates on it) |
//!
//! Roles mirror the paper's warp groups: `load` is the staging caller
//! (TMA), `compute` the fused dequant+MMA job (Flat/ImFP),
//! `dequant`/`mma` the split ExCP job halves. The `dequant` and `mma`
//! series are registered *only* for the `excp` variant — the only one
//! whose pipeline has those roles — so exports never carry dead
//! always-zero series for `flat`/`imfp`.

use std::sync::Arc;

use lq_telemetry::{registry, Counter, Gauge, Histogram, OwnedSpan};

use crate::sync::{Receiver, RecvError, TryRecvError};

/// Handles for one pipeline variant's metric families.
pub(crate) struct PipeMetrics {
    pub tasks: Arc<Counter>,
    pub stall_load: Arc<Counter>,
    pub depth_task: Arc<Gauge>,
    pub task_ns_load: Arc<Histogram>,
    pub task_ns_compute: Arc<Histogram>,
    /// ExCP only — `flat`/`imfp` have no dequant role, and registering
    /// the series there would export misleading always-zero histograms.
    pub task_ns_dequant: Option<Arc<Histogram>>,
    /// ExCP only (see `task_ns_dequant`).
    pub task_ns_mma: Option<Arc<Histogram>>,
}

impl PipeMetrics {
    /// Resolve handles for `variant` under dequant backend `backend`
    /// (a [`lq_quant::BackendId`] label, e.g. `"lqq"`), or `None` when
    /// telemetry is off (instrumentation then compiles down to
    /// `if let Some` misses). Per-backend series let one export compare
    /// the same pipeline across dequant algorithms.
    pub(crate) fn resolve(variant: &str, backend: &str) -> Option<Self> {
        if !lq_telemetry::enabled() {
            return None;
        }
        let reg = registry();
        let v = [("variant", variant), ("backend", backend)];
        fn role<'a>(variant: &'a str, backend: &'a str, r: &'a str) -> [(&'a str, &'a str); 3] {
            [("variant", variant), ("backend", backend), ("role", r)]
        }
        let split = variant == "excp";
        Some(Self {
            tasks: reg.counter_with("lq_pipeline_tasks_total", &v),
            stall_load: reg
                .counter_with("lq_pipeline_stall_total", &role(variant, backend, "load")),
            depth_task: reg.gauge_with(
                "lq_pipeline_queue_depth",
                &[
                    ("variant", variant),
                    ("backend", backend),
                    ("queue", "task"),
                ],
            ),
            task_ns_load: reg
                .histogram_with("lq_pipeline_task_ns", &role(variant, backend, "load")),
            task_ns_compute: reg
                .histogram_with("lq_pipeline_task_ns", &role(variant, backend, "compute")),
            task_ns_dequant: split.then(|| {
                reg.histogram_with("lq_pipeline_task_ns", &role(variant, backend, "dequant"))
            }),
            task_ns_mma: split
                .then(|| reg.histogram_with("lq_pipeline_task_ns", &role(variant, backend, "mma"))),
        })
    }
}

/// Per-worker pool metric handles, resolved lazily inside the worker
/// loop the first time telemetry is observed enabled.
pub(crate) struct WorkerMetrics {
    pub jobs: Arc<Counter>,
    pub busy_ns: Arc<Counter>,
    pub steals: Arc<Counter>,
    pub job_ns: Arc<Histogram>,
}

impl WorkerMetrics {
    /// Resolve handles for worker `worker`, or `None` when telemetry is
    /// off.
    pub(crate) fn resolve(worker: usize) -> Option<Self> {
        if !lq_telemetry::enabled() {
            return None;
        }
        let reg = registry();
        let id = worker.to_string();
        let l = [("worker", id.as_str())];
        Some(Self {
            jobs: reg.counter_with("lq_pool_jobs_total", &l),
            busy_ns: reg.counter_with("lq_pool_busy_ns_total", &l),
            steals: reg.counter_with("lq_pool_steal_total", &l),
            job_ns: reg.histogram_with("lq_pool_job_ns", &l),
        })
    }
}

/// Pool self-healing counters (unlabeled — restarts are rare enough
/// that per-worker series would be noise).
pub(crate) struct PoolFaultMetrics {
    pub restarts: Arc<Counter>,
    pub retries: Arc<Counter>,
}

/// Resolve the self-healing counters, or `None` when telemetry is off.
/// Resolved at each restart (not cached): the path only runs after a
/// panic, where a registry lookup is noise.
pub(crate) fn pool_fault_metrics() -> Option<PoolFaultMetrics> {
    if !lq_telemetry::enabled() {
        return None;
    }
    let reg = registry();
    Some(PoolFaultMetrics {
        restarts: reg.counter("lq_pool_worker_restarts_total"),
        retries: reg.counter("lq_pool_job_retries_total"),
    })
}

/// Whole-call span for `lq_gemm_ns{variant=...,backend=...}` (None
/// when disabled).
pub(crate) fn call_span(variant: &str, backend: &str) -> Option<OwnedSpan> {
    lq_telemetry::enabled().then(|| {
        registry()
            .histogram_with("lq_gemm_ns", &[("variant", variant), ("backend", backend)])
            .span_owned()
    })
}

/// `recv` that counts a stall when it would block.
pub(crate) fn recv_counting<T>(
    rx: &Receiver<T>,
    stall: Option<&Arc<Counter>>,
) -> Result<T, RecvError> {
    match rx.try_recv() {
        Ok(v) => Ok(v),
        Err(TryRecvError::Disconnected) => Err(RecvError),
        Err(TryRecvError::Empty) => {
            if let Some(c) = stall {
                c.inc();
            }
            rx.recv()
        }
    }
}
