//! Hot-loop primitives: raw SWAR dequantization, the register-tiled
//! INT8 microkernel family, and the [`MicrokernelSet`] ISA dispatch
//! layer.
//!
//! The dequant halves are the *uncounted* twins of the audited paths in
//! `lq-quant` — same arithmetic, zero bookkeeping, `#[inline(always)]`.
//! The MMA half is a BLIS-style MR×NR register-tile microkernel family:
//! the activation block is staged into [`APanels`] (row-major `MR`-row
//! panels plus the `m % MR` tail) and the per-panel kernels run each of
//! the tile's accumulator chains as a full-`kc` reduction over
//! *contiguous* operand streams.
//!
//! Two kernel generations coexist behind [`MicrokernelSet`]
//! (DESIGN.md §13):
//!
//! * **Scalar** — [`mk_i8_4x4`] / [`mk_i8_1x4`], plain indexed loops in
//!   the one shape LLVM's loop vectoriser turns into widening-multiply
//!   SIMD reductions without intrinsics. These stay as the portable
//!   fallback *and* the bit-exactness oracle for the SIMD variants. We
//!   measured the alternative K-major interleaved packing
//!   (`lq_layout::pack::pack_a_panels_kmajor`) with fixed 16-wide
//!   chunked unrolling: the strided lane access defeats the
//!   vectoriser's reduction pattern and the per-chunk horizontal sums
//!   dominate, so it benches 2–5× slower than the contiguous form —
//!   the layout stays in `lq-layout` as the measured counterexample.
//! * **Explicit SIMD** — [`crate::simd`]'s AVX2 and AVX-512-VNNI
//!   kernels, runtime feature-detected once ([`MicrokernelSet::global`])
//!   and selected per-job with wider, M-adaptive register shapes
//!   (1×16 decode, 4×16/6×16 prefill). Their accumulator chains carry
//!   8/16 i32 partial lanes that are only reduced at scatter time.
//!
//! Bit-exact equivalence with the audited implementations and with
//! `reference.rs` is asserted by tests here and property tests in
//! `tests/` (every detected variant differentially against scalar).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use lq_quant::mat::Mat;

use crate::simd::{self, SimdVariant};

// The SWAR group-dequant primitives moved to `lq_quant::dequant` with
// the kernel-backend redesign (the algorithm is a property of the
// packed weights now); re-exported here so kernel code and downstream
// crates keep their import paths.
pub use lq_quant::dequant::{
    dequant8_lqq_raw, dequant8_qoq_raw, dequant_group_lqq, dequant_group_qoq,
};

/// INT8 dot product with i32 accumulation — the CPU stand-in for the
/// tensor-core INT8 MMA. Written as a plain indexed loop so LLVM emits
/// widening-multiply SIMD.
#[inline]
#[must_use]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += i32::from(x) * i32::from(y);
    }
    acc
}

/// Token rows per register-tile panel (the microkernel's M dimension).
pub const MR: usize = 4;
/// Output channels per register tile (the microkernel's N dimension).
pub const NR: usize = 4;
/// Activation block staged for the register-tiled microkernel: an owned
/// row-major copy viewed as `m / MR` panels of `MR` consecutive token
/// rows plus `m % MR` tail rows for the 1×NR edge kernel. Rows stay
/// contiguous — the microkernel's accumulator chains each reduce over a
/// contiguous stream, the shape LLVM vectorises (see the module doc for
/// the measured K-major counterexample). Staging cost is one pass over
/// the block — the same copy the pre-tiling kernels paid to clone the
/// activation matrix into the worker-pool call context.
#[derive(Debug, Clone)]
pub struct APanels {
    m: usize,
    k: usize,
    rows: Vec<i8>,
    /// The same rows biased to u8 (`x ⊕ 0x80`, i.e. `x + 128`): the
    /// operand form `vpdpbusd` consumes (see [`crate::simd`]'s bias
    /// trick). Built unconditionally in [`APanels::pack`] — one extra
    /// linear pass, fused with the staging copy's cache walk.
    biased: Vec<u8>,
}

impl APanels {
    /// Stage a row-major `m×k` INT8 activation matrix, plus the biased
    /// (`⊕ 0x80`) copy the VNNI kernels consume. The staging walk
    /// software-prefetches ahead of the copy cursor.
    #[must_use]
    pub fn pack(x: &Mat<i8>) -> Self {
        let src = x.as_slice();
        let mut biased = Vec::with_capacity(src.len());
        for (ci, chunk) in src.chunks(64).enumerate() {
            simd::prefetch_read(src, ci * 64 + 512);
            biased.extend(chunk.iter().map(|&v| (v as u8) ^ 0x80));
        }
        APanels {
            m: x.rows(),
            k: x.cols(),
            rows: src.to_vec(),
            biased,
        }
    }

    /// Token count.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Reduction length.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of complete MR-row panels.
    #[must_use]
    pub fn panel_count(&self) -> usize {
        self.m / MR
    }

    /// Number of tail tokens not covered by a full panel.
    #[must_use]
    pub fn tail_count(&self) -> usize {
        self.m % MR
    }

    /// K-range `[k0, k1)` of token row `i` (contiguous, row-major).
    #[must_use]
    pub fn row_kslice(&self, i: usize, k0: usize, k1: usize) -> &[i8] {
        &self.rows[i * self.k + k0..i * self.k + k1]
    }

    /// K-range `[k0, k1)` of the *biased* (`⊕ 0x80`) copy of row `i` —
    /// the u8 operand stream for the VNNI kernels.
    #[must_use]
    pub fn row_kslice_biased(&self, i: usize, k0: usize, k1: usize) -> &[u8] {
        &self.biased[i * self.k + k0..i * self.k + k1]
    }

    /// Accumulator length for one NR-channel strip over every token:
    /// an `MR×NR` block per panel plus an `NR` block per tail token.
    #[must_use]
    pub fn acc_len(&self) -> usize {
        self.panel_count() * MR * NR + self.tail_count() * NR
    }
}

/// The MR×NR register-tile microkernel: `MR` contiguous activation row
/// slices against `NR` row-major weight rows (`w_block`, stride `kc`),
/// accumulating into `acc[nr * MR + mr]`. This is the CPU stand-in for
/// the tensor-core INT8 MMA tile: 16 live i32 accumulator chains, each
/// weight byte load shared across MR token chains and each activation
/// load shared across NR channel chains. Every chain reduces over two
/// contiguous streams for the whole `kc`, so LLVM vectorises each
/// channel's four chains as widening-multiply SIMD reductions with a
/// single horizontal sum at the end (no fixed-width chunking — see the
/// module doc for why the chunked K-major form loses).
#[inline]
pub fn mk_i8_4x4(a: [&[i8]; MR], w_block: &[i8], kc: usize, acc: &mut [i32; MR * NR]) {
    debug_assert!(a.iter().all(|r| r.len() == kc));
    debug_assert_eq!(w_block.len(), kc * NR);
    let (a0, a1, a2, a3) = (a[0], a[1], a[2], a[3]);
    for nr in 0..NR {
        let wv = &w_block[nr * kc..(nr + 1) * kc];
        let (mut s0, mut s1, mut s2, mut s3) = (0i32, 0i32, 0i32, 0i32);
        for t in 0..kc {
            let w = i32::from(wv[t]);
            s0 += w * i32::from(a0[t]);
            s1 += w * i32::from(a1[t]);
            s2 += w * i32::from(a2[t]);
            s3 += w * i32::from(a3[t]);
        }
        acc[nr * MR] += s0;
        acc[nr * MR + 1] += s1;
        acc[nr * MR + 2] += s2;
        acc[nr * MR + 3] += s3;
    }
}

/// 1×NR edge kernel for tail tokens and M=1 decode: one contiguous
/// activation row against `NR` weight rows, each activation load shared
/// across NR accumulator chains (`acc[nr]`), each chain a full-`kc`
/// contiguous reduction.
#[inline]
pub fn mk_i8_1x4(a_row: &[i8], w_block: &[i8], kc: usize, acc: &mut [i32; NR]) {
    debug_assert_eq!(a_row.len(), kc);
    debug_assert_eq!(w_block.len(), kc * NR);
    let (w0, w1, w2) = (
        &w_block[..kc],
        &w_block[kc..2 * kc],
        &w_block[2 * kc..3 * kc],
    );
    let w3 = &w_block[3 * kc..4 * kc];
    let (mut s0, mut s1, mut s2, mut s3) = (0i32, 0i32, 0i32, 0i32);
    for t in 0..kc {
        let a = i32::from(a_row[t]);
        s0 += a * i32::from(w0[t]);
        s1 += a * i32::from(w1[t]);
        s2 += a * i32::from(w2[t]);
        s3 += a * i32::from(w3[t]);
    }
    acc[0] += s0;
    acc[1] += s1;
    acc[2] += s2;
    acc[3] += s3;
}

/// Accumulate one dequantized weight strip (`NR` rows × `kc` columns,
/// row-major, covering K range `[k0, k0+kc)`) against *every* token of
/// `a`. `acc` is laid out panel-first — panel `p` owns
/// `acc[p*MR*NR + nr*MR + mr]`, then tail token `t` owns
/// `acc[panel_count*MR*NR + t*NR + nr]` — total [`APanels::acc_len`].
#[inline]
pub fn accumulate_strip(a: &APanels, k0: usize, kc: usize, w_block: &[i8], acc: &mut [i32]) {
    debug_assert_eq!(w_block.len(), NR * kc);
    debug_assert_eq!(acc.len(), a.acc_len());
    for p in 0..a.panel_count() {
        let rows = [
            a.row_kslice(p * MR, k0, k0 + kc),
            a.row_kslice(p * MR + 1, k0, k0 + kc),
            a.row_kslice(p * MR + 2, k0, k0 + kc),
            a.row_kslice(p * MR + 3, k0, k0 + kc),
        ];
        let tile: &mut [i32; MR * NR] = (&mut acc[p * MR * NR..(p + 1) * MR * NR])
            .try_into()
            .expect("panel acc tile");
        mk_i8_4x4(rows, w_block, kc, tile);
    }
    let base = a.panel_count() * MR * NR;
    for t in 0..a.tail_count() {
        let ar = a.row_kslice(a.panel_count() * MR + t, k0, k0 + kc);
        let tile: &mut [i32; NR] = (&mut acc[base + t * NR..base + (t + 1) * NR])
            .try_into()
            .expect("tail acc tile");
        mk_i8_1x4(ar, w_block, kc, tile);
    }
}

/// Scatter channel lane `nr` of a strip accumulator (laid out as in
/// [`accumulate_strip`]) into a length-`m` output row, applying
/// per-token activation scales and the channel scale in the same
/// `(acc · act) · ch` order as `epilogue::apply_scales_column`.
#[inline]
pub fn scatter_channel(a: &APanels, acc: &[i32], nr: usize, act: &[f32], ch: f32, out: &mut [f32]) {
    debug_assert_eq!(acc.len(), a.acc_len());
    debug_assert_eq!(act.len(), a.m());
    debug_assert_eq!(out.len(), a.m());
    for p in 0..a.panel_count() {
        for mr in 0..MR {
            let tok = p * MR + mr;
            out[tok] = acc[p * MR * NR + nr * MR + mr] as f32 * act[tok] * ch;
        }
    }
    let base = a.panel_count() * MR * NR;
    for t in 0..a.tail_count() {
        let tok = a.panel_count() * MR + t;
        out[tok] = acc[base + t * NR + nr] as f32 * act[tok] * ch;
    }
}

/// Raw-sum twin of [`scatter_channel`]: emit channel lane `nr`'s exact
/// integer dot products (widened to i64) with **no** epilogue — the
/// per-K-slice partials a row-parallel shard hands to the exact
/// all-reduce, where the single final `(Σ · act) · ch` epilogue runs.
#[inline]
pub fn scatter_channel_raw(a: &APanels, acc: &[i32], nr: usize, out: &mut [i64]) {
    debug_assert_eq!(acc.len(), a.acc_len());
    debug_assert_eq!(out.len(), a.m());
    for p in 0..a.panel_count() {
        for mr in 0..MR {
            let tok = p * MR + mr;
            out[tok] = i64::from(acc[p * MR * NR + nr * MR + mr]);
        }
    }
    let base = a.panel_count() * MR * NR;
    for t in 0..a.tail_count() {
        let tok = a.panel_count() * MR + t;
        out[tok] = i64::from(acc[base + t * NR + nr]);
    }
}

/// f32 dot product (FP16/FP8/W4A16 baselines).
#[inline]
#[must_use]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

// ===========================================================================
// MicrokernelSet — the ISA dispatch layer (DESIGN.md §13).
// ===========================================================================

/// Width of a SIMD weight strip (output channels staged and reduced
/// together by the AVX2/VNNI kernels). The scalar kernels keep
/// [`NR`]` = 4`.
pub const SIMD_STRIP: usize = 16;

/// Register-tile shape [`MicrokernelSet::shape`] selects for a given
/// token count `m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripShape {
    /// Activation rows per full panel (tail rows run the 1-row kernel).
    pub mr: usize,
    /// Weight rows (output channels) per strip.
    pub strip: usize,
    /// i32 partial-sum lanes each accumulator chain carries (1 for the
    /// scalar kernels).
    pub lanes: usize,
    /// Stable `MRxNR` label for telemetry and bench JSON.
    pub label: &'static str,
}

/// One resolved microkernel family: a [`SimdVariant`] plus the strip
/// geometry, accumulator layout, and kernels that go with it. `Copy`
/// and two words wide — call sites thread it by value.
///
/// The process-wide selection happens once in [`MicrokernelSet::global`]
/// (honouring `LQ_FORCE_SCALAR`); per-pool overrides go through
/// `LiquidGemm::builder().force_microkernel(..)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicrokernelSet {
    variant: SimdVariant,
}

impl Default for MicrokernelSet {
    fn default() -> Self {
        MicrokernelSet::global()
    }
}

impl MicrokernelSet {
    /// The always-available scalar family — fallback and oracle.
    #[must_use]
    pub const fn scalar() -> Self {
        MicrokernelSet {
            variant: SimdVariant::Scalar,
        }
    }

    /// The process-wide selection: the best runtime-detected variant,
    /// resolved once, unless `LQ_FORCE_SCALAR` is set (non-empty,
    /// not `"0"`), which forces the scalar family.
    #[must_use]
    pub fn global() -> Self {
        static GLOBAL: OnceLock<MicrokernelSet> = OnceLock::new();
        *GLOBAL.get_or_init(|| {
            let forced =
                std::env::var_os("LQ_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0");
            if forced {
                MicrokernelSet::scalar()
            } else {
                MicrokernelSet {
                    variant: SimdVariant::best_available(),
                }
            }
        })
    }

    /// The family for a specific variant, if the running CPU supports
    /// it (differential suites iterate [`SimdVariant::detected`]).
    #[must_use]
    pub fn for_variant(variant: SimdVariant) -> Option<Self> {
        variant.available().then_some(MicrokernelSet { variant })
    }

    /// Which ISA family this set dispatches to.
    #[must_use]
    pub fn variant(self) -> SimdVariant {
        self.variant
    }

    /// Output channels per weight strip ([`NR`] scalar, [`SIMD_STRIP`]
    /// otherwise). Drivers step `n` by this and size `wbuf` with it.
    #[must_use]
    pub fn strip_width(self) -> usize {
        match self.variant {
            SimdVariant::Scalar => NR,
            _ => SIMD_STRIP,
        }
    }

    /// K-block the drivers dequantize per [`MicrokernelSet::accumulate`]
    /// call: the scalar family keeps one quant group (status quo); the
    /// SIMD families stage ~512 bytes per weight row (rounded up to a
    /// whole number of groups, capped at `k`) so the staged strip stays
    /// L1-resident while the per-chain lane-partial update traffic is
    /// amortized over many dot-product instructions.
    #[must_use]
    pub fn kc_block(self, group: usize, k: usize) -> usize {
        match self.variant {
            SimdVariant::Scalar => group,
            _ => (512usize.div_ceil(group) * group).min(k),
        }
    }

    /// The M-adaptive register-tile shape for a job with `m` token
    /// rows: decode (`m == 1`) runs 1×16, small prefill 4×16, large
    /// prefill 6×16; the scalar family keeps its fixed 4×4/1×4 pair.
    #[must_use]
    pub fn shape(self, m: usize) -> StripShape {
        let lanes = self.variant.lanes();
        match self.variant {
            SimdVariant::Scalar => StripShape {
                mr: MR,
                strip: NR,
                lanes,
                label: if m >= MR { "4x4" } else { "1x4" },
            },
            _ if m == 1 => StripShape {
                mr: 1,
                strip: SIMD_STRIP,
                lanes,
                label: "1x16",
            },
            _ if m <= 5 => StripShape {
                mr: 4,
                strip: SIMD_STRIP,
                lanes,
                label: "4x16",
            },
            _ => StripShape {
                mr: 6,
                strip: SIMD_STRIP,
                lanes,
                label: "6x16",
            },
        }
    }

    /// Accumulator length (in i32) for one strip over every token of
    /// `a`: per-token chains of [`StripShape::lanes`] partials, plus —
    /// VNNI only — a per-channel `Σw` compensation region at the end.
    #[must_use]
    pub fn acc_len(self, a: &APanels) -> usize {
        match self.variant {
            SimdVariant::Scalar => a.acc_len(),
            _ => {
                let sh = self.shape(a.m());
                let chains = a.m() * sh.strip;
                let wsum = if self.variant == SimdVariant::Vnni {
                    sh.strip * sh.lanes
                } else {
                    0
                };
                chains * sh.lanes + wsum
            }
        }
    }

    /// Accumulate one dequantized weight strip (`strip_width()` rows ×
    /// `kc` columns, row-major, covering K range `[k0, k0+kc)`) against
    /// every token of `a`, into an accumulator laid out per
    /// [`MicrokernelSet::acc_len`]. Callable any number of times with
    /// disjoint K ranges; reduce with [`MicrokernelSet::scatter`].
    pub fn accumulate(self, a: &APanels, k0: usize, kc: usize, w_block: &[i8], acc: &mut [i32]) {
        if self.variant == SimdVariant::Scalar {
            accumulate_strip(a, k0, kc, w_block, acc);
            return;
        }
        let sh = self.shape(a.m());
        let (mr, strip, lanes) = (sh.mr, sh.strip, sh.lanes);
        debug_assert_eq!(w_block.len(), strip * kc);
        debug_assert_eq!(acc.len(), self.acc_len(a));
        let panels = a.m() / mr;
        let tail = a.m() % mr;
        let chains = a.m() * strip;
        match self.variant {
            SimdVariant::Scalar => unreachable!(),
            SimdVariant::Vnni => {
                let (body, wsum) = acc.split_at_mut(chains * lanes);
                simd::vnni_wsum(w_block, kc, strip, wsum);
                for p in 0..panels {
                    let base = p * strip * mr * lanes;
                    let r = |j: usize| a.row_kslice_biased(p * mr + j, k0, k0 + kc);
                    match mr {
                        1 => simd::vnni_panel(&[r(0)], w_block, kc, strip, &mut body[base..]),
                        4 => simd::vnni_panel(
                            &[r(0), r(1), r(2), r(3)],
                            w_block,
                            kc,
                            strip,
                            &mut body[base..],
                        ),
                        6 => simd::vnni_panel(
                            &[r(0), r(1), r(2), r(3), r(4), r(5)],
                            w_block,
                            kc,
                            strip,
                            &mut body[base..],
                        ),
                        _ => unreachable!("unsupported MR {mr}"),
                    }
                }
                for t in 0..tail {
                    let base = (panels * strip * mr + t * strip) * lanes;
                    let row = a.row_kslice_biased(panels * mr + t, k0, k0 + kc);
                    simd::vnni_panel(&[row], w_block, kc, strip, &mut body[base..]);
                }
            }
            SimdVariant::Avx2 => {
                for p in 0..panels {
                    let base = p * strip * mr * lanes;
                    let r = |j: usize| a.row_kslice(p * mr + j, k0, k0 + kc);
                    match mr {
                        1 => simd::avx2_panel(&[r(0)], w_block, kc, strip, &mut acc[base..]),
                        4 => simd::avx2_panel(
                            &[r(0), r(1), r(2), r(3)],
                            w_block,
                            kc,
                            strip,
                            &mut acc[base..],
                        ),
                        6 => simd::avx2_panel(
                            &[r(0), r(1), r(2), r(3), r(4), r(5)],
                            w_block,
                            kc,
                            strip,
                            &mut acc[base..],
                        ),
                        _ => unreachable!("unsupported MR {mr}"),
                    }
                }
                for t in 0..tail {
                    let base = (panels * strip * mr + t * strip) * lanes;
                    let row = a.row_kslice(panels * mr + t, k0, k0 + kc);
                    simd::avx2_panel(&[row], w_block, kc, strip, &mut acc[base..]);
                }
            }
        }
    }

    /// Scatter channel lane `nr` of a strip accumulator into a
    /// length-`m` output row, applying per-token activation scales and
    /// the channel scale in the same `(acc · act) · ch` order as
    /// `epilogue::apply_scales_column`.
    ///
    /// For the SIMD families this is where the per-chain lane partials
    /// are horizontally reduced — in i64, so the VNNI biased
    /// intermediates can never wrap before the `128·Σw` compensation is
    /// applied. The true sums fit i32 for `K ≤ 2^17` (the same bound
    /// the scalar kernels document), making the i64→f32 conversion
    /// bit-identical to the scalar i32→f32.
    pub fn scatter(
        self,
        a: &APanels,
        acc: &[i32],
        nr: usize,
        act: &[f32],
        ch: f32,
        out: &mut [f32],
    ) {
        if self.variant == SimdVariant::Scalar {
            scatter_channel(a, acc, nr, act, ch, out);
            return;
        }
        let sh = self.shape(a.m());
        let (mr, strip, lanes) = (sh.mr, sh.strip, sh.lanes);
        debug_assert_eq!(acc.len(), self.acc_len(a));
        debug_assert_eq!(act.len(), a.m());
        debug_assert_eq!(out.len(), a.m());
        let panels = a.m() / mr;
        let chains = a.m() * strip;
        let wsum: i64 = if self.variant == SimdVariant::Vnni {
            acc[(chains + nr) * lanes..(chains + nr + 1) * lanes]
                .iter()
                .map(|&v| i64::from(v))
                .sum()
        } else {
            0
        };
        for (tok, o) in out.iter_mut().enumerate() {
            let chain = if tok < panels * mr {
                (tok / mr) * strip * mr + nr * mr + tok % mr
            } else {
                panels * strip * mr + (tok - panels * mr) * strip + nr
            };
            let s: i64 = acc[chain * lanes..(chain + 1) * lanes]
                .iter()
                .map(|&v| i64::from(v))
                .sum::<i64>()
                - 128 * wsum;
            debug_assert!(
                i32::try_from(s).is_ok(),
                "i8 GEMM accumulator exceeded i32 (K > 2^17?)"
            );
            *o = s as f32 * act[tok] * ch;
        }
    }

    /// Raw-sum twin of [`MicrokernelSet::scatter`]: the same per-token
    /// horizontal reduction (including the VNNI `128·Σw` bias
    /// compensation, so the i64 value *is* the true signed dot
    /// product), but written as exact i64 integers with no epilogue.
    /// Row-parallel shards sum these across K slices before the single
    /// final scale application — the all-reduce stays in integers, so
    /// sharded results are bit-identical to the unsharded kernel.
    pub fn scatter_raw(self, a: &APanels, acc: &[i32], nr: usize, out: &mut [i64]) {
        if self.variant == SimdVariant::Scalar {
            scatter_channel_raw(a, acc, nr, out);
            return;
        }
        let sh = self.shape(a.m());
        let (mr, strip, lanes) = (sh.mr, sh.strip, sh.lanes);
        debug_assert_eq!(acc.len(), self.acc_len(a));
        debug_assert_eq!(out.len(), a.m());
        let panels = a.m() / mr;
        let chains = a.m() * strip;
        let wsum: i64 = if self.variant == SimdVariant::Vnni {
            acc[(chains + nr) * lanes..(chains + nr + 1) * lanes]
                .iter()
                .map(|&v| i64::from(v))
                .sum()
        } else {
            0
        };
        for (tok, o) in out.iter_mut().enumerate() {
            let chain = if tok < panels * mr {
                (tok / mr) * strip * mr + nr * mr + tok % mr
            } else {
                panels * strip * mr + (tok - panels * mr) * strip + nr
            };
            *o = acc[chain * lanes..(chain + 1) * lanes]
                .iter()
                .map(|&v| i64::from(v))
                .sum::<i64>()
                - 128 * wsum;
        }
    }

    /// `strip_width()` dot products of one activation row's K range
    /// `[k0, k0+kc)` against a dequantized weight strip, *added* into
    /// `out` — the tiled kernel's per-group accumulation step.
    /// `kc ≤ 2^14` (every quant group is).
    pub fn dot_strip(
        self,
        a: &APanels,
        row: usize,
        k0: usize,
        kc: usize,
        w_block: &[i8],
        out: &mut [i32],
    ) {
        match self.variant {
            SimdVariant::Scalar => {
                let tile: &mut [i32; NR] = (&mut out[..NR]).try_into().expect("NR strip");
                mk_i8_1x4(a.row_kslice(row, k0, k0 + kc), w_block, kc, tile);
            }
            SimdVariant::Avx2 => {
                simd::avx2_dot_strip(a.row_kslice(row, k0, k0 + kc), w_block, kc, out);
            }
            SimdVariant::Vnni => {
                simd::vnni_dot_strip(a.row_kslice_biased(row, k0, k0 + kc), w_block, kc, out);
            }
        }
    }

    /// Bump the per-variant/per-shape dispatch counter (one count per
    /// kernel invocation at the driver level: one serial call or one
    /// pool job), mirrored into the
    /// `lq_core_mk_dispatch_total{variant,shape}` telemetry counter
    /// when recording is enabled.
    pub fn record_dispatch(self, m: usize) {
        let sh = self.shape(m);
        let vi = variant_index(self.variant);
        let si = SHAPE_LABELS
            .iter()
            .position(|&s| s == sh.label)
            .expect("known shape label");
        DISPATCH[vi][si].fetch_add(1, Ordering::Relaxed);
        if lq_telemetry::enabled() {
            lq_telemetry::registry()
                .counter_with(
                    "lq_core_mk_dispatch_total",
                    &[("variant", self.variant.label()), ("shape", sh.label)],
                )
                .inc();
        }
    }
}

/// Every register-tile shape label the dispatcher can select.
const SHAPE_LABELS: [&str; 5] = ["1x4", "4x4", "1x16", "4x16", "6x16"];

/// Process-lifetime dispatch counters, always on (relaxed atomics) so
/// benches and smoke gates can audit which kernels actually ran even
/// with telemetry disabled. Indexed `[variant][shape]`.
static DISPATCH: [[AtomicU64; 5]; 3] = [const { [const { AtomicU64::new(0) }; 5] }; 3];

fn variant_index(v: SimdVariant) -> usize {
    match v {
        SimdVariant::Scalar => 0,
        SimdVariant::Avx2 => 1,
        SimdVariant::Vnni => 2,
    }
}

/// Snapshot of the non-zero `(variant, shape, count)` dispatch counters
/// since process start — the bench JSON and CI smoke assertions read
/// this.
#[must_use]
pub fn dispatch_counts() -> Vec<(&'static str, &'static str, u64)> {
    let variants = [SimdVariant::Scalar, SimdVariant::Avx2, SimdVariant::Vnni];
    let mut out = Vec::new();
    for v in variants {
        for (si, &label) in SHAPE_LABELS.iter().enumerate() {
            let n = DISPATCH[variant_index(v)][si].load(Ordering::Relaxed);
            if n > 0 {
                out.push((v.label(), label, n));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_products_match_naive() {
        let a: Vec<i8> = (0..127).map(|i| (i % 23 - 11) as i8).collect();
        let b: Vec<i8> = (0..127).map(|i| (i % 17 - 8) as i8).collect();
        let want: i32 = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum();
        assert_eq!(dot_i8(&a, &b), want);
    }

    fn naive_tile(x: &Mat<i8>, w: &[Vec<i8>]) -> Vec<i32> {
        let mut out = vec![0i32; x.rows() * w.len()];
        for i in 0..x.rows() {
            for (j, wj) in w.iter().enumerate() {
                out[i * w.len() + j] = dot_i8(x.row(i), wj);
            }
        }
        out
    }

    #[test]
    fn accumulate_strip_matches_naive_across_shapes() {
        let mut rng = lq_rng::Rng::new(0xA11E5);
        for &(m, kc) in &[
            (1usize, 7usize),
            (3, 16),
            (4, 16),
            (5, 31),
            (8, 48),
            (9, 1),
            (13, 130),
        ] {
            let x = Mat::from_vec(m, kc, rng.vec_i8(m * kc, -128, 127));
            let a = APanels::pack(&x);
            let w: Vec<Vec<i8>> = (0..NR).map(|_| rng.vec_i8(kc, -128, 127)).collect();
            let w_block: Vec<i8> = w.iter().flatten().copied().collect();
            let mut acc = vec![0i32; a.acc_len()];
            accumulate_strip(&a, 0, kc, &w_block, &mut acc);
            let want = naive_tile(&x, &w);
            for p in 0..a.panel_count() {
                for mr in 0..MR {
                    for nr in 0..NR {
                        assert_eq!(
                            acc[p * MR * NR + nr * MR + mr],
                            want[(p * MR + mr) * NR + nr],
                            "m={m} kc={kc} p={p} mr={mr} nr={nr}"
                        );
                    }
                }
            }
            let base = a.panel_count() * MR * NR;
            for t in 0..a.tail_count() {
                for nr in 0..NR {
                    assert_eq!(
                        acc[base + t * NR + nr],
                        want[(a.panel_count() * MR + t) * NR + nr],
                        "m={m} kc={kc} tail t={t} nr={nr}"
                    );
                }
            }
        }
    }

    #[test]
    fn accumulate_strip_splits_k_exactly() {
        let mut rng = lq_rng::Rng::new(0x5EED);
        let (m, k) = (6, 100);
        let x = Mat::from_vec(m, k, rng.vec_i8(m * k, -128, 127));
        let a = APanels::pack(&x);
        let w: Vec<Vec<i8>> = (0..NR).map(|_| rng.vec_i8(k, -128, 127)).collect();
        let mut whole = vec![0i32; a.acc_len()];
        let w_block: Vec<i8> = w.iter().flatten().copied().collect();
        accumulate_strip(&a, 0, k, &w_block, &mut whole);
        // Same reduction split at an unaligned K boundary.
        let mut split = vec![0i32; a.acc_len()];
        let cut = 37;
        let head: Vec<i8> = w.iter().flat_map(|r| r[..cut].iter().copied()).collect();
        let tail: Vec<i8> = w.iter().flat_map(|r| r[cut..].iter().copied()).collect();
        accumulate_strip(&a, 0, cut, &head, &mut split);
        accumulate_strip(&a, cut, k - cut, &tail, &mut split);
        assert_eq!(whole, split);
    }

    #[test]
    fn microkernel_survives_extreme_inputs() {
        // K=8192 of (-128 × -128) stays within i32 per accumulator lane.
        let k = 8192;
        let x = Mat::from_vec(MR + 1, k, vec![-128i8; (MR + 1) * k]);
        let a = APanels::pack(&x);
        let w_block = vec![-128i8; NR * k];
        let mut acc = vec![0i32; a.acc_len()];
        accumulate_strip(&a, 0, k, &w_block, &mut acc);
        for &v in &acc {
            assert_eq!(v, (k as i32) * 16384);
        }
    }

    #[test]
    fn scatter_channel_applies_scales_per_token() {
        let mut rng = lq_rng::Rng::new(0xCAFE);
        let (m, k) = (7, 24);
        let x = Mat::from_vec(m, k, rng.vec_i8(m * k, -128, 127));
        let a = APanels::pack(&x);
        let w: Vec<Vec<i8>> = (0..NR).map(|_| rng.vec_i8(k, -128, 127)).collect();
        let w_block: Vec<i8> = w.iter().flatten().copied().collect();
        let mut acc = vec![0i32; a.acc_len()];
        accumulate_strip(&a, 0, k, &w_block, &mut acc);
        let act: Vec<f32> = (0..m).map(|i| 0.5 + i as f32 * 0.25).collect();
        for (nr, wj) in w.iter().enumerate() {
            let ch = 0.125 * (nr as f32 + 1.0);
            let mut out = vec![0.0f32; m];
            scatter_channel(&a, &acc, nr, &act, ch, &mut out);
            for i in 0..m {
                assert_eq!(out[i], dot_i8(x.row(i), wj) as f32 * act[i] * ch);
            }
        }
    }

    #[test]
    fn dot_i8_handles_extremes_without_overflow() {
        // 8192 × (-128 × -128) = 2^27 < i32::MAX: safe for K ≤ 2^17.
        let a = vec![-128i8; 8192];
        let b = vec![-128i8; 8192];
        assert_eq!(dot_i8(&a, &b), 8192 * 16384);
    }

    #[test]
    fn dot_f32_matches_naive() {
        let a: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32).cos()).collect();
        let want: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        assert!((dot_f32(&a, &b) - want).abs() < 1e-3);
    }

    /// Every detected variant, end-to-end through
    /// accumulate → scatter, bit-exact vs the naive i32 oracle — over
    /// ragged M (exercising every MR and the tails), ragged K
    /// (exercising masked/copied SIMD tails), and a split-K
    /// accumulation at an unaligned cut.
    #[test]
    fn microkernel_set_variants_are_bit_exact_vs_oracle() {
        let mut rng = lq_rng::Rng::new(0xD15BA7C4);
        for v in SimdVariant::detected() {
            let mk = MicrokernelSet::for_variant(v).expect("detected implies available");
            for &(m, k) in &[
                (1usize, 64usize),
                (2, 96),
                (4, 130),
                (5, 7),
                (6, 192),
                (7, 33),
                (13, 257),
            ] {
                let strip = mk.strip_width();
                let x = Mat::from_vec(m, k, rng.vec_i8(m * k, -128, 127));
                let a = APanels::pack(&x);
                let w_rows: Vec<Vec<i8>> = (0..strip).map(|_| rng.vec_i8(k, -128, 127)).collect();
                let mut acc = vec![0i32; mk.acc_len(&a)];
                // Split the reduction at an arbitrary unaligned cut.
                let cut = (k / 3).max(1).min(k - 1);
                let cut = if k > 1 { cut } else { 0 };
                let head: Vec<i8> = w_rows
                    .iter()
                    .flat_map(|r| r[..cut].iter().copied())
                    .collect();
                let tail: Vec<i8> = w_rows
                    .iter()
                    .flat_map(|r| r[cut..].iter().copied())
                    .collect();
                if cut > 0 {
                    mk.accumulate(&a, 0, cut, &head, &mut acc);
                }
                mk.accumulate(&a, cut, k - cut, &tail, &mut acc);
                let act: Vec<f32> = (0..m).map(|i| 0.25 + i as f32 * 0.5).collect();
                for (nr, wj) in w_rows.iter().enumerate() {
                    let ch = 0.0625 * (nr as f32 + 1.0);
                    let mut out = vec![0.0f32; m];
                    mk.scatter(&a, &acc, nr, &act, ch, &mut out);
                    for i in 0..m {
                        let want = dot_i8(x.row(i), wj) as f32 * act[i] * ch;
                        assert_eq!(
                            out[i].to_bits(),
                            want.to_bits(),
                            "{} m={m} k={k} nr={nr} tok={i}",
                            v.label()
                        );
                    }
                }
            }
        }
    }

    /// `scatter_raw` must emit exactly the integer sum `scatter`
    /// applies its epilogue to: for every detected variant,
    /// `raw as f32 * act * ch` reproduces `scatter`'s output
    /// bit-for-bit, and `raw` equals the naive i64 dot product.
    #[test]
    fn scatter_raw_is_the_exact_pre_epilogue_sum() {
        let mut rng = lq_rng::Rng::new(0x5A44_0A11);
        for v in SimdVariant::detected() {
            let mk = MicrokernelSet::for_variant(v).expect("detected implies available");
            for &(m, k) in &[(1usize, 64usize), (5, 7), (7, 130), (13, 257)] {
                let strip = mk.strip_width();
                let x = Mat::from_vec(m, k, rng.vec_i8(m * k, -128, 127));
                let a = APanels::pack(&x);
                let w_rows: Vec<Vec<i8>> = (0..strip).map(|_| rng.vec_i8(k, -128, 127)).collect();
                let w_block: Vec<i8> = w_rows.iter().flatten().copied().collect();
                let mut acc = vec![0i32; mk.acc_len(&a)];
                mk.accumulate(&a, 0, k, &w_block, &mut acc);
                let act: Vec<f32> = (0..m).map(|i| 0.25 + i as f32 * 0.5).collect();
                for (nr, wj) in w_rows.iter().enumerate() {
                    let ch = 0.0625 * (nr as f32 + 1.0);
                    let mut out = vec![0.0f32; m];
                    mk.scatter(&a, &acc, nr, &act, ch, &mut out);
                    let mut raw = vec![0i64; m];
                    mk.scatter_raw(&a, &acc, nr, &mut raw);
                    for i in 0..m {
                        assert_eq!(
                            raw[i],
                            i64::from(dot_i8(x.row(i), wj)),
                            "{} m={m} k={k} nr={nr} tok={i}: raw sum",
                            v.label()
                        );
                        assert_eq!(
                            out[i].to_bits(),
                            (raw[i] as f32 * act[i] * ch).to_bits(),
                            "{} m={m} k={k} nr={nr} tok={i}: epilogue replay",
                            v.label()
                        );
                    }
                }
            }
        }
    }

    /// The extreme-input case (`all -128`, the saturation trap for
    /// maddubs-style kernels) through every detected variant.
    #[test]
    fn microkernel_set_survives_extreme_inputs() {
        for v in SimdVariant::detected() {
            let mk = MicrokernelSet::for_variant(v).unwrap();
            let k = 8192;
            let m = 7;
            let strip = mk.strip_width();
            let x = Mat::from_vec(m, k, vec![-128i8; m * k]);
            let a = APanels::pack(&x);
            let w_block = vec![-128i8; strip * k];
            let mut acc = vec![0i32; mk.acc_len(&a)];
            mk.accumulate(&a, 0, k, &w_block, &mut acc);
            let act = vec![1.0f32; m];
            let mut out = vec![0.0f32; m];
            for nr in 0..strip {
                mk.scatter(&a, &acc, nr, &act, 1.0, &mut out);
                for &o in &out {
                    assert_eq!(o, (k as f32) * 16384.0, "{}", v.label());
                }
            }
        }
    }

    /// `dot_strip` (the tiled kernel's primitive) against the scalar
    /// 1×4 kernel for every detected variant.
    #[test]
    fn dot_strip_matches_scalar_for_all_variants() {
        let mut rng = lq_rng::Rng::new(0x00D07);
        for v in SimdVariant::detected() {
            let mk = MicrokernelSet::for_variant(v).unwrap();
            let strip = mk.strip_width();
            for &kc in &[1usize, 16, 63, 64, 100, 256] {
                let x = Mat::from_vec(3, kc, rng.vec_i8(3 * kc, -128, 127));
                let a = APanels::pack(&x);
                let w_block = rng.vec_i8(strip * kc, -128, 127);
                let mut out = vec![7i32; strip]; // nonzero: dot_strip adds
                mk.dot_strip(&a, 2, 0, kc, &w_block, &mut out);
                for nr in 0..strip {
                    let want = 7 + dot_i8(x.row(2), &w_block[nr * kc..(nr + 1) * kc]);
                    assert_eq!(out[nr], want, "{} kc={kc} nr={nr}", v.label());
                }
            }
        }
    }

    #[test]
    fn shapes_and_layout_sizes_are_consistent() {
        for v in SimdVariant::detected() {
            let mk = MicrokernelSet::for_variant(v).unwrap();
            for m in 1..20usize {
                let sh = mk.shape(m);
                assert_eq!(sh.strip, mk.strip_width());
                assert!(SHAPE_LABELS.contains(&sh.label));
                let x = Mat::from_vec(m, 8, vec![1i8; m * 8]);
                let a = APanels::pack(&x);
                // Chains cover every token exactly once.
                if v != SimdVariant::Scalar {
                    let wsum = if v == SimdVariant::Vnni {
                        sh.strip * sh.lanes
                    } else {
                        0
                    };
                    assert_eq!(mk.acc_len(&a), m * sh.strip * sh.lanes + wsum);
                }
            }
            // kc_block is a whole number of groups and ≥ one group.
            for &(g, k) in &[(32usize, 2048usize), (64, 2048), (128, 256), (256, 256)] {
                let kcb = mk.kc_block(g, k);
                assert_eq!(kcb % g, 0, "{} g={g}", v.label());
                assert!(kcb >= g && kcb <= k);
            }
        }
    }

    #[test]
    fn dispatch_counters_record_per_shape() {
        let mk = MicrokernelSet::scalar();
        let before: u64 = dispatch_counts()
            .iter()
            .filter(|(v, s, _)| *v == "scalar" && *s == "1x4")
            .map(|&(_, _, n)| n)
            .sum();
        mk.record_dispatch(1);
        mk.record_dispatch(2);
        let after: u64 = dispatch_counts()
            .iter()
            .filter(|(v, s, _)| *v == "scalar" && *s == "1x4")
            .map(|&(_, _, n)| n)
            .sum();
        assert_eq!(after, before + 2);
    }

    #[test]
    fn biased_rows_mirror_signed_rows() {
        let mut rng = lq_rng::Rng::new(0xB1A5);
        let x = Mat::from_vec(3, 70, rng.vec_i8(210, -128, 127));
        let a = APanels::pack(&x);
        for i in 0..3 {
            let s = a.row_kslice(i, 5, 70);
            let b = a.row_kslice_biased(i, 5, 70);
            for (x, y) in s.iter().zip(b) {
                assert_eq!(i32::from(*y), i32::from(*x) + 128);
            }
        }
    }
}
