//! Hot-loop primitives: raw SWAR dequantization and dot-product
//! microkernels.
//!
//! These are the *uncounted* twins of the audited paths in `lq-quant` —
//! same arithmetic, zero bookkeeping, `#[inline(always)]`, written so
//! LLVM autovectorises the reduction loops. Bit-exact equivalence with
//! the audited implementations is asserted by tests here and property
//! tests in `tests/`.

use lq_quant::lqq::LqqGroup;
use lq_quant::qoq::QoqGroup;

/// Lane mask selecting the low nibble of every byte.
const NIB: u32 = 0x0F0F_0F0F;
/// MSB-of-every-byte mask (the LQQ XOR constant).
const MSB: u32 = 0x8080_8080;
/// Low-7-bits-of-every-byte mask (carryless subtract).
const LO7: u32 = 0x7F7F_7F7F;

/// LQQ fast dequantization of one packed word (8 elements):
/// unpack + `IMAD` + `XOR`. Returns `(lo, hi)` registers whose bytes are
/// the INT8 bit patterns of elements `0..4` and `4..8` in consumption
/// order (the pack step pre-interleaved them).
#[inline(always)]
#[must_use]
pub fn dequant8_lqq_raw(word: u32, s: u32, a_packed: u32) -> (u32, u32) {
    let lo = ((word & NIB).wrapping_mul(s).wrapping_add(a_packed)) ^ MSB;
    let hi = (((word >> 4) & NIB).wrapping_mul(s).wrapping_add(a_packed)) ^ MSB;
    (lo, hi)
}

/// Carryless byte-wise subtract — the sequence Hopper must emit for the
/// missing `vsub4` (7 ALU ops; see `lq_swar::vadd::vsub4_lowered`).
#[inline(always)]
#[must_use]
fn vsub4_raw(a: u32, b: u32) -> u32 {
    let t = (a | MSB).wrapping_sub(b & LO7);
    t ^ ((a ^ !b) & MSB)
}

/// QoQ baseline dequantization of one packed word: unpack + multiply +
/// emulated byte-wise subtract. Same output convention as
/// [`dequant8_lqq_raw`]; ~2.7× the instruction count.
#[inline(always)]
#[must_use]
pub fn dequant8_qoq_raw(word: u32, s: u32, zs_packed: u32) -> (u32, u32) {
    let lo = vsub4_raw((word & NIB).wrapping_mul(s), zs_packed);
    let hi = vsub4_raw(((word >> 4) & NIB).wrapping_mul(s), zs_packed);
    (lo, hi)
}

/// Dequantize a full LQQ group of packed words into an INT8 buffer.
///
/// `words` holds `group_len/8` interleave-packed words; `out` receives
/// `group_len` INT8 values in logical order.
#[inline]
pub fn dequant_group_lqq(words: &[u32], params: LqqGroup, out: &mut [i8]) {
    debug_assert_eq!(words.len() * 8, out.len());
    let s = u32::from(params.s_u8);
    let a = u32::from(params.offset_a()) * 0x0101_0101;
    for (w, chunk) in words.iter().zip(out.chunks_exact_mut(8)) {
        let (lo, hi) = dequant8_lqq_raw(*w, s, a);
        let lo = lo.to_le_bytes();
        let hi = hi.to_le_bytes();
        chunk[0] = lo[0] as i8;
        chunk[1] = lo[1] as i8;
        chunk[2] = lo[2] as i8;
        chunk[3] = lo[3] as i8;
        chunk[4] = hi[0] as i8;
        chunk[5] = hi[1] as i8;
        chunk[6] = hi[2] as i8;
        chunk[7] = hi[3] as i8;
    }
}

/// Dequantize a full QoQ group of packed words into an INT8 buffer
/// (baseline path with the emulated byte-subtract).
#[inline]
pub fn dequant_group_qoq(words: &[u32], params: QoqGroup, out: &mut [i8]) {
    debug_assert_eq!(words.len() * 8, out.len());
    let s = u32::from(params.s_u8);
    let zs = u32::from(params.zs()) * 0x0101_0101;
    for (w, chunk) in words.iter().zip(out.chunks_exact_mut(8)) {
        let (lo, hi) = dequant8_qoq_raw(*w, s, zs);
        let lo = lo.to_le_bytes();
        let hi = hi.to_le_bytes();
        chunk[0] = lo[0] as i8;
        chunk[1] = lo[1] as i8;
        chunk[2] = lo[2] as i8;
        chunk[3] = lo[3] as i8;
        chunk[4] = hi[0] as i8;
        chunk[5] = hi[1] as i8;
        chunk[6] = hi[2] as i8;
        chunk[7] = hi[3] as i8;
    }
}

/// INT8 dot product with i32 accumulation — the CPU stand-in for the
/// tensor-core INT8 MMA. Written as a plain indexed loop so LLVM emits
/// widening-multiply SIMD.
#[inline]
#[must_use]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += i32::from(x) * i32::from(y);
    }
    acc
}

/// Four-way unrolled INT8 dot for the serial kernels' M-loop: computes
/// the dot of `w` against four activation rows at once, improving reuse
/// of the dequantized weight buffer.
#[inline]
pub fn dot_i8_x4(w: &[i8], a0: &[i8], a1: &[i8], a2: &[i8], a3: &[i8]) -> [i32; 4] {
    debug_assert!(a0.len() == w.len() && a1.len() == w.len());
    debug_assert!(a2.len() == w.len() && a3.len() == w.len());
    let mut acc = [0i32; 4];
    for i in 0..w.len() {
        let wv = i32::from(w[i]);
        acc[0] += wv * i32::from(a0[i]);
        acc[1] += wv * i32::from(a1[i]);
        acc[2] += wv * i32::from(a2[i]);
        acc[3] += wv * i32::from(a3[i]);
    }
    acc
}

/// f32 dot product (FP16/FP8/W4A16 baselines).
#[inline]
#[must_use]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use lq_layout::pack::pack_interleaved8;
    use lq_swar::audit::CountingAlu;

    #[test]
    fn raw_lqq_matches_audited_path() {
        for seed in 0..64u32 {
            let vals: Vec<u8> = (0..8)
                .map(|i| ((seed.wrapping_mul(31) + i * 7) % 16) as u8)
                .collect();
            let p = LqqGroup {
                s_u8: 1 + (seed % 16) as u8,
                min_i8: -119 + (seed % 200) as i8,
            };
            // Skip parameter combos that violate the LQQ invariant
            // (only reachable with adversarial params, not real quantization).
            if vals
                .iter()
                .any(|&v| u16::from(v) * u16::from(p.s_u8) + u16::from(p.offset_a()) > 255)
            {
                continue;
            }
            let word = pack_interleaved8(&vals);
            let s = u32::from(p.s_u8);
            let a = u32::from(p.offset_a()) * 0x0101_0101;
            let (lo, hi) = dequant8_lqq_raw(word, s, a);
            for i in 0..4 {
                assert_eq!(lo.to_le_bytes()[i] as i8, p.dequant_scalar(vals[i]));
                assert_eq!(hi.to_le_bytes()[i] as i8, p.dequant_scalar(vals[4 + i]));
            }
        }
    }

    #[test]
    fn raw_qoq_matches_audited_path() {
        let mut alu = CountingAlu::new();
        for seed in 0..64u32 {
            let vals: Vec<u8> = (0..8)
                .map(|i| ((seed.wrapping_mul(17) + i * 5) % 16) as u8)
                .collect();
            let p = QoqGroup {
                s_u8: 1 + (seed % 16) as u8,
                z: (seed % 16) as u8,
            };
            let word = pack_interleaved8(&vals);
            let s = u32::from(p.s_u8);
            let zs = u32::from(p.zs()) * 0x0101_0101;
            let (lo, hi) = dequant8_qoq_raw(word, s, zs);
            // Cross-check against the counted lowering, lane by lane.
            let _ = &mut alu;
            for i in 0..4 {
                assert_eq!(lo.to_le_bytes()[i] as i8, p.dequant_scalar(vals[i]));
                assert_eq!(hi.to_le_bytes()[i] as i8, p.dequant_scalar(vals[4 + i]));
            }
        }
    }

    #[test]
    fn group_dequant_lqq_roundtrip() {
        let group: Vec<i8> = (0..64).map(|i| ((i * 37) % 239 - 119) as i8).collect();
        let (p, codes) = LqqGroup::quantize(&group);
        let words: Vec<u32> = codes.chunks_exact(8).map(pack_interleaved8).collect();
        let mut out = vec![0i8; 64];
        dequant_group_lqq(&words, p, &mut out);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(out[i], p.dequant_scalar(c), "elem {i}");
        }
    }

    #[test]
    fn group_dequant_qoq_roundtrip() {
        let group: Vec<i8> = (0..64).map(|i| ((i * 53) % 239 - 119) as i8).collect();
        let (p, codes) = QoqGroup::quantize(&group);
        let words: Vec<u32> = codes.chunks_exact(8).map(pack_interleaved8).collect();
        let mut out = vec![0i8; 64];
        dequant_group_qoq(&words, p, &mut out);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(out[i], p.dequant_scalar(c), "elem {i}");
        }
    }

    #[test]
    fn dot_products_match_naive() {
        let a: Vec<i8> = (0..127).map(|i| (i % 23 - 11) as i8).collect();
        let b: Vec<i8> = (0..127).map(|i| (i % 17 - 8) as i8).collect();
        let want: i32 = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum();
        assert_eq!(dot_i8(&a, &b), want);
        let four = dot_i8_x4(&a, &b, &b, &a, &a);
        assert_eq!(four[0], want);
        assert_eq!(four[1], want);
        assert_eq!(four[2], dot_i8(&a, &a));
    }

    #[test]
    fn dot_i8_handles_extremes_without_overflow() {
        // 8192 × (-128 × -128) = 2^27 < i32::MAX: safe for K ≤ 2^17.
        let a = vec![-128i8; 8192];
        let b = vec![-128i8; 8192];
        assert_eq!(dot_i8(&a, &b), 8192 * 16384);
    }

    #[test]
    fn dot_f32_matches_naive() {
        let a: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32).cos()).collect();
        let want: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        assert!((dot_f32(&a, &b) - want).abs() < 1e-3);
    }
}
