//! Hot-loop primitives: raw SWAR dequantization and the register-tiled
//! INT8 microkernel.
//!
//! The dequant halves are the *uncounted* twins of the audited paths in
//! `lq-quant` — same arithmetic, zero bookkeeping, `#[inline(always)]`.
//! The MMA half is a BLIS-style MR×NR register-tile microkernel: the
//! activation block is staged into [`APanels`] (row-major `MR`-row
//! panels plus the `m % MR` tail) and [`mk_i8_4x4`] / [`mk_i8_1x4`]
//! run each of the tile's accumulator chains as a full-`kc` reduction
//! over *contiguous* operand streams, the one shape LLVM's loop
//! vectoriser turns into widening-multiply SIMD reductions without
//! intrinsics (the workspace forbids `unsafe`). We measured the
//! alternative K-major interleaved packing
//! (`lq_layout::pack::pack_a_panels_kmajor`) with fixed 16-wide
//! chunked unrolling: the strided lane access defeats the vectoriser's
//! reduction pattern and the per-chunk horizontal sums dominate, so it
//! benches 2–5× slower than the contiguous form on both baseline
//! SSE2 and AVX-512 — the layout stays in `lq-layout` as the measured
//! counterexample. Bit-exact equivalence with the audited
//! implementations and with `reference.rs` is asserted by tests here
//! and property tests in `tests/`.

use lq_quant::mat::Mat;

// The SWAR group-dequant primitives moved to `lq_quant::dequant` with
// the kernel-backend redesign (the algorithm is a property of the
// packed weights now); re-exported here so kernel code and downstream
// crates keep their import paths.
pub use lq_quant::dequant::{
    dequant8_lqq_raw, dequant8_qoq_raw, dequant_group_lqq, dequant_group_qoq,
};

/// INT8 dot product with i32 accumulation — the CPU stand-in for the
/// tensor-core INT8 MMA. Written as a plain indexed loop so LLVM emits
/// widening-multiply SIMD.
#[inline]
#[must_use]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += i32::from(x) * i32::from(y);
    }
    acc
}

/// Token rows per register-tile panel (the microkernel's M dimension).
pub const MR: usize = 4;
/// Output channels per register tile (the microkernel's N dimension).
pub const NR: usize = 4;
/// Activation block staged for the register-tiled microkernel: an owned
/// row-major copy viewed as `m / MR` panels of `MR` consecutive token
/// rows plus `m % MR` tail rows for the 1×NR edge kernel. Rows stay
/// contiguous — the microkernel's accumulator chains each reduce over a
/// contiguous stream, the shape LLVM vectorises (see the module doc for
/// the measured K-major counterexample). Staging cost is one pass over
/// the block — the same copy the pre-tiling kernels paid to clone the
/// activation matrix into the worker-pool call context.
#[derive(Debug, Clone)]
pub struct APanels {
    m: usize,
    k: usize,
    rows: Vec<i8>,
}

impl APanels {
    /// Stage a row-major `m×k` INT8 activation matrix.
    #[must_use]
    pub fn pack(x: &Mat<i8>) -> Self {
        APanels {
            m: x.rows(),
            k: x.cols(),
            rows: x.as_slice().to_vec(),
        }
    }

    /// Token count.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Reduction length.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of complete MR-row panels.
    #[must_use]
    pub fn panel_count(&self) -> usize {
        self.m / MR
    }

    /// Number of tail tokens not covered by a full panel.
    #[must_use]
    pub fn tail_count(&self) -> usize {
        self.m % MR
    }

    /// K-range `[k0, k1)` of token row `i` (contiguous, row-major).
    #[must_use]
    pub fn row_kslice(&self, i: usize, k0: usize, k1: usize) -> &[i8] {
        &self.rows[i * self.k + k0..i * self.k + k1]
    }

    /// Accumulator length for one NR-channel strip over every token:
    /// an `MR×NR` block per panel plus an `NR` block per tail token.
    #[must_use]
    pub fn acc_len(&self) -> usize {
        self.panel_count() * MR * NR + self.tail_count() * NR
    }
}

/// The MR×NR register-tile microkernel: `MR` contiguous activation row
/// slices against `NR` row-major weight rows (`w_block`, stride `kc`),
/// accumulating into `acc[nr * MR + mr]`. This is the CPU stand-in for
/// the tensor-core INT8 MMA tile: 16 live i32 accumulator chains, each
/// weight byte load shared across MR token chains and each activation
/// load shared across NR channel chains. Every chain reduces over two
/// contiguous streams for the whole `kc`, so LLVM vectorises each
/// channel's four chains as widening-multiply SIMD reductions with a
/// single horizontal sum at the end (no fixed-width chunking — see the
/// module doc for why the chunked K-major form loses).
#[inline]
pub fn mk_i8_4x4(a: [&[i8]; MR], w_block: &[i8], kc: usize, acc: &mut [i32; MR * NR]) {
    debug_assert!(a.iter().all(|r| r.len() == kc));
    debug_assert_eq!(w_block.len(), kc * NR);
    let (a0, a1, a2, a3) = (a[0], a[1], a[2], a[3]);
    for nr in 0..NR {
        let wv = &w_block[nr * kc..(nr + 1) * kc];
        let (mut s0, mut s1, mut s2, mut s3) = (0i32, 0i32, 0i32, 0i32);
        for t in 0..kc {
            let w = i32::from(wv[t]);
            s0 += w * i32::from(a0[t]);
            s1 += w * i32::from(a1[t]);
            s2 += w * i32::from(a2[t]);
            s3 += w * i32::from(a3[t]);
        }
        acc[nr * MR] += s0;
        acc[nr * MR + 1] += s1;
        acc[nr * MR + 2] += s2;
        acc[nr * MR + 3] += s3;
    }
}

/// 1×NR edge kernel for tail tokens and M=1 decode: one contiguous
/// activation row against `NR` weight rows, each activation load shared
/// across NR accumulator chains (`acc[nr]`), each chain a full-`kc`
/// contiguous reduction.
#[inline]
pub fn mk_i8_1x4(a_row: &[i8], w_block: &[i8], kc: usize, acc: &mut [i32; NR]) {
    debug_assert_eq!(a_row.len(), kc);
    debug_assert_eq!(w_block.len(), kc * NR);
    let (w0, w1, w2) = (
        &w_block[..kc],
        &w_block[kc..2 * kc],
        &w_block[2 * kc..3 * kc],
    );
    let w3 = &w_block[3 * kc..4 * kc];
    let (mut s0, mut s1, mut s2, mut s3) = (0i32, 0i32, 0i32, 0i32);
    for t in 0..kc {
        let a = i32::from(a_row[t]);
        s0 += a * i32::from(w0[t]);
        s1 += a * i32::from(w1[t]);
        s2 += a * i32::from(w2[t]);
        s3 += a * i32::from(w3[t]);
    }
    acc[0] += s0;
    acc[1] += s1;
    acc[2] += s2;
    acc[3] += s3;
}

/// Accumulate one dequantized weight strip (`NR` rows × `kc` columns,
/// row-major, covering K range `[k0, k0+kc)`) against *every* token of
/// `a`. `acc` is laid out panel-first — panel `p` owns
/// `acc[p*MR*NR + nr*MR + mr]`, then tail token `t` owns
/// `acc[panel_count*MR*NR + t*NR + nr]` — total [`APanels::acc_len`].
#[inline]
pub fn accumulate_strip(a: &APanels, k0: usize, kc: usize, w_block: &[i8], acc: &mut [i32]) {
    debug_assert_eq!(w_block.len(), NR * kc);
    debug_assert_eq!(acc.len(), a.acc_len());
    for p in 0..a.panel_count() {
        let rows = [
            a.row_kslice(p * MR, k0, k0 + kc),
            a.row_kslice(p * MR + 1, k0, k0 + kc),
            a.row_kslice(p * MR + 2, k0, k0 + kc),
            a.row_kslice(p * MR + 3, k0, k0 + kc),
        ];
        let tile: &mut [i32; MR * NR] = (&mut acc[p * MR * NR..(p + 1) * MR * NR])
            .try_into()
            .expect("panel acc tile");
        mk_i8_4x4(rows, w_block, kc, tile);
    }
    let base = a.panel_count() * MR * NR;
    for t in 0..a.tail_count() {
        let ar = a.row_kslice(a.panel_count() * MR + t, k0, k0 + kc);
        let tile: &mut [i32; NR] = (&mut acc[base + t * NR..base + (t + 1) * NR])
            .try_into()
            .expect("tail acc tile");
        mk_i8_1x4(ar, w_block, kc, tile);
    }
}

/// Scatter channel lane `nr` of a strip accumulator (laid out as in
/// [`accumulate_strip`]) into a length-`m` output row, applying
/// per-token activation scales and the channel scale in the same
/// `(acc · act) · ch` order as `epilogue::apply_scales_column`.
#[inline]
pub fn scatter_channel(a: &APanels, acc: &[i32], nr: usize, act: &[f32], ch: f32, out: &mut [f32]) {
    debug_assert_eq!(acc.len(), a.acc_len());
    debug_assert_eq!(act.len(), a.m());
    debug_assert_eq!(out.len(), a.m());
    for p in 0..a.panel_count() {
        for mr in 0..MR {
            let tok = p * MR + mr;
            out[tok] = acc[p * MR * NR + nr * MR + mr] as f32 * act[tok] * ch;
        }
    }
    let base = a.panel_count() * MR * NR;
    for t in 0..a.tail_count() {
        let tok = a.panel_count() * MR + t;
        out[tok] = acc[base + t * NR + nr] as f32 * act[tok] * ch;
    }
}

/// f32 dot product (FP16/FP8/W4A16 baselines).
#[inline]
#[must_use]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_products_match_naive() {
        let a: Vec<i8> = (0..127).map(|i| (i % 23 - 11) as i8).collect();
        let b: Vec<i8> = (0..127).map(|i| (i % 17 - 8) as i8).collect();
        let want: i32 = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum();
        assert_eq!(dot_i8(&a, &b), want);
    }

    fn naive_tile(x: &Mat<i8>, w: &[Vec<i8>]) -> Vec<i32> {
        let mut out = vec![0i32; x.rows() * w.len()];
        for i in 0..x.rows() {
            for (j, wj) in w.iter().enumerate() {
                out[i * w.len() + j] = dot_i8(x.row(i), wj);
            }
        }
        out
    }

    #[test]
    fn accumulate_strip_matches_naive_across_shapes() {
        let mut rng = lq_rng::Rng::new(0xA11E5);
        for &(m, kc) in &[
            (1usize, 7usize),
            (3, 16),
            (4, 16),
            (5, 31),
            (8, 48),
            (9, 1),
            (13, 130),
        ] {
            let x = Mat::from_vec(m, kc, rng.vec_i8(m * kc, -128, 127));
            let a = APanels::pack(&x);
            let w: Vec<Vec<i8>> = (0..NR).map(|_| rng.vec_i8(kc, -128, 127)).collect();
            let w_block: Vec<i8> = w.iter().flatten().copied().collect();
            let mut acc = vec![0i32; a.acc_len()];
            accumulate_strip(&a, 0, kc, &w_block, &mut acc);
            let want = naive_tile(&x, &w);
            for p in 0..a.panel_count() {
                for mr in 0..MR {
                    for nr in 0..NR {
                        assert_eq!(
                            acc[p * MR * NR + nr * MR + mr],
                            want[(p * MR + mr) * NR + nr],
                            "m={m} kc={kc} p={p} mr={mr} nr={nr}"
                        );
                    }
                }
            }
            let base = a.panel_count() * MR * NR;
            for t in 0..a.tail_count() {
                for nr in 0..NR {
                    assert_eq!(
                        acc[base + t * NR + nr],
                        want[(a.panel_count() * MR + t) * NR + nr],
                        "m={m} kc={kc} tail t={t} nr={nr}"
                    );
                }
            }
        }
    }

    #[test]
    fn accumulate_strip_splits_k_exactly() {
        let mut rng = lq_rng::Rng::new(0x5EED);
        let (m, k) = (6, 100);
        let x = Mat::from_vec(m, k, rng.vec_i8(m * k, -128, 127));
        let a = APanels::pack(&x);
        let w: Vec<Vec<i8>> = (0..NR).map(|_| rng.vec_i8(k, -128, 127)).collect();
        let mut whole = vec![0i32; a.acc_len()];
        let w_block: Vec<i8> = w.iter().flatten().copied().collect();
        accumulate_strip(&a, 0, k, &w_block, &mut whole);
        // Same reduction split at an unaligned K boundary.
        let mut split = vec![0i32; a.acc_len()];
        let cut = 37;
        let head: Vec<i8> = w.iter().flat_map(|r| r[..cut].iter().copied()).collect();
        let tail: Vec<i8> = w.iter().flat_map(|r| r[cut..].iter().copied()).collect();
        accumulate_strip(&a, 0, cut, &head, &mut split);
        accumulate_strip(&a, cut, k - cut, &tail, &mut split);
        assert_eq!(whole, split);
    }

    #[test]
    fn microkernel_survives_extreme_inputs() {
        // K=8192 of (-128 × -128) stays within i32 per accumulator lane.
        let k = 8192;
        let x = Mat::from_vec(MR + 1, k, vec![-128i8; (MR + 1) * k]);
        let a = APanels::pack(&x);
        let w_block = vec![-128i8; NR * k];
        let mut acc = vec![0i32; a.acc_len()];
        accumulate_strip(&a, 0, k, &w_block, &mut acc);
        for &v in &acc {
            assert_eq!(v, (k as i32) * 16384);
        }
    }

    #[test]
    fn scatter_channel_applies_scales_per_token() {
        let mut rng = lq_rng::Rng::new(0xCAFE);
        let (m, k) = (7, 24);
        let x = Mat::from_vec(m, k, rng.vec_i8(m * k, -128, 127));
        let a = APanels::pack(&x);
        let w: Vec<Vec<i8>> = (0..NR).map(|_| rng.vec_i8(k, -128, 127)).collect();
        let w_block: Vec<i8> = w.iter().flatten().copied().collect();
        let mut acc = vec![0i32; a.acc_len()];
        accumulate_strip(&a, 0, k, &w_block, &mut acc);
        let act: Vec<f32> = (0..m).map(|i| 0.5 + i as f32 * 0.25).collect();
        for (nr, wj) in w.iter().enumerate() {
            let ch = 0.125 * (nr as f32 + 1.0);
            let mut out = vec![0.0f32; m];
            scatter_channel(&a, &acc, nr, &act, ch, &mut out);
            for i in 0..m {
                assert_eq!(out[i], dot_i8(x.row(i), wj) as f32 * act[i] * ch);
            }
        }
    }

    #[test]
    fn dot_i8_handles_extremes_without_overflow() {
        // 8192 × (-128 × -128) = 2^27 < i32::MAX: safe for K ≤ 2^17.
        let a = vec![-128i8; 8192];
        let b = vec![-128i8; 8192];
        assert_eq!(dot_i8(&a, &b), 8192 * 16384);
    }

    #[test]
    fn dot_f32_matches_naive() {
        let a: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32).cos()).collect();
        let want: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        assert!((dot_f32(&a, &b) - want).abs() < 1e-3);
    }
}
