//! # lq-core — the LiquidGEMM W4A8 kernel library
//!
//! The paper's primary contribution: a W4A8 GEMM whose dequantization is
//! cheap enough (LiquidQuant, 2 register ops / 4 elements) to overlap
//! with weight streaming and MMA, organised as an implicit fine-grained
//! pipeline (ImFP) of one Load warp group feeding multiple Compute warp
//! groups.
//!
//! On this CPU reproduction, warp groups become threads, SMEM stages
//! become a ring of staging buffers, TMA becomes a prefetching producer
//! thread, and the tensor-core MMA becomes a blocked `i8×i8→i32`
//! microkernel. The *structure* — who dequantizes, where the data lands,
//! what synchronises with what — matches the paper's Figure 6 exactly,
//! which is what the ExCP-vs-ImFP ablation measures.
//!
//! Module map:
//! * [`packed`] — kernel-ready weight containers for every precision the
//!   paper benchmarks (W4A8-LQQ, W4A8-QoQ, W8A8, W4A16, FP16, FP8),
//!   plus re-exports of the four registered W4A8 backends' containers
//!   (LQQ, QoQ, LUT, codebook — see [`lq_quant::backend`]). Every W4A8
//!   kernel entry point takes `&dyn` [`PackedWeights`], so any registry
//!   backend runs on any pipeline.
//! * [`microkernel`] — the raw (uncounted) SWAR dequant paths and the
//!   integer/float dot-product kernels.
//! * [`reference`] — naive GEMM oracles used by every test.
//! * [`serial`] — single-threaded kernels for all precisions (the
//!   ablation's "no pipeline" variants).
//! * [`runtime`] — the persistent worker pool (the paper's §5.4
//!   persistent kernel) behind the [`LiquidGemm`] handle: build once,
//!   issue every GEMM through it.
//! * [`pipeline`] — the parallel Flat/ImFP/ExCP kernels as tile-job
//!   drivers over the pool, staging through a ring of recycled buffers
//!   on the in-tree [`sync`] channel.
//! * [`sync`] — bounded MPMC channel (std mutex + condvar) with
//!   `try_*` variants for stall accounting; doubles as the pool's
//!   injector queue (its condvar wait is the worker park/unpark).
//! * [`scheduler`] — persistent-kernel-style dynamic tile scheduler.
//! * [`tiled`] — the GPU-structured tiled kernel (Mt×Nt×Kt main loop),
//!   the executable twin of the cost model's decomposition.
//! * [`epilogue`] — scale application and output transposition
//!   (the `(W·Xᵀ)ᵀ` trick).
//! * [`api`] — the shared argument types every call site uses
//!   ([`KernelKind`], [`W4A8Weights`], [`GemmOutput`]).
//! * [`fused`] — tests for the FP32-activation front end with fused
//!   per-token INT8 quantization (the serving system's fusion point),
//!   [`LiquidGemm::gemm_f32`].
//!
//! When [`lq_telemetry::enable`] is on, the pipelines export stall
//! counters, queue-depth gauges, and per-role span histograms (see
//! `telemetry` module docs); disabled, instrumentation is one relaxed
//! load per GEMM call.

// `unsafe` is denied crate-wide and re-allowed in exactly two leaf
// modules: `simd` (explicit `core::arch` microkernels behind runtime
// feature detection) and `affinity` (raw sched_setaffinity syscalls).
// Everything else still cannot use it.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod api;
pub mod epilogue;
pub mod fused;
pub mod microkernel;
pub mod packed;
pub mod pipeline;
pub mod reference;
pub mod runtime;
pub mod scheduler;
pub mod serial;
pub mod shard;
pub mod simd;
pub mod sync;
mod telemetry;
pub mod tiled;

pub use affinity::PlacementPolicy;
pub use api::{GemmOutput, KernelKind, ParallelConfig, W4A8Weights};
pub use lq_chaos::{FaultAction, FaultInjector, FaultPlan, FaultStats};
pub use lq_quant::backend::{
    registry, resolve, BackendCost, BackendId, KernelBackend, PackedWeights, TileDequant,
};
pub use microkernel::MicrokernelSet;
pub use packed::{
    Fp16Linear, Fp8Linear, PackedCodebookLinear, PackedLqqLinear, PackedLutLinear, PackedQoqLinear,
    W4A16Linear, W8A8Linear,
};
pub use pipeline::{ConfigError, ParallelConfigBuilder};
pub use runtime::{LiquidGemm, LiquidGemmBuilder, WorkerPool, WorkerStats};
pub use shard::{ShardConfigError, ShardError, ShardedGemm, ShardedGemmBuilder, ShardedWeights};
pub use simd::SimdVariant;
