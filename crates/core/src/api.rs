//! Shared argument types of the kernel API.
//!
//! The front door is the handle-based [`crate::LiquidGemm`] API
//! (`LiquidGemm::builder().workers(n).build()?` →
//! `lg.gemm(&x, &scales, &weights, kind)`), which owns a persistent
//! worker pool. This module holds the types every call site shares:
//! the [`KernelKind`] pipeline selector, the [`W4A8Weights`]
//! scheme-tagged weight container, and the [`GemmOutput`] result.

use lq_quant::mat::Mat;

use crate::packed::{PackedLqqLinear, PackedQoqLinear};
pub use crate::pipeline::{Dequant, PackedW4A8, ParallelConfig};

/// Pipeline strategy for the W4A8 kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Single-threaded, no pipeline (ablation baseline).
    Serial,
    /// Data-parallel workers, no load/compute specialisation.
    FlatParallel,
    /// Explicit coarse-grained pipeline: Load / Dequant / MMA roles.
    ExCp,
    /// Implicit fine-grained pipeline: Load producer + fused
    /// dequant-MMA consumers (the paper's LiquidGEMM configuration).
    ImFp,
}

/// W4A8 weights in either second-level scheme.
#[derive(Debug, Clone)]
pub enum W4A8Weights {
    /// LiquidQuant weights.
    Lqq(PackedLqqLinear),
    /// QServe/QoQ weights.
    Qoq(PackedQoqLinear),
}

impl W4A8Weights {
    /// Output channels.
    #[must_use]
    pub fn n(&self) -> usize {
        match self {
            W4A8Weights::Lqq(w) => w.n,
            W4A8Weights::Qoq(w) => w.n,
        }
    }

    /// Reduction dim.
    #[must_use]
    pub fn k(&self) -> usize {
        match self {
            W4A8Weights::Lqq(w) => w.k,
            W4A8Weights::Qoq(w) => w.k,
        }
    }

    /// The dequantization algorithm these weights require.
    #[must_use]
    pub fn dequant(&self) -> Dequant {
        match self {
            W4A8Weights::Lqq(_) => Dequant::Lqq,
            W4A8Weights::Qoq(_) => Dequant::Qoq,
        }
    }

    /// Borrow as the scheme-tagged reference the pipeline kernels take.
    #[must_use]
    pub fn packed(&self) -> PackedW4A8<'_> {
        match self {
            W4A8Weights::Lqq(w) => PackedW4A8::Lqq(w),
            W4A8Weights::Qoq(w) => PackedW4A8::Qoq(w),
        }
    }
}

/// Result of a GEMM call.
#[derive(Debug, Clone)]
pub struct GemmOutput {
    /// `M×N` FP32 output.
    pub y: Mat<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::max_abs_diff;
    use crate::runtime::LiquidGemm;
    use lq_quant::act::QuantizedActivations;

    #[test]
    fn all_variants_agree() {
        let (m, n, k) = (5, 24, 128);
        let xf = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.19).sin());
        let wf = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.03).cos());
        let qa = QuantizedActivations::quantize(&xf, None);
        let w = W4A8Weights::Lqq(PackedLqqLinear::quantize(&wf, 64));
        assert_eq!(w.n(), n);
        assert_eq!(w.k(), k);
        assert_eq!(w.dequant(), Dequant::Lqq);
        let lg = LiquidGemm::builder()
            .workers(3)
            .task_rows(5)
            .stages(3)
            .build()
            .unwrap();
        let base = lg.gemm(&qa.q, &qa.scales, &w, KernelKind::Serial).y;
        for kind in [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp] {
            let y = lg.gemm(&qa.q, &qa.scales, &w, kind).y;
            assert_eq!(max_abs_diff(&y, &base), 0.0, "{kind:?}");
        }
    }
}
