//! Shared argument types of the kernel API.
//!
//! The front door is the handle-based [`crate::LiquidGemm`] API
//! (`LiquidGemm::builder().workers(n).backend(id).build()?` →
//! `lg.gemm(&x, &scales, &weights, kind)`), which owns a persistent
//! worker pool. This module holds the types every call site shares:
//! the [`KernelKind`] pipeline selector, the [`W4A8Weights`]
//! backend-agnostic weight handle, and the [`GemmOutput`] result.

use std::fmt;
use std::sync::Arc;

use lq_quant::backend::{resolve, BackendId, PackedWeights};
use lq_quant::mat::Mat;

use crate::packed::{PackedLqqLinear, PackedQoqLinear};
pub use crate::pipeline::ParallelConfig;

/// Pipeline strategy for the W4A8 kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Single-threaded, no pipeline (ablation baseline).
    Serial,
    /// Data-parallel workers, no load/compute specialisation.
    FlatParallel,
    /// Explicit coarse-grained pipeline: Load / Dequant / MMA roles.
    ExCp,
    /// Implicit fine-grained pipeline: Load producer + fused
    /// dequant-MMA consumers (the paper's LiquidGEMM configuration).
    ImFp,
}

/// W4A8 weights packed by any registered [`lq_quant::KernelBackend`].
///
/// A cheap-to-clone handle (`Arc` inside) over the backend-specific
/// packed representation. Construct with [`W4A8Weights::quantize`] (or
/// through [`crate::LiquidGemm::pack_weights`], which uses the
/// handle's configured backend), or wrap an already-packed linear with
/// [`W4A8Weights::lqq`] / [`W4A8Weights::qoq`] / [`W4A8Weights::from_arc`].
#[derive(Clone)]
pub struct W4A8Weights {
    packed: Arc<dyn PackedWeights>,
}

impl W4A8Weights {
    /// Quantize and pack FP32 weights with the backend registered for
    /// `id` (group size `group` along K).
    #[must_use]
    pub fn quantize(w: &Mat<f32>, group: usize, id: BackendId) -> Self {
        Self {
            packed: resolve(id).pack(w, group),
        }
    }

    /// Wrap already-packed LiquidQuant weights.
    #[must_use]
    pub fn lqq(w: PackedLqqLinear) -> Self {
        Self {
            packed: Arc::new(w),
        }
    }

    /// Wrap already-packed QServe/QoQ weights.
    #[must_use]
    pub fn qoq(w: PackedQoqLinear) -> Self {
        Self {
            packed: Arc::new(w),
        }
    }

    /// Wrap any packed representation (e.g. straight from
    /// [`lq_quant::KernelBackend::pack`]).
    #[must_use]
    pub fn from_arc(packed: Arc<dyn PackedWeights>) -> Self {
        Self { packed }
    }

    /// Which backend packed these weights.
    #[must_use]
    pub fn backend(&self) -> BackendId {
        self.packed.backend()
    }

    /// Output channels.
    #[must_use]
    pub fn n(&self) -> usize {
        self.packed.n()
    }

    /// Reduction dim.
    #[must_use]
    pub fn k(&self) -> usize {
        self.packed.k()
    }

    /// Quantization group size along K.
    #[must_use]
    pub fn group(&self) -> usize {
        self.packed.group()
    }

    /// Packed-weight memory footprint in bytes.
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.packed.weight_bytes()
    }

    /// The trait-object view the kernels consume.
    #[must_use]
    pub fn as_dyn(&self) -> &dyn PackedWeights {
        self.packed.as_ref()
    }

    /// A shared handle on the packed representation (what
    /// [`crate::shard::ShardedWeights`] wraps in per-shard views —
    /// one pack, many windows).
    #[must_use]
    pub fn packed(&self) -> Arc<dyn PackedWeights> {
        Arc::clone(&self.packed)
    }
}

impl fmt::Debug for W4A8Weights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("W4A8Weights")
            .field("backend", &self.packed.backend())
            .field("n", &self.packed.n())
            .field("k", &self.packed.k())
            .field("group", &self.packed.group())
            .finish()
    }
}

/// Result of a GEMM call.
#[derive(Debug, Clone)]
pub struct GemmOutput {
    /// `M×N` FP32 output.
    pub y: Mat<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::max_abs_diff;
    use crate::runtime::LiquidGemm;
    use lq_quant::act::QuantizedActivations;

    #[test]
    fn all_variants_agree() {
        let (m, n, k) = (5, 24, 128);
        let xf = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.19).sin());
        let wf = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.03).cos());
        let qa = QuantizedActivations::quantize(&xf, None);
        let w = W4A8Weights::lqq(PackedLqqLinear::quantize(&wf, 64));
        assert_eq!(w.n(), n);
        assert_eq!(w.k(), k);
        assert_eq!(w.backend(), BackendId::Lqq);
        let lg = LiquidGemm::builder()
            .workers(3)
            .task_rows(5)
            .stages(3)
            .build()
            .unwrap();
        let base = lg.gemm(&qa.q, &qa.scales, &w, KernelKind::Serial).y;
        for kind in [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp] {
            let y = lg.gemm(&qa.q, &qa.scales, &w, kind).y;
            assert_eq!(max_abs_diff(&y, &base), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn quantize_routes_through_the_registry() {
        let wf = Mat::from_fn(8, 128, |r, c| ((r * 128 + c) as f32 * 0.03).cos());
        for id in BackendId::all() {
            let w = W4A8Weights::quantize(&wf, 64, id);
            assert_eq!(w.backend(), id);
            assert_eq!((w.n(), w.k(), w.group()), (8, 128, 64));
            assert!(w.weight_bytes() > 0);
            // Clones share the packed representation.
            let c = w.clone();
            assert_eq!(c.backend(), id);
            assert!(format!("{w:?}").contains("W4A8Weights"));
        }
    }
}
